module contango

go 1.21
