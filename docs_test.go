package contango

// Documentation gates, run by the CI docs job (go test -run 'TestDocs' .):
// every intra-repo markdown link must resolve to a real file, and the API
// reference must document exactly the endpoints the HTTP mux serves.

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// docFiles returns the repo's markdown documents: the root-level files
// plus everything under docs/.
func docFiles(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob("*.md")
	if err != nil {
		t.Fatal(err)
	}
	under, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, under...)
	if len(files) == 0 {
		t.Fatal("no markdown files found")
	}
	sort.Strings(files)
	return files
}

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocsMarkdownLinksResolve fails when a relative markdown link in any
// repo document points at a file that does not exist.
func TestDocsMarkdownLinksResolve(t *testing.T) {
	for _, doc := range docFiles(t) {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			// External links, mail links and in-page anchors are out of
			// scope — only intra-repo file references are checked.
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			resolved := filepath.Join(filepath.Dir(doc), target)
			if !strings.HasPrefix(filepath.Clean(resolved), "..") {
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s: broken link %q (resolved %s): %v", doc, m[1], resolved, err)
				}
			}
		}
	}
}

var muxRegistration = regexp.MustCompile(`s\.mux\.Handle(?:Func)?\("([^"]+)"`)

// muxPaths extracts the path patterns registered on the contangod mux.
func muxPaths(t *testing.T) []string {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("internal", "service", "http.go"))
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, m := range muxRegistration.FindAllStringSubmatch(string(src), -1) {
		paths = append(paths, m[1])
	}
	if len(paths) < 5 {
		t.Fatalf("found only %d mux registrations in http.go — extraction regexp broken?", len(paths))
	}
	return paths
}

// apiDocRow matches one row of the endpoint table in docs/API.md:
// "| GET | `/api/v1/queue` | … |".
var apiDocRow = regexp.MustCompile(`\| (GET|POST|DELETE) \| ` + "`([^`]+)`" + ` \|`)

// TestDocsAPIEndpointsMatchMux keeps docs/API.md and the mux in lockstep:
// every registered path must appear in the reference, and every
// documented endpoint must route to a registered handler.
func TestDocsAPIEndpointsMatchMux(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("docs", "API.md"))
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	registered := muxPaths(t)

	// Forward: a handler without documentation fails the gate.
	for _, p := range registered {
		if !strings.Contains(doc, p) {
			t.Errorf("mux registers %q but docs/API.md never mentions it", p)
		}
	}

	// Reverse: a documented endpoint that no handler serves is stale. The
	// mux uses prefix patterns for parameterized paths ("/api/v1/jobs/"
	// serves "/api/v1/jobs/{id}/result"), so prefix match is the routing
	// rule net/http itself applies.
	rows := apiDocRow.FindAllStringSubmatch(doc, -1)
	if len(rows) < 10 {
		t.Fatalf("found only %d endpoint rows in docs/API.md — table format changed?", len(rows))
	}
	for _, row := range rows {
		path := row[2]
		routed := false
		for _, p := range registered {
			if path == p || (strings.HasSuffix(p, "/") && strings.HasPrefix(path, p)) {
				routed = true
				break
			}
		}
		if !routed {
			t.Errorf("docs/API.md documents %s %s but no mux registration routes it", row[1], path)
		}
	}

	// Each documented endpoint needs a dedicated reference section.
	for _, row := range rows {
		heading := fmt.Sprintf("### %s %s", row[1], row[2])
		if !strings.Contains(doc, heading) {
			t.Errorf("docs/API.md endpoint table lists %q but has no %q section", row[2], heading)
		}
	}
}
