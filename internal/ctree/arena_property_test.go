package ctree_test

import (
	"math/rand"
	"reflect"
	"testing"

	"contango/internal/analysis"
	"contango/internal/ctree"
	"contango/internal/geom"
	"contango/internal/tech"
)

// The arena is only trustworthy if an arbitrary interleaving of journaling
// setters and structural surgery leaves it indistinguishable from the
// pointer tree: same reconstructed tree, same dirty set, bit-identical
// evaluation results. This property test drives both representations with
// mirrored random mutation sequences and checks all three.

// propFixture seeds a tree with enough structure that every op class has
// candidates: a buffer chain, branch points, and a handful of sinks.
func propFixture(rng *rand.Rand, tk *tech.Tech) *ctree.Tree {
	tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
	comp := tech.Composite{Type: tk.Inverters[1], N: 4}
	trunk := tr.AddChild(tr.Root, ctree.Buffer, geom.Pt(500, 50))
	c := comp
	trunk.Buf = &c
	hubs := []*ctree.Node{trunk}
	for i := 0; i < 3; i++ {
		p := hubs[rng.Intn(len(hubs))]
		hubs = append(hubs, tr.AddChild(p, ctree.Internal,
			geom.Pt(p.Loc.X+200+rng.Float64()*400, p.Loc.Y+rng.Float64()*400-200)))
	}
	for i := 0; i < 6; i++ {
		p := hubs[rng.Intn(len(hubs))]
		tr.AddSink(p, geom.Pt(p.Loc.X+100+rng.Float64()*200, p.Loc.Y+rng.Float64()*200),
			15+rng.Float64()*30, "")
	}
	return tr
}

// liveNodes returns the IDs of all live nodes satisfying keep.
func liveNodes(tr *ctree.Tree, keep func(*ctree.Node) bool) []int {
	var ids []int
	for id := 0; id < tr.MaxID(); id++ {
		if n := tr.Node(id); n != nil && keep(n) {
			ids = append(ids, id)
		}
	}
	return ids
}

// inSubtree reports whether target is inside n's subtree (including n).
func inSubtree(n, target *ctree.Node) bool {
	stack := []*ctree.Node{n}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == target {
			return true
		}
		stack = append(stack, cur.Children...)
	}
	return false
}

// mutateBoth applies one random mutation to the tree and mirrors it on the
// arena; it returns false when the drawn op class had no candidate.
func mutateBoth(rng *rand.Rand, tr *ctree.Tree, a *ctree.Arena, tk *tech.Tech) bool {
	pick := func(ids []int) (int, bool) {
		if len(ids) == 0 {
			return 0, false
		}
		return ids[rng.Intn(len(ids))], true
	}
	nonRoot := func(n *ctree.Node) bool { return n.Parent != nil }
	switch rng.Intn(10) {
	case 0: // width change
		id, ok := pick(liveNodes(tr, nonRoot))
		if !ok {
			return false
		}
		w := rng.Intn(len(tk.Wires))
		tr.SetWidth(tr.Node(id), w)
		a.SetWidth(int32(id), w)
	case 1: // absolute snake
		id, ok := pick(liveNodes(tr, nonRoot))
		if !ok {
			return false
		}
		v := rng.Float64() * 40
		tr.SetSnake(tr.Node(id), v)
		a.SetSnake(int32(id), v)
	case 2: // relative snake
		id, ok := pick(liveNodes(tr, nonRoot))
		if !ok {
			return false
		}
		dv := rng.Float64() * 15
		tr.AddSnake(tr.Node(id), dv)
		a.AddSnake(int32(id), dv)
	case 3: // buffer resize
		id, ok := pick(liveNodes(tr, func(n *ctree.Node) bool { return n.Buf != nil }))
		if !ok {
			return false
		}
		k := 1 + rng.Intn(8)
		tr.SetBufferSize(tr.Node(id), k)
		a.SetBufferSize(int32(id), k)
	case 4: // edge split
		id, ok := pick(liveNodes(tr, nonRoot))
		if !ok {
			return false
		}
		n := tr.Node(id)
		d := rng.Float64() * n.EdgeLen()
		mid := tr.InsertOnEdge(n, d, ctree.Internal)
		amid := a.InsertOnEdge(int32(id), d, ctree.Internal)
		if int32(mid.ID) != amid {
			panic("insert slot diverged from node ID")
		}
	case 5: // slide a degree-2 node
		id, ok := pick(liveNodes(tr, func(n *ctree.Node) bool {
			return n.Parent != nil && len(n.Children) == 1
		}))
		if !ok {
			return false
		}
		n := tr.Node(id)
		total := n.EdgeLen() + n.Children[0].EdgeLen()
		d := rng.Float64() * total
		tr.SlideDegree2(n, d)
		a.SlideDegree2(int32(id), d)
	case 6: // splice out a degree-2 internal
		id, ok := pick(liveNodes(tr, func(n *ctree.Node) bool {
			return n.Parent != nil && len(n.Children) == 1 && n.Kind == ctree.Internal
		}))
		if !ok {
			return false
		}
		tr.RemoveDegree2(tr.Node(id))
		a.RemoveDegree2(int32(id))
	case 7: // grow a sink
		id, ok := pick(liveNodes(tr, func(n *ctree.Node) bool { return n.Kind != ctree.Sink }))
		if !ok {
			return false
		}
		p := tr.Node(id)
		loc := geom.Pt(p.Loc.X+50+rng.Float64()*150, p.Loc.Y+rng.Float64()*150)
		cap := 10 + rng.Float64()*20
		ns := tr.AddSink(p, loc, cap, "")
		ans := a.AddSink(int32(id), loc, cap, "")
		if int32(ns.ID) != ans {
			panic("sink slot diverged from node ID")
		}
	case 8: // reparent a subtree
		id, ok := pick(liveNodes(tr, nonRoot))
		if !ok {
			return false
		}
		n := tr.Node(id)
		tid, ok := pick(liveNodes(tr, func(c *ctree.Node) bool {
			return c.Kind != ctree.Sink && !inSubtree(n, c)
		}))
		if !ok {
			return false
		}
		tr.Detach(n)
		a.Detach(int32(id))
		tr.Attach(n, tr.Node(tid), nil)
		a.Attach(int32(id), int32(tid), nil)
	case 9: // prune a small subtree (keep the net evaluable)
		ids := liveNodes(tr, func(n *ctree.Node) bool {
			return n.Parent != nil && len(n.Children) == 0 && n.Kind != ctree.Sink
		})
		if len(tr.Sinks()) > 2 {
			ids = append(ids, liveNodes(tr, func(n *ctree.Node) bool {
				return n.Parent != nil && n.Kind == ctree.Sink
			})...)
		}
		id, ok := pick(ids)
		if !ok {
			return false
		}
		tr.DeleteSubtree(tr.Node(id))
		a.DeleteSubtree(int32(id))
	}
	return true
}

// structuralBurst applies count ops of one structural surgery class to
// both representations, returning how many actually applied. Unlike
// mutateBoth's uniform mix, a burst hammers a single mutator — the access
// pattern ECO replay produces (a wave of detaches, then a wave of
// attachments, then edge splits) — which is what shakes out journal drift
// between the pointer tree and the arena's span-based storage.
func structuralBurst(rng *rand.Rand, tr *ctree.Tree, a *ctree.Arena, class, count int) int {
	pick := func(ids []int) (int, bool) {
		if len(ids) == 0 {
			return 0, false
		}
		return ids[rng.Intn(len(ids))], true
	}
	nonRoot := func(n *ctree.Node) bool { return n.Parent != nil }
	applied := 0
	for k := 0; k < count; k++ {
		switch class {
		case 0: // detach + reattach elsewhere
			id, ok := pick(liveNodes(tr, nonRoot))
			if !ok {
				continue
			}
			n := tr.Node(id)
			tid, ok := pick(liveNodes(tr, func(c *ctree.Node) bool {
				return c.Kind != ctree.Sink && !inSubtree(n, c)
			}))
			if !ok {
				continue
			}
			tr.Detach(n)
			a.Detach(int32(id))
			tr.Attach(n, tr.Node(tid), nil)
			a.Attach(int32(id), int32(tid), nil)
		case 1: // delete subtrees (keep at least 3 sinks alive)
			ids := liveNodes(tr, func(n *ctree.Node) bool {
				return n.Parent != nil && len(n.Children) == 0 && n.Kind != ctree.Sink
			})
			if len(tr.Sinks()) > 3 {
				ids = append(ids, liveNodes(tr, func(n *ctree.Node) bool {
					return n.Parent != nil && n.Kind == ctree.Sink
				})...)
			}
			id, ok := pick(ids)
			if !ok {
				continue
			}
			tr.DeleteSubtree(tr.Node(id))
			a.DeleteSubtree(int32(id))
		case 2: // edge splits
			id, ok := pick(liveNodes(tr, nonRoot))
			if !ok {
				continue
			}
			n := tr.Node(id)
			d := rng.Float64() * n.EdgeLen()
			mid := tr.InsertOnEdge(n, d, ctree.Internal)
			amid := a.InsertOnEdge(int32(id), d, ctree.Internal)
			if int32(mid.ID) != amid {
				panic("insert slot diverged from node ID")
			}
		case 3: // sink growth
			id, ok := pick(liveNodes(tr, func(n *ctree.Node) bool { return n.Kind != ctree.Sink }))
			if !ok {
				continue
			}
			p := tr.Node(id)
			loc := geom.Pt(p.Loc.X+30+rng.Float64()*120, p.Loc.Y+rng.Float64()*120)
			cap := 8 + rng.Float64()*25
			ns := tr.AddSink(p, loc, cap, "")
			ans := a.AddSink(int32(id), loc, cap, "")
			if int32(ns.ID) != ans {
				panic("sink slot diverged from node ID")
			}
		case 4: // degree-2 splices
			id, ok := pick(liveNodes(tr, func(n *ctree.Node) bool {
				return n.Parent != nil && len(n.Children) == 1 && n.Kind == ctree.Internal
			}))
			if !ok {
				continue
			}
			tr.RemoveDegree2(tr.Node(id))
			a.RemoveDegree2(int32(id))
		}
		applied++
	}
	return applied
}

// TestArenaPropertyStructuralBursts drives the pointer tree and the arena
// with mirrored bursts of structural surgery — the ECO access pattern —
// and requires, after every burst, a valid arena, and at the end equal
// dirty journals and a lossless ToTree round-trip.
func TestArenaPropertyStructuralBursts(t *testing.T) {
	tk := tech.Default45()
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		tr := propFixture(rng, tk)
		a := ctree.FromTree(tr)
		gen0 := tr.Gen()
		applied := 0
		for burst := 0; burst < 8; burst++ {
			applied += structuralBurst(rng, tr, a, rng.Intn(5), 12)
			if err := a.Validate(); err != nil {
				t.Fatalf("seed %d burst %d: arena invalid: %v", seed, burst, err)
			}
		}
		if applied < 40 {
			t.Fatalf("seed %d: only %d ops applied; generator too narrow", seed, applied)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("seed %d: tree invalid after bursts: %v", seed, err)
		}
		want := map[int]bool{}
		for _, id := range tr.TouchedSince(gen0) {
			want[id] = true
		}
		got := map[int]bool{}
		for _, id := range a.DirtyIDs() {
			got[id] = true
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("seed %d: dirty sets differ:\n tree  %v\n arena %v", seed, want, got)
		}
		back, err := a.ToTree()
		if err != nil {
			t.Fatalf("seed %d: ToTree: %v", seed, err)
		}
		if back.NumNodes() != tr.NumNodes() {
			t.Fatalf("seed %d: round-trip lost nodes: %d vs %d", seed, back.NumNodes(), tr.NumNodes())
		}
	}
}

func TestArenaPropertyRandomMutations(t *testing.T) {
	tk := tech.Default45()
	corner := tech.Corner{Name: "stress", Vdd: 1.05, RDerate: 1.12, CDerate: 0.94}
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := propFixture(rng, tk)
		a := ctree.FromTree(tr)
		gen0 := tr.Gen()
		applied := 0
		for step := 0; step < 80; step++ {
			if mutateBoth(rng, tr, a, tk) {
				applied++
			}
		}
		if applied < 40 {
			t.Fatalf("seed %d: only %d ops applied; generator too narrow", seed, applied)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("seed %d: tree invalid after ops: %v", seed, err)
		}

		// 1. Structural equivalence through the lossless converter.
		back, err := a.ToTree()
		if err != nil {
			t.Fatalf("seed %d: ToTree: %v", seed, err)
		}

		// 2. Journal equivalence: dirty bitmap == pointer journal.
		want := map[int]bool{}
		for _, id := range tr.TouchedSince(gen0) {
			want[id] = true
		}
		got := map[int]bool{}
		for _, id := range a.DirtyIDs() {
			got[id] = true
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("seed %d: dirty sets differ:\n tree  %v\n arena %v", seed, want, got)
		}

		// 3. Evaluation equivalence, bit for bit, on both closed-form models.
		for _, ev := range []analysis.Evaluator{&analysis.Elmore{}, &analysis.TwoPole{}} {
			rt, err := ev.Evaluate(tr, corner)
			if err != nil {
				t.Fatalf("seed %d: %s on tree: %v", seed, ev.Name(), err)
			}
			ra, err := ev.Evaluate(back, corner)
			if err != nil {
				t.Fatalf("seed %d: %s on arena round-trip: %v", seed, ev.Name(), err)
			}
			if !reflect.DeepEqual(rt, ra) {
				t.Fatalf("seed %d: %s results differ between tree and arena round-trip", seed, ev.Name())
			}
		}

		// Compact must not change anything observable either.
		a.Compact()
		back2, err := a.ToTree()
		if err != nil {
			t.Fatalf("seed %d: ToTree after Compact: %v", seed, err)
		}
		r1, _ := (&analysis.Elmore{}).Evaluate(back, corner)
		r2, _ := (&analysis.Elmore{}).Evaluate(back2, corner)
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("seed %d: Compact changed evaluation results", seed)
		}
	}
}
