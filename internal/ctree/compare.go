package ctree

import "fmt"

// Equal reports whether two trees are bit-identical: same ID space, same
// topology in the same child order, and exactly equal (not merely
// approximately equal) locations, routes, snakes, widths, loads and buffer
// composites. The construction-parity property tests use it to pin the
// arena-native passes against the pointer-built reference; the returned
// error names the first divergence.
func Equal(a, b *Tree) error {
	if a.MaxID() != b.MaxID() {
		return fmt.Errorf("ctree: MaxID %d != %d", a.MaxID(), b.MaxID())
	}
	for id := 0; id < a.MaxID(); id++ {
		na, nb := a.Node(id), b.Node(id)
		if (na == nil) != (nb == nil) {
			return fmt.Errorf("ctree: node %d present in one tree only", id)
		}
		if na == nil {
			continue
		}
		if na.Kind != nb.Kind {
			return fmt.Errorf("ctree: node %d kind %v != %v", id, na.Kind, nb.Kind)
		}
		if na.Loc != nb.Loc {
			return fmt.Errorf("ctree: node %d loc %v != %v", id, na.Loc, nb.Loc)
		}
		if na.WidthIdx != nb.WidthIdx {
			return fmt.Errorf("ctree: node %d width %d != %d", id, na.WidthIdx, nb.WidthIdx)
		}
		if na.Snake != nb.Snake {
			return fmt.Errorf("ctree: node %d snake %v != %v", id, na.Snake, nb.Snake)
		}
		if na.SinkCap != nb.SinkCap {
			return fmt.Errorf("ctree: node %d sinkcap %v != %v", id, na.SinkCap, nb.SinkCap)
		}
		if na.Name != nb.Name {
			return fmt.Errorf("ctree: node %d name %q != %q", id, na.Name, nb.Name)
		}
		if (na.Buf == nil) != (nb.Buf == nil) {
			return fmt.Errorf("ctree: node %d buffer present in one tree only", id)
		}
		if na.Buf != nil && *na.Buf != *nb.Buf {
			return fmt.Errorf("ctree: node %d buffer %+v != %+v", id, *na.Buf, *nb.Buf)
		}
		pa, pb := -1, -1
		if na.Parent != nil {
			pa = na.Parent.ID
		}
		if nb.Parent != nil {
			pb = nb.Parent.ID
		}
		if pa != pb {
			return fmt.Errorf("ctree: node %d parent %d != %d", id, pa, pb)
		}
		if len(na.Route) != len(nb.Route) {
			return fmt.Errorf("ctree: node %d route length %d != %d", id, len(na.Route), len(nb.Route))
		}
		for k := range na.Route {
			if na.Route[k] != nb.Route[k] {
				return fmt.Errorf("ctree: node %d route point %d: %v != %v", id, k, na.Route[k], nb.Route[k])
			}
		}
		if len(na.Children) != len(nb.Children) {
			return fmt.Errorf("ctree: node %d child count %d != %d", id, len(na.Children), len(nb.Children))
		}
		for k := range na.Children {
			if na.Children[k].ID != nb.Children[k].ID {
				return fmt.Errorf("ctree: node %d child %d: %d != %d", id, k, na.Children[k].ID, nb.Children[k].ID)
			}
		}
	}
	return nil
}
