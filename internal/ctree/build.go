package ctree

import (
	"fmt"

	"contango/internal/geom"
	"contango/internal/tech"
)

// Bulk-construction API. The construction passes (DME merging, legalization,
// buffer insertion, polarity correction) build straight into the arena: an
// arena is created empty with capacity reserved up front from the
// benchmark's sink count, nodes are appended through the same mutators the
// incremental consumers use, and the shared span arrays (ChildIdx,
// RoutePts) grow append-only — each child list and route is written once,
// at the tail, instead of being grown per node. Slot indices handed out
// during construction are final: they match the node IDs the equivalent
// pointer-tree construction would have assigned (the arena-construction
// property tests pin this), so everything downstream — dirty journals,
// persisted artifacts, cache signatures — is unaffected by which path built
// the tree.

// BuildHints sizes an arena for bulk construction. Zero fields mean "no
// hint"; construction still works, it just pays append-doubling.
type BuildHints struct {
	// Nodes is the expected final slot count.
	Nodes int
	// RoutePts is the expected total number of route points across all
	// edges.
	RoutePts int
	// Children is the expected total number of child references.
	Children int
}

// HintsForSinks derives bulk-construction hints from a sink count: a binary
// DME merge tree has 2n−1 vertices plus the source, balanced buffering adds
// roughly one buffer per three merge nodes, and routes are L-shapes (≤3
// points). The child-index hint carries 2× slack because a binary parent's
// second child arrives only after its first child's subtree was
// materialized, relocating the one-entry span to the tail exactly once
// (Compact reclaims that garbage after construction). The constants are
// deliberately a little generous so a from-scratch synthesis of a
// benchmark's Stats().Sinks almost never reallocates the backing arrays.
func HintsForSinks(n int) BuildHints {
	if n <= 0 {
		return BuildHints{Nodes: 8, RoutePts: 16, Children: 16}
	}
	nodes := 2*n + n/2 + 16
	return BuildHints{
		Nodes:    nodes,
		RoutePts: 3 * nodes,
		Children: 2*nodes + 8,
	}
}

// NewArena creates an arena holding a single Source slot at loc, with
// capacity reserved per the hints. It is the arena analogue of New: the
// returned arena is ready for AddChild/AddSink construction.
func NewArena(t *tech.Tech, loc geom.Point, sourceR float64, h BuildHints) *Arena {
	a := &Arena{Tech: t, SourceR: sourceR}
	a.Reserve(h)
	root := a.newSlot(Source, loc)
	a.root = root
	return a
}

// Reserve grows the arena's backing capacity so that at least h.Nodes total
// slots, h.RoutePts route points and h.Children child references fit
// without reallocation. It never shrinks, never moves live data visibly
// (spans are offsets, not pointers) and is safe at any point between
// mutations.
func (a *Arena) Reserve(h BuildHints) {
	if n := h.Nodes; n > cap(a.Kind) {
		a.Kind = growCap(a.Kind, n)
		a.Loc = growCap(a.Loc, n)
		a.Parent = growCap(a.Parent, n)
		a.WidthIdx = growCap(a.WidthIdx, n)
		a.Snake = growCap(a.Snake, n)
		a.SinkCap = growCap(a.SinkCap, n)
		a.Name = growCap(a.Name, n)
		a.BufN = growCap(a.BufN, n)
		a.BufType = growCap(a.BufType, n)
		a.ChildOff = growCap(a.ChildOff, n)
		a.ChildLen = growCap(a.ChildLen, n)
		a.RouteOff = growCap(a.RouteOff, n)
		a.RouteLen = growCap(a.RouteLen, n)
	}
	if n := h.RoutePts; n > cap(a.RoutePts) {
		a.RoutePts = growCap(a.RoutePts, n)
	}
	if n := h.Children; n > cap(a.ChildIdx) {
		a.ChildIdx = growCap(a.ChildIdx, n)
	}
}

// growCap returns s with capacity at least n, preserving contents.
func growCap[T any](s []T, n int) []T {
	out := make([]T, len(s), n)
	copy(out, s)
	return out
}

// SetBuf installs a composite on slot i (BufN parallel inverters of
// BufType). Like assigning Node.Buf during pointer construction it does not
// journal; sized mutations after construction go through SetBufferSize.
func (a *Arena) SetBuf(i int32, comp tech.Composite) {
	a.BufN[i] = int32(comp.N)
	a.BufType[i] = comp.Type
}

// Buf returns slot i's composite; ok is false on non-buffer slots.
func (a *Arena) Buf(i int32) (tech.Composite, bool) {
	if a.BufN[i] == 0 {
		return tech.Composite{}, false
	}
	return tech.Composite{Type: a.BufType[i], N: int(a.BufN[i])}, true
}

// ReplaceRoute overwrites slot i's parent-edge route, appending the new
// points at the tail of the shared array. It mirrors the pointer tree's
// construction-phase `n.Route = pl` assignment and, like it, does not
// journal: legalization rewrites routes before any incremental consumer has
// synced. Compact reclaims the abandoned span.
func (a *Arena) ReplaceRoute(i int32, pl geom.Polyline) {
	a.setRoute(i, pl)
}

// AddChildL creates a node of the given kind under parent at loc, writing
// the horizontal-first L-shaped route directly into the shared point array
// (no intermediate polyline allocation). The route is point-for-point what
// geom.LShape(parent, loc)[0] produces, so AddChild and AddChildL build
// identical arenas.
func (a *Arena) AddChildL(parent int32, kind Kind, loc geom.Point) int32 {
	n := a.newSlot(kind, loc)
	a.Parent[n] = parent
	from := a.Loc[parent]
	a.RouteOff[n] = int32(len(a.RoutePts))
	if from.X == loc.X || from.Y == loc.Y {
		a.RoutePts = append(a.RoutePts, from, loc)
		a.RouteLen[n] = 2
	} else {
		a.RoutePts = append(a.RoutePts, from, geom.Point{X: loc.X, Y: from.Y}, loc)
		a.RouteLen[n] = 3
	}
	a.appendChild(parent, n)
	a.touch(n)
	return n
}

// AddSinkL creates a sink under parent with a direct L-route, like AddSink
// but through the allocation-free route writer.
func (a *Arena) AddSinkL(parent int32, loc geom.Point, cap float64, name string) int32 {
	n := a.AddChildL(parent, Sink, loc)
	a.SinkCap[n] = cap
	a.Name[n] = name
	return n
}

// PreOrder visits every slot reachable from the root, parents before
// children, in the same order Tree.PreOrder visits the equivalent pointer
// tree — aggregate accessors below depend on that order so their
// floating-point sums are bit-identical across representations.
func (a *Arena) PreOrder(visit func(i int32)) {
	var rec func(int32)
	rec = func(i int32) {
		visit(i)
		for _, c := range a.Children(i) {
			rec(c)
		}
	}
	rec(a.root)
}

// PostOrder visits every slot reachable from the root, children before
// parents.
func (a *Arena) PostOrder(visit func(i int32)) {
	var rec func(int32)
	rec = func(i int32) {
		for _, c := range a.Children(i) {
			rec(c)
		}
		visit(i)
	}
	rec(a.root)
}

// Sinks returns all sink slots in pre-order.
func (a *Arena) Sinks() []int32 {
	var out []int32
	a.PreOrder(func(i int32) {
		if a.Kind[i] == Sink {
			out = append(out, i)
		}
	})
	return out
}

// NumBuffers counts buffer slots reachable from the root.
func (a *Arena) NumBuffers() int {
	n := 0
	a.PreOrder(func(i int32) {
		if a.Kind[i] == Buffer {
			n++
		}
	})
	return n
}

// EdgeRes returns the wire resistance (kΩ) of slot i's parent edge.
func (a *Arena) EdgeRes(i int32) float64 {
	if a.Parent[i] < 0 {
		return 0
	}
	return a.Tech.Wires[a.WidthIdx[i]].RPerUm * a.EdgeLen(i)
}

// EdgeCap returns the wire capacitance (fF) of slot i's parent edge.
func (a *Arena) EdgeCap(i int32) float64 {
	if a.Parent[i] < 0 {
		return 0
	}
	return a.Tech.Wires[a.WidthIdx[i]].CPerUm * a.EdgeLen(i)
}

// Wirelength returns the total routed wirelength including snaking (µm),
// summed in pre-order exactly like Tree.Wirelength.
func (a *Arena) Wirelength() float64 {
	var wl float64
	a.PreOrder(func(i int32) { wl += a.EdgeLen(i) })
	return wl
}

// WireCap returns the total wire capacitance (fF), summed in pre-order.
func (a *Arena) WireCap() float64 {
	var c float64
	a.PreOrder(func(i int32) { c += a.EdgeCap(i) })
	return c
}

// BufferCap returns the total buffer capacitance cost (fF), summed in
// pre-order.
func (a *Arena) BufferCap() float64 {
	var c float64
	a.PreOrder(func(i int32) {
		if a.BufN[i] > 0 {
			comp := tech.Composite{Type: a.BufType[i], N: int(a.BufN[i])}
			c += comp.CapCost()
		}
	})
	return c
}

// TotalCap is wire plus buffer capacitance, matching Tree.TotalCap term
// order.
func (a *Arena) TotalCap() float64 { return a.WireCap() + a.BufferCap() }

// LoadCap returns the capacitance (fF) a driver sees looking into slot i's
// parent edge, with the same shielding rules and accumulation order as
// Tree.LoadCap.
func (a *Arena) LoadCap(i int32) float64 {
	c := a.EdgeCap(i)
	switch a.Kind[i] {
	case Buffer:
		comp := tech.Composite{Type: a.BufType[i], N: int(a.BufN[i])}
		return c + comp.Cin()
	case Sink:
		return c + a.SinkCap[i]
	}
	for _, ch := range a.Children(i) {
		c += a.LoadCap(ch)
	}
	return c
}

// Clone returns a deep copy of the arena: all per-slot arrays, both span
// arrays, liveness and dirty bitmaps. Clones share only the immutable Tech,
// so a composite sweep can fan out candidate insertions over cheap
// flat-copy clones instead of per-node pointer clones.
func (a *Arena) Clone() *Arena {
	cp := &Arena{Tech: a.Tech, SourceR: a.SourceR, root: a.root}
	cp.Kind = append([]Kind(nil), a.Kind...)
	cp.Loc = append([]geom.Point(nil), a.Loc...)
	cp.Parent = append([]int32(nil), a.Parent...)
	cp.WidthIdx = append([]int32(nil), a.WidthIdx...)
	cp.Snake = append([]float64(nil), a.Snake...)
	cp.SinkCap = append([]float64(nil), a.SinkCap...)
	cp.Name = append([]string(nil), a.Name...)
	cp.BufN = append([]int32(nil), a.BufN...)
	cp.BufType = append([]tech.InverterType(nil), a.BufType...)
	cp.ChildOff = append([]int32(nil), a.ChildOff...)
	cp.ChildLen = append([]int32(nil), a.ChildLen...)
	cp.ChildIdx = append([]int32(nil), a.ChildIdx...)
	cp.RouteOff = append([]int32(nil), a.RouteOff...)
	cp.RouteLen = append([]int32(nil), a.RouteLen...)
	cp.RoutePts = append([]geom.Point(nil), a.RoutePts...)
	cp.Alive = append(Bitset(nil), a.Alive...)
	cp.Dirty = append(Bitset(nil), a.Dirty...)
	return cp
}

// Validate checks the arena's structural invariants directly on the SoA
// form — the same conditions Tree.Validate enforces on the pointer form:
// exactly one live Source (the root), parent/child spans consistent, routes
// rectilinear and connecting parent to node, sinks childless, buffers
// carrying a composite, every live slot reachable, no cycles.
func (a *Arena) Validate() error {
	n := a.Len()
	if n == 0 || !a.Alive.Test(int(a.root)) || a.Kind[a.root] != Source || a.Parent[a.root] >= 0 {
		return fmt.Errorf("ctree: arena: bad root")
	}
	seen := make(Bitset, (n+63)/64)
	var err error
	var rec func(i int32, depth int)
	rec = func(i int32, depth int) {
		if err != nil {
			return
		}
		if depth > n {
			err = fmt.Errorf("ctree: arena: cycle detected at slot %d", i)
			return
		}
		if seen.Test(int(i)) {
			err = fmt.Errorf("ctree: arena: slot %d reached twice", i)
			return
		}
		seen.Set(int(i))
		if !a.Alive.Test(int(i)) {
			err = fmt.Errorf("ctree: arena: dead slot %d reachable", i)
			return
		}
		if p := a.Parent[i]; p >= 0 {
			route := a.Route(i)
			if len(route) < 2 {
				err = fmt.Errorf("ctree: arena: slot %d has no route", i)
				return
			}
			if !route[0].Eq(a.Loc[p], 1e-6) {
				err = fmt.Errorf("ctree: arena: slot %d route does not start at parent (%v vs %v)",
					i, route[0], a.Loc[p])
				return
			}
			if !route[len(route)-1].Eq(a.Loc[i], 1e-6) {
				err = fmt.Errorf("ctree: arena: slot %d route does not end at node (%v vs %v)",
					i, route[len(route)-1], a.Loc[i])
				return
			}
			for k := 1; k < len(route); k++ {
				if route[k-1].X != route[k].X && route[k-1].Y != route[k].Y {
					err = fmt.Errorf("ctree: arena: slot %d route segment %d not rectilinear", i, k)
					return
				}
			}
			if w := a.WidthIdx[i]; w < 0 || int(w) >= len(a.Tech.Wires) {
				err = fmt.Errorf("ctree: arena: slot %d bad width index %d", i, w)
				return
			}
			if a.Snake[i] < 0 {
				err = fmt.Errorf("ctree: arena: slot %d negative snake", i)
				return
			}
		}
		switch a.Kind[i] {
		case Sink:
			if a.ChildLen[i] != 0 {
				err = fmt.Errorf("ctree: arena: sink %d has children", i)
				return
			}
		case Buffer:
			if a.BufN[i] == 0 {
				err = fmt.Errorf("ctree: arena: buffer %d missing composite", i)
				return
			}
		case Source:
			if i != a.root {
				err = fmt.Errorf("ctree: arena: extra source %d", i)
				return
			}
		}
		for _, c := range a.Children(i) {
			if c < 0 || int(c) >= n || a.Parent[c] != i {
				err = fmt.Errorf("ctree: arena: child %d of %d has wrong parent", c, i)
				return
			}
			rec(c, depth+1)
		}
	}
	rec(a.root, 0)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if a.Alive.Test(i) && !seen.Test(i) {
			return fmt.Errorf("ctree: arena: slot %d unreachable from root", i)
		}
	}
	return nil
}
