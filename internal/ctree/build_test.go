package ctree

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"contango/internal/geom"
	"contango/internal/tech"
)

// buildPair grows a pointer tree and an arena through mirrored construction
// calls and returns both.
func buildPair(t *testing.T, rng *rand.Rand) (*Tree, *Arena) {
	t.Helper()
	tk := tech.Default45()
	tr := New(tk, geom.Pt(0, 0), 0.1)
	a := NewArena(tk, geom.Pt(0, 0), 0.1, HintsForSinks(16))
	comp := tech.Composite{Type: tk.Inverters[1], N: 4}

	parents := []int{0}
	for i := 0; i < 40; i++ {
		pid := parents[rng.Intn(len(parents))]
		loc := geom.Pt(rng.Float64()*4000, rng.Float64()*3000)
		switch rng.Intn(3) {
		case 0:
			n := tr.AddChild(tr.Node(pid), Internal, loc)
			s := a.AddChildL(int32(pid), Internal, loc)
			if int32(n.ID) != s {
				t.Fatalf("slot %d != id %d", s, n.ID)
			}
			parents = append(parents, n.ID)
		case 1:
			n := tr.AddChild(tr.Node(pid), Buffer, loc)
			c := comp
			n.Buf = &c
			s := a.AddChildL(int32(pid), Buffer, loc)
			a.SetBuf(s, comp)
			parents = append(parents, n.ID)
		default:
			cp := 10 + rng.Float64()*30
			n := tr.AddSink(tr.Node(pid), loc, cp, "s")
			a.AddSinkL(int32(pid), loc, cp, "s")
			_ = n
		}
	}
	return tr, a
}

func TestBulkConstructionMatchesPointerPath(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr, a := buildPair(t, rng)
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: arena invalid: %v", seed, err)
		}
		back, err := a.ToTree()
		if err != nil {
			t.Fatalf("seed %d: ToTree: %v", seed, err)
		}
		treesEqual(t, tr, back)

		// Aggregate accessors agree bit for bit with the pointer tree's.
		if got, want := a.Wirelength(), tr.Wirelength(); got != want {
			t.Fatalf("seed %d: wirelength %v != %v", seed, got, want)
		}
		if got, want := a.WireCap(), tr.WireCap(); got != want {
			t.Fatalf("seed %d: wirecap %v != %v", seed, got, want)
		}
		if got, want := a.BufferCap(), tr.BufferCap(); got != want {
			t.Fatalf("seed %d: buffercap %v != %v", seed, got, want)
		}
		if got, want := a.TotalCap(), tr.TotalCap(); got != want {
			t.Fatalf("seed %d: totalcap %v != %v", seed, got, want)
		}
		for id := 0; id < tr.MaxID(); id++ {
			n := tr.Node(id)
			if n == nil || n.Parent == nil {
				continue
			}
			if got, want := a.LoadCap(int32(id)), tr.LoadCap(n); got != want {
				t.Fatalf("seed %d: loadcap(%d) %v != %v", seed, id, got, want)
			}
			if got, want := a.EdgeRes(int32(id)), tr.EdgeRes(n); got != want {
				t.Fatalf("seed %d: edgeres(%d) %v != %v", seed, id, got, want)
			}
		}

		// Pre/post-order visit sequences match the pointer traversals.
		var wantPre, gotPre []int
		tr.PreOrder(func(n *Node) { wantPre = append(wantPre, n.ID) })
		a.PreOrder(func(i int32) { gotPre = append(gotPre, int(i)) })
		if !reflect.DeepEqual(wantPre, gotPre) {
			t.Fatalf("seed %d: preorder differs", seed)
		}
		var wantPost, gotPost []int
		tr.PostOrder(func(n *Node) { wantPost = append(wantPost, n.ID) })
		a.PostOrder(func(i int32) { gotPost = append(gotPost, int(i)) })
		if !reflect.DeepEqual(wantPost, gotPost) {
			t.Fatalf("seed %d: postorder differs", seed)
		}
	}
}

func TestReserveAvoidsReallocation(t *testing.T) {
	tk := tech.Default45()
	h := HintsForSinks(64)
	a := NewArena(tk, geom.Pt(0, 0), 0.1, h)
	kindPtr := &a.Kind[:1][0]
	ptsCap, idxCap := cap(a.RoutePts), cap(a.ChildIdx)
	parents := []int32{a.Root()}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 64; i++ {
		p := parents[rng.Intn(len(parents))]
		s := a.AddChildL(p, Internal, geom.Pt(rng.Float64()*1000, rng.Float64()*1000))
		parents = append(parents, s)
		a.AddSinkL(s, geom.Pt(rng.Float64()*1000, rng.Float64()*1000), 20, "")
	}
	if &a.Kind[:1][0] != kindPtr {
		t.Fatal("per-slot arrays reallocated despite Reserve")
	}
	if cap(a.RoutePts) != ptsCap {
		t.Fatalf("RoutePts reallocated: cap %d -> %d", ptsCap, cap(a.RoutePts))
	}
	if cap(a.ChildIdx) != idxCap {
		t.Fatalf("ChildIdx reallocated: cap %d -> %d", idxCap, cap(a.ChildIdx))
	}
}

func TestArenaCloneIsDeep(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	_, a := buildPair(t, rng)
	cp := a.Clone()
	before, err := a.ToTree()
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the clone heavily; the original must not move.
	sinks := cp.Sinks()
	cp.SetWidth(sinks[0], 1)
	cp.SetSnake(sinks[0], 99)
	cp.InsertOnEdge(sinks[0], 1, Internal)
	cp.DeleteSubtree(sinks[len(sinks)-1])
	after, err := a.ToTree()
	if err != nil {
		t.Fatal(err)
	}
	treesEqual(t, before, after)
	if reflect.DeepEqual(a.DirtyIDs(), cp.DirtyIDs()) {
		t.Fatal("clone mutations journaled on the original")
	}
}

func TestArenaValidateCatchesDamage(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	_, a := buildPair(t, rng)
	if err := a.Validate(); err != nil {
		t.Fatalf("fresh arena invalid: %v", err)
	}
	// Dangle a child reference.
	bad := a.Clone()
	for i := range bad.ChildIdx {
		if bad.ChildIdx[i] != bad.Root() {
			bad.ChildIdx[i] = bad.Root() // root can't be a child: wrong parent
			break
		}
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("corrupted child span passed validation")
	}
	// Kill a reachable slot.
	bad2 := a.Clone()
	bad2.Alive.Unset(int(bad2.Children(bad2.Root())[0]))
	if err := bad2.Validate(); err == nil || !strings.Contains(err.Error(), "dead slot") {
		t.Fatalf("dead-but-reachable slot not caught: %v", err)
	}
}

func TestAddChildLMatchesAddChild(t *testing.T) {
	tk := tech.Default45()
	for _, pts := range [][2]geom.Point{
		{geom.Pt(0, 0), geom.Pt(100, 50)},  // true L
		{geom.Pt(10, 10), geom.Pt(10, 80)}, // vertical
		{geom.Pt(10, 10), geom.Pt(90, 10)}, // horizontal
		{geom.Pt(5, 5), geom.Pt(5, 5)},     // degenerate
	} {
		a := NewArena(tk, pts[0], 0.1, BuildHints{})
		b := NewArena(tk, pts[0], 0.1, BuildHints{})
		sa := a.AddChildL(a.Root(), Internal, pts[1])
		sb := b.AddChild(b.Root(), Internal, pts[1])
		if !reflect.DeepEqual(a.Route(sa), b.Route(sb)) {
			t.Fatalf("%v->%v: AddChildL route %v != AddChild route %v",
				pts[0], pts[1], a.Route(sa), b.Route(sb))
		}
	}
}
