package ctree

import (
	"math"
	"math/rand"
	"testing"

	"contango/internal/geom"
	"contango/internal/tech"
)

func newTestTree() *Tree {
	return New(tech.Default45(), geom.Pt(0, 0), 0.05)
}

func TestAddChildAndValidate(t *testing.T) {
	tr := newTestTree()
	a := tr.AddChild(tr.Root, Internal, geom.Pt(100, 50))
	tr.AddSink(a, geom.Pt(200, 50), 35, "s1")
	tr.AddSink(a, geom.Pt(100, 200), 35, "s2")
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Sinks()); got != 2 {
		t.Errorf("sinks=%d want 2", got)
	}
	if tr.NumNodes() != 4 {
		t.Errorf("nodes=%d want 4", tr.NumNodes())
	}
	// L-shaped route to a: 100 + 50.
	if got := a.EdgeLen(); got != 150 {
		t.Errorf("edge len=%v want 150", got)
	}
}

func TestInsertOnEdge(t *testing.T) {
	tr := newTestTree()
	s := tr.AddSink(tr.Root, geom.Pt(100, 100), 35, "s")
	before := s.EdgeLen()
	b := tr.InsertOnEdge(s, 60, Buffer)
	comp := tech.Composite{Type: tr.Tech.Inverters[1], N: 8}
	b.Buf = &comp
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.EdgeLen()-60) > 1e-9 {
		t.Errorf("upper edge=%v want 60", b.EdgeLen())
	}
	if math.Abs(b.EdgeLen()+s.EdgeLen()-before) > 1e-9 {
		t.Errorf("length not conserved: %v + %v != %v", b.EdgeLen(), s.EdgeLen(), before)
	}
	if s.Parent != b || b.Parent != tr.Root {
		t.Error("parent pointers wrong after insert")
	}
}

func TestRemoveDegree2RoundTrip(t *testing.T) {
	tr := newTestTree()
	s := tr.AddSink(tr.Root, geom.Pt(100, 100), 35, "s")
	totalBefore := tr.Wirelength()
	mid := tr.InsertOnEdge(s, 80, Internal)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	tr.RemoveDegree2(mid)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.Wirelength()-totalBefore) > 1e-9 {
		t.Errorf("wirelength changed: %v vs %v", tr.Wirelength(), totalBefore)
	}
	if s.Parent != tr.Root {
		t.Error("splice did not restore parent")
	}
	if tr.NumNodes() != 2 {
		t.Errorf("nodes=%d want 2", tr.NumNodes())
	}
}

func TestRemoveDegree2KeepsSnake(t *testing.T) {
	tr := newTestTree()
	s := tr.AddSink(tr.Root, geom.Pt(100, 0), 35, "s")
	mid := tr.InsertOnEdge(s, 50, Internal)
	mid.Snake = 7
	s.Snake = 3
	tr.RemoveDegree2(mid)
	if s.Snake != 10 {
		t.Errorf("snake=%v want 10", s.Snake)
	}
}

func TestCapAccounting(t *testing.T) {
	tr := newTestTree()
	s := tr.AddSink(tr.Root, geom.Pt(1000, 0), 42, "s")
	w := tr.Tech.Wires[s.WidthIdx]
	if got, want := tr.WireCap(), 1000*w.CPerUm; math.Abs(got-want) > 1e-9 {
		t.Errorf("WireCap=%v want %v", got, want)
	}
	b := tr.InsertOnEdge(s, 500, Buffer)
	comp := tech.Composite{Type: tr.Tech.Inverters[1], N: 8}
	b.Buf = &comp
	if got, want := tr.BufferCap(), comp.CapCost(); math.Abs(got-want) > 1e-9 {
		t.Errorf("BufferCap=%v want %v", got, want)
	}
	if got := tr.SinkCapTotal(); got != 42 {
		t.Errorf("SinkCapTotal=%v", got)
	}
	if math.Abs(tr.TotalCap()-(tr.WireCap()+tr.BufferCap())) > 1e-9 {
		t.Error("TotalCap mismatch")
	}
	// Snaking adds wire cap.
	before := tr.WireCap()
	s.Snake = 100
	if got, want := tr.WireCap(), before+100*w.CPerUm; math.Abs(got-want) > 1e-9 {
		t.Errorf("snaked WireCap=%v want %v", got, want)
	}
}

func TestInversionParity(t *testing.T) {
	tr := newTestTree()
	s := tr.AddSink(tr.Root, geom.Pt(100, 0), 35, "s")
	if tr.InversionParity(s) != 0 {
		t.Error("no buffers: parity should be 0")
	}
	comp := tech.Composite{Type: tr.Tech.Inverters[1], N: 8}
	b1 := tr.InsertOnEdge(s, 30, Buffer)
	b1.Buf = &comp
	if tr.InversionParity(s) != 1 {
		t.Error("one inverter: parity should be 1")
	}
	b2 := tr.InsertOnEdge(s, 30, Buffer)
	b2.Buf = &comp
	if tr.InversionParity(s) != 0 {
		t.Error("two inverters: parity should be 0")
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := newTestTree()
	a := tr.AddChild(tr.Root, Internal, geom.Pt(50, 50))
	s := tr.AddSink(a, geom.Pt(100, 100), 35, "s")
	b := tr.InsertOnEdge(s, 20, Buffer)
	comp := tech.Composite{Type: tr.Tech.Inverters[1], N: 16}
	b.Buf = &comp

	cp := tr.Clone()
	if err := cp.Validate(); err != nil {
		t.Fatal(err)
	}
	if cp.Wirelength() != tr.Wirelength() || cp.TotalCap() != tr.TotalCap() {
		t.Error("clone differs in metrics")
	}
	// Mutating the clone must not affect the original.
	cp.Node(s.ID).Snake = 500
	cp.Node(b.ID).Buf.N = 32
	if s.Snake != 0 {
		t.Error("clone mutation leaked into original snake")
	}
	if b.Buf.N != 16 {
		t.Error("clone mutation leaked into original buffer")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr := newTestTree()
	s := tr.AddSink(tr.Root, geom.Pt(100, 0), 35, "s")

	// Broken route endpoint.
	save := s.Route
	s.Route = geom.Polyline{geom.Pt(5, 5), geom.Pt(100, 0)}
	if tr.Validate() == nil {
		t.Error("expected route-start violation")
	}
	s.Route = save

	// Sink with a child.
	bad := &Node{ID: len(tr.nodes), Kind: Internal, Loc: geom.Pt(200, 0), Parent: s,
		Route: geom.Polyline{geom.Pt(100, 0), geom.Pt(200, 0)}}
	tr.nodes = append(tr.nodes, bad)
	s.Children = append(s.Children, bad)
	if tr.Validate() == nil {
		t.Error("expected sink-with-children violation")
	}
	s.Children = nil
	tr.nodes[bad.ID] = nil

	// Buffer without composite.
	b := tr.InsertOnEdge(s, 50, Buffer)
	if tr.Validate() == nil {
		t.Error("expected buffer-missing-composite violation")
	}
	comp := tech.Composite{Type: tr.Tech.Inverters[0], N: 1}
	b.Buf = &comp
	if err := tr.Validate(); err != nil {
		t.Fatalf("tree should be valid again: %v", err)
	}
}

func TestRandomTreeInvariants(t *testing.T) {
	// Property: random sequences of AddChild/InsertOnEdge/RemoveDegree2
	// keep the tree valid and conserve wirelength under splice.
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 30; iter++ {
		tr := newTestTree()
		var inserted []*Node
		for op := 0; op < 60; op++ {
			switch rng.Intn(3) {
			case 0:
				parents := []*Node{tr.Root}
				tr.PreOrder(func(n *Node) {
					if n.Kind == Internal {
						parents = append(parents, n)
					}
				})
				p := parents[rng.Intn(len(parents))]
				loc := geom.Pt(float64(rng.Intn(1000)), float64(rng.Intn(1000)))
				if rng.Intn(2) == 0 {
					tr.AddSink(p, loc, 35, "")
				} else {
					tr.AddChild(p, Internal, loc)
				}
			case 1:
				var edges []*Node
				tr.PreOrder(func(n *Node) {
					if n.Parent != nil && n.EdgeLen() > 2 {
						edges = append(edges, n)
					}
				})
				if len(edges) > 0 {
					e := edges[rng.Intn(len(edges))]
					d := rng.Float64() * e.Route.Length()
					inserted = append(inserted, tr.InsertOnEdge(e, d, Internal))
				}
			case 2:
				if len(inserted) > 0 {
					i := rng.Intn(len(inserted))
					n := inserted[i]
					if tr.Node(n.ID) == n && len(n.Children) == 1 {
						tr.RemoveDegree2(n)
						inserted = append(inserted[:i], inserted[i+1:]...)
					}
				}
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
	}
}

func TestPrePostOrder(t *testing.T) {
	tr := newTestTree()
	a := tr.AddChild(tr.Root, Internal, geom.Pt(10, 0))
	tr.AddSink(a, geom.Pt(20, 0), 1, "x")
	tr.AddSink(a, geom.Pt(10, 10), 1, "y")

	var pre, post []int
	tr.PreOrder(func(n *Node) { pre = append(pre, n.ID) })
	tr.PostOrder(func(n *Node) { post = append(post, n.ID) })
	if pre[0] != tr.Root.ID {
		t.Error("pre-order must start at root")
	}
	if post[len(post)-1] != tr.Root.ID {
		t.Error("post-order must end at root")
	}
	if len(pre) != 4 || len(post) != 4 {
		t.Errorf("visit counts %d/%d", len(pre), len(post))
	}
}

func TestPathToRoot(t *testing.T) {
	tr := newTestTree()
	a := tr.AddChild(tr.Root, Internal, geom.Pt(10, 0))
	s := tr.AddSink(a, geom.Pt(20, 0), 1, "x")
	path := tr.PathToRoot(s)
	if len(path) != 3 || path[0] != s || path[2] != tr.Root {
		t.Errorf("path wrong: %v", path)
	}
}
