// Package ctree defines the clock-tree data structure shared by every stage
// of the synthesizer: topology construction (DME), obstacle-avoiding
// rerouting, buffer insertion, polarity correction and the SPICE-driven
// optimization passes.
//
// A tree is a rooted collection of nodes. Every non-root node owns the edge
// that connects it to its parent: a rectilinear route, a wire-width index
// into the technology's wire table, and an optional snaking allowance (extra
// serpentine length used to slow fast paths down). Buffers (inverters) are
// nodes of kind Buffer placed on edges.
package ctree

import (
	"fmt"

	"contango/internal/geom"
	"contango/internal/tech"
)

// Kind classifies tree nodes.
type Kind uint8

const (
	// Source is the clock entry point; exactly one per tree (the root).
	Source Kind = iota
	// Internal is a Steiner/merge point with no device.
	Internal
	// Buffer is an inverting clock buffer (a composite inverter).
	Buffer
	// Sink is a clock endpoint (flip-flop clock pin).
	Sink
)

func (k Kind) String() string {
	switch k {
	case Source:
		return "source"
	case Internal:
		return "internal"
	case Buffer:
		return "buffer"
	case Sink:
		return "sink"
	}
	return "?"
}

// Node is one vertex of the clock tree. The fields Route, WidthIdx and Snake
// describe the edge from Parent to this node and are meaningless on the root.
type Node struct {
	ID       int
	Kind     Kind
	Loc      geom.Point
	Parent   *Node
	Children []*Node

	// Route is the rectilinear wire from Parent.Loc to Loc. A nil route on
	// a non-root node means a direct L-shape is implied and must be
	// materialized by the caller; the constructor helpers always set it.
	Route geom.Polyline
	// WidthIdx selects the wire type (index into Tech.Wires) of this edge.
	WidthIdx int
	// Snake is extra serpentine wirelength (µm) added to this edge to slow
	// it down; it contributes R and C but no displacement.
	Snake float64

	// Buf is the composite inverter driving this node's subtree; non-nil
	// exactly when Kind == Buffer. Clock buffers invert polarity.
	Buf *tech.Composite

	// SinkCap is the load capacitance (fF) when Kind == Sink.
	SinkCap float64
	Name    string
}

// EdgeLen returns the electrical length of the node's parent edge in µm:
// routed length plus snaking.
func (n *Node) EdgeLen() float64 {
	if n.Parent == nil {
		return 0
	}
	return n.Route.Length() + n.Snake
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Tree is a clock tree over a technology. The zero value is not usable; use
// New.
type Tree struct {
	Tech *tech.Tech
	Root *Node
	// SourceR is the output resistance (kΩ) of the clock source driving the
	// root at the reference corner.
	SourceR float64

	nodes []*Node // dense by ID; nil entries mark deleted nodes

	// Mutation journal (see dirty.go): gen bumps on every recorded
	// mutation, touched maps node IDs to the generation that last
	// modified them.
	gen     uint64
	touched map[int]uint64
}

// New creates a tree with a single Source node at loc, driven by a source
// with the given output resistance (kΩ).
func New(t *tech.Tech, loc geom.Point, sourceR float64) *Tree {
	tr := &Tree{Tech: t, SourceR: sourceR}
	root := &Node{ID: 0, Kind: Source, Loc: loc}
	tr.Root = root
	tr.nodes = []*Node{root}
	return tr
}

// NumNodes returns the number of live nodes.
func (tr *Tree) NumNodes() int {
	n := 0
	for _, nd := range tr.nodes {
		if nd != nil {
			n++
		}
	}
	return n
}

// Node returns the node with the given ID, or nil.
func (tr *Tree) Node(id int) *Node {
	if id < 0 || id >= len(tr.nodes) {
		return nil
	}
	return tr.nodes[id]
}

// MaxID returns the largest ID ever allocated plus one (the length of the
// dense node table).
func (tr *Tree) MaxID() int { return len(tr.nodes) }

// AddChild creates a node of the given kind under parent at loc with a
// direct L-shaped route (horizontal-first) and the default wire width.
func (tr *Tree) AddChild(parent *Node, kind Kind, loc geom.Point) *Node {
	n := &Node{
		ID:     len(tr.nodes),
		Kind:   kind,
		Loc:    loc,
		Parent: parent,
		Route:  geom.LShape(parent.Loc, loc)[0],
	}
	parent.Children = append(parent.Children, n)
	tr.nodes = append(tr.nodes, n)
	tr.touch(n)
	return n
}

// AddSink creates a sink node under parent.
func (tr *Tree) AddSink(parent *Node, loc geom.Point, cap float64, name string) *Node {
	n := tr.AddChild(parent, Sink, loc)
	n.SinkCap = cap
	n.Name = name
	return n
}

// InsertOnEdge splits node n's parent edge at Manhattan distance d from the
// parent (along the route) and inserts a new node of the given kind there.
// The new node inherits the edge's width; the snaking allowance is divided
// pro-rata between the two halves (snake is modeled as uniformly distributed
// extra length). It returns the inserted node.
func (tr *Tree) InsertOnEdge(n *Node, d float64, kind Kind) *Node {
	parent := n.Parent
	if parent == nil {
		panic("ctree: InsertOnEdge on root")
	}
	upper, lower := n.Route.Split(d)
	frac := 0.0
	if rl := n.Route.Length(); rl > 0 {
		frac = d / rl
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
	}
	snakeUp := n.Snake * frac
	n.Snake -= snakeUp
	mid := &Node{
		ID:       len(tr.nodes),
		Kind:     kind,
		Loc:      upper[len(upper)-1],
		Parent:   parent,
		Children: []*Node{n},
		Route:    upper,
		WidthIdx: n.WidthIdx,
		Snake:    snakeUp,
	}
	tr.nodes = append(tr.nodes, mid)
	for i, c := range parent.Children {
		if c == n {
			parent.Children[i] = mid
			break
		}
	}
	n.Parent = mid
	n.Route = lower
	tr.touch(mid)
	tr.touch(n)
	return mid
}

// SlideDegree2 moves a node with exactly one child to a new position along
// the combined parent-edge + child-edge corridor: newDist is the Manhattan
// route distance from the (unchanged) parent. Used for buffer sliding — the
// total corridor length and snaking are preserved, only the split point
// moves.
func (tr *Tree) SlideDegree2(n *Node, newDist float64) {
	if n.Parent == nil || len(n.Children) != 1 {
		panic("ctree: SlideDegree2 needs a non-root node with one child")
	}
	child := n.Children[0]
	joined := append(append(geom.Polyline(nil), n.Route...), child.Route...)
	joined = joined.Simplify()
	if len(joined) < 2 {
		// A fully zero-length corridor collapses to one point under
		// Simplify; keep the 2-point route invariant.
		joined = geom.Polyline{n.Parent.Loc, child.Loc}
	}
	totalSnake := n.Snake + child.Snake
	total := joined.Length()
	if newDist < 0 {
		newDist = 0
	}
	if newDist > total {
		newDist = total
	}
	upper, lower := joined.Split(newDist)
	n.Route = upper
	n.Loc = upper[len(upper)-1]
	child.Route = lower
	if total > 0 {
		n.Snake = totalSnake * newDist / total
	} else {
		n.Snake = 0
	}
	child.Snake = totalSnake - n.Snake
	tr.touch(n)
	tr.touch(child)
}

// RemoveDegree2 splices out an Internal or Buffer node that has exactly one
// child, joining its parent edge with the child's edge. The child keeps its
// own width; snaking allowances are added together on the child.
func (tr *Tree) RemoveDegree2(n *Node) {
	if n.Parent == nil || len(n.Children) != 1 || n.Kind == Sink || n.Kind == Source {
		panic("ctree: RemoveDegree2 needs a non-root, non-sink node with one child")
	}
	child := n.Children[0]
	joined := append(append(geom.Polyline(nil), n.Route...), child.Route...)
	joined = joined.Simplify()
	if len(joined) < 2 {
		// Both edges were zero-length (stacked nodes), so Simplify collapsed
		// the join to a single point; every live edge keeps a 2-point route.
		joined = geom.Polyline{n.Parent.Loc, child.Loc}
	}
	child.Route = joined
	child.Snake += n.Snake
	child.Parent = n.Parent
	for i, c := range n.Parent.Children {
		if c == n {
			n.Parent.Children[i] = child
			break
		}
	}
	tr.nodes[n.ID] = nil
	n.Parent = nil
	n.Children = nil
	tr.touch(child)
}

// Detach removes n from its parent's child list, leaving n (and its
// subtree) orphaned but still in the node table. Use Attach to re-home it or
// DeleteSubtree to discard it.
func (tr *Tree) Detach(n *Node) {
	if n.Parent == nil {
		panic("ctree: Detach on root")
	}
	p := n.Parent
	for i, c := range p.Children {
		if c == n {
			p.Children = append(p.Children[:i], p.Children[i+1:]...)
			break
		}
	}
	n.Parent = nil
	tr.touch(p)
}

// Attach re-homes a detached node n under parent with the given route
// (which must run from parent.Loc to n.Loc). A nil route means a direct
// L-shape.
func (tr *Tree) Attach(n *Node, parent *Node, route geom.Polyline) {
	if n.Parent != nil {
		panic("ctree: Attach on non-orphan")
	}
	if route == nil {
		route = geom.LShape(parent.Loc, n.Loc)[0]
	}
	n.Parent = parent
	n.Route = route
	parent.Children = append(parent.Children, n)
	tr.touch(n)
}

// DeleteSubtree removes n and all its descendants from the tree. n is
// detached from its parent first if still attached.
func (tr *Tree) DeleteSubtree(n *Node) {
	if n.Parent != nil {
		tr.Detach(n) // journals the parent
	}
	var rec func(*Node)
	rec = func(m *Node) {
		for _, c := range m.Children {
			rec(c)
		}
		tr.nodes[m.ID] = nil
		m.Children = nil
		m.Parent = nil
	}
	rec(n)
}

// PreOrder visits every live node top-down (parents before children).
func (tr *Tree) PreOrder(visit func(*Node)) {
	var rec func(*Node)
	rec = func(n *Node) {
		visit(n)
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(tr.Root)
}

// PostOrder visits every live node bottom-up (children before parents).
func (tr *Tree) PostOrder(visit func(*Node)) {
	var rec func(*Node)
	rec = func(n *Node) {
		for _, c := range n.Children {
			rec(c)
		}
		visit(n)
	}
	rec(tr.Root)
}

// Sinks returns all sink nodes in pre-order.
func (tr *Tree) Sinks() []*Node {
	var out []*Node
	tr.PreOrder(func(n *Node) {
		if n.Kind == Sink {
			out = append(out, n)
		}
	})
	return out
}

// Buffers returns all buffer nodes in pre-order.
func (tr *Tree) Buffers() []*Node {
	var out []*Node
	tr.PreOrder(func(n *Node) {
		if n.Kind == Buffer {
			out = append(out, n)
		}
	})
	return out
}

// EdgeRes returns the wire resistance (kΩ) of n's parent edge.
func (tr *Tree) EdgeRes(n *Node) float64 {
	if n.Parent == nil {
		return 0
	}
	return tr.Tech.Wires[n.WidthIdx].RPerUm * n.EdgeLen()
}

// EdgeCap returns the wire capacitance (fF) of n's parent edge.
func (tr *Tree) EdgeCap(n *Node) float64 {
	if n.Parent == nil {
		return 0
	}
	return tr.Tech.Wires[n.WidthIdx].CPerUm * n.EdgeLen()
}

// Wirelength returns the total routed wirelength including snaking (µm).
func (tr *Tree) Wirelength() float64 {
	var wl float64
	tr.PreOrder(func(n *Node) { wl += n.EdgeLen() })
	return wl
}

// WireCap returns the total wire capacitance (fF).
func (tr *Tree) WireCap() float64 {
	var c float64
	tr.PreOrder(func(n *Node) { c += tr.EdgeCap(n) })
	return c
}

// BufferCap returns the total buffer capacitance cost (fF): input plus
// output capacitance of every inserted composite, as counted against the
// contest capacitance limit.
func (tr *Tree) BufferCap() float64 {
	var c float64
	tr.PreOrder(func(n *Node) {
		if n.Buf != nil {
			c += n.Buf.CapCost()
		}
	})
	return c
}

// SinkCapTotal returns the sum of all sink load capacitances (fF).
func (tr *Tree) SinkCapTotal() float64 {
	var c float64
	tr.PreOrder(func(n *Node) { c += n.SinkCap })
	return c
}

// TotalCap is the capacitance charged against the benchmark's limit: wire
// plus buffers. Sink pin capacitance is part of the design, not the clock
// network, and is excluded (as in the contest).
func (tr *Tree) TotalCap() float64 { return tr.WireCap() + tr.BufferCap() }

// LoadCap returns the capacitance (fF) a driver sees looking into node n's
// parent edge: the edge's wire capacitance plus n's load. Buffer inputs
// shield everything below them; sinks contribute their pin capacitance;
// internal nodes recurse into their children.
func (tr *Tree) LoadCap(n *Node) float64 {
	c := tr.EdgeCap(n)
	switch n.Kind {
	case Buffer:
		return c + n.Buf.Cin()
	case Sink:
		return c + n.SinkCap
	}
	for _, ch := range n.Children {
		c += tr.LoadCap(ch)
	}
	return c
}

// InversionParity returns the number of inverting buffers on the path from
// the root to n, modulo 2. Sinks require parity 0 (same polarity as the
// source).
func (tr *Tree) InversionParity(n *Node) int {
	p := 0
	for cur := n; cur != nil; cur = cur.Parent {
		if cur.Kind == Buffer {
			p ^= 1
		}
	}
	return p
}

// PathToRoot returns n, n.Parent, …, root.
func (tr *Tree) PathToRoot(n *Node) []*Node {
	var out []*Node
	for cur := n; cur != nil; cur = cur.Parent {
		out = append(out, cur)
	}
	return out
}

// Clone returns a deep copy of the tree. Node IDs, kinds, routes, widths,
// snaking, buffers and sink data are all copied; the copy shares only the
// immutable Tech.
func (tr *Tree) Clone() *Tree {
	cp := &Tree{Tech: tr.Tech, SourceR: tr.SourceR, gen: tr.gen}
	if tr.touched != nil {
		cp.touched = make(map[int]uint64, len(tr.touched))
		for id, g := range tr.touched {
			cp.touched[id] = g
		}
	}
	cp.nodes = make([]*Node, len(tr.nodes))
	for id, n := range tr.nodes {
		if n == nil {
			continue
		}
		nn := &Node{
			ID:       n.ID,
			Kind:     n.Kind,
			Loc:      n.Loc,
			Route:    append(geom.Polyline(nil), n.Route...),
			WidthIdx: n.WidthIdx,
			Snake:    n.Snake,
			SinkCap:  n.SinkCap,
			Name:     n.Name,
		}
		if n.Buf != nil {
			b := *n.Buf
			nn.Buf = &b
		}
		cp.nodes[id] = nn
	}
	for id, n := range tr.nodes {
		if n == nil {
			continue
		}
		nn := cp.nodes[id]
		if n.Parent != nil {
			nn.Parent = cp.nodes[n.Parent.ID]
		}
		nn.Children = make([]*Node, len(n.Children))
		for i, c := range n.Children {
			nn.Children[i] = cp.nodes[c.ID]
		}
	}
	cp.Root = cp.nodes[tr.Root.ID]
	return cp
}

// Restore rebuilds a Tree from an externally reconstructed node table —
// the inverse of walking tr.Node(id) for id < tr.MaxID(). nodes must be
// dense by ID (nil entries mark deleted IDs) with Parent and Children
// pointers already linked; the single Source node is taken as the root.
// The rebuilt tree is validated before being returned, so a decoder
// feeding this from persisted bytes can trust the result as much as a
// freshly synthesized tree.
func Restore(t *tech.Tech, sourceR float64, nodes []*Node) (*Tree, error) {
	tr := &Tree{Tech: t, SourceR: sourceR, nodes: nodes}
	for _, n := range nodes {
		if n != nil && n.Kind == Source {
			if tr.Root != nil {
				return nil, fmt.Errorf("ctree: restore found two source nodes (%d and %d)", tr.Root.ID, n.ID)
			}
			tr.Root = n
		}
	}
	if tr.Root == nil {
		return nil, fmt.Errorf("ctree: restore found no source node")
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("ctree: restore: %w", err)
	}
	return tr, nil
}

// Validate checks structural invariants and returns the first violation:
// exactly one root of kind Source; parent/child pointers consistent; every
// route connects Parent.Loc to Loc with axis-parallel segments; sinks are
// leaves; buffers carry a composite; no node is its own ancestor.
func (tr *Tree) Validate() error {
	if tr.Root == nil || tr.Root.Kind != Source || tr.Root.Parent != nil {
		return fmt.Errorf("ctree: bad root")
	}
	seen := make(map[int]bool)
	var err error
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		if err != nil {
			return
		}
		if depth > len(tr.nodes) {
			err = fmt.Errorf("ctree: cycle detected at node %d", n.ID)
			return
		}
		if seen[n.ID] {
			err = fmt.Errorf("ctree: node %d reached twice", n.ID)
			return
		}
		seen[n.ID] = true
		if tr.nodes[n.ID] != n {
			err = fmt.Errorf("ctree: node %d not in table", n.ID)
			return
		}
		if n.Parent != nil {
			if len(n.Route) < 2 {
				err = fmt.Errorf("ctree: node %d has no route", n.ID)
				return
			}
			if !n.Route[0].Eq(n.Parent.Loc, 1e-6) {
				err = fmt.Errorf("ctree: node %d route does not start at parent (%v vs %v)",
					n.ID, n.Route[0], n.Parent.Loc)
				return
			}
			if !n.Route[len(n.Route)-1].Eq(n.Loc, 1e-6) {
				err = fmt.Errorf("ctree: node %d route does not end at node (%v vs %v)",
					n.ID, n.Route[len(n.Route)-1], n.Loc)
				return
			}
			for i := 1; i < len(n.Route); i++ {
				a, b := n.Route[i-1], n.Route[i]
				if a.X != b.X && a.Y != b.Y {
					err = fmt.Errorf("ctree: node %d route segment %d not rectilinear", n.ID, i)
					return
				}
			}
			if n.WidthIdx < 0 || n.WidthIdx >= len(tr.Tech.Wires) {
				err = fmt.Errorf("ctree: node %d bad width index %d", n.ID, n.WidthIdx)
				return
			}
			if n.Snake < 0 {
				err = fmt.Errorf("ctree: node %d negative snake", n.ID)
				return
			}
		}
		switch n.Kind {
		case Sink:
			if len(n.Children) != 0 {
				err = fmt.Errorf("ctree: sink %d has children", n.ID)
				return
			}
		case Buffer:
			if n.Buf == nil {
				err = fmt.Errorf("ctree: buffer %d missing composite", n.ID)
				return
			}
		case Source:
			if n != tr.Root {
				err = fmt.Errorf("ctree: extra source %d", n.ID)
				return
			}
		}
		for _, c := range n.Children {
			if c.Parent != n {
				err = fmt.Errorf("ctree: child %d of %d has wrong parent", c.ID, n.ID)
				return
			}
			rec(c, depth+1)
		}
	}
	rec(tr.Root, 0)
	if err != nil {
		return err
	}
	for id, n := range tr.nodes {
		if n != nil && !seen[id] {
			return fmt.Errorf("ctree: node %d unreachable from root", id)
		}
	}
	return nil
}
