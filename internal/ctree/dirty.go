package ctree

// Mutation journal. Every structural or electrical change to the tree bumps
// a monotone generation counter and records which nodes were touched, so
// incremental consumers (the staged-netlist cache in package analysis and
// the per-stage simulation cache in package spice) can find the dirty cone
// without re-walking an unchanged network. Multiple consumers can track the
// same tree independently: each remembers the generation it last synced at
// and asks for the nodes touched since.
//
// The journal is advisory for performance but not load-bearing for
// correctness on its own: consumers additionally validate reused state
// against per-stage content signatures, so a mutation that bypasses the
// setters below is caught when its stage is next rebuilt. Optimization
// passes must still use the setters — SetWidth, SetSnake, AddSnake,
// SetBufferSize — for edits to be picked up incrementally.

// Gen returns the tree's current mutation generation. It increases by at
// least one for every recorded mutation and never decreases on a live tree
// (restoring a snapshot via struct assignment replaces the whole journal,
// which consumers detect through the root pointer changing).
func (tr *Tree) Gen() uint64 { return tr.gen }

// touch records a mutation affecting node n.
func (tr *Tree) touch(n *Node) {
	if n == nil {
		return
	}
	tr.gen++
	if tr.touched == nil {
		tr.touched = make(map[int]uint64)
	}
	tr.touched[n.ID] = tr.gen
}

// TouchedSince returns the IDs of nodes modified after generation gen, in
// unspecified order. IDs of since-deleted nodes may be included; callers
// must tolerate Node(id) == nil. A nil result means nothing changed.
func (tr *Tree) TouchedSince(gen uint64) []int {
	if tr.gen <= gen {
		return nil
	}
	var out []int
	for id, g := range tr.touched {
		if g > gen {
			out = append(out, id)
		}
	}
	return out
}

// SetWidth changes the wire type of n's parent edge and journals the edit.
func (tr *Tree) SetWidth(n *Node, idx int) {
	if n.WidthIdx == idx {
		return
	}
	n.WidthIdx = idx
	tr.touch(n)
}

// SetSnake sets the serpentine allowance (µm) of n's parent edge and
// journals the edit.
func (tr *Tree) SetSnake(n *Node, v float64) {
	if n.Snake == v {
		return
	}
	n.Snake = v
	tr.touch(n)
}

// AddSnake adds dv µm of serpentine allowance to n's parent edge and
// journals the edit.
func (tr *Tree) AddSnake(n *Node, dv float64) {
	if dv == 0 {
		return
	}
	n.Snake += dv
	tr.touch(n)
}

// SetBufferSize changes the parallel-inverter count of a buffer node and
// journals the edit. Consumers treat a touched buffer as dirtying both the
// stage it drives (drive strength, output self-loading) and the stage its
// input pin loads.
func (tr *Tree) SetBufferSize(n *Node, count int) {
	if n.Buf == nil || n.Buf.N == count {
		return
	}
	n.Buf.N = count
	tr.touch(n)
}
