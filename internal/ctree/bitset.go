package ctree

import "math/bits"

// Bitset is a dense bit vector indexed by node slot. The arena uses one for
// its liveness map and one for its dirty-index journal; at a million nodes
// each costs 128 KB instead of the multi-megabyte map the pointer tree's
// journal would grow to.
type Bitset []uint64

// Set sets bit i, growing the set as needed.
func (b *Bitset) Set(i int) {
	w := i >> 6
	for len(*b) <= w {
		*b = append(*b, 0)
	}
	(*b)[w] |= 1 << (uint(i) & 63)
}

// Unset clears bit i (no-op when out of range).
func (b Bitset) Unset(i int) {
	w := i >> 6
	if w < len(b) {
		b[w] &^= 1 << (uint(i) & 63)
	}
}

// Test reports whether bit i is set.
func (b Bitset) Test(i int) bool {
	w := i >> 6
	return w < len(b) && b[w]&(1<<(uint(i)&63)) != 0
}

// Reset clears every bit, keeping the backing array.
func (b Bitset) Reset() {
	for i := range b {
		b[i] = 0
	}
}

// Count returns the number of set bits.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach calls fn for every set bit in ascending order.
func (b Bitset) ForEach(fn func(i int)) {
	for wi, w := range b {
		for w != 0 {
			fn(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}
