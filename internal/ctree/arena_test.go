package ctree

import (
	"reflect"
	"testing"

	"contango/internal/geom"
	"contango/internal/tech"
)

// buildArenaFixture grows a small buffered tree with every node flavor:
// internal merge points, a buffer, sinks, a snaked edge, a deleted node.
func buildArenaFixture(t *testing.T) *Tree {
	t.Helper()
	tr := New(tech.Default45(), geom.Pt(0, 0), 0.05)
	m := tr.AddChild(tr.Root, Internal, geom.Pt(100, 40))
	b := tr.InsertOnEdge(m, 60, Buffer)
	b.Buf = &tech.Composite{Type: tr.Tech.Inverters[1], N: 2}
	s1 := tr.AddSink(m, geom.Pt(180, 90), 22, "s1")
	tr.AddSink(m, geom.Pt(140, -30), 31, "s2")
	tr.SetWidth(s1, 1)
	tr.SetSnake(s1, 12.5)
	// Leave a dead ID behind so converters must handle table holes.
	tmp := tr.AddChild(m, Internal, geom.Pt(120, 50))
	tr.AddSink(tmp, geom.Pt(130, 60), 5, "dead")
	tr.DeleteSubtree(tmp)
	if err := tr.Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	return tr
}

// treesEqual compares two trees node by node (IDs, kinds, geometry, edge
// parameters, buffers, child order).
func treesEqual(t *testing.T, a, b *Tree) {
	t.Helper()
	if a.SourceR != b.SourceR {
		t.Fatalf("SourceR %v != %v", a.SourceR, b.SourceR)
	}
	if a.MaxID() != b.MaxID() {
		t.Fatalf("MaxID %d != %d", a.MaxID(), b.MaxID())
	}
	for id := 0; id < a.MaxID(); id++ {
		na, nb := a.Node(id), b.Node(id)
		if (na == nil) != (nb == nil) {
			t.Fatalf("node %d liveness mismatch", id)
		}
		if na == nil {
			continue
		}
		if na.Kind != nb.Kind || na.Loc != nb.Loc || na.WidthIdx != nb.WidthIdx ||
			na.Snake != nb.Snake || na.SinkCap != nb.SinkCap || na.Name != nb.Name {
			t.Fatalf("node %d scalar fields differ: %+v vs %+v", id, na, nb)
		}
		if !reflect.DeepEqual(na.Route, nb.Route) {
			t.Fatalf("node %d route differs: %v vs %v", id, na.Route, nb.Route)
		}
		if (na.Buf == nil) != (nb.Buf == nil) {
			t.Fatalf("node %d buffer presence differs", id)
		}
		if na.Buf != nil && *na.Buf != *nb.Buf {
			t.Fatalf("node %d buffer differs: %+v vs %+v", id, *na.Buf, *nb.Buf)
		}
		pa, pb := -1, -1
		if na.Parent != nil {
			pa = na.Parent.ID
		}
		if nb.Parent != nil {
			pb = nb.Parent.ID
		}
		if pa != pb {
			t.Fatalf("node %d parent %d != %d", id, pa, pb)
		}
		if len(na.Children) != len(nb.Children) {
			t.Fatalf("node %d child count differs", id)
		}
		for i := range na.Children {
			if na.Children[i].ID != nb.Children[i].ID {
				t.Fatalf("node %d child order differs", id)
			}
		}
	}
}

func TestArenaRoundTrip(t *testing.T) {
	tr := buildArenaFixture(t)
	a := FromTree(tr)
	if a.NumNodes() != tr.NumNodes() {
		t.Fatalf("NumNodes %d != %d", a.NumNodes(), tr.NumNodes())
	}
	back, err := a.ToTree()
	if err != nil {
		t.Fatalf("ToTree: %v", err)
	}
	treesEqual(t, tr, back)
}

func TestArenaMutationsMirrorTree(t *testing.T) {
	tr := buildArenaFixture(t)
	a := FromTree(tr)
	gen0 := tr.Gen()

	// Mirror a mixed mutation sequence on both representations.
	s1 := tr.Node(3)
	tr.SetWidth(s1, 0)
	a.SetWidth(3, 0)
	tr.AddSnake(s1, 7.25)
	a.AddSnake(3, 7.25)
	b := tr.Node(2)
	tr.SetBufferSize(b, 3)
	a.SetBufferSize(2, 3)
	// Insert a node, slide it, splice it back out.
	mid := tr.InsertOnEdge(s1, 35, Internal)
	amid := a.InsertOnEdge(3, 35, Internal)
	if int32(mid.ID) != amid {
		t.Fatalf("inserted slot %d != node ID %d", amid, mid.ID)
	}
	tr.SlideDegree2(mid, 52)
	a.SlideDegree2(amid, 52)
	tr.RemoveDegree2(mid)
	a.RemoveDegree2(amid)
	// Grow a fresh sink and move it under another parent.
	ns := tr.AddSink(tr.Node(1), geom.Pt(90, 70), 14, "moved")
	ans := a.AddSink(1, geom.Pt(90, 70), 14, "moved")
	if int32(ns.ID) != ans {
		t.Fatalf("new sink slot %d != node ID %d", ans, ns.ID)
	}
	tr.Detach(ns)
	a.Detach(ans)
	tr.Attach(ns, tr.Node(2), nil)
	a.Attach(ans, 2, nil)

	back, err := a.ToTree()
	if err != nil {
		t.Fatalf("ToTree after mutations: %v", err)
	}
	treesEqual(t, tr, back)

	// Dirty bitmap must mark exactly the set the pointer journal touched.
	want := map[int]bool{}
	for _, id := range tr.TouchedSince(gen0) {
		want[id] = true
	}
	got := map[int]bool{}
	for _, id := range a.DirtyIDs() {
		got[id] = true
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("dirty sets differ: tree %v, arena %v", want, got)
	}
}

func TestArenaCompact(t *testing.T) {
	tr := buildArenaFixture(t)
	a := FromTree(tr)
	// Churn the spans: inserts relocate child lists and routes to the tail.
	a.InsertOnEdge(3, 20, Internal)
	a.InsertOnEdge(4, 10, Internal)
	before, err := a.ToTree()
	if err != nil {
		t.Fatalf("ToTree: %v", err)
	}
	grew := len(a.RoutePts)
	a.Compact()
	if len(a.RoutePts) >= grew {
		t.Fatalf("Compact did not shrink route storage (%d >= %d)", len(a.RoutePts), grew)
	}
	after, err := a.ToTree()
	if err != nil {
		t.Fatalf("ToTree after Compact: %v", err)
	}
	treesEqual(t, before, after)
}

func TestArenaDeleteSubtree(t *testing.T) {
	tr := buildArenaFixture(t)
	a := FromTree(tr)
	n := tr.AddChild(tr.Node(1), Internal, geom.Pt(150, 80))
	tr.AddSink(n, geom.Pt(160, 90), 9, "doomed")
	an := a.AddChild(1, Internal, geom.Pt(150, 80))
	a.AddSink(an, geom.Pt(160, 90), 9, "doomed")
	tr.DeleteSubtree(n)
	a.DeleteSubtree(an)
	back, err := a.ToTree()
	if err != nil {
		t.Fatalf("ToTree: %v", err)
	}
	treesEqual(t, tr, back)
}

func TestBitset(t *testing.T) {
	var b Bitset
	for _, i := range []int{0, 1, 63, 64, 130, 4095} {
		b.Set(i)
	}
	if b.Count() != 6 {
		t.Fatalf("Count = %d, want 6", b.Count())
	}
	if !b.Test(63) || !b.Test(64) || b.Test(62) || b.Test(4096) {
		t.Fatal("Test gives wrong membership")
	}
	b.Unset(63)
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	if !reflect.DeepEqual(got, []int{0, 1, 64, 130, 4095}) {
		t.Fatalf("ForEach = %v", got)
	}
	b.Reset()
	if b.Count() != 0 {
		t.Fatal("Reset left bits set")
	}
}

// A splice (or slide) over a corridor of zero-length edges — stacked
// buffer chains produce them — must not let Simplify collapse the joined
// route to a single point: every live edge keeps a 2-point route.
func TestRemoveDegree2ZeroLengthEdges(t *testing.T) {
	p := geom.Pt(50, 50)
	tr := New(tech.Default45(), geom.Pt(0, 0), 0.05)
	hub := tr.AddChild(tr.Root, Internal, p)
	mid := tr.AddChild(hub, Internal, p)
	buf := tr.AddChild(mid, Buffer, p)
	buf.Buf = &tech.Composite{Type: tr.Tech.Inverters[1], N: 2}
	tr.AddSink(buf, geom.Pt(60, 50), 9, "s")
	a := FromTree(tr)

	tr.SlideDegree2(mid, 0)
	a.SlideDegree2(int32(mid.ID), 0)
	tr.RemoveDegree2(mid)
	a.RemoveDegree2(int32(mid.ID))
	if err := tr.Validate(); err != nil {
		t.Fatalf("tree after zero-length splice: %v", err)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("arena after zero-length splice: %v", err)
	}
	if len(buf.Route) < 2 {
		t.Fatalf("spliced child route collapsed: %v", buf.Route)
	}
	back, err := a.ToTree()
	if err != nil {
		t.Fatalf("ToTree: %v", err)
	}
	treesEqual(t, tr, back)
}
