package ctree

import (
	"fmt"

	"contango/internal/geom"
	"contango/internal/tech"
)

// Arena is the structure-of-arrays form of a clock tree: every per-node
// field lives in its own parallel slice indexed by the node's slot, and
// variable-length data (child lists, routes) lives in shared backing arrays
// addressed by (offset, length) spans. Slot indices are stable — a node
// keeps its slot for the arena's whole life, mutations never reshuffle
// existing slots, and FromTree assigns slot i to pointer-tree node ID i —
// so slots can be persisted, diffed and used as cache keys exactly like
// pointer-tree IDs. Dead slots (spliced-out or deleted nodes) stay
// allocated with their liveness bit cleared, mirroring the pointer tree's
// nil entries in its dense node table.
//
// The pointer tree's mutation journal (dirty.go) becomes a dirty-index
// bitmap here: every journaling mutator sets the touched slot's bit in
// Dirty, and the setter no-op conditions match the pointer tree's exactly,
// so a mutation sequence mirrored onto both representations marks the
// identical node set (the property test in arena_prop_test.go pins this).
//
// Construction (DME, routing, buffer insertion) stays pointer-based;
// analysis-side consumers and the result codec move between the two forms
// with the lossless FromTree/ToTree converters.
type Arena struct {
	Tech    *tech.Tech
	SourceR float64

	// Per-slot parallel arrays, all len == Len().
	Kind     []Kind
	Loc      []geom.Point
	Parent   []int32 // parent slot; -1 on the root, dead and detached slots
	WidthIdx []int32
	Snake    []float64
	SinkCap  []float64
	Name     []string

	// Buffer composites, SoA: BufN > 0 marks a node that carries a
	// composite of BufN parallel inverters of type BufType.
	BufN    []int32
	BufType []tech.InverterType

	// Child spans: slot i's children are ChildIdx[ChildOff[i] : ChildOff[i]+ChildLen[i]].
	// Edits that grow a list relocate the span to the tail of ChildIdx;
	// Compact squeezes the garbage back out.
	ChildOff []int32
	ChildLen []int32
	ChildIdx []int32

	// Route spans: slot i's parent-edge route is
	// RoutePts[RouteOff[i] : RouteOff[i]+RouteLen[i]].
	RouteOff []int32
	RouteLen []int32
	RoutePts []geom.Point

	// Alive marks live slots; Dirty is the mutation journal bitmap.
	Alive Bitset
	Dirty Bitset

	root int32
}

// Len returns the slot count (the analogue of Tree.MaxID: dead slots
// included).
func (a *Arena) Len() int { return len(a.Kind) }

// Root returns the root (Source) slot.
func (a *Arena) Root() int32 { return a.root }

// NumNodes returns the number of live slots.
func (a *Arena) NumNodes() int { return a.Alive.Count() }

// Children returns slot i's child slots as a view into the shared index
// array; callers must not hold it across structural mutations.
func (a *Arena) Children(i int32) []int32 {
	off, ln := a.ChildOff[i], a.ChildLen[i]
	return a.ChildIdx[off : off+ln : off+ln]
}

// Route returns slot i's parent-edge route as a view into the shared point
// array; callers must not hold it across structural mutations.
func (a *Arena) Route(i int32) geom.Polyline {
	off, ln := a.RouteOff[i], a.RouteLen[i]
	return geom.Polyline(a.RoutePts[off : off+ln : off+ln])
}

// EdgeLen returns the electrical length of slot i's parent edge in µm.
func (a *Arena) EdgeLen(i int32) float64 {
	if a.Parent[i] < 0 {
		return 0
	}
	return a.Route(i).Length() + a.Snake[i]
}

// DirtyIDs returns the journaled slot indices in ascending order (nil when
// nothing is dirty). Indices of since-deleted slots may be included, as
// with Tree.TouchedSince.
func (a *Arena) DirtyIDs() []int {
	var out []int
	a.Dirty.ForEach(func(i int) { out = append(out, i) })
	return out
}

// ClearDirty resets the journal bitmap.
func (a *Arena) ClearDirty() { a.Dirty.Reset() }

func (a *Arena) touch(i int32) { a.Dirty.Set(int(i)) }

// newSlot appends one dead-route slot and returns its index.
func (a *Arena) newSlot(kind Kind, loc geom.Point) int32 {
	i := int32(len(a.Kind))
	a.Kind = append(a.Kind, kind)
	a.Loc = append(a.Loc, loc)
	a.Parent = append(a.Parent, -1)
	a.WidthIdx = append(a.WidthIdx, 0)
	a.Snake = append(a.Snake, 0)
	a.SinkCap = append(a.SinkCap, 0)
	a.Name = append(a.Name, "")
	a.BufN = append(a.BufN, 0)
	a.BufType = append(a.BufType, tech.InverterType{})
	a.ChildOff = append(a.ChildOff, 0)
	a.ChildLen = append(a.ChildLen, 0)
	a.RouteOff = append(a.RouteOff, 0)
	a.RouteLen = append(a.RouteLen, 0)
	a.Alive.Set(int(i))
	return i
}

// setRoute stores pl as slot i's route at the tail of the point array.
func (a *Arena) setRoute(i int32, pl geom.Polyline) {
	a.RouteOff[i] = int32(len(a.RoutePts))
	a.RouteLen[i] = int32(len(pl))
	a.RoutePts = append(a.RoutePts, pl...)
}

// setChildren stores list as slot i's child span at the tail of the index
// array.
func (a *Arena) setChildren(i int32, list []int32) {
	a.ChildOff[i] = int32(len(a.ChildIdx))
	a.ChildLen[i] = int32(len(list))
	a.ChildIdx = append(a.ChildIdx, list...)
}

// appendChild adds c to slot i's child list, relocating the span to the
// tail when it cannot grow in place.
func (a *Arena) appendChild(i, c int32) {
	off, ln := a.ChildOff[i], a.ChildLen[i]
	if int(off+ln) == len(a.ChildIdx) {
		a.ChildIdx = append(a.ChildIdx, c)
		a.ChildLen[i]++
		return
	}
	a.ChildOff[i] = int32(len(a.ChildIdx))
	a.ChildIdx = append(a.ChildIdx, a.ChildIdx[off:off+ln]...)
	a.ChildIdx = append(a.ChildIdx, c)
	a.ChildLen[i]++
}

// --- Journaling setters (mirror dirty.go exactly, including the no-op
// conditions, so dirty sets stay identical between representations) ---

// SetWidth changes the wire type of slot i's parent edge.
func (a *Arena) SetWidth(i int32, idx int) {
	if a.WidthIdx[i] == int32(idx) {
		return
	}
	a.WidthIdx[i] = int32(idx)
	a.touch(i)
}

// SetSnake sets the serpentine allowance (µm) of slot i's parent edge.
func (a *Arena) SetSnake(i int32, v float64) {
	if a.Snake[i] == v {
		return
	}
	a.Snake[i] = v
	a.touch(i)
}

// AddSnake adds dv µm of serpentine allowance to slot i's parent edge.
func (a *Arena) AddSnake(i int32, dv float64) {
	if dv == 0 {
		return
	}
	a.Snake[i] += dv
	a.touch(i)
}

// SetBufferSize changes the parallel-inverter count of a buffer slot.
func (a *Arena) SetBufferSize(i int32, count int) {
	if a.BufN[i] == 0 || a.BufN[i] == int32(count) {
		return
	}
	a.BufN[i] = int32(count)
	a.touch(i)
}

// --- Structural mutators (same geometry arithmetic as the Tree methods,
// so mirrored edits produce bit-identical routes and snakes) ---

// AddChild creates a node of the given kind under parent at loc with a
// direct L-shaped route and the default wire width.
func (a *Arena) AddChild(parent int32, kind Kind, loc geom.Point) int32 {
	n := a.newSlot(kind, loc)
	a.Parent[n] = parent
	a.setRoute(n, geom.LShape(a.Loc[parent], loc)[0])
	a.appendChild(parent, n)
	a.touch(n)
	return n
}

// AddSink creates a sink node under parent.
func (a *Arena) AddSink(parent int32, loc geom.Point, cap float64, name string) int32 {
	n := a.AddChild(parent, Sink, loc)
	a.SinkCap[n] = cap
	a.Name[n] = name
	return n
}

// InsertOnEdge splits slot n's parent edge at route distance d from the
// parent and inserts a new node of the given kind there, dividing the
// snaking pro-rata exactly as Tree.InsertOnEdge does.
func (a *Arena) InsertOnEdge(n int32, d float64, kind Kind) int32 {
	parent := a.Parent[n]
	if parent < 0 {
		panic("ctree: InsertOnEdge on root")
	}
	route := append(geom.Polyline(nil), a.Route(n)...)
	upper, lower := route.Split(d)
	frac := 0.0
	if rl := route.Length(); rl > 0 {
		frac = d / rl
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
	}
	snakeUp := a.Snake[n] * frac
	a.Snake[n] -= snakeUp
	mid := a.newSlot(kind, upper[len(upper)-1])
	a.Parent[mid] = parent
	a.WidthIdx[mid] = a.WidthIdx[n]
	a.Snake[mid] = snakeUp
	a.setRoute(mid, upper)
	a.setChildren(mid, []int32{n})
	ch := a.Children(parent)
	for i, c := range ch {
		if c == n {
			ch[i] = mid
			break
		}
	}
	a.Parent[n] = mid
	a.setRoute(n, lower)
	a.touch(mid)
	a.touch(n)
	return mid
}

// SlideDegree2 moves a one-child node to a new position along its combined
// parent+child corridor, preserving total length and snaking.
func (a *Arena) SlideDegree2(n int32, newDist float64) {
	if a.Parent[n] < 0 || a.ChildLen[n] != 1 {
		panic("ctree: SlideDegree2 needs a non-root node with one child")
	}
	child := a.Children(n)[0]
	joined := append(append(geom.Polyline(nil), a.Route(n)...), a.Route(child)...)
	joined = joined.Simplify()
	if len(joined) < 2 {
		// A fully zero-length corridor collapses to one point under
		// Simplify; keep the 2-point route invariant.
		joined = geom.Polyline{a.Loc[a.Parent[n]], a.Loc[child]}
	}
	totalSnake := a.Snake[n] + a.Snake[child]
	total := joined.Length()
	if newDist < 0 {
		newDist = 0
	}
	if newDist > total {
		newDist = total
	}
	upper, lower := joined.Split(newDist)
	a.setRoute(n, upper)
	a.Loc[n] = upper[len(upper)-1]
	a.setRoute(child, lower)
	if total > 0 {
		a.Snake[n] = totalSnake * newDist / total
	} else {
		a.Snake[n] = 0
	}
	a.Snake[child] = totalSnake - a.Snake[n]
	a.touch(n)
	a.touch(child)
}

// RemoveDegree2 splices out an Internal or Buffer slot with exactly one
// child, joining its parent edge with the child's edge.
func (a *Arena) RemoveDegree2(n int32) {
	if a.Parent[n] < 0 || a.ChildLen[n] != 1 || a.Kind[n] == Sink || a.Kind[n] == Source {
		panic("ctree: RemoveDegree2 needs a non-root, non-sink node with one child")
	}
	child := a.Children(n)[0]
	joined := append(append(geom.Polyline(nil), a.Route(n)...), a.Route(child)...)
	joined = joined.Simplify()
	if len(joined) < 2 {
		// Both edges were zero-length (stacked nodes), so Simplify collapsed
		// the join to a single point; every live edge keeps a 2-point route.
		joined = geom.Polyline{a.Loc[a.Parent[n]], a.Loc[child]}
	}
	a.setRoute(child, joined)
	a.Snake[child] += a.Snake[n]
	a.Parent[child] = a.Parent[n]
	ch := a.Children(a.Parent[n])
	for i, c := range ch {
		if c == n {
			ch[i] = child
			break
		}
	}
	a.Alive.Unset(int(n))
	a.Parent[n] = -1
	a.ChildLen[n] = 0
	a.touch(child)
}

// Detach removes n from its parent's child list, leaving the slot (and its
// subtree) orphaned but allocated.
func (a *Arena) Detach(n int32) {
	p := a.Parent[n]
	if p < 0 {
		panic("ctree: Detach on root")
	}
	ch := a.Children(p)
	for i, c := range ch {
		if c == n {
			copy(ch[i:], ch[i+1:])
			a.ChildLen[p]--
			break
		}
	}
	a.Parent[n] = -1
	a.touch(p)
}

// Attach re-homes a detached slot n under parent with the given route (nil
// means a direct L-shape).
func (a *Arena) Attach(n, parent int32, route geom.Polyline) {
	if a.Parent[n] >= 0 {
		panic("ctree: Attach on non-orphan")
	}
	if route == nil {
		route = geom.LShape(a.Loc[parent], a.Loc[n])[0]
	}
	a.Parent[n] = parent
	a.setRoute(n, route)
	a.appendChild(parent, n)
	a.touch(n)
}

// DeleteSubtree removes slot n and all its descendants.
func (a *Arena) DeleteSubtree(n int32) {
	if a.Parent[n] >= 0 {
		a.Detach(n) // journals the parent
	}
	var rec func(int32)
	rec = func(m int32) {
		for _, c := range a.Children(m) {
			rec(c)
		}
		a.Alive.Unset(int(m))
		a.ChildLen[m] = 0
		a.Parent[m] = -1
	}
	rec(n)
}

// Compact rewrites the child-index and route-point arrays into tight
// pre-order spans, dropping the garbage left behind by span relocations.
// Slot indices are untouched — only the shared backing arrays move. Live
// orphans (detached subtrees) keep their data; dead slots lose their spans.
func (a *Arena) Compact() {
	childIdx := make([]int32, 0, a.NumNodes())
	routePts := make([]geom.Point, 0, len(a.RoutePts))
	var visited Bitset
	var rec func(int32)
	rec = func(i int32) {
		visited.Set(int(i))
		route := a.Route(i)
		a.RouteOff[i] = int32(len(routePts))
		routePts = append(routePts, route...)
		kids := a.Children(i)
		off := int32(len(childIdx))
		childIdx = append(childIdx, kids...)
		a.ChildOff[i] = off
		for _, c := range kids {
			rec(c)
		}
	}
	rec(a.root)
	for i := range a.Kind {
		if visited.Test(i) {
			continue
		}
		if a.Alive.Test(i) && a.Parent[i] < 0 {
			rec(int32(i)) // detached orphan root
		}
	}
	for i := range a.Kind {
		if !a.Alive.Test(i) {
			a.ChildOff[i], a.ChildLen[i] = 0, 0
			a.RouteOff[i], a.RouteLen[i] = 0, 0
		}
	}
	a.ChildIdx = childIdx
	a.RoutePts = routePts
}

// FromTree flattens a pointer tree into a fresh arena. Node ID i lands in
// slot i (dead IDs become dead slots), child order and routes are
// preserved, and the journal starts clean — the converters carry the tree's
// structure, not its mutation history.
func FromTree(tr *Tree) *Arena {
	n := tr.MaxID()
	a := &Arena{
		Tech:     tr.Tech,
		SourceR:  tr.SourceR,
		Kind:     make([]Kind, n),
		Loc:      make([]geom.Point, n),
		Parent:   make([]int32, n),
		WidthIdx: make([]int32, n),
		Snake:    make([]float64, n),
		SinkCap:  make([]float64, n),
		Name:     make([]string, n),
		BufN:     make([]int32, n),
		BufType:  make([]tech.InverterType, n),
		ChildOff: make([]int32, n),
		ChildLen: make([]int32, n),
		RouteOff: make([]int32, n),
		RouteLen: make([]int32, n),
	}
	nPts, nKids := 0, 0
	for id := 0; id < n; id++ {
		if nd := tr.Node(id); nd != nil {
			nPts += len(nd.Route)
			nKids += len(nd.Children)
		}
	}
	a.RoutePts = make([]geom.Point, 0, nPts)
	a.ChildIdx = make([]int32, 0, nKids)
	for id := 0; id < n; id++ {
		nd := tr.Node(id)
		if nd == nil {
			a.Parent[id] = -1
			continue
		}
		i := int32(id)
		a.Alive.Set(id)
		a.Kind[i] = nd.Kind
		a.Loc[i] = nd.Loc
		a.WidthIdx[i] = int32(nd.WidthIdx)
		a.Snake[i] = nd.Snake
		a.SinkCap[i] = nd.SinkCap
		a.Name[i] = nd.Name
		if nd.Buf != nil {
			a.BufN[i] = int32(nd.Buf.N)
			a.BufType[i] = nd.Buf.Type
		}
		if nd.Parent != nil {
			a.Parent[i] = int32(nd.Parent.ID)
		} else {
			a.Parent[i] = -1
		}
		a.RouteOff[i] = int32(len(a.RoutePts))
		a.RouteLen[i] = int32(len(nd.Route))
		a.RoutePts = append(a.RoutePts, nd.Route...)
		a.ChildOff[i] = int32(len(a.ChildIdx))
		a.ChildLen[i] = int32(len(nd.Children))
		for _, c := range nd.Children {
			a.ChildIdx = append(a.ChildIdx, int32(c.ID))
		}
		if nd.Kind == Source {
			a.root = i
		}
	}
	return a
}

// ToTree rebuilds a pointer tree from the arena — the exact inverse of
// FromTree: slot i becomes node ID i, with copied routes and child order.
// The result is validated through Restore, so a structurally damaged arena
// (dangling spans, orphan slots) is an error rather than a corrupt tree.
func (a *Arena) ToTree() (*Tree, error) {
	n := a.Len()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		if !a.Alive.Test(i) {
			continue
		}
		s := int32(i)
		nd := &Node{
			ID:       i,
			Kind:     a.Kind[s],
			Loc:      a.Loc[s],
			WidthIdx: int(a.WidthIdx[s]),
			Snake:    a.Snake[s],
			SinkCap:  a.SinkCap[s],
			Name:     a.Name[s],
		}
		if rl := a.RouteLen[s]; rl > 0 {
			nd.Route = append(geom.Polyline(nil), a.Route(s)...)
		}
		if a.BufN[s] > 0 {
			nd.Buf = &tech.Composite{Type: a.BufType[s], N: int(a.BufN[s])}
		}
		nodes[i] = nd
	}
	for i := 0; i < n; i++ {
		nd := nodes[i]
		if nd == nil {
			continue
		}
		s := int32(i)
		if p := a.Parent[s]; p >= 0 {
			if int(p) >= n || nodes[p] == nil {
				return nil, fmt.Errorf("ctree: arena slot %d has dangling parent %d", i, p)
			}
			nd.Parent = nodes[p]
		}
		if kids := a.Children(s); len(kids) > 0 {
			nd.Children = make([]*Node, len(kids))
			for j, c := range kids {
				if int(c) >= n || nodes[c] == nil {
					return nil, fmt.Errorf("ctree: arena slot %d has dangling child %d", i, c)
				}
				nd.Children[j] = nodes[c]
			}
		}
	}
	return Restore(a.Tech, a.SourceR, nodes)
}
