package analysis

import (
	"sync"

	"contango/internal/ctree"
	"contango/internal/tech"
)

// Batched multi-corner stage kernels. The Stage netlist is already a
// structure of arrays (R, C, Par in parent-before-child order), so the
// corner dimension vectorizes naturally: one sweep over the topology
// computes every corner's recurrence, with corner k's values in the
// contiguous block out[k*n:(k+1)*n]. The loops are phase-ordered exactly
// like the single-corner kernels (stageElmoreScaled, stageMomentsScaled)
// and each corner only ever reads and writes its own block, so the
// floating-point operation sequence per corner is identical to a serial
// call with that corner's derates — batched results are bit-identical,
// which is what lets pvt5 and mc:<n> corner sets cost one topology
// traversal instead of N without perturbing a single cached result.

// kernelScratch pools the transient float vectors of the stage kernels.
type kernelScratch struct {
	a, b []float64
}

var kernelPool = sync.Pool{New: func() any { return new(kernelScratch) }}

func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// stageElmoreBatchInto computes the Elmore delay vectors of K corners in
// one topology sweep. rd, rs and cs hold the per-corner driver resistance
// and interconnect derates; cdown is K·n scratch and d the K·n output
// (corner-major blocks).
func stageElmoreBatchInto(s *Stage, rd, rs, cs, cdown, d []float64) {
	n := len(s.R)
	K := len(rd)
	for k := 0; k < K; k++ {
		ck := cdown[k*n : (k+1)*n : (k+1)*n]
		csk := cs[k]
		for i := 0; i < n; i++ {
			ck[i] = s.C[i] * csk
		}
	}
	for i := n - 1; i >= 1; i-- {
		p := s.Par[i]
		for k := 0; k < K; k++ {
			cdown[k*n+p] += cdown[k*n+i]
		}
	}
	for k := 0; k < K; k++ {
		d[k*n] = rd[k] * cdown[k*n]
	}
	for i := 1; i < n; i++ {
		p := s.Par[i]
		ri := s.R[i]
		for k := 0; k < K; k++ {
			d[k*n+i] = d[k*n+p] + ri*rs[k]*cdown[k*n+i]
		}
	}
}

// stageMomentsBatchInto computes the first two moment vectors of K corners
// in one topology sweep. cdown and b are K·n scratch, m1 and m2 the K·n
// outputs (corner-major blocks).
func stageMomentsBatchInto(s *Stage, rd, rs, cs, cdown, b, m1, m2 []float64) {
	n := len(s.R)
	K := len(rd)
	stageElmoreBatchInto(s, rd, rs, cs, cdown, m1)
	for i := range b[:K*n] {
		b[i] = 0
	}
	for i := n - 1; i >= 0; i-- {
		p := s.Par[i]
		ci := s.C[i]
		for k := 0; k < K; k++ {
			b[k*n+i] += ci * cs[k] * m1[k*n+i]
			if p >= 0 {
				b[k*n+p] += b[k*n+i]
			}
		}
	}
	for k := 0; k < K; k++ {
		m2[k*n] = rd[k] * b[k*n]
	}
	for i := 1; i < n; i++ {
		p := s.Par[i]
		ri := s.R[i]
		for k := 0; k < K; k++ {
			m2[k*n+i] = m2[k*n+p] + ri*rs[k]*b[k*n+i]
		}
	}
}

// StageElmoreMaxAt returns the largest per-node Elmore delay of the stage
// at the given corner — the time constant the transient engine sizes its
// integration window from — without retaining the vectors. Scratch comes
// from the kernel pool, so the call is allocation-free; the arithmetic and
// the max scan order match StageElmoreAt exactly.
func StageElmoreMaxAt(s *Stage, rd float64, corner tech.Corner) float64 {
	n := len(s.R)
	ks := kernelPool.Get().(*kernelScratch)
	ks.a = growFloats(ks.a, n)
	ks.b = growFloats(ks.b, n)
	cdown, d := ks.a, ks.b
	cs, rs := corner.CScale(), corner.RScale()
	for i := 0; i < n; i++ {
		cdown[i] = s.C[i] * cs
	}
	for i := n - 1; i >= 1; i-- {
		cdown[s.Par[i]] += cdown[i]
	}
	d[0] = rd * cdown[0]
	for i := 1; i < n; i++ {
		d[i] = d[s.Par[i]] + s.R[i]*rs*cdown[i]
	}
	m := 0.0
	for _, v := range d {
		if v > m {
			m = v
		}
	}
	kernelPool.Put(ks)
	return m
}

// cornerDerates fills the per-corner derate vectors for one stage.
func cornerDerates(net *Net, s *Stage, corners []tech.Corner, rd, rs, cs []float64) {
	for k, c := range corners {
		rd[k] = net.DriverR(s, c)
		rs[k] = c.RScale()
		cs[k] = c.CScale()
	}
}

// EvaluateCorners implements CornerEvaluator for the plain Elmore
// evaluator: one extraction, then every stage's corners computed by the
// batched kernel. Results are bit-identical to looping Evaluate.
func (e *Elmore) EvaluateCorners(tr *ctree.Tree, corners []tech.Corner) ([]*Result, error) {
	net := Extract(tr, e.MaxSeg)
	K := len(corners)
	limit := net.Tree.Tech.SlewLimit
	results := make([]*Result, K)
	arrivals := make([][]float64, K)
	for k, c := range corners {
		results[k] = newResult(c)
		arrivals[k] = make([]float64, len(net.Stages))
	}
	rd := make([]float64, K)
	rs := make([]float64, K)
	cs := make([]float64, K)
	ks := kernelPool.Get().(*kernelScratch)
	for _, s := range net.Stages {
		n := len(s.R)
		cornerDerates(net, s, corners, rd, rs, cs)
		ks.a = growFloats(ks.a, K*n)
		ks.b = growFloats(ks.b, K*n)
		stageElmoreBatchInto(s, rd, rs, cs, ks.a, ks.b)
		key := driverKey(s.Driver)
		for k := range corners {
			d := ks.b[k*n : (k+1)*n]
			res := results[k]
			base := arrivals[k][s.Index]
			for _, ci := range s.Children {
				arrivals[k][ci] = base + d[net.Stages[ci].InputNode]
			}
			for _, m := range s.Sinks {
				t := base + d[m.Node]
				res.Rise[m.Sink.ID] = t
				res.Fall[m.Sink.ID] = t
				res.SinkSlew[m.Sink.ID] = ln9 * d[m.Node]
			}
			for i := range d {
				slew := ln9 * d[i]
				if slew > res.MaxSlew {
					res.MaxSlew = slew
				}
				if slew > res.StageSlew[key] {
					res.StageSlew[key] = slew
				}
				if slew > limit {
					res.SlewViol++
				}
			}
		}
	}
	kernelPool.Put(ks)
	return results, nil
}

// EvaluateCorners implements CornerEvaluator for the plain TwoPole
// evaluator with the batched moment kernel.
func (e *TwoPole) EvaluateCorners(tr *ctree.Tree, corners []tech.Corner) ([]*Result, error) {
	net := Extract(tr, e.MaxSeg)
	K := len(corners)
	limit := net.Tree.Tech.SlewLimit
	results := make([]*Result, K)
	arrivals := make([][]float64, K)
	for k, c := range corners {
		results[k] = newResult(c)
		arrivals[k] = make([]float64, len(net.Stages))
	}
	rd := make([]float64, K)
	rs := make([]float64, K)
	cs := make([]float64, K)
	ks := kernelPool.Get().(*kernelScratch)
	ks2 := kernelPool.Get().(*kernelScratch)
	for _, s := range net.Stages {
		n := len(s.R)
		cornerDerates(net, s, corners, rd, rs, cs)
		ks.a = growFloats(ks.a, K*n)
		ks.b = growFloats(ks.b, K*n)
		ks2.a = growFloats(ks2.a, K*n)
		ks2.b = growFloats(ks2.b, K*n)
		m1, m2 := ks2.a, ks2.b
		stageMomentsBatchInto(s, rd, rs, cs, ks.a, ks.b, m1, m2)
		key := driverKey(s.Driver)
		for k := range corners {
			m1k := m1[k*n : (k+1)*n]
			m2k := m2[k*n : (k+1)*n]
			res := results[k]
			base := arrivals[k][s.Index]
			for _, ci := range s.Children {
				child := net.Stages[ci]
				arrivals[k][ci] = base + d2m(m1k[child.InputNode], m2k[child.InputNode])
			}
			for _, m := range s.Sinks {
				t := base + d2m(m1k[m.Node], m2k[m.Node])
				res.Rise[m.Sink.ID] = t
				res.Fall[m.Sink.ID] = t
				res.SinkSlew[m.Sink.ID] = slewFromMoments(m1k[m.Node], m2k[m.Node])
			}
			for i := range m1k {
				slew := slewFromMoments(m1k[i], m2k[i])
				if slew > res.MaxSlew {
					res.MaxSlew = slew
				}
				if slew > res.StageSlew[key] {
					res.StageSlew[key] = slew
				}
				if slew > limit {
					res.SlewViol++
				}
			}
		}
	}
	kernelPool.Put(ks)
	kernelPool.Put(ks2)
	return results, nil
}

// newResult allocates an empty Result for one corner.
func newResult(c tech.Corner) *Result {
	return &Result{
		Corner:    c,
		Rise:      make(map[int]float64),
		Fall:      make(map[int]float64),
		SinkSlew:  make(map[int]float64),
		StageSlew: make(map[int]float64),
	}
}

var (
	_ CornerEvaluator = (*Elmore)(nil)
	_ CornerEvaluator = (*TwoPole)(nil)
)
