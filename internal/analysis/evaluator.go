package analysis

import (
	"contango/internal/ctree"
	"contango/internal/tech"
)

// Result holds per-sink arrival times and slews for one corner. Rise[id] is
// the arrival time (ps) at the sink with tree-node ID id of the edge
// launched by a rising source transition; Fall[id] is for a falling source
// transition. Evaluators that do not distinguish transitions (Elmore,
// two-pole) report identical values.
type Result struct {
	Corner   tech.Corner
	Rise     map[int]float64
	Fall     map[int]float64
	SinkSlew map[int]float64 // worst-case 10-90% slew at each sink, ps
	MaxSlew  float64         // worst slew anywhere in the network, ps
	SlewViol int             // number of nodes exceeding the tech slew limit
	// StageSlew maps each stage driver (buffer tree-node ID, or -1 for the
	// clock source) to the worst slew inside the stage it drives, ps. The
	// wire passes use it to budget how much capacitance each region can
	// still absorb.
	StageSlew map[int]float64
}

// MinMaxRise returns the earliest and latest rising arrivals.
func (r *Result) MinMaxRise() (min, max float64) {
	first := true
	for _, v := range r.Rise {
		if first {
			min, max = v, v
			first = false
			continue
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return
}

// MinMaxFall returns the earliest and latest falling arrivals.
func (r *Result) MinMaxFall() (min, max float64) {
	first := true
	for _, v := range r.Fall {
		if first {
			min, max = v, v
			first = false
			continue
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return
}

// Skew returns the worse of the rising and falling skews (max−min arrival).
func (r *Result) Skew() float64 {
	rmin, rmax := r.MinMaxRise()
	fmin, fmax := r.MinMaxFall()
	rs, fs := rmax-rmin, fmax-fmin
	if fs > rs {
		return fs
	}
	return rs
}

// Evaluator computes sink arrivals for a clock tree at one corner. The flow
// treats evaluators uniformly: the Elmore and two-pole models guide cheap
// construction steps, while the spice engine provides the accurate numbers
// the optimization passes trust (the paper's CNE step).
type Evaluator interface {
	Name() string
	Evaluate(tr *ctree.Tree, corner tech.Corner) (*Result, error)
}

// CornerEvaluator is an Evaluator that can evaluate several corners in one
// call, sharing netlist extraction between them and (for implementations
// with a worker pool, like the incremental transient engine) scheduling the
// independent per-corner simulations concurrently. The optimization passes
// prefer this interface when the configured evaluator provides it.
type CornerEvaluator interface {
	Evaluator
	EvaluateCorners(tr *ctree.Tree, corners []tech.Corner) ([]*Result, error)
}
