package analysis

import (
	"reflect"
	"testing"

	"contango/internal/corners"
	"contango/internal/ctree"
	"contango/internal/geom"
	"contango/internal/tech"
)

// batchFixture builds a three-stage buffered tree with branching, snakes and
// mixed widths, so the batched kernels see multi-stage arrival chaining,
// load pins, and sink maps.
func batchFixture(tk *tech.Tech) *ctree.Tree {
	tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
	m := tr.AddChild(tr.Root, ctree.Internal, geom.Pt(800, 0))
	b1 := tr.InsertOnEdge(m, 400, ctree.Buffer)
	b1.Buf = &tech.Composite{Type: tk.Inverters[1], N: 4}
	s1 := tr.AddSink(m, geom.Pt(1400, 300), 35, "s1")
	tr.SetWidth(s1, 1)
	s2 := tr.AddSink(m, geom.Pt(1200, -500), 28, "s2")
	tr.SetSnake(s2, 90)
	far := tr.AddSink(m, geom.Pt(2600, 100), 40, "far")
	b2 := tr.InsertOnEdge(far, 900, ctree.Buffer)
	b2.Buf = &tech.Composite{Type: tk.Inverters[0], N: 2}
	return tr
}

func batchCornerSets(t *testing.T, tk *tech.Tech) map[string][]tech.Corner {
	t.Helper()
	sets := map[string][]tech.Corner{}
	for _, name := range []string{"pvt5", "mc:8:1"} {
		cs, err := corners.Build(name, tk)
		if err != nil {
			t.Fatalf("corners.Build(%q): %v", name, err)
		}
		sets[name] = cs.Corners
	}
	return sets
}

// TestBatchedCornersBitIdentical: EvaluateCorners must reproduce a serial
// per-corner Evaluate loop bit for bit, for every closed-form evaluator and
// both generated corner-set families.
func TestBatchedCornersBitIdentical(t *testing.T) {
	tk := tech.Default45()
	tr := batchFixture(tk)
	for setName, cs := range batchCornerSets(t, tk) {
		mk := map[string]func() CornerEvaluator{
			"elmore":      func() CornerEvaluator { return &Elmore{} },
			"twopole":     func() CornerEvaluator { return &TwoPole{} },
			"inc-elmore":  func() CornerEvaluator { return &IncrementalElmore{} },
			"inc-twopole": func() CornerEvaluator { return &IncrementalTwoPole{} },
		}
		for evName, newEv := range mk {
			// Separate instances so the incremental evaluators' caches
			// cannot leak state between the serial and batched runs.
			serialEv := newEv().(Evaluator)
			var want []*Result
			for _, c := range cs {
				r, err := serialEv.Evaluate(tr, c)
				if err != nil {
					t.Fatalf("%s/%s serial: %v", evName, setName, err)
				}
				want = append(want, r)
			}
			batchEv := newEv()
			for _, pass := range []string{"cold", "warm"} {
				got, err := batchEv.EvaluateCorners(tr, cs)
				if err != nil {
					t.Fatalf("%s/%s batch: %v", evName, setName, err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s/%s: %d results, want %d", evName, setName, len(got), len(want))
				}
				for i := range want {
					if !reflect.DeepEqual(got[i], want[i]) {
						t.Errorf("%s/%s/%s corner %q: batched result differs from serial",
							evName, setName, pass, cs[i].Name)
					}
				}
			}
		}
	}
}

// TestBatchKernelsMatchSerial: the raw batched recurrences agree bit for bit
// with the single-corner kernels at every node, for arbitrary derates.
func TestBatchKernelsMatchSerial(t *testing.T) {
	tk := tech.Default45()
	tr := batchFixture(tk)
	net := Extract(tr, 100)
	cs := []tech.Corner{
		{Name: "a", Vdd: 1.1},
		{Name: "b", Vdd: 1.0, RDerate: 1.17, CDerate: 0.93},
		{Name: "c", Vdd: 0.9, RDerate: 0.85, CDerate: 1.21},
	}
	K := len(cs)
	rd := make([]float64, K)
	rs := make([]float64, K)
	csc := make([]float64, K)
	for _, s := range net.Stages {
		n := len(s.R)
		cornerDerates(net, s, cs, rd, rs, csc)
		cdown := make([]float64, K*n)
		d := make([]float64, K*n)
		stageElmoreBatchInto(s, rd, rs, csc, cdown, d)
		b := make([]float64, K*n)
		m1 := make([]float64, K*n)
		m2 := make([]float64, K*n)
		stageMomentsBatchInto(s, rd, rs, csc, cdown, b, m1, m2)
		for k, c := range cs {
			wantD := stageElmoreScaled(s, rd[k], c.RScale(), c.CScale())
			if !reflect.DeepEqual(d[k*n:(k+1)*n], wantD) {
				t.Fatalf("stage %d corner %d: batched Elmore differs", s.Index, k)
			}
			w1, w2 := stageMomentsScaled(s, rd[k], c.RScale(), c.CScale())
			if !reflect.DeepEqual(m1[k*n:(k+1)*n], w1) || !reflect.DeepEqual(m2[k*n:(k+1)*n], w2) {
				t.Fatalf("stage %d corner %d: batched moments differ", s.Index, k)
			}
			// And the windowing helper agrees with the max of the vector.
			max := 0.0
			for _, v := range wantD {
				if v > max {
					max = v
				}
			}
			if got := StageElmoreMaxAt(s, rd[k], c); got != max {
				t.Fatalf("stage %d corner %d: StageElmoreMaxAt %v != %v", s.Index, k, got, max)
			}
		}
	}
}
