package analysis

import (
	"math"

	"contango/internal/ctree"
)

// IncrementalNet is a staged RC netlist that tracks its clock tree across
// mutations. Where Extract rebuilds every stage from scratch, Sync consults
// the tree's mutation journal (package ctree), re-extracts only the stages
// an edit touched, and splices cached Stage objects back in for everything
// else. Two guarantees make it safe to build per-stage evaluation caches on
// top:
//
//  1. Pointer stability: a *Stage returned by Sync is the same object as in
//     the previous Sync only if its electrically relevant content (driver
//     parameters, RC arrays, load and sink placement) is unchanged. Even
//     when a stage is re-extracted — including after a whole-tree restore,
//     which replaces every node — a content signature match preserves the
//     old object's identity (with its node pointers rebound to the live
//     tree). The converse does not hold: a stage mutated and reverted
//     across two Syncs comes back as a new object with the original
//     signature, which is why signature equality (Stage.Sig), not pointer
//     equality, is the strongest validity check available to caches.
//
//  2. Shape parity: the Net produced by Sync is identical to what a fresh
//     Extract of the current tree would produce — same stage order, same
//     RC node numbering — because both run the same buildStage walk.
//
// Sync invalidates Nets returned by earlier Sync calls (their stages are
// relinked in place). An IncrementalNet is not safe for concurrent use.
//
// Mutations made through the ctree setters (SetWidth, SetSnake, AddSnake,
// SetBufferSize) and structural operations are picked up automatically;
// writing node fields directly bypasses the journal and is not supported
// while an IncrementalNet is live on the tree.
type IncrementalNet struct {
	tree   *ctree.Tree
	maxSeg float64
	root   *ctree.Node // root at last sync; a change means a tree restore
	gen    uint64      // journal generation at last sync
	net    *Net
	cache  map[int]*Stage // by driver node ID, -1 for the source stage

	// Rebuilt and Reused count stage extractions across the life of the
	// net: how many stages Sync re-extracted versus spliced from cache.
	Rebuilt, Reused int
}

// NewIncrementalNet creates an incremental extractor for tr with the given
// RC subdivision length (DefaultMaxSeg when maxSeg <= 0). No extraction
// happens until the first Sync.
func NewIncrementalNet(tr *ctree.Tree, maxSeg float64) *IncrementalNet {
	if maxSeg <= 0 {
		maxSeg = DefaultMaxSeg
	}
	return &IncrementalNet{tree: tr, maxSeg: maxSeg, cache: make(map[int]*Stage)}
}

// Tree returns the tracked clock tree.
func (inc *IncrementalNet) Tree() *ctree.Tree { return inc.tree }

// driverKey maps a stage driver to its cache key (-1 for the source stage).
func driverKey(driver *ctree.Node) int {
	if driver == nil {
		return -1
	}
	return driver.ID
}

// stageDriverAbove returns the ID of the buffer driving the stage that owns
// n's parent edge: the nearest strict buffer ancestor, or -1 for the source
// stage.
func stageDriverAbove(n *ctree.Node) int {
	for cur := n.Parent; cur != nil; cur = cur.Parent {
		if cur.Kind == ctree.Buffer {
			return cur.ID
		}
	}
	return -1
}

// Sync brings the netlist up to date with the tree and returns it. Stages
// untouched since the previous Sync keep their object identity; touched
// stages are re-extracted (and keep their identity anyway when the rebuild
// produced identical content, e.g. after a probe was applied and reverted
// across two Syncs, or after a snapshot restore).
func (inc *IncrementalNet) Sync() *Net {
	tr := inc.tree
	full := inc.net == nil || inc.root != tr.Root
	var dirty map[int]bool
	if !full {
		ids := tr.TouchedSince(inc.gen)
		if len(ids) == 0 {
			return inc.net // nothing changed
		}
		dirty = make(map[int]bool, 2*len(ids))
		for _, id := range ids {
			n := tr.Node(id)
			if n == nil {
				// Deleted since touched; the structural op that removed
				// it journaled a surviving neighbor too.
				continue
			}
			if n.Kind == ctree.Buffer {
				// A buffer edit dirties the stage it drives (strength,
				// self-loading) and the stage its input pin loads.
				dirty[n.ID] = true
			}
			dirty[stageDriverAbove(n)] = true
		}
	}

	net := &Net{Tree: tr}
	newCache := make(map[int]*Stage, len(inc.cache)+4)
	var place func(driver *ctree.Node, parentStage, inputNode int)
	place = func(driver *ctree.Node, parentStage, inputNode int) {
		key := driverKey(driver)
		old := inc.cache[key]
		if !full && old != nil && !dirty[key] {
			// Clean stage: relink the cached object without walking its
			// subtree. Child stages hang off its recorded buffer loads.
			idx := len(net.Stages)
			old.Index, old.Parent, old.InputNode = idx, parentStage, inputNode
			old.Children = old.Children[:0]
			net.Stages = append(net.Stages, old)
			if parentStage >= 0 {
				net.Stages[parentStage].Children = append(net.Stages[parentStage].Children, idx)
			}
			newCache[key] = old
			inc.Reused++
			for _, ld := range old.Loads {
				place(ld.Buf, idx, ld.Node)
			}
			return
		}
		s := buildStage(net, tr, inc.maxSeg, driver, parentStage, inputNode, place)
		s.sig = stageSig(s, tr)
		inc.Rebuilt++
		if old != nil && old.sig == s.sig {
			// Identical content: keep the cached object's identity so
			// per-stage evaluation caches keyed on the pointer survive,
			// while rebinding every node pointer to the live tree.
			*old = *s
			net.Stages[old.Index] = old
			s = old
		}
		newCache[key] = s
	}
	place(nil, -1, -1)

	inc.net = net
	inc.cache = newCache
	inc.root = tr.Root
	inc.gen = tr.Gen()
	return net
}

// stageSig hashes everything that determines a stage's electrical behavior:
// the driver (composite parameters, or the tree's source resistance), the
// subdivided RC arrays, and the positions and identities of buffer loads and
// sink measurement points. FNV-1a over the raw float bits — exact content
// equality, no tolerance.
func stageSig(s *Stage, tr *ctree.Tree) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(x uint64) {
		h ^= x
		h *= prime
	}
	mixF := func(v float64) { mix(math.Float64bits(v)) }
	if s.Driver == nil {
		mix(0)
		mixF(tr.SourceR)
	} else {
		mix(1)
		mix(uint64(s.Driver.ID))
		mix(uint64(s.Driver.Buf.N))
		mixF(s.Driver.Buf.Type.Cin)
		mixF(s.Driver.Buf.Type.Cout)
		mixF(s.Driver.Buf.Type.Rout)
	}
	mix(uint64(len(s.R)))
	for i := range s.R {
		mixF(s.R[i])
		mixF(s.C[i])
		mix(uint64(s.Par[i] + 1))
	}
	mix(uint64(len(s.Loads)))
	for _, ld := range s.Loads {
		mix(uint64(ld.Node))
		mix(uint64(ld.Buf.ID))
	}
	mix(uint64(len(s.Sinks)))
	for _, m := range s.Sinks {
		mix(uint64(m.Node))
		mix(uint64(m.Sink.ID))
	}
	return h
}
