package analysis

import (
	"math"
	"math/rand"
	"testing"

	"contango/internal/ctree"
	"contango/internal/tech"
)

// randomMove applies one random sizing/snaking/buffer mutation through the
// journaling setters (plus occasional structural edits), mirroring what the
// optimization passes do between evaluations.
func randomMove(rng *rand.Rand, tr *ctree.Tree) {
	var nodes []*ctree.Node
	tr.PreOrder(func(n *ctree.Node) {
		if n.Parent != nil {
			nodes = append(nodes, n)
		}
	})
	if len(nodes) == 0 {
		return
	}
	n := nodes[rng.Intn(len(nodes))]
	switch rng.Intn(5) {
	case 0:
		tr.SetWidth(n, rng.Intn(len(tr.Tech.Wires)))
	case 1:
		tr.AddSnake(n, float64(rng.Intn(8))*25)
	case 2:
		if n.Snake >= 25 {
			tr.AddSnake(n, -25)
		} else {
			tr.SetSnake(n, 50)
		}
	case 3:
		var bufs []*ctree.Node
		for _, m := range nodes {
			if m.Kind == ctree.Buffer {
				bufs = append(bufs, m)
			}
		}
		if len(bufs) > 0 {
			b := bufs[rng.Intn(len(bufs))]
			tr.SetBufferSize(b, 1+rng.Intn(16))
		}
	case 4:
		if n.Route.Length() > 100 {
			comp := tech.Composite{Type: tr.Tech.Inverters[1], N: 8}
			// Insert a polarity-preserving inverter pair mid-edge.
			b1 := tr.InsertOnEdge(n, n.Route.Length()/2, ctree.Buffer)
			c1 := comp
			b1.Buf = &c1
			b2 := tr.InsertOnEdge(n, 10, ctree.Buffer)
			c2 := comp
			b2.Buf = &c2
		}
	}
}

// netsEqual requires the incremental net to be structurally and numerically
// identical to a fresh extraction.
func netsEqual(t *testing.T, fresh, inc *Net) {
	t.Helper()
	if len(fresh.Stages) != len(inc.Stages) {
		t.Fatalf("stage count %d vs %d", len(fresh.Stages), len(inc.Stages))
	}
	for i, fs := range fresh.Stages {
		is := inc.Stages[i]
		if fs.Index != is.Index || fs.Parent != is.Parent || fs.InputNode != is.InputNode {
			t.Fatalf("stage %d linkage differs: %+v vs %+v", i, fs, is)
		}
		if driverKey(fs.Driver) != driverKey(is.Driver) {
			t.Fatalf("stage %d driver differs", i)
		}
		if len(fs.R) != len(is.R) || len(fs.Loads) != len(is.Loads) || len(fs.Sinks) != len(is.Sinks) {
			t.Fatalf("stage %d sizes differ", i)
		}
		for j := range fs.R {
			if fs.R[j] != is.R[j] || fs.C[j] != is.C[j] || fs.Par[j] != is.Par[j] {
				t.Fatalf("stage %d RC node %d differs: R %v/%v C %v/%v", i, j, fs.R[j], is.R[j], fs.C[j], is.C[j])
			}
		}
		for j := range fs.Loads {
			if fs.Loads[j].Node != is.Loads[j].Node || fs.Loads[j].Buf.ID != is.Loads[j].Buf.ID {
				t.Fatalf("stage %d load %d differs", i, j)
			}
		}
		for j := range fs.Sinks {
			if fs.Sinks[j].Node != is.Sinks[j].Node || fs.Sinks[j].Sink.ID != is.Sinks[j].Sink.ID {
				t.Fatalf("stage %d sink %d differs", i, j)
			}
		}
		if len(fs.Children) != len(is.Children) {
			t.Fatalf("stage %d children differ", i)
		}
		for j := range fs.Children {
			if fs.Children[j] != is.Children[j] {
				t.Fatalf("stage %d child %d differs", i, j)
			}
		}
	}
}

// TestIncrementalNetMatchesExtract: after any sequence of journaled
// mutations, Sync must produce exactly the netlist a fresh Extract would.
func TestIncrementalNetMatchesExtract(t *testing.T) {
	tk := tech.Default45()
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 10; iter++ {
		tr := randomBufferedTree(rng, tk)
		inc := NewIncrementalNet(tr, 0)
		for move := 0; move < 25; move++ {
			netsEqual(t, Extract(tr, 0), inc.Sync())
			randomMove(rng, tr)
		}
		netsEqual(t, Extract(tr, 0), inc.Sync())
		if inc.Reused == 0 {
			t.Error("incremental extractor never reused a stage")
		}
	}
}

// TestIncrementalNetSurvivesRestore: restoring a snapshot by struct
// assignment (the IVC reject path) replaces every node; Sync must detect it
// and still match a fresh extraction.
func TestIncrementalNetSurvivesRestore(t *testing.T) {
	tk := tech.Default45()
	rng := rand.New(rand.NewSource(7))
	tr := randomBufferedTree(rng, tk)
	inc := NewIncrementalNet(tr, 0)
	inc.Sync()
	snap := tr.Clone()
	for i := 0; i < 5; i++ {
		randomMove(rng, tr)
	}
	inc.Sync()
	*tr = *snap
	netsEqual(t, Extract(tr, 0), inc.Sync())
	// Mutations after the restore must be picked up too.
	randomMove(rng, tr)
	netsEqual(t, Extract(tr, 0), inc.Sync())
}

// resultsClose compares evaluator results field by field within tol.
func resultsClose(t *testing.T, name string, a, b *Result, tol float64) {
	t.Helper()
	check := func(what string, ma, mb map[int]float64) {
		if len(ma) != len(mb) {
			t.Fatalf("%s: %s size %d vs %d", name, what, len(ma), len(mb))
		}
		for id, v := range ma {
			if w, ok := mb[id]; !ok || math.Abs(v-w) > tol {
				t.Fatalf("%s: %s[%d] = %v vs %v", name, what, id, v, w)
			}
		}
	}
	check("rise", a.Rise, b.Rise)
	check("fall", a.Fall, b.Fall)
	check("sinkSlew", a.SinkSlew, b.SinkSlew)
	check("stageSlew", a.StageSlew, b.StageSlew)
	if math.Abs(a.MaxSlew-b.MaxSlew) > tol || a.SlewViol != b.SlewViol {
		t.Fatalf("%s: maxSlew %v/%v viol %d/%d", name, a.MaxSlew, b.MaxSlew, a.SlewViol, b.SlewViol)
	}
}

// TestIncrementalElmoreParity: property-style — random moves, incremental
// vs fresh full evaluation, every corner, within 1e-9 ps.
func TestIncrementalElmoreParity(t *testing.T) {
	tk := tech.Default45()
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 6; iter++ {
		tr := randomBufferedTree(rng, tk)
		inc := &IncrementalElmore{}
		for move := 0; move < 20; move++ {
			for _, c := range tk.Corners {
				got, err := inc.Evaluate(tr, c)
				if err != nil {
					t.Fatal(err)
				}
				want, err := (&Elmore{}).Evaluate(tr, c)
				if err != nil {
					t.Fatal(err)
				}
				resultsClose(t, "elmore", want, got, 1e-9)
			}
			randomMove(rng, tr)
		}
	}
}

// TestIncrementalTwoPoleParity: the D2M variant of the same property.
func TestIncrementalTwoPoleParity(t *testing.T) {
	tk := tech.Default45()
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 6; iter++ {
		tr := randomBufferedTree(rng, tk)
		inc := &IncrementalTwoPole{}
		for move := 0; move < 20; move++ {
			for _, c := range tk.Corners {
				got, err := inc.Evaluate(tr, c)
				if err != nil {
					t.Fatal(err)
				}
				want, err := (&TwoPole{}).Evaluate(tr, c)
				if err != nil {
					t.Fatal(err)
				}
				resultsClose(t, "twopole", want, got, 1e-9)
			}
			randomMove(rng, tr)
		}
	}
}

// TestIncrementalElmoreAfterRestore: parity must survive the snapshot
// restore pattern used by the IVC reject path.
func TestIncrementalElmoreAfterRestore(t *testing.T) {
	tk := tech.Default45()
	rng := rand.New(rand.NewSource(11))
	tr := randomBufferedTree(rng, tk)
	inc := &IncrementalElmore{}
	if _, err := inc.Evaluate(tr, tk.Reference()); err != nil {
		t.Fatal(err)
	}
	snap := tr.Clone()
	for i := 0; i < 4; i++ {
		randomMove(rng, tr)
	}
	if _, err := inc.Evaluate(tr, tk.Reference()); err != nil {
		t.Fatal(err)
	}
	*tr = *snap
	got, err := inc.Evaluate(tr, tk.Reference())
	if err != nil {
		t.Fatal(err)
	}
	want, err := (&Elmore{}).Evaluate(tr, tk.Reference())
	if err != nil {
		t.Fatal(err)
	}
	resultsClose(t, "elmore-restore", want, got, 1e-9)
}
