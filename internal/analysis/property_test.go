package analysis

import (
	"math"
	"math/rand"
	"testing"

	"contango/internal/ctree"
	"contango/internal/geom"
	"contango/internal/tech"
)

// randomBufferedTree builds a random tree with random buffers for
// property-based checks.
func randomBufferedTree(rng *rand.Rand, tk *tech.Tech) *ctree.Tree {
	tr := ctree.New(tk, geom.Pt(0, 0), 0.05+rng.Float64()*0.2)
	parents := []*ctree.Node{tr.Root}
	comp := tech.Composite{Type: tk.Inverters[1], N: 8}
	for i := 0; i < 20+rng.Intn(30); i++ {
		p := parents[rng.Intn(len(parents))]
		loc := geom.Pt(rng.Float64()*4000, rng.Float64()*4000)
		switch rng.Intn(4) {
		case 0:
			tr.AddSink(p, loc, 15+rng.Float64()*40, "")
		case 1:
			b := tr.AddChild(p, ctree.Buffer, loc)
			c := comp
			b.Buf = &c
			parents = append(parents, b)
		default:
			parents = append(parents, tr.AddChild(p, ctree.Internal, loc))
		}
	}
	if len(tr.Sinks()) == 0 {
		tr.AddSink(tr.Root, geom.Pt(100, 100), 30, "fallback")
	}
	return tr
}

// TestElmoreSubdivisionInvariance: the Elmore delay of a distributed wire is
// exact under π-segmentation, so refining MaxSeg must not change results.
func TestElmoreSubdivisionInvariance(t *testing.T) {
	tk := tech.Default45()
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 25; iter++ {
		tr := randomBufferedTree(rng, tk)
		coarse, err := (&Elmore{MaxSeg: 1e9}).Evaluate(tr, tk.Reference())
		if err != nil {
			t.Fatal(err)
		}
		fine, err := (&Elmore{MaxSeg: 25}).Evaluate(tr, tk.Reference())
		if err != nil {
			t.Fatal(err)
		}
		for id, v := range coarse.Rise {
			if f := fine.Rise[id]; math.Abs(f-v) > 1e-6*(1+math.Abs(v)) {
				t.Fatalf("iter %d sink %d: coarse %v fine %v", iter, id, v, f)
			}
		}
	}
}

// TestMomentOrdering: on every RC node the first moment bounds the D2M
// delay (m1/sqrt(m2) <= 1 would flip only on pathological non-tree nets),
// and both are non-negative.
func TestMomentOrdering(t *testing.T) {
	tk := tech.Default45()
	rng := rand.New(rand.NewSource(19))
	for iter := 0; iter < 25; iter++ {
		tr := randomBufferedTree(rng, tk)
		el, _ := (&Elmore{}).Evaluate(tr, tk.Reference())
		tp, _ := (&TwoPole{}).Evaluate(tr, tk.Reference())
		for id, m1 := range el.Rise {
			d := tp.Rise[id]
			if d < 0 || m1 < 0 {
				t.Fatalf("negative delay: m1=%v d2m=%v", m1, d)
			}
			if d > m1*1.01+1e-9 {
				t.Fatalf("D2M %v exceeds Elmore bound %v", d, m1)
			}
		}
	}
}

// TestMonotoneInCapacitance: adding sink load must not make any sink faster
// under either closed-form model.
func TestMonotoneInCapacitance(t *testing.T) {
	tk := tech.Default45()
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 15; iter++ {
		tr := randomBufferedTree(rng, tk)
		sinks := tr.Sinks()
		before, _ := (&Elmore{}).Evaluate(tr, tk.Reference())
		victim := sinks[rng.Intn(len(sinks))]
		victim.SinkCap += 100
		after, _ := (&Elmore{}).Evaluate(tr, tk.Reference())
		for id, v := range before.Rise {
			if after.Rise[id] < v-1e-9 {
				t.Fatalf("iter %d: sink %d got faster after adding load", iter, id)
			}
		}
	}
}

// TestOffsetExactAtCalibration: immediately after calibration, the hybrid
// must reproduce the reference exactly at every sink.
func TestOffsetExactAtCalibration(t *testing.T) {
	tk := tech.Default45()
	rng := rand.New(rand.NewSource(29))
	tr := randomBufferedTree(rng, tk)
	ref := &TwoPole{} // any evaluator can play the accurate role
	off := NewOffset(&Elmore{})
	refRes, err := off.Calibrate(tr, ref)
	if err != nil {
		t.Fatal(err)
	}
	for ci, corner := range tk.Corners {
		got, err := off.Evaluate(tr, corner)
		if err != nil {
			t.Fatal(err)
		}
		for id, v := range refRes[ci].Rise {
			if math.Abs(got.Rise[id]-v) > 1e-9 {
				t.Fatalf("corner %s sink %d: hybrid %v ref %v", corner.Name, id, got.Rise[id], v)
			}
		}
		for id, v := range refRes[ci].SinkSlew {
			if math.Abs(got.SinkSlew[id]-v) > 1e-9*(1+v) {
				t.Fatalf("corner %s sink %d slew: hybrid %v ref %v", corner.Name, id, got.SinkSlew[id], v)
			}
		}
	}
}

// TestOffsetTracksEdits: after calibration, an edit shifts the hybrid in
// the same direction as the base model.
func TestOffsetTracksEdits(t *testing.T) {
	tk := tech.Default45()
	tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
	s := tr.AddSink(tr.Root, geom.Pt(2000, 0), 35, "s")
	off := NewOffset(&Elmore{})
	if _, err := off.Calibrate(tr, &TwoPole{}); err != nil {
		t.Fatal(err)
	}
	before, _ := off.Evaluate(tr, tk.Reference())
	s.Snake += 800
	after, _ := off.Evaluate(tr, tk.Reference())
	if after.Rise[s.ID] <= before.Rise[s.ID] {
		t.Error("hybrid did not track a slow-down edit")
	}
}

// TestStageSlewConsistency: the per-stage slews must cover the network max.
func TestStageSlewConsistency(t *testing.T) {
	tk := tech.Default45()
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 15; iter++ {
		tr := randomBufferedTree(rng, tk)
		res, _ := (&Elmore{}).Evaluate(tr, tk.Reference())
		worst := 0.0
		for _, v := range res.StageSlew {
			if v > worst {
				worst = v
			}
		}
		if math.Abs(worst-res.MaxSlew) > 1e-9 {
			t.Fatalf("iter %d: stage slews max %v != MaxSlew %v", iter, worst, res.MaxSlew)
		}
	}
}
