package analysis

import (
	"contango/internal/ctree"
	"contango/internal/tech"
)

// Offset is a calibrated hybrid evaluator: a cheap base model (usually
// Elmore) plus frozen per-sink corrections measured against an accurate
// reference (the transient engine). Between calibrations the hybrid tracks
// topology and wire edits through the base model while retaining the
// reference's absolute accuracy at the calibration point — the classic
// trick for keeping SPICE invocations per optimization round at O(1)
// (the paper's CNE/IVC loop with "SPICE runs, Arnoldi approximation, or any
// other available timing analysis tool/model").
//
// Calibration error re-enters only through edits made after the last
// Calibrate call, so alternating cheap optimization rounds with sparse
// recalibrations converges like a quasi-Newton iteration.
type Offset struct {
	Base Evaluator

	shifts map[string]*shift // keyed by corner name
}

type shift struct {
	dRise, dFall map[int]float64
	// Slew corrections are multiplicative: cheap models misestimate slews
	// by a roughly constant factor, so a ratio calibrates out the scale
	// error where an additive delta would not.
	rSlew map[int]float64
	rMax  float64
}

// NewOffset wraps base with zero corrections.
func NewOffset(base Evaluator) *Offset {
	return &Offset{Base: base, shifts: map[string]*shift{}}
}

// Name implements Evaluator.
func (o *Offset) Name() string { return "offset(" + o.Base.Name() + ")" }

// Calibrate measures the reference evaluator at every corner of the tree's
// technology and stores per-sink corrections. It returns the reference
// results so callers can reuse them (e.g., to record honest metrics without
// extra reference runs).
func (o *Offset) Calibrate(tr *ctree.Tree, ref Evaluator) ([]*Result, error) {
	var out []*Result
	for _, c := range tr.Tech.Corners {
		refRes, err := ref.Evaluate(tr, c)
		if err != nil {
			return nil, err
		}
		baseRes, err := o.Base.Evaluate(tr, c)
		if err != nil {
			return nil, err
		}
		sh := &shift{
			dRise: map[int]float64{},
			dFall: map[int]float64{},
			rSlew: map[int]float64{},
			rMax:  1,
		}
		if baseRes.MaxSlew > 1e-9 {
			sh.rMax = refRes.MaxSlew / baseRes.MaxSlew
		}
		for id, v := range refRes.Rise {
			sh.dRise[id] = v - baseRes.Rise[id]
		}
		for id, v := range refRes.Fall {
			sh.dFall[id] = v - baseRes.Fall[id]
		}
		for id, v := range refRes.SinkSlew {
			if b := baseRes.SinkSlew[id]; b > 1e-9 {
				sh.rSlew[id] = v / b
			} else {
				sh.rSlew[id] = 1
			}
		}
		o.shifts[c.Name] = sh
		out = append(out, refRes)
	}
	return out, nil
}

// Evaluate implements Evaluator: base model plus frozen corrections.
func (o *Offset) Evaluate(tr *ctree.Tree, corner tech.Corner) (*Result, error) {
	res, err := o.Base.Evaluate(tr, corner)
	if err != nil {
		return nil, err
	}
	sh := o.shifts[corner.Name]
	if sh == nil {
		return res, nil
	}
	limit := tr.Tech.SlewLimit
	out := &Result{
		Corner:   corner,
		Rise:     make(map[int]float64, len(res.Rise)),
		Fall:     make(map[int]float64, len(res.Fall)),
		SinkSlew: make(map[int]float64, len(res.SinkSlew)),
		MaxSlew:  res.MaxSlew * sh.rMax,
	}
	for id, v := range res.Rise {
		out.Rise[id] = v + sh.dRise[id]
	}
	for id, v := range res.Fall {
		out.Fall[id] = v + sh.dFall[id]
	}
	out.StageSlew = make(map[int]float64, len(res.StageSlew))
	for id, v := range res.StageSlew {
		out.StageSlew[id] = v * sh.rMax
	}
	viol := 0
	for id, v := range res.SinkSlew {
		r, ok := sh.rSlew[id]
		if !ok {
			r = 1
		}
		s := v * r
		out.SinkSlew[id] = s
		if s > limit {
			viol++
		}
	}
	if out.MaxSlew > limit {
		viol++
	}
	out.SlewViol = viol
	return out, nil
}

var _ Evaluator = (*Offset)(nil)
