package analysis

import (
	"reflect"
	"testing"

	"contango/internal/tech"
)

// TestDerateUnityBitIdentical: a corner spelling out unit derates takes
// the same code path values as the bare corner — bit-identical results
// for every evaluator.
func TestDerateUnityBitIdentical(t *testing.T) {
	tk := tech.Default45()
	tr := singleWire(tk)
	bare := tech.Corner{Name: "fast@1.2V", Vdd: 1.2}
	unity := tech.Corner{Name: "fast@1.2V", Vdd: 1.2, RDerate: 1, CDerate: 1}
	for _, ev := range []Evaluator{&Elmore{}, &TwoPole{}, &IncrementalElmore{}, &IncrementalTwoPole{}} {
		a, err := ev.Evaluate(tr, bare)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ev.Evaluate(tr, unity)
		if err != nil {
			t.Fatal(err)
		}
		// Corner identity differs (field values), so compare measurements.
		a.Corner, b.Corner = tech.Corner{}, tech.Corner{}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: unit derates changed results", ev.Name())
		}
	}
}

// TestDerateSlowsNetwork: scaling interconnect R or C up must increase
// every sink latency under both closed-form models.
func TestDerateSlowsNetwork(t *testing.T) {
	tk := tech.Default45()
	tr := singleWire(tk)
	base := tech.Corner{Name: "base", Vdd: 1.2}
	for _, ev := range []Evaluator{&Elmore{}, &TwoPole{}} {
		b, err := ev.Evaluate(tr, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, derated := range []tech.Corner{
			{Name: "slowR", Vdd: 1.2, RDerate: 1.3},
			{Name: "slowC", Vdd: 1.2, CDerate: 1.3},
			{Name: "slowRC", Vdd: 1.2, RDerate: 1.15, CDerate: 1.15},
		} {
			d, err := ev.Evaluate(tr, derated)
			if err != nil {
				t.Fatal(err)
			}
			for id, v := range d.Rise {
				if v <= b.Rise[id] {
					t.Errorf("%s/%s: sink %d not slower: %v <= %v", ev.Name(), derated.Name, id, v, b.Rise[id])
				}
			}
		}
		// And fast interconnect speeds it up.
		f, err := ev.Evaluate(tr, tech.Corner{Name: "fastRC", Vdd: 1.2, RDerate: 0.8, CDerate: 0.9})
		if err != nil {
			t.Fatal(err)
		}
		for id, v := range f.Rise {
			if v >= b.Rise[id] {
				t.Errorf("%s: fast derate not faster at sink %d", ev.Name(), id)
			}
		}
	}
}
