package analysis

import (
	"contango/internal/ctree"
	"contango/internal/tech"
)

// Incremental closed-form evaluators: Elmore and D2M variants that keep an
// IncrementalNet plus per-stage delay/moment vectors, so a candidate move
// re-derives only the stages in its dirty cone. Arrival propagation across
// stage boundaries is always redone (it is O(stages)); the per-RC-node work
// — the part that scales with network size — is served from cache for every
// stage whose content is unchanged. Results are bit-identical to the plain
// Elmore/TwoPole evaluators: cached vectors are the exact floats a fresh
// evaluation would recompute from the same reused RC arrays.

// elmoreEntry caches one stage's Elmore state at one driver resistance.
type elmoreEntry struct {
	stage *Stage
	rd    float64
	d     []float64 // Elmore delay to every RC node, ps
	// Aggregates over the stage's nodes, derived from d.
	maxSlew float64
	viol    int
}

// IncrementalElmore is the incremental counterpart of Elmore. The zero
// value is ready to use; it binds to the first tree it evaluates and
// rebinds (dropping caches) when handed a different one. Not safe for
// concurrent use.
type IncrementalElmore struct {
	// MaxSeg overrides the RC subdivision length (µm); 0 means default.
	MaxSeg float64

	tree  *ctree.Tree
	inc   *IncrementalNet
	cache map[tech.Corner]map[int]*elmoreEntry
}

// Name implements Evaluator.
func (e *IncrementalElmore) Name() string { return "elmore-incremental" }

func (e *IncrementalElmore) bind(tr *ctree.Tree) {
	if e.inc != nil && e.tree == tr {
		return
	}
	e.tree = tr
	e.inc = NewIncrementalNet(tr, e.MaxSeg)
	e.cache = make(map[tech.Corner]map[int]*elmoreEntry)
}

// Evaluate implements Evaluator.
func (e *IncrementalElmore) Evaluate(tr *ctree.Tree, corner tech.Corner) (*Result, error) {
	e.bind(tr)
	net := e.inc.Sync()
	entries := e.cache[corner]
	if entries == nil {
		entries = make(map[int]*elmoreEntry)
	}
	next := make(map[int]*elmoreEntry, len(net.Stages))
	res := &Result{
		Corner:    corner,
		Rise:      make(map[int]float64),
		Fall:      make(map[int]float64),
		SinkSlew:  make(map[int]float64),
		StageSlew: make(map[int]float64),
	}
	limit := tr.Tech.SlewLimit
	arrival := make([]float64, len(net.Stages))
	for _, s := range net.Stages {
		rd := net.DriverR(s, corner)
		key := driverKey(s.Driver)
		ent := entries[key]
		if ent == nil || ent.stage != s || ent.rd != rd {
			ent = &elmoreEntry{stage: s, rd: rd, d: stageElmoreAt(s, rd, corner)}
			for _, v := range ent.d {
				slew := ln9 * v
				if slew > ent.maxSlew {
					ent.maxSlew = slew
				}
				if slew > limit {
					ent.viol++
				}
			}
		}
		next[key] = ent
		base := arrival[s.Index]
		for _, ci := range s.Children {
			arrival[ci] = base + ent.d[net.Stages[ci].InputNode]
		}
		for _, m := range s.Sinks {
			t := base + ent.d[m.Node]
			res.Rise[m.Sink.ID] = t
			res.Fall[m.Sink.ID] = t
			res.SinkSlew[m.Sink.ID] = ln9 * ent.d[m.Node]
		}
		res.StageSlew[key] = ent.maxSlew
		if ent.maxSlew > res.MaxSlew {
			res.MaxSlew = ent.maxSlew
		}
		res.SlewViol += ent.viol
	}
	e.cache[corner] = next
	return res, nil
}

// EvaluateCorners implements CornerEvaluator: one extractor sync, then one
// stage-loop over the whole corner set, with the stages missing from a
// corner's cache recomputed by the batched kernel — a single topology
// traversal instead of one per corner. Per-corner arithmetic matches
// Evaluate exactly (the batch kernel preserves each corner's operation
// order), so results and cache contents are bit-identical to the serial
// per-corner loop.
func (e *IncrementalElmore) EvaluateCorners(tr *ctree.Tree, corners []tech.Corner) ([]*Result, error) {
	if len(corners) == 1 {
		r, err := e.Evaluate(tr, corners[0])
		if err != nil {
			return nil, err
		}
		return []*Result{r}, nil
	}
	e.bind(tr)
	net := e.inc.Sync()
	K := len(corners)
	limit := tr.Tech.SlewLimit
	results := make([]*Result, K)
	entries := make([]map[int]*elmoreEntry, K)
	nexts := make([]map[int]*elmoreEntry, K)
	arrivals := make([][]float64, K)
	for k, c := range corners {
		entries[k] = e.cache[c]
		nexts[k] = make(map[int]*elmoreEntry, len(net.Stages))
		arrivals[k] = make([]float64, len(net.Stages))
		results[k] = newResult(c)
	}
	ents := make([]*elmoreEntry, K)
	missK := make([]int, 0, K)
	missRd := make([]float64, K)
	missRs := make([]float64, K)
	missCs := make([]float64, K)
	ks := kernelPool.Get().(*kernelScratch)
	for _, s := range net.Stages {
		key := driverKey(s.Driver)
		missK = missK[:0]
		for k, c := range corners {
			rd := net.DriverR(s, c)
			ent := entries[k][key]
			if ent == nil || ent.stage != s || ent.rd != rd {
				j := len(missK)
				missK = append(missK, k)
				missRd[j] = rd
				missRs[j] = c.RScale()
				missCs[j] = c.CScale()
				ent = nil
			}
			ents[k] = ent
		}
		if m := len(missK); m > 0 {
			n := len(s.R)
			ks.a = growFloats(ks.a, m*n)
			block := make([]float64, m*n) // owned by the new cache entries
			stageElmoreBatchInto(s, missRd[:m], missRs[:m], missCs[:m], ks.a, block)
			for j, k := range missK {
				ent := &elmoreEntry{stage: s, rd: missRd[j], d: block[j*n : (j+1)*n : (j+1)*n]}
				for _, v := range ent.d {
					slew := ln9 * v
					if slew > ent.maxSlew {
						ent.maxSlew = slew
					}
					if slew > limit {
						ent.viol++
					}
				}
				ents[k] = ent
			}
		}
		for k := range corners {
			ent := ents[k]
			nexts[k][key] = ent
			res := results[k]
			base := arrivals[k][s.Index]
			for _, ci := range s.Children {
				arrivals[k][ci] = base + ent.d[net.Stages[ci].InputNode]
			}
			for _, m := range s.Sinks {
				t := base + ent.d[m.Node]
				res.Rise[m.Sink.ID] = t
				res.Fall[m.Sink.ID] = t
				res.SinkSlew[m.Sink.ID] = ln9 * ent.d[m.Node]
			}
			res.StageSlew[key] = ent.maxSlew
			if ent.maxSlew > res.MaxSlew {
				res.MaxSlew = ent.maxSlew
			}
			res.SlewViol += ent.viol
		}
	}
	kernelPool.Put(ks)
	for k, c := range corners {
		e.cache[c] = nexts[k]
	}
	return results, nil
}

// twoPoleEntry caches one stage's first two moments at one driver
// resistance, plus slew aggregates derived from them.
type twoPoleEntry struct {
	stage   *Stage
	rd      float64
	m1, m2  []float64
	maxSlew float64
	viol    int
}

// IncrementalTwoPole is the incremental counterpart of TwoPole (D2M). The
// zero value is ready to use. Not safe for concurrent use.
type IncrementalTwoPole struct {
	MaxSeg float64

	tree  *ctree.Tree
	inc   *IncrementalNet
	cache map[tech.Corner]map[int]*twoPoleEntry
}

// Name implements Evaluator.
func (e *IncrementalTwoPole) Name() string { return "twopole-incremental" }

func (e *IncrementalTwoPole) bind(tr *ctree.Tree) {
	if e.inc != nil && e.tree == tr {
		return
	}
	e.tree = tr
	e.inc = NewIncrementalNet(tr, e.MaxSeg)
	e.cache = make(map[tech.Corner]map[int]*twoPoleEntry)
}

// Evaluate implements Evaluator.
func (e *IncrementalTwoPole) Evaluate(tr *ctree.Tree, corner tech.Corner) (*Result, error) {
	e.bind(tr)
	net := e.inc.Sync()
	entries := e.cache[corner]
	if entries == nil {
		entries = make(map[int]*twoPoleEntry)
	}
	next := make(map[int]*twoPoleEntry, len(net.Stages))
	res := &Result{
		Corner:    corner,
		Rise:      make(map[int]float64),
		Fall:      make(map[int]float64),
		SinkSlew:  make(map[int]float64),
		StageSlew: make(map[int]float64),
	}
	limit := tr.Tech.SlewLimit
	arrival := make([]float64, len(net.Stages))
	for _, s := range net.Stages {
		rd := net.DriverR(s, corner)
		key := driverKey(s.Driver)
		ent := entries[key]
		if ent == nil || ent.stage != s || ent.rd != rd {
			m1, m2 := stageMomentsAt(s, rd, corner)
			ent = &twoPoleEntry{stage: s, rd: rd, m1: m1, m2: m2}
			for i := range m1 {
				slew := slewFromMoments(m1[i], m2[i])
				if slew > ent.maxSlew {
					ent.maxSlew = slew
				}
				if slew > limit {
					ent.viol++
				}
			}
		}
		next[key] = ent
		base := arrival[s.Index]
		for _, ci := range s.Children {
			child := net.Stages[ci]
			arrival[ci] = base + d2m(ent.m1[child.InputNode], ent.m2[child.InputNode])
		}
		for _, m := range s.Sinks {
			t := base + d2m(ent.m1[m.Node], ent.m2[m.Node])
			res.Rise[m.Sink.ID] = t
			res.Fall[m.Sink.ID] = t
			res.SinkSlew[m.Sink.ID] = slewFromMoments(ent.m1[m.Node], ent.m2[m.Node])
		}
		res.StageSlew[key] = ent.maxSlew
		if ent.maxSlew > res.MaxSlew {
			res.MaxSlew = ent.maxSlew
		}
		res.SlewViol += ent.viol
	}
	e.cache[corner] = next
	return res, nil
}

// EvaluateCorners implements CornerEvaluator with the batched moment
// kernel: one extractor sync and one stage-loop over the whole corner set,
// bit-identical to the serial per-corner path (see IncrementalElmore).
func (e *IncrementalTwoPole) EvaluateCorners(tr *ctree.Tree, corners []tech.Corner) ([]*Result, error) {
	if len(corners) == 1 {
		r, err := e.Evaluate(tr, corners[0])
		if err != nil {
			return nil, err
		}
		return []*Result{r}, nil
	}
	e.bind(tr)
	net := e.inc.Sync()
	K := len(corners)
	limit := tr.Tech.SlewLimit
	results := make([]*Result, K)
	entries := make([]map[int]*twoPoleEntry, K)
	nexts := make([]map[int]*twoPoleEntry, K)
	arrivals := make([][]float64, K)
	for k, c := range corners {
		entries[k] = e.cache[c]
		nexts[k] = make(map[int]*twoPoleEntry, len(net.Stages))
		arrivals[k] = make([]float64, len(net.Stages))
		results[k] = newResult(c)
	}
	ents := make([]*twoPoleEntry, K)
	missK := make([]int, 0, K)
	missRd := make([]float64, K)
	missRs := make([]float64, K)
	missCs := make([]float64, K)
	ks := kernelPool.Get().(*kernelScratch)
	for _, s := range net.Stages {
		key := driverKey(s.Driver)
		missK = missK[:0]
		for k, c := range corners {
			rd := net.DriverR(s, c)
			ent := entries[k][key]
			if ent == nil || ent.stage != s || ent.rd != rd {
				j := len(missK)
				missK = append(missK, k)
				missRd[j] = rd
				missRs[j] = c.RScale()
				missCs[j] = c.CScale()
				ent = nil
			}
			ents[k] = ent
		}
		if m := len(missK); m > 0 {
			n := len(s.R)
			ks.a = growFloats(ks.a, m*n)
			ks.b = growFloats(ks.b, m*n)
			m1 := make([]float64, m*n) // owned by the new cache entries
			m2 := make([]float64, m*n)
			stageMomentsBatchInto(s, missRd[:m], missRs[:m], missCs[:m], ks.a, ks.b, m1, m2)
			for j, k := range missK {
				ent := &twoPoleEntry{
					stage: s, rd: missRd[j],
					m1: m1[j*n : (j+1)*n : (j+1)*n],
					m2: m2[j*n : (j+1)*n : (j+1)*n],
				}
				for i := range ent.m1 {
					slew := slewFromMoments(ent.m1[i], ent.m2[i])
					if slew > ent.maxSlew {
						ent.maxSlew = slew
					}
					if slew > limit {
						ent.viol++
					}
				}
				ents[k] = ent
			}
		}
		for k := range corners {
			ent := ents[k]
			nexts[k][key] = ent
			res := results[k]
			base := arrivals[k][s.Index]
			for _, ci := range s.Children {
				child := net.Stages[ci]
				arrivals[k][ci] = base + d2m(ent.m1[child.InputNode], ent.m2[child.InputNode])
			}
			for _, m := range s.Sinks {
				t := base + d2m(ent.m1[m.Node], ent.m2[m.Node])
				res.Rise[m.Sink.ID] = t
				res.Fall[m.Sink.ID] = t
				res.SinkSlew[m.Sink.ID] = slewFromMoments(ent.m1[m.Node], ent.m2[m.Node])
			}
			res.StageSlew[key] = ent.maxSlew
			if ent.maxSlew > res.MaxSlew {
				res.MaxSlew = ent.maxSlew
			}
			res.SlewViol += ent.viol
		}
	}
	kernelPool.Put(ks)
	for k, c := range corners {
		e.cache[c] = nexts[k]
	}
	return results, nil
}

var (
	_ CornerEvaluator = (*IncrementalElmore)(nil)
	_ CornerEvaluator = (*IncrementalTwoPole)(nil)
)
