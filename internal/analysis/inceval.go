package analysis

import (
	"contango/internal/ctree"
	"contango/internal/tech"
)

// Incremental closed-form evaluators: Elmore and D2M variants that keep an
// IncrementalNet plus per-stage delay/moment vectors, so a candidate move
// re-derives only the stages in its dirty cone. Arrival propagation across
// stage boundaries is always redone (it is O(stages)); the per-RC-node work
// — the part that scales with network size — is served from cache for every
// stage whose content is unchanged. Results are bit-identical to the plain
// Elmore/TwoPole evaluators: cached vectors are the exact floats a fresh
// evaluation would recompute from the same reused RC arrays.

// elmoreEntry caches one stage's Elmore state at one driver resistance.
type elmoreEntry struct {
	stage *Stage
	rd    float64
	d     []float64 // Elmore delay to every RC node, ps
	// Aggregates over the stage's nodes, derived from d.
	maxSlew float64
	viol    int
}

// IncrementalElmore is the incremental counterpart of Elmore. The zero
// value is ready to use; it binds to the first tree it evaluates and
// rebinds (dropping caches) when handed a different one. Not safe for
// concurrent use.
type IncrementalElmore struct {
	// MaxSeg overrides the RC subdivision length (µm); 0 means default.
	MaxSeg float64

	tree  *ctree.Tree
	inc   *IncrementalNet
	cache map[tech.Corner]map[int]*elmoreEntry
}

// Name implements Evaluator.
func (e *IncrementalElmore) Name() string { return "elmore-incremental" }

func (e *IncrementalElmore) bind(tr *ctree.Tree) {
	if e.inc != nil && e.tree == tr {
		return
	}
	e.tree = tr
	e.inc = NewIncrementalNet(tr, e.MaxSeg)
	e.cache = make(map[tech.Corner]map[int]*elmoreEntry)
}

// Evaluate implements Evaluator.
func (e *IncrementalElmore) Evaluate(tr *ctree.Tree, corner tech.Corner) (*Result, error) {
	e.bind(tr)
	net := e.inc.Sync()
	entries := e.cache[corner]
	if entries == nil {
		entries = make(map[int]*elmoreEntry)
	}
	next := make(map[int]*elmoreEntry, len(net.Stages))
	res := &Result{
		Corner:    corner,
		Rise:      make(map[int]float64),
		Fall:      make(map[int]float64),
		SinkSlew:  make(map[int]float64),
		StageSlew: make(map[int]float64),
	}
	limit := tr.Tech.SlewLimit
	arrival := make([]float64, len(net.Stages))
	for _, s := range net.Stages {
		rd := net.DriverR(s, corner)
		key := driverKey(s.Driver)
		ent := entries[key]
		if ent == nil || ent.stage != s || ent.rd != rd {
			ent = &elmoreEntry{stage: s, rd: rd, d: stageElmoreAt(s, rd, corner)}
			for _, v := range ent.d {
				slew := ln9 * v
				if slew > ent.maxSlew {
					ent.maxSlew = slew
				}
				if slew > limit {
					ent.viol++
				}
			}
		}
		next[key] = ent
		base := arrival[s.Index]
		for _, ci := range s.Children {
			arrival[ci] = base + ent.d[net.Stages[ci].InputNode]
		}
		for _, m := range s.Sinks {
			t := base + ent.d[m.Node]
			res.Rise[m.Sink.ID] = t
			res.Fall[m.Sink.ID] = t
			res.SinkSlew[m.Sink.ID] = ln9 * ent.d[m.Node]
		}
		res.StageSlew[key] = ent.maxSlew
		if ent.maxSlew > res.MaxSlew {
			res.MaxSlew = ent.maxSlew
		}
		res.SlewViol += ent.viol
	}
	e.cache[corner] = next
	return res, nil
}

// EvaluateCorners implements CornerEvaluator (extraction shared, per-corner
// propagation reused from the per-stage caches).
func (e *IncrementalElmore) EvaluateCorners(tr *ctree.Tree, corners []tech.Corner) ([]*Result, error) {
	out := make([]*Result, len(corners))
	for i, c := range corners {
		r, err := e.Evaluate(tr, c)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// twoPoleEntry caches one stage's first two moments at one driver
// resistance, plus slew aggregates derived from them.
type twoPoleEntry struct {
	stage   *Stage
	rd      float64
	m1, m2  []float64
	maxSlew float64
	viol    int
}

// IncrementalTwoPole is the incremental counterpart of TwoPole (D2M). The
// zero value is ready to use. Not safe for concurrent use.
type IncrementalTwoPole struct {
	MaxSeg float64

	tree  *ctree.Tree
	inc   *IncrementalNet
	cache map[tech.Corner]map[int]*twoPoleEntry
}

// Name implements Evaluator.
func (e *IncrementalTwoPole) Name() string { return "twopole-incremental" }

func (e *IncrementalTwoPole) bind(tr *ctree.Tree) {
	if e.inc != nil && e.tree == tr {
		return
	}
	e.tree = tr
	e.inc = NewIncrementalNet(tr, e.MaxSeg)
	e.cache = make(map[tech.Corner]map[int]*twoPoleEntry)
}

// Evaluate implements Evaluator.
func (e *IncrementalTwoPole) Evaluate(tr *ctree.Tree, corner tech.Corner) (*Result, error) {
	e.bind(tr)
	net := e.inc.Sync()
	entries := e.cache[corner]
	if entries == nil {
		entries = make(map[int]*twoPoleEntry)
	}
	next := make(map[int]*twoPoleEntry, len(net.Stages))
	res := &Result{
		Corner:    corner,
		Rise:      make(map[int]float64),
		Fall:      make(map[int]float64),
		SinkSlew:  make(map[int]float64),
		StageSlew: make(map[int]float64),
	}
	limit := tr.Tech.SlewLimit
	arrival := make([]float64, len(net.Stages))
	for _, s := range net.Stages {
		rd := net.DriverR(s, corner)
		key := driverKey(s.Driver)
		ent := entries[key]
		if ent == nil || ent.stage != s || ent.rd != rd {
			m1, m2 := stageMomentsAt(s, rd, corner)
			ent = &twoPoleEntry{stage: s, rd: rd, m1: m1, m2: m2}
			for i := range m1 {
				slew := slewFromMoments(m1[i], m2[i])
				if slew > ent.maxSlew {
					ent.maxSlew = slew
				}
				if slew > limit {
					ent.viol++
				}
			}
		}
		next[key] = ent
		base := arrival[s.Index]
		for _, ci := range s.Children {
			child := net.Stages[ci]
			arrival[ci] = base + d2m(ent.m1[child.InputNode], ent.m2[child.InputNode])
		}
		for _, m := range s.Sinks {
			t := base + d2m(ent.m1[m.Node], ent.m2[m.Node])
			res.Rise[m.Sink.ID] = t
			res.Fall[m.Sink.ID] = t
			res.SinkSlew[m.Sink.ID] = slewFromMoments(ent.m1[m.Node], ent.m2[m.Node])
		}
		res.StageSlew[key] = ent.maxSlew
		if ent.maxSlew > res.MaxSlew {
			res.MaxSlew = ent.maxSlew
		}
		res.SlewViol += ent.viol
	}
	e.cache[corner] = next
	return res, nil
}

// EvaluateCorners implements CornerEvaluator.
func (e *IncrementalTwoPole) EvaluateCorners(tr *ctree.Tree, corners []tech.Corner) ([]*Result, error) {
	out := make([]*Result, len(corners))
	for i, c := range corners {
		r, err := e.Evaluate(tr, c)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

var (
	_ CornerEvaluator = (*IncrementalElmore)(nil)
	_ CornerEvaluator = (*IncrementalTwoPole)(nil)
)
