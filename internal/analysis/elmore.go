package analysis

import (
	"math"

	"contango/internal/ctree"
	"contango/internal/tech"
)

// ln9 converts a time constant into a 10-90% transition time for a
// single-pole response: t90 - t10 = τ·ln(0.9/0.1).
const ln9 = 2.1972245773362196

// Elmore is the first-moment delay evaluator. It is exact for the total
// charge-transfer delay of RC trees but, as the paper stresses, ignores
// resistive shielding and slew effects; Contango uses it only to build the
// initial tree and to seed buffer insertion.
type Elmore struct {
	// MaxSeg overrides the RC subdivision length (µm); 0 means default.
	MaxSeg float64
}

// Name implements Evaluator.
func (e *Elmore) Name() string { return "elmore" }

// stageElmoreScaled returns, for one stage, the Elmore delay (ps) from the
// stage driver input to every RC node, with wire resistance scaled by rs
// and capacitance by cs. The driver contributes rd·Ctotal. Unit scales are
// exact in IEEE 754 (x·1.0 == x bitwise), so the rs = cs = 1 call is
// bit-identical to the pre-derate recurrence.
func stageElmoreScaled(s *Stage, rd, rs, cs float64) []float64 {
	n := len(s.R)
	ks := kernelPool.Get().(*kernelScratch)
	ks.a = growFloats(ks.a, n)
	cdown := ks.a
	for i := 0; i < n; i++ {
		cdown[i] = s.C[i] * cs
	}
	for i := n - 1; i >= 1; i-- {
		cdown[s.Par[i]] += cdown[i]
	}
	d := make([]float64, n)
	d[0] = rd * cdown[0]
	for i := 1; i < n; i++ {
		d[i] = d[s.Par[i]] + s.R[i]*rs*cdown[i]
	}
	kernelPool.Put(ks)
	return d
}

// stageElmore is the underated form.
func stageElmore(s *Stage, rd float64) []float64 { return stageElmoreScaled(s, rd, 1, 1) }

// stageElmoreAt is stageElmore with the corner's interconnect derates
// applied.
func stageElmoreAt(s *Stage, rd float64, corner tech.Corner) []float64 {
	return stageElmoreScaled(s, rd, corner.RScale(), corner.CScale())
}

// Evaluate implements Evaluator using per-stage Elmore delays chained
// through buffer boundaries.
func (e *Elmore) Evaluate(tr *ctree.Tree, corner tech.Corner) (*Result, error) {
	net := Extract(tr, e.MaxSeg)
	return elmoreOnNet(net, corner), nil
}

// elmoreOnNet runs the Elmore evaluation over an already-extracted netlist.
func elmoreOnNet(net *Net, corner tech.Corner) *Result {
	res := &Result{
		Corner:    corner,
		Rise:      make(map[int]float64),
		Fall:      make(map[int]float64),
		SinkSlew:  make(map[int]float64),
		StageSlew: make(map[int]float64),
	}
	limit := net.Tree.Tech.SlewLimit
	arrival := make([]float64, len(net.Stages)) // at each stage's driver input
	for _, s := range net.Stages {
		rd := net.DriverR(s, corner)
		d := stageElmoreAt(s, rd, corner)
		base := arrival[s.Index]
		// Propagate arrivals to child stages through their input nodes.
		for _, ci := range s.Children {
			child := net.Stages[ci]
			arrival[ci] = base + d[child.InputNode]
		}
		for _, m := range s.Sinks {
			t := base + d[m.Node]
			res.Rise[m.Sink.ID] = t
			res.Fall[m.Sink.ID] = t
			slew := ln9 * d[m.Node]
			res.SinkSlew[m.Sink.ID] = slew
		}
		// Slew checking: a single-pole estimate per node within the stage.
		key := -1
		if s.Driver != nil {
			key = s.Driver.ID
		}
		for i := range d {
			slew := ln9 * d[i]
			if slew > res.MaxSlew {
				res.MaxSlew = slew
			}
			if slew > res.StageSlew[key] {
				res.StageSlew[key] = slew
			}
			if slew > limit {
				res.SlewViol++
			}
		}
	}
	return res
}

// StageElmore returns the Elmore delay (ps) from the stage driver input to
// every RC node of s, given the driver resistance rd. Exported for the
// transient engine, which uses it to size simulation windows.
func StageElmore(s *Stage, rd float64) []float64 { return stageElmore(s, rd) }

// StageElmoreAt is StageElmore with the corner's interconnect derates
// applied (identical to StageElmore for underated corners).
func StageElmoreAt(s *Stage, rd float64, corner tech.Corner) []float64 {
	return stageElmoreAt(s, rd, corner)
}

// SinkElmore returns only the per-sink Elmore latencies, as a convenience
// for construction algorithms that do not need slews.
func SinkElmore(tr *ctree.Tree, corner tech.Corner) map[int]float64 {
	e := &Elmore{}
	res, _ := e.Evaluate(tr, corner)
	return res.Rise
}

// WorstStageTau returns the largest single-stage Elmore time constant in
// the network (ps); useful to size transient simulation windows.
func WorstStageTau(net *Net, corner tech.Corner) float64 {
	worst := 0.0
	for _, s := range net.Stages {
		d := stageElmoreAt(s, net.DriverR(s, corner), corner)
		for _, v := range d {
			if v > worst {
				worst = v
			}
		}
	}
	return worst
}

// TwoPole is the D2M (delay with two moments) evaluator: a closed-form
// reduced-order model in the same family as the Arnoldi approximations the
// paper mentions as SPICE substitutes. Delay = ln2 · m1²/√m2, which is
// substantially more accurate than Elmore on far sinks of resistive nets.
type TwoPole struct {
	MaxSeg float64
}

// Name implements Evaluator.
func (e *TwoPole) Name() string { return "twopole" }

// stageMomentsScaled returns m1 and m2 at every RC node of a stage with
// driver resistance rd folded in as a virtual root resistor, with wire
// resistance scaled by rs and capacitance by cs (unit scales are exact, so
// rs = cs = 1 reproduces the pre-derate recurrences bit for bit).
func stageMomentsScaled(s *Stage, rd, rs, cs float64) (m1, m2 []float64) {
	n := len(s.R)
	ks := kernelPool.Get().(*kernelScratch)
	ks.a = growFloats(ks.a, n)
	ks.b = growFloats(ks.b, n)
	cdown := ks.a
	for i := 0; i < n; i++ {
		cdown[i] = s.C[i] * cs
	}
	for i := n - 1; i >= 1; i-- {
		cdown[s.Par[i]] += cdown[i]
	}
	m1 = make([]float64, n)
	m1[0] = rd * cdown[0]
	for i := 1; i < n; i++ {
		m1[i] = m1[s.Par[i]] + s.R[i]*rs*cdown[i]
	}
	// b[i] = Σ_{k in subtree(i)} C_k · m1_k; the pooled buffer replaces
	// make's zero-init explicitly (0 + x preserves the accumulation bits).
	b := ks.b
	for i := range b {
		b[i] = 0
	}
	for i := n - 1; i >= 0; i-- {
		b[i] += s.C[i] * cs * m1[i]
		if s.Par[i] >= 0 {
			b[s.Par[i]] += b[i]
		}
	}
	m2 = make([]float64, n)
	m2[0] = rd * b[0]
	for i := 1; i < n; i++ {
		m2[i] = m2[s.Par[i]] + s.R[i]*rs*b[i]
	}
	return m1, m2
}

// stageMoments is the underated form.
func stageMoments(s *Stage, rd float64) (m1, m2 []float64) {
	return stageMomentsScaled(s, rd, 1, 1)
}

// stageMomentsAt is stageMoments with the corner's interconnect derates
// applied.
func stageMomentsAt(s *Stage, rd float64, corner tech.Corner) (m1, m2 []float64) {
	return stageMomentsScaled(s, rd, corner.RScale(), corner.CScale())
}

// d2m converts first and second moments into a 50% delay estimate.
func d2m(m1, m2 float64) float64 {
	if m2 <= 0 {
		return m1 * math.Ln2
	}
	return math.Ln2 * m1 * m1 / math.Sqrt(m2)
}

// Evaluate implements Evaluator.
func (e *TwoPole) Evaluate(tr *ctree.Tree, corner tech.Corner) (*Result, error) {
	net := Extract(tr, e.MaxSeg)
	res := &Result{
		Corner:    corner,
		Rise:      make(map[int]float64),
		Fall:      make(map[int]float64),
		SinkSlew:  make(map[int]float64),
		StageSlew: make(map[int]float64),
	}
	limit := net.Tree.Tech.SlewLimit
	arrival := make([]float64, len(net.Stages))
	for _, s := range net.Stages {
		rd := net.DriverR(s, corner)
		m1, m2 := stageMomentsAt(s, rd, corner)
		base := arrival[s.Index]
		for _, ci := range s.Children {
			child := net.Stages[ci]
			arrival[ci] = base + d2m(m1[child.InputNode], m2[child.InputNode])
		}
		for _, m := range s.Sinks {
			t := base + d2m(m1[m.Node], m2[m.Node])
			res.Rise[m.Sink.ID] = t
			res.Fall[m.Sink.ID] = t
			res.SinkSlew[m.Sink.ID] = slewFromMoments(m1[m.Node], m2[m.Node])
		}
		key := -1
		if s.Driver != nil {
			key = s.Driver.ID
		}
		for i := range m1 {
			slew := slewFromMoments(m1[i], m2[i])
			if slew > res.MaxSlew {
				res.MaxSlew = slew
			}
			if slew > res.StageSlew[key] {
				res.StageSlew[key] = slew
			}
			if slew > limit {
				res.SlewViol++
			}
		}
	}
	return res, nil
}

// slewFromMoments estimates the 10-90% transition time from the first two
// moments via the response's standard deviation (PERI-style):
// σ = √(2·m2 − m1²), slew ≈ ln9·σ, falling back to the single-pole formula
// when the variance degenerates.
func slewFromMoments(m1, m2 float64) float64 {
	v := 2*m2 - m1*m1
	if v <= 0 {
		return ln9 * m1
	}
	return ln9 * math.Sqrt(v)
}

var (
	_ Evaluator = (*Elmore)(nil)
	_ Evaluator = (*TwoPole)(nil)
)
