package analysis

import (
	"math"
	"testing"

	"contango/internal/ctree"
	"contango/internal/geom"
	"contango/internal/tech"
)

func fastCorner(t *tech.Tech) tech.Corner { return t.Reference() }

// singleWire builds source -> 1000 µm wire -> sink(35 fF).
func singleWire(tk *tech.Tech) *ctree.Tree {
	tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
	tr.AddSink(tr.Root, geom.Pt(1000, 0), 35, "s")
	return tr
}

func TestExtractSingleWire(t *testing.T) {
	tk := tech.Default45()
	tr := singleWire(tk)
	net := Extract(tr, 100)
	if len(net.Stages) != 1 {
		t.Fatalf("stages=%d want 1", len(net.Stages))
	}
	s := net.Stages[0]
	// 1000 µm at 100 µm/segment -> 10 segments -> 11 RC nodes.
	if len(s.R) != 11 {
		t.Fatalf("rc nodes=%d want 11", len(s.R))
	}
	wantC := tk.Wires[0].CPerUm*1000 + 35
	if math.Abs(s.TotalCap()-wantC) > 1e-9 {
		t.Errorf("stage cap=%v want %v", s.TotalCap(), wantC)
	}
	if len(s.Sinks) != 1 || len(s.Loads) != 0 {
		t.Errorf("sinks=%d loads=%d", len(s.Sinks), len(s.Loads))
	}
}

func TestExtractStagesAtBuffers(t *testing.T) {
	tk := tech.Default45()
	tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
	s := tr.AddSink(tr.Root, geom.Pt(2000, 0), 35, "s")
	b := tr.InsertOnEdge(s, 1000, ctree.Buffer)
	comp := tech.Composite{Type: tk.Inverters[1], N: 8}
	b.Buf = &comp
	net := Extract(tr, 100)
	if len(net.Stages) != 2 {
		t.Fatalf("stages=%d want 2", len(net.Stages))
	}
	src, drv := net.Stages[0], net.Stages[1]
	if len(src.Loads) != 1 || src.Loads[0].Buf != b {
		t.Error("source stage should end at the buffer input")
	}
	if drv.Driver != b || drv.Parent != 0 || drv.InputNode != src.Loads[0].Node {
		t.Error("buffer stage linkage wrong")
	}
	// Buffer output cap at the stage root (plus the first wire π half-cap).
	firstHalf := tk.Wires[0].CPerUm * 100 / 2
	if math.Abs(drv.C[0]-(comp.Cout()+firstHalf)) > 1e-9 {
		t.Errorf("stage root cap=%v want Cout+half=%v", drv.C[0], comp.Cout()+firstHalf)
	}
	// Total driven cap: output cap + wire + sink.
	wantTotal := comp.Cout() + tk.Wires[0].CPerUm*1000 + 35
	if math.Abs(drv.TotalCap()-wantTotal) > 1e-9 {
		t.Errorf("stage cap=%v want %v", drv.TotalCap(), wantTotal)
	}
}

func TestElmoreMatchesHandComputation(t *testing.T) {
	// Source R=0.1 kΩ driving a single lumped-ish wire: Elmore at sink =
	// R_src·(Cw+Cs) + Rw·(Cw/2+Cs). Subdivision should not change this.
	tk := tech.Default45()
	tr := singleWire(tk)
	rw := tk.Wires[0].RPerUm * 1000
	cw := tk.Wires[0].CPerUm * 1000
	want := 0.1*(cw+35) + rw*(cw/2+35)
	for _, maxSeg := range []float64{1000, 100, 10} {
		e := &Elmore{MaxSeg: maxSeg}
		res, err := e.Evaluate(tr, fastCorner(tk))
		if err != nil {
			t.Fatal(err)
		}
		got := res.Rise[tr.Sinks()[0].ID]
		if math.Abs(got-want)/want > 1e-9 {
			t.Errorf("maxSeg=%v: elmore=%v want %v", maxSeg, got, want)
		}
	}
}

func TestElmoreAdditivityAcrossBuffer(t *testing.T) {
	// Inserting a zero-size ideal buffer cannot be tested directly, but a
	// real buffer must make the total latency equal stage1 + stage2.
	tk := tech.Default45()
	tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
	s := tr.AddSink(tr.Root, geom.Pt(2000, 0), 35, "s")
	b := tr.InsertOnEdge(s, 1000, ctree.Buffer)
	comp := tech.Composite{Type: tk.Inverters[1], N: 8}
	b.Buf = &comp

	rw := tk.Wires[0].RPerUm * 1000
	cw := tk.Wires[0].CPerUm * 1000
	stage1 := 0.1*(cw+comp.Cin()) + rw*(cw/2+comp.Cin())
	stage2 := comp.Rout()*(comp.Cout()+cw+35) + rw*(cw/2+35)
	want := stage1 + stage2

	res, err := (&Elmore{}).Evaluate(tr, fastCorner(tk))
	if err != nil {
		t.Fatal(err)
	}
	got := res.Rise[s.ID]
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("latency=%v want %v", got, want)
	}
}

func TestElmoreSymmetricTreeZeroSkew(t *testing.T) {
	tk := tech.Default45()
	tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
	mid := tr.AddChild(tr.Root, ctree.Internal, geom.Pt(500, 0))
	tr.AddSink(mid, geom.Pt(500, 400), 35, "a")
	tr.AddSink(mid, geom.Pt(500, -400), 35, "b")
	res, err := (&Elmore{}).Evaluate(tr, fastCorner(tk))
	if err != nil {
		t.Fatal(err)
	}
	if sk := res.Skew(); sk > 1e-9 {
		t.Errorf("symmetric tree skew=%v want 0", sk)
	}
}

func TestSlowCornerSlower(t *testing.T) {
	tk := tech.Default45()
	tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
	s := tr.AddSink(tr.Root, geom.Pt(2000, 0), 35, "s")
	b := tr.InsertOnEdge(s, 1000, ctree.Buffer)
	comp := tech.Composite{Type: tk.Inverters[1], N: 8}
	b.Buf = &comp
	fast, _ := (&Elmore{}).Evaluate(tr, tk.Reference())
	slow, _ := (&Elmore{}).Evaluate(tr, tk.Worst())
	if slow.Rise[s.ID] <= fast.Rise[s.ID] {
		t.Errorf("1.0V (%v) should be slower than 1.2V (%v)", slow.Rise[s.ID], fast.Rise[s.ID])
	}
}

func TestTwoPoleBetweenZeroAndElmore(t *testing.T) {
	// For RC trees the 50% delay is below the Elmore bound; D2M respects
	// that (it equals Elmore·ln2·m1/√m2 with m1/√m2 <= 1 at far nodes the
	// inequality can flip, so just check sanity: positive and not wildly
	// above Elmore).
	tk := tech.Default45()
	tr := singleWire(tk)
	sink := tr.Sinks()[0].ID
	el, _ := (&Elmore{}).Evaluate(tr, fastCorner(tk))
	tp, _ := (&TwoPole{}).Evaluate(tr, fastCorner(tk))
	if tp.Rise[sink] <= 0 {
		t.Fatalf("two-pole delay %v must be positive", tp.Rise[sink])
	}
	if tp.Rise[sink] > el.Rise[sink]*1.05 {
		t.Errorf("two-pole %v should not exceed Elmore %v", tp.Rise[sink], el.Rise[sink])
	}
}

func TestTwoPoleSymmetricZeroSkew(t *testing.T) {
	tk := tech.Default45()
	tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
	mid := tr.AddChild(tr.Root, ctree.Internal, geom.Pt(500, 0))
	tr.AddSink(mid, geom.Pt(500, 400), 35, "a")
	tr.AddSink(mid, geom.Pt(500, -400), 35, "b")
	res, _ := (&TwoPole{}).Evaluate(tr, fastCorner(tk))
	if sk := res.Skew(); sk > 1e-9 {
		t.Errorf("symmetric tree skew=%v want 0", sk)
	}
}

func TestSlewDetection(t *testing.T) {
	tk := tech.Default45()
	// A very long unbuffered wire must violate the 100 ps slew limit.
	tr := ctree.New(tk, geom.Pt(0, 0), 0.5)
	tr.AddSink(tr.Root, geom.Pt(20000, 0), 35, "far")
	res, _ := (&Elmore{}).Evaluate(tr, fastCorner(tk))
	if res.SlewViol == 0 {
		t.Errorf("20 mm unbuffered wire should violate slew (max=%v)", res.MaxSlew)
	}
	// A short wire must not.
	tr2 := ctree.New(tk, geom.Pt(0, 0), 0.05)
	tr2.AddSink(tr2.Root, geom.Pt(200, 0), 35, "near")
	res2, _ := (&Elmore{}).Evaluate(tr2, fastCorner(tk))
	if res2.SlewViol != 0 {
		t.Errorf("200 µm wire should be clean, max slew %v", res2.MaxSlew)
	}
}

func TestWorstStageTau(t *testing.T) {
	tk := tech.Default45()
	tr := singleWire(tk)
	net := Extract(tr, 100)
	tau := WorstStageTau(net, fastCorner(tk))
	if tau <= 0 {
		t.Fatal("tau must be positive")
	}
	el, _ := (&Elmore{}).Evaluate(tr, fastCorner(tk))
	if math.Abs(tau-el.Rise[tr.Sinks()[0].ID]) > 1e-9 {
		t.Errorf("single-stage worst tau %v should equal sink Elmore %v", tau, el.Rise[tr.Sinks()[0].ID])
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{
		Rise: map[int]float64{1: 10, 2: 14, 3: 12},
		Fall: map[int]float64{1: 11, 2: 13, 3: 19},
	}
	min, max := r.MinMaxRise()
	if min != 10 || max != 14 {
		t.Errorf("rise min/max = %v/%v", min, max)
	}
	if sk := r.Skew(); sk != 8 { // fall skew 19-11 dominates
		t.Errorf("skew=%v want 8", sk)
	}
}

func TestSnakeIncreasesDelay(t *testing.T) {
	tk := tech.Default45()
	tr := singleWire(tk)
	s := tr.Sinks()[0]
	base, _ := (&Elmore{}).Evaluate(tr, fastCorner(tk))
	s.Snake = 500
	snaked, _ := (&Elmore{}).Evaluate(tr, fastCorner(tk))
	if snaked.Rise[s.ID] <= base.Rise[s.ID] {
		t.Errorf("snaking should slow the sink: %v vs %v", snaked.Rise[s.ID], base.Rise[s.ID])
	}
}

func TestNarrowWireSlower(t *testing.T) {
	// Downsizing slows the net when wire resistance matters (long wire,
	// strong driver). On short, source-dominated nets the capacitance
	// saving can win instead — which is why the wiresizing pass calibrates
	// its impact with measurement probes rather than assuming a sign.
	tk := tech.Default45()
	tr := ctree.New(tk, geom.Pt(0, 0), 0.05)
	s := tr.AddSink(tr.Root, geom.Pt(5000, 0), 35, "s")
	base, _ := (&Elmore{}).Evaluate(tr, fastCorner(tk))
	s.WidthIdx = tk.Narrow()
	narrow, _ := (&Elmore{}).Evaluate(tr, fastCorner(tk))
	if narrow.Rise[s.ID] <= base.Rise[s.ID] {
		t.Errorf("narrow wire should be slower here: %v vs %v", narrow.Rise[s.ID], base.Rise[s.ID])
	}
}
