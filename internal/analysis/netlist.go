// Package analysis extracts RC netlists from clock trees and provides fast
// closed-form delay evaluators: Elmore (first moment) and a two-pole
// moment-matching model (D2M), in the spirit of the Arnoldi/AWE reduced-order
// evaluators the paper lists as SPICE alternatives. The accurate transient
// engine lives in package spice and shares the netlist extraction here.
package analysis

import (
	"math"

	"contango/internal/ctree"
	"contango/internal/tech"
)

// DefaultMaxSeg is the default maximum RC-segment length (µm). Long wires
// are subdivided into π-segments no longer than this so that resistive
// shielding in long wires — which the paper notes closed-form models miss —
// is captured by the distributed model.
const DefaultMaxSeg = 100.0

// minR is the smallest segment resistance (kΩ); zero-length edges are
// clamped so transient integration stays well-conditioned.
const minR = 1e-9

// Load marks a stage-boundary node: the input pin of a downstream buffer.
type Load struct {
	Node int         // RC node index within the stage
	Buf  *ctree.Node // the buffer whose input sits here
}

// Meas marks a sink measurement node.
type Meas struct {
	Node int
	Sink *ctree.Node
}

// Stage is one driver (the clock source or a buffer) plus the RC tree it
// drives, ending at sink pins and downstream buffer inputs. RC nodes are
// stored in parent-before-child order; node 0 is the driver output, and
// R[0] is a placeholder (the driver is modeled separately by evaluators).
type Stage struct {
	Driver *ctree.Node // nil for the source stage
	Index  int         // position in Net.Stages
	Parent int         // index of the upstream stage, -1 for the source stage
	// InputNode is the RC node (in the parent stage) where this stage's
	// driver input pin sits; -1 for the source stage.
	InputNode int

	R        []float64 // resistance to parent RC node, kΩ
	C        []float64 // grounded capacitance, fF
	Par      []int     // parent RC node index, -1 for node 0
	Loads    []Load
	Sinks    []Meas
	Children []int // downstream stage indices

	// sig is a content signature over everything that determines the
	// stage's electrical behavior (driver parameters, RC arrays, load and
	// sink placement). The incremental extractor uses it to keep a Stage's
	// pointer identity stable across rebuilds that did not change content;
	// the incremental transient engine validates cached stage results
	// against it. Zero on stages built by plain Extract.
	sig uint64
}

// Sig returns the stage's content signature: equal signatures mean
// electrically identical stages (same driver parameters, RC arrays, loads
// and sinks). Zero means "unsigned" (the stage came from plain Extract)
// and never matches anything. Signatures are assigned by IncrementalNet.
func (s *Stage) Sig() uint64 { return s.sig }

// TotalCap returns the sum of grounded capacitance in the stage (fF),
// including buffer input pins and sink loads attached to it.
func (s *Stage) TotalCap() float64 {
	var c float64
	for _, v := range s.C {
		c += v
	}
	return c
}

// Net is the staged RC netlist of a clock tree.
type Net struct {
	Tree   *ctree.Tree
	Stages []*Stage // topologically ordered, Stages[0] is the source stage
}

// Extract builds the staged RC netlist for tr, subdividing wires into
// π-segments of at most maxSeg µm (DefaultMaxSeg when maxSeg <= 0).
func Extract(tr *ctree.Tree, maxSeg float64) *Net {
	if maxSeg <= 0 {
		maxSeg = DefaultMaxSeg
	}
	net := &Net{Tree: tr}
	var place func(driver *ctree.Node, parentStage, inputNode int)
	place = func(driver *ctree.Node, parentStage, inputNode int) {
		buildStage(net, tr, maxSeg, driver, parentStage, inputNode, place)
	}
	place(nil, -1, -1)
	return net
}

// addEdgeSegs subdivides the wire of tree node n (edge parent->n) into the
// stage, starting at RC node 'at', and returns the far-end RC node.
func addEdgeSegs(s *Stage, tr *ctree.Tree, maxSeg float64, n *ctree.Node, at int) int {
	length := n.EdgeLen()
	w := tr.Tech.Wires[n.WidthIdx]
	rTot := w.RPerUm * length
	cTot := w.CPerUm * length
	k := int(math.Ceil(length / maxSeg))
	if k < 1 {
		k = 1
	}
	rSeg := rTot / float64(k)
	if rSeg < minR {
		rSeg = minR
	}
	cHalf := cTot / float64(k) / 2
	cur := at
	for i := 0; i < k; i++ {
		s.C[cur] += cHalf
		s.R = append(s.R, rSeg)
		s.C = append(s.C, cHalf)
		s.Par = append(s.Par, cur)
		cur = len(s.R) - 1
	}
	return cur
}

// buildStage extracts one stage of tr rooted at driver (nil for the source
// stage), appends it to net, and returns it. Child stages discovered at
// buffer inputs are handed to place at the same point in the traversal where
// Extract would recurse, so the full and incremental extractors produce
// stage orderings that match exactly.
func buildStage(net *Net, tr *ctree.Tree, maxSeg float64, driver *ctree.Node, parentStage, inputNode int, place func(driver *ctree.Node, parentStage, inputNode int)) *Stage {
	s := &Stage{
		Driver:    driver,
		Index:     len(net.Stages),
		Parent:    parentStage,
		InputNode: inputNode,
	}
	rootCap := 0.0
	start := tr.Root
	if driver != nil {
		rootCap = driver.Buf.Cout()
		start = driver
	}
	s.R = append(s.R, 0)
	s.C = append(s.C, rootCap)
	s.Par = append(s.Par, -1)
	net.Stages = append(net.Stages, s)
	if parentStage >= 0 {
		net.Stages[parentStage].Children = append(net.Stages[parentStage].Children, s.Index)
	}
	var walk func(n *ctree.Node, at int)
	walk = func(n *ctree.Node, at int) {
		for _, c := range n.Children {
			far := addEdgeSegs(s, tr, maxSeg, c, at)
			switch c.Kind {
			case ctree.Buffer:
				s.C[far] += c.Buf.Cin()
				s.Loads = append(s.Loads, Load{Node: far, Buf: c})
				place(c, s.Index, far)
			case ctree.Sink:
				s.C[far] += c.SinkCap
				s.Sinks = append(s.Sinks, Meas{Node: far, Sink: c})
			default:
				walk(c, far)
			}
		}
	}
	walk(start, 0)
	return s
}

// DriverR returns the effective driver resistance (kΩ) of stage s at the
// given corner. The source driver and buffer composites weaken identically
// as supply drops (reduced gate overdrive).
func (net *Net) DriverR(s *Stage, corner tech.Corner) float64 {
	t := net.Tree.Tech
	scale := (t.VddRef - t.Vt) / (corner.Vdd - t.Vt)
	if corner.Vdd <= t.Vt {
		return 1e12
	}
	if s.Driver == nil {
		return net.Tree.SourceR * scale
	}
	return t.RoutAt(*s.Driver.Buf, corner.Vdd)
}

// NumRCNodes returns the total RC node count across all stages.
func (net *Net) NumRCNodes() int {
	n := 0
	for _, s := range net.Stages {
		n += len(s.R)
	}
	return n
}
