// Package viz renders clock trees as SVG in the style of the paper's
// Figure 3: sinks drawn as crosses, buffers as small rectangles, obstacles
// as gray blocks, and wires colored along a red-green gradient by their
// slow-down slack (red = critical, green = plenty of slack).
package viz

import (
	"fmt"
	"io"
	"math"

	"contango/internal/ctree"
	"contango/internal/geom"
	"contango/internal/slack"
)

// Options controls rendering.
type Options struct {
	// WidthPx is the output image width in pixels (default 900; height
	// follows the die aspect ratio).
	WidthPx float64
	// Slacks colors wires by slow-down slack when non-nil; otherwise all
	// wires are drawn black.
	Slacks *slack.Slacks
	// Obstacles are drawn as gray blocks.
	Obstacles []geom.Obstacle
	// Die overrides the drawing viewport; the zero rect derives it from
	// the tree extents.
	Die geom.Rect
}

// WriteSVG renders the tree to w.
func WriteSVG(w io.Writer, tr *ctree.Tree, opt Options) error {
	if opt.WidthPx == 0 {
		opt.WidthPx = 900
	}
	die := opt.Die
	if die.Empty() {
		die = treeExtent(tr).Inflate(200)
	}
	sx := opt.WidthPx / die.W()
	hPx := die.H() * sx
	// SVG y grows downward; flip.
	X := func(x float64) float64 { return (x - die.MinX) * sx }
	Y := func(y float64) float64 { return hPx - (y-die.MinY)*sx }

	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		opt.WidthPx, hPx, opt.WidthPx, hPx); err != nil {
		return err
	}
	fmt.Fprintf(w, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")

	for _, o := range opt.Obstacles {
		r := o.Rect
		fmt.Fprintf(w, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#d8d8d8" stroke="#aaaaaa"/>`+"\n",
			X(r.MinX), Y(r.MaxY), r.W()*sx, r.H()*sx)
	}

	// Wires, colored by slack.
	var werr error
	tr.PreOrder(func(n *ctree.Node) {
		if werr != nil || n.Parent == nil || len(n.Route) < 2 {
			return
		}
		color := "#000000"
		if opt.Slacks != nil {
			color = gradientColor(opt.Slacks.Gradient(n.ID))
		}
		path := ""
		for i, p := range n.Route {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			path += fmt.Sprintf("%s%.1f %.1f ", cmd, X(p.X), Y(p.Y))
		}
		if _, err := fmt.Fprintf(w, `<path d="%s" fill="none" stroke="%s" stroke-width="1.2"/>`+"\n", path, color); werr == nil {
			werr = err
		}
	})
	if werr != nil {
		return werr
	}

	// Buffers: blue rectangles; sinks: crosses.
	tr.PreOrder(func(n *ctree.Node) {
		if werr != nil {
			return
		}
		switch n.Kind {
		case ctree.Buffer:
			_, werr = fmt.Fprintf(w, `<rect x="%.1f" y="%.1f" width="5" height="5" fill="#3050d0"/>`+"\n",
				X(n.Loc.X)-2.5, Y(n.Loc.Y)-2.5)
		case ctree.Sink:
			x, y := X(n.Loc.X), Y(n.Loc.Y)
			_, werr = fmt.Fprintf(w,
				`<path d="M%.1f %.1f L%.1f %.1f M%.1f %.1f L%.1f %.1f" stroke="#202020" stroke-width="1"/>`+"\n",
				x-3, y-3, x+3, y+3, x-3, y+3, x+3, y-3)
		case ctree.Source:
			_, werr = fmt.Fprintf(w, `<circle cx="%.1f" cy="%.1f" r="5" fill="#c03030"/>`+"\n", x0(X, n), y0(Y, n))
		}
	})
	if werr != nil {
		return werr
	}
	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}

func x0(X func(float64) float64, n *ctree.Node) float64 { return X(n.Loc.X) }
func y0(Y func(float64) float64, n *ctree.Node) float64 { return Y(n.Loc.Y) }

// gradientColor maps slack weight 0..1 onto red→green.
func gradientColor(t float64) string {
	t = math.Max(0, math.Min(1, t))
	r := int(220 * (1 - t))
	g := int(180 * t)
	return fmt.Sprintf("#%02x%02x30", r, g)
}

func treeExtent(tr *ctree.Tree) geom.Rect {
	r := geom.Rect{MinX: math.Inf(1), MinY: math.Inf(1), MaxX: math.Inf(-1), MaxY: math.Inf(-1)}
	tr.PreOrder(func(n *ctree.Node) {
		for _, p := range n.Route {
			r.MinX = math.Min(r.MinX, p.X)
			r.MinY = math.Min(r.MinY, p.Y)
			r.MaxX = math.Max(r.MaxX, p.X)
			r.MaxY = math.Max(r.MaxY, p.Y)
		}
		r.MinX = math.Min(r.MinX, n.Loc.X)
		r.MinY = math.Min(r.MinY, n.Loc.Y)
		r.MaxX = math.Max(r.MaxX, n.Loc.X)
		r.MaxY = math.Max(r.MaxY, n.Loc.Y)
	})
	if r.Empty() {
		return geom.NewRect(0, 0, 1, 1)
	}
	return r
}
