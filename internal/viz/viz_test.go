package viz

import (
	"bytes"
	"strings"
	"testing"

	"contango/internal/analysis"
	"contango/internal/ctree"
	"contango/internal/geom"
	"contango/internal/slack"
	"contango/internal/tech"
)

func testTree() *ctree.Tree {
	tk := tech.Default45()
	tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
	mid := tr.AddChild(tr.Root, ctree.Internal, geom.Pt(500, 500))
	s1 := tr.AddSink(mid, geom.Pt(900, 500), 30, "a")
	tr.AddSink(mid, geom.Pt(500, 900), 30, "b")
	b := tr.InsertOnEdge(s1, 100, ctree.Buffer)
	comp := tech.Composite{Type: tk.Inverters[1], N: 8}
	b.Buf = &comp
	return tr
}

func TestWriteSVGBasics(t *testing.T) {
	tr := testTree()
	var buf bytes.Buffer
	err := WriteSVG(&buf, tr, Options{
		Obstacles: []geom.Obstacle{{Rect: geom.NewRect(100, 100, 200, 200)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "<path", "<rect", "<circle"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Two sinks -> two crosses (4-point paths), one buffer rect + one
	// obstacle rect.
	if got := strings.Count(out, `stroke="#202020"`); got != 2 {
		t.Errorf("sink crosses=%d want 2", got)
	}
	if got := strings.Count(out, `fill="#3050d0"`); got != 1 {
		t.Errorf("buffer rects=%d want 1", got)
	}
}

func TestWriteSVGWithSlackGradient(t *testing.T) {
	tr := testTree()
	res, err := (&analysis.Elmore{}).Evaluate(tr, tr.Tech.Reference())
	if err != nil {
		t.Fatal(err)
	}
	slk := slack.Compute(tr, []*analysis.Result{res})
	var buf bytes.Buffer
	if err := WriteSVG(&buf, tr, Options{Slacks: slk}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "#") || strings.Count(out, "<path") < 3 {
		t.Error("expected colored wire paths")
	}
	// Critical (zero-slack) edge must be red-dominant.
	if !strings.Contains(out, gradientColor(0)) {
		t.Errorf("expected critical color %s in output", gradientColor(0))
	}
}

func TestGradientColorEndpoints(t *testing.T) {
	red := gradientColor(0)
	green := gradientColor(1)
	if red == green {
		t.Fatal("gradient endpoints identical")
	}
	if red != "#dc0030" {
		t.Errorf("red=%s", red)
	}
	if green != "#00b430" {
		t.Errorf("green=%s", green)
	}
	if gradientColor(-5) != red || gradientColor(7) != green {
		t.Error("gradient must clamp")
	}
}

func TestEmptyTree(t *testing.T) {
	tk := tech.Default45()
	tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
	var buf bytes.Buffer
	if err := WriteSVG(&buf, tr, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Error("even an empty tree should render a valid document")
	}
}
