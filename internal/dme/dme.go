// Package dme constructs zero-skew clock trees: a topology generator
// (nearest-neighbor clustering in the style of Edahiro for small instances,
// means-and-medians bisection for large ones) followed by bottom-up
// exact-zero-skew merging under the Elmore delay model (Tsay's balance-point
// method, the ZST/DME family the paper builds its initial trees with).
//
// The produced tree has zero Elmore skew by construction: at every merge the
// tapping point is placed on the Manhattan path between the two subtree
// roots so that both sides see equal Elmore delay; when one side is too fast
// for any tapping point, its wire is elongated (snaked) to restore balance.
package dme

import (
	"math"
	"sort"

	"contango/internal/ctree"
	"contango/internal/geom"
	"contango/internal/tech"
)

// Sink is a clock endpoint to be connected.
type Sink struct {
	Loc  geom.Point
	Cap  float64 // load capacitance, fF
	Name string
}

// Options controls tree construction.
type Options struct {
	// Topology selects the pairing strategy: "auto" (default), "nn"
	// (greedy nearest-neighbor clustering) or "mmm" (means-and-medians
	// recursive bisection). Auto uses nn below NNThreshold sinks.
	Topology string
	// NNThreshold is the sink count up to which auto picks nearest-neighbor
	// clustering (which is cubic but gives slightly better wirelength).
	NNThreshold int
	// WidthIdx is the wire type used for all tree edges.
	WidthIdx int

	// NoBalance disables Elmore balancing: tapping points land at the
	// geometric midpoint and no snaking is added. This models simpler
	// contest-style constructors and is used only by baseline flows.
	NoBalance bool
	// NoSnake keeps balanced tapping but never elongates wires (a
	// bounded-skew rather than zero-skew merge).
	NoSnake bool
	// TapQuantum, when positive, rounds tapping distances to this grid
	// (µm), emulating bounded-skew merging-region quantization.
	TapQuantum float64

	// Parallelism bounds the number of goroutines the arena-native MMM
	// build may use for independent subtree merges (0 or 1 = serial).
	// The recursion pre-assigns every subtree a disjoint merge-segment
	// range, so the parallel schedule performs exactly the serial
	// floating-point work on exactly the serial operand order — results
	// are bit-identical regardless of this setting. It does not affect
	// cache keys and the pointer-path BuildZST ignores it.
	Parallelism int
}

func (o *Options) defaults() {
	if o.Topology == "" {
		o.Topology = "auto"
	}
	if o.NNThreshold == 0 {
		o.NNThreshold = 400
	}
}

// mnode is a merge-tree vertex built bottom-up before materialization.
type mnode struct {
	loc         geom.Point
	left, right *mnode
	sink        *Sink
	// per-child edge geometry decided during merging
	snakeL, snakeR float64
	// Elmore state of the subtree rooted here
	cap   float64 // total downstream capacitance, fF
	delay float64 // Elmore delay from this point to every sink (zero skew)
}

// BuildZST constructs a zero-skew tree over the sinks, rooted at source.
// The trunk (source to first merge point) is a plain route; it delays all
// sinks equally and is later populated with buffers.
func BuildZST(tk *tech.Tech, source geom.Point, sinks []Sink, opt Options) *ctree.Tree {
	opt.defaults()
	tr := ctree.New(tk, source, 0.1)
	if len(sinks) == 0 {
		return tr
	}
	w := tk.Wires[opt.WidthIdx]

	leaves := make([]*mnode, len(sinks))
	for i := range sinks {
		s := sinks[i]
		leaves[i] = &mnode{loc: s.Loc, sink: &s, cap: s.Cap}
	}

	var top *mnode
	useNN := opt.Topology == "nn" || (opt.Topology == "auto" && len(sinks) <= opt.NNThreshold)
	if useNN {
		top = mergeNearestNeighbor(leaves, w, opt)
	} else {
		top = buildMMM(leaves, w, opt)
	}

	// Materialize into a ctree, top-down.
	var attach func(parent *ctree.Node, m *mnode)
	attach = func(parent *ctree.Node, m *mnode) {
		var n *ctree.Node
		if m.sink != nil {
			n = tr.AddSink(parent, m.loc, m.sink.Cap, m.sink.Name)
		} else {
			n = tr.AddChild(parent, ctree.Internal, m.loc)
		}
		n.WidthIdx = opt.WidthIdx
		if m.left != nil {
			attach(n, m.left)
			child := n.Children[len(n.Children)-1]
			child.Snake = m.snakeL
		}
		if m.right != nil {
			attach(n, m.right)
			child := n.Children[len(n.Children)-1]
			child.Snake = m.snakeR
		}
		_ = parent
	}
	attach(tr.Root, top)
	tr.Root.Children[0].WidthIdx = opt.WidthIdx
	return tr
}

// subtree is the Elmore state of a merge-candidate root: its position, total
// downstream capacitance and zero-skew delay. mergeKernel consumes two of
// these regardless of whether the caller keeps its merge tree as pointer
// mnodes or flat arena segments.
type subtree struct {
	loc   geom.Point
	cap   float64
	delay float64
}

// merged is mergeKernel's result: the tapping-point state plus any snaking
// assigned to the left/right child edges.
type merged struct {
	loc            geom.Point
	cap, delay     float64
	snakeL, snakeR float64
}

// merge combines two subtrees with an Elmore-balanced tapping point and
// returns the merged node (Tsay's exact zero-skew construction).
func merge(a, b *mnode, w tech.WireType, opt Options) *mnode {
	out := mergeKernel(
		subtree{loc: a.loc, cap: a.cap, delay: a.delay},
		subtree{loc: b.loc, cap: b.cap, delay: b.delay},
		w, opt)
	return &mnode{
		left: a, right: b,
		loc: out.loc, cap: out.cap, delay: out.delay,
		snakeL: out.snakeL, snakeR: out.snakeR,
	}
}

// mergeKernel is the single source of truth for the zero-skew merge math.
// Both the pointer-node path (merge) and the arena path share it, so the two
// constructions perform the same floating-point operations in the same order
// and stay bit-identical. Baseline options degrade it deliberately:
// NoBalance taps at the midpoint, TapQuantum snaps the tapping point to a
// grid, NoSnake clamps instead of elongating.
func mergeKernel(a, b subtree, w tech.WireType, opt Options) merged {
	r, c := w.RPerUm, w.CPerUm
	L := a.loc.Manhattan(b.loc)
	var m merged

	if L == 0 {
		// Coincident roots: balance purely by snaking the faster side.
		if a.delay == b.delay || opt.NoBalance || opt.NoSnake {
			m.loc = a.loc
			m.cap = a.cap + b.cap
			m.delay = math.Max(a.delay, b.delay)
			return m
		}
	}

	// Tapping point at distance x from a along the path:
	//   delay_a(x) = a.delay + r·x·(c·x/2 + a.cap)
	//   delay_b(x) = b.delay + r·(L−x)·(c·(L−x)/2 + b.cap)
	// Setting them equal yields the classic closed form.
	den := r * (a.cap + b.cap + c*L)
	x := 0.0
	if den > 0 {
		x = (b.delay - a.delay + r*L*(b.cap+c*L/2)) / den
	}
	if opt.NoBalance {
		x = L / 2
	}
	if opt.TapQuantum > 0 {
		x = math.Round(x/opt.TapQuantum) * opt.TapQuantum
	}
	if opt.NoBalance || opt.NoSnake {
		x = math.Max(0, math.Min(L, x))
		m.loc = tapPoint(a.loc, b.loc, x)
		da := a.delay + r*x*(c*x/2+a.cap)
		db := b.delay + r*(L-x)*(c*(L-x)/2+b.cap)
		m.delay = math.Max(da, db)
		m.cap = a.cap + b.cap + c*L
		return m
	}
	switch {
	case x >= 0 && x <= L:
		m.loc = tapPoint(a.loc, b.loc, x)
		m.delay = a.delay + r*x*(c*x/2+a.cap)
		m.cap = a.cap + b.cap + c*L
	case x < 0:
		// a is too slow: tap at a and elongate the wire to b.
		m.loc = a.loc
		ext := extension(a.delay-b.delay, b.cap, r, c)
		m.snakeR = ext - L
		if m.snakeR < 0 {
			m.snakeR = 0
		}
		m.delay = a.delay
		m.cap = a.cap + b.cap + c*(L+m.snakeR)
	default: // x > L: b is too slow
		m.loc = b.loc
		ext := extension(b.delay-a.delay, a.cap, r, c)
		m.snakeL = ext - L
		if m.snakeL < 0 {
			m.snakeL = 0
		}
		m.delay = b.delay
		m.cap = a.cap + b.cap + c*(L+m.snakeL)
	}
	return m
}

// extension solves r·L'·(c·L'/2 + cap) = dt for L': the wirelength needed to
// delay the faster side by dt.
func extension(dt, cap, r, c float64) float64 {
	if dt <= 0 {
		return 0
	}
	if c == 0 {
		return dt / (r * cap)
	}
	return (-cap + math.Sqrt(cap*cap+2*c*dt/r)) / c
}

// tapPoint returns the point at Manhattan distance x from a along the
// horizontal-first L-shape to b.
func tapPoint(a, b geom.Point, x float64) geom.Point {
	return geom.LShape(a, b)[0].At(x)
}

// mergeNearestNeighbor repeatedly merges the globally closest pair of
// cluster roots (Edahiro-style greedy clustering).
func mergeNearestNeighbor(nodes []*mnode, w tech.WireType, opt Options) *mnode {
	live := append([]*mnode(nil), nodes...)
	for len(live) > 1 {
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < len(live); i++ {
			for j := i + 1; j < len(live); j++ {
				if d := live[i].loc.Manhattan(live[j].loc); d < best {
					bi, bj, best = i, j, d
				}
			}
		}
		m := merge(live[bi], live[bj], w, opt)
		live[bi] = m
		live[bj] = live[len(live)-1]
		live = live[:len(live)-1]
	}
	return live[0]
}

// buildMMM recursively bisects the sink set at the median of its wider axis
// (method of means and medians), then merges the two halves' trees.
func buildMMM(nodes []*mnode, w tech.WireType, opt Options) *mnode {
	if len(nodes) == 1 {
		return nodes[0]
	}
	minX, maxX := nodes[0].loc.X, nodes[0].loc.X
	minY, maxY := nodes[0].loc.Y, nodes[0].loc.Y
	for _, n := range nodes[1:] {
		minX = math.Min(minX, n.loc.X)
		maxX = math.Max(maxX, n.loc.X)
		minY = math.Min(minY, n.loc.Y)
		maxY = math.Max(maxY, n.loc.Y)
	}
	byX := maxX-minX >= maxY-minY
	sorted := append([]*mnode(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool {
		if byX {
			if sorted[i].loc.X != sorted[j].loc.X {
				return sorted[i].loc.X < sorted[j].loc.X
			}
			return sorted[i].loc.Y < sorted[j].loc.Y
		}
		if sorted[i].loc.Y != sorted[j].loc.Y {
			return sorted[i].loc.Y < sorted[j].loc.Y
		}
		return sorted[i].loc.X < sorted[j].loc.X
	})
	mid := len(sorted) / 2
	left := buildMMM(sorted[:mid], w, opt)
	right := buildMMM(sorted[mid:], w, opt)
	return merge(left, right, w, opt)
}
