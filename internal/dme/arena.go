package dme

import (
	"math"
	"sort"
	"sync"

	"contango/internal/ctree"
	"contango/internal/geom"
	"contango/internal/tech"
)

// Arena-native construction: the merge tree is built in a flat
// merge-segment slice instead of per-node heap allocations, then
// materialized straight into a ctree.Arena through the bulk-construction
// API. The merge math itself is mergeKernel — shared with the pointer
// path — and materialization mirrors BuildZST's attach order exactly, so
// the resulting arena round-trips ToTree bit-identical to what BuildZST
// produces (topology, node IDs, routes, widths and snakes).

// mseg is a merge-tree vertex in flat form: children and the originating
// sink are indices, not pointers, so a whole build's merge tree lives in
// one reusable slice.
type mseg struct {
	loc            geom.Point
	left, right    int32 // mseg indices; -1 on leaves
	sink           int32 // index into the input sink slice; -1 on internals
	snakeL, snakeR float64
	cap, delay     float64
}

// Scratch holds the buffers an arena build reuses: the merge-segment slice
// and the topology orderings. A zero Scratch is ready to use; callers that
// construct many trees (plan matrices, sweeps, the scale harness) should
// keep one and pass it to BuildZSTArenaScratch so steady-state construction
// allocates nothing per merge.
type Scratch struct {
	segs  []mseg
	order []int32
	live  []int32
}

// BuildZSTArena is the arena-native BuildZST: same sinks, same options,
// same tree — materialized directly into a ctree.Arena with capacity
// reserved up front from the sink count.
func BuildZSTArena(tk *tech.Tech, source geom.Point, sinks []Sink, opt Options) *ctree.Arena {
	var sc Scratch
	return BuildZSTArenaScratch(tk, source, sinks, opt, &sc)
}

// BuildZSTArenaScratch is BuildZSTArena with caller-owned scratch buffers.
func BuildZSTArenaScratch(tk *tech.Tech, source geom.Point, sinks []Sink, opt Options, sc *Scratch) *ctree.Arena {
	opt.defaults()
	a := ctree.NewArena(tk, source, 0.1, ctree.HintsForSinks(len(sinks)))
	if len(sinks) == 0 {
		return a
	}
	w := tk.Wires[opt.WidthIdx]

	n := len(sinks)
	if cap(sc.segs) < 2*n-1 {
		sc.segs = make([]mseg, 0, 2*n-1)
	}
	segs := sc.segs[:n]
	for i := range sinks {
		segs[i] = mseg{loc: sinks[i].Loc, left: -1, right: -1, sink: int32(i), cap: sinks[i].Cap}
	}

	var top int32
	useNN := opt.Topology == "nn" || (opt.Topology == "auto" && n <= opt.NNThreshold)
	if useNN {
		segs, top = mergeNearestNeighborSegs(segs, w, opt, sc)
	} else {
		segs, top = buildMMMSegs(segs, w, opt, sc)
	}
	sc.segs = segs[:0]

	materialize(a, segs, sinks, top, opt)
	return a
}

// materialize writes the merge tree into the arena top-down, in the exact
// order BuildZST's attach materializes mnodes into a pointer tree: node i of
// either construction is the same vertex, with the same route, width and
// snake.
func materialize(a *ctree.Arena, segs []mseg, sinks []Sink, top int32, opt Options) {
	var attach func(parent, si int32)
	attach = func(parent, si int32) {
		sg := &segs[si]
		var n int32
		if sg.sink >= 0 {
			s := &sinks[sg.sink]
			n = a.AddSinkL(parent, sg.loc, s.Cap, s.Name)
		} else {
			n = a.AddChildL(parent, ctree.Internal, sg.loc)
		}
		a.WidthIdx[n] = int32(opt.WidthIdx)
		if sg.left >= 0 {
			attach(n, sg.left)
			kids := a.Children(n)
			a.Snake[kids[len(kids)-1]] = sg.snakeL
		}
		if sg.right >= 0 {
			attach(n, sg.right)
			kids := a.Children(n)
			a.Snake[kids[len(kids)-1]] = sg.snakeR
		}
	}
	attach(a.Root(), top)
	a.WidthIdx[a.Children(a.Root())[0]] = int32(opt.WidthIdx)
}

// mergeSegs merges segs[ai] and segs[bi] through the shared kernel and
// writes the result to segs[out].
func mergeSegs(segs []mseg, ai, bi, out int32, w tech.WireType, opt Options) {
	res := mergeKernel(
		subtree{loc: segs[ai].loc, cap: segs[ai].cap, delay: segs[ai].delay},
		subtree{loc: segs[bi].loc, cap: segs[bi].cap, delay: segs[bi].delay},
		w, opt)
	segs[out] = mseg{
		loc: res.loc, left: ai, right: bi, sink: -1,
		snakeL: res.snakeL, snakeR: res.snakeR,
		cap: res.cap, delay: res.delay,
	}
}

// mergeNearestNeighborSegs is mergeNearestNeighbor on flat segments: the
// same greedy closest-pair loop, with merge results appended to the segment
// slice instead of heap-allocated.
func mergeNearestNeighborSegs(segs []mseg, w tech.WireType, opt Options, sc *Scratch) ([]mseg, int32) {
	n := len(segs)
	if cap(sc.live) < n {
		sc.live = make([]int32, 0, n)
	}
	live := sc.live[:n]
	for i := range live {
		live[i] = int32(i)
	}
	for len(live) > 1 {
		bi, bj := -1, -1
		best := math.Inf(1)
		for i := 0; i < len(live); i++ {
			for j := i + 1; j < len(live); j++ {
				if d := segs[live[i]].loc.Manhattan(segs[live[j]].loc); d < best {
					bi, bj, best = i, j, d
				}
			}
		}
		out := int32(len(segs))
		segs = append(segs, mseg{})
		mergeSegs(segs, live[bi], live[bj], out, w, opt)
		live[bi] = out
		live[bj] = live[len(live)-1]
		live = live[:len(live)-1]
	}
	root := live[0]
	sc.live = sc.live[:0]
	return segs, root
}

// buildMMMSegs is buildMMM on flat segments. Instead of copying and sorting
// a fresh slice per recursion level it sorts one ordering slice in place —
// each recursive sort sees its elements in exactly the order the pointer
// path's copy would hold them, so sort.Slice produces the identical
// permutation and the merge tree is the same vertex for vertex.
//
// Internal segments are pre-assigned: the call over order[lo:hi) owns output
// range [out, out+(hi−lo−1)) with its own merge node last, the left half
// building into [out, out+(mid−lo−1)) and the right half into the rest.
// Because the ranges are disjoint by construction, independent subtrees can
// merge concurrently (bounded by Options.Parallelism) without changing a
// single bit of the result.
func buildMMMSegs(segs []mseg, w tech.WireType, opt Options, sc *Scratch) ([]mseg, int32) {
	n := len(segs)
	if n == 1 {
		return segs, 0
	}
	if cap(sc.order) < n {
		sc.order = make([]int32, 0, n)
	}
	order := sc.order[:n]
	for i := range order {
		order[i] = int32(i)
	}
	segs = segs[:2*n-1]
	par := opt.Parallelism
	if par < 1 {
		par = 1
	}
	root := mmmRange(segs, order, int32(n), w, opt, par)
	sc.order = sc.order[:0]
	return segs, root
}

// mmmParMin is the smallest half size worth a goroutine; below it the
// synchronization overhead exceeds the merge work.
const mmmParMin = 1024

// mmmRange builds the merge tree over order (a view of the ordering slice),
// writing internal segments into segs[out:out+len(order)-1] and returning
// the root's segment index.
func mmmRange(segs []mseg, order []int32, out int32, w tech.WireType, opt Options, par int) int32 {
	n := int32(len(order))
	if n == 1 {
		return order[0]
	}
	minX, maxX := segs[order[0]].loc.X, segs[order[0]].loc.X
	minY, maxY := segs[order[0]].loc.Y, segs[order[0]].loc.Y
	for _, si := range order[1:] {
		p := segs[si].loc
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	byX := maxX-minX >= maxY-minY
	sort.Slice(order, func(i, j int) bool {
		a, b := segs[order[i]].loc, segs[order[j]].loc
		if byX {
			if a.X != b.X {
				return a.X < b.X
			}
			return a.Y < b.Y
		}
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		return a.X < b.X
	})
	mid := n / 2
	var left, right int32
	if par > 1 && mid >= mmmParMin && n-mid >= mmmParMin {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			left = mmmRange(segs, order[:mid], out, w, opt, par/2)
		}()
		right = mmmRange(segs, order[mid:], out+mid-1, w, opt, par-par/2)
		wg.Wait()
	} else {
		left = mmmRange(segs, order[:mid], out, w, opt, 1)
		right = mmmRange(segs, order[mid:], out+mid-1, w, opt, 1)
	}
	root := out + n - 2
	mergeSegs(segs, left, right, root, w, opt)
	return root
}
