package dme

import (
	"math/rand"
	"testing"

	"contango/internal/ctree"
	"contango/internal/geom"
	"contango/internal/tech"
)

func TestArenaBuildMatchesPointerPath(t *testing.T) {
	tk := tech.Default45()
	die := geom.NewRect(0, 0, 6000, 4000)
	src := geom.Pt(0, 2000)
	for _, tc := range []struct {
		name string
		n    int
		opt  Options
	}{
		{"nn-small", 17, Options{Topology: "nn"}},
		{"nn-coincident", 9, Options{Topology: "nn"}},
		{"mmm-small", 33, Options{Topology: "mmm"}},
		{"mmm-large", 1500, Options{}},
		{"mmm-nobalance", 700, Options{NoBalance: true}},
		{"mmm-nosnake", 700, Options{NoSnake: true}},
		{"mmm-quantized", 700, Options{TapQuantum: 5}},
		{"empty", 0, Options{}},
		{"single", 1, Options{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(tc.n)))
			sinks := randomSinks(rng, tc.n, die)
			if tc.name == "nn-coincident" {
				for i := range sinks {
					sinks[i].Loc = geom.Pt(500, 500)
				}
			}
			want := BuildZST(tk, src, sinks, tc.opt)
			a := BuildZSTArena(tk, src, sinks, tc.opt)
			if err := a.Validate(); err != nil {
				t.Fatalf("arena invalid: %v", err)
			}
			got, err := a.ToTree()
			if err != nil {
				t.Fatalf("ToTree: %v", err)
			}
			if err := ctree.Equal(want, got); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestArenaBuildParallelBitIdentical(t *testing.T) {
	tk := tech.Default45()
	rng := rand.New(rand.NewSource(11))
	sinks := randomSinks(rng, 6000, geom.NewRect(0, 0, 9000, 9000))
	serial := BuildZSTArena(tk, geom.Pt(0, 0), sinks, Options{})
	for _, par := range []int{2, 4, 8} {
		parallel := BuildZSTArena(tk, geom.Pt(0, 0), sinks, Options{Parallelism: par})
		wantTree, err := serial.ToTree()
		if err != nil {
			t.Fatal(err)
		}
		gotTree, err := parallel.ToTree()
		if err != nil {
			t.Fatal(err)
		}
		if err := ctree.Equal(wantTree, gotTree); err != nil {
			t.Fatalf("parallelism=%d: %v", par, err)
		}
	}
}

func TestArenaScratchReuse(t *testing.T) {
	tk := tech.Default45()
	var sc Scratch
	rng := rand.New(rand.NewSource(13))
	for round := 0; round < 4; round++ {
		n := 50 + round*400
		sinks := randomSinks(rng, n, geom.NewRect(0, 0, 5000, 5000))
		want := BuildZST(tk, geom.Pt(0, 0), sinks, Options{})
		a := BuildZSTArenaScratch(tk, geom.Pt(0, 0), sinks, Options{}, &sc)
		got, err := a.ToTree()
		if err != nil {
			t.Fatal(err)
		}
		if err := ctree.Equal(want, got); err != nil {
			t.Fatalf("round %d (n=%d): %v", round, n, err)
		}
	}
}
