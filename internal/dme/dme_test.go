package dme

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"contango/internal/analysis"
	"contango/internal/geom"
	"contango/internal/tech"
)

func randomSinks(rng *rand.Rand, n int, die geom.Rect) []Sink {
	out := make([]Sink, n)
	for i := range out {
		out[i] = Sink{
			Loc:  geom.Pt(die.MinX+rng.Float64()*die.W(), die.MinY+rng.Float64()*die.H()),
			Cap:  20 + rng.Float64()*30,
			Name: fmt.Sprintf("s%d", i),
		}
	}
	return out
}

func TestZeroElmoreSkewProperty(t *testing.T) {
	tk := tech.Default45()
	die := geom.NewRect(0, 0, 5000, 5000)
	rng := rand.New(rand.NewSource(1))
	for _, topo := range []string{"nn", "mmm"} {
		for _, n := range []int{1, 2, 3, 7, 25, 80} {
			sinks := randomSinks(rng, n, die)
			tr := BuildZST(tk, geom.Pt(0, 2500), sinks, Options{Topology: topo})
			if err := tr.Validate(); err != nil {
				t.Fatalf("%s/%d: %v", topo, n, err)
			}
			if got := len(tr.Sinks()); got != n {
				t.Fatalf("%s/%d: %d sinks in tree", topo, n, got)
			}
			res, err := (&analysis.Elmore{}).Evaluate(tr, tk.Reference())
			if err != nil {
				t.Fatal(err)
			}
			_, max := res.MinMaxRise()
			if sk := res.Skew(); sk > 1e-6*math.Max(max, 1) {
				t.Errorf("%s/%d sinks: Elmore skew=%v ps (max latency %v)", topo, n, sk, max)
			}
		}
	}
}

func TestAllSinksPreserved(t *testing.T) {
	tk := tech.Default45()
	rng := rand.New(rand.NewSource(2))
	sinks := randomSinks(rng, 60, geom.NewRect(0, 0, 8000, 8000))
	tr := BuildZST(tk, geom.Pt(0, 0), sinks, Options{})
	found := map[string]bool{}
	for _, s := range tr.Sinks() {
		found[s.Name] = true
	}
	for _, s := range sinks {
		if !found[s.Name] {
			t.Errorf("sink %s missing from tree", s.Name)
		}
	}
}

func TestWirelengthSanity(t *testing.T) {
	// Total wirelength must be at least the bounding half-perimeter and no
	// worse than a star from the center.
	tk := tech.Default45()
	rng := rand.New(rand.NewSource(3))
	sinks := randomSinks(rng, 100, geom.NewRect(0, 0, 10000, 10000))
	tr := BuildZST(tk, geom.Pt(5000, 0), sinks, Options{})
	wl := tr.Wirelength()

	var star float64
	center := geom.Pt(5000, 5000)
	for _, s := range sinks {
		star += center.Manhattan(s.Loc)
	}
	if wl > star {
		t.Errorf("ZST wirelength %v exceeds star topology %v", wl, star)
	}
	if wl < 10000 { // cannot connect a 10x10 mm spread with less
		t.Errorf("wirelength %v implausibly small", wl)
	}
}

func TestNNBeatsOrMatchesMMMOnSmall(t *testing.T) {
	// Not a strict theorem, but on uniform instances greedy NN clustering
	// should not be drastically worse than bisection; this guards against
	// regressions that break one of the two paths.
	tk := tech.Default45()
	rng := rand.New(rand.NewSource(4))
	sinks := randomSinks(rng, 64, geom.NewRect(0, 0, 4000, 4000))
	nn := BuildZST(tk, geom.Pt(0, 0), sinks, Options{Topology: "nn"})
	mmm := BuildZST(tk, geom.Pt(0, 0), sinks, Options{Topology: "mmm"})
	if nn.Wirelength() > 1.5*mmm.Wirelength() {
		t.Errorf("nn wirelength %v vs mmm %v: ratio too high", nn.Wirelength(), mmm.Wirelength())
	}
	if mmm.Wirelength() > 1.5*nn.Wirelength() {
		t.Errorf("mmm wirelength %v vs nn %v: ratio too high", mmm.Wirelength(), nn.Wirelength())
	}
}

func TestExtensionSolvesBalance(t *testing.T) {
	r, c := 0.0001, 0.3
	for _, tc := range []struct{ dt, cap float64 }{
		{10, 100}, {1, 35}, {200, 500}, {0, 100},
	} {
		l := extension(tc.dt, tc.cap, r, c)
		got := r * l * (c*l/2 + tc.cap)
		if math.Abs(got-tc.dt) > 1e-9 {
			t.Errorf("extension(%v,%v)=%v gives delay %v", tc.dt, tc.cap, l, got)
		}
	}
}

func TestMergeBalancesAsymmetricLoads(t *testing.T) {
	tk := tech.Default45()
	w := tk.Wires[0]
	a := &mnode{loc: geom.Pt(0, 0), cap: 500, delay: 0}   // heavy
	b := &mnode{loc: geom.Pt(1000, 0), cap: 20, delay: 0} // light
	m := merge(a, b, w, Options{})
	// Tap must sit closer to the heavy side.
	if m.loc.Manhattan(a.loc) >= m.loc.Manhattan(b.loc) {
		t.Errorf("tap %v should favor the heavy subtree at %v", m.loc, a.loc)
	}
	// Both sides must see equal Elmore delay.
	x := m.loc.Manhattan(a.loc)
	da := a.delay + w.RPerUm*x*(w.CPerUm*x/2+a.cap)
	lb := m.loc.Manhattan(b.loc) + m.snakeR
	db := b.delay + w.RPerUm*lb*(w.CPerUm*lb/2+b.cap)
	if math.Abs(da-db) > 1e-9 {
		t.Errorf("unbalanced merge: %v vs %v", da, db)
	}
}

func TestMergeSnakesWhenOneSideTooFast(t *testing.T) {
	tk := tech.Default45()
	w := tk.Wires[0]
	// a is much slower: even tapping at a, b needs extra wire.
	a := &mnode{loc: geom.Pt(0, 0), cap: 100, delay: 500}
	b := &mnode{loc: geom.Pt(100, 0), cap: 100, delay: 0}
	m := merge(a, b, w, Options{})
	if m.loc != a.loc {
		t.Errorf("tap should collapse onto the slow side, got %v", m.loc)
	}
	if m.snakeR <= 0 {
		t.Error("expected snaking on the fast side")
	}
	lb := 100 + m.snakeR
	db := b.delay + w.RPerUm*lb*(w.CPerUm*lb/2+b.cap)
	if math.Abs(db-a.delay) > 1e-9 {
		t.Errorf("snaked side delay %v want %v", db, a.delay)
	}
}

func TestCoincidentSinks(t *testing.T) {
	tk := tech.Default45()
	sinks := []Sink{
		{Loc: geom.Pt(100, 100), Cap: 35, Name: "a"},
		{Loc: geom.Pt(100, 100), Cap: 35, Name: "b"},
		{Loc: geom.Pt(100, 100), Cap: 20, Name: "c"},
	}
	tr := BuildZST(tk, geom.Pt(0, 0), sinks, Options{})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	res, _ := (&analysis.Elmore{}).Evaluate(tr, tk.Reference())
	// The netlist extractor clamps zero-length edges to 1e-9 kΩ, which
	// leaves sub-femtosecond noise.
	if sk := res.Skew(); sk > 1e-6 {
		t.Errorf("coincident sinks skew=%v", sk)
	}
}

func TestSingleSink(t *testing.T) {
	tk := tech.Default45()
	tr := BuildZST(tk, geom.Pt(0, 0), []Sink{{Loc: geom.Pt(500, 700), Cap: 35, Name: "only"}}, Options{})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Wirelength() != 1200 {
		t.Errorf("wirelength=%v want 1200", tr.Wirelength())
	}
}

func TestLargeMMMScales(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tk := tech.Default45()
	rng := rand.New(rand.NewSource(5))
	sinks := randomSinks(rng, 20000, geom.NewRect(0, 0, 4200, 3000))
	tr := BuildZST(tk, geom.Pt(0, 0), sinks, Options{})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	res, _ := (&analysis.Elmore{MaxSeg: 1e9}).Evaluate(tr, tk.Reference())
	_, max := res.MinMaxRise()
	if sk := res.Skew(); sk > 1e-6*max {
		t.Errorf("20K-sink ZST skew=%v", sk)
	}
}
