package route

import (
	"math"
	"sort"

	"contango/internal/ctree"
	"contango/internal/geom"
)

// detourCompound implements the paper's Step 2/3 for one compound obstacle:
// find subtrees captured inside it, keep the ones a single buffer can drive,
// and rebuild the rest along the compound's contour ring.
func detourCompound(tr *ctree.Tree, obs *geom.ObstacleSet, ci int, die geom.Rect,
	maze *geom.Maze, opt Options, rep *Report) error {

	captured := func(n *ctree.Node) bool { return obs.CompoundAt(n.Loc) == ci }

	// Topmost captured nodes: captured with a non-captured parent.
	var tops []*ctree.Node
	tr.PreOrder(func(n *ctree.Node) {
		if n.Parent != nil && captured(n) && !captured(n.Parent) {
			tops = append(tops, n)
		}
	})
	for _, top := range tops {
		// The whole enclosed subtree may be fine if one buffer placed just
		// before the obstacle can drive it (paper Step 2).
		if tr.LoadCap(top) <= opt.SafeCap {
			continue
		}
		if err := detourSubtree(tr, obs, ci, top, die, maze); err != nil {
			return err
		}
		rep.Detours++
	}
	return nil
}

// ringProj is an attachment on the contour ring.
type ringProj struct {
	pt     geom.Point
	s      float64     // arc-length parameter along the ring
	node   *ctree.Node // the outside subtree root (or captured sink) to hang here
	isSink bool
}

// detourSubtree rebuilds the captured subtree rooted at top along the
// compound's contour.
func detourSubtree(tr *ctree.Tree, obs *geom.ObstacleSet, ci int, top *ctree.Node,
	die geom.Rect, maze *geom.Maze) error {

	captured := func(n *ctree.Node) bool { return obs.CompoundAt(n.Loc) == ci }
	parent := top.Parent
	ring := geom.ClipRing(obs.Contour(ci), die)
	perim := ring.Length()

	// Collect exits (outside subtrees fed through the captured region) and
	// captured sinks.
	var exits []*ctree.Node
	var inSinks []*ctree.Node
	var walk func(n *ctree.Node)
	walk = func(n *ctree.Node) {
		if !captured(n) {
			exits = append(exits, n)
			return
		}
		if n.Kind == ctree.Sink {
			inSinks = append(inSinks, n)
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(top)

	// Entry: the ring point nearest the outside parent.
	entryPt, entryS := projectOntoRing(ring, parent.Loc)

	var projs []ringProj
	for _, v := range exits {
		pt, s := projectOntoRing(ring, v.Loc)
		projs = append(projs, ringProj{pt: pt, s: s, node: v})
	}
	for _, v := range inSinks {
		pt, s := projectOntoRing(ring, v.Loc)
		projs = append(projs, ringProj{pt: pt, s: s, node: v, isSink: true})
	}
	if len(projs) == 0 {
		// Nothing hangs off the captured region; just delete it.
		tr.DeleteSubtree(top)
		return nil
	}

	// Positions relative to the entry, in (0, perim].
	rel := func(s float64) float64 {
		d := math.Mod(s-entryS+perim, perim)
		if d == 0 {
			d = perim // coincident with entry: treat as a full loop away
		}
		return d
	}
	sort.Slice(projs, func(i, j int) bool { return rel(projs[i].s) < rel(projs[j].s) })

	// Choose the ring arc to remove: between consecutive attachments
	// (including the entry boundary gaps), minimizing the longest
	// source-to-attachment contour distance max(δ_k, perim − δ_{k+1}).
	// Cutting before the first attachment serves everyone counter-clockwise;
	// cutting after the last serves everyone clockwise.
	bestCut, bestCost := 0, math.Inf(1)
	m := len(projs)
	for k := 0; k <= m; k++ {
		var cost float64
		switch k {
		case 0:
			cost = perim - rel(projs[0].s)
		case m:
			cost = rel(projs[m-1].s)
		default:
			cost = math.Max(rel(projs[k-1].s), perim-rel(projs[k].s))
		}
		if cost < bestCost {
			bestCut, bestCost = k, cost
		}
	}

	// Detach outside subtrees, then discard the captured region.
	for _, v := range exits {
		tr.Detach(v)
	}
	for _, v := range inSinks {
		tr.Detach(v)
	}
	tr.DeleteSubtree(top)

	// Entry node on the ring, fed from the outside parent (maze-routed so
	// the feed itself cannot cross the compound).
	entry := tr.AddChild(parent, ctree.Internal, entryPt)
	entry.WidthIdx = widthOf(exits, inSinks)
	if feed, err := maze.Route(parent.Loc, entryPt); err == nil && !crossesAny(obs, feed) {
		entry.Route = feed
	}

	// Clockwise chain: attachments before the cut, in increasing δ.
	attach := func(prev *ctree.Node, pr ringProj, arc geom.Polyline) *ctree.Node {
		n := tr.AddChild(prev, ctree.Internal, pr.pt)
		n.WidthIdx = entry.WidthIdx
		n.Route = arc
		sub := pr.node
		hop := geom.LShape(n.Loc, sub.Loc)[0]
		// Captured sinks legitimately receive wire over the obstacle; for
		// outside subtrees prefer a hop that stays clear.
		if !pr.isSink && crossesAny(obs, hop) {
			if alt := geom.LShape(n.Loc, sub.Loc)[1]; !crossesAny(obs, alt) {
				hop = alt
			} else if m, err := maze.Route(n.Loc, sub.Loc); err == nil {
				hop = m
			}
		}
		tr.Attach(sub, n, hop)
		return n
	}
	prev, prevS := entry, entryS
	for k := 0; k < bestCut; k++ {
		arc := ringArc(ring, prevS, projs[k].s)
		prev = attach(prev, projs[k], arc)
		prevS = projs[k].s
	}
	// Counter-clockwise chain: attachments after the cut, in decreasing δ.
	prev, prevS = entry, entryS
	for k := m - 1; k >= bestCut; k-- {
		arc := ringArc(ring, projs[k].s, prevS).Reverse()
		prev = attach(prev, projs[k], arc)
		prevS = projs[k].s
	}
	return nil
}

// widthOf picks the widest wire index used by the re-attached subtrees so
// the detour does not bottleneck them; defaults to 0.
func widthOf(exits, sinks []*ctree.Node) int {
	for _, n := range exits {
		return n.WidthIdx
	}
	for _, n := range sinks {
		return n.WidthIdx
	}
	return 0
}

// projectOntoRing returns the closest point on the ring to p and its
// arc-length parameter.
func projectOntoRing(ring geom.Polyline, p geom.Point) (geom.Point, float64) {
	bestD := math.Inf(1)
	var bestPt geom.Point
	bestS := 0.0
	acc := 0.0
	for i := 1; i < len(ring); i++ {
		a, b := ring[i-1], ring[i]
		segLen := a.Manhattan(b)
		q := closestOnSegment(a, b, p)
		if d := q.Manhattan(p); d < bestD {
			bestD = d
			bestPt = q
			bestS = acc + a.Manhattan(q)
		}
		acc += segLen
	}
	return bestPt, bestS
}

// closestOnSegment projects p onto the axis-parallel segment a-b.
func closestOnSegment(a, b, p geom.Point) geom.Point {
	if a.X == b.X {
		lo, hi := math.Min(a.Y, b.Y), math.Max(a.Y, b.Y)
		y := math.Min(math.Max(p.Y, lo), hi)
		return geom.Pt(a.X, y)
	}
	lo, hi := math.Min(a.X, b.X), math.Max(a.X, b.X)
	x := math.Min(math.Max(p.X, lo), hi)
	return geom.Pt(x, a.Y)
}

// ringArc returns the ring polyline from parameter s0 forward to s1
// (wrapping past the ring start when needed). Coincident parameters yield a
// zero-length stub, not a full loop.
func ringArc(ring geom.Polyline, s0, s1 float64) geom.Polyline {
	perim := ring.Length()
	mod := func(x float64) float64 {
		m := math.Mod(x, perim)
		if m < 0 {
			m += perim
		}
		return m
	}
	s0, s1 = mod(s0), mod(s1)
	span := mod(s1 - s0)
	if span < 1e-9 {
		return geom.Polyline{ring.At(s0), ring.At(s1)}
	}
	type vert struct {
		d  float64
		pt geom.Point
	}
	var vs []vert
	acc := 0.0
	for i := 1; i < len(ring)-1; i++ { // skip the closing vertex (== first)
		acc += ring[i-1].Manhattan(ring[i])
		d := mod(acc - s0)
		if d > 1e-9 && d < span-1e-9 {
			vs = append(vs, vert{d: d, pt: ring[i]})
		}
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i].d < vs[j].d })
	out := geom.Polyline{ring.At(s0)}
	for _, v := range vs {
		out = append(out, v.pt)
	}
	out = append(out, ring.At(s1))
	return out.Simplify()
}
