// Package route repairs obstacle violations in clock trees (paper Section
// IV-A). Wires may cross placement obstacles but buffers may not sit on
// them, so a wire crossing is only a problem when the load beyond it is too
// large for a single buffer placed before the obstacle (a slew risk). The
// legalizer applies, in order:
//
//  1. L-shape selection — for each crossing edge, the single-bend
//     configuration with the smaller obstacle overlap;
//  2. the slew-free capacitance test — crossings whose downstream load a
//     single strong buffer can drive are left alone;
//  3. maze rerouting — heavy point-to-point crossings are rerouted around
//     the obstacles;
//  4. contour detouring — subtrees enclosed by a compound obstacle are
//     rebuilt along the obstacle's contour ring, cutting the ring arc
//     furthest (along the contour) from the source so the network stays a
//     tree while the longest detoured source-to-sink path is minimized
//     (paper Fig. 2).
package route

import (
	"fmt"
	"math"

	"contango/internal/ctree"
	"contango/internal/geom"
)

// Options configures legalization.
type Options struct {
	// SafeCap is the slew-free capacitance (fF): the largest load a single
	// buffer may drive over an obstacle without slew risk.
	SafeCap float64
	// MazeStep is the maze-router grid pitch in µm; 0 derives it from the
	// die size.
	MazeStep float64
	// MaxPasses bounds the repair iterations (reroutes can graze other
	// obstacles); 0 means 3.
	MaxPasses int
	// Scope, when non-nil, restricts LegalizeArena's repairs to the given
	// slots (ECO mode passes the dirty subtrees of a delta application, so
	// an incremental run never re-touches the legalized remainder of the
	// tree). Nodes outside the scope keep their routes verbatim; the
	// remaining-crossing count still reflects the whole tree. Only the
	// arena path honors it — pointer-tree Legalize always runs whole-tree.
	Scope map[int32]bool
}

// inScope reports whether a slot may be repaired under the options' scope
// (every slot is, when no scope is set).
func (o Options) inScope(n int32) bool { return o.Scope == nil || o.Scope[n] }

// Report summarizes what the legalizer did.
type Report struct {
	LFlips   int // edges fixed by choosing the other L-shape
	Reroutes int // edges maze-rerouted around obstacles
	Detours  int // compound obstacles detoured along their contour
	Crossing int // remaining (slew-safe) crossings left in place
}

func (r Report) String() string {
	return fmt.Sprintf("l-flips=%d reroutes=%d detours=%d safe-crossings=%d",
		r.LFlips, r.Reroutes, r.Detours, r.Crossing)
}

// Legalize repairs all obstacle violations in tr. It mutates the tree and
// returns a report. The die rectangle bounds detour contours and the maze.
func Legalize(tr *ctree.Tree, obs *geom.ObstacleSet, die geom.Rect, opt Options) (*Report, error) {
	rep := &Report{}
	if obs == nil || obs.Len() == 0 {
		return rep, nil
	}
	if opt.MaxPasses == 0 {
		opt.MaxPasses = 3
	}
	if opt.MazeStep == 0 {
		opt.MazeStep = math.Max(die.W(), die.H()) / 256
	}
	maze := geom.NewMaze(die, opt.MazeStep, obs)

	// Pass 1: cheap L-shape flips everywhere.
	tr.PreOrder(func(n *ctree.Node) {
		if n.Parent == nil || len(n.Route) > 3 {
			return // only direct connections have a free alternate L
		}
		if !crossesAny(obs, n.Route) {
			return
		}
		alt := geom.LShape(n.Parent.Loc, n.Loc)
		best, bestOv := n.Route, overlap(obs, n.Route)
		for _, cand := range alt {
			if ov := overlap(obs, cand); ov < bestOv {
				best, bestOv = cand, ov
			}
		}
		if ov0 := overlap(obs, n.Route); bestOv < ov0 {
			n.Route = best
			rep.LFlips++
		}
	})

	// Pass 2: per-compound capture analysis and detouring.
	for ci := range obs.Compounds {
		if err := detourCompound(tr, obs, ci, die, maze, opt, rep); err != nil {
			return rep, err
		}
	}

	// Pass 3: heavy point-to-point crossings -> maze reroute. Repeat a few
	// times since a reroute can graze another obstacle.
	for pass := 0; pass < opt.MaxPasses; pass++ {
		changed := false
		var bad []*ctree.Node
		tr.PreOrder(func(n *ctree.Node) {
			if n.Parent == nil || !crossesAny(obs, n.Route) {
				return
			}
			if tr.LoadCap(n) > opt.SafeCap {
				bad = append(bad, n)
			}
		})
		for _, n := range bad {
			pl, err := maze.Route(n.Parent.Loc, n.Loc)
			if err != nil {
				continue // unroutable: leave the crossing; flow will buffer before it
			}
			if crossesAny(obs, pl) {
				continue
			}
			n.Route = pl
			rep.Reroutes++
			changed = true
		}
		if !changed {
			break
		}
	}

	// Count the crossings we deliberately left (slew-safe).
	tr.PreOrder(func(n *ctree.Node) {
		if n.Parent != nil && crossesAny(obs, n.Route) {
			rep.Crossing++
		}
	})
	return rep, tr.Validate()
}

func crossesAny(obs *geom.ObstacleSet, pl geom.Polyline) bool {
	for i := 1; i < len(pl); i++ {
		if obs.SegmentCrossesAny(pl[i-1], pl[i]) {
			return true
		}
	}
	return false
}

func overlap(obs *geom.ObstacleSet, pl geom.Polyline) float64 {
	var total float64
	for i := range obs.Obstacles {
		total += pl.OverlapWithRect(obs.Obstacles[i].Rect)
	}
	return total
}

// CheckLegal reports edges that still cross obstacles while carrying more
// downstream load than a single buffer can safely drive. An empty slice
// means the tree is buffering-legal.
func CheckLegal(tr *ctree.Tree, obs *geom.ObstacleSet, safeCap float64) []*ctree.Node {
	var bad []*ctree.Node
	if obs == nil {
		return nil
	}
	tr.PreOrder(func(n *ctree.Node) {
		if n.Parent == nil {
			return
		}
		if crossesAny(obs, n.Route) && tr.LoadCap(n) > safeCap {
			bad = append(bad, n)
		}
	})
	return bad
}
