package route

import (
	"math"
	"math/rand"
	"testing"

	"contango/internal/ctree"
	"contango/internal/dme"
	"contango/internal/geom"
	"contango/internal/tech"
)

func TestLShapeFlipFixesCrossing(t *testing.T) {
	tk := tech.Default45()
	die := geom.NewRect(0, 0, 2000, 2000)
	// Obstacle placed so the horizontal-first L crosses but vertical-first
	// does not.
	obs := geom.NewObstacleSet([]geom.Obstacle{{Rect: geom.NewRect(400, -100, 600, 150)}})
	tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
	tr.AddSink(tr.Root, geom.Pt(1000, 800), 35, "s")
	rep, err := Legalize(tr, obs, die, Options{SafeCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LFlips != 1 {
		t.Errorf("LFlips=%d want 1 (%v)", rep.LFlips, rep)
	}
	if len(CheckLegal(tr, obs, 1)) != 0 {
		t.Error("crossing should be gone after flip")
	}
}

func TestSafeCrossingLeftAlone(t *testing.T) {
	tk := tech.Default45()
	die := geom.NewRect(0, 0, 2000, 2000)
	// Obstacle blocks both L configurations (spans the whole corridor).
	obs := geom.NewObstacleSet([]geom.Obstacle{{Rect: geom.NewRect(400, -100, 600, 2100)}})
	tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
	tr.AddSink(tr.Root, geom.Pt(1000, 1000), 35, "s")
	rep, err := Legalize(tr, obs, die, Options{SafeCap: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reroutes != 0 || rep.Detours != 0 {
		t.Errorf("small load should not trigger repair: %v", rep)
	}
	if rep.Crossing == 0 {
		t.Error("the slew-safe crossing should remain")
	}
}

func TestHeavyCrossingRerouted(t *testing.T) {
	tk := tech.Default45()
	die := geom.NewRect(0, 0, 2000, 2000)
	obs := geom.NewObstacleSet([]geom.Obstacle{{Rect: geom.NewRect(400, -100, 600, 1800)}})
	tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
	hub := tr.AddChild(tr.Root, ctree.Internal, geom.Pt(1000, 500))
	// Heavy fan-out below the crossing edge.
	for i := 0; i < 20; i++ {
		tr.AddSink(hub, geom.Pt(1200+float64(20*i), 600), 50, "")
	}
	rep, err := Legalize(tr, obs, die, Options{SafeCap: 200})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reroutes == 0 {
		t.Fatalf("heavy crossing should be rerouted: %v", rep)
	}
	if bad := CheckLegal(tr, obs, 200); len(bad) != 0 {
		t.Errorf("%d heavy crossings remain", len(bad))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// buildEnclosedScenario places a hub steiner point inside an obstacle with
// several outside subtrees fed through it — the paper's Fig. 2 situation.
func buildEnclosedScenario(tk *tech.Tech) (*ctree.Tree, *geom.ObstacleSet, geom.Rect) {
	die := geom.NewRect(0, 0, 4000, 4000)
	obs := geom.NewObstacleSet([]geom.Obstacle{
		{Rect: geom.NewRect(1500, 1500, 2500, 2500), Name: "macro"},
	})
	tr := ctree.New(tk, geom.Pt(0, 2000), 0.1)
	hub := tr.AddChild(tr.Root, ctree.Internal, geom.Pt(2000, 2000)) // inside macro
	// Four outside clusters fed from the captured hub.
	locs := []geom.Point{{X: 3000, Y: 2000}, {X: 2000, Y: 3000}, {X: 2000, Y: 1000}, {X: 3200, Y: 3200}}
	for _, l := range locs {
		c := tr.AddChild(hub, ctree.Internal, l)
		for k := 0; k < 8; k++ {
			tr.AddSink(c, geom.Pt(l.X+float64(30*k), l.Y+100), 40, "")
		}
	}
	return tr, obs, die
}

func TestContourDetourFigure2(t *testing.T) {
	tk := tech.Default45()
	tr, obs, die := buildEnclosedScenario(tk)
	nSinks := len(tr.Sinks())
	rep, err := Legalize(tr, obs, die, Options{SafeCap: 300})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detours != 1 {
		t.Fatalf("want 1 detour, got %v", rep)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Sinks()); got != nSinks {
		t.Fatalf("sinks lost: %d -> %d", nSinks, got)
	}
	// No internal node may remain strictly inside the obstacle.
	tr.PreOrder(func(n *ctree.Node) {
		if n.Kind != ctree.Sink && obs.BlocksPoint(n.Loc) {
			t.Errorf("node %d still inside obstacle at %v", n.ID, n.Loc)
		}
	})
	if bad := CheckLegal(tr, obs, 300); len(bad) != 0 {
		t.Errorf("%d heavy crossings remain after detour", len(bad))
	}
}

func TestDetourKeepsSmallEnclosedSubtree(t *testing.T) {
	tk := tech.Default45()
	die := geom.NewRect(0, 0, 4000, 4000)
	obs := geom.NewObstacleSet([]geom.Obstacle{{Rect: geom.NewRect(1500, 1500, 2500, 2500)}})
	tr := ctree.New(tk, geom.Pt(0, 2000), 0.1)
	hub := tr.AddChild(tr.Root, ctree.Internal, geom.Pt(2000, 2000))
	tr.AddSink(hub, geom.Pt(2600, 2000), 30, "s")
	rep, err := Legalize(tr, obs, die, Options{SafeCap: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detours != 0 {
		t.Errorf("tiny enclosed subtree should be driveable by one buffer: %v", rep)
	}
}

func TestDetourWithCapturedSink(t *testing.T) {
	tk := tech.Default45()
	die := geom.NewRect(0, 0, 4000, 4000)
	obs := geom.NewObstacleSet([]geom.Obstacle{{Rect: geom.NewRect(1500, 1500, 2500, 2500)}})
	tr := ctree.New(tk, geom.Pt(0, 2000), 0.1)
	hub := tr.AddChild(tr.Root, ctree.Internal, geom.Pt(2000, 2000))
	tr.AddSink(hub, geom.Pt(2200, 2200), 30, "captive")
	// Enough outside load to force a detour.
	c := tr.AddChild(hub, ctree.Internal, geom.Pt(3000, 2000))
	for k := 0; k < 20; k++ {
		tr.AddSink(c, geom.Pt(3000+float64(20*k), 2100), 50, "")
	}
	rep, err := Legalize(tr, obs, die, Options{SafeCap: 400})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detours != 1 {
		t.Fatalf("expected detour: %v", rep)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// The captured sink survives, reachable, still at its location.
	found := false
	for _, s := range tr.Sinks() {
		if s.Name == "captive" {
			found = true
			if !s.Loc.Eq(geom.Pt(2200, 2200), 0) {
				t.Error("captured sink moved")
			}
		}
	}
	if !found {
		t.Fatal("captured sink lost")
	}
}

func TestLegalizeOnDMETreeWithObstacles(t *testing.T) {
	// Integration: a realistic ZST over a die with macros; after
	// legalization no heavy crossing may remain and the tree stays valid.
	tk := tech.Default45()
	die := geom.NewRect(0, 0, 8000, 8000)
	obs := geom.NewObstacleSet([]geom.Obstacle{
		{Rect: geom.NewRect(1000, 1000, 3000, 2600)},
		{Rect: geom.NewRect(3000, 1000, 4200, 2000)}, // abuts -> compound
		{Rect: geom.NewRect(5000, 5000, 7000, 7200)},
	})
	rng := rand.New(rand.NewSource(11))
	var sinks []dme.Sink
	for len(sinks) < 120 {
		p := geom.Pt(rng.Float64()*8000, rng.Float64()*8000)
		if obs.BlocksPoint(p) {
			continue
		}
		sinks = append(sinks, dme.Sink{Loc: p, Cap: 20 + rng.Float64()*30})
	}
	tr := dme.BuildZST(tk, geom.Pt(0, 4000), sinks, dme.Options{})
	safe := tk.SlewSafeCap
	rep, err := Legalize(tr, obs, die, Options{SafeCap: safe})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if bad := CheckLegal(tr, obs, safe); len(bad) != 0 {
		t.Errorf("%d heavy crossings remain (%v)", len(bad), rep)
	}
	if got := len(tr.Sinks()); got != 120 {
		t.Errorf("sink count changed: %d", got)
	}
}

func TestRingArc(t *testing.T) {
	ring := geom.Polyline{
		geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(100, 100), geom.Pt(0, 100), geom.Pt(0, 0),
	}
	arc := ringArc(ring, 50, 150)
	if math.Abs(arc.Length()-100) > 1e-9 {
		t.Errorf("arc length=%v want 100", arc.Length())
	}
	if !arc[0].Eq(geom.Pt(50, 0), 1e-9) || !arc[len(arc)-1].Eq(geom.Pt(100, 50), 1e-9) {
		t.Errorf("arc endpoints wrong: %v", arc)
	}
	// Wrapping arc.
	wrap := ringArc(ring, 350, 50)
	if math.Abs(wrap.Length()-100) > 1e-9 {
		t.Errorf("wrap length=%v want 100", wrap.Length())
	}
	// Degenerate.
	if d := ringArc(ring, 70, 70); d.Length() != 0 {
		t.Errorf("degenerate arc length=%v", d.Length())
	}
}

func TestProjectOntoRing(t *testing.T) {
	ring := geom.Polyline{
		geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(100, 100), geom.Pt(0, 100), geom.Pt(0, 0),
	}
	pt, s := projectOntoRing(ring, geom.Pt(50, -30))
	if !pt.Eq(geom.Pt(50, 0), 1e-9) || math.Abs(s-50) > 1e-9 {
		t.Errorf("projection (%v, %v)", pt, s)
	}
	pt2, s2 := projectOntoRing(ring, geom.Pt(130, 50))
	if !pt2.Eq(geom.Pt(100, 50), 1e-9) || math.Abs(s2-150) > 1e-9 {
		t.Errorf("projection (%v, %v)", pt2, s2)
	}
}

func TestNoObstaclesNoOp(t *testing.T) {
	tk := tech.Default45()
	tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
	tr.AddSink(tr.Root, geom.Pt(100, 100), 35, "s")
	wl := tr.Wirelength()
	rep, err := Legalize(tr, geom.NewObstacleSet(nil), geom.NewRect(0, 0, 200, 200), Options{SafeCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LFlips+rep.Reroutes+rep.Detours+rep.Crossing != 0 {
		t.Errorf("no-op expected: %v", rep)
	}
	if tr.Wirelength() != wl {
		t.Error("wirelength changed")
	}
}
