package route

import (
	"math/rand"
	"testing"

	"contango/internal/ctree"
	"contango/internal/dme"
	"contango/internal/geom"
	"contango/internal/tech"
)

// legalizeBoth runs the pointer legalizer on tr and the arena legalizer on a
// flattened copy, then checks both reports and trees agree exactly.
func legalizeBoth(t *testing.T, tr *ctree.Tree, obs *geom.ObstacleSet, die geom.Rect, opt Options) {
	t.Helper()
	a := ctree.FromTree(tr)
	want, err := Legalize(tr, obs, die, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LegalizeArena(a, obs, die, opt)
	if err != nil {
		t.Fatal(err)
	}
	if *want != *got {
		t.Fatalf("report %v != %v", got, want)
	}
	back, err := a.ToTree()
	if err != nil {
		t.Fatalf("ToTree: %v", err)
	}
	if err := ctree.Equal(tr, back); err != nil {
		t.Fatal(err)
	}
	if len(CheckLegal(tr, obs, opt.SafeCap)) != len(CheckLegalArena(a, obs, opt.SafeCap)) {
		t.Fatal("CheckLegal disagreement between representations")
	}
}

func TestLegalizeArenaMatchesPointerDetour(t *testing.T) {
	tk := tech.Default45()
	tr, obs, die := buildEnclosedScenario(tk)
	legalizeBoth(t, tr, obs, die, Options{SafeCap: 300})
}

func TestLegalizeArenaMatchesPointerCapturedSink(t *testing.T) {
	tk := tech.Default45()
	die := geom.NewRect(0, 0, 4000, 4000)
	obs := geom.NewObstacleSet([]geom.Obstacle{{Rect: geom.NewRect(1500, 1500, 2500, 2500)}})
	tr := ctree.New(tk, geom.Pt(0, 2000), 0.1)
	hub := tr.AddChild(tr.Root, ctree.Internal, geom.Pt(2000, 2000))
	tr.AddSink(hub, geom.Pt(2200, 2200), 30, "captive")
	c := tr.AddChild(hub, ctree.Internal, geom.Pt(3000, 2000))
	for k := 0; k < 20; k++ {
		tr.AddSink(c, geom.Pt(3000+float64(20*k), 2100), 50, "")
	}
	legalizeBoth(t, tr, obs, die, Options{SafeCap: 400})
}

func TestLegalizeArenaMatchesPointerOnDMETree(t *testing.T) {
	tk := tech.Default45()
	die := geom.NewRect(0, 0, 8000, 8000)
	obs := geom.NewObstacleSet([]geom.Obstacle{
		{Rect: geom.NewRect(1000, 1000, 3000, 2600)},
		{Rect: geom.NewRect(3000, 1000, 4200, 2000)}, // abuts -> compound
		{Rect: geom.NewRect(5000, 5000, 7000, 7200)},
	})
	rng := rand.New(rand.NewSource(23))
	var sinks []dme.Sink
	for len(sinks) < 150 {
		p := geom.Pt(rng.Float64()*8000, rng.Float64()*8000)
		if obs.BlocksPoint(p) {
			continue
		}
		sinks = append(sinks, dme.Sink{Loc: p, Cap: 20 + rng.Float64()*30})
	}
	tr := dme.BuildZST(tk, geom.Pt(0, 4000), sinks, dme.Options{})
	legalizeBoth(t, tr, obs, die, Options{SafeCap: tk.SlewSafeCap})
}

func TestLegalizeArenaNoObstaclesIsNoop(t *testing.T) {
	tk := tech.Default45()
	rng := rand.New(rand.NewSource(5))
	var sinks []dme.Sink
	for len(sinks) < 40 {
		sinks = append(sinks, dme.Sink{Loc: geom.Pt(rng.Float64()*2000, rng.Float64()*2000), Cap: 25})
	}
	a := dme.BuildZSTArena(tk, geom.Pt(0, 0), sinks, dme.Options{})
	before, err := a.ToTree()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := LegalizeArena(a, nil, geom.NewRect(0, 0, 2000, 2000), Options{SafeCap: 100})
	if err != nil {
		t.Fatal(err)
	}
	if *rep != (Report{}) {
		t.Fatalf("no-obstacle legalization did work: %v", rep)
	}
	after, err := a.ToTree()
	if err != nil {
		t.Fatal(err)
	}
	if err := ctree.Equal(before, after); err != nil {
		t.Fatal(err)
	}
}
