package route

import (
	"math"
	"sort"

	"contango/internal/ctree"
	"contango/internal/geom"
)

// Arena-native legalization: LegalizeArena mirrors Legalize pass for pass on
// ctree.Arena slot indices — the same L-flip selection, the same compound
// capture analysis and contour detours, the same maze reroutes, applied in
// the same traversal order — so a legalized arena round-trips ToTree
// bit-identical to the pointer-legalized tree.

// LegalizeArena repairs all obstacle violations in the arena. It mutates the
// arena and returns a report identical to what Legalize would produce on the
// equivalent pointer tree.
func LegalizeArena(a *ctree.Arena, obs *geom.ObstacleSet, die geom.Rect, opt Options) (*Report, error) {
	rep := &Report{}
	if obs == nil || obs.Len() == 0 {
		return rep, nil
	}
	if opt.MaxPasses == 0 {
		opt.MaxPasses = 3
	}
	if opt.MazeStep == 0 {
		opt.MazeStep = math.Max(die.W(), die.H()) / 256
	}
	maze := geom.NewMaze(die, opt.MazeStep, obs)

	// Pass 1: cheap L-shape flips everywhere (in scope).
	a.PreOrder(func(n int32) {
		if a.Parent[n] < 0 || a.RouteLen[n] > 3 || !opt.inScope(n) {
			return // only direct connections have a free alternate L
		}
		route := a.Route(n)
		if !crossesAny(obs, route) {
			return
		}
		alt := geom.LShape(a.Loc[a.Parent[n]], a.Loc[n])
		best, bestOv := route, overlap(obs, route)
		for _, cand := range alt {
			if ov := overlap(obs, cand); ov < bestOv {
				best, bestOv = cand, ov
			}
		}
		if ov0 := overlap(obs, route); bestOv < ov0 {
			a.ReplaceRoute(n, best)
			rep.LFlips++
		}
	})

	// Pass 2: per-compound capture analysis and detouring.
	for ci := range obs.Compounds {
		if err := detourCompoundArena(a, obs, ci, die, maze, opt, rep); err != nil {
			return rep, err
		}
	}

	// Pass 3: heavy point-to-point crossings -> maze reroute. Repeat a few
	// times since a reroute can graze another obstacle.
	for pass := 0; pass < opt.MaxPasses; pass++ {
		changed := false
		var bad []int32
		a.PreOrder(func(n int32) {
			if a.Parent[n] < 0 || !opt.inScope(n) || !crossesAny(obs, a.Route(n)) {
				return
			}
			if a.LoadCap(n) > opt.SafeCap {
				bad = append(bad, n)
			}
		})
		for _, n := range bad {
			pl, err := maze.Route(a.Loc[a.Parent[n]], a.Loc[n])
			if err != nil {
				continue // unroutable: leave the crossing; flow will buffer before it
			}
			if crossesAny(obs, pl) {
				continue
			}
			a.ReplaceRoute(n, pl)
			rep.Reroutes++
			changed = true
		}
		if !changed {
			break
		}
	}

	// Count the crossings we deliberately left (slew-safe).
	a.PreOrder(func(n int32) {
		if a.Parent[n] >= 0 && crossesAny(obs, a.Route(n)) {
			rep.Crossing++
		}
	})
	return rep, a.Validate()
}

// CheckLegalArena is CheckLegal on an arena, returning offending slots.
func CheckLegalArena(a *ctree.Arena, obs *geom.ObstacleSet, safeCap float64) []int32 {
	var bad []int32
	if obs == nil {
		return nil
	}
	a.PreOrder(func(n int32) {
		if a.Parent[n] < 0 {
			return
		}
		if crossesAny(obs, a.Route(n)) && a.LoadCap(n) > safeCap {
			bad = append(bad, n)
		}
	})
	return bad
}

// detourCompoundArena mirrors detourCompound on slot indices.
func detourCompoundArena(a *ctree.Arena, obs *geom.ObstacleSet, ci int, die geom.Rect,
	maze *geom.Maze, opt Options, rep *Report) error {

	captured := func(n int32) bool { return obs.CompoundAt(a.Loc[n]) == ci }

	// Topmost captured nodes: captured with a non-captured parent.
	var tops []int32
	a.PreOrder(func(n int32) {
		if a.Parent[n] >= 0 && opt.inScope(n) && captured(n) && !captured(a.Parent[n]) {
			tops = append(tops, n)
		}
	})
	for _, top := range tops {
		if a.LoadCap(top) <= opt.SafeCap {
			continue
		}
		if err := detourSubtreeArena(a, obs, ci, top, die, maze); err != nil {
			return err
		}
		rep.Detours++
	}
	return nil
}

// aRingProj is ringProj with a slot-index subtree root.
type aRingProj struct {
	pt     geom.Point
	s      float64
	node   int32
	isSink bool
}

// detourSubtreeArena mirrors detourSubtree: rebuild the captured subtree
// rooted at top along the compound's contour ring.
func detourSubtreeArena(a *ctree.Arena, obs *geom.ObstacleSet, ci int, top int32,
	die geom.Rect, maze *geom.Maze) error {

	captured := func(n int32) bool { return obs.CompoundAt(a.Loc[n]) == ci }
	parent := a.Parent[top]
	ring := geom.ClipRing(obs.Contour(ci), die)
	perim := ring.Length()

	// Collect exits (outside subtrees fed through the captured region) and
	// captured sinks.
	var exits []int32
	var inSinks []int32
	var walk func(n int32)
	walk = func(n int32) {
		if !captured(n) {
			exits = append(exits, n)
			return
		}
		if a.Kind[n] == ctree.Sink {
			inSinks = append(inSinks, n)
			return
		}
		for _, c := range a.Children(n) {
			walk(c)
		}
	}
	walk(top)

	// Entry: the ring point nearest the outside parent.
	entryPt, entryS := projectOntoRing(ring, a.Loc[parent])

	var projs []aRingProj
	for _, v := range exits {
		pt, s := projectOntoRing(ring, a.Loc[v])
		projs = append(projs, aRingProj{pt: pt, s: s, node: v})
	}
	for _, v := range inSinks {
		pt, s := projectOntoRing(ring, a.Loc[v])
		projs = append(projs, aRingProj{pt: pt, s: s, node: v, isSink: true})
	}
	if len(projs) == 0 {
		// Nothing hangs off the captured region; just delete it.
		a.DeleteSubtree(top)
		return nil
	}

	// Positions relative to the entry, in (0, perim].
	rel := func(s float64) float64 {
		d := math.Mod(s-entryS+perim, perim)
		if d == 0 {
			d = perim // coincident with entry: treat as a full loop away
		}
		return d
	}
	sort.Slice(projs, func(i, j int) bool { return rel(projs[i].s) < rel(projs[j].s) })

	// Choose the ring arc to remove, minimizing the longest
	// source-to-attachment contour distance (same cost model as the pointer
	// path).
	bestCut, bestCost := 0, math.Inf(1)
	m := len(projs)
	for k := 0; k <= m; k++ {
		var cost float64
		switch k {
		case 0:
			cost = perim - rel(projs[0].s)
		case m:
			cost = rel(projs[m-1].s)
		default:
			cost = math.Max(rel(projs[k-1].s), perim-rel(projs[k].s))
		}
		if cost < bestCost {
			bestCut, bestCost = k, cost
		}
	}

	// Detach outside subtrees, then discard the captured region.
	for _, v := range exits {
		a.Detach(v)
	}
	for _, v := range inSinks {
		a.Detach(v)
	}
	a.DeleteSubtree(top)

	// Entry node on the ring, fed from the outside parent (maze-routed so
	// the feed itself cannot cross the compound).
	entry := a.AddChildL(parent, ctree.Internal, entryPt)
	a.WidthIdx[entry] = int32(widthOfArena(a, exits, inSinks))
	if feed, err := maze.Route(a.Loc[parent], entryPt); err == nil && !crossesAny(obs, feed) {
		a.ReplaceRoute(entry, feed)
	}

	// Clockwise chain: attachments before the cut, in increasing δ.
	attach := func(prev int32, pr aRingProj, arc geom.Polyline) int32 {
		n := a.AddChildL(prev, ctree.Internal, pr.pt)
		a.WidthIdx[n] = a.WidthIdx[entry]
		a.ReplaceRoute(n, arc)
		sub := pr.node
		hop := geom.LShape(a.Loc[n], a.Loc[sub])[0]
		// Captured sinks legitimately receive wire over the obstacle; for
		// outside subtrees prefer a hop that stays clear.
		if !pr.isSink && crossesAny(obs, hop) {
			if alt := geom.LShape(a.Loc[n], a.Loc[sub])[1]; !crossesAny(obs, alt) {
				hop = alt
			} else if mz, err := maze.Route(a.Loc[n], a.Loc[sub]); err == nil {
				hop = mz
			}
		}
		a.Attach(sub, n, hop)
		return n
	}
	prev, prevS := entry, entryS
	for k := 0; k < bestCut; k++ {
		arc := ringArc(ring, prevS, projs[k].s)
		prev = attach(prev, projs[k], arc)
		prevS = projs[k].s
	}
	// Counter-clockwise chain: attachments after the cut, in decreasing δ.
	prev, prevS = entry, entryS
	for k := m - 1; k >= bestCut; k-- {
		arc := ringArc(ring, projs[k].s, prevS).Reverse()
		prev = attach(prev, projs[k], arc)
		prevS = projs[k].s
	}
	return nil
}

// widthOfArena mirrors widthOf on slots.
func widthOfArena(a *ctree.Arena, exits, sinks []int32) int {
	for _, n := range exits {
		return int(a.WidthIdx[n])
	}
	for _, n := range sinks {
		return int(a.WidthIdx[n])
	}
	return 0
}
