// Observability wiring for the Service: every counter the service exposes
// lives in an obs.Registry, which is the single source of truth — the
// /api/v1/stats snapshot (Stats) and the Prometheus exposition at /metrics
// are two renderings of the same registers and cannot drift apart.
package service

import (
	"strings"

	"contango/internal/core"
	"contango/internal/corners"
	"contango/internal/flow"
	"contango/internal/obs"
	"contango/internal/store"
)

// passDurationBuckets spans 500µs to ~65s exponentially — flow passes on
// tiny benchmarks land in the low milliseconds, full ISPD'09 cascades in
// the tens of seconds.
var passDurationBuckets = obs.ExpBuckets(0.0005, 2, 18)

// serviceMetrics holds the typed handles the service's hot paths update.
type serviceMetrics struct {
	reg *obs.Registry

	submitted *obs.Counter
	coalesced *obs.Counter
	recovered *obs.Counter

	completed *obs.CounterVec // plan, corners
	failed    *obs.CounterVec // plan, corners
	canceled  *obs.CounterVec // plan, corners

	cacheHits      *obs.CounterVec // tier: memory | disk
	cacheMisses    *obs.Counter
	cacheEvictions *obs.Counter

	simRuns     *obs.Counter
	stageSims   *obs.Counter
	stageReuses *obs.Counter
	flowStages  *obs.Counter
	flowCycles  *obs.Counter

	passes  *obs.CounterVec   // pass
	passDur *obs.HistogramVec // pass
	evalDur *obs.Histogram

	ecoJobs    *obs.CounterVec // outcome: cache_hit | done | failed | canceled
	ecoSpeedup *obs.Histogram  // base wall time over eco wall time

	// Packing-scheduler families (registered under both disciplines so
	// the exposition is stable; only the pack scheduler moves most of them).
	estRatio  *obs.Histogram    // actual/predicted runtime
	deadlines *obs.CounterVec   // outcome: hit | miss
	queueWait *obs.HistogramVec // plan
	splits    *obs.Counter
	yields    *obs.Counter
	rejected  *obs.Counter

	storeMetrics *store.Metrics
}

// newServiceMetrics registers the service's metric families on reg and
// installs the live gauges that read service state at scrape time.
func newServiceMetrics(reg *obs.Registry, s *Service) *serviceMetrics {
	m := &serviceMetrics{
		reg: reg,

		submitted: reg.Counter("contango_jobs_submitted_total",
			"Accepted job submissions (including coalesced and cache-served ones)."),
		coalesced: reg.Counter("contango_jobs_coalesced_total",
			"Submissions joined to an identical queued or running job."),
		recovered: reg.Counter("contango_jobs_recovered_total",
			"Unfinished jobs re-queued from the journal at startup."),

		completed: reg.CounterVec("contango_jobs_completed_total",
			"Jobs finished successfully (cache hits included).", "plan", "corners"),
		failed: reg.CounterVec("contango_jobs_failed_total",
			"Jobs that ended with a synthesis error.", "plan", "corners"),
		canceled: reg.CounterVec("contango_jobs_canceled_total",
			"Jobs canceled before completing.", "plan", "corners"),

		cacheHits: reg.CounterVec("contango_cache_hits_total",
			"Submissions served from the result cache, by tier.", "tier"),
		cacheMisses: reg.Counter("contango_cache_misses_total",
			"Submissions served by neither cache tier."),
		cacheEvictions: reg.Counter("contango_cache_evictions_total",
			"Memory-tier demotions (entries persist on disk when a data dir is set)."),

		simRuns: reg.Counter("contango_sim_runs_total",
			"Accurate transient simulator invocations (one per corner per evaluation) across executed jobs."),
		stageSims: reg.Counter("contango_stage_sims_total",
			"Transient stage simulations integrated by the incremental evaluator."),
		stageReuses: reg.Counter("contango_stage_reuses_total",
			"Stage transients served from the incremental evaluator's dirty-cone cache."),
		flowStages: reg.Counter("contango_flow_stages_total",
			"Stage records (Table III rows) produced by executed jobs."),
		flowCycles: reg.Counter("contango_flow_cycles_total",
			"Convergence cycles executed across jobs."),

		passes: reg.CounterVec("contango_passes_total",
			"Executed pipeline passes, by pass name.", "pass"),
		passDur: reg.HistogramVec("contango_pass_duration_seconds",
			"Wall-clock duration of executed pipeline passes.", passDurationBuckets, "pass"),
		evalDur: reg.Histogram("contango_corner_eval_seconds",
			"Wall-clock duration of arming the accurate evaluator (the first full multi-corner evaluation).",
			passDurationBuckets),

		ecoJobs: reg.CounterVec("contango_eco_jobs_total",
			"ECO re-synthesis submissions reaching a terminal state, by outcome.", "outcome"),
		ecoSpeedup: reg.Histogram("contango_eco_speedup",
			"Base-run wall time over ECO wall time for successful ECO jobs (>1 = the incremental path was faster).",
			obs.ExpBuckets(0.5, 2, 12)),

		estRatio: reg.Histogram("contango_sched_estimate_ratio",
			"Actual over predicted runtime of executed jobs (1.0 = the cost model was exact).",
			obs.ExpBuckets(1.0/32, 2, 11)),
		deadlines: reg.CounterVec("contango_sched_deadline_total",
			"Successfully finished jobs that carried a soft deadline, by outcome.", "outcome"),
		queueWait: reg.HistogramVec("contango_sched_queue_wait_seconds",
			"Time jobs waited for a worker slot under the pack scheduler, by plan.",
			passDurationBuckets, "plan"),
		splits: reg.Counter("contango_sched_splits_total",
			"Multi-corner evaluations split into schedulable chunks."),
		yields: reg.Counter("contango_sched_yields_total",
			"Worker-slot yields at chunk boundaries (the slot went to a waiting job)."),
		rejected: reg.Counter("contango_sched_rejected_total",
			"Submissions refused by admission control (queue saturated or estimated wait over the bound)."),
	}
	// Pre-create the tier children so both series exist from the first
	// scrape and Stats can read them without conditioning.
	m.cacheHits.With(string(tierMemory))
	m.cacheHits.With(string(tierDisk))
	m.deadlines.With("hit")
	m.deadlines.With("miss")

	m.storeMetrics = &store.Metrics{
		Reads: reg.Counter("contango_store_reads_total",
			"Successful object reads from the artifact store."),
		ReadBytes: reg.Counter("contango_store_read_bytes_total",
			"Payload bytes read from the artifact store."),
		Writes: reg.Counter("contango_store_writes_total",
			"Objects written to the artifact store."),
		WriteBytes: reg.Counter("contango_store_write_bytes_total",
			"Payload bytes written to the artifact store."),
		Quarantines: reg.Counter("contango_store_quarantines_total",
			"Blobs quarantined after failing their integrity check."),
		JournalAppends: reg.Counter("contango_journal_appends_total",
			"Job-lifecycle records appended to the journal."),
		JournalCompacted: reg.Counter("contango_journal_compacted_records_total",
			"Journal records dropped by open-time compaction."),
	}

	reg.GaugeFunc("contango_workers", "Size of the synthesis worker pool.",
		func() float64 { return float64(s.cfg.Workers) })
	reg.GaugeFunc("contango_queue_depth", "Jobs waiting for a free worker.",
		func() float64 {
			if s.pool != nil {
				return float64(s.pool.Waiting())
			}
			return float64(len(s.queue))
		})
	reg.GaugeFunc("contango_sched_backlog_seconds",
		"Estimated time for the pack scheduler's queue to drain (0 with a free slot).",
		func() float64 {
			if s.pool == nil {
				return 0
			}
			return s.pool.Backlog().Seconds()
		})
	reg.GaugeFunc("contango_jobs_inflight", "Jobs currently queued or running (in-flight dedup map size).",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.inflight))
		})
	reg.GaugeFunc("contango_jobs", "Jobs known to this process (all states).",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.jobs))
		})
	reg.GaugeFunc("contango_cache_entries", "Results held by the memory cache tier.",
		func() float64 {
			if s.cache == nil {
				return 0
			}
			return float64(s.cache.Len())
		})
	obs.RegisterRuntimeMetrics(reg)
	return m
}

// planLabel maps an options plan spec to its metrics label.
func planLabel(plan string) string {
	if plan == "" {
		return flow.DefaultPlanName
	}
	return plan
}

// cornersLabel maps an options corner-set spec to its metrics label.
func cornersLabel(spec string) string {
	if spec == "" {
		return corners.DefaultName
	}
	return corners.Canon(spec)
}

// observeResult folds a finished run's construction counters into the
// registry.
func (m *serviceMetrics) observeResult(res *core.Result) {
	m.simRuns.Add(int64(res.Runs))
	m.stageSims.Add(int64(res.StageSims))
	m.stageReuses.Add(int64(res.StageReuses))
	m.flowStages.Add(int64(len(res.Stages)))
	cycles := 0
	for _, st := range res.Stages {
		if strings.HasPrefix(st.Name, "CYCLE") {
			cycles++
		}
	}
	m.flowCycles.Add(int64(cycles))
}
