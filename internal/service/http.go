package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"contango/internal/bench"
	"contango/internal/corners"
	"contango/internal/flow"
	"contango/internal/sched"
	"contango/internal/store"
	"contango/internal/tech"
)

// Server is the contangod HTTP front end over a Service.
//
//	POST   /api/v1/jobs          submit one job (SubmitRequest) -> JobWire
//	GET    /api/v1/jobs          list jobs -> []JobWire
//	POST   /api/v1/batches       submit a batch (BatchRequest) -> {jobs: []JobWire}
//	POST   /api/v1/eco           incremental re-synthesis (ECORequest) -> JobWire
//	GET    /api/v1/jobs/{id}         job status -> JobWire
//	DELETE /api/v1/jobs/{id}         cancel -> JobWire
//	GET    /api/v1/jobs/{id}/result  finished result -> ResultWire
//	GET    /api/v1/jobs/{id}/log     buffered progress lines -> {lines: []string}
//	GET    /api/v1/jobs/{id}/svg     rendered clock tree (image/svg+xml)
//	GET    /api/v1/jobs/{id}/artifacts        persisted artifacts -> {artifacts: [{name,size}]}
//	GET    /api/v1/jobs/{id}/artifacts/{name} one artifact blob (result|log|svg|job|trace)
//	GET    /api/v1/jobs/{id}/events  server-sent progress events
//	GET    /api/v1/benchmarks    named benchmarks -> {benchmarks: []string}
//	GET    /api/v1/corners       built-in PVT corner sets -> {corners: []corners.Info}
//	GET    /api/v1/queue         scheduler introspection -> QueueWire
//	GET    /api/v1/stats         service counters -> Stats
//	GET    /metrics              Prometheus text exposition of the same counters
//	GET    /healthz              liveness probe
type Server struct {
	svc *Service
	mux *http.ServeMux
}

// NewServer wraps a Service in the contangod HTTP API.
func NewServer(svc *Service) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux()}
	s.mux.HandleFunc("/api/v1/jobs", s.handleJobs)
	s.mux.HandleFunc("/api/v1/jobs/", s.handleJob)
	s.mux.HandleFunc("/api/v1/batches", s.handleBatches)
	s.mux.HandleFunc("/api/v1/eco", s.handleECO)
	s.mux.HandleFunc("/api/v1/benchmarks", s.handleBenchmarks)
	s.mux.HandleFunc("/api/v1/corners", s.handleCorners)
	s.mux.HandleFunc("/api/v1/queue", s.handleQueue)
	s.mux.HandleFunc("/api/v1/stats", s.handleStats)
	s.mux.Handle("/metrics", svc.MetricsRegistry().Handler())
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		jobs := s.svc.Jobs()
		out := make([]*JobWire, len(jobs))
		for i, j := range jobs {
			out[i] = j.Wire()
		}
		writeJSON(w, http.StatusOK, out)
	case http.MethodPost:
		var req SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		b, err := resolveBench(req)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		j, err := s.svc.SubmitWith(b, req.Options.Options(), SubmitOpts{Deadline: req.Options.Deadline()})
		if err != nil {
			writeSubmitError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, j.Wire())
	default:
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	}
}

func submitErrCode(err error) int {
	var be *sched.BacklogError
	switch {
	case errors.Is(err, ErrQueueFull), errors.As(err, &be):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// writeSubmitError renders a submission error; backpressure rejections
// (estimated queue wait over the admission bound) carry a Retry-After
// header alongside the 429.
func writeSubmitError(w http.ResponseWriter, err error) {
	var be *sched.BacklogError
	if errors.As(err, &be) {
		secs := int(be.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeError(w, submitErrCode(err), "%v", err)
}

// handleECO submits an incremental re-synthesis run: the base result is
// looked up by content key, the delta replayed against its tree, and the
// short tuning cascade run on the repaired tree. An unknown base key is a
// 404 — the caller must run (or re-run) the base synthesis first.
func (s *Server) handleECO(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var req ECORequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Base == "" || req.Delta == "" {
		writeError(w, http.StatusBadRequest, "eco request needs base (result key) and delta")
		return
	}
	j, err := s.svc.SubmitECO(req.Base, req.Delta, req.Options.Options(),
		SubmitOpts{Deadline: req.Options.Deadline()})
	if err != nil {
		if strings.Contains(err.Error(), "no finished result under key") {
			writeError(w, http.StatusNotFound, "%v", err)
			return
		}
		writeSubmitError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Wire())
}

func resolveBench(req SubmitRequest) (*bench.Benchmark, error) {
	switch {
	case req.Bench != "" && req.BenchText != "":
		return nil, fmt.Errorf("specify bench or bench_text, not both")
	case req.Bench != "":
		return bench.ISPD09(req.Bench)
	case req.BenchText != "":
		return bench.Read(strings.NewReader(req.BenchText))
	default:
		return nil, fmt.Errorf("missing bench or bench_text")
	}
}

func (s *Server) handleBatches(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	reqs, err := req.Resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	jobs, err := s.svc.SubmitBatch(reqs)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	out := make([]*JobWire, len(jobs))
	for i, j := range jobs {
		out[i] = j.Wire()
	}
	writeJSON(w, http.StatusAccepted, map[string]interface{}{"jobs": out})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/v1/jobs/")
	id, sub := rest, ""
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		id, sub = rest[:i], rest[i+1:]
	}
	j, ok := s.svc.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	// Known sub-endpoints with the wrong method answer 405 (with the
	// allowed set), not 404 — only genuinely unknown paths are 404s.
	get := func(serve func()) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
			return
		}
		serve()
	}
	switch {
	case sub == "":
		switch r.Method {
		case http.MethodGet:
			writeJSON(w, http.StatusOK, j.Wire())
		case http.MethodDelete:
			j.Cancel()
			writeJSON(w, http.StatusOK, j.Wire())
		default:
			w.Header().Set("Allow", "GET, DELETE")
			writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		}
	case sub == "result":
		get(func() { s.serveResult(w, j) })
	case sub == "log":
		get(func() { writeJSON(w, http.StatusOK, map[string]interface{}{"lines": j.Logs()}) })
	case sub == "svg":
		get(func() { s.serveSVG(w, j) })
	case sub == "artifacts":
		get(func() { s.serveArtifactList(w, j) })
	case strings.HasPrefix(sub, "artifacts/"):
		get(func() { s.serveArtifact(w, j, strings.TrimPrefix(sub, "artifacts/")) })
	case sub == "events":
		get(func() { s.serveEvents(w, r, j) })
	default:
		writeError(w, http.StatusNotFound, "no such endpoint %q", r.URL.Path)
	}
}

func (s *Server) serveResult(w http.ResponseWriter, j *Job) {
	// The wire rendering only reads the result, so the shared pointer is
	// fine — a defensive clone per poll would deep-copy the whole tree for
	// nothing.
	res, err := j.sharedResult()
	switch {
	case err != nil:
		writeError(w, http.StatusConflict, "job %s %s: %v", j.ID(), j.State(), err)
	case res == nil:
		writeError(w, http.StatusConflict, "job %s still %s", j.ID(), j.State())
	default:
		writeJSON(w, http.StatusOK, ResultToWire(res))
	}
}

// serveArtifactList lists the job's persisted artifacts (result, log,
// svg, job spec). On a service without a data dir the list is empty —
// the endpoint still exists so clients need not probe for capability.
func (s *Server) serveArtifactList(w http.ResponseWriter, j *Job) {
	arts := s.svc.Artifacts(j.Key())
	if arts == nil {
		arts = []ArtifactInfo{}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"key":       j.Key(),
		"durable":   s.svc.Durable(),
		"artifacts": arts,
	})
}

// artifactContentTypes maps artifact kinds to their media types.
var artifactContentTypes = map[string]string{
	artResult: "application/json",
	artJob:    "application/json",
	artLog:    "text/plain; charset=utf-8",
	artSVG:    "image/svg+xml",
	artTrace:  "application/json",
}

// serveArtifact streams one persisted artifact blob.
func (s *Server) serveArtifact(w http.ResponseWriter, j *Job, name string) {
	if !validArtifactName(name) {
		writeError(w, http.StatusNotFound, "no artifact kind %q (valid: %s)",
			name, strings.Join(ArtifactNames(), ", "))
		return
	}
	data, err := s.svc.Artifact(j.Key(), name)
	if err != nil && name == artTrace && (errors.Is(err, errNoStore) || errors.Is(err, store.ErrNotFound)) {
		// Traces exist in memory for every finished job of this process
		// (cache hits, failures, in-memory services) even though only
		// executed runs persist one.
		if mem, merr := j.TraceJSON(); merr == nil && mem != nil {
			data, err = mem, nil
		}
	}
	switch {
	case err == nil:
		w.Header().Set("Content-Type", artifactContentTypes[name])
		_, _ = w.Write(data)
	case errors.Is(err, errNoStore):
		writeError(w, http.StatusNotFound, "service has no durable store (start with a data dir)")
	case errors.Is(err, store.ErrNotFound):
		writeError(w, http.StatusNotFound, "job %s has no %q artifact", j.ID(), name)
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
	}
}

func (s *Server) serveSVG(w http.ResponseWriter, j *Job) {
	svg, err := j.SVG() // rendered once per job, cached
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	_, _ = w.Write(svg)
}

// serveEvents streams the job's progress log as server-sent events: one
// "log" event per line (buffered lines replay first) — with the
// pipeline's per-pass progress lines promoted to "pass" events — then a
// final "state" event carrying the terminal JobWire.
func (s *Server) serveEvents(w http.ResponseWriter, r *http.Request, j *Job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	past, ch, cancel := j.Subscribe(256)
	defer cancel()
	for _, line := range past {
		sseEvent(w, logEventType(line), line)
	}
	fl.Flush()
	for {
		select {
		case line, open := <-ch:
			if !open { // job finished
				state, _ := json.Marshal(j.Wire())
				sseEvent(w, "state", string(state))
				fl.Flush()
				return
			}
			sseEvent(w, logEventType(line), line)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// logEventType routes one job log line to its SSE event type: pipeline
// per-pass progress lines become "pass" events, everything else "log".
func logEventType(line string) string {
	if flow.IsProgressLine(line) {
		return "pass"
	}
	return "log"
}

func sseEvent(w http.ResponseWriter, event, data string) {
	fmt.Fprintf(w, "event: %s\n", event)
	for _, line := range strings.Split(data, "\n") {
		fmt.Fprintf(w, "data: %s\n", line)
	}
	fmt.Fprint(w, "\n")
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"benchmarks": bench.ISPD09Names()})
}

// handleCorners lists the built-in corner sets (and the mc generator's
// grammar) as instantiated for the default technology model, including
// which corner holds the reference and worst-case roles.
func (s *Server) handleCorners(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"default": corners.DefaultName,
		"corners": corners.List(tech.Default45()),
	})
}

// handleQueue exposes the scheduler's live state: slot occupancy, the
// ranked waiting queue, the estimated backlog, and the cost model's
// calibration snapshot.
func (s *Server) handleQueue(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	writeJSON(w, http.StatusOK, s.svc.QueueInfo())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	writeJSON(w, http.StatusOK, s.svc.Stats())
}
