package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"contango/internal/bench"
)

func testServer(t *testing.T, workers int) (*httptest.Server, *Service) {
	t.Helper()
	svc := New(Config{Workers: workers})
	ts := httptest.NewServer(NewServer(svc))
	t.Cleanup(func() {
		ts.Close()
		svc.CancelAll()
		svc.Close()
	})
	return ts, svc
}

func benchText(t *testing.T, name string, variant int) string {
	t.Helper()
	var buf bytes.Buffer
	if err := bench.Write(&buf, tinyBench(name, variant)); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func postJSON(t *testing.T, url string, body interface{}) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode(t *testing.T, resp *http.Response, wantCode int, v interface{}) {
	t.Helper()
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("status %d, want %d: %s", resp.StatusCode, wantCode, raw)
	}
	if v != nil {
		if err := json.Unmarshal(raw, v); err != nil {
			t.Fatalf("bad JSON: %v: %s", err, raw)
		}
	}
}

func pollDone(t *testing.T, baseURL, id string) JobWire {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(baseURL + "/api/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var jw JobWire
		decode(t, resp, http.StatusOK, &jw)
		if jw.State.Finished() {
			return jw
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobWire{}
}

func TestHTTPJobRoundTrip(t *testing.T) {
	ts, _ := testServer(t, 2)

	// Submit an inline benchmark.
	req := SubmitRequest{
		BenchText: benchText(t, "http-tiny", 0),
		Options:   OptionsWire{MaxRounds: 1, Cycles: 1, SkipStages: []string{"tbsz", "twsz", "twsn", "bwsn"}},
	}
	var jw JobWire
	decode(t, postJSON(t, ts.URL+"/api/v1/jobs", req), http.StatusAccepted, &jw)
	if jw.ID == "" || jw.Benchmark != "http-tiny" || jw.Sinks != 8 {
		t.Fatalf("bad job wire: %+v", jw)
	}

	done := pollDone(t, ts.URL, jw.ID)
	if done.State != Done {
		t.Fatalf("job finished as %s (%s)", done.State, done.Error)
	}
	if done.Result == nil || done.Result.Final.TotalCapFF <= 0 {
		t.Fatalf("missing result payload: %+v", done.Result)
	}

	// Result endpoint.
	var rw ResultWire
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + jw.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	decode(t, resp, http.StatusOK, &rw)
	if rw.Benchmark != "http-tiny" || len(rw.Stages) == 0 || rw.Runs <= 0 {
		t.Fatalf("bad result wire: %+v", rw)
	}

	// Progress log.
	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + jw.ID + "/log")
	if err != nil {
		t.Fatal(err)
	}
	var logs struct {
		Lines []string `json:"lines"`
	}
	decode(t, resp, http.StatusOK, &logs)
	if len(logs.Lines) == 0 {
		t.Error("no progress lines recorded")
	}

	// SVG rendering.
	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + jw.ID + "/svg")
	if err != nil {
		t.Fatal(err)
	}
	svg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "image/svg+xml" {
		t.Fatalf("svg: status %d type %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if !strings.Contains(string(svg), "<svg") {
		t.Error("svg body missing <svg element")
	}

	// Server-sent events replay for a finished job: logs then a state event.
	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + jw.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("events content-type %s", ct)
	}
	if !strings.Contains(string(events), "event: log") || !strings.Contains(string(events), "event: state") {
		t.Errorf("event stream missing log/state events:\n%s", events)
	}

	// Job listing and stats.
	resp, err = http.Get(ts.URL + "/api/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []JobWire
	decode(t, resp, http.StatusOK, &list)
	if len(list) != 1 {
		t.Errorf("listed %d jobs, want 1", len(list))
	}
	resp, err = http.Get(ts.URL + "/api/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	decode(t, resp, http.StatusOK, &st)
	if st.Completed < 1 || st.SimRuns <= 0 {
		t.Errorf("stats not accounting: %+v", st)
	}
}

func TestHTTPBatchSweepAndCache(t *testing.T) {
	ts, svc := testServer(t, 4)

	req := BatchRequest{
		BenchTexts: []string{benchText(t, "hb-0", 0), benchText(t, "hb-1", 1)},
		Options:    OptionsWire{MaxRounds: 1, Cycles: 1, SkipStages: []string{"tbsz", "twsz", "twsn", "bwsn"}},
		Sweep:      &Sweep{Gammas: []float64{0.1, 0.15}},
	}
	var out struct {
		Jobs []JobWire `json:"jobs"`
	}
	decode(t, postJSON(t, ts.URL+"/api/v1/batches", req), http.StatusAccepted, &out)
	if len(out.Jobs) != 4 { // 2 benches x 2 gammas
		t.Fatalf("batch produced %d jobs, want 4", len(out.Jobs))
	}
	for _, jw := range out.Jobs {
		pollDone(t, ts.URL, jw.ID)
	}
	simRuns := svc.Stats().SimRuns

	// The identical batch again: all four served from cache.
	decode(t, postJSON(t, ts.URL+"/api/v1/batches", req), http.StatusAccepted, &out)
	for _, jw := range out.Jobs {
		done := pollDone(t, ts.URL, jw.ID)
		if !done.CacheHit {
			t.Errorf("job %s not a cache hit on resubmission", jw.ID)
		}
	}
	if st := svc.Stats(); st.SimRuns != simRuns {
		t.Errorf("cached batch burned simulator runs: %d -> %d", simRuns, st.SimRuns)
	}
}

func TestHTTPErrors(t *testing.T) {
	ts, _ := testServer(t, 1)

	// Unknown job.
	resp, err := http.Get(ts.URL + "/api/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	decode(t, resp, http.StatusNotFound, nil)

	// Unknown benchmark name.
	decode(t, postJSON(t, ts.URL+"/api/v1/jobs", SubmitRequest{Bench: "not-a-bench"}),
		http.StatusBadRequest, nil)

	// Missing benchmark entirely.
	decode(t, postJSON(t, ts.URL+"/api/v1/jobs", SubmitRequest{}), http.StatusBadRequest, nil)

	// Malformed body.
	resp, err = http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	decode(t, resp, http.StatusBadRequest, nil)

	// Batch naming no benchmarks.
	decode(t, postJSON(t, ts.URL+"/api/v1/batches", BatchRequest{}), http.StatusBadRequest, nil)

	// Method checks.
	resp, err = http.Get(ts.URL + "/api/v1/batches")
	if err != nil {
		t.Fatal(err)
	}
	decode(t, resp, http.StatusMethodNotAllowed, nil)

	// Benchmarks listing works.
	resp, err = http.Get(ts.URL + "/api/v1/benchmarks")
	if err != nil {
		t.Fatal(err)
	}
	var names struct {
		Benchmarks []string `json:"benchmarks"`
	}
	decode(t, resp, http.StatusOK, &names)
	if len(names.Benchmarks) != 7 {
		t.Errorf("benchmarks = %d, want 7", len(names.Benchmarks))
	}

	// Health probe.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	decode(t, resp, http.StatusOK, nil)
}

func TestHTTPResultBeforeDone(t *testing.T) {
	ts, svc := testServer(t, 1)

	hold := make(chan struct{})
	defer close(hold)
	// Occupy the only worker so the HTTP-submitted job stays queued.
	blockOpts := fastOpts()
	blockOpts.Log = func(string, ...interface{}) {
		<-hold
	}
	if _, err := svc.Submit(tinyBench("holder", 0), blockOpts); err != nil {
		t.Fatal(err)
	}

	var jw JobWire
	decode(t, postJSON(t, ts.URL+"/api/v1/jobs", SubmitRequest{
		BenchText: benchText(t, "queued-job", 3),
		Options:   OptionsWire{MaxRounds: 1, Cycles: 1},
	}), http.StatusAccepted, &jw)

	// Result and SVG for an unfinished job: 409.
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + jw.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	decode(t, resp, http.StatusConflict, nil)
	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + jw.ID + "/svg")
	if err != nil {
		t.Fatal(err)
	}
	decode(t, resp, http.StatusConflict, nil)

	// Cancel it over HTTP.
	delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/jobs/"+jw.ID, nil)
	resp, err = http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	var canceled JobWire
	decode(t, resp, http.StatusOK, &canceled)
	if canceled.State != Canceled {
		t.Errorf("state after DELETE = %s, want canceled", canceled.State)
	}
}

// TestHTTPCustomPlanWithPassEvents is the API acceptance path: a custom
// plan spec submitted over HTTP runs end to end, its stage list reflects
// the plan, and the SSE stream carries dedicated per-pass "pass" events.
func TestHTTPCustomPlanWithPassEvents(t *testing.T) {
	ts, _ := testServer(t, 1)

	req := SubmitRequest{
		BenchText: benchText(t, "http-plan", 0),
		Options:   OptionsWire{MaxRounds: 1, Plan: "tbsz:1,twsz:1"},
	}
	var jw JobWire
	decode(t, postJSON(t, ts.URL+"/api/v1/jobs", req), http.StatusAccepted, &jw)
	done := pollDone(t, ts.URL, jw.ID)
	if done.State != Done {
		t.Fatalf("job finished as %s (%s)", done.State, done.Error)
	}
	names := make([]string, len(done.Result.Stages))
	for i, s := range done.Result.Stages {
		names[i] = s.Name
	}
	if got := strings.Join(names, ","); got != "INITIAL,TBSZ,TWSZ" {
		t.Errorf("stages over the wire = %s, want INITIAL,TBSZ,TWSZ", got)
	}

	// The finished job replays its log over SSE; per-pass progress lines
	// arrive as "pass" events, ordinary flow lines stay "log".
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + jw.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if !strings.Contains(body, "event: pass") {
		t.Errorf("SSE stream carries no pass events:\n%s", body)
	}
	if !strings.Contains(body, "event: log") {
		t.Errorf("SSE stream lost its log events:\n%s", body)
	}
	if !strings.Contains(body, "event: state") {
		t.Errorf("SSE stream missing the terminal state event:\n%s", body)
	}
}

func TestHTTPInvalidPlanRejected(t *testing.T) {
	ts, _ := testServer(t, 1)
	req := SubmitRequest{
		BenchText: benchText(t, "http-badplan", 0),
		Options:   OptionsWire{Plan: "cycle(twsz"},
	}
	var apiErr apiError
	decode(t, postJSON(t, ts.URL+"/api/v1/jobs", req), http.StatusBadRequest, &apiErr)
	if !strings.Contains(apiErr.Error, "cycle") {
		t.Errorf("error %q does not mention the bad spec", apiErr.Error)
	}
}

// durableTestServer is testServer with a durable store attached.
func durableTestServer(t *testing.T, workers int) (*httptest.Server, *Service, string) {
	t.Helper()
	dir := t.TempDir()
	svc, err := Open(Config{Workers: workers, DataDir: dir, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(svc))
	t.Cleanup(func() {
		ts.Close()
		svc.CancelAll()
		svc.Close()
	})
	return ts, svc, dir
}

func TestHTTPArtifacts(t *testing.T) {
	ts, _, _ := durableTestServer(t, 1)

	req := SubmitRequest{
		BenchText: benchText(t, "artifacty", 0),
		Options:   OptionsWire{MaxRounds: 1, Cycles: 1, SkipStages: []string{"tbsz", "twsz", "twsn", "bwsn"}},
	}
	var jw JobWire
	decode(t, postJSON(t, ts.URL+"/api/v1/jobs", req), http.StatusAccepted, &jw)
	done := pollDone(t, ts.URL, jw.ID)
	if done.State != Done {
		t.Fatalf("job finished as %s (%s)", done.State, done.Error)
	}

	// List: result, log and the job spec are persisted by completion.
	var list struct {
		Key       string         `json:"key"`
		Durable   bool           `json:"durable"`
		Artifacts []ArtifactInfo `json:"artifacts"`
	}
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + jw.ID + "/artifacts")
	if err != nil {
		t.Fatal(err)
	}
	decode(t, resp, http.StatusOK, &list)
	if !list.Durable || list.Key != jw.Key {
		t.Fatalf("bad artifact listing header: %+v", list)
	}
	have := map[string]int64{}
	for _, a := range list.Artifacts {
		have[a.Name] = a.Size
	}
	for _, name := range []string{"result", "log", "job"} {
		if have[name] <= 0 {
			t.Errorf("artifact %q missing or empty in %v", name, list.Artifacts)
		}
	}
	if _, ok := have["svg"]; ok {
		t.Error("svg artifact exists before any rendering")
	}

	// The result artifact is the persisted codec blob.
	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + jw.ID + "/artifacts/result")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("result artifact: status %d type %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if !strings.Contains(string(blob), `"version":1`) {
		t.Error("result artifact is not a codec envelope")
	}

	// The log artifact is plain text with the job's progress lines.
	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + jw.ID + "/artifacts/log")
	if err != nil {
		t.Fatal(err)
	}
	logTxt, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(logTxt), "artifacty") {
		t.Errorf("log artifact: status %d body %.80s", resp.StatusCode, logTxt)
	}

	// Rendering the SVG persists it; the artifact then matches the route.
	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + jw.ID + "/svg")
	if err != nil {
		t.Fatal(err)
	}
	svgRoute, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + jw.ID + "/artifacts/svg")
	if err != nil {
		t.Fatal(err)
	}
	svgArt, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(svgRoute, svgArt) {
		t.Error("persisted svg artifact does not match the rendered route")
	}

	// Unknown artifact names are 404 over HTTP…
	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + jw.ID + "/artifacts/nope")
	if err != nil {
		t.Fatal(err)
	}
	decode(t, resp, http.StatusNotFound, nil)
}

// TestArtifactNameValidation exercises the name check directly — an HTTP
// request can't carry "../" (clients and ServeMux normalize dot segments
// away), but the raw-path and library surfaces can.
func TestArtifactNameValidation(t *testing.T) {
	_, svc, _ := durableTestServer(t, 1)
	key := strings.Repeat("ab", 32)
	for _, name := range []string{"../x", "..", "result/../job", "passwd", "RESULT", ""} {
		if _, err := svc.Artifact(key, name); err == nil {
			t.Errorf("Artifact accepted invalid name %q", name)
		}
	}
	// Valid names on a missing key are clean not-found errors.
	if _, err := svc.Artifact(key, "result"); err == nil {
		t.Error("missing artifact should error")
	}
}

func TestHTTPArtifactsWithoutStore(t *testing.T) {
	ts, _ := testServer(t, 1)
	req := SubmitRequest{
		BenchText: benchText(t, "nostore", 0),
		Options:   OptionsWire{MaxRounds: 1, Cycles: 1, SkipStages: []string{"tbsz", "twsz", "twsn", "bwsn"}},
	}
	var jw JobWire
	decode(t, postJSON(t, ts.URL+"/api/v1/jobs", req), http.StatusAccepted, &jw)
	pollDone(t, ts.URL, jw.ID)

	var list struct {
		Durable   bool           `json:"durable"`
		Artifacts []ArtifactInfo `json:"artifacts"`
	}
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + jw.ID + "/artifacts")
	if err != nil {
		t.Fatal(err)
	}
	decode(t, resp, http.StatusOK, &list)
	if list.Durable || len(list.Artifacts) != 0 {
		t.Errorf("in-memory server lists artifacts: %+v", list)
	}
	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + jw.ID + "/artifacts/result")
	if err != nil {
		t.Fatal(err)
	}
	decode(t, resp, http.StatusNotFound, nil)
}
