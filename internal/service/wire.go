// Wire types: the JSON shapes shared by the contangod HTTP API and the
// contango CLI's -json output, so the two surfaces never drift apart.
package service

import (
	"fmt"
	"strings"
	"time"

	"contango/internal/bench"
	"contango/internal/core"
	"contango/internal/eco"
	"contango/internal/eval"
	"contango/internal/flow"
	"contango/internal/obs"
)

// MetricsWire is eval.Metrics with explicit units in the field names.
// The per-corner breakdown and the variation statistics (CLR spread,
// worst-corner attribution, Monte Carlo yield/quantiles) ride along for
// multi-corner runs.
type MetricsWire struct {
	SkewPs         float64 `json:"skew_ps"`
	CLRPs          float64 `json:"clr_ps"`
	MaxLatencyPs   float64 `json:"max_latency_ps"`
	MaxSlewPs      float64 `json:"max_slew_ps"`
	SlewViolations int     `json:"slew_violations"`
	TotalCapFF     float64 `json:"total_cap_ff"`
	CapPct         float64 `json:"cap_pct"`

	CLRSpreadPs float64          `json:"clr_spread_ps,omitempty"`
	WorstCorner string           `json:"worst_corner,omitempty"`
	PerCorner   []CornerStatWire `json:"per_corner,omitempty"`
	// MCSamples and Yield appear only for Monte Carlo runs. Yield is a
	// pointer so a catastrophic 0% yield still serializes ("yield": 0)
	// instead of vanishing under omitempty and reading as "no yield
	// analysis ran".
	MCSamples int      `json:"mc_samples,omitempty"`
	Yield     *float64 `json:"yield,omitempty"`
	LatP50Ps  float64  `json:"lat_p50_ps,omitempty"`
	LatP95Ps  float64  `json:"lat_p95_ps,omitempty"`
}

// CornerStatWire is one corner's row of the per-corner breakdown.
type CornerStatWire struct {
	Name           string  `json:"name"`
	Vdd            float64 `json:"vdd"`
	MinLatPs       float64 `json:"min_lat_ps"`
	MaxLatPs       float64 `json:"max_lat_ps"`
	SkewPs         float64 `json:"skew_ps"`
	MaxSlewPs      float64 `json:"max_slew_ps"`
	SlewViolations int     `json:"slew_violations,omitempty"`
	Weight         float64 `json:"weight,omitempty"`
}

// MetricsToWire converts flow metrics to their wire shape.
func MetricsToWire(m eval.Metrics) MetricsWire {
	w := MetricsWire{
		SkewPs:         m.Skew,
		CLRPs:          m.CLR,
		MaxLatencyPs:   m.MaxLatency,
		MaxSlewPs:      m.MaxSlew,
		SlewViolations: m.SlewViol,
		TotalCapFF:     m.TotalCap,
		CapPct:         m.CapPct,
		CLRSpreadPs:    m.CLRSpread,
		WorstCorner:    m.WorstCorner,
		MCSamples:      m.MCSamples,
		LatP50Ps:       m.LatP50,
		LatP95Ps:       m.LatP95,
	}
	if m.MCSamples > 0 {
		y := m.Yield
		w.Yield = &y
	}
	for _, c := range m.PerCorner {
		w.PerCorner = append(w.PerCorner, CornerStatWire{
			Name: c.Name, Vdd: c.Vdd,
			MinLatPs: c.MinLat, MaxLatPs: c.MaxLat, SkewPs: c.Skew,
			MaxSlewPs: c.MaxSlew, SlewViolations: c.SlewViol, Weight: c.Weight,
		})
	}
	return w
}

// StageWire is one optimization-cascade record (a Table III row).
type StageWire struct {
	Name    string      `json:"name"`
	Metrics MetricsWire `json:"metrics"`
	Runs    int         `json:"runs"` // cumulative simulator invocations
}

// ResultWire is the JSON shape of a finished synthesis run.
type ResultWire struct {
	Benchmark      string      `json:"benchmark"`
	Sinks          int         `json:"sinks"`
	Buffers        int         `json:"buffers"`
	Composite      string      `json:"composite"`
	InvertedSinks  int         `json:"inverted_sinks"`
	AddedInverters int         `json:"added_inverters"`
	Legalization   string      `json:"legalization"`
	Stages         []StageWire `json:"stages"`
	Final          MetricsWire `json:"final"`
	Runs           int         `json:"runs"`
	StageSims      int         `json:"stage_sims,omitempty"`
	StageReuses    int         `json:"stage_reuses,omitempty"`
	ElapsedMs      float64     `json:"elapsed_ms"`
}

// ResultToWire converts a synthesis result to its wire shape.
func ResultToWire(r *core.Result) *ResultWire {
	if r == nil {
		return nil
	}
	w := &ResultWire{
		Benchmark:      r.Benchmark.Name,
		Sinks:          len(r.Benchmark.Sinks),
		Buffers:        r.Buffers,
		Composite:      r.Composite.String(),
		InvertedSinks:  r.InvertedSinks,
		AddedInverters: r.AddedInverters,
		Legalization:   r.Legalization.String(),
		Final:          MetricsToWire(r.Final),
		Runs:           r.Runs,
		StageSims:      r.StageSims,
		StageReuses:    r.StageReuses,
		ElapsedMs:      float64(r.Elapsed) / float64(time.Millisecond),
	}
	for _, s := range r.Stages {
		w.Stages = append(w.Stages, StageWire{Name: s.Name, Metrics: MetricsToWire(s.Metrics), Runs: s.Runs})
	}
	return w
}

// JobWire is the JSON shape of a job's status.
type JobWire struct {
	ID         string      `json:"id"`
	Key        string      `json:"key"`
	State      State       `json:"state"`
	Benchmark  string      `json:"benchmark"`
	Sinks      int         `json:"sinks"`
	CacheHit   bool        `json:"cache_hit"`
	CacheTier  string      `json:"cache_tier,omitempty"` // "memory" or "disk" on cache hits
	Submitted  time.Time   `json:"submitted"`
	Started    *time.Time  `json:"started,omitempty"`
	Finished   *time.Time  `json:"finished,omitempty"`
	Error      string      `json:"error,omitempty"`
	Result     *ResultWire `json:"result,omitempty"`
	LogLines   int         `json:"log_lines"`
	LogDropped int         `json:"log_dropped,omitempty"`
	// EstimatedMs is the cost model's predicted runtime at submission
	// (absent for cache-hit jobs). Deadline and DeadlineMissed surface the
	// job's soft deadline: a miss is recorded, the job is never killed.
	EstimatedMs    float64    `json:"estimated_ms,omitempty"`
	Deadline       *time.Time `json:"deadline,omitempty"`
	DeadlineMissed bool       `json:"deadline_missed,omitempty"`
	// TraceSummary lists the finished job's longest trace spans (queue wait,
	// flow passes, evaluator arming, persistence). The full span tree is the
	// "trace" artifact in Chrome trace-event format.
	TraceSummary []obs.SpanInfo `json:"trace_summary,omitempty"`
}

// Wire snapshots the job's status for the API. Results are included only
// for finished jobs.
func (j *Job) Wire() *JobWire {
	j.mu.Lock()
	defer j.mu.Unlock()
	w := &JobWire{
		ID:         j.id,
		Key:        j.key,
		State:      j.state,
		Benchmark:  j.benchmark.Name,
		Sinks:      len(j.benchmark.Sinks),
		CacheHit:   j.cacheHit,
		CacheTier:  string(j.cacheTier),
		Submitted:  j.submitted,
		Result:     ResultToWire(j.result),
		LogLines:   len(j.logs),
		LogDropped: j.dropped,
	}
	if !j.started.IsZero() {
		t := j.started
		w.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		w.Finished = &t
	}
	if j.err != nil {
		w.Error = j.err.Error()
	}
	if j.estimate > 0 {
		w.EstimatedMs = float64(j.estimate) / float64(time.Millisecond)
	}
	if !j.deadline.IsZero() {
		t := j.deadline
		w.Deadline = &t
		w.DeadlineMissed = j.deadlineMissed
	}
	w.TraceSummary = j.trace.Top(5)
	return w
}

// OptionsWire is the JSON-submittable subset of core.Options (hooks,
// custom engines and custom technology models are library-only).
type OptionsWire struct {
	// Plan selects the synthesis pipeline: a built-in plan name ("paper",
	// "fast", "wire-only", "tune-only", "no-cycles") or a plan-spec string
	// such as "tbsz:2,cycle(twsz,twsn)x2". Different plans content-address
	// differently, so they never share a result-cache slot.
	Plan string `json:"plan,omitempty"`
	// Corners selects the PVT corner set: "ispd09" (default), "pvt5", or
	// "mc:<n>:<seed>[:vsigma[:rsigma[:csigma]]]". Different sets evaluate
	// different scenarios and content-address differently, so they never
	// share a result-cache slot; the default set keys exactly as before
	// corner sets existed.
	Corners        string  `json:"corners,omitempty"`
	FastSim        bool    `json:"fast_sim,omitempty"`
	Gamma          float64 `json:"gamma,omitempty"`
	LargeInverters bool    `json:"large_inverters,omitempty"`
	MaxRounds      int     `json:"max_rounds,omitempty"`
	// Cycles is the wire-pass convergence budget: 0 keeps the default (3),
	// a negative value disables convergence cycles entirely.
	Cycles     int      `json:"cycles,omitempty"`
	BufferStep float64  `json:"buffer_step,omitempty"`
	SkipStages []string `json:"skip_stages,omitempty"`
	// Parallelism is the per-job stage-simulation worker budget (0 = the
	// service default, 1 = serial). It affects wall-clock time only — the
	// incremental evaluator produces identical results at any setting —
	// so it does not participate in result-cache keys.
	Parallelism int `json:"parallelism,omitempty"`
	// FullEval disables the incremental per-stage evaluation cache and
	// re-simulates the whole network at every optimization round: the slow
	// reference path the incremental engine is validated against.
	FullEval bool `json:"full_eval,omitempty"`
	// DeadlineMS is a soft completion deadline in milliseconds from
	// submission (0 = none). It is a scheduling hint, not an option: the
	// pack scheduler prioritizes jobs whose deadline is in jeopardy and a
	// miss is recorded, never enforced by killing the job. It is excluded
	// from the result-cache key — deadlined and undeadlined submissions of
	// the same run coalesce and share one cached result.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// ECOBase and ECODelta identify an ECO re-synthesis run: the content
	// key of the finished base result and the delta in eco wire form.
	// They exist so durable ECO job specs round-trip the content key (the
	// key needs only the base key and the delta fingerprint, not the base
	// tree); submissions go through Service.SubmitECO or POST /api/v1/eco,
	// which load the base tree from the store before queueing.
	ECOBase  string `json:"eco_base,omitempty"`
	ECODelta string `json:"eco_delta,omitempty"`
}

// Deadline returns the wire deadline as a duration (0 = none).
func (o OptionsWire) Deadline() time.Duration {
	return time.Duration(o.DeadlineMS) * time.Millisecond
}

// Options converts the wire form to flow options.
func (o OptionsWire) Options() core.Options {
	out := core.Options{
		Plan:           o.Plan,
		Corners:        o.Corners,
		FastSim:        o.FastSim,
		Gamma:          o.Gamma,
		LargeInverters: o.LargeInverters,
		MaxRounds:      o.MaxRounds,
		Cycles:         o.Cycles,
		BufferStep:     o.BufferStep,
		Parallelism:    o.Parallelism,
		FullEval:       o.FullEval,
	}
	if len(o.SkipStages) > 0 {
		out.SkipStages = make(map[string]bool, len(o.SkipStages))
		for _, s := range o.SkipStages {
			out.SkipStages[flow.Canon(s)] = true
		}
	}
	if o.ECOBase != "" && o.ECODelta != "" {
		// A delta that fails to parse leaves ECO nil; SubmitECO and the
		// recovery path parse it themselves and surface the error. The
		// spec's base tree is hydrated from the store before the job runs.
		if d, err := eco.ParseDelta(strings.NewReader(o.ECODelta)); err == nil {
			out.ECO = &eco.Spec{BaseKey: o.ECOBase, Delta: d}
		}
	}
	return out
}

// SubmitRequest is the body of POST /api/v1/jobs: a named benchmark or an
// inline benchmark in the library's text format.
type SubmitRequest struct {
	Bench     string      `json:"bench,omitempty"`
	BenchText string      `json:"bench_text,omitempty"`
	Options   OptionsWire `json:"options"`
}

// ECORequest is the body of POST /api/v1/eco: incremental re-synthesis of
// a finished base result under a delta. Base is the base run's content
// key (JobWire.Key); Delta is the change order in eco wire form ("move
// <name> <x> <y>" / "add <name> <x> <y> <cap>" / "remove <name>" /
// "caplimit <fF>"). Options shape the ECO run itself; an empty plan means
// the built-in "eco" plan (delta replay + short tuning cascade).
type ECORequest struct {
	Base    string      `json:"base"`
	Delta   string      `json:"delta"`
	Options OptionsWire `json:"options"`
}

// BatchRequest is the body of POST /api/v1/batches: a set of named
// benchmarks (or the whole ISPD'09 suite, or inline benchmark files)
// crossed with an optional parameter sweep.
type BatchRequest struct {
	Benches    []string    `json:"benches,omitempty"`
	Suite      bool        `json:"suite,omitempty"` // all ISPD'09 benchmarks
	BenchTexts []string    `json:"bench_texts,omitempty"`
	Options    OptionsWire `json:"options"`
	Sweep      *Sweep      `json:"sweep,omitempty"`
}

// Resolve expands the batch request into submission requests.
func (r BatchRequest) Resolve() ([]Request, error) {
	var benches []*bench.Benchmark
	if r.Suite {
		benches = bench.ISPD09Suite()
	}
	for _, name := range r.Benches {
		b, err := bench.ISPD09(name)
		if err != nil {
			return nil, err
		}
		benches = append(benches, b)
	}
	for i, text := range r.BenchTexts {
		b, err := bench.Read(strings.NewReader(text))
		if err != nil {
			return nil, fmt.Errorf("bench_texts[%d]: %w", i, err)
		}
		benches = append(benches, b)
	}
	if len(benches) == 0 {
		return nil, fmt.Errorf("service: batch names no benchmarks")
	}
	sw := Sweep{}
	if r.Sweep != nil {
		sw = *r.Sweep
	}
	reqs := SweepRequests(benches, r.Options.Options(), sw)
	if d := r.Options.Deadline(); d > 0 {
		for i := range reqs {
			reqs[i].Deadline = d
		}
	}
	return reqs, nil
}
