package service

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// ecoDelta references tinyBench's s0..s7 sink names: one move, one
// removal — the perturbed benchmark has 7 sinks, so a successful ECO run
// is distinguishable from a mis-served base result.
const ecoDelta = "move s0 2550 950\nremove s7\n"

func TestSubmitECOEndToEndAndCache(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()

	b := tinyBench("eco-base", 0)
	baseJob, err := svc.Submit(b, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := baseJob.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	j, err := svc.SubmitECO(baseJob.Key(), ecoDelta, fastOpts(), SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if j.Key() == baseJob.Key() {
		t.Fatal("eco job shares the base job's content key")
	}
	res, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if j.CacheHit() {
		t.Error("first eco run must not be a cache hit")
	}
	if got := len(res.Tree.Sinks()); got != len(b.Sinks)-1 {
		t.Fatalf("eco result has %d sinks, want %d", got, len(b.Sinks)-1)
	}
	if err := res.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := svc.metrics.ecoJobs.With("done").Value(); got < 1 {
		t.Errorf("contango_eco_jobs_total{outcome=done} = %d, want >= 1", got)
	}

	// The same (base, delta) pair is one cache slot.
	j2, err := svc.SubmitECO(baseJob.Key(), ecoDelta, fastOpts(), SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !j2.CacheHit() {
		t.Error("repeated eco submission missed the cache")
	}
	if j2.Key() != j.Key() {
		t.Errorf("repeated eco submission changed keys: %s vs %s", j2.Key(), j.Key())
	}
}

func TestSubmitECOErrors(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()

	baseJob, err := svc.Submit(tinyBench("eco-errs", 0), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := baseJob.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name, base, delta, want string
	}{
		{"unknown base", "deadbeef", ecoDelta, "no finished result"},
		{"empty delta", baseJob.Key(), "# nothing\n", "delta is empty"},
		{"malformed delta", baseJob.Key(), "teleport s0 1 2\n", "unknown directive"},
		{"unknown sink", baseJob.Key(), "remove nope\n", "no sink"},
	}
	for _, c := range cases {
		if _, err := svc.SubmitECO(c.base, c.delta, fastOpts(), SubmitOpts{}); err == nil ||
			!strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

// TestECORecoveryHydratesBase: an eco job interrupted by shutdown persists
// only its base key and delta; the next open must re-read the base tree
// from the disk cache (hydrateECO) and run the job to completion.
func TestECORecoveryHydratesBase(t *testing.T) {
	dir := t.TempDir()
	svc := openDurable(t, dir, Config{Workers: 1})

	b := tinyBench("eco-recover", 0)
	baseJob, err := svc.Submit(b, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := baseJob.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	baseKey := baseJob.Key()

	// Block the eco job mid-run, then shut down with the grace period
	// already expired so it journals as pending.
	started := make(chan struct{})
	release := make(chan struct{})
	o := fastOpts()
	var once sync.Once
	o.Log = func(string, ...interface{}) {
		once.Do(func() {
			close(started)
			<-release
		})
	}
	ecoJob, err := svc.SubmitECO(baseKey, ecoDelta, o, SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the job is provably mid-run, parked on the log hook
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		svc.Shutdown(ctx)
	}()
	// Let the drain's job cancellation land before unparking the worker,
	// so the run aborts at the next pass boundary instead of sprinting to
	// completion.
	time.Sleep(300 * time.Millisecond)
	close(release)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Shutdown did not return")
	}
	if ecoJob.State() != Canceled {
		t.Fatalf("eco job state after shutdown: %s", ecoJob.State())
	}

	svc2 := openDurable(t, dir, Config{Workers: 1})
	defer svc2.Close()
	if n := svc2.Stats().RecoveredJobs; n != 1 {
		t.Fatalf("RecoveredJobs = %d, want 1", n)
	}
	for _, j := range svc2.Jobs() {
		if j.Key() != ecoJob.Key() {
			continue
		}
		res, err := j.Wait(context.Background())
		if err != nil {
			t.Fatalf("recovered eco job: %v", err)
		}
		if got := len(res.Tree.Sinks()); got != len(b.Sinks)-1 {
			t.Fatalf("recovered eco result has %d sinks, want %d", got, len(b.Sinks)-1)
		}
		return
	}
	t.Fatal("recovered service does not know the eco job")
}

func TestHTTPECO(t *testing.T) {
	ts, _ := testServer(t, 2)

	// Base synthesis over the wire.
	var baseWire JobWire
	resp := postJSON(t, ts.URL+"/api/v1/jobs", SubmitRequest{
		BenchText: benchText(t, "eco-http", 0), Options: OptionsWire{MaxRounds: 1, Cycles: 1},
	})
	decode(t, resp, http.StatusAccepted, &baseWire)
	baseWire = pollDone(t, ts.URL, baseWire.ID)
	if baseWire.State != Done {
		t.Fatalf("base job state %s", baseWire.State)
	}

	// ECO against the finished base.
	var ecoWire JobWire
	resp = postJSON(t, ts.URL+"/api/v1/eco", ECORequest{Base: baseWire.Key, Delta: ecoDelta})
	decode(t, resp, http.StatusAccepted, &ecoWire)
	ecoWire = pollDone(t, ts.URL, ecoWire.ID)
	if ecoWire.State != Done {
		t.Fatalf("eco job state %s: %s", ecoWire.State, ecoWire.Error)
	}
	if ecoWire.Key == baseWire.Key {
		t.Fatal("eco job key equals base key over HTTP")
	}

	// Error surface: missing fields, unknown base, wrong method.
	resp = postJSON(t, ts.URL+"/api/v1/eco", ECORequest{Delta: ecoDelta})
	decode(t, resp, http.StatusBadRequest, nil)
	resp = postJSON(t, ts.URL+"/api/v1/eco", ECORequest{Base: "nope", Delta: ecoDelta})
	decode(t, resp, http.StatusNotFound, nil)
	getResp, err := http.Get(ts.URL + "/api/v1/eco")
	if err != nil {
		t.Fatal(err)
	}
	decode(t, getResp, http.StatusMethodNotAllowed, nil)
}
