package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"contango/internal/core"
	"contango/internal/sched"
)

// blockingOpts returns options whose first flow span parks the job until
// release is closed, pinning it in the Running state so tests can build a
// deterministic queue behind it. Hooks never enter the content key, so
// each blocking job needs its own benchmark variant to avoid coalescing.
func blockingOpts() (o core.Options, started chan struct{}, release chan struct{}) {
	o = fastOpts()
	started = make(chan struct{})
	release = make(chan struct{})
	var once sync.Once
	o.SpanHook = func(kind, name string) func() {
		once.Do(func() { close(started) })
		<-release
		return nil
	}
	return o, started, release
}

// The tentpole invariant: scheduling decides when a job runs, never what
// it computes. The same submission must produce bit-identical encoded
// results under the pack scheduler (with aggressive corner splitting) and
// the fifo baseline.
func TestPackFifoBitParity(t *testing.T) {
	o := fastOpts()
	o.Corners = "mc:6:1" // wide enough that SplitCorners=2 actually splits

	run := func(cfg Config) []byte {
		svc := New(cfg)
		defer svc.Close()
		j, err := svc.Submit(tinyBench("parity", 0), o)
		if err != nil {
			t.Fatal(err)
		}
		res, err := j.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		res.Elapsed = 0 // wall-clock is the one field scheduling may change
		var buf bytes.Buffer
		if err := core.EncodeResult(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	pack := run(Config{Workers: 1, Scheduler: SchedulerPack, SplitCorners: 2})
	fifo := run(Config{Workers: 1, Scheduler: SchedulerFIFO})
	if !bytes.Equal(pack, fifo) {
		t.Fatalf("pack and fifo produced different artifacts (%d vs %d bytes)", len(pack), len(fifo))
	}
}

// Starvation demo: with one worker, a fast interactive job submitted
// behind a large Monte Carlo sweep must borrow the slot at a corner-chunk
// boundary and finish while the sweep is still running. The fifo baseline
// below shows the contrast: there the interactive job waits out the whole
// sweep.
func TestPackInteractiveOvertakesSweep(t *testing.T) {
	svc := New(Config{Workers: 1, Scheduler: SchedulerPack, SplitCorners: 4})
	defer svc.Close()

	sweepOpts := fastOpts()
	sweepOpts.Corners = "mc:96:7"
	sweep, err := svc.Submit(tinyBench("sweep", 0), sweepOpts)
	if err != nil {
		t.Fatal(err)
	}
	// Let the sweep take the slot before the interactive job shows up.
	deadline := time.Now().Add(5 * time.Second)
	for sweep.State() == Queued && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	interactive, err := svc.Submit(tinyBench("interactive", 1), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := interactive.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	sweepStateAtFinish := sweep.State()
	if _, err := sweep.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if sweepStateAtFinish == Done {
		t.Fatalf("interactive job did not overtake the sweep (sweep already done when it finished)")
	}
	if svc.Stats().QueueLen != 0 {
		t.Fatalf("queue not drained: %+v", svc.Stats())
	}
}

// Fifo control for the demo above: first-in-first-out on one worker means
// the interactive job cannot start until the sweep is completely done.
func TestFifoInteractiveWaitsForSweep(t *testing.T) {
	svc := New(Config{Workers: 1, Scheduler: SchedulerFIFO})
	defer svc.Close()

	sweepOpts := fastOpts()
	sweepOpts.Corners = "mc:24:7"
	sweep, err := svc.Submit(tinyBench("sweep", 0), sweepOpts)
	if err != nil {
		t.Fatal(err)
	}
	interactive, err := svc.Submit(tinyBench("interactive", 1), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := interactive.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if sweep.State() != Done {
		t.Fatalf("fifo: interactive finished while the sweep was still %s", sweep.State())
	}
}

func TestPackAdmissionBacklogError(t *testing.T) {
	svc := New(Config{Workers: 1, Scheduler: SchedulerPack, MaxQueueWait: time.Millisecond})
	o, started, release := blockingOpts()
	j, err := svc.Submit(tinyBench("hold", 0), o)
	if err != nil {
		t.Fatal(err)
	}
	<-started

	// The slot is held and the estimated backlog (the holder's remaining
	// estimate) exceeds the 1ms admission bound.
	_, err = svc.Submit(tinyBench("late", 1), fastOpts())
	var be *sched.BacklogError
	if !errors.As(err, &be) {
		t.Fatalf("Submit over the backlog bound = %v, want *sched.BacklogError", err)
	}
	if be.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s", be.RetryAfter)
	}
	st := svc.Stats()
	if st.Rejected != 1 {
		t.Fatalf("Stats.Rejected = %d, want 1", st.Rejected)
	}
	if st.BacklogSeconds <= 0 {
		t.Fatalf("Stats.BacklogSeconds = %v, want > 0 with a held slot", st.BacklogSeconds)
	}

	close(release)
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	svc.Close()
}

func TestPackAdmissionQueueFull(t *testing.T) {
	svc := New(Config{Workers: 1, Scheduler: SchedulerPack, QueueDepth: 1})
	o, started, release := blockingOpts()
	j, err := svc.Submit(tinyBench("hold", 0), o)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := svc.Submit(tinyBench("waiter", 1), fastOpts()); err != nil {
		t.Fatalf("first waiter should be admitted: %v", err)
	}
	if _, err := svc.Submit(tinyBench("over", 2), fastOpts()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit past QueueDepth = %v, want ErrQueueFull", err)
	}
	close(release)
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	svc.Close()
}

// Backpressure over HTTP: a submission rejected by the backlog bound is a
// 429 with a Retry-After hint.
func TestHTTPBackpressureRetryAfter(t *testing.T) {
	svc := New(Config{Workers: 1, Scheduler: SchedulerPack, MaxQueueWait: time.Millisecond})
	srv := NewServer(svc)

	o, started, release := blockingOpts()
	j, err := svc.Submit(tinyBench("hold", 0), o)
	if err != nil {
		t.Fatal(err)
	}
	<-started

	body, err := json.Marshal(SubmitRequest{BenchText: benchText(t, "late", 1), Options: OptionsWire{MaxRounds: 1}})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/api/v1/jobs", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", rec.Code, rec.Body.String())
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want a positive seconds hint", ra)
	}

	close(release)
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	svc.Close()
}

func TestDeadlineAccounting(t *testing.T) {
	svc := New(Config{Workers: 1, Scheduler: SchedulerPack})
	defer svc.Close()

	// Generous deadline: a hit.
	hit, err := svc.SubmitWith(tinyBench("deadline", 0), fastOpts(), SubmitOpts{Deadline: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hit.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if hit.DeadlineMissed() {
		t.Fatal("hour-long deadline reported missed")
	}
	if _, ok := hit.Deadline(); !ok {
		t.Fatal("deadline not recorded on the job")
	}

	// Unmeetable deadline: recorded as a miss, job still completes.
	miss, err := svc.SubmitWith(tinyBench("deadline", 1), fastOpts(), SubmitOpts{Deadline: time.Nanosecond * 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := miss.Wait(context.Background())
	if err != nil || res == nil {
		t.Fatalf("missed-deadline job must still finish: %v", err)
	}
	if !miss.DeadlineMissed() {
		t.Fatal("10ns deadline not reported missed")
	}
	w := miss.Wire()
	if w.Deadline == nil || !w.DeadlineMissed {
		t.Fatalf("wire status lost the deadline outcome: %+v", w)
	}
	if w.EstimatedMs <= 0 {
		t.Fatalf("wire status has no runtime estimate: %+v", w)
	}

	st := svc.Stats()
	if st.DeadlineHits < 1 || st.DeadlineMisses != 1 {
		t.Fatalf("deadline counters = %d hit / %d miss, want >=1 / 1", st.DeadlineHits, st.DeadlineMisses)
	}
}

// Coalesced identical submissions settle on the earliest deadline.
func TestCoalesceTightensDeadline(t *testing.T) {
	svc := New(Config{Workers: 1, Scheduler: SchedulerPack})
	o, started, release := blockingOpts()
	j1, err := svc.Submit(tinyBench("co", 0), o)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	j2, err := svc.SubmitWith(tinyBench("co", 0), o, SubmitOpts{Deadline: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if j2 != j1 {
		t.Fatal("identical submission did not coalesce")
	}
	if _, ok := j1.Deadline(); !ok {
		t.Fatal("coalesced deadline not applied to the shared job")
	}
	close(release)
	if _, err := j1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	svc.Close()
}

func TestQueueInfoPack(t *testing.T) {
	svc := New(Config{Workers: 1, Scheduler: SchedulerPack})
	o, started, release := blockingOpts()
	hold, err := svc.Submit(tinyBench("run", 0), o)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	waiter, err := svc.SubmitWith(tinyBench("wait", 1), fastOpts(), SubmitOpts{Deadline: time.Hour})
	if err != nil {
		t.Fatal(err)
	}

	q := svc.QueueInfo()
	if q.Scheduler != SchedulerPack || q.Slots != 1 || q.FreeSlots != 0 {
		t.Fatalf("queue info = %+v, want pack/1 slot/0 free", q)
	}
	if len(q.Running) != 1 || q.Running[0].Job != hold.ID() || q.Running[0].Benchmark != "run" {
		t.Fatalf("running = %+v, want the holding job", q.Running)
	}
	if len(q.Waiting) != 1 || q.Waiting[0].Job != waiter.ID() || q.Waiting[0].Deadline == nil {
		t.Fatalf("waiting = %+v, want the deadlined waiter", q.Waiting)
	}
	if q.QueueLen != 1 || q.BacklogSeconds <= 0 {
		t.Fatalf("queue_len = %d backlog = %v, want 1 and > 0", q.QueueLen, q.BacklogSeconds)
	}

	close(release)
	if _, err := waiter.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	svc.Close()

	// The executed jobs fed the estimator.
	if q2 := svc.QueueInfo(); q2.Estimator.Observations == 0 {
		t.Fatalf("estimator saw no observations: %+v", q2.Estimator)
	}
}

func TestQueueEndpointHTTP(t *testing.T) {
	svc := New(Config{Workers: 2}) // default scheduler: pack
	defer svc.Close()
	srv := NewServer(svc)

	req := httptest.NewRequest(http.MethodGet, "/api/v1/queue", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /api/v1/queue = %d: %s", rec.Code, rec.Body.String())
	}
	body := rec.Body.String()
	for _, want := range []string{`"scheduler": "pack"`, `"slots": 2`, `"estimator"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("queue response missing %s:\n%s", want, body)
		}
	}
}

func TestOpenRejectsUnknownScheduler(t *testing.T) {
	if _, err := Open(Config{Scheduler: "lifo"}); err == nil {
		t.Fatal("Open accepted an unknown scheduler")
	}
}
