package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"contango/internal/bench"
	"contango/internal/core"
	"contango/internal/flow"
	"contango/internal/tech"
)

// cornerFP and techFP mirror the technology model's pre-corner-set field
// layout, so the fingerprint rendering of a default (underated, legacy
// roles) technology is byte-identical to what %+v of the old Tech struct
// produced — which is what keeps result-cache keys persisted by earlier
// releases valid. Corner-set state (derates, weights, roles, the MC flag)
// is appended separately, and only when it differs from the legacy
// defaults.
type cornerFP struct {
	Name string
	Vdd  float64
}

type techFP struct {
	Wires       []tech.WireType
	Inverters   []tech.InverterType
	Corners     []cornerFP
	Vt          float64
	VddRef      float64
	SlewLimit   float64
	MaxParallel int
	SlewSafeCap float64
}

// techFingerprint renders everything about a technology model that shapes
// results. The legacy mirror comes first; corner-set extensions append
// only non-default state so default technologies hash exactly as before.
func techFingerprint(t *tech.Tech) string {
	fp := techFP{
		Wires:       t.Wires,
		Inverters:   t.Inverters,
		Corners:     make([]cornerFP, len(t.Corners)),
		Vt:          t.Vt,
		VddRef:      t.VddRef,
		SlewLimit:   t.SlewLimit,
		MaxParallel: t.MaxParallel,
		SlewSafeCap: t.SlewSafeCap,
	}
	var ext strings.Builder
	for i, c := range t.Corners {
		fp.Corners[i] = cornerFP{Name: c.Name, Vdd: c.Vdd}
		if c.RDerate != 0 || c.CDerate != 0 || c.Weight != 0 {
			fmt.Fprintf(&ext, "|c%d=r%g,c%g,w%g", i, c.RDerate, c.CDerate, c.Weight)
		}
	}
	if t.RefIdx != 0 || t.WorstIdx != 0 {
		fmt.Fprintf(&ext, "|ref=%d,worst=%d", t.RefIdx, t.WorstIdx)
	}
	if t.MCSet {
		ext.WriteString("|mc")
	}
	return fmt.Sprintf("%+v", fp) + ext.String()
}

// OptionsFingerprint canonicalizes the knobs of a synthesis configuration
// that influence the result and renders them as a stable string. The
// options are resolved through core.Options.Resolve first — the same code
// the flow itself runs on — so the zero Options and an Options spelling
// out the paper's defaults fingerprint identically, and a future change to
// a default can never alias cached results computed under the old one.
// Map iteration order, function hooks (Log) and the engine's mutable run
// counter never leak in. Parallelism is deliberately excluded: the
// incremental evaluator produces results identical at any worker count, so
// runs differing only in worker budget share one cache slot. FullEval is
// included even though metrics match too — a caller explicitly requesting
// the reference evaluation path must actually run it (and see its zeroed
// stage_sims/stage_reuses counters), not be served a cached incremental
// result.
func OptionsFingerprint(o core.Options) string {
	r := o.Resolve()
	var b strings.Builder
	techSum := sha256.Sum256([]byte(techFingerprint(r.Tech)))
	fmt.Fprintf(&b, "tech=%s", hex.EncodeToString(techSum[:8]))
	fmt.Fprintf(&b, ";eng=%g,%g,%g,%g", r.Engine.MaxSeg, r.Engine.Dt, r.Engine.SourceSlew, r.Engine.SettleTol)
	fmt.Fprintf(&b, ";gamma=%g;rounds=%d;cycles=%d;bufstep=%g;fulleval=%t",
		r.Gamma, r.MaxRounds, r.Cycles, r.BufferStep, r.FullEval)
	// Resolve canonicalized the plan to its expanded spec, so a named plan
	// and its spelled-out equivalent share one cache slot while any two
	// different cascades address differently.
	fmt.Fprintf(&b, ";plan=%s", r.Plan)
	b.WriteString(";ladder=")
	for i, c := range r.Ladder {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%dx%s(%g/%g/%g)", c.N, c.Type.Name, c.Type.Cin, c.Type.Cout, c.Type.Rout)
	}
	// Skipped stages, sorted for stable map order and normalized with the
	// same canonical helper the pipeline's own skip lookups use.
	var skips []string
	for name, on := range r.SkipStages {
		if on {
			skips = append(skips, flow.Canon(name))
		}
	}
	sort.Strings(skips)
	fmt.Fprintf(&b, ";skip=%s", strings.Join(skips, ","))
	// ECO runs extend the key with the base result's key and the delta's
	// content address, appended only when set: every non-ECO fingerprint —
	// and therefore every existing cache key — stays byte-identical.
	if r.ECO != nil {
		fmt.Fprintf(&b, ";eco=%s", r.ECO.Fingerprint())
	}
	return b.String()
}

// JobKey returns the content address of a synthesis run: a SHA-256 over
// the benchmark's canonical serialization and the options fingerprint.
// Equal keys mean equal results, which is what the result cache and
// in-flight deduplication key on.
func JobKey(b *bench.Benchmark, o core.Options) string {
	h := sha256.New()
	h.Write([]byte(b.Hash()))
	h.Write([]byte{0})
	h.Write([]byte(OptionsFingerprint(o)))
	return hex.EncodeToString(h.Sum(nil))
}
