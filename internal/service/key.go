package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"contango/internal/bench"
	"contango/internal/core"
	"contango/internal/flow"
)

// OptionsFingerprint canonicalizes the knobs of a synthesis configuration
// that influence the result and renders them as a stable string. The
// options are resolved through core.Options.Resolve first — the same code
// the flow itself runs on — so the zero Options and an Options spelling
// out the paper's defaults fingerprint identically, and a future change to
// a default can never alias cached results computed under the old one.
// Map iteration order, function hooks (Log) and the engine's mutable run
// counter never leak in. Parallelism is deliberately excluded: the
// incremental evaluator produces results identical at any worker count, so
// runs differing only in worker budget share one cache slot. FullEval is
// included even though metrics match too — a caller explicitly requesting
// the reference evaluation path must actually run it (and see its zeroed
// stage_sims/stage_reuses counters), not be served a cached incremental
// result.
func OptionsFingerprint(o core.Options) string {
	r := o.Resolve()
	var b strings.Builder
	techSum := sha256.Sum256([]byte(fmt.Sprintf("%+v", *r.Tech)))
	fmt.Fprintf(&b, "tech=%s", hex.EncodeToString(techSum[:8]))
	fmt.Fprintf(&b, ";eng=%g,%g,%g,%g", r.Engine.MaxSeg, r.Engine.Dt, r.Engine.SourceSlew, r.Engine.SettleTol)
	fmt.Fprintf(&b, ";gamma=%g;rounds=%d;cycles=%d;bufstep=%g;fulleval=%t",
		r.Gamma, r.MaxRounds, r.Cycles, r.BufferStep, r.FullEval)
	// Resolve canonicalized the plan to its expanded spec, so a named plan
	// and its spelled-out equivalent share one cache slot while any two
	// different cascades address differently.
	fmt.Fprintf(&b, ";plan=%s", r.Plan)
	b.WriteString(";ladder=")
	for i, c := range r.Ladder {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%dx%s(%g/%g/%g)", c.N, c.Type.Name, c.Type.Cin, c.Type.Cout, c.Type.Rout)
	}
	// Skipped stages, sorted for stable map order and normalized with the
	// same canonical helper the pipeline's own skip lookups use.
	var skips []string
	for name, on := range r.SkipStages {
		if on {
			skips = append(skips, flow.Canon(name))
		}
	}
	sort.Strings(skips)
	fmt.Fprintf(&b, ";skip=%s", strings.Join(skips, ","))
	return b.String()
}

// JobKey returns the content address of a synthesis run: a SHA-256 over
// the benchmark's canonical serialization and the options fingerprint.
// Equal keys mean equal results, which is what the result cache and
// in-flight deduplication key on.
func JobKey(b *bench.Benchmark, o core.Options) string {
	h := sha256.New()
	h.Write([]byte(b.Hash()))
	h.Write([]byte{0})
	h.Write([]byte(OptionsFingerprint(o)))
	return hex.EncodeToString(h.Sum(nil))
}
