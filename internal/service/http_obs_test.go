package service

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"contango/internal/flow"
	"contango/internal/obs"
)

// scrapeMetrics fetches /metrics and parses the exposition, failing the
// test on transport errors, a bad status, or a format violation.
func scrapeMetrics(t *testing.T, baseURL string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.TextContentType {
		t.Fatalf("GET /metrics: content type %q, want %q", ct, obs.TextContentType)
	}
	samples, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	return samples
}

// TestHTTPMetricsAgreeWithStats drives a mixed workload (one executed job,
// one memory-tier cache hit, one distinct second job) and then checks that
// the Prometheus exposition parses and that every counter it reports
// agrees with the /api/v1/stats snapshot — the two surfaces render the
// same registers.
func TestHTTPMetricsAgreeWithStats(t *testing.T) {
	ts, _ := testServer(t, 2)

	opts := OptionsWire{MaxRounds: 1, Cycles: 1, SkipStages: []string{"tbsz", "twsz", "twsn", "bwsn"}}
	submit := func(variant int) JobWire {
		var jw JobWire
		req := SubmitRequest{BenchText: benchText(t, "obs-mix", variant), Options: opts}
		decode(t, postJSON(t, ts.URL+"/api/v1/jobs", req), http.StatusAccepted, &jw)
		return pollDone(t, ts.URL, jw.ID)
	}
	if jw := submit(0); jw.State != Done {
		t.Fatalf("job finished as %s (%s)", jw.State, jw.Error)
	}
	if jw := submit(1); jw.State != Done {
		t.Fatalf("job finished as %s (%s)", jw.State, jw.Error)
	}
	// Identical resubmission: a memory-tier cache hit.
	hit := submit(0)
	if !hit.CacheHit || hit.CacheTier != "memory" {
		t.Fatalf("resubmission was not a memory cache hit: %+v", hit)
	}

	var st Stats
	resp, err := http.Get(ts.URL + "/api/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	decode(t, resp, http.StatusOK, &st)
	samples := scrapeMetrics(t, ts.URL)

	hits := samples[`contango_cache_hits_total{tier="memory"}`] + samples[`contango_cache_hits_total{tier="disk"}`]
	checks := []struct {
		name string
		got  float64
		want int
	}{
		{"contango_jobs_submitted_total", samples["contango_jobs_submitted_total"], st.Submitted},
		{"contango_jobs_coalesced_total", samples["contango_jobs_coalesced_total"], st.Coalesced},
		{"contango_cache_hits_total", hits, st.CacheHits},
		{`contango_cache_hits_total{tier="disk"}`, samples[`contango_cache_hits_total{tier="disk"}`], st.DiskHits},
		{"contango_cache_misses_total", samples["contango_cache_misses_total"], st.CacheMisses},
		{"contango_cache_evictions_total", samples["contango_cache_evictions_total"], st.CacheEvictions},
		{"contango_sim_runs_total", samples["contango_sim_runs_total"], st.SimRuns},
		{"contango_jobs_recovered_total", samples["contango_jobs_recovered_total"], st.RecoveredJobs},
		{"contango_queue_depth", samples["contango_queue_depth"], st.QueueLen},
		{"contango_jobs", samples["contango_jobs"], st.Jobs},
		{"contango_cache_entries", samples["contango_cache_entries"], st.CacheEntries},
		{"contango_workers", samples["contango_workers"], st.Workers},
	}
	for _, c := range checks {
		if int(c.got) != c.want {
			t.Errorf("%s = %v, stats say %d", c.name, c.got, c.want)
		}
	}
	// The per-(plan,corners) completion counters sum to the stats total.
	var completed float64
	for k, v := range samples {
		if strings.HasPrefix(k, "contango_jobs_completed_total{") {
			completed += v
		}
	}
	if int(completed) != st.Completed {
		t.Errorf("sum of contango_jobs_completed_total children = %v, stats say %d", completed, st.Completed)
	}
	if st.Completed != 3 || st.CacheHits != 1 || st.CacheMisses != 2 {
		t.Errorf("workload counters off: %+v", st)
	}

	// The flow instrumentation observed executed passes.
	var passObs float64
	for k, v := range samples {
		if strings.HasPrefix(k, "contango_pass_duration_seconds_count{") {
			passObs += v
		}
	}
	if passObs == 0 {
		t.Error("no contango_pass_duration_seconds observations after executed jobs")
	}
	if samples["contango_flow_stages_total"] == 0 {
		t.Error("contango_flow_stages_total = 0 after executed jobs")
	}
	// Runtime gauges ride along.
	if samples["go_goroutines"] <= 0 {
		t.Error("go_goroutines gauge missing")
	}
}

// TestHTTPMethodNotAllowed pins the 405 behavior of the GET-only surfaces:
// known endpoints with a wrong method answer 405, not 404.
func TestHTTPMethodNotAllowed(t *testing.T) {
	ts, _ := testServer(t, 1)

	req := SubmitRequest{
		BenchText: benchText(t, "methods", 0),
		Options:   OptionsWire{MaxRounds: 1, Cycles: 1, SkipStages: []string{"tbsz", "twsz", "twsn", "bwsn"}},
	}
	var jw JobWire
	decode(t, postJSON(t, ts.URL+"/api/v1/jobs", req), http.StatusAccepted, &jw)
	pollDone(t, ts.URL, jw.ID)

	for _, url := range []string{
		ts.URL + "/metrics",
		ts.URL + "/healthz",
		ts.URL + "/api/v1/jobs/" + jw.ID + "/result",
		ts.URL + "/api/v1/jobs/" + jw.ID + "/log",
		ts.URL + "/api/v1/jobs/" + jw.ID + "/artifacts",
		ts.URL + "/api/v1/jobs/" + jw.ID + "/artifacts/trace",
		ts.URL + "/api/v1/jobs/" + jw.ID + "/events",
	} {
		resp, err := http.Post(url, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: status %d, want 405", url, resp.StatusCode)
		}
	}
	// Unknown sub-endpoints stay 404.
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + jw.ID + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown sub-endpoint: status %d, want 404", resp.StatusCode)
	}
}

// TestLogEventType pins the SSE routing rule: pipeline progress lines
// become "pass" events, everything else "log".
func TestLogEventType(t *testing.T) {
	if got := logEventType(flow.ProgressPrefix + "1/5 dme: start"); got != "pass" {
		t.Errorf("progress line routed to %q, want pass", got)
	}
	if got := logEventType("tiny: [DME] skew=0.1ps"); got != "log" {
		t.Errorf("plain line routed to %q, want log", got)
	}
	if got := logEventType(""); got != "log" {
		t.Errorf("empty line routed to %q, want log", got)
	}
}

// TestSSEPassEvents asserts the event stream of a finished job replays its
// per-pass progress lines as "pass" events and ends with a "state" event.
func TestSSEPassEvents(t *testing.T) {
	ts, _ := testServer(t, 1)

	req := SubmitRequest{
		BenchText: benchText(t, "sse-pass", 0),
		Options:   OptionsWire{MaxRounds: 1, Cycles: 1, SkipStages: []string{"tbsz", "twsz", "twsn", "bwsn"}},
	}
	var jw JobWire
	decode(t, postJSON(t, ts.URL+"/api/v1/jobs", req), http.StatusAccepted, &jw)
	pollDone(t, ts.URL, jw.ID)

	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + jw.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body) // job is finished: the stream terminates
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if !strings.Contains(body, "event: pass\n") {
		t.Errorf("stream has no pass events:\n%s", body)
	}
	if !strings.Contains(body, "event: log\n") {
		t.Errorf("stream has no log events:\n%s", body)
	}
	if !strings.Contains(body, "event: state\n") {
		t.Errorf("stream has no terminal state event:\n%s", body)
	}
	// Every per-pass progress line rode the pass type, never log.
	for _, frame := range strings.Split(body, "\n\n") {
		if strings.Contains(frame, "data: "+flow.ProgressPrefix) && !strings.Contains(frame, "event: pass") {
			t.Errorf("progress frame not typed as pass:\n%s", frame)
		}
	}
}

// chromeTraceWire mirrors the Chrome trace-event JSON shape for decoding.
type chromeTraceWire struct {
	TraceEvents []struct {
		Name string            `json:"name"`
		Cat  string            `json:"cat"`
		Ph   string            `json:"ph"`
		Ts   float64           `json:"ts"`
		Dur  float64           `json:"dur"`
		Args map[string]string `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// TestHTTPTraceArtifact round-trips an executed job's trace artifact:
// valid Chrome trace JSON whose spans cover the queue wait, the executed
// passes and persistence, nested inside the root with monotonic
// timestamps.
func TestHTTPTraceArtifact(t *testing.T) {
	ts, _, _ := durableTestServer(t, 1)

	req := SubmitRequest{
		BenchText: benchText(t, "tracey", 0),
		Options:   OptionsWire{MaxRounds: 1, Cycles: 1, SkipStages: []string{"tbsz", "twsz", "twsn", "bwsn"}},
	}
	var jw JobWire
	decode(t, postJSON(t, ts.URL+"/api/v1/jobs", req), http.StatusAccepted, &jw)
	done := pollDone(t, ts.URL, jw.ID)
	if done.State != Done {
		t.Fatalf("job finished as %s (%s)", done.State, done.Error)
	}
	if len(done.TraceSummary) == 0 {
		t.Error("finished JobWire carries no trace summary")
	}

	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + jw.ID + "/artifacts/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace artifact: status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("trace content type %q, want application/json", ct)
	}
	var tr chromeTraceWire
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatalf("trace is not valid Chrome trace JSON: %v", err)
	}
	if len(tr.TraceEvents) < 3 {
		t.Fatalf("trace has %d events, want at least root+queue_wait+pass", len(tr.TraceEvents))
	}

	root := tr.TraceEvents[0]
	if root.Name != jw.ID || root.Ph != "X" || root.Args["benchmark"] != "tracey" {
		t.Errorf("bad root span: %+v", root)
	}
	names := map[string]bool{}
	passSpans := 0
	for _, ev := range tr.TraceEvents {
		names[ev.Name] = true
		if strings.HasPrefix(ev.Name, "pass:") {
			passSpans++
		}
		if ev.Ph != "X" || ev.Cat != "contango" {
			t.Errorf("event %q: ph=%q cat=%q, want X/contango", ev.Name, ev.Ph, ev.Cat)
		}
		// Nesting is monotonic: every span starts at or after the root and
		// ends within it.
		if ev.Ts < root.Ts || ev.Ts+ev.Dur > root.Ts+root.Dur+1 { // +1µs float slack
			t.Errorf("span %q [%v, %v] escapes root [%v, %v]",
				ev.Name, ev.Ts, ev.Ts+ev.Dur, root.Ts, root.Ts+root.Dur)
		}
		if ev.Dur < 0 {
			t.Errorf("span %q has negative duration %v", ev.Name, ev.Dur)
		}
	}
	for _, want := range []string{"cache_lookup", "queue_wait", "persist"} {
		if !names[want] {
			t.Errorf("trace lacks a %q span; have %v", want, names)
		}
	}
	if passSpans == 0 {
		t.Errorf("trace has no executed-pass spans; have %v", names)
	}

	// The artifact listing includes the trace.
	var list struct {
		Artifacts []ArtifactInfo `json:"artifacts"`
	}
	resp2, err := http.Get(ts.URL + "/api/v1/jobs/" + jw.ID + "/artifacts")
	if err != nil {
		t.Fatal(err)
	}
	decode(t, resp2, http.StatusOK, &list)
	found := false
	for _, a := range list.Artifacts {
		if a.Name == "trace" && a.Size > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("trace missing from artifact listing: %+v", list.Artifacts)
	}
}

// TestHTTPTraceInMemoryFallback: on a service without a durable store the
// trace endpoint still serves the finished job's in-memory span tree.
func TestHTTPTraceInMemoryFallback(t *testing.T) {
	ts, _ := testServer(t, 1)

	req := SubmitRequest{
		BenchText: benchText(t, "memtrace", 0),
		Options:   OptionsWire{MaxRounds: 1, Cycles: 1, SkipStages: []string{"tbsz", "twsz", "twsn", "bwsn"}},
	}
	var jw JobWire
	decode(t, postJSON(t, ts.URL+"/api/v1/jobs", req), http.StatusAccepted, &jw)
	pollDone(t, ts.URL, jw.ID)

	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + jw.ID + "/artifacts/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace on in-memory service: status %d", resp.StatusCode)
	}
	var tr chromeTraceWire
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatalf("in-memory trace is not valid Chrome trace JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 || tr.TraceEvents[0].Name != jw.ID {
		t.Fatalf("bad in-memory trace: %+v", tr.TraceEvents)
	}
	// Other artifacts still 404 without a store (pinned by
	// TestHTTPArtifactsWithoutStore; re-asserted here against regressions
	// in the trace fallback path).
	resp2, err := http.Get(ts.URL + "/api/v1/jobs/" + jw.ID + "/artifacts/result")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("GET result artifact without store: status %d, want 404", resp2.StatusCode)
	}
}
