// ECO submission: incremental re-synthesis of a finished base result
// under a sink-level delta. The service loads the base run's tree from
// its result cache (memory or disk tier), perturbs the base benchmark
// with the delta, and submits a normal job whose options carry the eco
// spec — so coalescing, caching, durability and scheduling all apply to
// ECO jobs unchanged. The content key extends the base fingerprint with
// base-key + delta-fingerprint, so the same (base, delta) pair is served
// from cache like any repeated submission.
package service

import (
	"fmt"
	"strings"

	"contango/internal/core"
	"contango/internal/eco"
)

// SubmitECO enqueues an incremental re-synthesis run: the finished result
// under baseKey is restored, deltaText (eco wire form) is replayed against
// its tree with locality-scoped repair, and the tuning cascade of o.Plan
// (default: the built-in "eco" plan) runs on the repaired tree. The
// returned job's benchmark is the delta-perturbed base benchmark.
func (s *Service) SubmitECO(baseKey, deltaText string, o core.Options, so SubmitOpts) (*Job, error) {
	d, err := eco.ParseDelta(strings.NewReader(deltaText))
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	if d.Empty() {
		return nil, fmt.Errorf("service: eco delta is empty (nothing to re-synthesize)")
	}
	base, err := s.lookupResult(baseKey)
	if err != nil {
		return nil, err
	}
	perturbed, err := d.Perturb(base.Benchmark)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	if o.Plan == "" {
		o.Plan = "eco"
	}
	o.ECO = &eco.Spec{
		BaseKey:     baseKey,
		Delta:       d,
		Base:        base.Tree,
		Composite:   base.Composite,
		BaseElapsed: base.Elapsed,
	}
	return s.SubmitWith(perturbed, o, so)
}

// lookupResult fetches a finished result by content key from the cache
// (memory tier, then disk on a durable service).
func (s *Service) lookupResult(key string) (*core.Result, error) {
	if s.cache != nil {
		if res, _, ok := s.cache.Get(key); ok {
			return res, nil
		}
	}
	return nil, fmt.Errorf("service: no finished result under key %s (run the base synthesis first)", shortKey(key))
}

// hydrateECO fills a recovered ECO spec's base tree from the store. Job
// specs persist only the base key and the delta (enough to round-trip the
// content key); the tree itself is re-read from the base result artifact.
func (s *Service) hydrateECO(o *core.Options) error {
	if o.ECO == nil || o.ECO.Base != nil {
		return nil
	}
	base, err := s.lookupResult(o.ECO.BaseKey)
	if err != nil {
		return err
	}
	o.ECO.Base = base.Tree
	o.ECO.Composite = base.Composite
	o.ECO.BaseElapsed = base.Elapsed
	return nil
}

// ecoOutcome records an ECO job's terminal outcome on the
// contango_eco_jobs_total counter, plus the full-vs-ECO speedup for
// successful runs whose base carried a wall time.
func (s *Service) ecoOutcome(j *Job, outcome string) {
	spec := j.opts.ECO
	if spec == nil {
		return
	}
	s.metrics.ecoJobs.With(outcome).Inc()
	if outcome != "done" || spec.BaseElapsed <= 0 {
		return
	}
	if elapsed := j.Elapsed(); elapsed > 0 {
		s.metrics.ecoSpeedup.Observe(spec.BaseElapsed.Seconds() / elapsed.Seconds())
	}
}
