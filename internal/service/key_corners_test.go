package service

import (
	"strings"
	"testing"

	"contango/internal/bench"
	"contango/internal/core"
)

// seedDefaultFingerprint and seedDefaultJobKey were captured from the
// release immediately before the corner-set refactor (PR 4). Pinning them
// here proves the acceptance criterion that default-options cache keys are
// byte-identical across the refactor: result artifacts persisted by old
// contangod data dirs keep hitting.
const (
	seedDefaultFingerprint = "tech=89ad9fd8029a1466;eng=100,1,20,0.005;gamma=0.1;rounds=16;cycles=3;bufstep=0;fulleval=false;" +
		"plan=zst,legalize,buffer,polarity,tbsz,twsz,twsn,bwsn,cycle(twsz,twsn,bwsn);" +
		"ladder=8xSmall(4.2/6.1/0.44),16xSmall(4.2/6.1/0.44),24xSmall(4.2/6.1/0.44),32xSmall(4.2/6.1/0.44)," +
		"40xSmall(4.2/6.1/0.44),48xSmall(4.2/6.1/0.44),56xSmall(4.2/6.1/0.44),64xSmall(4.2/6.1/0.44);skip="
	seedDefaultJobKey = "e1949e87823630a1d2f774fcb09b402c04c405eb32eb52107ed60b0ed64585d6"
)

func TestDefaultFingerprintUnchangedSinceSeed(t *testing.T) {
	if got := OptionsFingerprint(core.Options{}); got != seedDefaultFingerprint {
		t.Errorf("default options fingerprint drifted from the pre-refactor release:\ngot  %s\nwant %s",
			got, seedDefaultFingerprint)
	}
	b, err := bench.ISPD09("ispd09f22")
	if err != nil {
		t.Fatal(err)
	}
	if got := JobKey(b, core.Options{}); got != seedDefaultJobKey {
		t.Errorf("default job key drifted: got %s want %s", got, seedDefaultJobKey)
	}
}

// TestCornerSpecKeying: the default spec (empty or spelled out) shares one
// cache slot; every other corner set addresses its own; mc keys are a pure
// function of the spec.
func TestCornerSpecKeying(t *testing.T) {
	b, err := bench.ISPD09("ispd09f22")
	if err != nil {
		t.Fatal(err)
	}
	base := JobKey(b, core.Options{})
	if got := JobKey(b, core.Options{Corners: "ispd09"}); got != base {
		t.Error("explicit ispd09 must share the default cache slot")
	}
	pvt := JobKey(b, core.Options{Corners: "pvt5"})
	if pvt == base {
		t.Error("pvt5 shares the default slot")
	}
	mc1 := JobKey(b, core.Options{Corners: "mc:8:1"})
	mc1Canon := JobKey(b, core.Options{Corners: "mc:8:1:0.05:0.05:0.05"})
	mc2 := JobKey(b, core.Options{Corners: "mc:8:2"})
	if mc1 != mc1Canon {
		t.Error("shorthand and canonical mc specs must share a slot")
	}
	if mc1 == mc2 || mc1 == base || mc1 == pvt {
		t.Error("distinct corner sets collided")
	}
	// Deterministic: recomputing the same mc key gives the same address.
	if again := JobKey(b, core.Options{Corners: "mc:8:1"}); again != mc1 {
		t.Error("mc key not deterministic")
	}
	// The corner state rides in the tech component of the fingerprint.
	fp := OptionsFingerprint(core.Options{Corners: "pvt5"})
	if !strings.HasPrefix(fp, "tech=") || strings.HasPrefix(fp, "tech=89ad9fd8029a1466") {
		t.Errorf("pvt5 did not change the tech fingerprint: %s", fp)
	}
}

// TestOptionsWireRoundTripCorners: the persisted job-spec projection must
// carry the corner spec, or a durable job recovered after a restart would
// re-run under the default corners with a stale content key.
func TestOptionsWireRoundTripCorners(t *testing.T) {
	o := core.Options{Plan: "fast", Corners: "mc:8:1", MaxRounds: 2}
	back := optionsToWire(o).Options()
	if back.Corners != "mc:8:1" {
		t.Errorf("corner spec lost in wire round-trip: %q", back.Corners)
	}
	b, err := bench.ISPD09("ispd09f22")
	if err != nil {
		t.Fatal(err)
	}
	if JobKey(b, back) != JobKey(b, o) {
		t.Error("wire round-trip changed the content key")
	}
}
