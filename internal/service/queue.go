// Scheduler introspection for the HTTP API: GET /api/v1/queue renders the
// packing scheduler's live state — slot occupancy, the ranked waiting
// queue, the estimated backlog, and the cost model's calibration — as one
// JSON document.
package service

import (
	"time"

	"contango/internal/sched"
)

// QueueEntryWire is one running or waiting job in the queue snapshot.
type QueueEntryWire struct {
	Job       string `json:"job"`
	Benchmark string `json:"benchmark,omitempty"`
	Plan      string `json:"plan,omitempty"`
	Corners   string `json:"corners,omitempty"`
	// RemainingMs is the scheduler's estimate of slot time the job still
	// needs; WaitedMs is its current queue wait (waiting entries) and
	// HeldMs its current slot tenure (running entries).
	RemainingMs float64    `json:"remaining_ms"`
	WaitedMs    float64    `json:"waited_ms,omitempty"`
	HeldMs      float64    `json:"held_ms,omitempty"`
	Deadline    *time.Time `json:"deadline,omitempty"`
	// Urgent marks waiting jobs whose soft deadline is in jeopardy: they
	// are granted slots earliest-deadline-first, ahead of everything else.
	Urgent bool `json:"urgent,omitempty"`
	// Yields counts how often the job has handed its slot to a waiter at a
	// corner-chunk boundary.
	Yields int `json:"yields,omitempty"`
}

// QueueWire is the response of GET /api/v1/queue. Under the fifo
// scheduler only the counts are populated — per-job ranking, backlog and
// yields exist only in the packing scheduler.
type QueueWire struct {
	Scheduler string `json:"scheduler"`
	Slots     int    `json:"slots"`
	FreeSlots int    `json:"free_slots"`
	QueueLen  int    `json:"queue_len"`
	// BacklogSeconds estimates how long the waiting queue takes to drain
	// (0 whenever a slot is free).
	BacklogSeconds      float64          `json:"backlog_seconds"`
	MaxQueueWaitSeconds float64          `json:"max_queue_wait_seconds,omitempty"`
	SplitCorners        int              `json:"split_corners,omitempty"`
	Running             []QueueEntryWire `json:"running"`
	// Waiting is sorted in grant order: the job the scheduler hands the
	// next free slot to comes first.
	Waiting   []QueueEntryWire    `json:"waiting"`
	Estimator sched.EstimatorInfo `json:"estimator"`
}

// QueueInfo snapshots the scheduler state served at GET /api/v1/queue.
func (s *Service) QueueInfo() QueueWire {
	w := QueueWire{
		Scheduler: s.cfg.Scheduler,
		Slots:     s.cfg.Workers,
		Running:   []QueueEntryWire{},
		Waiting:   []QueueEntryWire{},
		Estimator: s.est.Snapshot(),
	}
	if s.pool == nil {
		// Fifo: the channel is the queue; running jobs are whatever the
		// in-flight set holds in the Running state.
		w.QueueLen = len(s.queue)
		running := 0
		s.mu.Lock()
		for _, j := range s.inflight {
			if j.State() == Running {
				running++
			}
		}
		s.mu.Unlock()
		if w.FreeSlots = w.Slots - running; w.FreeSlots < 0 {
			w.FreeSlots = 0
		}
		return w
	}
	snap := s.pool.Snapshot()
	w.FreeSlots = snap.Free
	w.QueueLen = len(snap.Waiting)
	w.BacklogSeconds = snap.Backlog.Seconds()
	w.MaxQueueWaitSeconds = s.cfg.MaxQueueWait.Seconds()
	if s.cfg.SplitCorners > 0 {
		w.SplitCorners = s.cfg.SplitCorners
	}
	for _, t := range snap.Running {
		w.Running = append(w.Running, s.queueEntry(t))
	}
	for _, t := range snap.Waiting {
		w.Waiting = append(w.Waiting, s.queueEntry(t))
	}
	return w
}

// queueEntry joins one pool ticket with the job it schedules (tickets are
// labeled by job ID).
func (s *Service) queueEntry(t sched.TicketInfo) QueueEntryWire {
	e := QueueEntryWire{
		Job:         t.Label,
		RemainingMs: float64(t.Remaining) / float64(time.Millisecond),
		WaitedMs:    float64(t.Waited) / float64(time.Millisecond),
		HeldMs:      float64(t.Held) / float64(time.Millisecond),
		Urgent:      t.Urgent,
		Yields:      t.Yields,
	}
	if !t.Deadline.IsZero() {
		d := t.Deadline
		e.Deadline = &d
	}
	if j, ok := s.Job(t.Label); ok {
		e.Benchmark = j.benchmark.Name
		e.Plan = j.planLabel
		e.Corners = j.cornersLabel
	}
	return e
}
