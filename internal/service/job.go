package service

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"time"

	"contango/internal/bench"
	"contango/internal/core"
	"contango/internal/obs"
	"contango/internal/sched"
)

// State is a job's lifecycle phase.
type State string

const (
	// Queued jobs wait for a free worker.
	Queued State = "queued"
	// Running jobs are executing the synthesis flow on a worker.
	Running State = "running"
	// Done jobs finished successfully and carry a Result.
	Done State = "done"
	// Failed jobs ended with a synthesis error.
	Failed State = "failed"
	// Canceled jobs were stopped before completing.
	Canceled State = "canceled"
)

// Finished reports whether the state is terminal.
func (s State) Finished() bool { return s == Done || s == Failed || s == Canceled }

// maxJobLogLines bounds the per-job progress buffer; the oldest lines are
// dropped once a job logs more than this.
const maxJobLogLines = 2000

// Job tracks one synthesis run through the service: its content-address
// key, lifecycle state, progress log, and eventual result. Identical
// submissions (same benchmark content and canonicalized options) coalesce
// onto one Job, so two callers may hold the same *Job.
type Job struct {
	id        string
	key       string
	benchmark *bench.Benchmark
	opts      core.Options
	submitted time.Time
	enqueued  time.Time // when the job entered the worker queue
	// planLabel and cornersLabel identify the job in metrics label sets and
	// structured log records (defaults spelled out, so an unset plan reads
	// as "paper" rather than "").
	planLabel    string
	cornersLabel string
	// durable marks jobs whose spec was persisted to the store: only their
	// lifecycle transitions are journaled — a journal record without a
	// spec could never be recovered and would nag every restart.
	durable bool
	// features and estimate are the cost model's view of the job, fixed at
	// submission. Neither participates in the content key: scheduling
	// decides when a result arrives, never what it is.
	features sched.Features
	estimate time.Duration
	// ticket is the job's claim in the packing scheduler's queue (nil
	// under the fifo scheduler and for cache-hit jobs).
	ticket *sched.Ticket

	svc  *Service
	done chan struct{}

	mu    sync.Mutex
	state State
	// deadline is the job's soft completion deadline (zero = none). It can
	// only tighten: coalesced submitters settle on the earliest one.
	deadline       time.Time
	deadlineMissed bool
	started        time.Time
	finished       time.Time
	cacheHit       bool
	cacheTier      cacheTier  // which tier served a cache hit ("" otherwise)
	trace          *obs.Trace // span tree of the job's lifecycle (set at finish)
	result         *core.Result
	err            error
	logs           []string
	dropped        int // log lines discarded from the front of the ring
	subs           map[int]chan string
	nextSub        int
	cancel         context.CancelFunc

	// Rendering a finished tree re-runs the multi-corner simulation, so
	// the SVG is produced once per job and the bytes reused.
	svgOnce sync.Once
	svgData []byte
	svgErr  error
}

// ID returns the service-assigned job identifier.
func (j *Job) ID() string { return j.id }

// Key returns the job's content address: a stable hash of the benchmark
// plus canonicalized options. Jobs with equal keys compute equal results.
func (j *Job) Key() string { return j.key }

// Benchmark returns the benchmark the job synthesizes.
func (j *Job) Benchmark() *bench.Benchmark { return j.benchmark }

// Submitted returns the submission time.
func (j *Job) Submitted() time.Time { return j.submitted }

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// CacheHit reports whether the job was served from the result cache
// without running the synthesizer.
func (j *Job) CacheHit() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cacheHit
}

// CacheTier returns which cache tier served the job ("memory" or "disk"),
// or "" for jobs that actually ran.
func (j *Job) CacheTier() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return string(j.cacheTier)
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Estimate returns the cost model's predicted runtime for the job, fixed
// at submission (zero for cache-hit jobs, which never needed one).
func (j *Job) Estimate() time.Duration { return j.estimate }

// Deadline returns the job's soft completion deadline and whether one is
// set. Coalesced resubmissions may have tightened it since submission.
func (j *Job) Deadline() (time.Time, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.deadline, !j.deadline.IsZero()
}

// DeadlineMissed reports whether the job finished successfully after its
// soft deadline. Always false while running and for undeadlined jobs.
func (j *Job) DeadlineMissed() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.deadlineMissed
}

// tightenDeadline moves the job's soft deadline earlier (never later) and
// propagates the change to the packing scheduler's queue ranking. A zero
// deadline is a no-op, so undeadlined coalesced submissions never loosen
// an existing one.
func (j *Job) tightenDeadline(d time.Time) {
	if d.IsZero() {
		return
	}
	j.mu.Lock()
	if !j.deadline.IsZero() && !d.Before(j.deadline) {
		j.mu.Unlock()
		return
	}
	j.deadline = d
	tk := j.ticket
	j.mu.Unlock()
	if tk != nil && j.svc.pool != nil {
		j.svc.pool.UpdateDeadline(tk, d)
	}
}

// Result returns the synthesis result once the job is Done. Before
// completion it returns (nil, nil); after a failure or cancellation it
// returns (nil, err). The returned Result is the caller's own defensive
// deep copy: mutating it (rescaling the tree, truncating stages, …)
// cannot corrupt the cached entry that coalesced submitters and future
// resubmissions are served from.
func (j *Job) Result() (*core.Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result.Clone(), j.err
}

// sharedResult returns the job's internal (cached, shared) result for
// read-only service-internal paths that should not pay for a deep copy.
func (j *Job) sharedResult() (*core.Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// Wait blocks until the job finishes or ctx is canceled, then returns the
// result. Canceling ctx abandons the wait only; it does not cancel the job.
func (j *Job) Wait(ctx context.Context) (*core.Result, error) {
	select {
	case <-j.done:
		return j.Result()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Cancel stops the job: a queued job completes immediately as Canceled, a
// running job has its context canceled and stops at the next cascade
// checkpoint (no further simulator runs are started). Canceling a finished
// job is a no-op. Note that coalesced submitters share the Job, so Cancel
// cancels it for all of them.
func (j *Job) Cancel() {
	j.mu.Lock()
	switch j.state {
	case Queued:
		j.finishLocked(Canceled, nil, context.Canceled)
		j.mu.Unlock()
		j.svc.jobFinished(j, Canceled, nil)
		return
	case Running:
		if j.cancel != nil {
			j.cancel()
		}
	}
	j.mu.Unlock()
}

// Logs returns a copy of the buffered progress lines.
func (j *Job) Logs() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]string, len(j.logs))
	copy(out, j.logs)
	return out
}

// Subscribe registers a progress listener: past returns the lines logged so
// far, and ch streams subsequent lines until the job finishes (the channel
// is then closed). Slow consumers never block the synthesis worker — lines
// overflowing the channel buffer are dropped. The returned cancel func
// must be called to release the subscription if the consumer leaves early.
func (j *Job) Subscribe(buffer int) (past []string, ch <-chan string, cancel func()) {
	if buffer <= 0 {
		buffer = 64
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	past = make([]string, len(j.logs))
	copy(past, j.logs)
	c := make(chan string, buffer)
	if j.state.Finished() {
		close(c)
		return past, c, func() {}
	}
	if j.subs == nil {
		j.subs = make(map[int]chan string)
	}
	id := j.nextSub
	j.nextSub++
	j.subs[id] = c
	return past, c, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if sub, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(sub)
		}
	}
}

// appendLog records one progress line and fans it out to subscribers.
func (j *Job) appendLog(line string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.logs = append(j.logs, line)
	if len(j.logs) > maxJobLogLines {
		drop := len(j.logs) - maxJobLogLines
		j.logs = append(j.logs[:0], j.logs[drop:]...)
		j.dropped += drop
	}
	for _, c := range j.subs {
		select {
		case c <- line:
		default: // slow consumer: drop rather than stall the worker
		}
	}
}

// finishLocked transitions to a terminal state, publishes the outcome and
// releases subscribers. Callers hold j.mu and must then notify the service.
func (j *Job) finishLocked(st State, res *core.Result, err error) {
	if j.state.Finished() {
		return
	}
	j.state = st
	j.result = res
	j.err = err
	j.finished = time.Now()
	for id, c := range j.subs {
		delete(j.subs, id)
		close(c)
	}
	close(j.done)
}

// SVG renders the finished job's clock tree with slack coloring. The
// rendering (which re-simulates the tree at every corner) runs at most
// once per process; on a durable service the bytes persist as the job's
// "svg" artifact, so later processes (and recovered jobs) serve the
// stored rendering instead of re-simulating. It fails if the job has not
// completed successfully.
func (j *Job) SVG() ([]byte, error) {
	res, err := j.sharedResult() // rendering only reads the tree
	if err != nil {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("service: job %s is %s; no tree to render", j.id, j.State())
	}
	j.svgOnce.Do(func() {
		if data := j.svc.getArtifact(j.key, artSVG); data != nil {
			j.svgData = data
			return
		}
		var buf bytes.Buffer
		if err := core.RenderSVG(&buf, res); err != nil {
			j.svgErr = err
			return
		}
		j.svgData = buf.Bytes()
		j.svc.putArtifact(j.key, artSVG, j.svgData)
	})
	return j.svgData, j.svgErr
}

// Trace returns the job's span tree, available once the job reached a
// terminal state (nil before that).
func (j *Job) Trace() *obs.Trace {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.trace
}

// TraceJSON renders the job's trace in the Chrome trace-event format, or
// (nil, nil) while the job is still running.
func (j *Job) TraceJSON() ([]byte, error) {
	return j.Trace().ChromeJSON()
}

// Elapsed returns how long the job ran (so far, if still running).
func (j *Job) Elapsed() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.started.IsZero():
		return 0
	case j.finished.IsZero():
		return time.Since(j.started)
	default:
		return j.finished.Sub(j.started)
	}
}
