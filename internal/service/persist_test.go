package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"contango/internal/bench"
	"contango/internal/core"
	"contango/internal/spice"
	"contango/internal/store"
)

// openDurable starts a durable test service rooted at dir (fsync off for
// speed; crash-layout consistency is what the tests exercise).
func openDurable(t *testing.T, dir string, cfg Config) *Service {
	t.Helper()
	cfg.DataDir = dir
	cfg.NoFsync = true
	svc, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// wireJSON renders a result through the same wire shape the HTTP API and
// -json CLI use; bit-identical wire JSON is the acceptance bar for a
// disk-served result.
func wireJSON(t *testing.T, res *core.Result) []byte {
	t.Helper()
	raw, err := json.Marshal(ResultToWire(res))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestRestartServesDiskHit is the acceptance round-trip: a finished job
// survives a service restart as a cache hit served from disk, with a
// bit-identical wire result, without burning a simulator run.
func TestRestartServesDiskHit(t *testing.T) {
	dir := t.TempDir()

	svc1 := openDurable(t, dir, Config{Workers: 2})
	j1, err := svc1.Submit(tinyBench("durable", 0), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	res1, err := j1.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := wireJSON(t, res1)
	svc1.Close()

	svc2 := openDurable(t, dir, Config{Workers: 2})
	defer svc2.Close()
	if n := svc2.Stats().RecoveredJobs; n != 0 {
		t.Errorf("finished job recovered as unfinished: RecoveredJobs = %d", n)
	}
	j2, err := svc2.Submit(tinyBench("durable", 0), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	res2, err := j2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !j2.CacheHit() {
		t.Fatal("restart resubmission should be a cache hit")
	}
	if j2.CacheTier() != "disk" {
		t.Errorf("CacheTier = %q, want disk", j2.CacheTier())
	}
	if got := wireJSON(t, res2); !bytes.Equal(got, want) {
		t.Errorf("disk-served result is not bit-identical:\n got %s\nwant %s", got, want)
	}
	st := svc2.Stats()
	if st.DiskHits != 1 || st.CacheHits != 1 {
		t.Errorf("DiskHits/CacheHits = %d/%d, want 1/1", st.DiskHits, st.CacheHits)
	}
	if st.SimRuns != 0 {
		t.Errorf("disk hit burned %d simulator runs", st.SimRuns)
	}

	// The promotion landed in memory: the next identical submission is a
	// memory hit.
	j3, err := svc2.Submit(tinyBench("durable", 0), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j3.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if j3.CacheTier() != "memory" {
		t.Errorf("post-promotion CacheTier = %q, want memory", j3.CacheTier())
	}

	// The finished job's artifacts are on disk.
	arts := svc2.Artifacts(j2.Key())
	names := map[string]bool{}
	for _, a := range arts {
		names[a.Name] = true
	}
	for _, want := range []string{"result", "log", "job"} {
		if !names[want] {
			t.Errorf("artifact %q missing after restart (have %v)", want, arts)
		}
	}
}

// TestRecoveryRequeuesUnfinished writes a journal with a submitted-but-
// unfinished job (as a crashed process would leave behind) and asserts the
// next Open re-queues and completes it.
func TestRecoveryRequeuesUnfinished(t *testing.T) {
	dir := t.TempDir()
	b := tinyBench("crashed", 0)
	o := fastOpts()
	key := JobKey(b, o)

	// Hand-craft the crash leftovers: spec object + "submitted" record.
	st, err := store.Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	var bb bytes.Buffer
	if err := bench.Write(&bb, b); err != nil {
		t.Fatal(err)
	}
	spec, err := json.Marshal(jobSpec{Bench: bb.String(), Options: optionsToWire(o)})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(key+".job", spec); err != nil {
		t.Fatal(err)
	}
	jnl, _, err := store.OpenJournal(filepath.Join(dir, "journal.log"), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jnl.Append("submitted", key); err != nil {
		t.Fatal(err)
	}
	jnl.Close()

	svc := openDurable(t, dir, Config{Workers: 1})
	defer svc.Close()
	if n := svc.Stats().RecoveredJobs; n != 1 {
		t.Fatalf("RecoveredJobs = %d, want 1", n)
	}
	jobs := svc.Jobs()
	if len(jobs) != 1 {
		t.Fatalf("jobs after recovery = %d, want 1", len(jobs))
	}
	if jobs[0].Key() != key {
		t.Error("recovered job has a different content key")
	}
	res, err := jobs[0].Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Benchmark.Name != "crashed" {
		t.Fatalf("recovered job produced a bad result: %+v", res)
	}
	if jobs[0].CacheHit() {
		t.Error("an unfinished job must actually re-run, not hit the cache")
	}

	// After completion the journal records it as finished: the next open
	// recovers nothing and serves the result from disk.
	svc.Close()
	svc2 := openDurable(t, dir, Config{Workers: 1})
	defer svc2.Close()
	if n := svc2.Stats().RecoveredJobs; n != 0 {
		t.Errorf("second open recovered %d jobs, want 0", n)
	}
	j, err := svc2.Submit(tinyBench("crashed", 0), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !j.CacheHit() || j.CacheTier() != "disk" {
		t.Errorf("completed recovered job not servable from disk (hit=%v tier=%s)",
			j.CacheHit(), j.CacheTier())
	}
}

// TestShutdownJournalsPending: a graceful shutdown with an expired grace
// period journals both the running and the queued job as pending, and the
// next open re-runs both to completion.
func TestShutdownJournalsPending(t *testing.T) {
	dir := t.TempDir()
	svc := openDurable(t, dir, Config{Workers: 1})

	release := make(chan struct{})
	o := fastOpts()
	var once sync.Once
	o.Log = func(string, ...interface{}) {
		once.Do(func() { <-release })
	}
	running, err := svc.Submit(tinyBench("inflight", 0), o)
	if err != nil {
		t.Fatal(err)
	}
	queued, err := svc.Submit(tinyBench("waiting", 1), fastOpts())
	if err != nil {
		t.Fatal(err)
	}

	// Grace period already expired: Shutdown stops intake, cancels both
	// jobs and journals them as pending.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		svc.Shutdown(ctx)
	}()
	// Unblock the running job so its cancellation can land.
	close(release)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Shutdown did not return")
	}
	if _, err := svc.Submit(tinyBench("late", 2), fastOpts()); err != ErrClosed {
		t.Errorf("post-shutdown submit err = %v, want ErrClosed", err)
	}
	if running.State() != Canceled || queued.State() != Canceled {
		t.Fatalf("states after shutdown: %s/%s, want canceled/canceled",
			running.State(), queued.State())
	}

	svc2 := openDurable(t, dir, Config{Workers: 2})
	defer svc2.Close()
	if n := svc2.Stats().RecoveredJobs; n != 2 {
		t.Fatalf("RecoveredJobs = %d, want 2", n)
	}
	for _, j := range svc2.Jobs() {
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatalf("recovered job %s: %v", j.ID(), err)
		}
	}
}

// TestUserCancelNotRecovered: a job canceled by the user (not by a
// shutdown drain) is terminal — the next open must not resurrect it.
func TestUserCancelNotRecovered(t *testing.T) {
	dir := t.TempDir()
	svc := openDurable(t, dir, Config{Workers: 1})

	hold := make(chan struct{})
	o := fastOpts()
	var once sync.Once
	o.Log = func(string, ...interface{}) { once.Do(func() { <-hold }) }
	blocker, err := svc.Submit(tinyBench("blocker", 0), o)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := svc.Submit(tinyBench("victim", 1), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	victim.Cancel()
	if _, err := victim.Wait(context.Background()); err != context.Canceled {
		t.Fatal(err)
	}
	close(hold)
	if _, err := blocker.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	svc.Close()

	svc2 := openDurable(t, dir, Config{Workers: 1})
	defer svc2.Close()
	if n := svc2.Stats().RecoveredJobs; n != 0 {
		t.Errorf("user-canceled job resurrected: RecoveredJobs = %d", n)
	}
}

// TestCorruptionQuarantineAndContinue damages both the persisted result
// blob and the journal tail; the service must start cleanly, treat the
// bad blob as a miss (quarantining it) and re-run the job.
func TestCorruptionQuarantineAndContinue(t *testing.T) {
	dir := t.TempDir()
	b := tinyBench("bitrot", 0)
	o := fastOpts()
	key := JobKey(b, o)

	svc1 := openDurable(t, dir, Config{Workers: 1})
	j1, err := svc1.Submit(b, o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	svc1.Close()

	// Bit-flip the persisted result and tear the journal's tail.
	blob := filepath.Join(dir, "objects", key[:2], key+".result")
	raw, err := os.ReadFile(blob)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x08
	if err := os.WriteFile(blob, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	jf, err := os.OpenFile(filepath.Join(dir, "journal.log"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jf.Write([]byte{0xff, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	jf.Close()

	svc2 := openDurable(t, dir, Config{Workers: 1})
	defer svc2.Close()
	j2, err := svc2.Submit(tinyBench("bitrot", 0), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	res, err := j2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if j2.CacheHit() {
		t.Error("corrupt blob served as a cache hit")
	}
	if res == nil || res.Final.TotalCap <= 0 {
		t.Fatalf("re-run produced a bad result: %+v", res)
	}
	// The damaged blob was quarantined, and the re-run re-persisted a good
	// one: a third submission (fresh service, same dir) is a disk hit again.
	if entries, err := os.ReadDir(filepath.Join(dir, "quarantine")); err != nil || len(entries) == 0 {
		t.Errorf("quarantine empty after corrupt read (err=%v)", err)
	}
	svc2.Close()
	svc3 := openDurable(t, dir, Config{Workers: 1})
	defer svc3.Close()
	j3, err := svc3.Submit(tinyBench("bitrot", 0), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j3.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !j3.CacheHit() || j3.CacheTier() != "disk" {
		t.Error("re-persisted result not servable from disk")
	}
}

// TestResultDefensiveCopies is the shared-pointer-footgun regression test:
// mutating a result handed out by the service must not change what a
// re-fetch (same job or cache-hit resubmission) returns.
func TestResultDefensiveCopies(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()

	j1, err := svc.Submit(tinyBench("mutate", 0), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	res1, err := j1.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantSkew := res1.Final.Skew
	wantRuns := res1.Stages[0].Runs
	wantSnake := res1.Tree.Root.Children[0].Snake

	// Vandalize everything reachable from the returned result.
	res1.Final.Skew = -777
	res1.Stages[0].Runs = -777
	res1.Tree.Root.Children[0].Snake = 777
	res1.Benchmark.Sinks[0].Cap = 777

	refetch, err := j1.Result()
	if err != nil {
		t.Fatal(err)
	}
	if refetch.Final.Skew != wantSkew || refetch.Stages[0].Runs != wantRuns ||
		refetch.Tree.Root.Children[0].Snake != wantSnake {
		t.Error("mutations through a returned result leaked into the job")
	}

	// And a cache-hit resubmission still sees the pristine result.
	j2, err := svc.Submit(tinyBench("mutate", 0), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	res2, err := j2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !j2.CacheHit() {
		t.Fatal("resubmission should hit the cache")
	}
	if res2.Final.Skew != wantSkew || res2.Stages[0].Runs != wantRuns ||
		res2.Tree.Root.Children[0].Snake != wantSnake {
		t.Error("cache-hit result carries a caller's mutations")
	}
}

// TestCacheCounterStats exercises the new Stats counters on a memory-only
// service: misses on first submissions, evictions under a tiny capacity.
func TestCacheCounterStats(t *testing.T) {
	svc := New(Config{Workers: 1, CacheEntries: 1})
	defer svc.Close()

	for i := 0; i < 2; i++ {
		j, err := svc.Submit(tinyBench("count", i), fastOpts())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Stats()
	if st.CacheMisses != 2 {
		t.Errorf("CacheMisses = %d, want 2", st.CacheMisses)
	}
	if st.CacheEvictions != 1 {
		t.Errorf("CacheEvictions = %d, want 1 (capacity 1, two results)", st.CacheEvictions)
	}
	if st.DiskHits != 0 || st.RecoveredJobs != 0 {
		t.Errorf("disk counters moved on a memory-only service: %+v", st)
	}
}

// TestDataDirUnsetKeepsInMemoryBehavior: without DataDir nothing touches
// the filesystem and the artifact surface reports empty.
func TestDataDirUnsetKeepsInMemoryBehavior(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	j, err := svc.Submit(tinyBench("ephemeral", 0), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if svc.Durable() {
		t.Error("service without DataDir claims durability")
	}
	if arts := svc.Artifacts(j.Key()); len(arts) != 0 {
		t.Errorf("in-memory service lists artifacts: %v", arts)
	}
	if _, err := svc.Artifact(j.Key(), "result"); err == nil {
		t.Error("in-memory artifact read should fail")
	}
}

// TestLibraryOnlyOptionsNotJournaled: a submission whose options cannot be
// wire-round-tripped (custom engine) runs normally on a durable service
// but journals nothing — so restarts never nag about an unrecoverable
// spec, and nothing is "recovered".
func TestLibraryOnlyOptionsNotJournaled(t *testing.T) {
	dir := t.TempDir()
	svc := openDurable(t, dir, Config{Workers: 1})

	o := fastOpts()
	o.Engine = spice.New()
	o.Engine.Dt = 0.5 // not representable in OptionsWire: key won't round-trip
	j, err := svc.Submit(tinyBench("libonly", 0), o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	svc.Close()

	var recoveryLogs []string
	svc2, err := Open(Config{Workers: 1, DataDir: dir, NoFsync: true,
		Log: func(f string, a ...interface{}) {
			line := fmt.Sprintf(f, a...)
			if strings.Contains(line, "recovery") {
				recoveryLogs = append(recoveryLogs, line)
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if n := svc2.Stats().RecoveredJobs; n != 0 {
		t.Errorf("RecoveredJobs = %d, want 0", n)
	}
	if len(recoveryLogs) != 0 {
		t.Errorf("restart nagged about an unrecoverable job: %v", recoveryLogs)
	}
	// The executed result was still persisted via the cache write-through:
	// an identical submission (same custom engine params) is a disk hit.
	o2 := fastOpts()
	o2.Engine = spice.New()
	o2.Engine.Dt = 0.5
	j2, err := svc2.Submit(tinyBench("libonly", 0), o2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !j2.CacheHit() || j2.CacheTier() != "disk" {
		t.Errorf("library-only result not reusable from disk: hit=%v tier=%q",
			j2.CacheHit(), j2.CacheTier())
	}
}
