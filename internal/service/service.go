// Package service turns the single-run Contango synthesizer into a
// concurrent batch service: a job manager with a fixed worker pool runs
// core.Synthesize jobs in parallel, a content-addressed LRU result cache
// dedupes repeated submissions (hash of benchmark bytes + canonicalized
// options), identical in-flight submissions coalesce onto one run, and
// every job streams its progress log to subscribers. The HTTP front end in
// this package (Server) exposes the same operations as the contangod JSON
// API; contango.go re-exports the library surface.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"contango/internal/bench"
	"contango/internal/core"
	"contango/internal/flow"
)

// Config tunes a Service.
type Config struct {
	// Workers is the worker-pool size (default: min(GOMAXPROCS, 4)).
	Workers int
	// CacheEntries bounds the result cache (default 256; negative disables
	// caching entirely).
	CacheEntries int
	// QueueDepth bounds the number of jobs waiting for a worker (default
	// 4096). Submissions beyond it fail fast with ErrQueueFull.
	QueueDepth int
	// JobParallelism is the per-job stage-simulation worker budget applied
	// to submissions that leave Options.Parallelism unset. The default
	// divides GOMAXPROCS evenly across the job workers (at least 1), so a
	// fully loaded pool neither oversubscribes the host nor leaves cores
	// idle when a single large job runs alone on a big machine.
	JobParallelism int
	// DefaultPlan is applied to submissions that leave Options.Plan unset
	// (empty keeps the library default, the "paper" plan). Unlike
	// JobParallelism it shapes results, so it is applied before the job's
	// content key is computed.
	DefaultPlan string
	// Log, when non-nil, receives service lifecycle lines (job started,
	// finished, cache hits). Per-job progress goes to the job's own log.
	Log func(format string, args ...interface{})
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers > 4 {
			c.Workers = 4
		}
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4096
	}
	if c.JobParallelism <= 0 {
		c.JobParallelism = runtime.GOMAXPROCS(0) / c.Workers
		if c.JobParallelism < 1 {
			c.JobParallelism = 1
		}
	}
}

// Errors returned by submission.
var (
	ErrClosed    = errors.New("service: closed")
	ErrQueueFull = errors.New("service: job queue full")
	ErrNoBench   = errors.New("service: nil or empty benchmark")
)

// Request is one unit of batch submission.
type Request struct {
	Bench *bench.Benchmark
	Opts  core.Options
}

// Stats is a snapshot of service counters.
type Stats struct {
	Workers      int `json:"workers"`
	QueueLen     int `json:"queue_len"`
	Jobs         int `json:"jobs"`
	Submitted    int `json:"submitted"`
	Coalesced    int `json:"coalesced"`  // submissions joined to an in-flight identical job
	CacheHits    int `json:"cache_hits"` // submissions served from the result cache
	CacheEntries int `json:"cache_entries"`
	Completed    int `json:"completed"`
	Failed       int `json:"failed"`
	Canceled     int `json:"canceled"`
	SimRuns      int `json:"sim_runs"` // accurate-simulator invocations across executed jobs
}

// Service runs synthesis jobs on a worker pool with content-addressed
// result caching and in-flight deduplication. Create one with New and
// release it with Close.
type Service struct {
	cfg   Config
	queue chan *Job
	cache *resultCache // nil when caching is disabled
	wg    sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	seq      int
	jobs     map[string]*Job // by ID
	order    []*Job          // submission order
	inflight map[string]*Job // by content key, queued or running
	stats    Stats
}

// New starts a Service with cfg's worker pool.
func New(cfg Config) *Service {
	cfg.fill()
	s := &Service{
		cfg:      cfg,
		queue:    make(chan *Job, cfg.QueueDepth),
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
	}
	if cfg.CacheEntries > 0 {
		s.cache = newResultCache(cfg.CacheEntries)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

func (s *Service) logf(format string, args ...interface{}) {
	if s.cfg.Log != nil {
		s.cfg.Log(format, args...)
	}
}

// Submit enqueues one synthesis run and returns its Job immediately.
// Submissions dedupe by content: if the identical run (same benchmark
// bytes, same canonicalized options) is already queued or running, the
// existing Job is returned; if its result is cached, a Job completed as a
// cache hit is returned without touching the worker pool. Opts.Engine
// should normally be left nil so every executed job gets its own simulator
// instance; a caller-shared Engine is used as-is and is not safe across
// concurrent jobs.
func (s *Service) Submit(b *bench.Benchmark, o core.Options) (*Job, error) {
	if b == nil || len(b.Sinks) == 0 {
		return nil, ErrNoBench
	}
	if o.Plan == "" {
		o.Plan = s.cfg.DefaultPlan
	}
	// Reject unparsable plans up front: a bad spec would only fail after
	// queueing, and its raw string would pollute the key space.
	if _, err := flow.ResolvePlan(o.Plan); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	key := JobKey(b, o)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.stats.Submitted++

	// In-flight coalescing: an identical queued/running job serves this
	// submission too.
	if live, ok := s.inflight[key]; ok {
		s.stats.Coalesced++
		s.mu.Unlock()
		return live, nil
	}

	j := &Job{
		id:        fmt.Sprintf("job-%04d", s.seq+1),
		key:       key,
		benchmark: b,
		opts:      o,
		submitted: time.Now(),
		svc:       s,
		state:     Queued,
		done:      make(chan struct{}),
	}
	s.seq++

	// Result cache: complete instantly, off-pool.
	if s.cache != nil {
		if res, ok := s.cache.Get(key); ok {
			s.stats.CacheHits++
			s.stats.Completed++
			j.cacheHit = true
			j.started = j.submitted
			j.mu.Lock()
			j.finishLocked(Done, res, nil)
			j.mu.Unlock()
			s.jobs[j.id] = j
			s.order = append(s.order, j)
			s.mu.Unlock()
			j.appendLog(fmt.Sprintf("%s: served from result cache", b.Name))
			s.logf("job %s: cache hit for %s", j.id, b.Name)
			return j, nil
		}
	}

	select {
	case s.queue <- j:
	default:
		s.stats.Submitted--
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	s.inflight[key] = j
	s.mu.Unlock()
	s.logf("job %s: queued %s (%d sinks)", j.id, b.Name, len(b.Sinks))
	return j, nil
}

// SubmitBatch submits every request, returning one Job per request in
// order. Requests that dedupe against the cache or an in-flight run still
// produce an entry (possibly the same *Job several times). On a submission
// error the jobs submitted so far are returned alongside it.
func (s *Service) SubmitBatch(reqs []Request) ([]*Job, error) {
	jobs := make([]*Job, 0, len(reqs))
	for i, r := range reqs {
		j, err := s.Submit(r.Bench, r.Opts)
		if err != nil {
			return jobs, fmt.Errorf("batch request %d (%s): %w", i, benchName(r.Bench), err)
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

func benchName(b *bench.Benchmark) string {
	if b == nil {
		return "<nil>"
	}
	return b.Name
}

// WaitAll waits for every job (duplicates allowed) and returns their
// results in order. The first failure or cancellation aborts the wait and
// is returned; canceling ctx abandons the wait without canceling the jobs.
func WaitAll(ctx context.Context, jobs []*Job) ([]*core.Result, error) {
	out := make([]*core.Result, len(jobs))
	for i, j := range jobs {
		res, err := j.Wait(ctx)
		if err != nil {
			return nil, fmt.Errorf("job %s: %w", j.ID(), err)
		}
		out[i] = res
	}
	return out, nil
}

// Job looks up a job by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns all jobs in submission order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, len(s.order))
	copy(out, s.order)
	return out
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Workers = s.cfg.Workers
	st.QueueLen = len(s.queue)
	st.Jobs = len(s.jobs)
	if s.cache != nil {
		st.CacheEntries = s.cache.Len()
	}
	return st
}

// Close stops accepting submissions, drains the queue (already-queued jobs
// still run) and waits for the workers to exit. Use CancelAll first for a
// fast shutdown.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}

// CancelAll cancels every queued or running job.
func (s *Service) CancelAll() {
	for _, j := range s.Jobs() {
		j.Cancel()
	}
}

// worker pulls jobs off the queue until the service closes.
func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.run(j)
	}
}

// run executes one job on the calling worker.
func (s *Service) run(j *Job) {
	j.mu.Lock()
	if j.state != Queued { // canceled while waiting in the queue
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	j.cancel = cancel
	j.state = Running
	j.started = time.Now()
	o := j.opts
	if o.Parallelism == 0 {
		o.Parallelism = s.cfg.JobParallelism
	}
	j.mu.Unlock()
	defer cancel()
	s.logf("job %s: running %s", j.id, j.benchmark.Name)

	// Fan the flow's progress lines into the job's own log (and through to
	// any Log hook the submitter installed).
	userLog := o.Log
	o.Log = func(format string, args ...interface{}) {
		j.appendLog(fmt.Sprintf(format, args...))
		if userLog != nil {
			userLog(format, args...)
		}
	}

	res, err := core.SynthesizeContext(ctx, j.benchmark, o)

	var st State
	switch {
	case err == nil:
		st = Done
	case ctx.Err() != nil || errors.Is(err, context.Canceled):
		st, res, err = Canceled, nil, context.Canceled
	default:
		st, res = Failed, nil
	}
	// Publish to the service (stats, in-flight removal, cache insertion)
	// before the done channel closes, so a waiter resubmitting the moment
	// Wait returns is guaranteed to hit the cache.
	s.jobFinished(j, st, res)
	j.mu.Lock()
	j.finishLocked(st, res, err)
	j.mu.Unlock()
	if err != nil {
		s.logf("job %s: %s (%v)", j.id, st, err)
	} else {
		s.logf("job %s: done in %v, %d runs, %s", j.id, j.Elapsed().Round(time.Millisecond), res.Runs, res.Final)
	}
}

// jobFinished updates service-level state after a job reached a terminal
// state (from a worker, or from Cancel on a queued job).
func (s *Service) jobFinished(j *Job, st State, res *core.Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	switch st {
	case Done:
		s.stats.Completed++
		if res != nil {
			s.stats.SimRuns += res.Runs
			if s.cache != nil {
				s.cache.Add(j.key, res)
			}
		}
	case Failed:
		s.stats.Failed++
	case Canceled:
		s.stats.Canceled++
	}
}
