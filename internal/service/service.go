// Package service turns the single-run Contango synthesizer into a
// concurrent batch service: a job manager with a fixed worker pool runs
// core.Synthesize jobs in parallel, a two-tier content-addressed result
// cache (memory LRU in front of an optional on-disk store) dedupes
// repeated submissions (hash of benchmark bytes + canonicalized options),
// identical in-flight submissions coalesce onto one run, and every job
// streams its progress log to subscribers. With Config.DataDir set the
// service is durable: finished results, progress logs and rendered SVGs
// persist as content-addressed artifacts, an append-only journal tracks
// job lifecycles, and Open replays it so a restart re-queues unfinished
// jobs and serves finished ones as disk-backed cache hits. The HTTP front
// end in this package (Server) exposes the same operations as the
// contangod JSON API; contango.go re-exports the library surface.
package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"contango/internal/analysis"
	"contango/internal/bench"
	"contango/internal/core"
	"contango/internal/corners"
	"contango/internal/flow"
	"contango/internal/obs"
	"contango/internal/sched"
	"contango/internal/store"
)

// Scheduler disciplines accepted by Config.Scheduler.
const (
	// SchedulerPack is the cost-model-driven packing scheduler: jobs are
	// granted worker slots by estimated core-seconds (shortest first, with
	// aging and soft-deadline urgency), large corner sweeps yield their slot
	// at chunk boundaries, and admission is bounded by the estimated queue
	// wait. Scheduling never changes results — only when they arrive.
	SchedulerPack = "pack"
	// SchedulerFIFO is the original channel-based first-in-first-out worker
	// pool.
	SchedulerFIFO = "fifo"
)

// Config tunes a Service.
type Config struct {
	// Workers is the worker-pool size (default: min(GOMAXPROCS, 4)).
	Workers int
	// CacheEntries bounds the in-memory tier of the result cache (default
	// 256; negative disables caching entirely, including the disk tier).
	CacheEntries int
	// QueueDepth bounds the number of jobs waiting for a worker (default
	// 4096). Submissions beyond it fail fast with ErrQueueFull.
	QueueDepth int
	// JobParallelism is the per-job stage-simulation worker budget applied
	// to submissions that leave Options.Parallelism unset. The default
	// divides GOMAXPROCS evenly across the job workers (at least 1), so a
	// fully loaded pool neither oversubscribes the host nor leaves cores
	// idle when a single large job runs alone on a big machine.
	JobParallelism int
	// DefaultPlan is applied to submissions that leave Options.Plan unset
	// (empty keeps the library default, the "paper" plan). Unlike
	// JobParallelism it shapes results, so it is applied before the job's
	// content key is computed.
	DefaultPlan string
	// DefaultCorners is applied to submissions that leave Options.Corners
	// unset (empty keeps the library default, the technology's native
	// "ispd09" pair). Like DefaultPlan it shapes results and therefore
	// participates in the job's content key.
	DefaultCorners string
	// DataDir, when non-empty, roots the durable storage layer: a
	// content-addressed artifact store (finished results, job logs, SVGs,
	// job specs) plus the job journal. Empty keeps the service purely
	// in-memory — bit-for-bit today's behavior. Use Open (not New) to
	// surface store-initialization errors.
	DataDir string
	// NoFsync skips fsync on store and journal writes. Durability across
	// power loss is lost; crash-consistency of the on-disk layout is kept.
	// Meant for tests and throwaway runs.
	NoFsync bool
	// Log, when non-nil, receives service lifecycle lines (job started,
	// finished, cache hits, recovery). Per-job progress goes to the job's
	// own log.
	Log func(format string, args ...interface{})
	// Logger, when non-nil, receives structured job-lifecycle records
	// (queued, running, cache hit, finished, failed, canceled) carrying
	// job-ID, benchmark, plan, corner-set and cache-tier attributes. When
	// only Logger is set, the printf-style lifecycle lines above are emitted
	// through it at debug level, so one handler sees everything.
	Logger *slog.Logger
	// Registry, when non-nil, is the metrics registry the service registers
	// its families on (default: a fresh private registry). Every service
	// counter lives in it — Stats and the Prometheus exposition are two
	// renderings of the same registers.
	Registry *obs.Registry
	// Scheduler selects the queueing discipline: SchedulerPack (the
	// default) or SchedulerFIFO. Scheduling shapes latency only, never
	// results: a job's result and content key are identical under either.
	Scheduler string
	// MaxQueueWait, when positive, bounds admission by estimated backlog:
	// submissions arriving while every slot is busy and the queue is
	// estimated to take longer than this to drain are rejected with a
	// *sched.BacklogError carrying a Retry-After hint (HTTP 429). Zero
	// disables the bound. Pack scheduler only.
	MaxQueueWait time.Duration
	// SplitCorners is the maximum corners a multi-corner evaluation runs
	// per worker-slot tenure under the pack scheduler: larger evaluations
	// are split into chunks with a cooperative slot yield between them, so
	// a big Monte Carlo sweep interleaves with interactive jobs instead of
	// monopolizing a worker. 0 means the default (16); negative disables
	// splitting. Splitting never changes results.
	SplitCorners int
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers > 4 {
			c.Workers = 4
		}
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4096
	}
	if c.JobParallelism <= 0 {
		c.JobParallelism = runtime.GOMAXPROCS(0) / c.Workers
		if c.JobParallelism < 1 {
			c.JobParallelism = 1
		}
	}
	if c.Scheduler == "" {
		c.Scheduler = SchedulerPack
	}
	if c.SplitCorners == 0 {
		c.SplitCorners = 16
	}
}

// Errors returned by submission.
var (
	ErrClosed    = errors.New("service: closed")
	ErrQueueFull = errors.New("service: job queue full")
	ErrNoBench   = errors.New("service: nil or empty benchmark")
)

// Request is one unit of batch submission.
type Request struct {
	Bench *bench.Benchmark
	Opts  core.Options
	// Deadline is the per-request soft completion deadline (0 = none),
	// passed through to SubmitWith.
	Deadline time.Duration
}

// Stats is a snapshot of service counters.
type Stats struct {
	Workers        int    `json:"workers"`
	Scheduler      string `json:"scheduler"`
	QueueLen       int    `json:"queue_len"`
	Jobs           int    `json:"jobs"`
	Submitted      int    `json:"submitted"`
	Coalesced      int    `json:"coalesced"`       // submissions joined to an in-flight identical job
	CacheHits      int    `json:"cache_hits"`      // submissions served from the result cache (either tier)
	CacheMisses    int    `json:"cache_misses"`    // submissions served by neither cache tier
	CacheEvictions int    `json:"cache_evictions"` // memory-tier demotions (entries persist on disk when DataDir is set)
	DiskHits       int    `json:"disk_hits"`       // cache hits served by the disk tier (subset of cache_hits)
	RecoveredJobs  int    `json:"recovered_jobs"`  // unfinished jobs re-queued from the journal at startup
	CacheEntries   int    `json:"cache_entries"`
	Completed      int    `json:"completed"`
	Failed         int    `json:"failed"`
	Canceled       int    `json:"canceled"`
	SimRuns        int    `json:"sim_runs"` // accurate-simulator invocations across executed jobs

	Rejected       int     `json:"rejected"`        // submissions refused by admission control
	DeadlineHits   int     `json:"deadline_hits"`   // deadlined jobs that finished in time
	DeadlineMisses int     `json:"deadline_misses"` // deadlined jobs that finished late (never killed)
	BacklogSeconds float64 `json:"backlog_seconds"` // estimated queue drain time (pack scheduler)
}

// Service runs synthesis jobs on a worker pool with content-addressed
// result caching and in-flight deduplication. Create one with Open (or
// New for in-memory configurations) and release it with Close or, for a
// graceful stop that preserves in-flight work in the journal, Shutdown.
type Service struct {
	cfg       Config
	queue     chan *Job   // fifo scheduler only (nil under pack)
	pool      *sched.Pool // pack scheduler only (nil under fifo)
	est       *sched.Estimator
	cache     *resultCache    // nil when caching is disabled
	st        *store.Store    // nil without DataDir
	jnl       *store.Journal  // nil without DataDir
	metrics   *serviceMetrics // all service counters (single source of truth)
	wg        sync.WaitGroup
	queueOnce sync.Once // guards close(s.queue) across Close/Shutdown

	mu       sync.Mutex
	closed   bool
	draining bool // Shutdown in progress: cancellations journal as pending
	seq      int
	jobs     map[string]*Job // by ID
	order    []*Job          // submission order
	inflight map[string]*Job // by content key, queued or running
}

// Open starts a Service. With cfg.DataDir set it opens the durable store
// and journal, starts the worker pool, and then replays the journal:
// submitted-but-unfinished jobs are re-queued (Stats.RecoveredJobs) while
// finished ones wait on disk as warm cache hits. Initialization errors
// (unwritable data dir, …) are returned rather than degrading silently to
// an in-memory service.
func Open(cfg Config) (*Service, error) {
	cfg.fill()
	if cfg.Scheduler != SchedulerPack && cfg.Scheduler != SchedulerFIFO {
		return nil, fmt.Errorf("service: unknown scheduler %q (valid: %s, %s)",
			cfg.Scheduler, SchedulerPack, SchedulerFIFO)
	}
	s := &Service{
		cfg:      cfg,
		est:      sched.NewEstimator(sched.DefaultPriors()),
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
	}
	if cfg.Scheduler == SchedulerPack {
		s.pool = sched.NewPool(sched.PoolConfig{
			Slots:      cfg.Workers,
			MaxWaiting: cfg.QueueDepth,
			MaxWait:    cfg.MaxQueueWait,
		})
	} else {
		s.queue = make(chan *Job, cfg.QueueDepth)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s.metrics = newServiceMetrics(reg, s)
	var recovered []store.Record
	if cfg.DataDir != "" {
		st, err := store.Open(cfg.DataDir, !cfg.NoFsync)
		if err != nil {
			return nil, err
		}
		jnl, recs, err := store.OpenJournal(filepath.Join(cfg.DataDir, "journal.log"), !cfg.NoFsync)
		if err != nil {
			return nil, err
		}
		st.SetMetrics(s.metrics.storeMetrics)
		jnl.SetMetrics(s.metrics.storeMetrics)
		s.st, s.jnl = st, jnl
		recovered = recs
	}
	if cfg.CacheEntries > 0 {
		s.cache = newResultCache(cfg.CacheEntries, s.st, s.metrics.cacheMisses, s.metrics.cacheEvictions)
	}
	if s.queue != nil {
		for i := 0; i < cfg.Workers; i++ {
			s.wg.Add(1)
			go s.worker()
		}
	}
	s.recoverJournal(recovered)
	return s, nil
}

// New starts a Service with cfg's worker pool. It is Open for in-memory
// configurations; with cfg.DataDir set it panics if the durable layer
// cannot be initialized — callers enabling persistence should use Open
// and handle the error.
func New(cfg Config) *Service {
	s, err := Open(cfg)
	if err != nil {
		panic(fmt.Sprintf("service.New: %v (use Open to handle store errors)", err))
	}
	return s
}

func (s *Service) logf(format string, args ...interface{}) {
	if s.cfg.Log != nil {
		s.cfg.Log(format, args...)
	} else if s.cfg.Logger != nil {
		s.cfg.Logger.Debug(fmt.Sprintf(format, args...))
	}
}

// logJob emits one structured job-lifecycle record through Config.Logger
// with the job's identifying attributes attached.
func (s *Service) logJob(j *Job, msg string, attrs ...slog.Attr) {
	if s.cfg.Logger == nil {
		return
	}
	base := []slog.Attr{
		slog.String("job", j.id),
		slog.String("bench", j.benchmark.Name),
		slog.String("plan", j.planLabel),
		slog.String("corners", j.cornersLabel),
	}
	if tier := j.CacheTier(); tier != "" {
		base = append(base, slog.String("cache_tier", tier))
	}
	s.cfg.Logger.LogAttrs(context.Background(), slog.LevelInfo, msg, append(base, attrs...)...)
}

// MetricsRegistry returns the registry holding the service's metric
// families — the backing state of both Stats and the /metrics exposition.
func (s *Service) MetricsRegistry() *obs.Registry { return s.metrics.reg }

// SubmitOpts carries per-submission scheduling hints. They shape when a
// job runs, never what it computes: nothing here participates in the
// job's content key, so a deadlined submission coalesces with (and is
// served by the cache of) the identical un-deadlined one.
type SubmitOpts struct {
	// Deadline, when positive, sets a soft completion deadline this far
	// from submission. The pack scheduler prioritizes jobs whose deadline
	// is in jeopardy; a missed deadline is recorded (job status, metrics,
	// Stats), never enforced by killing the job. Identical coalesced
	// submissions tighten the shared job to the earliest deadline.
	Deadline time.Duration
}

// Submit enqueues one synthesis run and returns its Job immediately.
// Submissions dedupe by content: if the identical run (same benchmark
// bytes, same canonicalized options) is already queued or running, the
// existing Job is returned; if its result is cached — in memory or, on a
// durable service, persisted on disk by an earlier process — a Job
// completed as a cache hit is returned without touching the worker pool.
// Opts.Engine should normally be left nil so every executed job gets its
// own simulator instance; a caller-shared Engine is used as-is and is not
// safe across concurrent jobs.
func (s *Service) Submit(b *bench.Benchmark, o core.Options) (*Job, error) {
	return s.SubmitWith(b, o, SubmitOpts{})
}

// SubmitWith is Submit with scheduling hints (soft deadline).
func (s *Service) SubmitWith(b *bench.Benchmark, o core.Options, so SubmitOpts) (*Job, error) {
	if b == nil || len(b.Sinks) == 0 {
		return nil, ErrNoBench
	}
	if o.Plan == "" {
		o.Plan = s.cfg.DefaultPlan
	}
	if o.Corners == "" {
		o.Corners = s.cfg.DefaultCorners
	}
	// Reject unparsable plan and corner-set specs up front: a bad spec
	// would only fail after queueing, and its raw string would pollute the
	// key space.
	if _, err := flow.ResolvePlan(o.Plan); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	if err := corners.Validate(o.Corners); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	key := JobKey(b, o)
	lookupStart := time.Now()
	var deadline time.Time
	if so.Deadline > 0 {
		deadline = lookupStart.Add(so.Deadline)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}

	// In-flight coalescing: an identical queued/running job serves this
	// submission too. Counters are monotonic registers, so submissions count
	// only at the points where they are actually accepted — rejected ones
	// (closed service, full queue) never touch them.
	if live, ok := s.inflight[key]; ok {
		s.metrics.submitted.Inc()
		s.metrics.coalesced.Inc()
		s.mu.Unlock()
		live.tightenDeadline(deadline)
		return live, nil
	}

	// Memory-tier cache check stays under the lock (one mutex hop) so it is
	// atomic with the in-flight map.
	if s.cache != nil {
		if res, ok := s.cache.getMemory(key); ok {
			j := s.finishCacheHitLocked(b, o, key, res, tierMemory, lookupStart, deadline)
			s.mu.Unlock()
			s.logCacheHit(j)
			return j, nil
		}
	}
	s.mu.Unlock()

	// Disk-tier lookup and spec persistence do file IO (read + decode a
	// whole tree, fsynced writes): keep them off s.mu so one slow disk op
	// never stalls concurrent submissions, stats or cancellations. Racing
	// identical submissions are harmless — both may probe the disk and
	// persist the same idempotent spec, and the re-taken lock below
	// re-checks the in-flight map before queueing.
	var diskRes *core.Result
	if s.cache != nil {
		diskRes, _ = s.cache.getDisk(key)
	}
	durable := false
	if diskRes == nil {
		durable = s.persistSubmit(b, o, key, int64(so.Deadline/time.Millisecond))
		if durable {
			// "submitted" is journaled before the job can reach any worker
			// or canceler, so no terminal record for this submission can
			// ever precede it — last-record-wins compaction stays sound.
			// The rejection paths below compensate with a terminal record
			// if the job never actually queues.
			s.journal("submitted", key)
		}
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		if durable {
			s.journal("canceled", key)
		}
		return nil, ErrClosed
	}
	if live, ok := s.inflight[key]; ok {
		// Same key: the live job's own lifecycle records resolve the
		// "submitted" we may just have appended.
		s.metrics.submitted.Inc()
		s.metrics.coalesced.Inc()
		s.mu.Unlock()
		live.tightenDeadline(deadline)
		return live, nil
	}
	// On a disk miss, re-check the memory tier: an in-flight identical job
	// seen by the first lock may have finished (cache.Add, then in-flight
	// removal) while we probed the disk — without this, that window would
	// queue a duplicate synthesis of a result that is already cached. (On
	// a disk hit the re-check must not run: getDisk already promoted the
	// result into memory, and the submission was genuinely disk-served.)
	if diskRes == nil && s.cache != nil {
		if res, ok := s.cache.getMemory(key); ok {
			j := s.finishCacheHitLocked(b, o, key, res, tierMemory, lookupStart, deadline)
			s.mu.Unlock()
			s.logCacheHit(j)
			if durable {
				// The racing job's write-through persisted the result; mark
				// our just-journaled "submitted" resolved.
				s.journal("finished", key)
			}
			return j, nil
		}
	}
	if diskRes != nil {
		// A result some earlier process computed and persisted.
		j := s.finishCacheHitLocked(b, o, key, diskRes, tierDisk, lookupStart, deadline)
		s.mu.Unlock()
		s.logCacheHit(j)
		// Converge the journal: if a crash lost the original "finished"
		// record (or recovery just resubmitted this key), the disk hit
		// proves the work is done — journal it so the next open does not
		// re-recover a completed job.
		s.journal("finished", key)
		return j, nil
	}

	feats := sched.Features{
		Plan:    planLabel(o.Plan),
		Corners: corners.Cardinality(cornersLabel(o.Corners)),
		Sinks:   b.Stats().Sinks,
	}
	j := &Job{
		id:           fmt.Sprintf("job-%04d", s.seq+1),
		key:          key,
		benchmark:    b,
		opts:         o,
		planLabel:    planLabel(o.Plan),
		cornersLabel: cornersLabel(o.Corners),
		submitted:    lookupStart,
		enqueued:     time.Now(),
		durable:      durable,
		features:     feats,
		estimate:     s.est.Estimate(feats),
		deadline:     deadline,
		svc:          s,
		state:        Queued,
		done:         make(chan struct{}),
	}
	s.seq++
	if s.pool != nil {
		// Pack scheduler: admission bounds (waiting count, estimated
		// backlog) are checked atomically here; the blocking wait for a
		// slot happens in the job's own goroutine (runPacked).
		tk, err := s.pool.Enqueue(sched.Claim{Label: j.id, Estimate: j.estimate, Deadline: deadline})
		if err != nil {
			s.mu.Unlock()
			s.metrics.rejected.Inc()
			if durable {
				s.journal("canceled", key)
			}
			if errors.Is(err, sched.ErrSaturated) {
				return nil, ErrQueueFull
			}
			return nil, err // *sched.BacklogError with a Retry-After hint
		}
		j.ticket = tk
		s.metrics.submitted.Inc()
		s.jobs[j.id] = j
		s.order = append(s.order, j)
		s.inflight[key] = j
		s.wg.Add(1)
		s.mu.Unlock()
		go s.runPacked(j)
	} else {
		select {
		case s.queue <- j:
		default:
			s.mu.Unlock()
			s.metrics.rejected.Inc()
			if durable {
				s.journal("canceled", key)
			}
			return nil, ErrQueueFull
		}
		s.metrics.submitted.Inc()
		s.jobs[j.id] = j
		s.order = append(s.order, j)
		s.inflight[key] = j
		s.mu.Unlock()
	}
	s.logf("job %s: queued %s (%d sinks)", j.id, b.Name, len(b.Sinks))
	s.logJob(j, "job queued", slog.Int("sinks", len(b.Sinks)))
	return j, nil
}

// runPacked is the pack scheduler's per-job driver: it waits for the pool
// to grant the job a slot (abandoning the wait if the job is canceled
// first — its done channel closes), runs the job, and releases the slot.
func (s *Service) runPacked(j *Job) {
	defer s.wg.Done()
	tk := j.ticket
	if err := s.pool.Await(tk, j.done); err != nil {
		return // canceled while waiting; Cancel already finished the job
	}
	defer s.pool.Release(tk)
	s.metrics.queueWait.With(j.planLabel).Observe(tk.QueueWait().Seconds())
	s.run(j) // no-ops if the job was canceled between grant and here
}

// finishCacheHitLocked registers a submission served from the result cache
// as an instantly completed job. Called with s.mu held; the caller logs
// (logCacheHit) after releasing the lock.
func (s *Service) finishCacheHitLocked(b *bench.Benchmark, o core.Options, key string, res *core.Result, tier cacheTier, lookupStart time.Time, deadline time.Time) *Job {
	j := &Job{
		id:           fmt.Sprintf("job-%04d", s.seq+1),
		key:          key,
		benchmark:    b,
		opts:         o,
		planLabel:    planLabel(o.Plan),
		cornersLabel: cornersLabel(o.Corners),
		submitted:    lookupStart,
		deadline:     deadline,
		svc:          s,
		state:        Queued,
		done:         make(chan struct{}),
	}
	s.seq++
	s.metrics.submitted.Inc()
	s.metrics.cacheHits.With(string(tier)).Inc()
	s.metrics.completed.With(j.planLabel, j.cornersLabel).Inc()
	if o.ECO != nil {
		s.metrics.ecoJobs.With("cache_hit").Inc()
	}
	j.cacheHit = true
	j.cacheTier = tier
	j.started = j.submitted
	// Cache-hit jobs get a minimal in-memory trace (the whole lifetime was
	// the cache lookup). It is never persisted: the executed job's artifact
	// under the same key already holds the real flow trace.
	tr := obs.NewTrace(j.id, j.submitted)
	root := tr.Root()
	root.SetArg("benchmark", b.Name)
	root.SetArg("plan", j.planLabel)
	root.SetArg("corners", j.cornersLabel)
	root.SetArg("cache_tier", string(tier))
	root.ChildSpan("cache_lookup", j.submitted, time.Now())
	tr.Finish()
	j.trace = tr
	j.mu.Lock()
	j.finishLocked(Done, res, nil)
	j.mu.Unlock()
	s.accountDeadline(j)
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	return j
}

// accountDeadline records a successfully finished job's soft-deadline
// outcome (hit or miss). Deadlines are advisory: a miss is counted and
// surfaced on the job, nothing is killed. Failed and canceled jobs are
// not counted — they have no meaningful deadline outcome.
func (s *Service) accountDeadline(j *Job) {
	j.mu.Lock()
	deadline, finished := j.deadline, j.finished
	if deadline.IsZero() {
		j.mu.Unlock()
		return
	}
	missed := finished.After(deadline)
	j.deadlineMissed = missed
	j.mu.Unlock()
	if missed {
		s.metrics.deadlines.With("miss").Inc()
	} else {
		s.metrics.deadlines.With("hit").Inc()
	}
}

func (s *Service) logCacheHit(j *Job) {
	j.appendLog(fmt.Sprintf("%s: served from result cache (%s)", j.benchmark.Name, j.cacheTier))
	s.logf("job %s: %s cache hit for %s", j.id, j.cacheTier, j.benchmark.Name)
	s.logJob(j, "job served from cache")
}

// SubmitBatch submits every request, returning one Job per request in
// order. Requests that dedupe against the cache or an in-flight run still
// produce an entry (possibly the same *Job several times). On a submission
// error the jobs submitted so far are returned alongside it.
func (s *Service) SubmitBatch(reqs []Request) ([]*Job, error) {
	jobs := make([]*Job, 0, len(reqs))
	for i, r := range reqs {
		j, err := s.SubmitWith(r.Bench, r.Opts, SubmitOpts{Deadline: r.Deadline})
		if err != nil {
			return jobs, fmt.Errorf("batch request %d (%s): %w", i, benchName(r.Bench), err)
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

func benchName(b *bench.Benchmark) string {
	if b == nil {
		return "<nil>"
	}
	return b.Name
}

// WaitAll waits for every job (duplicates allowed) and returns their
// results in order. The first failure or cancellation aborts the wait and
// is returned; canceling ctx abandons the wait without canceling the jobs.
// Each returned Result is the waiter's own defensive copy.
func WaitAll(ctx context.Context, jobs []*Job) ([]*core.Result, error) {
	out := make([]*core.Result, len(jobs))
	for i, j := range jobs {
		res, err := j.Wait(ctx)
		if err != nil {
			return nil, fmt.Errorf("job %s: %w", j.ID(), err)
		}
		out[i] = res
	}
	return out, nil
}

// Job looks up a job by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns all jobs in submission order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, len(s.order))
	copy(out, s.order)
	return out
}

// Stats returns a snapshot of the service counters. The counters are read
// from the metrics registry — the same registers the Prometheus exposition
// at /metrics renders — so the two surfaces cannot drift.
func (s *Service) Stats() Stats {
	m := s.metrics
	st := Stats{
		Submitted:      int(m.submitted.Value()),
		Coalesced:      int(m.coalesced.Value()),
		CacheHits:      int(m.cacheHits.Total()),
		CacheMisses:    int(m.cacheMisses.Value()),
		CacheEvictions: int(m.cacheEvictions.Value()),
		DiskHits:       int(m.cacheHits.With(string(tierDisk)).Value()),
		RecoveredJobs:  int(m.recovered.Value()),
		Completed:      int(m.completed.Total()),
		Failed:         int(m.failed.Total()),
		Canceled:       int(m.canceled.Total()),
		SimRuns:        int(m.simRuns.Value()),
		Rejected:       int(m.rejected.Value()),
		DeadlineHits:   int(m.deadlines.With("hit").Value()),
		DeadlineMisses: int(m.deadlines.With("miss").Value()),
	}
	s.mu.Lock()
	st.Workers = s.cfg.Workers
	st.Scheduler = s.cfg.Scheduler
	st.Jobs = len(s.jobs)
	s.mu.Unlock()
	if s.pool != nil {
		st.QueueLen = s.pool.Waiting()
		st.BacklogSeconds = s.pool.Backlog().Seconds()
	} else {
		st.QueueLen = len(s.queue)
	}
	if s.cache != nil {
		st.CacheEntries = s.cache.Len()
	}
	return st
}

// Close stops accepting submissions, drains the queue (already-queued jobs
// still run) and waits for the workers to exit. Use Shutdown for a
// deadline-bounded stop that journals unfinished work, or CancelAll first
// for a fast abandon.
func (s *Service) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.closeQueue()
	s.wg.Wait()
	s.closeJournal()
}

// closeQueue closes the fifo worker queue exactly once (no-op under the
// pack scheduler, whose per-job goroutines exit through the WaitGroup).
func (s *Service) closeQueue() {
	s.queueOnce.Do(func() {
		if s.queue != nil {
			close(s.queue)
		}
	})
}

// Shutdown stops the service gracefully: intake stops immediately, then
// in-flight jobs get until ctx is done to finish on their own. Jobs still
// unfinished at the deadline are canceled and — on a durable service —
// journaled as pending, so the next Open re-queues exactly the work this
// process did not complete. Finished jobs are already persisted and
// journaled by the time their waiters observe completion, so a restart
// serves them as disk-backed cache hits.
func (s *Service) Shutdown(ctx context.Context) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.closeQueue()
		s.wg.Wait()
		s.closeJournal()
		return
	}
	s.closed = true
	s.mu.Unlock()

	// Grace period: wait for in-flight and queued jobs to drain naturally.
	for _, j := range s.Jobs() {
		select {
		case <-j.Done():
			continue
		case <-ctx.Done():
		}
		break
	}
	if ctx.Err() != nil {
		// Out of patience: unfinished work is journaled as pending (via the
		// draining flag) and canceled.
		s.mu.Lock()
		s.draining = true
		s.mu.Unlock()
		s.CancelAll()
	}
	s.closeQueue()
	s.wg.Wait()
	s.closeJournal()
}

func (s *Service) closeJournal() {
	if s.jnl != nil {
		if err := s.jnl.Close(); err != nil {
			s.logf("journal close: %v", err)
		}
	}
}

// CancelAll cancels every queued or running job.
func (s *Service) CancelAll() {
	for _, j := range s.Jobs() {
		j.Cancel()
	}
}

// worker pulls jobs off the queue until the service closes.
func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.run(j)
	}
}

// run executes one job on the calling worker.
func (s *Service) run(j *Job) {
	j.mu.Lock()
	if j.state != Queued { // canceled while waiting in the queue
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	j.cancel = cancel
	j.state = Running
	j.started = time.Now()
	o := j.opts
	if o.Parallelism == 0 {
		o.Parallelism = s.cfg.JobParallelism
	}
	started := j.started
	j.mu.Unlock()
	defer cancel()
	if j.durable {
		s.journal("started", j.key)
	}
	s.logf("job %s: running %s", j.id, j.benchmark.Name)
	s.logJob(j, "job running")

	// The job's flow trace: a root span over the whole submit→terminal
	// lifetime with children for the submit-time cache lookup, the queue
	// wait, each executed flow pass (via the SpanHook below), the accurate
	// evaluator arming, and result persistence.
	tr := obs.NewTrace(j.id, j.submitted)
	root := tr.Root()
	root.SetArg("benchmark", j.benchmark.Name)
	root.SetArg("plan", j.planLabel)
	root.SetArg("corners", j.cornersLabel)
	root.SetArg("key", j.key)
	if !j.enqueued.IsZero() {
		root.ChildSpan("cache_lookup", j.submitted, j.enqueued)
		root.ChildSpan("queue_wait", j.enqueued, started)
	}

	// Under the pack scheduler, wrap the accurate evaluator so large
	// multi-corner evaluations run in chunks with a cooperative slot yield
	// between them: a waiting job (an urgent or short one, by the pool's
	// ranking) borrows the slot while a big sweep is mid-flight. The shim
	// changes only when simulations run, never which — results and cache
	// keys are bit-identical with and without it.
	if tk := j.ticket; tk != nil && s.cfg.SplitCorners > 0 {
		userWrap := o.WrapEval
		o.WrapEval = func(ev analysis.Evaluator) analysis.Evaluator {
			if userWrap != nil {
				ev = userWrap(ev)
			}
			return &sched.Chunked{
				Eval:  ev,
				Chunk: s.cfg.SplitCorners,
				Yield: func() error {
					yielded, yerr := s.pool.Yield(tk, ctx.Done())
					if yielded {
						s.metrics.yields.Inc()
					}
					return yerr
				},
				OnSplit: func(int) { s.metrics.splits.Inc() },
			}
		}
	}

	// Fan the flow's progress lines into the job's own log (and through to
	// any Log hook the submitter installed).
	userLog := o.Log
	o.Log = func(format string, args ...interface{}) {
		j.appendLog(fmt.Sprintf(format, args...))
		if userLog != nil {
			userLog(format, args...)
		}
	}
	// Bracket instrumented flow phases: each executed pass (and the
	// evaluator arming) becomes a child span on the trace and an observation
	// in the per-pass duration histogram. A submitter-installed hook still
	// sees every phase.
	userSpan := o.SpanHook
	o.SpanHook = func(kind, name string) func() {
		spanName := name
		switch kind {
		case "pass":
			spanName = "pass:" + name
		case "eco":
			// The eco pass's restore/apply phases show up as their own
			// span kind in the per-job trace artifact.
			spanName = "eco:" + name
		}
		sp := root.Child(spanName)
		t0 := time.Now()
		var userEnd func()
		if userSpan != nil {
			userEnd = userSpan(kind, name)
		}
		return func() {
			sp.End()
			d := time.Since(t0).Seconds()
			switch kind {
			case "pass":
				s.metrics.passes.With(name).Inc()
				s.metrics.passDur.With(name).Observe(d)
			case "eval":
				s.metrics.evalDur.Observe(d)
			}
			if userEnd != nil {
				userEnd()
			}
		}
	}

	res, err := core.SynthesizeContext(ctx, j.benchmark, o)

	var st State
	switch {
	case err == nil:
		st = Done
	case ctx.Err() != nil || errors.Is(err, context.Canceled):
		st, res, err = Canceled, nil, context.Canceled
	default:
		st, res = Failed, nil
	}
	// Persist and publish to the service (cache insertion + write-through,
	// artifacts, journal, stats, in-flight removal) before the done channel
	// closes, so a waiter resubmitting the moment Wait returns is
	// guaranteed to hit the cache — and, on a durable service, a process
	// restarted after Wait returned is guaranteed a disk hit.
	if st == Done && res != nil {
		sp := root.Child("persist")
		if s.cache != nil {
			if derr := s.cache.Add(j.key, res); derr != nil {
				s.logf("job %s: result not persisted: %v", j.id, derr)
			}
		}
		s.persistJobLog(j)
		sp.End()
	}
	// Close the trace and persist it alongside the job's other artifacts
	// before waiters observe completion, so a restart (or another process
	// sharing the data dir) can serve the executed run's trace. Cache-hit
	// jobs never reach here and never overwrite it.
	tr.Finish()
	if st == Done {
		if data, terr := tr.ChromeJSON(); terr == nil {
			s.putArtifact(j.key, artTrace, data)
		}
	}
	s.jobFinished(j, st, res)
	j.mu.Lock()
	j.trace = tr
	j.finishLocked(st, res, err)
	j.mu.Unlock()
	if st == Done {
		// Feed the cost model: the observed runtime refines this feature
		// class's estimate, and the predicted-vs-actual ratio goes to the
		// calibration histogram (1.0 = perfect prediction).
		elapsed := time.Since(started)
		s.est.Observe(j.features, elapsed)
		if j.estimate > 0 {
			s.metrics.estRatio.Observe(elapsed.Seconds() / j.estimate.Seconds())
		}
		s.accountDeadline(j)
	}
	if err != nil {
		s.logf("job %s: %s (%v)", j.id, st, err)
		s.logJob(j, "job "+string(st), slog.String("error", err.Error()))
	} else {
		s.logf("job %s: done in %v, %d runs, %s", j.id, j.Elapsed().Round(time.Millisecond), res.Runs, res.Final)
		s.logJob(j, "job finished",
			slog.Duration("elapsed", j.Elapsed()),
			slog.Int("sim_runs", res.Runs))
	}
}

// jobFinished updates service-level state after a job reached a terminal
// state (from a worker, or from Cancel on a queued job) and — for durable
// jobs, the only ones with a journaled "submitted" to resolve — journals
// the transition. The journal append (an fsync) runs after s.mu is
// released so disk latency never serializes the whole service; per-key
// ordering is preserved because a job's transitions come from one
// goroutine.
func (s *Service) jobFinished(j *Job, st State, res *core.Result) {
	s.mu.Lock()
	kind := ""
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	switch st {
	case Done:
		kind = "finished"
	case Failed:
		kind = "failed"
	case Canceled:
		if s.draining {
			// Shutdown interrupted this job; the next Open re-queues it.
			kind = "pending"
		} else {
			kind = "canceled"
		}
	}
	s.mu.Unlock()
	switch st {
	case Done:
		s.metrics.completed.With(j.planLabel, j.cornersLabel).Inc()
		if res != nil {
			s.metrics.observeResult(res)
		}
		s.ecoOutcome(j, "done")
	case Failed:
		s.metrics.failed.With(j.planLabel, j.cornersLabel).Inc()
		s.ecoOutcome(j, "failed")
	case Canceled:
		s.metrics.canceled.With(j.planLabel, j.cornersLabel).Inc()
		s.ecoOutcome(j, "canceled")
	}
	if j.durable && kind != "" {
		s.journal(kind, j.key)
	}
}
