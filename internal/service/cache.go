package service

import (
	"bytes"
	"errors"

	"container/list"
	"sync"

	"contango/internal/core"
	"contango/internal/obs"
	"contango/internal/store"
)

// cacheTier says which tier served a cache hit.
type cacheTier string

const (
	tierMemory cacheTier = "memory"
	tierDisk   cacheTier = "disk"
)

// resultCache is a two-tier content-addressed cache of finished synthesis
// results: a bounded in-memory LRU in front of an optional durable object
// store. Writes go through to disk immediately (so a finished result is
// durable the moment it is cached, not when it happens to be evicted),
// which makes memory eviction a pure demotion — the entry stays servable
// from the disk tier. A memory miss consults the store, decodes the
// persisted result and promotes it back into the LRU. Corrupt blobs are
// quarantined by the store and degrade to plain misses.
//
// Keys are JobKey content addresses, so a hit at either tier is exact:
// the same benchmark bytes and the same canonicalized options. Values are
// shared *core.Result pointers; the service boundary (Job.Result) hands
// out defensive clones so callers can never mutate a cached entry.
type resultCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used
	items map[string]*list.Element
	disk  *store.Store // nil = memory only

	misses    *obs.Counter // submissions served by neither tier
	evictions *obs.Counter // memory demotions (entries remain on disk when a store is attached)
}

type cacheEntry struct {
	key string
	res *core.Result
}

// newResultCache returns a cache holding up to max entries in memory
// (max >= 1), backed by disk when a store is given. Misses and evictions
// count directly into the service's registry counters (nil-safe no-ops
// when unset).
func newResultCache(max int, disk *store.Store, misses, evictions *obs.Counter) *resultCache {
	return &resultCache{
		max:       max,
		order:     list.New(),
		items:     make(map[string]*list.Element),
		disk:      disk,
		misses:    misses,
		evictions: evictions,
	}
}

// Get returns the cached result for key and the tier that served it,
// refreshing recency and promoting disk hits back into memory.
func (c *resultCache) Get(key string) (*core.Result, cacheTier, bool) {
	if res, ok := c.getMemory(key); ok {
		return res, tierMemory, true
	}
	if res, ok := c.getDisk(key); ok {
		return res, tierDisk, true
	}
	return nil, "", false
}

// getMemory consults only the memory tier (cheap: one mutex hop). The
// service calls this under its own lock; the disk tier is consulted
// off-lock via getDisk so one slow disk decode never stalls the whole
// service.
func (c *resultCache) getMemory(key string) (*core.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// getDisk consults the disk tier after a memory miss, promoting a hit
// back into the LRU. A full miss (no disk tier, blob absent, quarantined,
// or undecodable) is counted here — getMemory and getDisk together see
// exactly one miss per unserved submission.
func (c *resultCache) getDisk(key string) (*core.Result, bool) {
	if c.disk != nil {
		// Disk read and decode happen outside both the cache and service
		// locks: promotions must not stall concurrent hits or submissions.
		if data, err := c.disk.Get(ResultArtifactKey(key)); err == nil {
			if res, err := core.DecodeResult(bytes.NewReader(data)); err == nil {
				c.mu.Lock()
				c.insertLocked(key, res)
				c.mu.Unlock()
				return res, true
			}
			// Decoded fine at the framing layer but not at the codec layer:
			// drop the blob so the next miss re-runs instead of re-failing.
			_ = c.disk.Delete(ResultArtifactKey(key))
		}
	}
	c.misses.Inc()
	return nil, false
}

// Add inserts (or refreshes) a result in the memory tier and writes it
// through to the disk tier. The disk write failing (or there being no disk
// tier) never fails the Add — the memory tier still serves the entry — but
// the error is returned so the service can log lost durability.
func (c *resultCache) Add(key string, res *core.Result) error {
	var diskErr error
	if c.disk != nil {
		var buf bytes.Buffer
		if err := core.EncodeResult(&buf, res); err != nil {
			diskErr = err
		} else {
			diskErr = c.disk.Put(ResultArtifactKey(key), buf.Bytes())
		}
	}
	c.mu.Lock()
	c.insertLocked(key, res)
	c.mu.Unlock()
	return diskErr
}

// insertLocked puts a result at the front of the LRU, demoting the
// least-recently-used entries beyond capacity. Callers hold c.mu.
func (c *resultCache) insertLocked(key string, res *core.Result) {
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
}

// Len returns the number of results in the memory tier.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// errNoStore is returned by artifact lookups on a service without DataDir.
var errNoStore = errors.New("service: no durable store configured")
