package service

import (
	"container/list"
	"sync"

	"contango/internal/core"
)

// resultCache is a content-addressed LRU cache of finished synthesis
// results. Keys are JobKey content addresses, so a hit is exact: the same
// benchmark bytes and the same canonicalized options. Values are shared
// *core.Result pointers and must be treated as read-only by callers.
type resultCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	res *core.Result
}

// newResultCache returns a cache holding up to max entries (max >= 1).
func newResultCache(max int) *resultCache {
	return &resultCache{
		max:   max,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached result for key, refreshing its recency.
func (c *resultCache) Get(key string) (*core.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Add inserts (or refreshes) a result, evicting the least recently used
// entries beyond capacity.
func (c *resultCache) Add(key string, res *core.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached results.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
