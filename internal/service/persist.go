// Durable-storage glue for the Service: job-spec persistence, journal
// replay and recovery, and artifact access for the HTTP layer. Everything
// here is a no-op on a service without Config.DataDir.
package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"contango/internal/bench"
	"contango/internal/core"
	"contango/internal/store"
)

// jobSpec is the persisted submission: enough to re-create the exact same
// job (same content key) in a later process. The benchmark travels as its
// canonical text serialization, the options as the wire subset — which is
// why only wire-representable submissions are durable.
type jobSpec struct {
	Bench   string      `json:"bench"`
	Options OptionsWire `json:"options"`
}

// Artifact-kind suffixes under a job's content key in the object store.
const (
	artResult = "result" // encoded core.Result (written by the cache tier)
	artLog    = "log"    // the job's progress log, one line per row
	artSVG    = "svg"    // rendered clock tree (written lazily on first render)
	artJob    = "job"    // the jobSpec that reproduces the submission
	artTrace  = "trace"  // Chrome trace-event JSON of the executed run's flow
)

// ArtifactNames lists the artifact kinds a durable job may have.
func ArtifactNames() []string { return []string{artResult, artLog, artSVG, artJob, artTrace} }

// ArtifactInfo describes one persisted artifact of a job.
type ArtifactInfo struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
}

// artifactKey maps (job key, artifact name) to the store key.
func artifactKey(key, name string) string { return key + "." + name }

// ResultArtifactKey returns the object-store key under which a run's
// encoded result persists. It is the naming contract shared by the
// service's disk cache tier and the contango CLI's -cache-dir (which may
// point at a contangod -data-dir), so the two surfaces can never drift.
func ResultArtifactKey(jobKey string) string { return artifactKey(jobKey, artResult) }

// journal appends one lifecycle record (a no-op on in-memory services).
// Callers invoke it after releasing s.mu: the append fsyncs, and disk
// latency must never serialize the service's hot paths.
func (s *Service) journal(kind, key string) {
	if s.jnl == nil {
		return
	}
	if _, err := s.jnl.Append(kind, key); err != nil {
		s.logf("journal %s %s: %v", kind, shortKey(key), err)
	}
}

// persistSubmit makes a submission durable before it is queued: its spec
// goes to the object store so a later process can re-create the job.
// It reports whether the spec was persisted — only then does the caller
// journal "submitted" (a journal record without a spec would be
// unrecoverable noise). Jobs whose options are not wire-representable
// (custom Engine, Tech, Ladder — the spec would not reproduce the content
// key) are skipped: they run normally and their results still persist via
// the cache write-through, but a crash cannot re-queue them. Runs without
// s.mu held: the write is idempotent, so racing identical submissions are
// safe.
func (s *Service) persistSubmit(b *bench.Benchmark, o core.Options, key string, deadlineMS int64) bool {
	if s.st == nil {
		return false
	}
	spec := jobSpec{Options: optionsToWire(o)}
	// The deadline travels in the spec as a relative duration (it cannot
	// come from optionsToWire — it is a submission hint, not an option) so
	// a recovered job gets a fresh window of the same length. It does not
	// perturb the spec's content key: OptionsWire.Options ignores it.
	spec.Options.DeadlineMS = deadlineMS
	var bb bytes.Buffer
	if err := bench.Write(&bb, b); err != nil {
		s.logf("job %s: not durable (benchmark serialization: %v)", shortKey(key), err)
		return false
	}
	spec.Bench = bb.String()
	if roundTrip, err := specKey(spec); err != nil || roundTrip != key {
		s.logf("job %s: not durable (library-only options do not round-trip the content key)", shortKey(key))
		return false
	}
	data, err := json.Marshal(spec)
	if err != nil {
		s.logf("job %s: not durable (%v)", shortKey(key), err)
		return false
	}
	if err := s.st.Put(artifactKey(key, artJob), data); err != nil {
		s.logf("job %s: not durable (%v)", shortKey(key), err)
		return false
	}
	return true
}

// specKey recomputes the content key a persisted spec reproduces.
func specKey(spec jobSpec) (string, error) {
	b, err := bench.Read(strings.NewReader(spec.Bench))
	if err != nil {
		return "", err
	}
	return JobKey(b, spec.Options.Options()), nil
}

// persistJobLog writes the job's progress log artifact. Only executed jobs
// persist logs — a cache-hit job would otherwise overwrite the original
// run's log with its one-line "served from cache" note.
func (s *Service) persistJobLog(j *Job) {
	if s.st == nil {
		return
	}
	lines := j.Logs()
	if err := s.st.Put(artifactKey(j.key, artLog), []byte(strings.Join(lines, "\n"))); err != nil {
		s.logf("job %s: log not persisted: %v", j.id, err)
	}
}

// recoverJournal replays the compacted journal: every job whose latest
// record is non-terminal lost its run to the previous process's death and
// is re-queued (counted in Stats.RecoveredJobs). Damaged or irreproducible
// specs are logged and skipped — recovery never fails startup.
func (s *Service) recoverJournal(recs []store.Record) {
	for _, r := range recs {
		if r.Terminal() {
			continue
		}
		data, err := s.st.Get(artifactKey(r.Key, artJob))
		if err != nil {
			s.logf("recovery: job %s: spec unavailable: %v", shortKey(r.Key), err)
			continue
		}
		var spec jobSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			s.logf("recovery: job %s: bad spec: %v", shortKey(r.Key), err)
			continue
		}
		b, err := bench.Read(strings.NewReader(spec.Bench))
		if err != nil {
			s.logf("recovery: job %s: bad benchmark: %v", shortKey(r.Key), err)
			continue
		}
		o := spec.Options.Options()
		// A recovered ECO job's spec holds only the base key and delta; the
		// base tree re-hydrates from the base run's result artifact. A base
		// evicted from the store since the crash is a skip, not a failure.
		if err := s.hydrateECO(&o); err != nil {
			s.logf("recovery: job %s: eco base unavailable: %v", shortKey(r.Key), err)
			continue
		}
		j, err := s.SubmitWith(b, o, SubmitOpts{Deadline: spec.Options.Deadline()})
		if err != nil {
			s.logf("recovery: job %s: resubmission failed: %v", shortKey(r.Key), err)
			continue
		}
		if j.CacheHit() {
			// The crash lost only the "finished" record, not the result;
			// the submission converged the journal and nothing re-runs —
			// that is not a recovered job.
			s.logf("recovery: job %s (%s) already finished on disk", j.ID(), b.Name)
			continue
		}
		s.metrics.recovered.Inc()
		s.logf("recovery: re-queued job %s (%s, %s)", j.ID(), b.Name, shortKey(r.Key))
	}
}

// Artifact returns the persisted artifact of the given kind for a job
// content key. It fails with errNoStore on an in-memory service, with an
// error matching store.ErrNotFound when the artifact does not exist (or
// was quarantined as corrupt), and rejects unknown kinds.
func (s *Service) Artifact(key, name string) ([]byte, error) {
	if s.st == nil {
		return nil, errNoStore
	}
	if !validArtifactName(name) {
		return nil, fmt.Errorf("service: unknown artifact %q", name)
	}
	return s.st.Get(artifactKey(key, name))
}

// Artifacts lists the persisted artifacts for a job content key (empty on
// an in-memory service).
func (s *Service) Artifacts(key string) []ArtifactInfo {
	if s.st == nil {
		return nil
	}
	var out []ArtifactInfo
	for _, name := range ArtifactNames() {
		if size, ok := s.st.Size(artifactKey(key, name)); ok {
			out = append(out, ArtifactInfo{Name: name, Size: size})
		}
	}
	return out
}

// Durable reports whether the service has a durable store attached.
func (s *Service) Durable() bool { return s.st != nil }

// putArtifact persists one artifact blob (no-op without a store).
func (s *Service) putArtifact(key, name string, data []byte) {
	if s.st == nil {
		return
	}
	if err := s.st.Put(artifactKey(key, name), data); err != nil {
		s.logf("artifact %s.%s not persisted: %v", shortKey(key), name, err)
	}
}

// getArtifact reads one artifact blob (nil without a store or on a miss).
func (s *Service) getArtifact(key, name string) []byte {
	if s.st == nil {
		return nil
	}
	data, err := s.st.Get(artifactKey(key, name))
	if err != nil {
		if !errors.Is(err, store.ErrNotFound) {
			s.logf("artifact %s.%s unreadable: %v", shortKey(key), name, err)
		}
		return nil
	}
	return data
}

func validArtifactName(name string) bool {
	for _, n := range ArtifactNames() {
		if n == name {
			return true
		}
	}
	return false
}

// optionsToWire projects the wire-representable subset of options, the
// inverse of OptionsWire.Options for that subset.
func optionsToWire(o core.Options) OptionsWire {
	w := OptionsWire{
		Plan:           o.Plan,
		Corners:        o.Corners,
		FastSim:        o.FastSim,
		Gamma:          o.Gamma,
		LargeInverters: o.LargeInverters,
		MaxRounds:      o.MaxRounds,
		Cycles:         o.Cycles,
		BufferStep:     o.BufferStep,
		Parallelism:    o.Parallelism,
		FullEval:       o.FullEval,
	}
	for name, on := range o.SkipStages {
		if on {
			w.SkipStages = append(w.SkipStages, name)
		}
	}
	sort.Strings(w.SkipStages)
	if o.ECO != nil && o.ECO.Delta != nil {
		// The spec carries only the key material (base key + canonical
		// delta text): enough to round-trip the content key, and the
		// recovery path re-hydrates the base tree from its result artifact.
		w.ECOBase = o.ECO.BaseKey
		w.ECODelta = o.ECO.Delta.String()
	}
	return w
}

// shortKey abbreviates a content key for log lines.
func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}
