package service

import (
	"contango/internal/bench"
	"contango/internal/core"
)

// Sweep describes a parameter sweep: each non-empty axis replaces the base
// option's value, and the expansion is the cross product of all axes. An
// empty axis keeps the base value (one point on that axis).
type Sweep struct {
	Gammas         []float64 `json:"gammas,omitempty"`
	MaxRounds      []int     `json:"max_rounds,omitempty"`
	LargeInverters []bool    `json:"large_inverters,omitempty"`
	// Plans sweeps the synthesis pipeline: built-in plan names or plan-spec
	// strings (a plan-matrix run in one batch).
	Plans []string `json:"plans,omitempty"`
	// Corners sweeps the PVT corner set: built-in names or mc:<n>:<seed>
	// specs (a corner-matrix run in one batch).
	Corners []string `json:"corners,omitempty"`
}

// Expand returns one Options per sweep point, derived from base. With no
// axes set it returns just base.
func (sw Sweep) Expand(base core.Options) []core.Options {
	out := []core.Options{base}
	if len(sw.Plans) > 0 {
		out = expandAxis(out, len(sw.Plans), func(o *core.Options, i int) { o.Plan = sw.Plans[i] })
	}
	if len(sw.Corners) > 0 {
		out = expandAxis(out, len(sw.Corners), func(o *core.Options, i int) { o.Corners = sw.Corners[i] })
	}
	if len(sw.Gammas) > 0 {
		out = expandAxis(out, len(sw.Gammas), func(o *core.Options, i int) { o.Gamma = sw.Gammas[i] })
	}
	if len(sw.MaxRounds) > 0 {
		out = expandAxis(out, len(sw.MaxRounds), func(o *core.Options, i int) { o.MaxRounds = sw.MaxRounds[i] })
	}
	if len(sw.LargeInverters) > 0 {
		out = expandAxis(out, len(sw.LargeInverters), func(o *core.Options, i int) { o.LargeInverters = sw.LargeInverters[i] })
	}
	return out
}

func expandAxis(in []core.Options, n int, set func(*core.Options, int)) []core.Options {
	out := make([]core.Options, 0, len(in)*n)
	for _, o := range in {
		for i := 0; i < n; i++ {
			v := o
			set(&v, i)
			out = append(out, v)
		}
	}
	return out
}

// SweepRequests crosses the benchmarks with the sweep points, producing the
// batch request list for Service.SubmitBatch.
func SweepRequests(benches []*bench.Benchmark, base core.Options, sw Sweep) []Request {
	opts := sw.Expand(base)
	out := make([]Request, 0, len(benches)*len(opts))
	for _, b := range benches {
		for _, o := range opts {
			out = append(out, Request{Bench: b, Opts: o})
		}
	}
	return out
}

// ISPD09Requests builds one request per ISPD'09 suite benchmark with the
// given options — the issue's "whole suite" batch in one call.
func ISPD09Requests(o core.Options) []Request {
	suite := bench.ISPD09Suite()
	out := make([]Request, len(suite))
	for i, b := range suite {
		out[i] = Request{Bench: b, Opts: o}
	}
	return out
}
