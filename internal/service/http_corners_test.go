package service

import (
	"context"
	"net/http"
	"testing"

	"contango/internal/corners"
)

// TestHTTPCornersListing: GET /api/v1/corners describes the built-in sets
// with instantiated corners and roles.
func TestHTTPCornersListing(t *testing.T) {
	ts, _ := testServer(t, 1)
	resp, err := http.Get(ts.URL + "/api/v1/corners")
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Default string         `json:"default"`
		Corners []corners.Info `json:"corners"`
	}
	decode(t, resp, http.StatusOK, &out)
	if out.Default != corners.DefaultName {
		t.Errorf("default=%q want %q", out.Default, corners.DefaultName)
	}
	if len(out.Corners) != 3 {
		t.Fatalf("listed sets=%d want 3", len(out.Corners))
	}
	for _, in := range out.Corners {
		if len(in.Corners) == 0 {
			t.Errorf("set %q listed without instantiated corners", in.Name)
		}
	}
}

// TestHTTPSubmitCorners: a custom corner set flows through submission to a
// per-corner breakdown in the finished result; a bad spec is a 400.
func TestHTTPSubmitCorners(t *testing.T) {
	ts, _ := testServer(t, 1)

	resp := postJSON(t, ts.URL+"/api/v1/jobs", SubmitRequest{
		BenchText: benchText(t, "corner-job", 1),
		Options: OptionsWire{MaxRounds: 1, Cycles: -1, Corners: "pvt5",
			SkipStages: []string{"tbsz", "twsz", "twsn", "bwsn"}},
	})
	var jw JobWire
	decode(t, resp, http.StatusAccepted, &jw)
	done := pollDone(t, ts.URL, jw.ID)
	if done.State != Done {
		t.Fatalf("job state %s: %s", done.State, done.Error)
	}
	final := done.Result.Final
	if len(final.PerCorner) != 5 {
		t.Fatalf("wire per-corner rows=%d want 5: %+v", len(final.PerCorner), final)
	}
	if final.CLRSpreadPs <= 0 || final.WorstCorner == "" {
		t.Errorf("spread/attribution missing on the wire: %+v", final)
	}

	// Invalid spec: rejected before queueing.
	resp = postJSON(t, ts.URL+"/api/v1/jobs", SubmitRequest{
		BenchText: benchText(t, "corner-job", 1),
		Options:   OptionsWire{Corners: "mc:zero:1"},
	})
	var apiErr apiError
	decode(t, resp, http.StatusBadRequest, &apiErr)
	if apiErr.Error == "" {
		t.Error("400 carried no error body")
	}
}

// TestServiceDefaultCorners: Config.DefaultCorners applies to submissions
// that leave the spec empty and participates in the content key.
func TestServiceDefaultCorners(t *testing.T) {
	svc := New(Config{Workers: 1, DefaultCorners: "pvt5"})
	t.Cleanup(func() { svc.CancelAll(); svc.Close() })
	b := tinyBench("default-corners", 1)
	opts := OptionsWire{MaxRounds: 1, Cycles: -1,
		SkipStages: []string{"tbsz", "twsz", "twsn", "bwsn"}}.Options()
	j, err := svc.Submit(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantOpts := opts
	wantOpts.Corners = "pvt5"
	if j.Key() != JobKey(b, wantOpts) {
		t.Error("default corner set not folded into the job key")
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Final.PerCorner) != 5 {
		t.Errorf("default corner set not applied: %d per-corner rows", len(res.Final.PerCorner))
	}
}
