package service

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"contango/internal/bench"
	"contango/internal/core"
	"contango/internal/dme"
	"contango/internal/flow"
	"contango/internal/geom"
	"contango/internal/obs"
	"contango/internal/spice"
)

// tinyBench builds a fast-to-simulate benchmark; variant perturbs sink
// capacitances so different variants content-address differently.
func tinyBench(name string, variant int) *bench.Benchmark {
	locs := []geom.Point{
		{X: 2500, Y: 800}, {X: 2600, Y: 2100}, {X: 3500, Y: 1500},
		{X: 1500, Y: 2600}, {X: 3200, Y: 2900}, {X: 900, Y: 900},
		{X: 2100, Y: 1700}, {X: 3900, Y: 600},
	}
	var sinks []dme.Sink
	for i, l := range locs {
		sinks = append(sinks, dme.Sink{
			Loc:  l,
			Cap:  25 + float64(i) + float64(variant)*0.5,
			Name: fmt.Sprintf("s%d", i),
		})
	}
	return &bench.Benchmark{
		Name:     name,
		Die:      geom.NewRect(0, 0, 4200, 3200),
		Source:   geom.Pt(0, 1600),
		SourceR:  0.1,
		Sinks:    sinks,
		CapLimit: 60000,
	}
}

// fastOpts skips the whole cascade so a job costs only a handful of
// evaluations — enough to exercise the service machinery.
func fastOpts() core.Options {
	return core.Options{
		MaxRounds: 1,
		Cycles:    1,
		SkipStages: map[string]bool{
			"tbsz": true, "twsz": true, "twsn": true, "bwsn": true,
		},
	}
}

func TestSubmitWaitAndCacheHit(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()

	b := tinyBench("cache-me", 0)
	j1, err := svc.Submit(b, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	res1, err := j1.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res1 == nil || res1.Final.TotalCap <= 0 {
		t.Fatalf("bad result: %+v", res1)
	}
	if j1.CacheHit() {
		t.Error("first run must not be a cache hit")
	}
	runsAfterFirst := svc.Stats().SimRuns
	if runsAfterFirst <= 0 {
		t.Fatalf("SimRuns = %d, want > 0", runsAfterFirst)
	}

	// Identical content (fresh benchmark object, same bytes) hits the cache.
	j2, err := svc.Submit(tinyBench("cache-me", 0), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	res2, err := j2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !j2.CacheHit() {
		t.Error("identical resubmission should be served from cache")
	}
	if j2.CacheTier() != "memory" {
		t.Errorf("CacheTier = %q, want memory", j2.CacheTier())
	}
	if res2 == res1 {
		t.Error("cache hits must hand out defensive copies, not the shared result")
	}
	if !reflect.DeepEqual(res2.Final, res1.Final) || res2.Runs != res1.Runs {
		t.Error("cache hit content differs from the original result")
	}
	st := svc.Stats()
	if st.SimRuns != runsAfterFirst {
		t.Errorf("cache hit ran the simulator: %d -> %d", runsAfterFirst, st.SimRuns)
	}
	if st.CacheHits != 1 {
		t.Errorf("CacheHits = %d, want 1", st.CacheHits)
	}

	// Different options miss.
	o := fastOpts()
	o.Gamma = 0.2
	j3, err := svc.Submit(tinyBench("cache-me", 0), o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j3.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if j3.CacheHit() {
		t.Error("different gamma must not hit the cache")
	}
}

// TestConcurrentBatchSaturatesPool proves the pool genuinely runs jobs in
// parallel: the first `workers` jobs block at their first progress line
// until all of them have arrived, which can only happen if that many jobs
// are in flight at once.
func TestConcurrentBatchSaturatesPool(t *testing.T) {
	const workers = 4
	svc := New(Config{Workers: workers})
	defer svc.Close()

	gate := make(chan struct{})
	var arrived int32
	reqs := make([]Request, 8)
	for i := range reqs {
		o := fastOpts()
		once := new(sync.Once)
		o.Log = func(string, ...interface{}) {
			once.Do(func() {
				if atomic.AddInt32(&arrived, 1) == workers {
					close(gate)
				}
				select {
				case <-gate:
				case <-time.After(20 * time.Second):
					t.Error("worker pool never reached 4 concurrent jobs")
				}
			})
		}
		reqs[i] = Request{Bench: tinyBench(fmt.Sprintf("conc-%d", i), i), Opts: o}
	}

	wallStart := time.Now()
	jobs, err := svc.SubmitBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 8 {
		t.Fatalf("jobs = %d, want 8", len(jobs))
	}
	results, err := WaitAll(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(wallStart)

	var sum time.Duration
	for i, j := range jobs {
		if j.State() != Done {
			t.Fatalf("job %s state %s", j.ID(), j.State())
		}
		if results[i] == nil || results[i].Benchmark.Name != reqs[i].Bench.Name {
			t.Fatalf("job %d: wrong or missing result", i)
		}
		sum += j.Elapsed()
	}
	if got := atomic.LoadInt32(&arrived); got < workers {
		t.Errorf("only %d jobs ran concurrently, want %d", got, workers)
	}
	// Concurrency means wall clock beats the serial sum of job times.
	if wall >= sum {
		t.Errorf("no speedup: wall %v >= serial sum %v", wall, sum)
	}
}

// TestBatchResubmissionServedFromCache is the acceptance scenario: a batch
// of 8 jobs on a 4-worker pool, then the identical batch again — the rerun
// must be 100% cache hits with zero new simulator runs.
func TestBatchResubmissionServedFromCache(t *testing.T) {
	svc := New(Config{Workers: 4})
	defer svc.Close()

	mkBatch := func() []Request {
		reqs := make([]Request, 8)
		for i := range reqs {
			reqs[i] = Request{Bench: tinyBench(fmt.Sprintf("batch-%d", i), i), Opts: fastOpts()}
		}
		return reqs
	}

	jobs, err := svc.SubmitBatch(mkBatch())
	if err != nil {
		t.Fatal(err)
	}
	first, err := WaitAll(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	simRuns := svc.Stats().SimRuns

	again, err := svc.SubmitBatch(mkBatch())
	if err != nil {
		t.Fatal(err)
	}
	second, err := WaitAll(context.Background(), again)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i, j := range again {
		if j.CacheHit() {
			hits++
		}
		if !reflect.DeepEqual(second[i].Final, first[i].Final) || second[i].Runs != first[i].Runs {
			t.Errorf("job %d: resubmission returned a different result", i)
		}
	}
	if hits != len(again) {
		t.Errorf("cache hits = %d/%d, want all", hits, len(again))
	}
	if st := svc.Stats(); st.SimRuns != simRuns {
		t.Errorf("resubmission burned simulator runs: %d -> %d", simRuns, st.SimRuns)
	}
}

// TestCoalescing: an identical submission while the first is still in
// flight joins it instead of spawning a second run.
func TestCoalescing(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()

	release := make(chan struct{})
	o := fastOpts()
	var once sync.Once
	o.Log = func(string, ...interface{}) {
		once.Do(func() { <-release })
	}
	j1, err := svc.Submit(tinyBench("dup", 0), o)
	if err != nil {
		t.Fatal(err)
	}
	// Same content while j1 runs (Log hooks are excluded from the key).
	j2, err := svc.Submit(tinyBench("dup", 0), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if j1 != j2 {
		t.Error("identical in-flight submission should coalesce onto the same job")
	}
	close(release)
	if _, err := j1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.Coalesced != 1 {
		t.Errorf("Coalesced = %d, want 1", st.Coalesced)
	}
}

// TestCancelMidCascade cancels a running job from inside its own progress
// stream and asserts the simulator's Runs counter stops advancing.
func TestCancelMidCascade(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()

	eng := spice.New()
	o := core.Options{Engine: eng, MaxRounds: 16, Cycles: 3}
	var j *Job
	ready := make(chan struct{})
	var cancelOnce sync.Once
	o.Log = func(format string, args ...interface{}) {
		line := fmt.Sprintf(format, args...)
		// The INITIAL record marks the start of the optimization cascade;
		// cancel there so rounds of TBSZ/TWSZ/... still lie ahead.
		if strings.Contains(line, "[INITIAL]") {
			cancelOnce.Do(func() {
				<-ready // wait until the test published j
				j.Cancel()
			})
		}
	}
	var err error
	j, err = svc.Submit(tinyBench("cancel-me", 0), o)
	if err != nil {
		t.Fatal(err)
	}
	close(ready)

	res, err := j.Wait(context.Background())
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("canceled job must not publish a result")
	}
	if j.State() != Canceled {
		t.Fatalf("state = %s, want canceled", j.State())
	}
	// Wait() returning synchronizes with the worker, so reading the engine
	// is race-free; the counter must have stopped advancing.
	runs := eng.Runs
	if runs == 0 {
		t.Fatal("job was canceled before any simulation — cascade never started?")
	}
	time.Sleep(50 * time.Millisecond)
	if eng.Runs != runs {
		t.Errorf("Runs still advancing after cancel: %d -> %d", runs, eng.Runs)
	}
	if st := svc.Stats(); st.Canceled != 1 {
		t.Errorf("Canceled = %d, want 1", st.Canceled)
	}
}

// TestCancelQueued cancels a job that never got a worker.
func TestCancelQueued(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()

	hold := make(chan struct{})
	o := fastOpts()
	var once sync.Once
	o.Log = func(string, ...interface{}) {
		once.Do(func() { <-hold })
	}
	blocker, err := svc.Submit(tinyBench("blocker", 0), o)
	if err != nil {
		t.Fatal(err)
	}
	queued, err := svc.Submit(tinyBench("victim", 1), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	queued.Cancel()
	if _, err := queued.Wait(context.Background()); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(hold)
	if _, err := blocker.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// A canceled queued job must not block the worker or leak in-flight
	// state: resubmitting it now runs normally.
	redo, err := svc.Submit(tinyBench("victim", 1), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := redo.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if redo.State() != Done {
		t.Errorf("resubmitted job state = %s, want done", redo.State())
	}
}

func TestJobKeyCanonicalization(t *testing.T) {
	b := tinyBench("keys", 0)

	// Zero options and the spelled-out defaults address identically.
	explicit := core.Options{Gamma: 0.10, MaxRounds: 16, Cycles: 3}
	if JobKey(b, core.Options{}) != JobKey(b, explicit) {
		t.Error("zero options and explicit defaults should share a key")
	}
	// Hooks and counters don't leak into the key.
	withHooks := core.Options{Log: func(string, ...interface{}) {}, Engine: spice.New()}
	withHooks.Engine.Runs = 99
	if JobKey(b, core.Options{}) != JobKey(b, withHooks) {
		t.Error("Log hook / engine run counter must not change the key")
	}
	// Result-shaping knobs do.
	if JobKey(b, core.Options{}) == JobKey(b, core.Options{Gamma: 0.2}) {
		t.Error("gamma must change the key")
	}
	if JobKey(b, core.Options{}) == JobKey(b, core.Options{LargeInverters: true}) {
		t.Error("inverter family must change the key")
	}
	if JobKey(b, core.Options{}) == JobKey(b, core.Options{FastSim: true}) {
		t.Error("simulator accuracy must change the key")
	}
	// SkipStages is canonicalized regardless of map construction order.
	a := core.Options{SkipStages: map[string]bool{"tbsz": true, "bwsn": true, "twsz": false}}
	c := core.Options{SkipStages: map[string]bool{"bwsn": true, "tbsz": true}}
	if JobKey(b, a) != JobKey(b, c) {
		t.Error("skip-stage sets with equal content should share a key")
	}
	// Benchmark content drives the key too.
	if JobKey(b, core.Options{}) == JobKey(tinyBench("keys", 1), core.Options{}) {
		t.Error("different benchmark content must change the key")
	}
	// And generation is deterministic: a regenerated suite benchmark keeps
	// its content address.
	b1, _ := bench.ISPD09("ispd09f22")
	b2, _ := bench.ISPD09("ispd09f22")
	if b1.Hash() != b2.Hash() {
		t.Error("benchmark generation is not deterministic")
	}
}

func TestResultCacheLRU(t *testing.T) {
	missCtr, evictCtr := &obs.Counter{}, &obs.Counter{}
	c := newResultCache(2, nil, missCtr, evictCtr)
	r1, r2, r3 := &core.Result{}, &core.Result{}, &core.Result{}
	mustAdd := func(k string, r *core.Result) {
		if err := c.Add(k, r); err != nil {
			t.Fatalf("Add(%s): %v", k, err)
		}
	}
	mustAdd("a", r1)
	mustAdd("b", r2)
	if _, tier, ok := c.Get("a"); !ok || tier != tierMemory { // refresh a; b is now LRU
		t.Fatal("a missing")
	}
	mustAdd("c", r3)
	if _, _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if got, _, ok := c.Get("a"); !ok || got != r1 {
		t.Error("a should survive eviction")
	}
	if got, _, ok := c.Get("c"); !ok || got != r3 {
		t.Error("c should be cached")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	if evictions := evictCtr.Value(); evictions != 1 {
		t.Errorf("evictions = %d, want 1", evictions)
	}
	if misses := missCtr.Value(); misses != 1 { // the Get("b") after eviction
		t.Errorf("misses = %d, want 1", misses)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	svc := New(Config{Workers: 1})
	svc.Close()
	if _, err := svc.Submit(tinyBench("late", 0), fastOpts()); err != ErrClosed {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

func TestSweepExpansion(t *testing.T) {
	sw := Sweep{Gammas: []float64{0.1, 0.2}, MaxRounds: []int{4, 8}, LargeInverters: []bool{false, true}}
	opts := sw.Expand(core.Options{})
	if len(opts) != 8 {
		t.Fatalf("sweep points = %d, want 8", len(opts))
	}
	seen := map[string]bool{}
	for _, o := range opts {
		seen[OptionsFingerprint(o)] = true
	}
	if len(seen) != 8 {
		t.Errorf("distinct fingerprints = %d, want 8", len(seen))
	}
	reqs := SweepRequests([]*bench.Benchmark{tinyBench("swp", 0)}, core.Options{}, Sweep{Gammas: []float64{0.1, 0.2}})
	if len(reqs) != 2 {
		t.Errorf("requests = %d, want 2", len(reqs))
	}
	if suite := ISPD09Requests(core.Options{}); len(suite) != 7 {
		t.Errorf("suite requests = %d, want 7", len(suite))
	}
}

func TestPlanKeying(t *testing.T) {
	b := tinyBench("plankeys", 0)

	// The default, the named default, and its spelled-out spec all address
	// one cache slot.
	def := JobKey(b, core.Options{})
	if JobKey(b, core.Options{Plan: "paper"}) != def {
		t.Error("named default plan should share the zero-options key")
	}
	spelled := core.Options{Plan: "zst,legalize,buffer,polarity,tbsz,twsz,twsn,bwsn,cycle(twsz,twsn,bwsn)"}
	if JobKey(b, spelled) != def {
		t.Error("spelled-out paper spec should share the default key")
	}
	// Different cascades address differently.
	if JobKey(b, core.Options{Plan: "fast"}) == def {
		t.Error("fast plan must change the key")
	}
	if JobKey(b, core.Options{Plan: "wire-only"}) == JobKey(b, core.Options{Plan: "fast"}) {
		t.Error("distinct plans share a key")
	}
	// Disabled convergence cycles are distinct from the default budget.
	if JobKey(b, core.Options{Cycles: -1}) == def {
		t.Error("Cycles: -1 must change the key")
	}
}

func TestSubmitRejectsInvalidPlan(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	if _, err := svc.Submit(tinyBench("badplan", 0), core.Options{Plan: "cycle(twsz"}); err == nil {
		t.Fatal("invalid plan spec accepted")
	}
	if st := svc.Stats(); st.Jobs != 0 {
		t.Errorf("rejected submission left %d jobs", st.Jobs)
	}
}

func TestDefaultPlanApplied(t *testing.T) {
	svc := New(Config{Workers: 1, DefaultPlan: "no-cycles"})
	defer svc.Close()
	o := fastOpts()
	j, err := svc.Submit(tinyBench("defplan", 0), o)
	if err != nil {
		t.Fatal(err)
	}
	want := o
	want.Plan = "no-cycles"
	if j.Key() != JobKey(j.Benchmark(), want) {
		t.Error("service default plan not reflected in the job key")
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// An explicit plan still wins over the service default.
	j2, err := svc.Submit(tinyBench("defplan", 0), core.Options{Plan: "tune-only", MaxRounds: 1,
		SkipStages: map[string]bool{"tbsz": true, "bwsn": true}})
	if err != nil {
		t.Fatal(err)
	}
	if j2.Key() == j.Key() {
		t.Error("explicit plan collapsed onto the service default")
	}
	if _, err := j2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestJobStreamsPassEvents(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	j, err := svc.Submit(tinyBench("passevents", 0), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	var passes int
	for _, line := range j.Logs() {
		if flow.IsProgressLine(line) {
			passes++
		}
	}
	if passes == 0 {
		t.Error("job log carries no per-pass pipeline progress lines")
	}
}

func TestSkipStagesCaseKeyConsistency(t *testing.T) {
	// {"TBSZ": true} and {"tbsz": true} must share a key AND behave
	// identically at run time (Resolve canonicalizes the skip set), so the
	// cache can never serve one configuration's result for the other.
	b := tinyBench("skipcase", 0)
	upper := core.Options{SkipStages: map[string]bool{"TBSZ": true}}
	lower := core.Options{SkipStages: map[string]bool{"tbsz": true}}
	if JobKey(b, upper) != JobKey(b, lower) {
		t.Fatal("case-differing skip sets diverge in the key")
	}
	if r := upper.Resolve(); !r.SkipStages["tbsz"] {
		t.Error("Resolve did not canonicalize the skip set")
	}
	if upper.SkipStages["tbsz"] {
		t.Error("Resolve mutated the caller's map")
	}
}
