package core

import (
	"math"
	"testing"

	"contango/internal/bench"
)

// trimmedISPD returns the named contest benchmark cut down to n sinks with
// a proportional capacitance budget (the same protocol as the root bench
// harness), on a private copy.
func trimmedISPD(t *testing.T, name string, n int) *bench.Benchmark {
	b, err := bench.ISPD09(name)
	if err != nil {
		t.Fatal(err)
	}
	b = b.Clone()
	if len(b.Sinks) > n {
		frac := float64(n) / float64(len(b.Sinks))
		b.Sinks = b.Sinks[:n]
		b.CapLimit *= frac
	}
	return b
}

// TestCascadeIncrementalMatchesFullEval is the flow-level acceptance
// property: the incremental+parallel cascade must produce skew and CLR
// equal (within 1e-9 ps) to the whole-tree re-evaluation path on a trimmed
// ISPD'09 benchmark, while actually exercising the cache.
func TestCascadeIncrementalMatchesFullEval(t *testing.T) {
	if testing.Short() {
		t.Skip("full-vs-incremental cascade comparison is slow")
	}
	opts := Options{MaxRounds: 4, Cycles: 1}
	optsFull := opts
	optsFull.FullEval = true

	full, err := Synthesize(trimmedISPD(t, "ispd09f22", 30), optsFull)
	if err != nil {
		t.Fatal(err)
	}
	incr, err := Synthesize(trimmedISPD(t, "ispd09f22", 30), opts)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(full.Final.Skew - incr.Final.Skew); d > 1e-9 {
		t.Errorf("skew differs by %g ps: full %v incremental %v", d, full.Final.Skew, incr.Final.Skew)
	}
	if d := math.Abs(full.Final.CLR - incr.Final.CLR); d > 1e-9 {
		t.Errorf("CLR differs by %g ps: full %v incremental %v", d, full.Final.CLR, incr.Final.CLR)
	}
	if d := math.Abs(full.Final.TotalCap - incr.Final.TotalCap); d > 1e-9 {
		t.Errorf("capacitance differs by %g fF", d)
	}
	if full.Runs != incr.Runs {
		t.Errorf("evaluation counts diverged: full %d incremental %d", full.Runs, incr.Runs)
	}
	if incr.StageSims == 0 || incr.StageReuses == 0 {
		t.Errorf("incremental cascade did not exercise the cache: sims=%d reuses=%d",
			incr.StageSims, incr.StageReuses)
	}
	if full.StageSims != 0 || full.StageReuses != 0 {
		t.Errorf("full-eval path unexpectedly used the incremental engine")
	}
	// The whole point: a healthy fraction of stage transients must be
	// served from cache rather than re-integrated.
	reuse := float64(incr.StageReuses) / float64(incr.StageSims+incr.StageReuses)
	if reuse < 0.25 {
		t.Errorf("cache reuse ratio %.2f, want >= 0.25", reuse)
	}
}

// TestParallelCascadeDeterminism: the cascade must produce identical
// results at different worker counts.
func TestParallelCascadeDeterminism(t *testing.T) {
	b := tinyBench()
	serial, err := Synthesize(b, Options{MaxRounds: 3, Cycles: 1, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Synthesize(tinyBench(), Options{MaxRounds: 3, Cycles: 1, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Final.Skew != par.Final.Skew || serial.Final.CLR != par.Final.CLR {
		t.Errorf("parallelism changed results: serial %v / %v, parallel %v / %v",
			serial.Final.Skew, serial.Final.CLR, par.Final.Skew, par.Final.CLR)
	}
}
