package core

// Flow-level ECO coverage: the "eco" plan restores a finished tree,
// replays a delta, and runs only tuning passes — and the whole thing is
// reproducible to the byte. The determinism property is what the
// service's content-addressed cache rests on (same base + same delta must
// hit the same slot with the same artifact), so it is pinned here as an
// encode-level comparison, not just a metrics one.

import (
	"bytes"
	"strings"
	"testing"

	"contango/internal/buffering"
	"contango/internal/eco"
	"contango/internal/route"
)

// ecoFixture synthesizes the tiny base, generates a delta against it, and
// returns the ready-to-run (perturbed benchmark, options) pair.
func ecoFixture(t *testing.T) (*Result, *eco.Delta, Options) {
	t.Helper()
	b := tinyBench()
	base, err := Synthesize(b, Options{MaxRounds: 2, Cycles: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A hand-built delta with all three edit classes, so the replay
	// exercises removal pruning, re-attachment and polarity repair.
	d, err := eco.ParseDelta(strings.NewReader(
		"move a 2550 950\nmove d 1400 2700\nadd z1 3300 2800 21\nremove g\n"))
	if err != nil {
		t.Fatal(err)
	}
	o := Options{MaxRounds: 2, Cycles: 1, Plan: "eco", ECO: &eco.Spec{
		BaseKey:   "base-key",
		Delta:     d,
		Base:      base.Tree,
		Composite: base.Composite,
	}}
	return base, d, o
}

func TestECOFlowRepairsAndStaysLegal(t *testing.T) {
	base, d, o := ecoFixture(t)
	b := tinyBench()
	perturbed, err := d.Perturb(b)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Synthesize(perturbed, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(res.Tree.Sinks()); got != len(perturbed.Sinks) {
		t.Fatalf("%d sinks, want %d", got, len(perturbed.Sinks))
	}
	if got := len(buffering.InvertedSinks(res.Tree)); got != 0 {
		t.Errorf("%d sinks inverted after eco repair", got)
	}
	if bad := route.CheckLegal(res.Tree, geomObstacles(b), 1e9); len(bad) != 0 {
		t.Errorf("%d illegal edges after eco", len(bad))
	}
	if res.Final.SlewViol > 0 {
		t.Errorf("%d slew violations after eco tuning", res.Final.SlewViol)
	}
	// The restored base is read-only: the cached tree must be untouched.
	if err := base.Tree.Validate(); err != nil {
		t.Fatalf("eco run corrupted the cached base tree: %v", err)
	}
	if got := len(base.Tree.Sinks()); got != len(b.Sinks) {
		t.Fatalf("base tree lost sinks: %d, want %d", got, len(b.Sinks))
	}
}

// TestECOFlowDeterministic pins the acceptance property: same base + same
// delta => bit-identical result envelope (wall time zeroed, as the cache
// comparison does).
func TestECOFlowDeterministic(t *testing.T) {
	_, d, o := ecoFixture(t)
	perturbed, err := d.Perturb(tinyBench())
	if err != nil {
		t.Fatal(err)
	}
	encode := func() []byte {
		res, err := Synthesize(perturbed, o)
		if err != nil {
			t.Fatal(err)
		}
		res.Elapsed = 0
		var buf bytes.Buffer
		if err := EncodeResult(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(encode(), encode()) {
		t.Fatal("two eco runs of the same (base, delta) produced different result envelopes")
	}
}

func TestECOPlanErrors(t *testing.T) {
	b := tinyBench()
	if _, err := Synthesize(b, Options{Plan: "eco"}); err == nil ||
		!strings.Contains(err.Error(), "Options.ECO") {
		t.Errorf("eco plan without a spec: err = %v", err)
	}
	// Submitting the base benchmark instead of the perturbed one must fail
	// the sink-count cross-check (this delta only removes, so the counts
	// cannot agree).
	base, _, o := ecoFixture(t)
	d, err := eco.ParseDelta(strings.NewReader("remove g\n"))
	if err != nil {
		t.Fatal(err)
	}
	o.ECO = &eco.Spec{BaseKey: "base-key", Delta: d, Base: base.Tree, Composite: base.Composite}
	if _, err := Synthesize(b, o); err == nil ||
		!strings.Contains(err.Error(), "delta-perturbed") {
		t.Errorf("mismatched benchmark: err = %v", err)
	}
}
