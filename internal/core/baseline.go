package core

import (
	"fmt"
	"time"

	"contango/internal/bench"
	"contango/internal/buffering"
	"contango/internal/dme"
	"contango/internal/geom"
	"contango/internal/route"
	"contango/internal/tech"
)

// BaselineKind selects one of the contest-style comparison flows used to
// reproduce the shape of the paper's Table IV. Each stands in for a
// one-shot constructor without Contango's SPICE-driven refinement cascade,
// the way the contest entries from NTU, NCTU and U. of Michigan did.
type BaselineKind int

const (
	// BaselineNoOpt is Contango's own initial buffered tree with no
	// SPICE-driven passes: exact-zero-skew DME plus composite buffering.
	BaselineNoOpt BaselineKind = iota
	// BaselineGreedy is a greedy midpoint-topology tree (no Elmore
	// balancing) with single-configuration buffering.
	BaselineGreedy
	// BaselineBST is a bounded-skew construction: balanced taps quantized
	// to a coarse grid and no wire elongation, with composite buffering.
	BaselineBST
)

func (k BaselineKind) String() string {
	switch k {
	case BaselineGreedy:
		return "greedy"
	case BaselineBST:
		return "bst"
	default:
		return "noopt"
	}
}

// SynthesizeBaseline runs one of the baseline flows: construct, legalize,
// buffer, fix polarity, evaluate — no optimization cascade.
func SynthesizeBaseline(b *bench.Benchmark, kind BaselineKind, o Options) (*Result, error) {
	o = o.Resolve()
	if err := checkCornersApplied(o); err != nil {
		return nil, err
	}
	start := time.Now()
	res := &Result{Benchmark: b}

	var dopt dme.Options
	switch kind {
	case BaselineGreedy:
		dopt.NoBalance = true
	case BaselineBST:
		dopt.NoSnake = true
		dopt.TapQuantum = 250
	}
	tr := dme.BuildZST(o.Tech, b.Source, b.Sinks, dopt)
	tr.SourceR = b.SourceR
	res.Tree = tr

	obs := geom.NewObstacleSet(b.Obstacles)
	rep, err := route.Legalize(tr, obs, b.Die, route.Options{SafeCap: buffering.SafeLoad(o.Tech, o.Ladder[0])})
	if err != nil {
		return nil, fmt.Errorf("legalize: %w", err)
	}
	res.Legalization = *rep

	ladder := o.Ladder
	if kind == BaselineGreedy {
		// Single mid-strength configuration, no sweep.
		ladder = []tech.Composite{o.Ladder[len(o.Ladder)/2]}
	}
	sweep, err := buffering.InsertBestComposite(tr, ladder, b.CapLimit, o.Gamma,
		buffering.Options{Obs: obs, Step: o.BufferStep})
	if err != nil {
		return nil, fmt.Errorf("buffering: %w", err)
	}
	res.Composite = sweep.Composite
	res.InvertedSinks = len(buffering.InvertedSinks(tr))
	res.AddedInverters = buffering.CorrectPolarity(tr, sweep.Composite, obs)
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("baseline %v: %w", kind, err)
	}

	m, _, err := CNEOnly(tr, o.Engine, b.CapLimit)
	if err != nil {
		return nil, err
	}
	res.Stages = []StageRecord{{Name: "BASELINE-" + kind.String(), Metrics: m, Runs: o.Engine.Runs}}
	res.Final = m
	res.Runs = o.Engine.Runs
	res.Buffers = len(tr.Buffers())
	res.Elapsed = time.Since(start)
	return res, nil
}
