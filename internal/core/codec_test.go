package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// synthTiny runs a cheap cascade for codec tests.
func synthTiny(t *testing.T) *Result {
	t.Helper()
	res, err := Synthesize(tinyBench(), Options{MaxRounds: 2, Cycles: 1})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestResultCodecRoundTrip(t *testing.T) {
	res := synthTiny(t)

	var buf bytes.Buffer
	if err := EncodeResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	// The scalar payload round-trips exactly.
	if got.Runs != res.Runs || got.Elapsed != res.Elapsed ||
		got.StageSims != res.StageSims || got.StageReuses != res.StageReuses ||
		got.Buffers != res.Buffers || got.InvertedSinks != res.InvertedSinks ||
		got.AddedInverters != res.AddedInverters ||
		got.Legalization != res.Legalization || got.Composite != res.Composite {
		t.Errorf("counters drifted: got %+v want %+v", got, res)
	}
	if !reflect.DeepEqual(got.Stages, res.Stages) {
		t.Errorf("stage records drifted:\n got %+v\nwant %+v", got.Stages, res.Stages)
	}
	if !reflect.DeepEqual(got.Final, res.Final) {
		t.Errorf("final metrics drifted: got %+v want %+v", got.Final, res.Final)
	}

	// The benchmark keeps its content address.
	if got.Benchmark.Hash() != res.Benchmark.Hash() {
		t.Error("benchmark content address changed through the codec")
	}

	// The tree round-trips structurally and electrically.
	if err := got.Tree.Validate(); err != nil {
		t.Fatalf("decoded tree invalid: %v", err)
	}
	if got.Tree.MaxID() != res.Tree.MaxID() || got.Tree.NumNodes() != res.Tree.NumNodes() {
		t.Fatalf("node table drifted: %d/%d vs %d/%d",
			got.Tree.MaxID(), got.Tree.NumNodes(), res.Tree.MaxID(), res.Tree.NumNodes())
	}
	if got.Tree.Wirelength() != res.Tree.Wirelength() || got.Tree.TotalCap() != res.Tree.TotalCap() {
		t.Error("tree electrical totals drifted through the codec")
	}
	for id := 0; id < res.Tree.MaxID(); id++ {
		a, b := res.Tree.Node(id), got.Tree.Node(id)
		if (a == nil) != (b == nil) {
			t.Fatalf("node %d liveness drifted", id)
		}
		if a == nil {
			continue
		}
		if a.Kind != b.Kind || a.Loc != b.Loc || a.WidthIdx != b.WidthIdx ||
			a.Snake != b.Snake || a.SinkCap != b.SinkCap || a.Name != b.Name {
			t.Fatalf("node %d fields drifted", id)
		}
		if len(a.Children) != len(b.Children) {
			t.Fatalf("node %d child count drifted", id)
		}
		for i := range a.Children {
			if a.Children[i].ID != b.Children[i].ID {
				t.Fatalf("node %d child order drifted", id)
			}
		}
	}

	// Re-encoding the decoded result is byte-identical: the codec is a
	// fixed point, which is what lets a disk-served cache hit render the
	// same wire JSON as the original run.
	var buf2 bytes.Buffer
	if err := EncodeResult(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("encode(decode(encode(r))) != encode(r)")
	}

	// A decoded tree still drives the SVG renderer to the same bytes.
	var svgA, svgB bytes.Buffer
	if err := RenderSVG(&svgA, res); err != nil {
		t.Fatal(err)
	}
	if err := RenderSVG(&svgB, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(svgA.Bytes(), svgB.Bytes()) {
		t.Error("decoded result renders a different SVG")
	}
}

func TestDecodeResultRejectsDamage(t *testing.T) {
	res := synthTiny(t)
	var buf bytes.Buffer
	if err := EncodeResult(&buf, res); err != nil {
		t.Fatal(err)
	}

	cases := map[string]string{
		"not json":        "{broken",
		"wrong version":   strings.Replace(buf.String(), `"version":1`, `"version":99`, 1),
		"dangling parent": strings.Replace(buf.String(), `"parent":0`, `"parent":99999`, 1),
	}
	for name, text := range cases {
		if _, err := DecodeResult(strings.NewReader(text)); err == nil {
			t.Errorf("%s: decode accepted damaged input", name)
		}
	}
	if err := EncodeResult(&buf, nil); err == nil {
		t.Error("encoding a nil result should fail")
	}
}

func TestResultClone(t *testing.T) {
	res := synthTiny(t)
	cp := res.Clone()

	// Content matches…
	a, _ := json.Marshal(resultFingerprint(res))
	b, _ := json.Marshal(resultFingerprint(cp))
	if !bytes.Equal(a, b) {
		t.Fatal("clone differs from original")
	}
	// …but nothing mutable is shared.
	cp.Final.Skew = -123
	cp.Stages[0].Runs = -1
	cp.Benchmark.Sinks[0].Cap = -1
	cp.Tree.Root.Children[0].Snake = 999

	if res.Final.Skew == -123 || res.Stages[0].Runs == -1 {
		t.Error("clone shares scalar/stage storage with the original")
	}
	if res.Benchmark.Sinks[0].Cap == -1 {
		t.Error("clone shares the benchmark sink slice")
	}
	if res.Tree.Root.Children[0].Snake == 999 {
		t.Error("clone shares tree nodes")
	}
	if (*Result)(nil).Clone() != nil {
		t.Error("nil clone should be nil")
	}
}

// resultFingerprint projects the comparable parts of a result.
func resultFingerprint(r *Result) map[string]interface{} {
	return map[string]interface{}{
		"final":  r.Final,
		"stages": r.Stages,
		"runs":   r.Runs,
		"bench":  r.Benchmark.Hash(),
		"nodes":  r.Tree.NumNodes(),
		"wl":     r.Tree.Wirelength(),
	}
}
