package core

import (
	"reflect"
	"strings"
	"testing"

	"contango/internal/flow"
)

// sameRun asserts two synthesis results are bit-identical: same stage
// sequence, same metrics at every stage, same cumulative evaluation
// counts, same final numbers.
func sameRun(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.Stages) != len(b.Stages) {
		t.Fatalf("%s: stage counts differ: %d vs %d", label, len(a.Stages), len(b.Stages))
	}
	for i := range a.Stages {
		x, y := a.Stages[i], b.Stages[i]
		if x.Name != y.Name {
			t.Errorf("%s: stage %d named %s vs %s", label, i, x.Name, y.Name)
		}
		if !reflect.DeepEqual(x.Metrics, y.Metrics) {
			t.Errorf("%s: stage %s metrics differ: %v vs %v", label, x.Name, x.Metrics, y.Metrics)
		}
		if x.Runs != y.Runs {
			t.Errorf("%s: stage %s run counts differ: %d vs %d", label, x.Name, x.Runs, y.Runs)
		}
	}
	if !reflect.DeepEqual(a.Final, b.Final) {
		t.Errorf("%s: final metrics differ: %v vs %v", label, a.Final, b.Final)
	}
	if a.Runs != b.Runs {
		t.Errorf("%s: total run counts differ: %d vs %d", label, a.Runs, b.Runs)
	}
	if a.Buffers != b.Buffers || a.AddedInverters != b.AddedInverters {
		t.Errorf("%s: construction diverged: %d/%d buffers, %d/%d inverters",
			label, a.Buffers, b.Buffers, a.AddedInverters, b.AddedInverters)
	}
}

// TestBuiltinPlansResolve: every built-in plan parses, and its canonical
// rendering is a fixpoint (parse(render(p)) == p), which is what lets the
// service fingerprint plans by their expanded spec.
func TestBuiltinPlansResolve(t *testing.T) {
	names := flow.PlanNames()
	if len(names) == 0 || names[0] != flow.DefaultPlanName {
		t.Fatalf("PlanNames() = %v, want paper first", names)
	}
	for _, name := range names {
		p, err := flow.ResolvePlan(name)
		if err != nil {
			t.Fatalf("built-in %s: %v", name, err)
		}
		again, err := flow.ResolvePlan(p.String())
		if err != nil {
			t.Fatalf("re-resolving %s (%q): %v", name, p.String(), err)
		}
		if again.String() != p.String() {
			t.Errorf("%s not canonical: %q -> %q", name, p.String(), again.String())
		}
	}
	// Resolve canonicalizes Options.Plan to the expanded default spec.
	r := (Options{}).Resolve()
	want, _ := flow.ResolvePlan(flow.DefaultPlanName)
	if r.Plan != want.String() {
		t.Errorf("resolved zero plan = %q, want %q", r.Plan, want.String())
	}
}

// TestPaperPlanMatchesExplicitSpec is the plan-equivalence acceptance
// test: the default "paper" plan and its spelled-out spec must reproduce
// the cascade bit-identically (stage list, metrics, evaluation counts) on
// a trimmed ISPD'09 benchmark.
func TestPaperPlanMatchesExplicitSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("full cascade comparison is slow")
	}
	opts := Options{MaxRounds: 4, Cycles: 1}
	def, err := Synthesize(trimmedISPD(t, "ispd09f22", 30), opts)
	if err != nil {
		t.Fatal(err)
	}
	spec := opts
	spec.Plan = "zst,legalize,buffer,polarity,tbsz,twsz,twsn,bwsn,cycle(twsz,twsn,bwsn)"
	explicit, err := Synthesize(trimmedISPD(t, "ispd09f22", 30), spec)
	if err != nil {
		t.Fatal(err)
	}
	sameRun(t, "paper vs explicit spec", def, explicit)

	// The pre-refactor cascade shape: INITIAL, the four named passes, then
	// one recorded convergence cycle per executed cycle.
	want := []string{"INITIAL", "TBSZ", "TWSZ", "TWSN", "BWSN", "CYCLE1"}
	for i, name := range want {
		if i >= len(def.Stages) || def.Stages[i].Name != name {
			t.Fatalf("stage sequence %v, want prefix %v", stageNames(def), want)
		}
	}
}

// TestWireOnlyPlanEqualsSkipStages: the wire-only built-in must be
// bit-identical to ablating TBSZ from the default plan via SkipStages.
func TestWireOnlyPlanEqualsSkipStages(t *testing.T) {
	skip, err := Synthesize(tinyBench(), Options{
		MaxRounds: 2, Cycles: 1, SkipStages: map[string]bool{"tbsz": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	wire, err := Synthesize(tinyBench(), Options{MaxRounds: 2, Cycles: 1, Plan: "wire-only"})
	if err != nil {
		t.Fatal(err)
	}
	sameRun(t, "SkipStages{tbsz} vs wire-only", skip, wire)
	for _, st := range wire.Stages {
		if st.Name == "TBSZ" {
			t.Error("wire-only plan ran TBSZ")
		}
	}
}

// TestCustomPlanSpecEndToEnd: a typed cascade spec (construction prelude
// implied) runs end to end and emits per-pass progress events.
func TestCustomPlanSpecEndToEnd(t *testing.T) {
	var progress, logs int
	o := Options{
		MaxRounds: 2,
		Plan:      "tbsz:2,twsz:2",
		Log: func(format string, args ...interface{}) {
			if flow.IsProgressLine(format) {
				progress++
			} else {
				logs++
			}
		},
	}
	res, err := Synthesize(tinyBench(), o)
	if err != nil {
		t.Fatal(err)
	}
	got := stageNames(res)
	want := "INITIAL,TBSZ,TWSZ"
	if strings.Join(got, ",") != want {
		t.Errorf("stages %v, want %s", got, want)
	}
	if progress == 0 {
		t.Error("no per-pass progress events emitted")
	}
	if logs == 0 {
		t.Error("regular progress log lines vanished")
	}
	if err := res.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestGatedPass: a gate predicate that can never hold skips its pass.
func TestGatedPass(t *testing.T) {
	res, err := Synthesize(tinyBench(), Options{MaxRounds: 2, Plan: "tbsz:2,twsz:2?skew<-1"})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.Stages {
		if st.Name == "TWSZ" {
			t.Error("gated-off pass still recorded a stage")
		}
	}
}

// TestInvalidPlanRejected: unknown names and malformed specs fail fast.
func TestInvalidPlanRejected(t *testing.T) {
	for _, spec := range []string{"bogus", "tbsz:,twsz", "cycle(twsz", "cycle()x2", "tbsz?skew=3"} {
		if _, err := Synthesize(tinyBench(), Options{Plan: spec}); err == nil {
			t.Errorf("plan %q accepted", spec)
		}
	}
}

// TestMisorderedPlanFailsCleanly: a parseable plan that reaches an
// evaluated (or gated) pass before construction must fail with an error,
// not a nil-tree panic — the service runs jobs without a recover().
func TestMisorderedPlanFailsCleanly(t *testing.T) {
	for _, spec := range []string{
		"tbsz,zst,legalize,buffer,polarity",
		"zst?skew>5,legalize,buffer,polarity",
	} {
		_, err := Synthesize(tinyBench(), Options{MaxRounds: 1, Plan: spec})
		if err == nil {
			t.Errorf("mis-ordered plan %q succeeded", spec)
		} else if !strings.Contains(err.Error(), "zst must run first") {
			t.Errorf("plan %q: unexpected error %v", spec, err)
		}
	}
}

func stageNames(r *Result) []string {
	out := make([]string, len(r.Stages))
	for i, s := range r.Stages {
		out[i] = s.Name
	}
	return out
}
