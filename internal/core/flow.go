// Package core orchestrates the Contango methodology (paper Figure 1):
// initial ZST/DME tree, obstacle avoidance, composite buffer insertion with
// sizing, sink-polarity correction, and the SPICE-driven optimization
// cascade — top-down buffer sizing (TBSZ), top-down wiresizing (TWSZ),
// top-down wiresnaking (TWSN) and bottom-level fine-tuning (BWSZ/BWSN) —
// each gated by Clock-Network Evaluation and Improvement- &
// Violation-Checking. The phases are registered as passes in the
// declarative pipeline engine (internal/flow); Synthesize resolves
// Options.Plan to a pass pipeline ("paper" — the exact cascade above — by
// default) and runs it. It also provides the contest-style baseline flows
// used for the paper's Table IV comparison.
package core

import (
	"context"
	"fmt"
	"time"

	"contango/internal/analysis"
	"contango/internal/bench"
	"contango/internal/corners"
	"contango/internal/ctree"
	"contango/internal/eval"
	"contango/internal/flow"
	"contango/internal/opt"
	"contango/internal/route"
	"contango/internal/spice"
	"contango/internal/tech"
)

// Options configures a synthesis run; it lives in internal/flow so the
// pipeline engine and the passes share one type, and is re-exported here
// for the public surface. The zero value is the paper's contest setup.
type Options = flow.Options

// StageRecord captures metrics after one flow stage (a Table III row).
type StageRecord = flow.StageRecord

// Result is the outcome of a synthesis run.
type Result struct {
	Benchmark *bench.Benchmark
	Tree      *ctree.Tree
	Stages    []StageRecord
	Final     eval.Metrics
	Runs      int // total accurate-evaluation invocations
	Elapsed   time.Duration

	// StageSims counts transient stage simulations actually integrated by
	// the cascade's incremental evaluator; StageReuses counts stage
	// transients served from its dirty-cone cache. Both are zero when
	// FullEval disabled the incremental path.
	StageSims   int
	StageReuses int

	Buffers        int
	InvertedSinks  int // before polarity correction (Table II)
	AddedInverters int // polarity-correcting inverters (Table II)
	Legalization   route.Report
	Composite      tech.Composite
}

// Synthesize runs the full Contango flow on a benchmark.
func Synthesize(b *bench.Benchmark, o Options) (*Result, error) {
	return SynthesizeContext(context.Background(), b, o)
}

// SynthesizeContext runs the synthesis pipeline selected by Options.Plan
// on a benchmark, honoring ctx: cancellation is checked between pipeline
// passes and before every improvement round of the optimization cascade,
// so a killed run stops burning simulator invocations promptly. On
// cancellation the context's error is returned and the partial tree is
// discarded.
func SynthesizeContext(ctx context.Context, b *bench.Benchmark, o Options) (*Result, error) {
	o = o.Resolve()
	plan, err := flow.ResolvePlan(o.Plan)
	if err != nil {
		return nil, err
	}
	// Resolve installs valid corner sets; an invalid spec survives it
	// verbatim, so re-validating here turns it into a clean error instead
	// of a silent fall-back to the default corners.
	if err := checkCornersApplied(o); err != nil {
		return nil, err
	}
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// The SPICE-driven cascade passes (paper Fig. 1) check every IVC round
	// with the accurate transient engine, exactly as the paper checks every
	// round with SPICE. The incremental evaluator wraps the engine so each
	// round re-simulates only the dirty cone of its mutations, with
	// independent stages integrated concurrently — identical results, a
	// fraction of the work. The pipeline arms it lazily, right before the
	// first pass that needs evaluation, and records the INITIAL stage.
	var inc *spice.Incremental
	s := &flow.State{Opts: o, Bench: b}
	s.ArmEval = func(ctx context.Context, s *flow.State) error {
		// Arena-native construction materializes the pointer tree exactly
		// here: the first consumer that needs node graphs is the evaluator.
		if err := s.MaterializeTree(); err != nil {
			return err
		}
		if s.Tree == nil {
			// A mis-ordered custom plan (an evaluated or gated pass before
			// zst) parses fine; fail the run cleanly instead of letting the
			// evaluator dereference a nil tree.
			return fmt.Errorf("plan needs a tree before pass evaluation (zst must run first)")
		}
		var cne analysis.Evaluator = o.Engine
		if !o.FullEval {
			inc = spice.NewIncremental(s.Tree, o.Engine, o.Parallelism)
			cne = inc
		}
		if o.WrapEval != nil {
			// Scheduling shims (corner chunking with cooperative slot
			// yields) wrap the evaluator here; they must not change what is
			// evaluated, only when.
			cne = o.WrapEval(cne)
		}
		s.Opt = &opt.Context{
			Tree: s.Tree, Eng: cne, Obs: s.Obs, CapLimit: b.CapLimit,
			MaxRounds: o.MaxRounds, Parallelism: o.Parallelism,
			Log: o.Log, Check: ctx.Err,
		}
		return s.Record("INITIAL")
	}

	if err := flow.Run(ctx, s, plan); err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	}
	// A construction-only plan that never armed the evaluator still owes the
	// caller a pointer tree.
	if err := s.MaterializeTree(); err != nil {
		return nil, err
	}
	if s.Tree == nil {
		return nil, fmt.Errorf("plan %q built no tree", plan.Name)
	}
	if len(s.Stages) == 0 {
		// Construction-only plans still report measured metrics.
		if err := s.EnsureEval(ctx); err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, err
		}
	}

	res := &Result{
		Benchmark:      b,
		Tree:           s.Tree,
		Stages:         s.Stages,
		Final:          s.Stages[len(s.Stages)-1].Metrics,
		Runs:           o.Engine.Runs,
		Legalization:   s.Legalization,
		Composite:      s.Composite,
		InvertedSinks:  s.InvertedSinks,
		AddedInverters: s.AddedInverters,
	}
	if inc != nil {
		res.StageSims = inc.Stats.StagesSim
		res.StageReuses = inc.Stats.StagesHit
		s.Logf("%s: incremental CNE: %d stage sims, %d cache hits (%.0f%% reused)",
			b.Name, res.StageSims, res.StageReuses,
			100*float64(res.StageReuses)/float64(max1(res.StageSims+res.StageReuses)))
	}
	res.Buffers = len(s.Tree.Buffers())
	res.Elapsed = time.Since(start)
	if err := s.Tree.Validate(); err != nil {
		return nil, fmt.Errorf("final validation: %w", err)
	}
	return res, nil
}

func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// checkCornersApplied verifies, on resolved options, that the requested
// corner set actually governs the run: the spec parses, and when it is
// non-default the resolved Tech carries it. The second check catches the
// silent-mismatch case — a caller handing in a Tech that already carries a
// *different* applied set (Resolve never re-derives generated sets from
// applied corners, so it cannot honor the request) — which must be an
// error, not a quiet run under the wrong corners.
func checkCornersApplied(o Options) error {
	if err := corners.Validate(o.Corners); err != nil {
		return err
	}
	if o.Corners != corners.DefaultName && o.Tech.CornerSpec != o.Corners {
		return fmt.Errorf("core: corner set %q cannot be applied: technology model already carries corner set %q",
			o.Corners, o.Tech.CornerSpec)
	}
	return nil
}

// CNEOnly evaluates an existing tree at all corners of its installed
// corner set without modifying it (used by cmd/cnseval and tests).
func CNEOnly(tr *ctree.Tree, eng *spice.Engine, capLimit float64) (eval.Metrics, []*analysis.Result, error) {
	if eng == nil {
		eng = spice.New()
	}
	rs, err := eng.EvaluateAll(tr)
	if err != nil {
		return eval.Metrics{}, nil, err
	}
	m, err := eval.FromResults(tr, corners.FromTech(tr.Tech), rs, capLimit)
	if err != nil {
		return eval.Metrics{}, nil, err
	}
	return m, rs, nil
}
