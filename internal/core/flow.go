// Package core orchestrates the Contango methodology (paper Figure 1):
// initial ZST/DME tree, obstacle avoidance, composite buffer insertion with
// sizing, sink-polarity correction, and the SPICE-driven optimization
// cascade — top-down buffer sizing (TBSZ), top-down wiresizing (TWSZ),
// top-down wiresnaking (TWSN) and bottom-level fine-tuning (BWSZ/BWSN) —
// each gated by Clock-Network Evaluation and Improvement- &
// Violation-Checking. It also provides the contest-style baseline flows used
// for the paper's Table IV comparison.
package core

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"contango/internal/analysis"
	"contango/internal/bench"
	"contango/internal/buffering"
	"contango/internal/ctree"
	"contango/internal/dme"
	"contango/internal/eval"
	"contango/internal/geom"
	"contango/internal/opt"
	"contango/internal/route"
	"contango/internal/spice"
	"contango/internal/tech"
)

// Options configures a synthesis run.
type Options struct {
	// Tech defaults to tech.Default45().
	Tech *tech.Tech
	// Engine defaults to spice.New(). FastSim overrides it with coarser
	// settings suitable for very large instances (the paper's TI runs trade
	// accuracy knobs for runtime the same way).
	Engine  *spice.Engine
	FastSim bool
	// Gamma is the capacitance reserve for post-insertion optimization
	// (default 0.10, the paper's 10%).
	Gamma float64
	// Ladder overrides the composite buffer ladder (default: batches of 8
	// small inverters, the paper's contest configuration).
	Ladder []tech.Composite
	// LargeInverters switches the ladder to groups of large inverters (the
	// paper's TI scalability configuration: ~8x faster, slightly worse CLR
	// and capacitance).
	LargeInverters bool
	// MaxRounds bounds each optimization pass (default 10).
	MaxRounds int
	// SkipStages disables individual stages by name ("tbsz", "twsz",
	// "twsn", "bwsn") for ablations.
	SkipStages map[string]bool
	// BufferStep is the candidate spacing for buffer insertion (µm);
	// 0 = default.
	BufferStep float64
	// Cycles is the number of extra wire-pass convergence cycles after the
	// named cascade (default 3; each costs one recalibration).
	Cycles int
	// Parallelism is the worker budget for concurrent stage simulations in
	// the optimization cascade's incremental evaluator (0 = GOMAXPROCS,
	// 1 = serial). It changes wall-clock time only, never results.
	Parallelism int
	// FullEval forces whole-tree re-evaluation for every CNE instead of
	// the incremental per-stage cache — the reference path the incremental
	// engine is validated against. Identical results, much slower.
	FullEval bool
	// Log receives progress lines when non-nil.
	Log func(format string, args ...interface{})
}

// defaultCycles is the extra wire-pass convergence budget when unset.
const defaultCycles = 3

func (o *Options) extraCycles() int {
	if o.Cycles <= 0 {
		return defaultCycles
	}
	return o.Cycles
}

// Resolve returns a copy of the options with every defaulted knob made
// explicit: technology model, engine, capacitance reserve, ladder, round
// and cycle budgets. The flow itself runs on resolved options and the
// service layer fingerprints them for its result cache, so the two can
// never disagree about what a zero value means.
func (o Options) Resolve() Options {
	o.fill()
	if o.MaxRounds <= 0 {
		o.MaxRounds = opt.DefaultMaxRounds
	}
	if o.Cycles <= 0 {
		o.Cycles = defaultCycles
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// StageRecord captures metrics after one flow stage (a Table III row entry).
type StageRecord struct {
	Name    string
	Metrics eval.Metrics
	Runs    int // cumulative accurate-evaluation count
}

// Result is the outcome of a synthesis run.
type Result struct {
	Benchmark *bench.Benchmark
	Tree      *ctree.Tree
	Stages    []StageRecord
	Final     eval.Metrics
	Runs      int // total accurate-evaluation invocations
	Elapsed   time.Duration

	// StageSims counts transient stage simulations actually integrated by
	// the cascade's incremental evaluator; StageReuses counts stage
	// transients served from its dirty-cone cache. Both are zero when
	// FullEval disabled the incremental path.
	StageSims   int
	StageReuses int

	Buffers        int
	InvertedSinks  int // before polarity correction (Table II)
	AddedInverters int // polarity-correcting inverters (Table II)
	Legalization   route.Report
	Composite      tech.Composite
}

func (o *Options) fill() {
	if o.Tech == nil {
		o.Tech = tech.Default45()
	}
	if o.Engine == nil {
		o.Engine = spice.New()
		if o.FastSim {
			o.Engine.MaxSeg = 250
			o.Engine.Dt = 2
		}
	}
	if o.Gamma == 0 {
		o.Gamma = 0.10
	}
	if len(o.Ladder) == 0 {
		if o.LargeInverters {
			o.Ladder = o.Tech.BatchLadder("Large", 1)
		} else {
			o.Ladder = o.Tech.BatchLadder("Small", 8)
		}
	}
}

func (o *Options) logf(format string, args ...interface{}) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

// Synthesize runs the full Contango flow on a benchmark.
func Synthesize(b *bench.Benchmark, o Options) (*Result, error) {
	return SynthesizeContext(context.Background(), b, o)
}

// SynthesizeContext runs the full Contango flow on a benchmark, honoring
// ctx: cancellation is checked between flow stages and before every
// improvement round of the optimization cascade, so a killed run stops
// burning simulator invocations promptly. On cancellation the context's
// error is returned and the partial tree is discarded.
func SynthesizeContext(ctx context.Context, b *bench.Benchmark, o Options) (*Result, error) {
	o = o.Resolve()
	start := time.Now()
	res := &Result{Benchmark: b}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// 1. Initial zero-skew tree (ZST/DME).
	tr := dme.BuildZST(o.Tech, b.Source, b.Sinks, dme.Options{})
	tr.SourceR = b.SourceR
	res.Tree = tr
	o.logf("%s: ZST built, %d sinks, wirelength %.0f µm", b.Name, len(b.Sinks), tr.Wirelength())

	// 2. Obstacle avoidance. The slew-free capacitance used for the detour
	// decision matches the workhorse composite the insertion phase will
	// actually place (the ladder's first rung).
	obs := geom.NewObstacleSet(b.Obstacles)
	safeCap := buffering.SafeLoad(o.Tech, o.Ladder[0])
	rep, err := route.Legalize(tr, obs, b.Die, route.Options{SafeCap: safeCap})
	if err != nil {
		return nil, fmt.Errorf("legalize: %w", err)
	}
	res.Legalization = *rep
	o.logf("%s: legalized (%v)", b.Name, rep)

	// 3. Composite buffer insertion with sizing (90% of the power budget).
	sweep, err := buffering.InsertBestComposite(tr, o.Ladder, b.CapLimit, o.Gamma,
		buffering.Options{Obs: obs, Step: o.BufferStep})
	if err != nil {
		return nil, fmt.Errorf("buffering: %w", err)
	}
	res.Composite = sweep.Composite
	o.logf("%s: inserted %d x %v, cap %.1f%% of limit", b.Name, sweep.Added,
		sweep.Composite, 100*sweep.TotalCap/b.CapLimit)

	// 4. Sink-polarity correction (Proposition 2). Correcting inverters use
	// a half-strength composite: their input capacitance lands on stages
	// already near their load target.
	res.InvertedSinks = len(buffering.InvertedSinks(tr))
	polComp := sweep.Composite
	if half := polComp.N / 2; half >= 1 {
		polComp.N = half
	}
	res.AddedInverters = buffering.CorrectPolarity(tr, polComp, obs)
	o.logf("%s: %d inverted sinks fixed with %d inverters", b.Name,
		res.InvertedSinks, res.AddedInverters)
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("after polarity: %w", err)
	}

	// 5. SPICE-driven optimization cascade (paper Fig. 1): every IVC round
	// is checked by the accurate transient engine, exactly as the paper
	// checks every round with SPICE; run counts land in the published
	// range because each pass converges in a handful of rounds. The
	// incremental evaluator wraps the engine so each round re-simulates
	// only the dirty cone of its mutations, with independent stages
	// integrated concurrently — identical results, a fraction of the work.
	var cne analysis.Evaluator = o.Engine
	var inc *spice.Incremental
	if !o.FullEval {
		inc = spice.NewIncremental(tr, o.Engine, o.Parallelism)
		cne = inc
	}
	cx := &opt.Context{
		Tree: tr, Eng: cne, Obs: obs, CapLimit: b.CapLimit,
		MaxRounds: o.MaxRounds, Parallelism: o.Parallelism,
		Log: o.Log, Check: ctx.Err,
	}
	record := func(name string) error {
		_, m, err := cx.Baseline()
		if err != nil {
			return err
		}
		res.Stages = append(res.Stages, StageRecord{Name: name, Metrics: m, Runs: o.Engine.Runs})
		o.logf("%s: [%s] %s", b.Name, name, m)
		return nil
	}
	calibrate := func() (eval.Metrics, error) {
		_, m, err := cx.Baseline()
		return m, err
	}

	if err := record("INITIAL"); err != nil {
		return nil, err
	}
	type stage struct {
		name string
		run  func(*opt.Context) error
	}
	// Composite stages: wiresizing includes the skew-directed buffer
	// downsizing (both are sizing steps); wiresnaking is preceded by the
	// pair-insertion equalizer, which does the coarse slow-down that
	// snaking then refines.
	sizing := func(cx *opt.Context) error {
		if err := opt.TopDownWiresizing(cx); err != nil {
			return err
		}
		return opt.SkewBufferSizing(cx)
	}
	snaking := func(cx *opt.Context) error {
		if err := opt.PairInsertion(cx); err != nil {
			return err
		}
		return opt.TopDownWiresnaking(cx)
	}
	cascade := []stage{
		{"TBSZ", opt.BufferSizing},
		{"TWSZ", sizing},
		{"TWSN", snaking},
		{"BWSN", opt.BottomLevelTuning},
	}
	for _, st := range cascade {
		if o.SkipStages[lower(st.name)] {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := st.run(cx); err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("%s: %w", st.name, err)
		}
		if err := record(st.name); err != nil {
			return nil, err
		}
	}
	// Extra convergence cycles over the wire passes (the feedback arrows in
	// the paper's Fig. 1): each recalibration re-anchors the hybrid, so the
	// residual model error shrinks geometrically.
	for cycle := 0; cycle < o.extraCycles(); cycle++ {
		improved := false
		before := res.Stages[len(res.Stages)-1].Metrics
		for _, st := range cascade[1:] { // TWSZ, TWSN, BWSN
			if o.SkipStages[lower(st.name)] {
				continue
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := st.run(cx); err != nil {
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				return nil, fmt.Errorf("cycle %d %s: %w", cycle, st.name, err)
			}
		}
		m, err := calibrate()
		if err != nil {
			return nil, err
		}
		if m.Skew < before.Skew-0.05 || m.CLR < before.CLR-0.05 {
			improved = true
		}
		last := res.Stages[len(res.Stages)-1].Name
		res.Stages[len(res.Stages)-1] = StageRecord{
			Name: last, Metrics: m, Runs: o.Engine.Runs,
		}
		o.logf("%s: [cycle %d] %s", b.Name, cycle, m)
		if !improved {
			break
		}
	}

	res.Final = res.Stages[len(res.Stages)-1].Metrics
	res.Runs = o.Engine.Runs
	if inc != nil {
		res.StageSims = inc.Stats.StagesSim
		res.StageReuses = inc.Stats.StagesHit
		o.logf("%s: incremental CNE: %d stage sims, %d cache hits (%.0f%% reused)",
			b.Name, res.StageSims, res.StageReuses,
			100*float64(res.StageReuses)/float64(max1(res.StageSims+res.StageReuses)))
	}
	res.Buffers = len(tr.Buffers())
	res.Elapsed = time.Since(start)
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("final validation: %w", err)
	}
	return res, nil
}

func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

// CNEOnly evaluates an existing tree at all corners without modifying it
// (used by cmd/cnseval and tests).
func CNEOnly(tr *ctree.Tree, eng *spice.Engine, capLimit float64) (eval.Metrics, []*analysis.Result, error) {
	if eng == nil {
		eng = spice.New()
	}
	rs, err := eng.EvaluateAll(tr)
	if err != nil {
		return eval.Metrics{}, nil, err
	}
	return eval.FromResults(tr, rs, capLimit), rs, nil
}
