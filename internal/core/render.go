package core

import (
	"io"

	"contango/internal/slack"
	"contango/internal/spice"
	"contango/internal/viz"
)

// RenderSVG writes the result's clock tree as an SVG in the style of the
// paper's Figure 3, with wires colored by slow-down slack. It re-evaluates
// the tree at every corner with a fresh engine; both the library's
// contango.RenderSVG and the service's SVG endpoint delegate here.
func RenderSVG(w io.Writer, res *Result) error {
	rs, err := spice.New().EvaluateAll(res.Tree)
	if err != nil {
		return err
	}
	slk := slack.Compute(res.Tree, rs)
	return viz.WriteSVG(w, res.Tree, viz.Options{
		Slacks:    slk,
		Obstacles: res.Benchmark.Obstacles,
		Die:       res.Benchmark.Die,
	})
}
