package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"contango/internal/bench"
	"contango/internal/buffering"
	"contango/internal/dme"
	"contango/internal/geom"
	"contango/internal/route"
	"contango/internal/spice"
)

// tinyBench builds a fast-to-simulate benchmark for flow tests.
func tinyBench() *bench.Benchmark {
	var sinks []dme.Sink
	locs := []geom.Point{
		{X: 2500, Y: 800}, {X: 2600, Y: 2100}, {X: 3500, Y: 1500},
		{X: 1500, Y: 2600}, {X: 3200, Y: 2900}, {X: 900, Y: 900},
		{X: 2100, Y: 1700}, {X: 3900, Y: 600},
	}
	for i, l := range locs {
		sinks = append(sinks, dme.Sink{Loc: l, Cap: 25 + float64(i), Name: string(rune('a' + i))})
	}
	b := &bench.Benchmark{
		Name:    "tiny",
		Die:     geom.NewRect(0, 0, 4200, 3200),
		Source:  geom.Pt(0, 1600),
		SourceR: 0.1,
		Sinks:   sinks,
		Obstacles: []geom.Obstacle{
			{Rect: geom.NewRect(1800, 1100, 2400, 1500), Name: "m0"},
		},
	}
	b.CapLimit = 60000
	return b
}

func TestSynthesizeEndToEnd(t *testing.T) {
	b := tinyBench()
	res, err := Synthesize(b, Options{MaxRounds: 4, Cycles: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(res.Tree.Sinks()) != len(b.Sinks) {
		t.Fatalf("sink count changed: %d", len(res.Tree.Sinks()))
	}
	if res.Buffers == 0 {
		t.Error("no buffers inserted")
	}
	// Stage records: INITIAL first, final last, named per the paper, and
	// each convergence cycle recorded as its own stage.
	names := []string{"INITIAL", "TBSZ", "TWSZ", "TWSN", "BWSN", "CYCLE1"}
	if len(res.Stages) != len(names) {
		t.Fatalf("stages=%d want %d", len(res.Stages), len(names))
	}
	for i, n := range names {
		if res.Stages[i].Name != n {
			t.Errorf("stage %d = %s want %s", i, res.Stages[i].Name, n)
		}
	}
	initial := res.Stages[0].Metrics
	final := res.Final
	if final.Skew > initial.Skew+1e-9 {
		t.Errorf("flow did not reduce skew: %v -> %v", initial.Skew, final.Skew)
	}
	if final.SlewViol > 0 {
		t.Errorf("final network has %d slew violations", final.SlewViol)
	}
	if b.CapLimit > 0 && final.TotalCap > b.CapLimit {
		t.Errorf("final cap %v over limit %v", final.TotalCap, b.CapLimit)
	}
	// Polarity must be correct at every sink.
	if got := len(buffering.InvertedSinks(res.Tree)); got != 0 {
		t.Errorf("%d sinks inverted in final tree", got)
	}
	// No heavy crossings remain.
	obs := geomObstacles(b)
	if bad := route.CheckLegal(res.Tree, obs, 1e9); len(bad) != 0 {
		t.Errorf("unexpected crossing load")
	}
	if res.Runs == 0 {
		t.Error("run counter not incremented")
	}
}

func geomObstacles(b *bench.Benchmark) *geom.ObstacleSet {
	return geom.NewObstacleSet(b.Obstacles)
}

func TestBaselinesRunAndLoseToContango(t *testing.T) {
	b := tinyBench()
	full, err := Synthesize(b, Options{MaxRounds: 4, Cycles: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []BaselineKind{BaselineNoOpt, BaselineGreedy, BaselineBST} {
		base, err := SynthesizeBaseline(b, kind, Options{})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if err := base.Tree.Validate(); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if len(base.Tree.Sinks()) != len(b.Sinks) {
			t.Fatalf("%v: sinks lost", kind)
		}
		// The optimized flow must beat every one-shot baseline on skew
		// (the paper's central claim, Table IV).
		if full.Final.Skew > base.Final.Skew {
			t.Errorf("%v baseline skew %.2f beats contango %.2f",
				kind, base.Final.Skew, full.Final.Skew)
		}
	}
}

func TestSkipStages(t *testing.T) {
	b := tinyBench()
	// Mixed-case names must skip too: Resolve canonicalizes the set with
	// the same helper the cache-key fingerprint uses.
	res, err := Synthesize(b, Options{
		MaxRounds:  2,
		Cycles:     1,
		SkipStages: map[string]bool{"TBSZ": true, "bwsn": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.Stages {
		if st.Name == "TBSZ" || st.Name == "BWSN" {
			t.Errorf("skipped stage %s still recorded", st.Name)
		}
	}
}

func TestCyclesDisabled(t *testing.T) {
	b := tinyBench()
	res, err := Synthesize(b, Options{MaxRounds: 2, Cycles: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.Stages {
		if strings.HasPrefix(st.Name, "CYCLE") {
			t.Errorf("Cycles: -1 still recorded %s", st.Name)
		}
	}
	if res.Stages[len(res.Stages)-1].Name != "BWSN" {
		t.Errorf("last stage = %s, want BWSN", res.Stages[len(res.Stages)-1].Name)
	}

	// Resolution semantics: 0 keeps the paper default, negatives normalize
	// to the canonical "disabled" value, and resolution stays idempotent.
	if got := (Options{}).Resolve().Cycles; got != 3 {
		t.Errorf("zero Cycles resolved to %d, want 3", got)
	}
	if got := (Options{Cycles: -7}).Resolve().Cycles; got != -1 {
		t.Errorf("negative Cycles resolved to %d, want -1", got)
	}
	r := (Options{Cycles: -1}).Resolve()
	if again := r.Resolve(); again.Cycles != r.Cycles {
		t.Errorf("Resolve not idempotent: %d then %d", r.Cycles, again.Cycles)
	}
}

func TestCNEOnly(t *testing.T) {
	b := tinyBench()
	res, err := SynthesizeBaseline(b, BaselineNoOpt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := spice.New()
	m, rs, err := CNEOnly(res.Tree, eng, b.CapLimit)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(res.Tree.Tech.Corners) {
		t.Fatalf("results=%d", len(rs))
	}
	if m.Skew <= 0 || m.CLR <= 0 {
		t.Errorf("degenerate metrics: %v", m)
	}
	if eng.Runs != len(rs) {
		t.Errorf("runs=%d want %d", eng.Runs, len(rs))
	}
}

func TestLargeInvertersMode(t *testing.T) {
	b := tinyBench()
	res, err := SynthesizeBaseline(b, BaselineNoOpt, Options{LargeInverters: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Composite.Type.Name != "Large" {
		t.Errorf("composite %v, want a Large group", res.Composite)
	}
}

func TestSynthesizeContextCancellation(t *testing.T) {
	b := tinyBench()

	// Already-canceled context: no work at all.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := spice.New()
	if _, err := SynthesizeContext(ctx, b, Options{Engine: eng}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if eng.Runs != 0 {
		t.Errorf("pre-canceled run performed %d simulations", eng.Runs)
	}

	// Cancel mid-cascade from the progress hook: the flow must stop at the
	// next checkpoint instead of finishing the cascade.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	eng2 := spice.New()
	o := Options{Engine: eng2, MaxRounds: 16}
	o.Log = func(format string, args ...interface{}) {
		if strings.Contains(fmt.Sprintf(format, args...), "[INITIAL]") {
			cancel2()
		}
	}
	if _, err := SynthesizeContext(ctx2, b, o); err != context.Canceled {
		t.Fatalf("mid-run err = %v, want context.Canceled", err)
	}
	runsAtCancel := eng2.Runs
	if runsAtCancel == 0 {
		t.Error("cascade canceled before the initial evaluation?")
	}
	// A full run needs strictly more evaluations than the canceled one.
	eng3 := spice.New()
	if _, err := Synthesize(b, Options{Engine: eng3, MaxRounds: 16}); err != nil {
		t.Fatal(err)
	}
	if eng3.Runs <= runsAtCancel {
		t.Errorf("cancellation saved nothing: canceled %d vs full %d runs", runsAtCancel, eng3.Runs)
	}
}
