package core

import (
	"context"
	"fmt"

	"contango/internal/buffering"
	"contango/internal/dme"
	"contango/internal/flow"
	"contango/internal/geom"
	"contango/internal/opt"
	"contango/internal/route"
)

// The paper's phases register as pipeline passes (flow package): four
// construction passes that build the tree, and four SPICE-driven cascade
// passes that run against the armed accurate evaluator. Plans compose
// them by name; "paper" reproduces the pre-pipeline hard-coded flow.
func init() {
	flow.Register(flow.Registration{Pass: flow.NewPass("zst", passZST)})
	flow.Register(flow.Registration{Pass: flow.NewPass("legalize", passLegalize)})
	flow.Register(flow.Registration{Pass: flow.NewPass("buffer", passBuffer)})
	flow.Register(flow.Registration{Pass: flow.NewPass("polarity", passPolarity)})
	flow.Register(flow.Registration{Pass: flow.NewPass("tbsz", optPass(opt.BufferSizing)),
		Optional: true, Record: true, NeedsEval: true})
	// Wiresizing includes the skew-directed buffer downsizing (both are
	// sizing steps); wiresnaking is preceded by the pair-insertion
	// equalizer, which does the coarse slow-down that snaking refines.
	flow.Register(flow.Registration{Pass: flow.NewPass("twsz", optPass(passSizing)),
		Optional: true, Record: true, NeedsEval: true})
	flow.Register(flow.Registration{Pass: flow.NewPass("twsn", optPass(passSnaking)),
		Optional: true, Record: true, NeedsEval: true})
	flow.Register(flow.Registration{Pass: flow.NewPass("bwsn", optPass(opt.BottomLevelTuning)),
		Optional: true, Record: true, NeedsEval: true})
}

// passZST builds the initial zero-skew tree (ZST/DME). The default path
// builds straight into the SoA arena (flat merge segments, slots reserved
// up front from the benchmark's sink count, parallel subtree merging);
// Options.PointerBuild selects the original pointer-node construction. The
// two are bit-identical.
func passZST(ctx context.Context, s *flow.State) error {
	b := s.Bench
	if s.BuildInArena() {
		a := dme.BuildZSTArena(s.Opts.Tech, b.Source, b.Sinks,
			dme.Options{Parallelism: s.Opts.Parallelism})
		a.SourceR = b.SourceR
		s.Arena = a
		s.Logf("%s: ZST built (arena), %d sinks, wirelength %.0f µm", b.Name, len(b.Sinks), a.Wirelength())
		return nil
	}
	tr := dme.BuildZST(s.Opts.Tech, b.Source, b.Sinks, dme.Options{})
	tr.SourceR = b.SourceR
	s.Tree = tr
	s.Logf("%s: ZST built, %d sinks, wirelength %.0f µm", b.Name, len(b.Sinks), tr.Wirelength())
	return nil
}

// passLegalize repairs obstacle violations. The slew-free capacitance used
// for the detour decision matches the workhorse composite the insertion
// phase will actually place (the ladder's first rung).
func passLegalize(ctx context.Context, s *flow.State) error {
	if s.Tree == nil && s.Arena == nil {
		return fmt.Errorf("no tree yet (the zst pass must run first)")
	}
	obs := geom.NewObstacleSet(s.Bench.Obstacles)
	s.Obs = obs
	safeCap := buffering.SafeLoad(s.Opts.Tech, s.Opts.Ladder[0])
	var rep *route.Report
	var err error
	if s.BuildInArena() && s.Arena != nil {
		rep, err = route.LegalizeArena(s.Arena, obs, s.Bench.Die, route.Options{SafeCap: safeCap})
	} else {
		rep, err = route.Legalize(s.Tree, obs, s.Bench.Die, route.Options{SafeCap: safeCap})
	}
	if err != nil {
		return err
	}
	s.Legalization = *rep
	s.Logf("%s: legalized (%v)", s.Bench.Name, rep)
	return nil
}

// passBuffer runs composite buffer insertion with sizing (90% of the power
// budget).
func passBuffer(ctx context.Context, s *flow.State) error {
	if s.Tree == nil && s.Arena == nil {
		return fmt.Errorf("no tree yet (the zst pass must run first)")
	}
	b := s.Bench
	var sweep *buffering.SweepResult
	var err error
	if s.BuildInArena() && s.Arena != nil {
		sweep, err = buffering.InsertBestCompositeArena(s.Arena, s.Opts.Ladder, b.CapLimit, s.Opts.Gamma,
			buffering.Options{Obs: s.Obs, Step: s.Opts.BufferStep})
	} else {
		sweep, err = buffering.InsertBestComposite(s.Tree, s.Opts.Ladder, b.CapLimit, s.Opts.Gamma,
			buffering.Options{Obs: s.Obs, Step: s.Opts.BufferStep})
	}
	if err != nil {
		return err
	}
	s.Composite = sweep.Composite
	s.Logf("%s: inserted %d x %v, cap %.1f%% of limit", b.Name, sweep.Added,
		sweep.Composite, 100*sweep.TotalCap/b.CapLimit)
	return nil
}

// passPolarity corrects sink polarity (Proposition 2). Correcting
// inverters use a half-strength composite: their input capacitance lands
// on stages already near their load target.
func passPolarity(ctx context.Context, s *flow.State) error {
	if s.Tree == nil && s.Arena == nil {
		return fmt.Errorf("no tree yet (the zst pass must run first)")
	}
	polComp := s.Composite
	if polComp.N == 0 {
		// A plan that skipped insertion still corrects with the ladder's
		// workhorse rung.
		polComp = s.Opts.Ladder[0]
	}
	if half := polComp.N / 2; half >= 1 {
		polComp.N = half
	}
	if s.BuildInArena() && s.Arena != nil {
		s.InvertedSinks = len(buffering.InvertedSinksArena(s.Arena))
		s.AddedInverters = buffering.CorrectPolarityArena(s.Arena, polComp, s.Obs)
		s.Logf("%s: %d inverted sinks fixed with %d inverters", s.Bench.Name,
			s.InvertedSinks, s.AddedInverters)
		return s.Arena.Validate()
	}
	s.InvertedSinks = len(buffering.InvertedSinks(s.Tree))
	s.AddedInverters = buffering.CorrectPolarity(s.Tree, polComp, s.Obs)
	s.Logf("%s: %d inverted sinks fixed with %d inverters", s.Bench.Name,
		s.InvertedSinks, s.AddedInverters)
	return s.Tree.Validate()
}

// optPass adapts a SPICE-driven optimization pass to the pipeline. The
// runner arms the evaluator (NeedsEval) before these run; cancellation is
// consulted by the pass itself before every improvement round via
// opt.Context.Check.
func optPass(f func(*opt.Context) error) flow.RunFunc {
	return func(ctx context.Context, s *flow.State) error {
		if s.Opt == nil {
			return fmt.Errorf("evaluator not armed")
		}
		return f(s.Opt)
	}
}

func passSizing(cx *opt.Context) error {
	if err := opt.TopDownWiresizing(cx); err != nil {
		return err
	}
	return opt.SkewBufferSizing(cx)
}

func passSnaking(cx *opt.Context) error {
	if err := opt.PairInsertion(cx); err != nil {
		return err
	}
	return opt.TopDownWiresnaking(cx)
}
