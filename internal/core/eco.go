package core

import (
	"context"
	"fmt"

	"contango/internal/buffering"
	"contango/internal/ctree"
	"contango/internal/eco"
	"contango/internal/flow"
	"contango/internal/geom"
)

// The "eco" pass is the construction prelude of incremental re-synthesis
// (the "eco" plan): instead of building a tree from scratch it restores
// the base run's finished tree and replays an ECO delta against it with
// locality-scoped repair. The tuning cascade then runs on the repaired
// tree exactly as it would after a full construction.
func init() {
	flow.Register(flow.Registration{Pass: flow.NewPass("eco", passECO)})
}

// passECO restores Options.ECO's base tree into a fresh arena and applies
// the delta. The submitted benchmark must be the delta-perturbed base
// benchmark (eco.Delta.Perturb) — the pass cross-checks the sink count so
// a mismatched (base, delta, benchmark) triple fails loudly instead of
// synthesizing against the wrong netlist.
func passECO(ctx context.Context, s *flow.State) error {
	spec := s.Opts.ECO
	if spec == nil || spec.Base == nil || spec.Delta == nil {
		return fmt.Errorf("eco pass needs Options.ECO with a base tree and a delta")
	}
	if s.Tree != nil || s.Arena != nil {
		return fmt.Errorf("eco pass must be the first construction pass (a tree already exists)")
	}
	obs := geom.NewObstacleSet(s.Bench.Obstacles)
	s.Obs = obs

	// Restore: the base pointer tree (decoded from the result envelope)
	// maps into a fresh arena; the cached base is never mutated.
	endRestore := spanHook(s, "eco", "restore")
	a := ctree.FromTree(spec.Base)
	eco.ReserveFor(a, spec.Delta)
	endRestore()

	comp := spec.Composite
	if comp.N == 0 {
		comp = s.Opts.Ladder[0]
	}
	endApply := spanHook(s, "eco", "apply")
	rep, err := eco.Apply(a, spec.Delta, eco.Config{
		Composite: comp,
		Obs:       obs,
		Die:       s.Bench.Die,
		SafeCap:   buffering.SafeLoad(s.Opts.Tech, comp),
	})
	endApply()
	if err != nil {
		return fmt.Errorf("eco apply: %w", err)
	}

	sinks := 0
	for i := 0; i < a.Len(); i++ {
		if a.Alive.Test(i) && a.Kind[i] == ctree.Sink {
			sinks++
		}
	}
	if sinks != len(s.Bench.Sinks) {
		return fmt.Errorf("eco: tree has %d sinks after the delta but the benchmark has %d (submit the delta-perturbed benchmark)",
			sinks, len(s.Bench.Sinks))
	}

	s.Arena = a
	s.Composite = comp
	s.Legalization = rep.Legalization
	s.AddedInverters = rep.AddedInverters
	s.Logf("%s: %s", s.Bench.Name, rep)
	return nil
}

// spanHook brackets an instrumented eco phase through the options' span
// hook (a no-op closure when none is installed).
func spanHook(s *flow.State, kind, name string) func() {
	if s.Opts.SpanHook == nil {
		return func() {}
	}
	return s.Opts.SpanHook(kind, name)
}
