package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"contango/internal/bench"
	"contango/internal/ctree"
	"contango/internal/eval"
	"contango/internal/geom"
	"contango/internal/route"
	"contango/internal/tech"
)

// Clone returns a deep copy of the result: its own benchmark, tree and
// stage slice, sharing only the immutable technology model. The service
// layer hands out clones at its cache boundary so callers can freely
// mutate what they were given without corrupting cached entries that
// other submissions will be served from.
func (r *Result) Clone() *Result {
	if r == nil {
		return nil
	}
	cp := *r
	if r.Benchmark != nil {
		cp.Benchmark = r.Benchmark.Clone()
	}
	if r.Tree != nil {
		cp.Tree = r.Tree.Clone()
	}
	cp.Stages = append([]StageRecord(nil), r.Stages...)
	return &cp
}

// codecVersion stamps encoded results; DecodeResult rejects unknown
// versions instead of guessing at a future layout.
const codecVersion = 1

// resultEnvelope is the persisted JSON shape of a Result. The benchmark
// rides along as its canonical text serialization (bench.Write) — the
// same bytes its content hash is computed over — and the tree as a flat
// node table, so decoding rebuilds a Result whose wire rendering is
// bit-identical to the original's.
type resultEnvelope struct {
	Version        int            `json:"version"`
	Bench          string         `json:"bench"`
	Tree           *treeEnvelope  `json:"tree"`
	Stages         []StageRecord  `json:"stages"`
	Final          eval.Metrics   `json:"final"`
	Runs           int            `json:"runs"`
	ElapsedNs      int64          `json:"elapsed_ns"`
	StageSims      int            `json:"stage_sims"`
	StageReuses    int            `json:"stage_reuses"`
	Buffers        int            `json:"buffers"`
	InvertedSinks  int            `json:"inverted_sinks"`
	AddedInverters int            `json:"added_inverters"`
	Legalization   route.Report   `json:"legalization"`
	Composite      tech.Composite `json:"composite"`
}

type treeEnvelope struct {
	SourceR float64         `json:"source_r"`
	Tech    *tech.Tech      `json:"tech"`
	Nodes   []*nodeEnvelope `json:"nodes"` // dense by ID; null marks deleted IDs
}

type nodeEnvelope struct {
	Kind     uint8           `json:"kind"`
	Loc      geom.Point      `json:"loc"`
	Parent   int             `json:"parent"` // -1 on the root
	Children []int           `json:"children,omitempty"`
	Route    geom.Polyline   `json:"route,omitempty"`
	WidthIdx int             `json:"width_idx,omitempty"`
	Snake    float64         `json:"snake,omitempty"`
	Buf      *tech.Composite `json:"buf,omitempty"`
	SinkCap  float64         `json:"sink_cap,omitempty"`
	Name     string          `json:"name,omitempty"`
}

// EncodeResult serializes a synthesis result for the durable store. The
// encoding is self-contained (benchmark, technology model, full tree,
// metric history and counters) and round-trips exactly: floats are
// rendered in Go's shortest round-trip form, so DecodeResult(EncodeResult(r))
// reproduces r field for field.
func EncodeResult(w io.Writer, r *Result) error {
	if r == nil {
		return fmt.Errorf("core: cannot encode nil result")
	}
	env := resultEnvelope{
		Version:        codecVersion,
		Stages:         r.Stages,
		Final:          r.Final,
		Runs:           r.Runs,
		ElapsedNs:      int64(r.Elapsed),
		StageSims:      r.StageSims,
		StageReuses:    r.StageReuses,
		Buffers:        r.Buffers,
		InvertedSinks:  r.InvertedSinks,
		AddedInverters: r.AddedInverters,
		Legalization:   r.Legalization,
		Composite:      r.Composite,
	}
	if r.Benchmark != nil {
		var bb bytes.Buffer
		if err := bench.Write(&bb, r.Benchmark); err != nil {
			return fmt.Errorf("core: encode benchmark: %w", err)
		}
		env.Bench = bb.String()
	}
	if r.Tree != nil {
		env.Tree = encodeTree(r.Tree)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(&env); err != nil {
		return fmt.Errorf("core: encode result: %w", err)
	}
	return nil
}

// encodeTree flattens the tree through the arena (SoA) form and serializes
// slot by slot. FromTree maps node ID i to slot i and preserves child order
// and routes exactly, so the envelope — Parent IDs, explicit child order,
// null entries for dead IDs — is byte-identical to what a direct pointer
// walk would produce; the codec tests pin that equivalence.
func encodeTree(tr *ctree.Tree) *treeEnvelope {
	a := ctree.FromTree(tr)
	env := &treeEnvelope{
		SourceR: a.SourceR,
		Tech:    a.Tech,
		Nodes:   make([]*nodeEnvelope, a.Len()),
	}
	for id := 0; id < a.Len(); id++ {
		if !a.Alive.Test(id) {
			continue
		}
		i := int32(id)
		ne := &nodeEnvelope{
			Kind:     uint8(a.Kind[i]),
			Loc:      a.Loc[i],
			Parent:   int(a.Parent[i]),
			Route:    a.Route(i),
			WidthIdx: int(a.WidthIdx[i]),
			Snake:    a.Snake[i],
			SinkCap:  a.SinkCap[i],
			Name:     a.Name[i],
		}
		if a.BufN[i] > 0 {
			ne.Buf = &tech.Composite{Type: a.BufType[i], N: int(a.BufN[i])}
		}
		if kids := a.Children(i); len(kids) > 0 {
			// Child order is semantic (traversal and evaluation order):
			// persist it explicitly rather than deriving it from parent
			// links.
			ne.Children = make([]int, len(kids))
			for j, c := range kids {
				ne.Children[j] = int(c)
			}
		}
		env.Nodes[id] = ne
	}
	return env
}

// DecodeResult parses a result previously written by EncodeResult and
// revalidates the rebuilt tree. Any structural damage — unknown version,
// unparsable benchmark, dangling node references, invariant violations —
// is an error; the durable store treats it as corruption.
func DecodeResult(rd io.Reader) (*Result, error) {
	var env resultEnvelope
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("core: decode result: %w", err)
	}
	if env.Version != codecVersion {
		return nil, fmt.Errorf("core: decode result: unsupported version %d", env.Version)
	}
	res := &Result{
		Stages:         env.Stages,
		Final:          env.Final,
		Runs:           env.Runs,
		Elapsed:        time.Duration(env.ElapsedNs),
		StageSims:      env.StageSims,
		StageReuses:    env.StageReuses,
		Buffers:        env.Buffers,
		InvertedSinks:  env.InvertedSinks,
		AddedInverters: env.AddedInverters,
		Legalization:   env.Legalization,
		Composite:      env.Composite,
	}
	if env.Bench != "" {
		b, err := bench.Read(strings.NewReader(env.Bench))
		if err != nil {
			return nil, fmt.Errorf("core: decode benchmark: %w", err)
		}
		res.Benchmark = b
	}
	if env.Tree != nil {
		tr, err := decodeTree(env.Tree)
		if err != nil {
			return nil, err
		}
		res.Tree = tr
	}
	return res, nil
}

func decodeTree(env *treeEnvelope) (*ctree.Tree, error) {
	if env.Tech == nil {
		return nil, fmt.Errorf("core: decode tree: missing technology model")
	}
	nodes := make([]*ctree.Node, len(env.Nodes))
	for id, ne := range env.Nodes {
		if ne == nil {
			continue
		}
		nodes[id] = &ctree.Node{
			ID:       id,
			Kind:     ctree.Kind(ne.Kind),
			Loc:      ne.Loc,
			Route:    ne.Route,
			WidthIdx: ne.WidthIdx,
			Snake:    ne.Snake,
			Buf:      ne.Buf,
			SinkCap:  ne.SinkCap,
			Name:     ne.Name,
		}
	}
	for id, ne := range env.Nodes {
		if ne == nil {
			continue
		}
		n := nodes[id]
		if ne.Parent >= 0 {
			if ne.Parent >= len(nodes) || nodes[ne.Parent] == nil {
				return nil, fmt.Errorf("core: decode tree: node %d has dangling parent %d", id, ne.Parent)
			}
			n.Parent = nodes[ne.Parent]
		}
		if len(ne.Children) > 0 {
			n.Children = make([]*ctree.Node, len(ne.Children))
			for i, cid := range ne.Children {
				if cid < 0 || cid >= len(nodes) || nodes[cid] == nil {
					return nil, fmt.Errorf("core: decode tree: node %d has dangling child %d", id, cid)
				}
				n.Children[i] = nodes[cid]
			}
		}
	}
	return ctree.Restore(env.Tech, env.SourceR, nodes)
}
