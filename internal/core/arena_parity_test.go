package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"contango/internal/bench"
	"contango/internal/ctree"
	"contango/internal/dme"
	"contango/internal/geom"
	"contango/internal/tech"
)

// randomBench builds a seeded random benchmark: sinks scattered over the
// die, avoiding a couple of random obstacles.
func randomBench(seed int64, n int) *bench.Benchmark {
	rng := rand.New(rand.NewSource(seed))
	die := geom.NewRect(0, 0, 8000, 6000)
	var obstacles []geom.Obstacle
	for k := 0; k < 2; k++ {
		x := 500 + rng.Float64()*6000
		y := 500 + rng.Float64()*4000
		obstacles = append(obstacles, geom.Obstacle{
			Rect: geom.NewRect(x, y, x+400+rng.Float64()*800, y+300+rng.Float64()*700),
			Name: fmt.Sprintf("b%d", k),
		})
	}
	obs := geom.NewObstacleSet(obstacles)
	var sinks []dme.Sink
	for len(sinks) < n {
		p := geom.Pt(rng.Float64()*8000, rng.Float64()*6000)
		if obs.BlocksPoint(p) {
			continue
		}
		sinks = append(sinks, dme.Sink{Loc: p, Cap: 20 + rng.Float64()*40,
			Name: fmt.Sprintf("s%d", len(sinks))})
	}
	b := &bench.Benchmark{
		Name: fmt.Sprintf("rand%d_%d", seed, n), Die: die,
		Source: geom.Pt(0, 3000), SourceR: 0.1,
		Sinks: sinks, Obstacles: obstacles,
	}
	b.CapLimit = 500000
	return b
}

// TestArenaConstructionParityRandom is the construction-parity property
// test: the arena-native construction path (the default) and the pointer
// path (Options.PointerBuild) must produce bit-identical results on
// randomized benchmarks — same tree node for node, same construction
// counters, and byte-identical persisted envelopes.
func TestArenaConstructionParityRandom(t *testing.T) {
	cases := []struct {
		seed int64
		n    int
	}{{1, 12}, {7, 40}, {23, 90}}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("seed%d_n%d", tc.seed, tc.n), func(t *testing.T) {
			opts := Options{Plan: "zst,legalize,buffer,polarity"}
			pointer := opts
			pointer.PointerBuild = true
			pres, err := Synthesize(randomBench(tc.seed, tc.n), pointer)
			if err != nil {
				t.Fatal(err)
			}
			ares, err := Synthesize(randomBench(tc.seed, tc.n), opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := ctree.Equal(pres.Tree, ares.Tree); err != nil {
				t.Fatalf("trees diverge: %v", err)
			}
			if pres.Buffers != ares.Buffers || pres.InvertedSinks != ares.InvertedSinks ||
				pres.AddedInverters != ares.AddedInverters {
				t.Fatalf("counters diverge: %d/%d buffers, %d/%d inverted, %d/%d added",
					pres.Buffers, ares.Buffers, pres.InvertedSinks, ares.InvertedSinks,
					pres.AddedInverters, ares.AddedInverters)
			}
			if pres.Legalization != ares.Legalization {
				t.Fatalf("legalization reports diverge: %v vs %v", pres.Legalization, ares.Legalization)
			}
			if !reflect.DeepEqual(pres.Final, ares.Final) {
				t.Fatalf("final metrics diverge: %v vs %v", pres.Final, ares.Final)
			}
			// The envelopes must be byte-identical. Elapsed is wall-clock —
			// the only field allowed to differ — so zero it on both sides.
			pres.Elapsed, ares.Elapsed = 0, 0
			var pb, ab bytes.Buffer
			if err := EncodeResult(&pb, pres); err != nil {
				t.Fatal(err)
			}
			if err := EncodeResult(&ab, ares); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(pb.Bytes(), ab.Bytes()) {
				t.Fatalf("encoded envelopes differ (%d vs %d bytes)", pb.Len(), ab.Len())
			}
		})
	}
}

// TestArenaDirtyJournalParityRandom: an arena built natively by DME and an
// arena flattened from the pointer-built tree must not only agree on
// content — after an identical randomized mutation burst their dirty
// journals must be identical too, so downstream incremental consumers see
// the same invalidation set whichever way the arena was produced.
func TestArenaDirtyJournalParityRandom(t *testing.T) {
	tk := tech.Default45()
	for _, seed := range []int64{3, 11, 42} {
		rng := rand.New(rand.NewSource(seed))
		b := randomBench(seed, 60)
		ptr := ctree.FromTree(dme.BuildZST(tk, b.Source, b.Sinks, dme.Options{}))
		arn := dme.BuildZSTArena(tk, b.Source, b.Sinks, dme.Options{})
		if arn.Len() != ptr.Len() {
			t.Fatalf("seed %d: arena sizes differ: %d vs %d", seed, arn.Len(), ptr.Len())
		}
		ptr.ClearDirty()
		arn.ClearDirty()
		comp := tech.Composite{Type: tk.Inverters[0], N: 2}
		for burst := 0; burst < 200; burst++ {
			i := int32(rng.Intn(ptr.Len()))
			if !ptr.Alive.Test(int(i)) {
				continue
			}
			switch op := rng.Intn(5); {
			case op == 0:
				w := rng.Intn(len(tk.Wires))
				ptr.SetWidth(i, w)
				arn.SetWidth(i, w)
			case op == 1:
				v := rng.Float64() * 40
				ptr.SetSnake(i, v)
				arn.SetSnake(i, v)
			case op == 2:
				dv := rng.Float64() * 10
				ptr.AddSnake(i, dv)
				arn.AddSnake(i, dv)
			case op == 3 && ptr.BufN[i] > 0:
				n := 1 + rng.Intn(4)
				ptr.SetBufferSize(i, n)
				arn.SetBufferSize(i, n)
			case op == 4 && ptr.Parent[i] >= 0 && ptr.EdgeLen(i) > 1:
				d := rng.Float64() * ptr.EdgeLen(i)
				pn := ptr.InsertOnEdge(i, d, ctree.Buffer)
				an := arn.InsertOnEdge(i, d, ctree.Buffer)
				if pn != an {
					t.Fatalf("seed %d: InsertOnEdge slot ids diverge: %d vs %d", seed, pn, an)
				}
				ptr.SetBuf(pn, comp)
				arn.SetBuf(an, comp)
			}
		}
		if !reflect.DeepEqual(ptr.DirtyIDs(), arn.DirtyIDs()) {
			t.Fatalf("seed %d: dirty journals diverge:\n  pointer: %v\n  arena:   %v",
				seed, ptr.DirtyIDs(), arn.DirtyIDs())
		}
		pt, err := ptr.ToTree()
		if err != nil {
			t.Fatal(err)
		}
		at, err := arn.ToTree()
		if err != nil {
			t.Fatal(err)
		}
		if err := ctree.Equal(pt, at); err != nil {
			t.Fatalf("seed %d: trees diverge after burst: %v", seed, err)
		}
	}
}
