package core

import (
	"bytes"
	"reflect"
	"testing"

	"contango/internal/corners"
)

// TestDefaultCornerSetParity is the corner-set acceptance property: asking
// for "ispd09" explicitly must be bit-identical — every stage record,
// every metric field, the same simulator run count — to the legacy zero
// value, because the default set is defined as "leave the technology's
// native corners untouched".
func TestDefaultCornerSetParity(t *testing.T) {
	opts := Options{MaxRounds: 3, Cycles: 1}
	legacy, err := Synthesize(tinyBench(), opts)
	if err != nil {
		t.Fatal(err)
	}
	optsExplicit := opts
	optsExplicit.Corners = "ispd09"
	explicit, err := Synthesize(tinyBench(), optsExplicit)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy.Stages, explicit.Stages) {
		t.Errorf("stage records diverged:\nlegacy   %+v\nexplicit %+v", legacy.Stages, explicit.Stages)
	}
	if !reflect.DeepEqual(legacy.Final, explicit.Final) {
		t.Errorf("final metrics diverged:\nlegacy   %+v\nexplicit %+v", legacy.Final, explicit.Final)
	}
	if legacy.Runs != explicit.Runs {
		t.Errorf("run counts diverged: %d vs %d", legacy.Runs, explicit.Runs)
	}
}

// TestPVT5Synthesis runs the flow across the five-corner PVT envelope and
// checks the multi-corner reporting: five per-corner rows, a spread at
// least as wide as the role-based CLR, and an attributed worst corner.
func TestPVT5Synthesis(t *testing.T) {
	res, err := Synthesize(tinyBench(), Options{MaxRounds: 2, Cycles: -1, Corners: "pvt5"})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Final
	if len(m.PerCorner) != 5 {
		t.Fatalf("per-corner rows=%d want 5", len(m.PerCorner))
	}
	if m.CLRSpread < m.CLR-1e-9 {
		t.Errorf("CLRSpread %v narrower than CLR %v", m.CLRSpread, m.CLR)
	}
	if m.WorstCorner == "" {
		t.Error("no worst-corner attribution")
	}
	if m.Yield != 0 {
		t.Errorf("pvt5 is not an MC set; yield=%v", m.Yield)
	}
	// The undervolt SS corner must be slower than the native slow corner:
	// its max latency is the global max.
	var ss, slow float64
	for _, c := range m.PerCorner {
		switch c.Name {
		case res.Tree.Tech.Worst().Name:
			ss = c.MaxLat
		case "slow@1.0V":
			slow = c.MaxLat
		}
	}
	if !(ss > slow) {
		t.Errorf("ss corner (%v ps) not slower than native slow (%v ps)", ss, slow)
	}
}

// TestMonteCarloDeterministic: two synthesis runs under the same mc spec
// are bit-identical, and the MC yield statistics are populated.
func TestMonteCarloDeterministic(t *testing.T) {
	opts := Options{MaxRounds: 2, Cycles: -1, Corners: "mc:6:11"}
	a, err := Synthesize(tinyBench(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(tinyBench(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Final, b.Final) {
		t.Errorf("mc runs diverged for a fixed seed:\n%+v\n%+v", a.Final, b.Final)
	}
	if !reflect.DeepEqual(a.Stages, b.Stages) {
		t.Error("mc stage histories diverged for a fixed seed")
	}
	m := a.Final
	if len(m.PerCorner) != 6 {
		t.Fatalf("per-corner rows=%d want 6", len(m.PerCorner))
	}
	if m.LatP50 <= 0 || m.LatP95 < m.LatP50 {
		t.Errorf("quantiles wrong: p50=%v p95=%v", m.LatP50, m.LatP95)
	}
	if m.Yield <= 0 || m.Yield > 1 {
		t.Errorf("yield=%v out of range", m.Yield)
	}
	// A different seed draws different corners and must shift the envelope
	// metrics (the network construction itself is corner-independent only
	// until the cascade, so any difference is fine — assert the corner
	// sets themselves differ via the recorded per-corner voltages).
	optsSeed := opts
	optsSeed.Corners = "mc:6:12"
	c, err := Synthesize(tinyBench(), optsSeed)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Final.PerCorner, c.Final.PerCorner) {
		t.Error("different mc seeds produced identical per-corner stats")
	}
}

// TestInvalidCornerSpec: a bad spec is a clean submit-time error, never a
// silent fall-back to the default corners.
func TestInvalidCornerSpec(t *testing.T) {
	if _, err := Synthesize(tinyBench(), Options{Corners: "mc:bad"}); err == nil {
		t.Error("invalid mc spec accepted")
	}
	if _, err := SynthesizeBaseline(tinyBench(), BaselineNoOpt, Options{Corners: "marzipan"}); err == nil {
		t.Error("unknown set name accepted by baseline flow")
	}
}

// TestResolveCornerIdempotent: resolving twice must not re-derive a
// generated set from its own output (the classic sample-of-samples bug).
func TestResolveCornerIdempotent(t *testing.T) {
	o := Options{Corners: "mc:5:3"}
	r1 := o.Resolve()
	r2 := r1.Resolve()
	if !reflect.DeepEqual(r1.Tech.Corners, r2.Tech.Corners) {
		t.Error("double Resolve re-derived the mc set")
	}
	if r1.Tech.CornerSpec != corners.Canon("mc:5:3") {
		t.Errorf("applied spec not recorded: %q", r1.Tech.CornerSpec)
	}
	// And the original default tech is never mutated by resolution.
	o2 := Options{Corners: "pvt5"}
	res := o2.Resolve()
	if res.Tech == nil || len(res.Tech.Corners) != 5 {
		t.Fatalf("pvt5 not applied: %+v", res.Tech)
	}
}

// TestCodecRoundTripCornerSet: a result synthesized under a derated corner
// set must round-trip through the durable codec with its corner roles,
// derates and per-corner metrics intact — a recovered artifact re-renders
// the same wire JSON.
func TestCodecRoundTripCornerSet(t *testing.T) {
	res, err := Synthesize(tinyBench(), Options{MaxRounds: 1, Cycles: -1, Corners: "mc:4:9",
		SkipStages: map[string]bool{"tbsz": true, "twsz": true, "twsn": true, "bwsn": true}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Final, res.Final) {
		t.Errorf("final metrics drifted:\n got %+v\nwant %+v", got.Final, res.Final)
	}
	tk, want := got.Tree.Tech, res.Tree.Tech
	if !reflect.DeepEqual(tk.Corners, want.Corners) {
		t.Error("corner list (incl. derates) drifted through the codec")
	}
	if tk.RefIdx != want.RefIdx || tk.WorstIdx != want.WorstIdx ||
		tk.MCSet != want.MCSet || tk.CornerSpec != want.CornerSpec {
		t.Errorf("corner roles drifted: %+v vs %+v", tk, want)
	}
	// Re-encode is byte-stable.
	var buf2 bytes.Buffer
	if err := EncodeResult(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("re-encode of a decoded corner-set result is not bit-identical")
	}
}

// TestCornerSpecTechMismatch: requesting a non-default set on a Tech that
// already carries a different applied set is unsatisfiable (generated sets
// derive from native corners) and must error, not silently run under the
// stale corners.
func TestCornerSpecTechMismatch(t *testing.T) {
	applied := Options{Corners: "pvt5"}.Resolve().Tech
	if applied.CornerSpec != "pvt5" {
		t.Fatalf("setup: pvt5 not applied (%q)", applied.CornerSpec)
	}
	_, err := Synthesize(tinyBench(), Options{Tech: applied, Corners: "mc:8:1"})
	if err == nil {
		t.Fatal("mismatched corner spec on an applied Tech must error")
	}
	// Reusing the applied Tech with a matching (or default) spec is fine.
	if _, err := SynthesizeBaseline(tinyBench(), BaselineNoOpt, Options{Tech: applied, Corners: "pvt5"}); err != nil {
		t.Fatalf("matching spec rejected: %v", err)
	}
	if _, err := SynthesizeBaseline(tinyBench(), BaselineNoOpt, Options{Tech: applied}); err != nil {
		t.Fatalf("default spec on an applied Tech rejected: %v", err)
	}
}
