package bench

import (
	"crypto/sha256"
	"encoding/hex"
)

// Hash returns a stable content address for the benchmark: the SHA-256 of
// its canonical text serialization (the Write format is deterministic —
// fixed directive order, %g number formatting). Two benchmarks with the
// same sinks, die, source, obstacles and budget hash identically regardless
// of how they were constructed, which is what lets the service layer dedupe
// repeated submissions of generated suites and uploaded files alike.
func (b *Benchmark) Hash() string {
	h := sha256.New()
	// Write only fails on the underlying writer's error; sha256 never errors.
	_ = Write(h, b)
	return hex.EncodeToString(h.Sum(nil))
}
