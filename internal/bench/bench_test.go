package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"contango/internal/geom"
)

func TestISPD09SuiteStatistics(t *testing.T) {
	wantSinks := map[string]int{
		"ispd09f11": 121, "ispd09f12": 117, "ispd09f21": 117,
		"ispd09f22": 91, "ispd09f31": 273, "ispd09f32": 190,
		"ispd09fnb1": 330,
	}
	for _, b := range ISPD09Suite() {
		if got := len(b.Sinks); got != wantSinks[b.Name] {
			t.Errorf("%s: sinks=%d want %d", b.Name, got, wantSinks[b.Name])
		}
		if b.CapLimit <= 0 {
			t.Errorf("%s: no cap limit", b.Name)
		}
		obs := geom.NewObstacleSet(b.Obstacles)
		for _, s := range b.Sinks {
			if !b.Die.Contains(s.Loc) {
				t.Errorf("%s: sink %s outside die", b.Name, s.Name)
			}
			if obs.BlocksPoint(s.Loc) {
				t.Errorf("%s: sink %s inside obstacle", b.Name, s.Name)
			}
			if s.Cap < 20 || s.Cap > 50 {
				t.Errorf("%s: sink cap %v out of range", b.Name, s.Cap)
			}
		}
		for _, o := range b.Obstacles {
			if o.Rect.Empty() {
				t.Errorf("%s: empty obstacle", b.Name)
			}
		}
	}
}

func TestISPD09Deterministic(t *testing.T) {
	a, _ := ISPD09("ispd09f31")
	b, _ := ISPD09("ispd09f31")
	if len(a.Sinks) != len(b.Sinks) {
		t.Fatal("nondeterministic sink count")
	}
	for i := range a.Sinks {
		if a.Sinks[i].Loc != b.Sinks[i].Loc || a.Sinks[i].Cap != b.Sinks[i].Cap {
			t.Fatalf("nondeterministic sink %d", i)
		}
	}
}

func TestISPD09Unknown(t *testing.T) {
	if _, err := ISPD09("nope"); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestF31HasAbuttingObstacles(t *testing.T) {
	b, _ := ISPD09("ispd09f31")
	obs := geom.NewObstacleSet(b.Obstacles)
	if len(obs.Compounds) >= len(b.Obstacles) {
		t.Errorf("expected at least one compound of abutting obstacles: %d obstacles, %d compounds",
			len(b.Obstacles), len(obs.Compounds))
	}
}

func TestTIPoolAndSampling(t *testing.T) {
	p := NewTIPool()
	if len(p.Locs) != 135000 {
		t.Fatalf("pool size %d want 135000", len(p.Locs))
	}
	for _, n := range []int{200, 1000, 5000} {
		b := p.Sample(n, 1)
		if len(b.Sinks) != n {
			t.Fatalf("sample %d: got %d sinks", n, len(b.Sinks))
		}
		for _, s := range b.Sinks {
			if !p.Die.Contains(s.Loc) {
				t.Fatalf("sample sink outside die")
			}
		}
	}
	// Distinct seeds give distinct samples; same seed reproduces.
	a := p.Sample(500, 1)
	b := p.Sample(500, 1)
	c := p.Sample(500, 2)
	same, diff := 0, 0
	for i := range a.Sinks {
		if a.Sinks[i].Loc == b.Sinks[i].Loc {
			same++
		}
		if a.Sinks[i].Loc != c.Sinks[i].Loc {
			diff++
		}
	}
	if same != 500 {
		t.Error("same seed must reproduce the sample")
	}
	if diff == 0 {
		t.Error("different seeds should differ")
	}
}

func TestFormatRoundTrip(t *testing.T) {
	b, _ := ISPD09("ispd09f22")
	var buf bytes.Buffer
	if err := Write(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != b.Name || got.Die != b.Die || got.Source != b.Source {
		t.Error("header fields differ after round trip")
	}
	if math.Abs(got.CapLimit-b.CapLimit) > 1e-6 || got.SourceR != b.SourceR {
		t.Error("limits differ after round trip")
	}
	if len(got.Sinks) != len(b.Sinks) || len(got.Obstacles) != len(b.Obstacles) {
		t.Fatal("counts differ after round trip")
	}
	for i := range b.Sinks {
		if got.Sinks[i] != b.Sinks[i] {
			t.Fatalf("sink %d differs: %+v vs %+v", i, got.Sinks[i], b.Sinks[i])
		}
	}
}

func TestReadMalformed(t *testing.T) {
	cases := []string{
		"sink s1 10 20",           // missing cap
		"die 0 0 100",             // missing coordinate
		"bogus directive",         // unknown
		"sink s1 a b c",           // non-numeric
		"name x\ndie 0 0 100 100", // no sinks
		"sink s1 1 2 30",          // no die
		"name x\ndie 0 0 100 100\nsourcer -1\nsink a 1 1 1", // bad resistance
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("expected parse error for %q", c)
		}
	}
}

func TestReadIgnoresCommentsAndBlank(t *testing.T) {
	src := `
# a comment
name tiny

die 0 0 1000 1000
source 0 500
# another
sink a 100 200 30
`
	b, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != "tiny" || len(b.Sinks) != 1 {
		t.Errorf("parsed %+v", b)
	}
}
