package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestStats(t *testing.T) {
	b, err := ISPD09("ispd09f22")
	if err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.Sinks != len(b.Sinks) {
		t.Fatalf("Sinks = %d, want %d", st.Sinks, len(b.Sinks))
	}
	var capSum float64
	for _, s := range b.Sinks {
		capSum += s.Cap
		if !st.BBox.Contains(s.Loc) {
			t.Fatalf("sink %s outside reported bbox", s.Name)
		}
	}
	if st.CapTotal != capSum {
		t.Fatalf("CapTotal = %v, want %v", st.CapTotal, capSum)
	}
	if st.BBox.W() <= 0 || st.BBox.H() <= 0 {
		t.Fatalf("degenerate bbox %+v", st.BBox)
	}
}

func TestLoadRoundTripAndErrors(t *testing.T) {
	dir := t.TempDir()
	b, err := ISPD09("ispd09f22")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, b); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "f22.bench")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != b.Name || len(got.Sinks) != len(b.Sinks) {
		t.Fatalf("Load mismatch: %s/%d vs %s/%d", got.Name, len(got.Sinks), b.Name, len(b.Sinks))
	}
	// Missing file errors name the path.
	if _, err := Load(filepath.Join(dir, "absent.bench")); err == nil || !strings.Contains(err.Error(), "absent.bench") {
		t.Fatalf("missing-file error lacks path: %v", err)
	}
	// Parse errors keep the line number and gain the path.
	badPath := filepath.Join(dir, "bad.bench")
	if err := os.WriteFile(badPath, []byte("name x\ndie 0 0 10 10\nsink broken\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(badPath)
	if err == nil || !strings.Contains(err.Error(), "bad.bench") || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("parse error missing path or line: %v", err)
	}
}

func TestGenerateTIScale(t *testing.T) {
	var buf bytes.Buffer
	const n = 5000
	if err := GenerateTIScale(&buf, n, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# sinks 5000\n") {
		t.Fatal("missing sink-count hint comment")
	}
	b, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Sinks) != n {
		t.Fatalf("sinks = %d, want %d", len(b.Sinks), n)
	}
	if cap(b.Sinks) != n {
		t.Fatalf("hint did not presize: cap = %d, want %d", cap(b.Sinks), n)
	}
	if b.CapLimit <= 0 || b.SourceR != 0.1 {
		t.Fatalf("bad header fields: caplimit %v sourcer %v", b.CapLimit, b.SourceR)
	}
	for i := range b.Sinks {
		if !b.Die.Contains(b.Sinks[i].Loc) {
			t.Fatalf("sink %d outside die", i)
		}
	}
	// At the pool's own size the die matches the TI chip; above it, the die
	// area grows linearly with n (constant density).
	var small, big bytes.Buffer
	if err := GenerateTIScale(&small, 135000/100, 1); err != nil {
		t.Fatal(err)
	}
	if err := GenerateTIScale(&big, 270000, 1); err != nil {
		t.Fatal(err)
	}
	bs, err := Read(bytes.NewReader(small.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	bb, err := Read(bytes.NewReader(big.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if bs.Die.W() != 4200 || bs.Die.H() != 3000 {
		t.Fatalf("sub-pool die should stay 4200x3000, got %gx%g", bs.Die.W(), bs.Die.H())
	}
	ratio := bb.Die.Area() / bs.Die.Area()
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("2x sinks should give ~2x area, got ratio %v", ratio)
	}
	// Determinism: same (n, seed) gives identical bytes.
	var again bytes.Buffer
	if err := GenerateTIScale(&again, n, 1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("GenerateTIScale not deterministic")
	}
	// Invalid counts are rejected.
	if err := GenerateTIScale(&bytes.Buffer{}, 0, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
}
