package bench

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"os"

	"contango/internal/geom"
)

// Stats summarizes a benchmark's load without retaining it: sink count,
// sink bounding box, and total pin capacitance. The scheduler's cost model
// keys off these instead of re-deriving them ad hoc.
type Stats struct {
	Sinks    int
	BBox     geom.Rect
	CapTotal float64 // fF, sinks only
}

// Stats computes the summary in one pass over the sink list.
func (b *Benchmark) Stats() Stats {
	st := Stats{Sinks: len(b.Sinks)}
	for i := range b.Sinks {
		s := &b.Sinks[i]
		st.CapTotal += s.Cap
		if i == 0 {
			st.BBox = geom.NewRect(s.Loc.X, s.Loc.Y, s.Loc.X, s.Loc.Y)
			continue
		}
		if s.Loc.X < st.BBox.MinX {
			st.BBox.MinX = s.Loc.X
		}
		if s.Loc.X > st.BBox.MaxX {
			st.BBox.MaxX = s.Loc.X
		}
		if s.Loc.Y < st.BBox.MinY {
			st.BBox.MinY = s.Loc.Y
		}
		if s.Loc.Y > st.BBox.MaxY {
			st.BBox.MaxY = s.Loc.Y
		}
	}
	return st
}

// Load reads a benchmark file from disk through a sized buffered reader.
// Errors carry the path; parse errors keep Read's line numbers.
func Load(path string) (*Benchmark, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	defer f.Close()
	b, err := Read(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return b, nil
}

// tiBaseSinks is the TI pool's published sink-location count; scale cases
// grow the die so placement density stays at the real chip's level.
const tiBaseSinks = 135000

// GenerateTIScale streams a TI-style benchmark with n sinks directly to w
// without materializing the sink slice, so million-sink cases cost O(1)
// generator memory. The die grows with sqrt(n/135000) to hold density
// constant; layout statistics (register rows, macro-shadow void, pin caps)
// match NewTIPool's distribution. Output is the standard text format plus a
// "# sinks n" hint comment that Read uses to presize its sink slice.
// Deterministic per (n, seed).
func GenerateTIScale(w io.Writer, n int, seed int64) error {
	if n <= 0 {
		return fmt.Errorf("bench: ti-scale needs a positive sink count, got %d", n)
	}
	scale := 1.0
	if n > tiBaseSinks {
		scale = sqrt(float64(n) / tiBaseSinks)
	}
	die := geom.NewRect(0, 0, 4200*scale, 3000*scale)
	source := geom.Pt(0, die.H()/2)

	// The cap budget uses the same closed form as the generated suites,
	// computed from the counts alone so no sink list is needed.
	wl := 0.75 * sqrt(float64(n)*die.Area())
	capLimit := 2.6*wl*0.3 + 180*float64(n)

	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "# contango benchmark\n# sinks %d\n", n)
	fmt.Fprintf(bw, "name ti-scale-%d\n", n)
	fmt.Fprintf(bw, "die %g %g %g %g\n", die.MinX, die.MinY, die.MaxX, die.MaxY)
	fmt.Fprintf(bw, "source %g %g\n", source.X, source.Y)
	fmt.Fprintf(bw, "sourcer %g\n", 0.1)
	fmt.Fprintf(bw, "caplimit %g\n", capLimit)

	rng := rand.New(rand.NewSource(seed))
	const rows = 60
	voidMinX, voidMaxX := 1000*scale, 2000*scale
	voidMinY, voidMaxY := 800*scale, 1800*scale
	for i := 0; i < n; {
		row := rng.Intn(rows)
		y := die.MinY + (float64(row)+0.5)*die.H()/rows + rng.NormFloat64()*4
		x := die.MinX + rng.Float64()*die.W()
		if rng.Float64() < 0.25 && x > voidMinX && x < voidMaxX && y > voidMinY && y < voidMaxY {
			continue
		}
		if !die.Contains(geom.Pt(x, y)) {
			continue
		}
		cap := 1.5 + rng.Float64()*2
		fmt.Fprintf(bw, "sink ff%d %g %g %g\n", i, x, y, cap)
		i++
	}
	return bw.Flush()
}
