package bench

import "testing"

func TestHashDeterministicAndContentSensitive(t *testing.T) {
	b1, err := ISPD09("ispd09f22")
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := ISPD09("ispd09f22")
	if b1.Hash() != b2.Hash() {
		t.Error("regenerated benchmark changed its content hash")
	}
	other, _ := ISPD09("ispd09f11")
	if b1.Hash() == other.Hash() {
		t.Error("different benchmarks share a hash")
	}
	// Any content change moves the hash.
	b2.Sinks[0].Cap += 1
	if b1.Hash() == b2.Hash() {
		t.Error("sink capacitance change did not move the hash")
	}
	b3, _ := ISPD09("ispd09f22")
	b3.CapLimit *= 2
	if b1.Hash() == b3.Hash() {
		t.Error("cap-limit change did not move the hash")
	}
}
