// Package bench provides the benchmark suites the paper evaluates on. The
// original ISPD'09 CNS contest files and the Texas Instruments chip are not
// redistributable, so this package generates synthetic equivalents with the
// published statistics: the contest's seven benchmarks with their sink
// counts, die sizes and placement blockages, and a TI-style 135K-location
// sink pool on a 4.2×3.0 mm die sampled down to 200…50K sinks (Table V's
// protocol). Generation is deterministic per benchmark name.
package bench

import (
	"fmt"
	"math/rand"
	"sort"

	"contango/internal/dme"
	"contango/internal/geom"
)

// Benchmark is one clock-network synthesis instance.
type Benchmark struct {
	Name      string
	Die       geom.Rect
	Source    geom.Point
	SourceR   float64 // clock source output resistance, kΩ
	Sinks     []dme.Sink
	Obstacles []geom.Obstacle
	// CapLimit is the total wire+buffer capacitance budget, fF.
	CapLimit float64
}

// Clone returns a deep copy of the benchmark: the sink and obstacle slices
// get their own backing arrays, so truncating or rescaling the copy (as the
// bench harnesses do to bound runtimes) cannot alias the original.
func (b *Benchmark) Clone() *Benchmark {
	cp := *b
	cp.Sinks = append([]dme.Sink(nil), b.Sinks...)
	cp.Obstacles = append([]geom.Obstacle(nil), b.Obstacles...)
	return &cp
}

// ispdSpec describes one synthetic contest benchmark.
type ispdSpec struct {
	name      string
	dieUm     float64 // square die edge, µm
	sinks     int
	obstacles int
	clusters  int
	seed      int64
}

// The published sink counts of the ISPD'09 CNS suite with plausible die
// sizes (the contest chips were up to 17×17 mm).
var ispdSpecs = []ispdSpec{
	{"ispd09f11", 16000, 121, 0, 4, 11},
	{"ispd09f12", 16000, 117, 0, 4, 12},
	{"ispd09f21", 17000, 117, 4, 5, 21},
	{"ispd09f22", 12000, 91, 3, 4, 22},
	{"ispd09f31", 17000, 273, 8, 7, 31},
	{"ispd09f32", 14000, 190, 6, 6, 32},
	{"ispd09fnb1", 8000, 330, 2, 9, 41},
}

// ISPD09Names returns the benchmark names in suite order.
func ISPD09Names() []string {
	out := make([]string, len(ispdSpecs))
	for i, s := range ispdSpecs {
		out[i] = s.name
	}
	return out
}

// ISPD09 generates the named synthetic contest benchmark. Unknown names
// return an error.
func ISPD09(name string) (*Benchmark, error) {
	for _, s := range ispdSpecs {
		if s.name == name {
			return genISPD(s), nil
		}
	}
	return nil, fmt.Errorf("bench: unknown ISPD'09 benchmark %q", name)
}

// ISPD09Suite generates all seven benchmarks.
func ISPD09Suite() []*Benchmark {
	out := make([]*Benchmark, len(ispdSpecs))
	for i, s := range ispdSpecs {
		out[i] = genISPD(s)
	}
	return out
}

func genISPD(spec ispdSpec) *Benchmark {
	rng := rand.New(rand.NewSource(spec.seed))
	die := geom.NewRect(0, 0, spec.dieUm, spec.dieUm)
	b := &Benchmark{
		Name:    spec.name,
		Die:     die,
		Source:  geom.Pt(0, spec.dieUm/2), // clock enters at the die boundary
		SourceR: 0.1,
	}
	// Obstacles: macros covering 8-20% of the die edge each; make one pair
	// abut so compound handling is exercised on the f31-style benchmarks.
	for len(b.Obstacles) < spec.obstacles {
		w := (0.08 + 0.12*rng.Float64()) * spec.dieUm
		h := (0.08 + 0.12*rng.Float64()) * spec.dieUm
		x := rng.Float64() * (spec.dieUm - w)
		y := rng.Float64() * (spec.dieUm - h)
		r := geom.NewRect(x, y, x+w, y+h)
		if r.Inflate(200).Contains(b.Source) {
			continue
		}
		b.Obstacles = append(b.Obstacles, geom.Obstacle{
			Rect: r, Name: fmt.Sprintf("macro%d", len(b.Obstacles)),
		})
		if len(b.Obstacles) == 1 && spec.obstacles >= 4 {
			// Abutting companion block.
			w2 := w * 0.6
			b.Obstacles = append(b.Obstacles, geom.Obstacle{
				Rect: geom.NewRect(r.MaxX, r.MinY, r.MaxX+w2, r.MinY+h*0.7),
				Name: "macro-abut",
			})
		}
	}
	obs := geom.NewObstacleSet(b.Obstacles)

	// Sinks: clustered placement (register banks) plus uniform background,
	// never inside obstacles.
	centers := make([]geom.Point, spec.clusters)
	for i := range centers {
		centers[i] = geom.Pt(rng.Float64()*spec.dieUm, rng.Float64()*spec.dieUm)
	}
	for len(b.Sinks) < spec.sinks {
		var p geom.Point
		if rng.Float64() < 0.7 {
			c := centers[rng.Intn(len(centers))]
			p = geom.Pt(
				c.X+rng.NormFloat64()*spec.dieUm/12,
				c.Y+rng.NormFloat64()*spec.dieUm/12,
			)
		} else {
			p = geom.Pt(rng.Float64()*spec.dieUm, rng.Float64()*spec.dieUm)
		}
		if !die.Contains(p) || obs.BlocksPoint(p) {
			continue
		}
		b.Sinks = append(b.Sinks, dme.Sink{
			Loc:  p,
			Cap:  20 + rng.Float64()*30,
			Name: fmt.Sprintf("s%d", len(b.Sinks)),
		})
	}
	b.CapLimit = estimateCapLimit(b)
	return b
}

// estimateCapLimit sets the benchmark's capacitance budget the way the
// contest did: generous enough for a buffered tree, tight enough that
// careless snaking overruns it. We budget 2.6× the wire capacitance of a
// half-perimeter-scaled Steiner estimate plus per-sink buffering overhead.
func estimateCapLimit(b *Benchmark) float64 {
	// Classic Steiner length estimate: 0.75·sqrt(n·A).
	n := float64(len(b.Sinks))
	area := b.Die.Area()
	wl := 0.75 * sqrt(n*area)
	wireCapPerUm := 0.3 // widest wire
	perSink := 180.0    // buffering overhead per sink, fF (composites + polarity)
	return 2.6*wl*wireCapPerUm + perSink*n
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton iterations are plenty for budget estimation.
	g := x
	for i := 0; i < 40; i++ {
		g = 0.5 * (g + x/g)
	}
	return g
}

// TIPool is the synthetic stand-in for the paper's Texas Instruments chip:
// a 4.2×3.0 mm die holding 135K candidate sink locations arranged in
// clustered register rows.
type TIPool struct {
	Die    geom.Rect
	Source geom.Point
	Locs   []geom.Point
}

// NewTIPool generates the 135K-location pool (deterministic).
func NewTIPool() *TIPool {
	const nLocs = 135000
	die := geom.NewRect(0, 0, 4200, 3000)
	rng := rand.New(rand.NewSource(777))
	p := &TIPool{Die: die, Source: geom.Pt(0, 1500)}
	// Register rows: horizontal bands with clustered fill.
	const rows = 60
	for len(p.Locs) < nLocs {
		row := rng.Intn(rows)
		y := die.MinY + (float64(row)+0.5)*die.H()/rows + rng.NormFloat64()*4
		x := die.MinX + rng.Float64()*die.W()
		// Band occupancy varies by region to mimic macro-dominated zones.
		if rng.Float64() < 0.25 && x > 1000 && x < 2000 && y > 800 && y < 1800 {
			continue
		}
		if !die.Contains(geom.Pt(x, y)) {
			continue
		}
		p.Locs = append(p.Locs, geom.Pt(x, y))
	}
	return p
}

// Sample draws n sinks uniformly from the pool (deterministic per seed) and
// wraps them in a benchmark, mirroring the paper's Table V protocol.
func (p *TIPool) Sample(n int, seed int64) *Benchmark {
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(p.Locs))[:n]
	sort.Ints(idx)
	b := &Benchmark{
		Name:    fmt.Sprintf("ti-%d", n),
		Die:     p.Die,
		Source:  p.Source,
		SourceR: 0.1,
	}
	for i, id := range idx {
		b.Sinks = append(b.Sinks, dme.Sink{
			Loc:  p.Locs[id],
			Cap:  1.5 + rng.Float64()*2, // small flop clock pins
			Name: fmt.Sprintf("ff%d", i),
		})
	}
	b.CapLimit = estimateCapLimit(b)
	return b
}
