package bench

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"contango/internal/dme"
	"contango/internal/geom"
)

// Write serializes a benchmark in the library's plain-text format:
//
//	name <string>
//	die <minx> <miny> <maxx> <maxy>
//	source <x> <y>
//	sourcer <kohm>
//	caplimit <fF>
//	sink <name> <x> <y> <cap_fF>
//	obstacle <name> <minx> <miny> <maxx> <maxy>
//
// Lines starting with '#' are comments. All coordinates are µm.
func Write(w io.Writer, b *Benchmark) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# contango benchmark\nname %s\n", b.Name)
	fmt.Fprintf(bw, "die %g %g %g %g\n", b.Die.MinX, b.Die.MinY, b.Die.MaxX, b.Die.MaxY)
	fmt.Fprintf(bw, "source %g %g\n", b.Source.X, b.Source.Y)
	fmt.Fprintf(bw, "sourcer %g\n", b.SourceR)
	fmt.Fprintf(bw, "caplimit %g\n", b.CapLimit)
	for _, s := range b.Sinks {
		fmt.Fprintf(bw, "sink %s %g %g %g\n", s.Name, s.Loc.X, s.Loc.Y, s.Cap)
	}
	for _, o := range b.Obstacles {
		fmt.Fprintf(bw, "obstacle %s %g %g %g %g\n",
			o.Name, o.Rect.MinX, o.Rect.MinY, o.Rect.MaxX, o.Rect.MaxY)
	}
	return bw.Flush()
}

// Read parses the text format written by Write.
func Read(r io.Reader) (*Benchmark, error) {
	b := &Benchmark{SourceR: 0.1}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			// Scale-generated files carry a "# sinks n" hint so the sink
			// slice can be sized once instead of doubling its way up.
			if f := strings.Fields(line); len(f) == 3 && f[0] == "#" && f[1] == "sinks" {
				if n, err := strconv.Atoi(f[2]); err == nil && n > 0 && n <= 4<<20 && b.Sinks == nil {
					b.Sinks = make([]dme.Sink, 0, n)
				}
			}
			continue
		}
		f := strings.Fields(line)
		bad := func(why string) error {
			return fmt.Errorf("bench: line %d: %s: %q", lineNo, why, line)
		}
		num := func(s string) (float64, error) { return strconv.ParseFloat(s, 64) }
		switch f[0] {
		case "name":
			if len(f) != 2 {
				return nil, bad("name needs 1 argument")
			}
			b.Name = f[1]
		case "die":
			if len(f) != 5 {
				return nil, bad("die needs 4 coordinates")
			}
			var v [4]float64
			for i := 0; i < 4; i++ {
				x, err := num(f[i+1])
				if err != nil {
					return nil, bad("bad coordinate")
				}
				v[i] = x
			}
			b.Die = geom.NewRect(v[0], v[1], v[2], v[3])
		case "source":
			if len(f) != 3 {
				return nil, bad("source needs 2 coordinates")
			}
			x, err1 := num(f[1])
			y, err2 := num(f[2])
			if err1 != nil || err2 != nil {
				return nil, bad("bad coordinate")
			}
			b.Source = geom.Pt(x, y)
		case "sourcer":
			if len(f) != 2 {
				return nil, bad("sourcer needs 1 value")
			}
			v, err := num(f[1])
			if err != nil || v <= 0 {
				return nil, bad("bad source resistance")
			}
			b.SourceR = v
		case "caplimit":
			if len(f) != 2 {
				return nil, bad("caplimit needs 1 value")
			}
			v, err := num(f[1])
			if err != nil || v < 0 {
				return nil, bad("bad cap limit")
			}
			b.CapLimit = v
		case "sink":
			if len(f) != 5 {
				return nil, bad("sink needs name x y cap")
			}
			x, err1 := num(f[2])
			y, err2 := num(f[3])
			c, err3 := num(f[4])
			if err1 != nil || err2 != nil || err3 != nil || c < 0 {
				return nil, bad("bad sink fields")
			}
			b.Sinks = append(b.Sinks, dme.Sink{Name: f[1], Loc: geom.Pt(x, y), Cap: c})
		case "obstacle":
			if len(f) != 6 {
				return nil, bad("obstacle needs name and 4 coordinates")
			}
			var v [4]float64
			for i := 0; i < 4; i++ {
				x, err := num(f[i+2])
				if err != nil {
					return nil, bad("bad coordinate")
				}
				v[i] = x
			}
			b.Obstacles = append(b.Obstacles, geom.Obstacle{
				Name: f[1], Rect: geom.NewRect(v[0], v[1], v[2], v[3]),
			})
		default:
			return nil, bad("unknown directive")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(b.Sinks) == 0 {
		return nil, fmt.Errorf("bench: no sinks in benchmark")
	}
	if b.Die.Empty() {
		return nil, fmt.Errorf("bench: missing or empty die")
	}
	return b, nil
}
