package tech

import (
	"math"
	"testing"
)

func TestTableIMatchesPaper(t *testing.T) {
	tk := Default45()
	rows := tk.TableI()
	// Paper Table I, resistance converted to kΩ.
	want := []TableIRow{
		{"1X Large", 35, 80, 0.0612},
		{"1X Small", 4.2, 6.1, 0.440},
		{"2X Small", 8.4, 12.2, 0.220},
		{"4X Small", 16.8, 24.4, 0.110},
		{"8X Small", 33.6, 48.8, 0.055},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows=%d want %d", len(rows), len(want))
	}
	byLabel := map[string]TableIRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	for _, w := range want {
		g, ok := byLabel[w.Label]
		if !ok {
			t.Fatalf("missing row %q", w.Label)
		}
		if math.Abs(g.Cin-w.Cin) > 1e-9 || math.Abs(g.Cout-w.Cout) > 1e-9 || math.Abs(g.Rout-w.Rout) > 1e-6 {
			t.Errorf("%s: got (%v,%v,%v) want (%v,%v,%v)", w.Label, g.Cin, g.Cout, g.Rout, w.Cin, w.Cout, w.Rout)
		}
	}
}

func TestEightSmallDominatesLarge(t *testing.T) {
	// The paper's key observation: 8 parallel small inverters have smaller
	// input cap, smaller output cap AND smaller output resistance than one
	// large inverter.
	tk := Default45()
	var large, small InverterType
	for _, inv := range tk.Inverters {
		if inv.Name == "Large" {
			large = inv
		} else if inv.Name == "Small" {
			small = inv
		}
	}
	l := Composite{Type: large, N: 1}
	s8 := Composite{Type: small, N: 8}
	if !(s8.Cin() < l.Cin() && s8.Cout() < l.Cout() && s8.Rout() < l.Rout()) {
		t.Errorf("8x small (%v,%v,%v) should dominate 1x large (%v,%v,%v)",
			s8.Cin(), s8.Cout(), s8.Rout(), l.Cin(), l.Cout(), l.Rout())
	}
	// Therefore every large composite whose 8N-small counterpart is
	// available must be dominated and absent from the non-dominated set;
	// larger groups are legitimately kept (no small group that strong).
	for _, c := range tk.NonDominatedComposites() {
		if c.Type.Name == "Large" && 8*c.N <= tk.MaxParallel {
			t.Errorf("large inverter %v should be dominated by %dx small", c, 8*c.N)
		}
	}
}

func TestBatchLadder(t *testing.T) {
	tk := Default45()
	small := tk.BatchLadder("Small", 8)
	if len(small) != tk.MaxParallel/8 {
		t.Fatalf("small ladder len=%d want %d", len(small), tk.MaxParallel/8)
	}
	for i, c := range small {
		if c.N != 8*(i+1) || c.Type.Name != "Small" {
			t.Errorf("entry %d = %v, want %dx Small", i, c, 8*(i+1))
		}
	}
	large := tk.BatchLadder("Large", 1)
	if len(large) != tk.MaxParallel {
		t.Fatalf("large ladder len=%d", len(large))
	}
	if got := tk.BatchLadder("Nonexistent", 1); got != nil {
		t.Error("unknown type should yield nil ladder")
	}
	if got := tk.BatchLadder("Small", 0); got != nil {
		t.Error("zero batch should yield nil ladder")
	}
}

func TestNonDominatedSetIsPareto(t *testing.T) {
	tk := Default45()
	nd := tk.NonDominatedComposites()
	if len(nd) == 0 {
		t.Fatal("empty non-dominated set")
	}
	for i, a := range nd {
		for j, b := range nd {
			if i != j && dominated(a, b) {
				t.Errorf("%v dominated by %v inside ND set", a, b)
			}
		}
	}
}

func TestCompositeLadderStrictlyStronger(t *testing.T) {
	tk := Default45()
	ladder := tk.CompositeLadder()
	if len(ladder) < 3 {
		t.Fatalf("ladder too short: %d", len(ladder))
	}
	for i := 1; i < len(ladder); i++ {
		if ladder[i].Rout() >= ladder[i-1].Rout() {
			t.Errorf("ladder not strictly stronger at %d: %v then %v", i, ladder[i-1], ladder[i])
		}
	}
}

func TestCompositeScaling(t *testing.T) {
	inv := InverterType{Name: "x", Cin: 10, Cout: 20, Rout: 1.0}
	c := Composite{Type: inv, N: 4}
	if c.Cin() != 40 || c.Cout() != 80 || c.Rout() != 0.25 {
		t.Errorf("composite scaling wrong: %v %v %v", c.Cin(), c.Cout(), c.Rout())
	}
	if c.CapCost() != 120 {
		t.Errorf("CapCost=%v", c.CapCost())
	}
}

func TestRoutAtCorners(t *testing.T) {
	tk := Default45()
	c := Composite{Type: tk.Inverters[0], N: 1}
	rFast := tk.RoutAt(c, 1.2)
	rSlow := tk.RoutAt(c, 1.0)
	if math.Abs(rFast-c.Rout()) > 1e-9 {
		t.Errorf("Rout at reference supply should equal spec: %v vs %v", rFast, c.Rout())
	}
	if rSlow <= rFast {
		t.Errorf("low supply must weaken the driver: %v vs %v", rSlow, rFast)
	}
	// Expected ratio (VddRef-Vt)/(Vdd-Vt) = 0.85/0.65.
	want := rFast * 0.85 / 0.65
	if math.Abs(rSlow-want) > 1e-9 {
		t.Errorf("rSlow=%v want %v", rSlow, want)
	}
	if r := tk.RoutAt(c, 0.2); r < 1e11 {
		t.Errorf("sub-threshold supply should give enormous resistance, got %v", r)
	}
}

func TestWideNarrow(t *testing.T) {
	tk := Default45()
	w, n := tk.Wide(), tk.Narrow()
	if w == n {
		t.Fatal("wide and narrow must differ")
	}
	if tk.Wires[w].RPerUm >= tk.Wires[n].RPerUm {
		t.Error("wide wire should have lower resistance")
	}
	if tk.Wires[w].CPerUm <= tk.Wires[n].CPerUm {
		t.Error("wide wire should have higher capacitance")
	}
}

func TestSlewSafeCapReasonable(t *testing.T) {
	tk := Default45()
	if tk.SlewSafeCap <= 0 {
		t.Fatal("SlewSafeCap must be positive")
	}
	// With the strongest composite (~55 Ω) and a 100 ps limit, the safe cap
	// should be in the hundreds of fF.
	if tk.SlewSafeCap < 100 || tk.SlewSafeCap > 10000 {
		t.Errorf("SlewSafeCap=%v out of plausible range", tk.SlewSafeCap)
	}
}

func TestKDriveConsistency(t *testing.T) {
	tk := Default45()
	for _, c := range tk.CompositeLadder() {
		k := tk.KDrive(c)
		ron := 1 / (2 * k * (tk.VddRef - tk.Vt))
		if math.Abs(ron-c.Rout()) > 1e-9 {
			t.Errorf("%v: calibrated Ron %v != spec %v", c, ron, c.Rout())
		}
	}
}

// TestCornerRoles: the zero-value roles preserve the legacy "first fast,
// last slow" convention; explicit roles override it.
func TestCornerRoles(t *testing.T) {
	tk := Default45()
	if tk.ReferenceIndex() != 0 || tk.WorstIndex() != len(tk.Corners)-1 {
		t.Errorf("legacy roles wrong: ref=%d worst=%d", tk.ReferenceIndex(), tk.WorstIndex())
	}
	if tk.Reference().Name != "fast@1.2V" || tk.Worst().Name != "slow@1.0V" {
		t.Errorf("role corners wrong: %q / %q", tk.Reference().Name, tk.Worst().Name)
	}
	tk.Corners = append(tk.Corners, Corner{Name: "ss@0.9V", Vdd: 0.9})
	tk.RefIdx, tk.WorstIdx = 0, 2
	if tk.Worst().Name != "ss@0.9V" {
		t.Errorf("explicit worst role ignored: %q", tk.Worst().Name)
	}
	// Worst explicitly at index 0 with a non-zero reference is honored —
	// only the both-zero legacy case defaults to the last corner.
	tk.RefIdx, tk.WorstIdx = 2, 0
	if tk.WorstIndex() != 0 || tk.Reference().Name != "ss@0.9V" {
		t.Errorf("inverted roles wrong: ref=%q worstIdx=%d", tk.Reference().Name, tk.WorstIndex())
	}
}

// TestCornerScales: zero derates and weight mean exactly 1.0, so legacy
// Corner literals are unaffected.
func TestCornerScales(t *testing.T) {
	c := Corner{Name: "x", Vdd: 1.2}
	if c.RScale() != 1 || c.CScale() != 1 || c.W() != 1 {
		t.Errorf("zero-value scales not unity: %v %v %v", c.RScale(), c.CScale(), c.W())
	}
	c = Corner{Name: "y", Vdd: 1.0, RDerate: 1.1, CDerate: 0.95, Weight: 2}
	if c.RScale() != 1.1 || c.CScale() != 0.95 || c.W() != 2 {
		t.Errorf("explicit scales lost: %v %v %v", c.RScale(), c.CScale(), c.W())
	}
}

func TestTechClone(t *testing.T) {
	tk := Default45()
	cp := tk.Clone()
	ri := cp.ReferenceIndex()
	cp.Corners[ri].Vdd = 9
	cp.RefIdx = 1
	if tk.Reference().Vdd == 9 || tk.RefIdx == 1 {
		t.Error("Clone shares corner state with the original")
	}
}
