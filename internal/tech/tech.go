// Package tech models the 45 nm technology used by the ISPD'09 clock-network
// synthesis contest: wire types, clock inverters, parallel (composite)
// inverter configurations, supply-voltage corners and design limits.
//
// Unit system (used across the whole library):
//
//	distance    µm
//	resistance  kΩ
//	capacitance fF
//	time        ps   (kΩ · fF = ps)
//	voltage     V
//	current     mA   (V / kΩ)
//
// The inverter electrical parameters reproduce Table I of the paper.
package tech

import (
	"fmt"
	"sort"
)

// WireType describes one available wire width.
type WireType struct {
	Name   string
	RPerUm float64 // resistance per µm, kΩ/µm
	CPerUm float64 // capacitance per µm, fF/µm
}

// InverterType describes one library inverter (Table I rows "1X Large",
// "1X Small").
type InverterType struct {
	Name string
	Cin  float64 // input pin capacitance, fF
	Cout float64 // output (self-loading) capacitance, fF
	Rout float64 // effective output resistance, kΩ
}

// Composite is a parallel composition of N identical inverters, used as a
// single logical clock buffer (paper Section IV-B). Parallel composition
// divides output resistance by N and multiplies both capacitances by N.
type Composite struct {
	Type InverterType
	N    int
}

// Cin returns the input capacitance of the composite in fF.
func (c Composite) Cin() float64 { return c.Type.Cin * float64(c.N) }

// Cout returns the output self-capacitance of the composite in fF.
func (c Composite) Cout() float64 { return c.Type.Cout * float64(c.N) }

// Rout returns the effective output resistance of the composite in kΩ.
func (c Composite) Rout() float64 { return c.Type.Rout / float64(c.N) }

// CapCost is the composite's contribution to the total-capacitance budget
// (input plus output capacitance, as the contest counts buffer loading).
func (c Composite) CapCost() float64 { return c.Cin() + c.Cout() }

func (c Composite) String() string { return fmt.Sprintf("%dx %s", c.N, c.Type.Name) }

// Corner is one PVT evaluation scenario: a supply voltage plus optional
// interconnect derates and a statistical weight. The ISPD'09 contest
// evaluated the Clock Latency Range between a 1.2 V corner and a 1.0 V
// corner; richer corner sets (PVT grids, Monte Carlo samples — package
// corners) add process variation through RDerate/CDerate.
//
// The zero values of the new fields mean "no derating, unit weight", so a
// plain Corner{Name, Vdd} literal keeps its historical meaning exactly.
// Corner stays comparable (it keys per-corner evaluation caches).
type Corner struct {
	Name string
	Vdd  float64

	// RDerate scales every extracted wire resistance at this corner
	// (0 means 1.0 — no derating). Process corners with slow interconnect
	// use values > 1.
	RDerate float64 `json:",omitempty"`
	// CDerate scales every extracted capacitance at this corner (0 means
	// 1.0 — no derating).
	CDerate float64 `json:",omitempty"`
	// Weight is the corner's statistical weight for yield and quantile
	// accounting over Monte Carlo sets (0 means 1.0). It never affects the
	// deterministic CLR/skew metrics.
	Weight float64 `json:",omitempty"`
}

// RScale returns the effective wire-resistance scale (RDerate, with the
// zero value meaning no derating).
func (c Corner) RScale() float64 {
	if c.RDerate == 0 {
		return 1
	}
	return c.RDerate
}

// CScale returns the effective capacitance scale (CDerate, with the zero
// value meaning no derating).
func (c Corner) CScale() float64 {
	if c.CDerate == 0 {
		return 1
	}
	return c.CDerate
}

// W returns the corner's statistical weight (the zero value means 1).
func (c Corner) W() float64 {
	if c.Weight == 0 {
		return 1
	}
	return c.Weight
}

// Tech bundles every technology parameter the synthesizer needs.
type Tech struct {
	Wires     []WireType     // index 0 is the default (widest) clock wire
	Inverters []InverterType // available clock inverters
	// Corners are the evaluation scenarios. Corner ROLES (which corner is
	// the fast reference, which is the worst case) live in RefIdx/WorstIdx;
	// use Reference/Worst instead of indexing positionally.
	Corners []Corner

	Vt     float64 // device threshold voltage, V
	VddRef float64 // voltage at which Rout values are specified, V

	SlewLimit   float64 // max 10-90% slew anywhere in the network, ps
	MaxParallel int     // largest parallel composition considered

	// SlewSafeCap is the largest downstream capacitance (fF) a single
	// strongest composite may drive without risking a slew violation; used
	// by the obstacle detourer (paper Section IV-A Step 2). Derived by
	// Default45 from the slew limit.
	SlewSafeCap float64

	// RefIdx and WorstIdx assign corner roles: RefIdx is the fast
	// (reference) corner, WorstIdx the worst-case (slow) corner. The
	// legacy zero value — both zero — keeps the historical convention of
	// "first corner is fast, last corner is slow", so technology literals
	// that predate corner sets are unaffected. Package corners installs
	// explicit roles when applying a corner set. Read the roles through
	// ReferenceIndex/WorstIndex (or Reference/Worst); this defaulting rule
	// is the single place positional convention survives.
	RefIdx   int `json:",omitempty"`
	WorstIdx int `json:",omitempty"`

	// MCSet marks the corner list as a Monte Carlo sample set: the eval
	// layer then reports yield and latency quantiles over the (weighted)
	// samples in addition to the deterministic role-based metrics.
	MCSet bool `json:",omitempty"`

	// CornerSpec records which corner-set spec installed the current
	// Corners (empty for a native technology model). Corner-set
	// application is skipped when the spec already matches, which makes
	// options resolution idempotent: generated sets (pvt5, mc) derive from
	// the native corner envelope and must never be re-derived from
	// themselves.
	CornerSpec string `json:",omitempty"`
}

// ReferenceIndex returns the index of the fast (reference) corner.
func (t *Tech) ReferenceIndex() int {
	if t.RefIdx >= 0 && t.RefIdx < len(t.Corners) {
		return t.RefIdx
	}
	return 0
}

// WorstIndex returns the index of the worst-case (slow) corner. With the
// legacy zero-value roles (RefIdx == WorstIdx == 0) it defaults to the
// last corner, preserving the pre-corner-set convention.
func (t *Tech) WorstIndex() int {
	if t.WorstIdx == 0 && t.RefIdx == 0 {
		return len(t.Corners) - 1
	}
	if t.WorstIdx >= 0 && t.WorstIdx < len(t.Corners) {
		return t.WorstIdx
	}
	return len(t.Corners) - 1
}

// Reference returns the fast (reference) corner — the corner nominal skew
// and the CLR's "least latency" leg are measured at.
func (t *Tech) Reference() Corner { return t.Corners[t.ReferenceIndex()] }

// Worst returns the worst-case (slow) corner — the corner the CLR's
// "greatest latency" leg is measured at.
func (t *Tech) Worst() Corner { return t.Corners[t.WorstIndex()] }

// Clone returns a copy of the technology model with its own corner slice,
// so corner-set application never mutates a shared Tech. Wire and inverter
// tables are immutable in practice and stay shared.
func (t *Tech) Clone() *Tech {
	cp := *t
	cp.Corners = append([]Corner(nil), t.Corners...)
	return &cp
}

// Default45 returns the 45 nm technology matching the paper's Table I, with
// two wire widths and two inverter types, evaluated at 1.2 V and 1.0 V.
func Default45() *Tech {
	t := &Tech{
		// Clock nets route on thick upper metals: low resistance per µm.
		// The narrow width trades 3x the resistance for 40% less
		// capacitance, which is what makes wiresizing a slow-down knob
		// that simultaneously saves power.
		Wires: []WireType{
			{Name: "W1-wide", RPerUm: 0.00003, CPerUm: 0.25},   // 0.03 Ω/µm
			{Name: "W2-narrow", RPerUm: 0.00009, CPerUm: 0.15}, // 0.09 Ω/µm
		},
		Inverters: []InverterType{
			{Name: "Large", Cin: 35, Cout: 80, Rout: 0.0612},
			{Name: "Small", Cin: 4.2, Cout: 6.1, Rout: 0.440},
		},
		Corners: []Corner{
			{Name: "fast@1.2V", Vdd: 1.2},
			{Name: "slow@1.0V", Vdd: 1.0},
		},
		Vt:          0.35,
		VddRef:      1.2,
		SlewLimit:   100,
		MaxParallel: 64,
	}
	// A driver with resistance R driving lumped cap C has a 10-90% slew of
	// about 2.2·R·C; solve 2.2·R·C = SlewLimit for C with the workhorse
	// composite of each family — one large inverter, or the paper's batch
	// of 8 parallel small inverters (≈ 55 Ω) — and keep the better. The 40%
	// margin covers input-slew degradation through deep chains and leaves
	// room for the snaking passes to add capacitance without tripping the
	// limit.
	rMin := 1e18
	for _, inv := range t.Inverters {
		r := inv.Rout
		if inv.Name == "Small" {
			r = inv.Rout / 8
		}
		if r < rMin {
			rMin = r
		}
	}
	t.SlewSafeCap = 0.45 * t.SlewLimit / (2.2 * rMin)
	return t
}

// Wide returns the index of the lowest-resistance wire type.
func (t *Tech) Wide() int {
	best := 0
	for i, w := range t.Wires {
		if w.RPerUm < t.Wires[best].RPerUm {
			best = i
		}
	}
	_ = best
	return best
}

// Narrow returns the index of the highest-resistance wire type.
func (t *Tech) Narrow() int {
	best := 0
	for i, w := range t.Wires {
		if w.RPerUm > t.Wires[best].RPerUm {
			best = i
		}
	}
	return best
}

// KDrive returns the square-law transconductance (mA/V²) that makes a
// composite's linear-region on-resistance equal Rout at the reference
// supply: Ron = 1/(2·K·(VddRef−Vt)).
func (t *Tech) KDrive(c Composite) float64 {
	vov := t.VddRef - t.Vt
	return 1 / (2 * c.Rout() * vov)
}

// RoutAt returns the effective on-resistance (kΩ) of composite c at supply
// vdd. Lower supply means less gate overdrive and a weaker driver, which is
// what makes the 1.0 V corner slower (the CLR mechanism).
func (t *Tech) RoutAt(c Composite, vdd float64) float64 {
	vov := vdd - t.Vt
	if vov <= 0 {
		return 1e12
	}
	return 1 / (2 * t.KDrive(c) * vov)
}

// dominated reports whether a is dominated by b: b is no worse in input cap,
// output cap and output resistance, and strictly better in at least one.
func dominated(a, b Composite) bool {
	if b.Cin() > a.Cin() || b.Cout() > a.Cout() || b.Rout() > a.Rout() {
		return false
	}
	return b.Cin() < a.Cin() || b.Cout() < a.Cout() || b.Rout() < a.Rout()
}

// NonDominatedComposites enumerates parallel compositions 1..MaxParallel of
// every inverter type and returns the Pareto-optimal set ordered by
// decreasing output resistance (weakest first). This is the paper's
// composite inverter/buffer analysis: with Table I parameters every
// multiple-of-8 group of small inverters dominates the corresponding group
// of large inverters.
func (t *Tech) NonDominatedComposites() []Composite {
	var all []Composite
	for _, inv := range t.Inverters {
		for n := 1; n <= t.MaxParallel; n++ {
			all = append(all, Composite{Type: inv, N: n})
		}
	}
	var keep []Composite
	for i, a := range all {
		dom := false
		for j, b := range all {
			if i != j && dominated(a, b) {
				dom = true
				break
			}
		}
		if !dom {
			keep = append(keep, a)
		}
	}
	sort.Slice(keep, func(i, j int) bool {
		if keep[i].Rout() != keep[j].Rout() {
			return keep[i].Rout() > keep[j].Rout()
		}
		return keep[i].Cin() < keep[j].Cin()
	})
	return keep
}

// CompositeLadder returns an escalating series of buffer strengths drawn
// from the non-dominated set, suitable for the buffer-insertion sweep: each
// entry is strictly stronger (lower Rout) than the previous.
func (t *Tech) CompositeLadder() []Composite {
	nd := t.NonDominatedComposites()
	var out []Composite
	last := 1e18
	for _, c := range nd {
		if c.Rout() < last {
			out = append(out, c)
			last = c.Rout()
		}
	}
	return out
}

// BatchLadder returns compositions of the named inverter type in batches of
// the given size: batch, 2·batch, 3·batch … up to MaxParallel. The paper
// uses batches of 8 small inverters (8×, 16×, 24×, …) on the contest
// benchmarks and batches of large inverters on the TI scalability runs.
func (t *Tech) BatchLadder(typeName string, batch int) []Composite {
	var inv *InverterType
	for i := range t.Inverters {
		if t.Inverters[i].Name == typeName {
			inv = &t.Inverters[i]
		}
	}
	if inv == nil || batch <= 0 {
		return nil
	}
	var out []Composite
	for n := batch; n <= t.MaxParallel; n += batch {
		out = append(out, Composite{Type: *inv, N: n})
	}
	return out
}

// TableIRow is one row of the paper's Table I.
type TableIRow struct {
	Label           string
	Cin, Cout, Rout float64 // fF, fF, kΩ
}

// TableI reproduces the paper's inverter analysis table: 1X Large and
// 1/2/4/8X Small.
func (t *Tech) TableI() []TableIRow {
	var large, small *InverterType
	for i := range t.Inverters {
		switch t.Inverters[i].Name {
		case "Large":
			large = &t.Inverters[i]
		case "Small":
			small = &t.Inverters[i]
		}
	}
	var rows []TableIRow
	if large != nil {
		c := Composite{Type: *large, N: 1}
		rows = append(rows, TableIRow{"1X Large", c.Cin(), c.Cout(), c.Rout()})
	}
	if small != nil {
		for _, n := range []int{1, 2, 4, 8} {
			c := Composite{Type: *small, N: n}
			rows = append(rows, TableIRow{fmt.Sprintf("%dX Small", n), c.Cin(), c.Cout(), c.Rout()})
		}
	}
	return rows
}
