package eco

import (
	"fmt"
	"math"
	"time"

	"contango/internal/buffering"
	"contango/internal/ctree"
	"contango/internal/geom"
	"contango/internal/route"
	"contango/internal/tech"
)

// Spec is the resolved input of one ECO run, carried on flow.Options: the
// content key of the base result the run restores, the delta to replay,
// and the restored base itself. Only BaseKey and the delta participate in
// cache keys (via Fingerprint); the tree and timing ride along so the eco
// pass does not need store access.
type Spec struct {
	// BaseKey is the result-cache key of the base synthesis run.
	BaseKey string
	// Delta is the engineering change order to replay.
	Delta *Delta
	// Base is the base run's synthesized clock tree (from the decoded
	// result envelope). The eco pass clones it; the original is never
	// mutated, so cached results stay intact.
	Base *ctree.Tree
	// Composite is the buffer composite the base run settled on; repair
	// buffering and polarity correction reuse its strength.
	Composite tech.Composite
	// BaseElapsed is the base run's wall time, for speedup accounting
	// only — it never shapes results or keys.
	BaseElapsed time.Duration
}

// Fingerprint renders the key material of the spec: the base key and the
// delta's content address. It is what the service appends to the options
// fingerprint, so equal (base, delta) pairs share one cache slot.
func (sp *Spec) Fingerprint() string {
	return sp.BaseKey + "," + sp.Delta.Fingerprint()
}

// Config carries the tree-repair knobs of Apply.
type Config struct {
	// Composite is the buffer strength for decoupling and polarity repair
	// (normally the base run's composite choice).
	Composite tech.Composite
	// Obs is the benchmark's obstacle set (nil = unobstructed).
	Obs *geom.ObstacleSet
	// Die bounds maze reroutes during scoped legalization.
	Die geom.Rect
	// SafeCap caps a buffered stage's load; 0 derives it from Composite
	// via buffering.SafeLoad.
	SafeCap float64
}

// Report summarizes one delta application.
type Report struct {
	Moved   int `json:"moved"`
	Added   int `json:"added"`
	Removed int `json:"removed"`
	// Pruned counts internal/buffer nodes deleted because a removal left
	// them childless; Spliced counts degree-2 internals removed.
	Pruned  int `json:"pruned"`
	Spliced int `json:"spliced"`
	// AddedBuffers and AddedInverters count repair insertions.
	AddedBuffers   int `json:"added_buffers"`
	AddedInverters int `json:"added_inverters"`
	// DirtySlots is the size of the mutation journal after the delta —
	// the locality footprint the scoped repair ran over.
	DirtySlots   int          `json:"dirty_slots"`
	Legalization route.Report `json:"legalization"`
}

func (r *Report) String() string {
	return fmt.Sprintf("eco: %dmv %dadd %drm, %d pruned, %d spliced, +%d buffers, +%d inverters, %d dirty slots",
		r.Moved, r.Added, r.Removed, r.Pruned, r.Spliced, r.AddedBuffers, r.AddedInverters, r.DirtySlots)
}

// Apply replays a delta against the arena of a synthesized tree using
// locality-scoped repair: removed sinks are pruned (with their dead
// ancestor chains), moved and added sinks re-attach at the nearest live
// edge via InsertOnEdge, polarity is re-corrected (only wrong-parity
// sinks — i.e. the re-attached ones — are touched), overloaded stages are
// decoupled with single-edge van Ginneken re-buffering, and legalization
// runs restricted to the dirty subtrees. Everything flows through the
// journaling mutators, so the arena's dirty bitmap marks exactly the
// touched region; Report.DirtySlots is its size. The same arena and delta
// always produce the same tree.
func Apply(a *ctree.Arena, d *Delta, cfg Config) (*Report, error) {
	rep := &Report{}
	d.canon()
	safeCap := cfg.SafeCap
	if safeCap == 0 && cfg.Composite.N > 0 {
		safeCap = buffering.SafeLoad(a.Tech, cfg.Composite)
	}

	// Resolve only the names the delta touches (the tree has hundreds of
	// thousands of sinks, the delta hundreds — a full name map would cost
	// more than the rest of the apply). A name mentioned twice in the tree
	// cannot be edited by name and is rejected; names the delta never
	// references are free to collide.
	need := make(map[string]int32, len(d.Removed)+len(d.Moved))
	for _, name := range d.Removed {
		need[name] = -1
	}
	for _, m := range d.Moved {
		need[m.Name] = -1
	}
	addNames := make(map[string]bool, len(d.Added))
	for _, ad := range d.Added {
		addNames[ad.Name] = true
	}
	sinkSlot := make(map[string]int32, len(need)+len(addNames))
	for i := 0; i < a.Len(); i++ {
		if !a.Alive.Test(i) || a.Kind[i] != ctree.Sink || a.Name[i] == "" {
			continue
		}
		name := a.Name[i]
		if addNames[name] {
			return nil, fmt.Errorf("eco: add: sink %q already exists in the base tree", name)
		}
		if _, wanted := need[name]; !wanted {
			continue
		}
		if _, dup := sinkSlot[name]; dup {
			return nil, fmt.Errorf("eco: tree has duplicate sink name %q", name)
		}
		sinkSlot[name] = int32(i)
	}
	lookup := func(directive, name string) (int32, error) {
		slot, ok := sinkSlot[name]
		if !ok {
			return 0, fmt.Errorf("eco: %s: no sink %q in the base tree", directive, name)
		}
		return slot, nil
	}

	// Phase 1: structural removal. Removed sinks go entirely; moved sinks
	// detach (and relocate) now so their old edges never serve as
	// attachment candidates. Dead ancestor chains are pruned and spliced
	// behind both.
	for _, name := range d.Removed {
		slot, err := lookup("remove", name)
		if err != nil {
			return nil, err
		}
		p := a.Parent[slot]
		a.DeleteSubtree(slot)
		rep.Removed++
		cleanupChain(a, p, rep)
	}
	for _, m := range d.Moved {
		slot, err := lookup("move", m.Name)
		if err != nil {
			return nil, err
		}
		p := a.Parent[slot]
		a.Detach(slot)
		a.Loc[slot] = m.Loc
		cleanupChain(a, p, rep)
	}

	// Phase 2: re-attachment at the nearest live edge. The index is built
	// once over the post-removal tree and extended with every edge the
	// attachments create, so clustered edits can share new taps.
	idx := newEdgeIndex(a, cfg.Die)
	attached := make([]int32, 0, len(d.Moved)+len(d.Added))
	for _, m := range d.Moved {
		slot := sinkSlot[m.Name]
		target := idx.attachTarget(a, m.Loc, cfg.Obs)
		a.Attach(slot, target, nil)
		idx.insert(a, slot)
		attached = append(attached, slot)
		rep.Moved++
	}
	for _, ad := range d.Added {
		if _, dup := sinkSlot[ad.Name]; dup {
			return nil, fmt.Errorf("eco: add: sink %q already exists in the base tree", ad.Name)
		}
		target := idx.attachTarget(a, ad.Loc, cfg.Obs)
		slot := a.AddSink(target, ad.Loc, ad.Cap, ad.Name)
		sinkSlot[ad.Name] = slot
		idx.insert(a, slot)
		attached = append(attached, slot)
		rep.Added++
	}

	// Phase 3: repair. Polarity first — a re-attached sink may sit at odd
	// inversion parity; on a polarity-correct base only the attached sinks
	// can be wrong, so each gets the scoped per-sink fix instead of a
	// whole-tree parity scan. Then stage-load decoupling per attachment,
	// then legalization scoped to the dirty subtrees.
	if len(attached) > 0 && cfg.Composite.N > 0 {
		polComp := cfg.Composite
		if half := polComp.N / 2; half >= 1 {
			polComp.N = half
		}
		for _, slot := range attached {
			rep.AddedInverters += buffering.CorrectSinkPolarityArena(a, slot, polComp, cfg.Obs)
		}
		for _, slot := range attached {
			rep.AddedBuffers += buffering.RebufferSinkArena(a, slot, cfg.Composite,
				buffering.Options{Obs: cfg.Obs, MaxCap: safeCap})
		}
	}

	rep.DirtySlots = a.Dirty.Count()
	if cfg.Obs != nil && cfg.Obs.Len() > 0 && rep.DirtySlots > 0 {
		dirty := a.DirtyIDs()
		scope := make(map[int32]bool, 4*len(dirty))
		var mark func(int32)
		mark = func(n int32) {
			if scope[n] {
				return
			}
			scope[n] = true
			for _, c := range a.Children(n) {
				mark(c)
			}
		}
		for _, id := range dirty {
			if a.Alive.Test(id) {
				mark(int32(id))
			}
		}
		lrep, err := route.LegalizeArena(a, cfg.Obs, cfg.Die, route.Options{SafeCap: safeCap, Scope: scope})
		if lrep != nil {
			rep.Legalization = *lrep
		}
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// ReserveFor pre-grows the arena for the slots, route points and child
// references replaying d can create (edge splits, added sinks, repair
// inverters and buffers), so the SoA columns never reallocate mid-apply.
// It belongs with restoring the base tree: FromTree and Clone size their
// columns exactly, and growing a quarter-million-slot column copies all of
// it — paid once here instead of scattered through the replay.
func ReserveFor(a *ctree.Arena, d *Delta) {
	grow := 6*d.Size() + 8
	a.Reserve(ctree.BuildHints{Nodes: a.Len() + grow,
		RoutePts: len(a.RoutePts) + 4*grow, Children: len(a.ChildIdx) + 2*grow})
}

// cleanupChain prunes the ancestor chain a detachment left behind: dead
// (childless, sinkless) internals and buffers are deleted bottom-up, and a
// surviving degree-2 internal is spliced out so the tree never accumulates
// topology garbage across ECO rounds. Buffers keep their place even at
// degree 2 — splicing one would flip downstream polarity.
func cleanupChain(a *ctree.Arena, p int32, rep *Report) {
	for p >= 0 && a.Alive.Test(int(p)) {
		if a.Kind[p] == ctree.Sink || a.Kind[p] == ctree.Source {
			return
		}
		kids := a.Children(p)
		if len(kids) == 0 {
			q := a.Parent[p]
			a.DeleteSubtree(p)
			rep.Pruned++
			p = q
			continue
		}
		if len(kids) == 1 && a.Kind[p] == ctree.Internal && a.Parent[p] >= 0 {
			a.RemoveDegree2(p)
			rep.Spliced++
		}
		return
	}
}

// edgeIndex is a uniform grid over the routes of live edges, for
// nearest-edge queries. The bulk of the tree is bucketed once into a flat
// CSR layout (offsets plus one backing array — building per-cell slices
// for a quarter-million edges would dominate the whole apply); edges
// created during the replay land in a sparse overflow layer. Entries are
// conservative: a slot is bucketed by its route's bounding box at
// insertion time, and splitting an edge only ever shrinks its route, so
// stale entries still cover the current geometry and are re-validated
// (aliveness, attachment) at query time.
type edgeIndex struct {
	die      geom.Rect
	g        int
	cw, ch   float64
	icw, ich float64   // inverse cell sizes: cellOf multiplies, never divides
	start    []int32   // CSR cell offsets into flat, len g*g+1
	flat     []int32   // edge slots of the initial build, grouped by cell
	extra    [][]int32 // post-build insertions (allocated on first use)
	stamp    []int32   // per-slot visited epoch, reused across queries
	epoch    int32
}

// cellRange is one edge's bucketed cell rectangle (g <= 256 keeps the
// coordinates in a byte).
type cellRange struct{ i0, j0, i1, j1 uint8 }

func newEdgeIndex(a *ctree.Arena, die geom.Rect) *edgeIndex {
	n := a.Len()
	g := int(math.Sqrt(float64(n)))
	if g < 4 {
		g = 4
	}
	if g > 256 {
		g = 256
	}
	idx := &edgeIndex{die: die, g: g, stamp: make([]int32, n)}
	idx.cw = die.W() / float64(g)
	idx.ch = die.H() / float64(g)
	if idx.cw <= 0 {
		idx.cw = 1
	}
	if idx.ch <= 0 {
		idx.ch = 1
	}
	idx.icw, idx.ich = 1/idx.cw, 1/idx.ch
	// Pass 1: each live edge's cell rectangle, and per-cell counts.
	ranges := make([]cellRange, n)
	counts := make([]int32, g*g+1)
	for i := 0; i < n; i++ {
		if !a.Alive.Test(i) || a.Parent[i] < 0 {
			ranges[i] = cellRange{i0: 1, i1: 0} // empty rect: not indexed
			continue
		}
		r := idx.rangeOf(a, int32(i))
		ranges[i] = r
		for j := int(r.j0); j <= int(r.j1); j++ {
			for ci := int(r.i0); ci <= int(r.i1); ci++ {
				counts[j*g+ci+1]++
			}
		}
	}
	// Pass 2: prefix sums, then fill the flat layout.
	for c := 1; c <= g*g; c++ {
		counts[c] += counts[c-1]
	}
	idx.start = counts
	idx.flat = make([]int32, counts[g*g])
	cursor := make([]int32, g*g)
	copy(cursor, counts[:g*g])
	for i := 0; i < n; i++ {
		r := ranges[i]
		if r.i1 < r.i0 {
			continue
		}
		for j := int(r.j0); j <= int(r.j1); j++ {
			for ci := int(r.i0); ci <= int(r.i1); ci++ {
				c := j*g + ci
				idx.flat[cursor[c]] = int32(i)
				cursor[c]++
			}
		}
	}
	return idx
}

// rangeOf computes the cell rectangle of edge n's route bounding box. An
// L-shaped route's corners never leave the endpoint bounding box, so only
// detoured routes (4+ points) scan their interior points.
func (idx *edgeIndex) rangeOf(a *ctree.Arena, n int32) cellRange {
	pl := a.Route(n)
	if len(pl) == 0 {
		pl = geom.Polyline{a.Loc[n]}
	}
	first, last := pl[0], pl[len(pl)-1]
	minX, maxX := math.Min(first.X, last.X), math.Max(first.X, last.X)
	minY, maxY := math.Min(first.Y, last.Y), math.Max(first.Y, last.Y)
	if len(pl) > 3 {
		for _, p := range pl[1 : len(pl)-1] {
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
		}
	}
	i0, j0 := idx.cellOf(geom.Pt(minX, minY))
	i1, j1 := idx.cellOf(geom.Pt(maxX, maxY))
	return cellRange{uint8(i0), uint8(j0), uint8(i1), uint8(j1)}
}

func (idx *edgeIndex) cellOf(p geom.Point) (int, int) {
	ci := int((p.X - idx.die.MinX) * idx.icw)
	cj := int((p.Y - idx.die.MinY) * idx.ich)
	return clampInt(ci, 0, idx.g-1), clampInt(cj, 0, idx.g-1)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// insert buckets edge n by its route's bounding box, into the overflow
// layer (only the initial build writes the CSR layout).
func (idx *edgeIndex) insert(a *ctree.Arena, n int32) {
	if idx.extra == nil {
		idx.extra = make([][]int32, idx.g*idx.g)
	}
	r := idx.rangeOf(a, n)
	for j := int(r.j0); j <= int(r.j1); j++ {
		for i := int(r.i0); i <= int(r.i1); i++ {
			idx.extra[j*idx.g+i] = append(idx.extra[j*idx.g+i], n)
		}
	}
}

// closestOnRoute returns the closest point of edge n's route to p, as
// (euclidean distance, arc offset from the parent end).
func closestOnRoute(pl geom.Polyline, p geom.Point) (float64, float64) {
	if len(pl) == 1 {
		return p.Euclid(pl[0]), 0
	}
	best, bestT := math.Inf(1), 0.0
	arc := 0.0
	for i := 0; i+1 < len(pl); i++ {
		a, b := pl[i], pl[i+1]
		ab := b.Sub(a)
		segLen2 := ab.X*ab.X + ab.Y*ab.Y
		u := 0.0
		if segLen2 > 0 {
			u = ((p.X-a.X)*ab.X + (p.Y-a.Y)*ab.Y) / segLen2
			if u < 0 {
				u = 0
			} else if u > 1 {
				u = 1
			}
		}
		q := a.Lerp(b, u)
		segLen := math.Sqrt(segLen2)
		if dd := p.Euclid(q); dd < best {
			best, bestT = dd, arc+u*segLen
		}
		arc += segLen
	}
	return best, bestT
}

// attachTarget returns the slot a sink at p should become a child of: the
// globally nearest live edge is found via expanding ring search, and its
// closest point becomes the tap — an existing endpoint when the projection
// lands there (avoiding degenerate zero-length edges), an InsertOnEdge
// split otherwise. Candidates whose tap point an obstacle blocks are
// passed over when an unblocked one exists. Fully deterministic: ties
// break on (distance, slot, offset).
func (idx *edgeIndex) attachTarget(a *ctree.Arena, p geom.Point, obs *geom.ObstacleSet) int32 {
	const eps = 1e-6
	type cand struct {
		slot int32
		d, t float64
	}
	better := func(x, y cand) bool {
		if x.d != y.d {
			return x.d < y.d
		}
		if x.slot != y.slot {
			return x.slot < y.slot
		}
		return x.t < y.t
	}
	best := cand{slot: -1, d: math.Inf(1)}
	bestClear := best // best candidate whose tap is not obstacle-blocked
	ci, cj := idx.cellOf(p)
	minCell := math.Min(idx.cw, idx.ch)
	// The visited stamp persists across queries (one epoch per query); the
	// arena may have grown since the index was built.
	if n := len(a.Kind); n > len(idx.stamp) {
		idx.stamp = append(idx.stamp, make([]int32, n-len(idx.stamp))...)
	}
	idx.epoch++
	visit := func(n int32) {
		if idx.stamp[n] == idx.epoch || !a.Alive.Test(int(n)) || a.Parent[n] < 0 {
			return
		}
		idx.stamp[n] = idx.epoch
		d, t := closestOnRoute(a.Route(n), p)
		c := cand{slot: n, d: d, t: t}
		if better(c, best) {
			best = c
		}
		if obs != nil {
			pl := a.Route(n)
			tap := a.Loc[n]
			if len(pl) > 1 {
				tap = pl.At(t)
			}
			if obs.BlocksPoint(tap) {
				return
			}
		}
		if better(c, bestClear) {
			bestClear = c
		}
	}
	for r := 0; r < idx.g; r++ {
		// Stop once no farther ring can improve the best unblocked tap
		// (when every tap so far is blocked, scan on — but never past the
		// die — hoping for a clear one).
		if best.slot >= 0 && bestClear.slot >= 0 && float64(r-1)*minCell > bestClear.d {
			break
		}
		for j := cj - r; j <= cj+r; j++ {
			if j < 0 || j >= idx.g {
				continue
			}
			for i := ci - r; i <= ci+r; i++ {
				if i < 0 || i >= idx.g {
					continue
				}
				if r > 0 && i > ci-r && i < ci+r && j > cj-r && j < cj+r {
					continue // interior cells were scanned at smaller r
				}
				c := j*idx.g + i
				for _, n := range idx.flat[idx.start[c]:idx.start[c+1]] {
					visit(n)
				}
				if idx.extra != nil {
					for _, n := range idx.extra[c] {
						visit(n)
					}
				}
			}
		}
	}
	if bestClear.slot >= 0 {
		best = bestClear
	}
	if best.slot < 0 {
		// Degenerate tree (root only): attach at the root.
		return a.Root()
	}
	n := best.slot
	geoLen := a.Route(n).Length()
	switch {
	case best.t <= eps:
		return a.Parent[n]
	case best.t >= geoLen-eps && a.Kind[n] != ctree.Sink && a.BufN[n] == 0:
		return n
	default:
		mid := a.InsertOnEdge(n, best.t, ctree.Internal)
		idx.insert(a, mid)
		return mid
	}
}
