package eco

// White-box coverage of the edge index: the cell-coordinate loops must
// survive the top row/column of a full 256-cell grid (cell coordinate 255
// is the uint8 maximum — iterating cellRange bounds in their storage type
// wraps 255 -> 0 and never terminates; the loops widen to int for exactly
// this reason), and repeated identical queries must return identical
// targets.

import (
	"testing"

	"contango/internal/ctree"
	"contango/internal/geom"
	"contango/internal/tech"
)

// cornerArena builds a tiny tree whose one edge reaches the far corner of
// the die, so its bucketed cell rectangle ends at the maximum cell index.
func cornerArena(tk *tech.Tech, die geom.Rect) (*ctree.Arena, int32) {
	tr := ctree.New(tk, geom.Pt(die.MinX, die.MinY), 0.1)
	s := tr.AddSink(tr.Root, geom.Pt(die.MaxX, die.MaxY), 20, "corner")
	return ctree.FromTree(tr), int32(s.ID)
}

func TestEdgeIndexMaxCellTerminates(t *testing.T) {
	tk := tech.Default45()
	die := geom.NewRect(0, 0, 256, 256)
	a, slot := cornerArena(tk, die)

	// Force the maximum grid so the corner edge's range ends at cell 255
	// (newEdgeIndex only picks g=256 past ~65k slots; the wrap hazard is
	// identical at any size, so pin the geometry directly).
	idx := &edgeIndex{die: die, g: 256, cw: 1, ch: 1, icw: 1, ich: 1,
		start: make([]int32, 256*256+1), stamp: make([]int32, a.Len())}

	r := idx.rangeOf(a, slot)
	if r.i1 != 255 || r.j1 != 255 {
		t.Fatalf("corner edge range = %+v, want i1=j1=255", r)
	}
	idx.insert(a, slot) // hung forever when the loops iterated in uint8
	if got := len(idx.extra[255*256+255]); got != 1 {
		t.Fatalf("corner cell holds %d entries, want 1", got)
	}

	// The query must see the overflow-layer edge from the far corner.
	target := idx.attachTarget(a, geom.Pt(255.5, 255.5), nil)
	if target < 0 {
		t.Fatalf("attachTarget found nothing, want a live slot")
	}
}

func TestNewEdgeIndexCoversCornerEdge(t *testing.T) {
	tk := tech.Default45()
	die := geom.NewRect(0, 0, 4000, 4000)
	a, slot := cornerArena(tk, die)
	idx := newEdgeIndex(a, die)
	c := (idx.g-1)*idx.g + (idx.g - 1) // top-right cell
	found := false
	for _, n := range idx.flat[idx.start[c]:idx.start[c+1]] {
		if n == slot {
			found = true
		}
	}
	if !found {
		t.Fatalf("corner edge %d not bucketed into the far corner cell", slot)
	}
}

func TestAttachTargetDeterministic(t *testing.T) {
	tk := tech.Default45()
	tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
	for i := 0; i < 5; i++ {
		tr.AddSink(tr.Root, geom.Pt(100+float64(i)*200, 300), 20, "")
	}
	die := geom.NewRect(0, 0, 1200, 600)
	q := geom.Pt(430, 180)
	a1 := ctree.FromTree(tr)
	a2 := ctree.FromTree(tr)
	t1 := newEdgeIndex(a1, die).attachTarget(a1, q, nil)
	t2 := newEdgeIndex(a2, die).attachTarget(a2, q, nil)
	if t1 != t2 {
		t.Fatalf("attachTarget diverged on identical arenas: %d vs %d", t1, t2)
	}
	// Re-querying the same (mutated) arena is deterministic too: the
	// stamp epoch dedups visits but never changes which candidate wins.
	if t3 := newEdgeIndex(a1, die).attachTarget(a1, q, nil); t3 != t1 {
		t.Fatalf("repeat query diverged: %d vs %d", t3, t1)
	}
}
