// Package eco implements engineering-change-order (ECO) re-synthesis: a
// typed Delta describing a small netlist perturbation (moved, added and
// removed sinks, a changed capacitance budget) with a canonical text wire
// form, and Apply, which replays that delta against the SoA arena of an
// already-synthesized clock tree using locality-scoped repair instead of a
// from-scratch rebuild. Real CTS flows are dominated by exactly these
// loops — a handful of sinks shift against a finished placement — and the
// delta path skips construction (DME, buffering, legalization), which
// dominates large-instance profiles.
package eco

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"contango/internal/bench"
	"contango/internal/dme"
	"contango/internal/geom"
)

// SinkMove relocates an existing sink to a new placement.
type SinkMove struct {
	Name string
	Loc  geom.Point
}

// SinkAdd introduces a new sink.
type SinkAdd struct {
	Name string
	Loc  geom.Point
	Cap  float64 // load capacitance, fF
}

// Delta is one engineering change order against a synthesized benchmark:
// disjoint sets of moved, added and removed sinks, plus an optional new
// total-capacitance budget (0 keeps the base budget). The zero Delta is
// valid and empty.
type Delta struct {
	Moved    []SinkMove
	Added    []SinkAdd
	Removed  []string
	CapLimit float64 // new capacitance budget, fF; 0 = unchanged
}

// Empty reports whether the delta changes nothing.
func (d *Delta) Empty() bool {
	return len(d.Moved) == 0 && len(d.Added) == 0 && len(d.Removed) == 0 && d.CapLimit == 0
}

// Size returns the number of sink-level edits the delta carries.
func (d *Delta) Size() int { return len(d.Moved) + len(d.Added) + len(d.Removed) }

// canon sorts each edit class by sink name. Every serialization and
// fingerprint goes through the canonical order, so two deltas describing
// the same change in different line orders are one delta.
func (d *Delta) canon() {
	sort.Slice(d.Moved, func(i, j int) bool { return d.Moved[i].Name < d.Moved[j].Name })
	sort.Slice(d.Added, func(i, j int) bool { return d.Added[i].Name < d.Added[j].Name })
	sort.Strings(d.Removed)
}

// String renders the canonical wire form:
//
//	move <name> <x> <y>
//	add <name> <x> <y> <cap_fF>
//	remove <name>
//	caplimit <fF>
//
// Lines are sorted by sink name within each directive class; classes
// appear in the fixed order above; caplimit is present only when set.
// ParseDelta(String()) round-trips exactly.
func (d *Delta) String() string {
	d.canon()
	var b strings.Builder
	for _, m := range d.Moved {
		fmt.Fprintf(&b, "move %s %g %g\n", m.Name, m.Loc.X, m.Loc.Y)
	}
	for _, a := range d.Added {
		fmt.Fprintf(&b, "add %s %g %g %g\n", a.Name, a.Loc.X, a.Loc.Y, a.Cap)
	}
	for _, r := range d.Removed {
		fmt.Fprintf(&b, "remove %s\n", r)
	}
	if d.CapLimit != 0 {
		fmt.Fprintf(&b, "caplimit %g\n", d.CapLimit)
	}
	return b.String()
}

// Fingerprint returns the content address of the delta: a SHA-256 over the
// canonical wire form. Equal fingerprints mean semantically equal deltas,
// which is what the service's extended cache key relies on.
func (d *Delta) Fingerprint() string {
	sum := sha256.Sum256([]byte(d.String()))
	return hex.EncodeToString(sum[:])
}

// ParseDelta reads the text form written by String. Blank lines and lines
// starting with '#' are ignored. Each sink may appear in at most one
// directive; a second mention is an error, as is a repeated caplimit.
func ParseDelta(r io.Reader) (*Delta, error) {
	d := &Delta{}
	seen := map[string]string{}
	claim := func(name, directive string, lineNo int) error {
		if name == "" {
			return fmt.Errorf("eco: line %d: empty sink name", lineNo)
		}
		if prev, dup := seen[name]; dup {
			return fmt.Errorf("eco: line %d: sink %q already named by a %s directive", lineNo, name, prev)
		}
		seen[name] = directive
		return nil
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	lineNo := 0
	capSet := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		bad := func(why string) error {
			return fmt.Errorf("eco: line %d: %s: %q", lineNo, why, line)
		}
		nums := func(ss []string) ([]float64, error) {
			out := make([]float64, len(ss))
			for i, s := range ss {
				v, err := strconv.ParseFloat(s, 64)
				if err != nil {
					return nil, bad("bad number")
				}
				out[i] = v
			}
			return out, nil
		}
		switch f[0] {
		case "move":
			if len(f) != 4 {
				return nil, bad("move needs name x y")
			}
			v, err := nums(f[2:])
			if err != nil {
				return nil, err
			}
			if err := claim(f[1], "move", lineNo); err != nil {
				return nil, err
			}
			d.Moved = append(d.Moved, SinkMove{Name: f[1], Loc: geom.Pt(v[0], v[1])})
		case "add":
			if len(f) != 5 {
				return nil, bad("add needs name x y cap")
			}
			v, err := nums(f[2:])
			if err != nil {
				return nil, err
			}
			if v[2] < 0 {
				return nil, bad("negative sink cap")
			}
			if err := claim(f[1], "add", lineNo); err != nil {
				return nil, err
			}
			d.Added = append(d.Added, SinkAdd{Name: f[1], Loc: geom.Pt(v[0], v[1]), Cap: v[2]})
		case "remove":
			if len(f) != 2 {
				return nil, bad("remove needs name")
			}
			if err := claim(f[1], "remove", lineNo); err != nil {
				return nil, err
			}
			d.Removed = append(d.Removed, f[1])
		case "caplimit":
			if len(f) != 2 {
				return nil, bad("caplimit needs 1 value")
			}
			v, err := nums(f[1:])
			if err != nil {
				return nil, err
			}
			if v[0] <= 0 {
				return nil, bad("caplimit must be positive")
			}
			if capSet {
				return nil, bad("caplimit repeated")
			}
			capSet = true
			d.CapLimit = v[0]
		default:
			return nil, bad("unknown directive")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("eco: read delta: %w", err)
	}
	d.canon()
	return d, nil
}

// Perturb applies the delta to a benchmark, returning the perturbed copy
// the ECO'd tree must serve: moved sinks keep their position in the sink
// list with updated placements, removed sinks are dropped, added sinks are
// appended in canonical (name) order, and a set CapLimit replaces the
// budget. The base benchmark is not modified. Every referenced sink must
// exist exactly once (and added names must be fresh) — a delta produced
// against a different base is rejected, not silently misapplied.
func (d *Delta) Perturb(b *bench.Benchmark) (*bench.Benchmark, error) {
	d.canon()
	byName := make(map[string]int, len(b.Sinks))
	for i, s := range b.Sinks {
		if _, dup := byName[s.Name]; dup {
			return nil, fmt.Errorf("eco: benchmark %s has duplicate sink name %q", b.Name, s.Name)
		}
		byName[s.Name] = i
	}
	moved := make(map[string]geom.Point, len(d.Moved))
	for _, m := range d.Moved {
		if _, ok := byName[m.Name]; !ok {
			return nil, fmt.Errorf("eco: move: no sink %q in benchmark %s", m.Name, b.Name)
		}
		if !b.Die.Contains(m.Loc) {
			return nil, fmt.Errorf("eco: move: sink %q target %v is outside the die", m.Name, m.Loc)
		}
		moved[m.Name] = m.Loc
	}
	removed := make(map[string]bool, len(d.Removed))
	for _, r := range d.Removed {
		if _, ok := byName[r]; !ok {
			return nil, fmt.Errorf("eco: remove: no sink %q in benchmark %s", r, b.Name)
		}
		removed[r] = true
	}
	cp := b.Clone()
	cp.Sinks = cp.Sinks[:0]
	for _, s := range b.Sinks {
		if removed[s.Name] {
			continue
		}
		if loc, ok := moved[s.Name]; ok {
			s.Loc = loc
		}
		cp.Sinks = append(cp.Sinks, s)
	}
	for _, a := range d.Added {
		if _, dup := byName[a.Name]; dup {
			return nil, fmt.Errorf("eco: add: sink %q already exists in benchmark %s", a.Name, b.Name)
		}
		if !b.Die.Contains(a.Loc) {
			return nil, fmt.Errorf("eco: add: sink %q at %v is outside the die", a.Name, a.Loc)
		}
		cp.Sinks = append(cp.Sinks, dme.Sink{Name: a.Name, Loc: a.Loc, Cap: a.Cap})
	}
	if len(cp.Sinks) == 0 {
		return nil, fmt.Errorf("eco: delta leaves benchmark %s with no sinks", b.Name)
	}
	if d.CapLimit != 0 {
		cp.CapLimit = d.CapLimit
	}
	return cp, nil
}
