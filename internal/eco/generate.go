package eco

import (
	"fmt"
	"math/rand"

	"contango/internal/bench"
)

// Generate produces a deterministic perturbation of a benchmark: a delta
// touching ~frac of its sinks, split 80% moves / 10% adds / 10% removes
// (at least one move). Moves displace a sink by up to 2% of the die span
// in each axis, clamped to the die; added sinks land near a random
// existing sink with its load. The same (benchmark, frac, seed) always
// yields the same delta — the benchgen -eco-perturb path and the ECO
// benchmarks both rely on that.
func Generate(b *bench.Benchmark, frac float64, seed int64) (*Delta, error) {
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("eco: perturbation fraction must be in (0,1], got %g", frac)
	}
	n := len(b.Sinks)
	if n == 0 {
		return nil, fmt.Errorf("eco: benchmark %s has no sinks to perturb", b.Name)
	}
	budget := int(frac*float64(n) + 0.5)
	if budget < 1 {
		budget = 1
	}
	adds := budget / 10
	removes := budget / 10
	if removes >= n { // never empty the benchmark
		removes = n - 1
	}
	moves := budget - adds - removes
	if moves < 1 {
		moves = 1
	}
	if moves > n-removes {
		moves = n - removes
	}

	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n) // disjoint victim pool: first `removes` go, next `moves` shift
	taken := make(map[string]bool, n)
	for _, s := range b.Sinks {
		taken[s.Name] = true
	}
	dx := 0.02 * b.Die.W()
	dy := 0.02 * b.Die.H()

	d := &Delta{}
	for _, i := range perm[:removes] {
		d.Removed = append(d.Removed, b.Sinks[i].Name)
	}
	for _, i := range perm[removes : removes+moves] {
		s := b.Sinks[i]
		loc := s.Loc
		loc.X += (rng.Float64()*2 - 1) * dx
		loc.Y += (rng.Float64()*2 - 1) * dy
		d.Moved = append(d.Moved, SinkMove{Name: s.Name, Loc: loc.Clamp(b.Die)})
	}
	next := 0
	for k := 0; k < adds; k++ {
		name := fmt.Sprintf("eco%d", next)
		for taken[name] {
			next++
			name = fmt.Sprintf("eco%d", next)
		}
		next++
		near := b.Sinks[rng.Intn(n)]
		loc := near.Loc
		loc.X += (rng.Float64()*2 - 1) * dx
		loc.Y += (rng.Float64()*2 - 1) * dy
		d.Added = append(d.Added, SinkAdd{Name: name, Loc: loc.Clamp(b.Die), Cap: near.Cap})
	}
	d.canon()
	return d, nil
}
