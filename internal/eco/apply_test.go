package eco_test

import (
	"reflect"
	"strings"
	"testing"

	"contango/internal/bench"
	"contango/internal/ctree"
	"contango/internal/dme"
	"contango/internal/eco"
	"contango/internal/geom"
	"contango/internal/route"
	"contango/internal/tech"
)

// applyBench is a small synthesizable benchmark for Apply tests.
func applyBench() *bench.Benchmark {
	locs := []geom.Point{
		{X: 2500, Y: 800}, {X: 2600, Y: 2100}, {X: 3500, Y: 1500},
		{X: 1500, Y: 2600}, {X: 3200, Y: 2900}, {X: 900, Y: 900},
		{X: 2100, Y: 1700}, {X: 3900, Y: 600},
	}
	var sinks []dme.Sink
	for i, l := range locs {
		sinks = append(sinks, dme.Sink{Loc: l, Cap: 25 + float64(i), Name: string(rune('a' + i))})
	}
	b := &bench.Benchmark{
		Name:    "apply-fixture",
		Die:     geom.NewRect(0, 0, 4200, 3200),
		Source:  geom.Pt(0, 1600),
		SourceR: 0.1,
		Sinks:   sinks,
	}
	b.CapLimit = 60000
	return b
}

func buildArena(t *testing.T, tk *tech.Tech, b *bench.Benchmark) *ctree.Arena {
	t.Helper()
	a := dme.BuildZSTArena(tk, b.Source, b.Sinks, dme.Options{})
	a.SourceR = b.SourceR
	return a
}

func sinkSlots(a *ctree.Arena) map[string]int32 {
	m := map[string]int32{}
	for i := 0; i < a.Len(); i++ {
		if a.Alive.Test(i) && a.Kind[i] == ctree.Sink && a.Name[i] != "" {
			m[a.Name[i]] = int32(i)
		}
	}
	return m
}

func TestApplyMoveAddRemove(t *testing.T) {
	tk := tech.Default45()
	b := applyBench()
	a := buildArena(t, tk, b)
	d := &eco.Delta{
		Moved:   []eco.SinkMove{{Name: "a", Loc: geom.Pt(700, 2800)}},
		Added:   []eco.SinkAdd{{Name: "z", Loc: geom.Pt(3600, 2500), Cap: 18}},
		Removed: []string{"b"},
	}
	eco.ReserveFor(a, d)
	comp := tech.Composite{Type: tk.Inverters[1], N: 4}
	rep, err := eco.Apply(a, d, eco.Config{Composite: comp, Die: b.Die})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Moved != 1 || rep.Added != 1 || rep.Removed != 1 {
		t.Fatalf("report %+v, want 1 move / 1 add / 1 remove", rep)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("arena invalid after apply: %v", err)
	}
	slots := sinkSlots(a)
	if _, gone := slots["b"]; gone {
		t.Fatal("removed sink still live")
	}
	if s, ok := slots["a"]; !ok || a.Loc[s] != geom.Pt(700, 2800) {
		t.Fatalf("moved sink not at target (ok=%v)", ok)
	}
	if s, ok := slots["z"]; !ok || a.Loc[s] != geom.Pt(3600, 2500) || a.SinkCap[s] != 18 {
		t.Fatalf("added sink missing or wrong (ok=%v)", ok)
	}
	if len(slots) != len(b.Sinks) {
		t.Fatalf("%d sinks after apply, want %d", len(slots), len(b.Sinks))
	}
	if rep.DirtySlots == 0 {
		t.Fatal("apply left an empty mutation journal")
	}
	// The tree reconstructs losslessly and stays consistent.
	tr, err := a.ToTree()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyDeterministic(t *testing.T) {
	tk := tech.Default45()
	b := applyBench()
	base := buildArena(t, tk, b)
	d := &eco.Delta{
		Moved:   []eco.SinkMove{{Name: "c", Loc: geom.Pt(300, 300)}, {Name: "f", Loc: geom.Pt(4000, 3000)}},
		Added:   []eco.SinkAdd{{Name: "y", Loc: geom.Pt(2000, 500), Cap: 22}},
		Removed: []string{"h"},
	}
	comp := tech.Composite{Type: tk.Inverters[1], N: 4}
	run := func() *ctree.Arena {
		w := base.Clone()
		eco.ReserveFor(w, d)
		if _, err := eco.Apply(w, d, eco.Config{Composite: comp, Die: b.Die}); err != nil {
			t.Fatal(err)
		}
		return w
	}
	a1, a2 := run(), run()
	type shape struct {
		Kind   []ctree.Kind
		Parent []int32
		Loc    []geom.Point
		Name   []string
		BufN   []int32
		Cap    []float64
		Dirty  []int
	}
	mk := func(a *ctree.Arena) shape {
		return shape{a.Kind, a.Parent, a.Loc, a.Name, a.BufN, a.SinkCap, a.DirtyIDs()}
	}
	if !reflect.DeepEqual(mk(a1), mk(a2)) {
		t.Fatal("two applies of the same delta on the same base diverged")
	}
}

func TestApplyWithObstaclesStaysLegal(t *testing.T) {
	tk := tech.Default45()
	b := applyBench()
	b.Obstacles = []geom.Obstacle{{Rect: geom.NewRect(1800, 1100, 2400, 1500), Name: "m0"}}
	a := buildArena(t, tk, b)
	obs := geom.NewObstacleSet(b.Obstacles)
	comp := tech.Composite{Type: tk.Inverters[1], N: 4}
	// Drop a sink right next to the obstacle so repair routing has to care.
	d := &eco.Delta{Added: []eco.SinkAdd{{Name: "z", Loc: geom.Pt(2100, 1600), Cap: 20}}}
	eco.ReserveFor(a, d)
	rep, err := eco.Apply(a, d, eco.Config{Composite: comp, Obs: obs, Die: b.Die})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if bad := route.CheckLegalArena(a, obs, 1e9); len(bad) != 0 {
		t.Fatalf("%d illegal edges after obstacle-scoped apply", len(bad))
	}
	if rep.DirtySlots == 0 {
		t.Fatal("no dirty slots recorded")
	}
}

func TestApplyErrors(t *testing.T) {
	tk := tech.Default45()
	b := applyBench()
	comp := tech.Composite{Type: tk.Inverters[1], N: 4}
	cases := []struct {
		d    *eco.Delta
		want string
	}{
		{&eco.Delta{Removed: []string{"nope"}}, "no sink"},
		{&eco.Delta{Moved: []eco.SinkMove{{Name: "nope", Loc: geom.Pt(1, 1)}}}, "no sink"},
		{&eco.Delta{Added: []eco.SinkAdd{{Name: "a", Loc: geom.Pt(1, 1), Cap: 5}}}, "already exists"},
	}
	for i, c := range cases {
		a := buildArena(t, tk, b)
		if _, err := eco.Apply(a, c.d, eco.Config{Composite: comp, Die: b.Die}); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: err = %v, want mention of %q", i, err, c.want)
		}
	}

	// A name the delta edits must be unique in the tree.
	dup := applyBench()
	dup.Sinks[3].Name = "a" // collides with sink 0
	a := buildArena(t, tk, dup)
	d := &eco.Delta{Moved: []eco.SinkMove{{Name: "a", Loc: geom.Pt(50, 50)}}}
	if _, err := eco.Apply(a, d, eco.Config{Composite: comp, Die: dup.Die}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate-name tree: err = %v, want mention of \"duplicate\"", err)
	}
}

// TestApplyPrunesDeadChain: removing every sink under a branch must prune
// the branch itself (no topology garbage accumulates across ECO rounds).
func TestApplyPrunesDeadChain(t *testing.T) {
	tk := tech.Default45()
	tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
	hubA := tr.AddChild(tr.Root, ctree.Internal, geom.Pt(400, 0))
	hubB := tr.AddChild(hubA, ctree.Internal, geom.Pt(400, 300))
	tr.AddSink(hubB, geom.Pt(500, 400), 20, "s1") // hubB's only child
	tr.AddSink(hubA, geom.Pt(800, 0), 20, "keep1")
	tr.AddSink(tr.Root, geom.Pt(0, 500), 20, "keep2")
	a := ctree.FromTree(tr)
	d := &eco.Delta{Removed: []string{"s1"}}
	eco.ReserveFor(a, d)
	rep, err := eco.Apply(a, d, eco.Config{Die: geom.NewRect(0, 0, 1000, 1000)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pruned == 0 {
		t.Fatalf("dead branch survived: %+v", rep)
	}
	if a.Alive.Test(int(int32(hubB.ID))) {
		t.Fatal("childless hub still alive")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(sinkSlots(a)); got != 2 {
		t.Fatalf("%d sinks left, want 2", got)
	}
}
