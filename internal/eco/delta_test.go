package eco_test

import (
	"reflect"
	"strings"
	"testing"

	"contango/internal/bench"
	"contango/internal/dme"
	"contango/internal/eco"
	"contango/internal/geom"
)

func deltaBench() *bench.Benchmark {
	b := &bench.Benchmark{
		Name:    "delta-fixture",
		Die:     geom.NewRect(0, 0, 1000, 1000),
		Source:  geom.Pt(0, 500),
		SourceR: 0.1,
		Sinks: []dme.Sink{
			{Name: "a", Loc: geom.Pt(100, 100), Cap: 20},
			{Name: "b", Loc: geom.Pt(500, 200), Cap: 25},
			{Name: "c", Loc: geom.Pt(800, 700), Cap: 30},
		},
	}
	b.CapLimit = 5000
	return b
}

func TestDeltaStringParseRoundTrip(t *testing.T) {
	d := &eco.Delta{
		// Deliberately out of canonical order.
		Moved:    []eco.SinkMove{{Name: "z", Loc: geom.Pt(3, 4)}, {Name: "a", Loc: geom.Pt(1.5, 2)}},
		Added:    []eco.SinkAdd{{Name: "n2", Loc: geom.Pt(7, 8), Cap: 12.5}, {Name: "n1", Loc: geom.Pt(5, 6), Cap: 9}},
		Removed:  []string{"q", "b"},
		CapLimit: 4200,
	}
	s := d.String()
	want := "move a 1.5 2\nmove z 3 4\nadd n1 5 6 9\nadd n2 7 8 12.5\nremove b\nremove q\ncaplimit 4200\n"
	if s != want {
		t.Fatalf("wire form:\n%q\nwant:\n%q", s, want)
	}
	back, err := eco.ParseDelta(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, d) {
		t.Fatalf("round trip diverged:\n%+v\nwant\n%+v", back, d)
	}
	if back.String() != s {
		t.Fatalf("re-serialization diverged")
	}
}

func TestDeltaFingerprintOrderInvariant(t *testing.T) {
	d1 := &eco.Delta{Moved: []eco.SinkMove{{Name: "a", Loc: geom.Pt(1, 2)}, {Name: "b", Loc: geom.Pt(3, 4)}}}
	d2 := &eco.Delta{Moved: []eco.SinkMove{{Name: "b", Loc: geom.Pt(3, 4)}, {Name: "a", Loc: geom.Pt(1, 2)}}}
	if d1.Fingerprint() != d2.Fingerprint() {
		t.Fatal("same delta in different line order changed the fingerprint")
	}
	d3 := &eco.Delta{Moved: []eco.SinkMove{{Name: "a", Loc: geom.Pt(1, 2.0001)}, {Name: "b", Loc: geom.Pt(3, 4)}}}
	if d1.Fingerprint() == d3.Fingerprint() {
		t.Fatal("different deltas share a fingerprint")
	}
}

func TestParseDeltaErrors(t *testing.T) {
	cases := []struct{ in, want string }{
		{"move a 1", "move needs name x y"},
		{"add a 1 2", "add needs name x y cap"},
		{"add a 1 2 -5", "negative sink cap"},
		{"remove", "remove needs name"},
		{"remove a b", "remove needs name"},
		{"caplimit 0", "caplimit must be positive"},
		{"caplimit 5\ncaplimit 6", "caplimit repeated"},
		{"move a 1 2\nremove a", "already named"},
		{"teleport a 1 2", "unknown directive"},
		{"move a x y", "bad number"},
	}
	for _, c := range cases {
		if _, err := eco.ParseDelta(strings.NewReader(c.in)); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseDelta(%q) err = %v, want mention of %q", c.in, err, c.want)
		}
	}
}

func TestParseDeltaSkipsCommentsAndBlanks(t *testing.T) {
	d, err := eco.ParseDelta(strings.NewReader("# an eco\n\n  move a 1 2  \n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Moved) != 1 || d.Moved[0].Name != "a" {
		t.Fatalf("parsed %+v", d)
	}
}

func TestPerturb(t *testing.T) {
	b := deltaBench()
	d := &eco.Delta{
		Moved:    []eco.SinkMove{{Name: "a", Loc: geom.Pt(150, 160)}},
		Added:    []eco.SinkAdd{{Name: "d", Loc: geom.Pt(400, 400), Cap: 11}},
		Removed:  []string{"b"},
		CapLimit: 6000,
	}
	p, err := d.Perturb(b)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(p.Sinks))
	for i, s := range p.Sinks {
		names[i] = s.Name
	}
	if !reflect.DeepEqual(names, []string{"a", "c", "d"}) {
		t.Fatalf("perturbed sink order %v", names)
	}
	if p.Sinks[0].Loc != geom.Pt(150, 160) {
		t.Fatalf("moved sink kept old placement: %v", p.Sinks[0].Loc)
	}
	if p.CapLimit != 6000 {
		t.Fatalf("cap limit %v, want 6000", p.CapLimit)
	}
	// The base benchmark is untouched.
	if len(b.Sinks) != 3 || b.Sinks[0].Loc != geom.Pt(100, 100) || b.CapLimit != 5000 {
		t.Fatal("Perturb mutated the base benchmark")
	}
}

func TestPerturbErrors(t *testing.T) {
	cases := []struct {
		d    *eco.Delta
		want string
	}{
		{&eco.Delta{Moved: []eco.SinkMove{{Name: "nope", Loc: geom.Pt(1, 1)}}}, "no sink"},
		{&eco.Delta{Moved: []eco.SinkMove{{Name: "a", Loc: geom.Pt(-50, 1)}}}, "outside the die"},
		{&eco.Delta{Removed: []string{"nope"}}, "no sink"},
		{&eco.Delta{Added: []eco.SinkAdd{{Name: "a", Loc: geom.Pt(1, 1), Cap: 5}}}, "already exists"},
		{&eco.Delta{Added: []eco.SinkAdd{{Name: "d", Loc: geom.Pt(2000, 1), Cap: 5}}}, "outside the die"},
		{&eco.Delta{Removed: []string{"a", "b", "c"}}, "no sinks"},
	}
	for i, c := range cases {
		if _, err := c.d.Perturb(deltaBench()); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: err = %v, want mention of %q", i, err, c.want)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	b := deltaBench()
	for i := 0; i < 27; i++ {
		b.Sinks = append(b.Sinks, dme.Sink{
			Name: "s" + string(rune('a'+i)),
			Loc:  geom.Pt(float64(10+i*30), float64(20+i*25)), Cap: 20,
		})
	}
	d1, err := eco.Generate(b, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := eco.Generate(b, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if d1.String() != d2.String() {
		t.Fatal("same (benchmark, frac, seed) produced different deltas")
	}
	if d1.Size() < 1 {
		t.Fatal("empty generated delta")
	}
	// The generated delta must apply cleanly to its own base.
	if _, err := d1.Perturb(b); err != nil {
		t.Fatalf("generated delta rejected by Perturb: %v", err)
	}
	if d3, err := eco.Generate(b, 0.3, 8); err != nil || d3.String() == d1.String() {
		t.Fatalf("seed change did not change the delta (err=%v)", err)
	}
	for _, frac := range []float64{0, -0.5, 1.5} {
		if _, err := eco.Generate(b, frac, 1); err == nil {
			t.Errorf("Generate accepted frac %g", frac)
		}
	}
	if _, err := eco.Generate(&bench.Benchmark{Name: "empty", Die: b.Die}, 0.5, 1); err == nil {
		t.Error("Generate accepted a sinkless benchmark")
	}
}
