package sched

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Errors returned by admission and waiting.
var (
	// ErrSaturated rejects an Enqueue beyond the waiting-count bound.
	ErrSaturated = errors.New("sched: waiting queue full")
	// ErrAborted reports that a ticket's Await was abandoned via its abort
	// channel (job canceled, run context done).
	ErrAborted = errors.New("sched: ticket aborted")
)

// BacklogError rejects an admission because the estimated queue wait
// exceeds the pool's bound. RetryAfter is how long until the backlog is
// expected to drain back under the limit — the service layer surfaces it
// as an HTTP Retry-After header on the 429.
type BacklogError struct {
	Backlog    time.Duration // estimated wait for a new arrival
	RetryAfter time.Duration
}

func (e *BacklogError) Error() string {
	return fmt.Sprintf("sched: estimated queue wait %s exceeds admission limit (retry in %s)",
		e.Backlog.Round(time.Millisecond), e.RetryAfter.Round(time.Second))
}

// Claim describes the work a ticket schedules.
type Claim struct {
	// Label identifies the ticket in snapshots (the service uses job IDs).
	Label string
	// Estimate is the predicted slot occupancy.
	Estimate time.Duration
	// Deadline, when non-zero, is the job's soft deadline. It raises the
	// ticket's rank as slack runs out; it never kills work.
	Deadline time.Time
}

type ticketState int

const (
	stateWaiting ticketState = iota
	stateRunning
	stateDone
)

// Ticket is one schedulable unit's handle on the pool: enqueue, await a
// slot grant, optionally yield the slot mid-run, release. A ticket is not
// safe for concurrent use by multiple goroutines (each job drives its own).
type Ticket struct {
	claim     Claim
	remaining time.Duration // estimate not yet consumed (shrinks on yields)
	seq       uint64
	enqueued  time.Time // current wait's start (reset on yields)
	enqueued0 time.Time // original admission time
	granted   time.Time // current grant's start
	granted0  time.Time // first grant (QueueWait measures to here)
	yields    int
	state     ticketState
	ready     chan struct{} // closed on grant; fresh per wait cycle
}

// Label returns the claim label.
func (t *Ticket) Label() string { return t.claim.Label }

// Deadline returns the claim's soft deadline (zero = none).
func (t *Ticket) Deadline() time.Time { return t.claim.Deadline }

// QueueWait returns how long the ticket waited from admission to its
// first slot grant (0 while still waiting).
func (t *Ticket) QueueWait() time.Duration {
	if t.granted0.IsZero() {
		return 0
	}
	return t.granted0.Sub(t.enqueued0)
}

// Pool packs tickets onto a fixed number of worker slots. Grant order:
// deadline-urgent tickets first (earliest deadline wins), then
// shortest-remaining-estimate with linear aging — every second waited
// forgives Aging seconds of estimate, so long jobs rise in rank instead
// of starving — with admission order as the tiebreak.
type Pool struct {
	slots      int
	aging      float64       // estimate-seconds forgiven per waited second
	maxWaiting int           // 0 = unbounded
	maxWait    time.Duration // 0 = no backlog-based admission bound

	mu      sync.Mutex
	free    int
	seq     uint64
	waiting []*Ticket
	running map[*Ticket]struct{}
}

// PoolConfig tunes a Pool.
type PoolConfig struct {
	// Slots is the number of concurrently granted tickets (worker count).
	Slots int
	// MaxWaiting bounds the waiting queue; Enqueue beyond it returns
	// ErrSaturated. 0 = unbounded.
	MaxWaiting int
	// MaxWait bounds admission by estimated queue wait; Enqueue returns a
	// *BacklogError when a new arrival would wait longer. 0 = unbounded.
	MaxWait time.Duration
	// Aging is the estimate-seconds forgiven per second of waiting
	// (default 0.5: after waiting 2× its own estimate at rate ½, a job
	// outranks a fresh zero-cost arrival).
	Aging float64
}

// NewPool builds a pool with cfg.Slots free slots.
func NewPool(cfg PoolConfig) *Pool {
	if cfg.Slots < 1 {
		cfg.Slots = 1
	}
	if cfg.Aging <= 0 {
		cfg.Aging = 0.5
	}
	return &Pool{
		slots:      cfg.Slots,
		aging:      cfg.Aging,
		maxWaiting: cfg.MaxWaiting,
		maxWait:    cfg.MaxWait,
		free:       cfg.Slots,
		running:    make(map[*Ticket]struct{}),
	}
}

// Slots returns the pool's slot count.
func (p *Pool) Slots() int { return p.slots }

// Enqueue admits a claim, returning its ticket. The ticket may already be
// granted on return (free slot); the caller must Await it either way and
// Release it when done. Admission is bounded by MaxWaiting (ErrSaturated)
// and MaxWait (*BacklogError).
func (p *Pool) Enqueue(c Claim) (*Ticket, error) {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.maxWaiting > 0 && len(p.waiting) >= p.maxWaiting {
		return nil, ErrSaturated
	}
	if p.maxWait > 0 && p.free == 0 {
		if backlog := p.backlogLocked(now); backlog > p.maxWait {
			retry := backlog - p.maxWait
			if retry < time.Second {
				retry = time.Second
			}
			return nil, &BacklogError{Backlog: backlog, RetryAfter: retry}
		}
	}
	if c.Estimate <= 0 {
		c.Estimate = minEstimate
	}
	p.seq++
	t := &Ticket{
		claim:     c,
		remaining: c.Estimate,
		seq:       p.seq,
		enqueued:  now,
		enqueued0: now,
		ready:     make(chan struct{}),
	}
	p.waiting = append(p.waiting, t)
	p.dispatchLocked(now)
	return t, nil
}

// Await blocks until the ticket is granted a slot or abort is closed.
// On abort the ticket is withdrawn (its slot released if a grant raced
// the abort) and ErrAborted is returned; the ticket is then dead.
func (p *Pool) Await(t *Ticket, abort <-chan struct{}) error {
	select {
	case <-t.ready:
		return nil
	case <-abort:
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	switch t.state {
	case stateRunning:
		// The grant raced the abort; hand the slot back.
		p.releaseLocked(t)
	case stateWaiting:
		p.removeWaitingLocked(t)
		t.state = stateDone
	}
	return ErrAborted
}

// Release returns the ticket's slot to the pool. Releasing a ticket that
// does not hold a slot (aborted, already released) is a no-op, so the
// caller's deferred Release composes with abort paths.
func (p *Pool) Release(t *Ticket) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if t.state == stateRunning {
		p.releaseLocked(t)
	}
	t.state = stateDone
}

// Yield offers the ticket's slot to waiting tickets: if none are waiting
// it returns (false, nil) immediately and the slot is kept; otherwise the
// slot is released, the ticket re-enqueues with its remaining estimate,
// and Yield blocks until the ticket is granted again (reported as
// (true, nil)) or abort is closed ((true, ErrAborted) — the ticket is
// dead and the caller must stop). The splitter calls this between corner
// chunks, which is what lets short jobs overtake a monopolizing sweep.
func (p *Pool) Yield(t *Ticket, abort <-chan struct{}) (bool, error) {
	now := time.Now()
	p.mu.Lock()
	if t.state != stateRunning || len(p.waiting) == 0 {
		p.mu.Unlock()
		return false, nil
	}
	// Shrink the remaining estimate by the slot time just consumed, so the
	// re-enqueued ticket ranks by the work it still has to do.
	t.remaining -= now.Sub(t.granted)
	if t.remaining < minEstimate {
		t.remaining = minEstimate
	}
	t.yields++
	p.free++
	delete(p.running, t)
	t.state = stateWaiting
	t.enqueued = now
	t.ready = make(chan struct{})
	p.seq++
	t.seq = p.seq
	p.waiting = append(p.waiting, t)
	p.dispatchLocked(now)
	p.mu.Unlock()
	return true, p.Await(t, abort)
}

// Waiting returns the number of tickets waiting for a slot.
func (p *Pool) Waiting() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.waiting)
}

// Backlog estimates how long a new arrival would wait for a slot: the
// remaining estimated work of running and waiting tickets divided across
// the slots (0 when a slot is free).
func (p *Pool) Backlog() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.free > 0 {
		return 0
	}
	return p.backlogLocked(time.Now())
}

func (p *Pool) backlogLocked(now time.Time) time.Duration {
	var total time.Duration
	for t := range p.running {
		if left := t.remaining - now.Sub(t.granted); left > 0 {
			total += left
		}
	}
	for _, t := range p.waiting {
		total += t.remaining
	}
	return total / time.Duration(p.slots)
}

// releaseLocked frees t's slot and re-dispatches.
func (p *Pool) releaseLocked(t *Ticket) {
	p.free++
	delete(p.running, t)
	t.state = stateDone
	p.dispatchLocked(time.Now())
}

func (p *Pool) removeWaitingLocked(t *Ticket) {
	for i, w := range p.waiting {
		if w == t {
			p.waiting = append(p.waiting[:i], p.waiting[i+1:]...)
			return
		}
	}
}

// urgencySlack is the soft-deadline guard band: a ticket becomes urgent
// (EDF class) once its deadline slack falls under a quarter of its
// remaining estimate plus this constant.
const urgencySlack = time.Second

// urgent reports whether t's deadline is in jeopardy at time now.
func (t *Ticket) urgent(now time.Time) bool {
	if t.claim.Deadline.IsZero() {
		return false
	}
	slack := t.claim.Deadline.Sub(now) - t.remaining
	return slack < t.remaining/4+urgencySlack
}

// rank orders waiting tickets; smaller is granted first.
func (p *Pool) rankLess(a, b *Ticket, now time.Time) bool {
	au, bu := a.urgent(now), b.urgent(now)
	if au != bu {
		return au
	}
	if au && bu && !a.claim.Deadline.Equal(b.claim.Deadline) {
		return a.claim.Deadline.Before(b.claim.Deadline)
	}
	as := a.remaining.Seconds() - p.aging*now.Sub(a.enqueued).Seconds()
	bs := b.remaining.Seconds() - p.aging*now.Sub(b.enqueued).Seconds()
	if as != bs {
		return as < bs
	}
	return a.seq < b.seq
}

// dispatchLocked grants free slots to the best-ranked waiting tickets.
func (p *Pool) dispatchLocked(now time.Time) {
	for p.free > 0 && len(p.waiting) > 0 {
		best := 0
		for i := 1; i < len(p.waiting); i++ {
			if p.rankLess(p.waiting[i], p.waiting[best], now) {
				best = i
			}
		}
		t := p.waiting[best]
		p.waiting = append(p.waiting[:best], p.waiting[best+1:]...)
		p.free--
		t.state = stateRunning
		t.granted = now
		if t.granted0.IsZero() {
			t.granted0 = now
		}
		p.running[t] = struct{}{}
		close(t.ready)
	}
}

// TicketInfo is one ticket's row in a pool snapshot.
type TicketInfo struct {
	Label     string        `json:"label"`
	Remaining time.Duration `json:"-"` // estimated slot time left
	Waited    time.Duration `json:"-"` // current wait (waiting tickets)
	Held      time.Duration `json:"-"` // current slot tenure (running tickets)
	Deadline  time.Time     `json:"-"`
	Urgent    bool          `json:"urgent,omitempty"`
	Yields    int           `json:"yields,omitempty"`
}

// PoolInfo is the pool's introspection snapshot. Waiting is sorted in
// grant order (the next granted ticket first).
type PoolInfo struct {
	Slots   int
	Free    int
	Backlog time.Duration
	Running []TicketInfo
	Waiting []TicketInfo
}

// Snapshot reports the pool's current packing state.
func (p *Pool) Snapshot() PoolInfo {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	info := PoolInfo{Slots: p.slots, Free: p.free}
	if p.free == 0 {
		info.Backlog = p.backlogLocked(now)
	}
	for t := range p.running {
		info.Running = append(info.Running, TicketInfo{
			Label:     t.claim.Label,
			Remaining: t.remaining,
			Held:      now.Sub(t.granted),
			Deadline:  t.claim.Deadline,
			Urgent:    t.urgent(now),
			Yields:    t.yields,
		})
	}
	sortInfos(info.Running)
	ordered := append([]*Ticket(nil), p.waiting...)
	for i := range ordered { // selection sort in grant order; queues are short
		best := i
		for j := i + 1; j < len(ordered); j++ {
			if p.rankLess(ordered[j], ordered[best], now) {
				best = j
			}
		}
		ordered[i], ordered[best] = ordered[best], ordered[i]
	}
	for _, t := range ordered {
		info.Waiting = append(info.Waiting, TicketInfo{
			Label:     t.claim.Label,
			Remaining: t.remaining,
			Waited:    now.Sub(t.enqueued),
			Deadline:  t.claim.Deadline,
			Urgent:    t.urgent(now),
			Yields:    t.yields,
		})
	}
	return info
}

func sortInfos(infos []TicketInfo) {
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && infos[j].Label < infos[j-1].Label; j-- {
			infos[j], infos[j-1] = infos[j-1], infos[j]
		}
	}
}

// UpdateDeadline tightens (or sets) a ticket's soft deadline — used when
// a coalesced submission carries an earlier deadline than the in-flight
// job it joined. Loosening is ignored: the earliest requested deadline
// governs.
func (p *Pool) UpdateDeadline(t *Ticket, deadline time.Time) {
	if deadline.IsZero() {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if t.claim.Deadline.IsZero() || deadline.Before(t.claim.Deadline) {
		t.claim.Deadline = deadline
	}
}
