package sched

import (
	"errors"
	"testing"
	"time"
)

func mustEnqueue(t *testing.T, p *Pool, c Claim) *Ticket {
	t.Helper()
	tk, err := p.Enqueue(c)
	if err != nil {
		t.Fatalf("Enqueue(%+v): %v", c, err)
	}
	return tk
}

func awaitGranted(t *testing.T, p *Pool, tk *Ticket) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- p.Await(tk, nil) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Await(%s): %v", tk.Label(), err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("Await(%s): not granted in time", tk.Label())
	}
}

func TestPoolGrantsFreeSlotImmediately(t *testing.T) {
	p := NewPool(PoolConfig{Slots: 2})
	a := mustEnqueue(t, p, Claim{Label: "a", Estimate: time.Second})
	awaitGranted(t, p, a)
	if got := p.Waiting(); got != 0 {
		t.Fatalf("waiting = %d, want 0", got)
	}
	p.Release(a)
	p.Release(a) // idempotent
}

// With the only slot held, a short job enqueued after a long one must be
// granted first (shortest-estimate-first packing).
func TestPoolShortestFirst(t *testing.T) {
	p := NewPool(PoolConfig{Slots: 1})
	hold := mustEnqueue(t, p, Claim{Label: "hold", Estimate: time.Second})
	awaitGranted(t, p, hold)
	long := mustEnqueue(t, p, Claim{Label: "long", Estimate: 100 * time.Second})
	short := mustEnqueue(t, p, Claim{Label: "short", Estimate: time.Second})

	snap := p.Snapshot()
	if len(snap.Waiting) != 2 || snap.Waiting[0].Label != "short" {
		t.Fatalf("grant order = %+v, want short first", snap.Waiting)
	}
	p.Release(hold)
	awaitGranted(t, p, short)
	if long.state != stateWaiting {
		t.Fatalf("long ticket state = %v, want still waiting", long.state)
	}
	p.Release(short)
	awaitGranted(t, p, long)
	p.Release(long)
}

// A ticket whose soft deadline is in jeopardy outranks shorter work
// (earliest-deadline-first within the urgent class).
func TestPoolDeadlineUrgencyFirst(t *testing.T) {
	p := NewPool(PoolConfig{Slots: 1})
	hold := mustEnqueue(t, p, Claim{Label: "hold", Estimate: time.Second})
	awaitGranted(t, p, hold)
	short := mustEnqueue(t, p, Claim{Label: "short", Estimate: time.Second})
	urgent := mustEnqueue(t, p, Claim{Label: "urgent", Estimate: 30 * time.Second,
		Deadline: time.Now().Add(10 * time.Second)}) // slack already negative
	if snap := p.Snapshot(); snap.Waiting[0].Label != "urgent" || !snap.Waiting[0].Urgent {
		t.Fatalf("grant order = %+v, want urgent first", snap.Waiting)
	}
	p.Release(hold)
	awaitGranted(t, p, urgent)
	p.Release(urgent)
	awaitGranted(t, p, short)
	p.Release(short)
}

// Aging: waiting linearly forgives estimate, so a long job that has
// waited long enough outranks a fresh short one — nothing starves.
func TestPoolAgingPreventsStarvation(t *testing.T) {
	p := NewPool(PoolConfig{Slots: 1, Aging: 0.5})
	now := time.Now()
	long := &Ticket{claim: Claim{Label: "long"}, remaining: 10 * time.Second,
		enqueued: now.Add(-30 * time.Second), seq: 1}
	fresh := &Ticket{claim: Claim{Label: "fresh"}, remaining: time.Second,
		enqueued: now, seq: 2}
	if !p.rankLess(long, fresh, now) {
		t.Fatalf("long job that waited 30s (10s - 0.5*30 = -5) should outrank fresh 1s job")
	}
	// Without the wait it would not.
	long.enqueued = now
	if p.rankLess(long, fresh, now) {
		t.Fatalf("fresh long job should not outrank short job")
	}
}

func TestPoolYieldNoWaitersKeepsSlot(t *testing.T) {
	p := NewPool(PoolConfig{Slots: 1})
	a := mustEnqueue(t, p, Claim{Label: "a", Estimate: time.Second})
	awaitGranted(t, p, a)
	yielded, err := p.Yield(a, nil)
	if yielded || err != nil {
		t.Fatalf("Yield with empty queue = (%v, %v), want (false, nil)", yielded, err)
	}
	p.Release(a)
}

// Yield hands the slot to a waiter and blocks until re-granted.
func TestPoolYieldHandsSlotToWaiter(t *testing.T) {
	p := NewPool(PoolConfig{Slots: 1})
	sweep := mustEnqueue(t, p, Claim{Label: "sweep", Estimate: 100 * time.Second})
	awaitGranted(t, p, sweep)
	interactive := mustEnqueue(t, p, Claim{Label: "interactive", Estimate: time.Second})

	ran := make(chan struct{})
	go func() {
		if err := p.Await(interactive, nil); err != nil {
			t.Errorf("interactive Await: %v", err)
		}
		close(ran)
		time.Sleep(20 * time.Millisecond)
		p.Release(interactive)
	}()

	yielded, err := p.Yield(sweep, nil)
	if !yielded || err != nil {
		t.Fatalf("Yield = (%v, %v), want (true, nil)", yielded, err)
	}
	select {
	case <-ran:
	default:
		t.Fatalf("sweep re-granted before the interactive waiter ran")
	}
	if sweep.yields != 1 {
		t.Fatalf("sweep yields = %d, want 1", sweep.yields)
	}
	p.Release(sweep)
}

func TestPoolAwaitAbort(t *testing.T) {
	p := NewPool(PoolConfig{Slots: 1})
	hold := mustEnqueue(t, p, Claim{Label: "hold", Estimate: time.Second})
	awaitGranted(t, p, hold)
	w := mustEnqueue(t, p, Claim{Label: "w", Estimate: time.Second})
	abort := make(chan struct{})
	close(abort)
	if err := p.Await(w, abort); !errors.Is(err, ErrAborted) {
		t.Fatalf("Await after abort = %v, want ErrAborted", err)
	}
	if got := p.Waiting(); got != 0 {
		t.Fatalf("aborted ticket still waiting (%d)", got)
	}
	// The abandoned ticket must not leak the slot.
	p.Release(hold)
	next := mustEnqueue(t, p, Claim{Label: "next", Estimate: time.Second})
	awaitGranted(t, p, next)
	p.Release(next)
}

func TestPoolBoundedAdmission(t *testing.T) {
	p := NewPool(PoolConfig{Slots: 1, MaxWaiting: 8, MaxWait: time.Minute})
	hold := mustEnqueue(t, p, Claim{Label: "hold", Estimate: 10 * time.Second})
	awaitGranted(t, p, hold)

	// Backlog bound: the slot is held for an estimated 10s, so a queue
	// already estimated past MaxWait rejects with a BacklogError.
	if _, err := p.Enqueue(Claim{Label: "big", Estimate: 10 * time.Minute}); err != nil {
		t.Fatalf("first waiter should be admitted (backlog 10s < 1m): %v", err)
	}
	_, err := p.Enqueue(Claim{Label: "late", Estimate: time.Second})
	var be *BacklogError
	if !errors.As(err, &be) {
		t.Fatalf("Enqueue past backlog = %v, want *BacklogError", err)
	}
	if be.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s", be.RetryAfter)
	}

	// Waiting-count bound (checked before backlog): the queue holds one.
	p2 := NewPool(PoolConfig{Slots: 1, MaxWaiting: 1})
	h2 := mustEnqueue(t, p2, Claim{Label: "h", Estimate: time.Second})
	awaitGranted(t, p2, h2)
	mustEnqueue(t, p2, Claim{Label: "w1", Estimate: time.Second})
	if _, err := p2.Enqueue(Claim{Label: "w2", Estimate: time.Second}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("Enqueue past MaxWaiting = %v, want ErrSaturated", err)
	}
}

func TestPoolUpdateDeadlineOnlyTightens(t *testing.T) {
	p := NewPool(PoolConfig{Slots: 1})
	tk := mustEnqueue(t, p, Claim{Label: "a", Estimate: time.Second})
	early := time.Now().Add(time.Minute)
	late := early.Add(time.Hour)
	p.UpdateDeadline(tk, late)
	if !tk.Deadline().Equal(late) {
		t.Fatalf("deadline not set")
	}
	p.UpdateDeadline(tk, early)
	if !tk.Deadline().Equal(early) {
		t.Fatalf("earlier deadline did not tighten")
	}
	p.UpdateDeadline(tk, late)
	if !tk.Deadline().Equal(early) {
		t.Fatalf("later deadline loosened the ticket")
	}
	p.Release(tk)
}
