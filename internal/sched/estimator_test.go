package sched

import (
	"math"
	"testing"
	"time"
)

// A zero-prior estimator (cold start) must still produce positive,
// feature-monotonic estimates — the pool's ranks and backlog math divide
// by and compare them.
func TestEstimatorColdStart(t *testing.T) {
	e := NewEstimator(Priors{})
	base := e.Estimate(Features{Plan: "custom", Corners: 2, Sinks: 40})
	if base <= 0 {
		t.Fatalf("cold-start estimate not positive: %v", base)
	}
	moreCorners := e.Estimate(Features{Plan: "custom", Corners: 256, Sinks: 40})
	moreSinks := e.Estimate(Features{Plan: "custom", Corners: 2, Sinks: 4000})
	if moreCorners <= base {
		t.Fatalf("estimate not monotonic in corners: %v !> %v", moreCorners, base)
	}
	if moreSinks <= base {
		t.Fatalf("estimate not monotonic in sinks: %v !> %v", moreSinks, base)
	}
	// Degenerate features clamp instead of collapsing to zero.
	if d := e.Estimate(Features{}); d < minEstimate {
		t.Fatalf("empty-feature estimate %v below floor %v", d, minEstimate)
	}
}

// The default priors must reproduce the committed baseline they were
// derived from: the 40-sink, 2-corner paper-plan cascade took ~2.06s.
func TestEstimatorDefaultPriorsMatchBaseline(t *testing.T) {
	e := NewEstimator(DefaultPriors())
	got := e.Estimate(Features{Plan: "paper", Corners: 2, Sinks: 40}).Seconds()
	if math.Abs(got-2.06) > 0.25 {
		t.Fatalf("paper-plan prior %0.2fs, want ~2.06s (BENCH_baseline.json BenchmarkCascadeIncremental)", got)
	}
}

// After a run of consistently mispredicted jobs the per-class EWMA must
// converge the estimate onto the observed runtime.
func TestEstimatorEWMAConvergence(t *testing.T) {
	e := NewEstimator(DefaultPriors())
	f := Features{Plan: "paper", Corners: 8, Sinks: 100}
	actual := 4 * e.Estimate(f) // the model is 4x off for this class
	for i := 0; i < 12; i++ {
		e.Observe(f, actual)
	}
	got := e.Estimate(f)
	if ratio := got.Seconds() / actual.Seconds(); ratio < 0.75 || ratio > 1.25 {
		t.Fatalf("estimate %v did not converge to observed %v (ratio %0.2f)", got, actual, ratio)
	}
	info := e.Snapshot()
	if info.Observations != 12 || len(info.Classes) != 1 {
		t.Fatalf("snapshot = %+v, want 12 observations in 1 class", info)
	}
}

// Classes never observed fall back to the global correction ratio, so a
// uniformly slow host calibrates every class after observing any of them.
func TestEstimatorGlobalFallback(t *testing.T) {
	e := NewEstimator(DefaultPriors())
	fa := Features{Plan: "paper", Corners: 2, Sinks: 40}
	prior := e.Estimate(fa)
	for i := 0; i < 10; i++ {
		e.Observe(fa, 2*prior) // host runs everything 2x slower
	}
	fb := Features{Plan: "fast", Corners: 2, Sinks: 40} // class never observed
	before := NewEstimator(DefaultPriors()).Estimate(fb)
	after := e.Estimate(fb)
	if ratio := after.Seconds() / before.Seconds(); ratio < 1.5 || ratio > 2.5 {
		t.Fatalf("unobserved class not scaled by global ratio: %v -> %v (ratio %0.2f)", before, after, ratio)
	}
}

// A single absurd observation must not wreck the class (ratio clamping).
func TestEstimatorObservationClamp(t *testing.T) {
	e := NewEstimator(DefaultPriors())
	f := Features{Plan: "paper", Corners: 2, Sinks: 40}
	e.Observe(f, 24*time.Hour) // suspended laptop
	if got := e.Estimate(f); got > 100*64*time.Second {
		t.Fatalf("clamp failed: estimate %v after one pathological observation", got)
	}
	e2 := NewEstimator(DefaultPriors())
	e2.Observe(f, time.Nanosecond)
	if got := e2.Estimate(f); got < minEstimate {
		t.Fatalf("low clamp failed: estimate %v", got)
	}
}
