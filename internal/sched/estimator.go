package sched

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"time"
)

// Features are the submit-time observables the estimator predicts from.
// All three are cheap to compute and known before the job runs.
type Features struct {
	// Plan is the job's plan label ("paper", "fast", a custom spec string…).
	Plan string
	// Corners is the corner-set cardinality (simulations per CNE).
	Corners int
	// Sinks is the benchmark's sink count.
	Sinks int
}

// class buckets the features into a bounded label: exact plan string,
// power-of-two corner bucket, power-of-two sink bucket. Jobs in one class
// share an EWMA correction, so the model needs only a handful of
// observations per workload shape to calibrate.
func (f Features) class() string {
	return fmt.Sprintf("%s|c%d|s%d", f.Plan, pow2Bucket(f.Corners), pow2Bucket(f.Sinks))
}

// pow2Bucket rounds n up to the next power of two (minimum 1).
func pow2Bucket(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Prior is the offline cost model for one plan: seconds of slot occupancy
// as Base + PerSinkCorner·sinks·corners on the reference host.
type Prior struct {
	Base          float64 // fixed construction cost, seconds
	PerSinkCorner float64 // cascade cost per sink·corner, seconds
}

// Priors seed the estimator before any job has run.
type Priors struct {
	Plans   map[string]Prior // by plan label
	Default Prior            // fallback for unknown plans
}

// Cold-start fallbacks when even Priors.Default is zero (an estimator
// constructed with no priors at all): roughly the default-plan shape.
const (
	coldBase          = 0.1
	coldPerSinkCorner = 0.02
	// minEstimate floors predictions; a zero/negative estimate would break
	// packing ranks and backlog math.
	minEstimate = 10 * time.Millisecond
)

// DefaultPriors derives the built-in cost table from the committed
// BENCH_baseline.json snapshot (Xeon @2.70GHz reference host): the
// trimmed 40-sink ispd09f22 cascade at the native 2-corner set costs
// 2.06s under the paper plan (BenchmarkCascadeIncremental), 1.60s under
// "fast" and 1.96s under "wire-only" (BenchmarkPlanMatrix). Splitting
// ~0.1s of corner-independent construction out and dividing the rest by
// 40·2 sink-corners gives the per-sink-corner rates. Plans without a
// measured row fall back to Default; the online EWMA absorbs host-speed
// and workload-shape error either way.
func DefaultPriors() Priors {
	return Priors{
		Plans: map[string]Prior{
			"paper":     {Base: 0.10, PerSinkCorner: 0.0245},
			"fast":      {Base: 0.08, PerSinkCorner: 0.0190},
			"wire-only": {Base: 0.10, PerSinkCorner: 0.0232},
			// ECO re-synthesis skips construction and runs a short tuning
			// cascade on the restored tree, so its per-sink cost is a
			// fraction of any full flow's.
			"eco": {Base: 0.05, PerSinkCorner: 0.0050},
		},
		Default: Prior{Base: 0.10, PerSinkCorner: 0.0220},
	}
}

// ewmaCell is one exponentially weighted actual/prior ratio.
type ewmaCell struct {
	ratio float64
	n     int64
}

func (c *ewmaCell) observe(ratio, alpha float64) {
	if c.n == 0 {
		c.ratio = ratio
	} else {
		c.ratio = (1-alpha)*c.ratio + alpha*ratio
	}
	c.n++
}

// Estimator predicts job slot occupancy: an offline prior (Priors)
// multiplied by an online EWMA correction ratio learned per feature class
// (with the global ratio as the fallback for classes never seen). The
// corrections track actual/prior, so a host twice as slow as the
// reference, or a workload the analytic model mis-shapes, converges to
// accurate estimates after a few observations.
type Estimator struct {
	priors Priors
	alpha  float64

	mu      sync.Mutex
	classes map[string]*ewmaCell
	global  ewmaCell
}

// NewEstimator builds an estimator over the given priors. A zero Priors
// value cold-starts on built-in fallback constants.
func NewEstimator(p Priors) *Estimator {
	return &Estimator{priors: p, alpha: 0.35, classes: make(map[string]*ewmaCell)}
}

// prior evaluates the offline model for f, in seconds.
func (e *Estimator) prior(f Features) float64 {
	pr, ok := e.priors.Plans[f.Plan]
	if !ok {
		pr = e.priors.Default
	}
	if pr.Base == 0 && pr.PerSinkCorner == 0 {
		pr = Prior{Base: coldBase, PerSinkCorner: coldPerSinkCorner}
	}
	corners, sinks := f.Corners, f.Sinks
	if corners < 1 {
		corners = 1
	}
	if sinks < 1 {
		sinks = 1
	}
	return pr.Base + pr.PerSinkCorner*float64(sinks)*float64(corners)
}

// Estimate predicts the slot occupancy of a job with features f.
func (e *Estimator) Estimate(f Features) time.Duration {
	p := e.prior(f)
	e.mu.Lock()
	if c, ok := e.classes[f.class()]; ok && c.n > 0 {
		p *= c.ratio
	} else if e.global.n > 0 {
		p *= e.global.ratio
	}
	e.mu.Unlock()
	d := time.Duration(p * float64(time.Second))
	if d < minEstimate {
		d = minEstimate
	}
	return d
}

// Observe feeds one finished job's actual slot occupancy back into the
// model. Ratios are clamped to [1/64, 64] so a single pathological
// observation (a job that hit a cold disk cache, a suspended laptop)
// cannot wreck the class.
func (e *Estimator) Observe(f Features, actual time.Duration) {
	if actual <= 0 {
		return
	}
	ratio := actual.Seconds() / e.prior(f)
	if ratio < 1.0/64 {
		ratio = 1.0 / 64
	} else if ratio > 64 {
		ratio = 64
	}
	e.mu.Lock()
	c, ok := e.classes[f.class()]
	if !ok {
		c = &ewmaCell{}
		e.classes[f.class()] = c
	}
	c.observe(ratio, e.alpha)
	e.global.observe(ratio, e.alpha)
	e.mu.Unlock()
}

// ClassInfo is one feature class's learned state, for introspection.
type ClassInfo struct {
	Class        string  `json:"class"`
	Ratio        float64 `json:"ratio"` // EWMA of actual/prior
	Observations int64   `json:"observations"`
}

// EstimatorInfo is the estimator's introspection snapshot (the
// "estimator" section of GET /api/v1/queue).
type EstimatorInfo struct {
	Observations int64       `json:"observations"`
	GlobalRatio  float64     `json:"global_ratio"`
	Classes      []ClassInfo `json:"classes,omitempty"`
}

// Snapshot reports the learned corrections, classes sorted by name.
func (e *Estimator) Snapshot() EstimatorInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	info := EstimatorInfo{Observations: e.global.n, GlobalRatio: e.global.ratio}
	for name, c := range e.classes {
		info.Classes = append(info.Classes, ClassInfo{Class: name, Ratio: c.ratio, Observations: c.n})
	}
	sort.Slice(info.Classes, func(i, j int) bool { return info.Classes[i].Class < info.Classes[j].Class })
	return info
}
