package sched

import (
	"errors"
	"fmt"
	"testing"

	"contango/internal/analysis"
	"contango/internal/ctree"
	"contango/internal/tech"
)

// fakeCornerEval is a CornerEvaluator that returns one canned result
// pointer per corner name and records call shapes, so tests can assert
// chunk boundaries and that reassembly preserves order and identity.
type fakeCornerEval struct {
	results     map[string]*analysis.Result
	batchCalls  [][]string // corner names per EvaluateCorners call
	singleCalls []string
	parallelism int
}

func (f *fakeCornerEval) Name() string { return "fake" }

func (f *fakeCornerEval) SetParallelism(n int) { f.parallelism = n }

func (f *fakeCornerEval) Evaluate(tr *ctree.Tree, c tech.Corner) (*analysis.Result, error) {
	f.singleCalls = append(f.singleCalls, c.Name)
	return f.results[c.Name], nil
}

func (f *fakeCornerEval) EvaluateCorners(tr *ctree.Tree, cs []tech.Corner) ([]*analysis.Result, error) {
	var names []string
	out := make([]*analysis.Result, 0, len(cs))
	for _, c := range cs {
		names = append(names, c.Name)
		out = append(out, f.results[c.Name])
	}
	f.batchCalls = append(f.batchCalls, names)
	return out, nil
}

// plainEval is an Evaluator without corner batching (no EvaluateCorners
// method), to exercise the per-corner fallback loop.
type plainEval struct {
	results     map[string]*analysis.Result
	singleCalls []string
}

func (p *plainEval) Name() string { return "plain" }
func (p *plainEval) Evaluate(tr *ctree.Tree, c tech.Corner) (*analysis.Result, error) {
	p.singleCalls = append(p.singleCalls, c.Name)
	return p.results[c.Name], nil
}

func makeCorners(n int) ([]tech.Corner, map[string]*analysis.Result) {
	cs := make([]tech.Corner, n)
	rs := make(map[string]*analysis.Result, n)
	for i := range cs {
		name := fmt.Sprintf("c%02d", i)
		cs[i] = tech.Corner{Name: name, Vdd: 1.0}
		rs[name] = &analysis.Result{}
	}
	return cs, rs
}

func TestChunkedPassthroughSmallCalls(t *testing.T) {
	cs, rs := makeCorners(3)
	inner := &fakeCornerEval{results: rs}
	yields := 0
	c := &Chunked{Eval: inner, Chunk: 4, Yield: func() error { yields++; return nil }}
	out, err := c.EvaluateCorners(nil, cs)
	if err != nil {
		t.Fatal(err)
	}
	if len(inner.batchCalls) != 1 || len(inner.batchCalls[0]) != 3 {
		t.Fatalf("small call not passed through whole: %v", inner.batchCalls)
	}
	if yields != 0 {
		t.Fatalf("small call yielded %d times", yields)
	}
	for i, r := range out {
		if r != rs[cs[i].Name] {
			t.Fatalf("result %d is not the inner evaluator's", i)
		}
	}
}

// A 10-corner call at chunk 3 runs as 3+3+3+1 with a yield between each
// chunk, and reassembles the exact per-corner results in input order.
func TestChunkedSplitsAndReassembles(t *testing.T) {
	cs, rs := makeCorners(10)
	inner := &fakeCornerEval{results: rs}
	yields, splits := 0, 0
	c := &Chunked{Eval: inner, Chunk: 3,
		Yield:   func() error { yields++; return nil },
		OnSplit: func(n int) { splits = n }}
	out, err := c.EvaluateCorners(nil, cs)
	if err != nil {
		t.Fatal(err)
	}
	wantShape := []int{3, 3, 3, 1}
	if len(inner.batchCalls) != len(wantShape) {
		t.Fatalf("chunk calls = %v, want shape %v", inner.batchCalls, wantShape)
	}
	for i, call := range inner.batchCalls {
		if len(call) != wantShape[i] {
			t.Fatalf("chunk %d has %d corners, want %d", i, len(call), wantShape[i])
		}
	}
	if yields != 3 || splits != 4 {
		t.Fatalf("yields = %d, splits = %d, want 3 and 4", yields, splits)
	}
	if len(out) != len(cs) {
		t.Fatalf("reassembled %d results, want %d", len(out), len(cs))
	}
	for i, r := range out {
		if r != rs[cs[i].Name] {
			t.Fatalf("result %d out of order after reassembly", i)
		}
	}
}

func TestChunkedYieldErrorAborts(t *testing.T) {
	cs, rs := makeCorners(8)
	inner := &fakeCornerEval{results: rs}
	boom := errors.New("canceled")
	c := &Chunked{Eval: inner, Chunk: 4, Yield: func() error { return boom }}
	if _, err := c.EvaluateCorners(nil, cs); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want yield error", err)
	}
	if len(inner.batchCalls) != 1 {
		t.Fatalf("evaluation continued after yield error: %v", inner.batchCalls)
	}
}

// Wrapping an evaluator without corner batching falls back to the same
// per-corner loop the optimization context uses.
func TestChunkedPlainEvaluatorFallback(t *testing.T) {
	cs, rs := makeCorners(5)
	inner := &plainEval{results: rs}
	c := &Chunked{Eval: inner, Chunk: 2, Yield: func() error { return nil }}
	out, err := c.EvaluateCorners(nil, cs)
	if err != nil {
		t.Fatal(err)
	}
	if len(inner.singleCalls) != 5 {
		t.Fatalf("per-corner fallback made %d calls, want 5", len(inner.singleCalls))
	}
	for i, r := range out {
		if r != rs[cs[i].Name] {
			t.Fatalf("fallback result %d out of order", i)
		}
	}
}

func TestChunkedForwardsParallelism(t *testing.T) {
	inner := &fakeCornerEval{results: map[string]*analysis.Result{}}
	c := &Chunked{Eval: inner, Chunk: 4}
	c.SetParallelism(7)
	if inner.parallelism != 7 {
		t.Fatalf("parallelism not forwarded: %d", inner.parallelism)
	}
	if c.Name() != "fake" {
		t.Fatalf("name not forwarded: %q", c.Name())
	}
}

// hintedEval is a fakeCornerEval that also advertises a batch width.
type hintedEval struct {
	fakeCornerEval
	hint int
}

func (h *hintedEval) BatchHint() int { return h.hint }

func TestChunkedAlignsToBatchHint(t *testing.T) {
	cs, rs := makeCorners(10)
	fe := &hintedEval{fakeCornerEval: fakeCornerEval{results: rs}, hint: 4}
	c := &Chunked{Eval: fe, Chunk: 3}
	out, err := c.EvaluateCorners(nil, cs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(cs) {
		t.Fatalf("got %d results, want %d", len(out), len(cs))
	}
	for i := range cs {
		if out[i] != rs[cs[i].Name] {
			t.Fatalf("result %d not identity-preserved", i)
		}
	}
	// Chunk 3 rounds up to the hint's multiple 4: calls of 4, 4, 2.
	want := [][]int{{4, 4, 2}}
	var sizes []int
	for _, call := range fe.batchCalls {
		sizes = append(sizes, len(call))
	}
	if len(sizes) != 3 || sizes[0] != 4 || sizes[1] != 4 || sizes[2] != 2 {
		t.Fatalf("chunk sizes %v, want %v", sizes, want[0])
	}
	// A hint of 1 (or a non-hinting evaluator) leaves Chunk untouched.
	fe2 := &hintedEval{fakeCornerEval: fakeCornerEval{results: rs}, hint: 1}
	c2 := &Chunked{Eval: fe2, Chunk: 3}
	if _, err := c2.EvaluateCorners(nil, cs); err != nil {
		t.Fatal(err)
	}
	if len(fe2.batchCalls) != 4 {
		t.Fatalf("hint 1: %d calls, want 4", len(fe2.batchCalls))
	}
}
