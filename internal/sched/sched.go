// Package sched is the cost-model-driven packing scheduler behind the
// synthesis service's worker pool. It maps the Wrapper/TAM
// rectangle-bin-packing line of SoC test scheduling onto synthesis jobs:
// heterogeneous tests with known wrapper costs packed onto constrained
// TAM width become heterogeneous jobs with cost priors packed onto
// cores × time. Three pieces cooperate:
//
//   - Estimator predicts a job's slot occupancy (core-seconds) from cheap
//     features — plan, corner-set cardinality, sink count — seeded with
//     priors derived from the committed BENCH_baseline.json snapshot and
//     refined online by per-class EWMAs over observed runtimes, so the
//     model calibrates itself to the host and workload.
//
//   - Pool packs admitted jobs onto a fixed number of slots. Grants are
//     deadline-aware (tickets whose soft deadline is in jeopardy go first,
//     earliest deadline wins) and otherwise shortest-estimate-first with
//     linear aging, so a long job keeps rising in rank while it waits and
//     nothing starves. Admission is bounded: beyond a waiting-count or an
//     estimated-queue-wait limit, Enqueue rejects (ErrSaturated,
//     BacklogError) so the caller can push back instead of queueing
//     unbounded work.
//
//   - Chunked is the sweep splitter. A big mc:<n> Monte Carlo job spends
//     nearly all its time in multi-corner CNE calls, so Chunked wraps the
//     accurate evaluator and splits every EvaluateCorners call into
//     corner chunks, cooperatively yielding the pool slot between chunks.
//     Each chunk is an independent schedulable unit; the chunk results are
//     reassembled by concatenation — the same per-corner result slice the
//     unsplit call produces, fed to the same eval.FromResults — so one
//     huge sweep interleaves with interactive traffic at chunk granularity.
//
// Why chunked yields rather than decomposing a sweep into per-corner
// sub-jobs: the optimization passes make decisions (slew-violation
// comparisons, reference/worst-corner CLR) over the metrics of *all*
// corners of a CNE, so corner subsets cannot be optimized independently
// and reassembled without changing results. Chunking the evaluation
// inside one synthesis run performs exactly the same simulations in the
// same order and only re-times when the worker slot is held, which is
// what makes pack-vs-fifo bit-parity provable.
//
// Scheduling never changes results, only ordering and latency; nothing in
// this package participates in result-cache keys.
package sched
