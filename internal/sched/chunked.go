package sched

import (
	"contango/internal/analysis"
	"contango/internal/ctree"
	"contango/internal/tech"
)

// Chunked is the sweep splitter: an evaluator shim that breaks every
// multi-corner EvaluateCorners call into chunks of at most Chunk corners
// and calls Yield between them, so a large Monte Carlo sweep releases its
// worker slot at chunk boundaries instead of holding it for the whole
// corner set. The chunk results are reassembled by concatenation — the
// identical per-corner result slice the unsplit call would produce (the
// wrapped evaluator simulates each corner independently and its
// per-(corner,edge) caches key by corner identity), so wrapping an
// evaluator in Chunked never changes results, only when the slot is held.
type Chunked struct {
	// Eval is the wrapped accurate evaluator (the incremental engine, or
	// the plain engine under FullEval).
	Eval analysis.Evaluator
	// Chunk is the maximum corners evaluated per slot tenure; calls with
	// that many corners or fewer (and any Chunk <= 0) pass through whole.
	Chunk int
	// Yield, when non-nil, runs between chunks. A non-nil error aborts the
	// evaluation (scheduler shut down, run context canceled).
	Yield func() error
	// OnSplit, when non-nil, observes each split call's chunk count
	// (metrics hook).
	OnSplit func(chunks int)
}

var _ analysis.CornerEvaluator = (*Chunked)(nil)

// Name returns the wrapped evaluator's name.
func (c *Chunked) Name() string { return c.Eval.Name() }

// Evaluate passes single-corner evaluations through unchanged.
func (c *Chunked) Evaluate(tr *ctree.Tree, corner tech.Corner) (*analysis.Result, error) {
	return c.Eval.Evaluate(tr, corner)
}

// SetParallelism forwards the per-job worker budget to the wrapped
// evaluator (the optimization context pushes it through this interface).
func (c *Chunked) SetParallelism(n int) {
	if pe, ok := c.Eval.(interface{ SetParallelism(int) }); ok {
		pe.SetParallelism(n)
	}
}

// BatchHinter is implemented by evaluators whose EvaluateCorners runs most
// efficiently on corner counts that are a multiple of some internal batch
// width (e.g. the incremental transient engine's worker-pool occupancy).
// Chunked rounds its chunk size up to the hint so no slot tenure ends on a
// ragged, under-filled kernel batch.
type BatchHinter interface {
	BatchHint() int
}

// effectiveChunk is Chunk aligned up to the wrapped evaluator's batch hint.
func (c *Chunked) effectiveChunk() int {
	chunk := c.Chunk
	if chunk <= 0 {
		return chunk
	}
	if bh, ok := c.Eval.(BatchHinter); ok {
		if h := bh.BatchHint(); h > 1 && chunk%h != 0 {
			chunk += h - chunk%h
		}
	}
	return chunk
}

// EvaluateCorners evaluates the corner list in chunks, yielding between
// them, and returns the concatenated per-corner results in input order.
func (c *Chunked) EvaluateCorners(tr *ctree.Tree, corners []tech.Corner) ([]*analysis.Result, error) {
	chunk := c.effectiveChunk()
	if chunk <= 0 || len(corners) <= chunk {
		return c.evalRange(tr, corners)
	}
	if c.OnSplit != nil {
		c.OnSplit((len(corners) + chunk - 1) / chunk)
	}
	out := make([]*analysis.Result, 0, len(corners))
	for start := 0; start < len(corners); start += chunk {
		if start > 0 && c.Yield != nil {
			if err := c.Yield(); err != nil {
				return nil, err
			}
		}
		end := start + chunk
		if end > len(corners) {
			end = len(corners)
		}
		rs, err := c.evalRange(tr, corners[start:end])
		if err != nil {
			return nil, err
		}
		out = append(out, rs...)
	}
	return out, nil
}

// evalRange evaluates one corner range: in a single call when the wrapped
// evaluator batches corners, otherwise with the same per-corner loop the
// optimization context itself falls back to — either way the results are
// what the unwrapped evaluator would have produced.
func (c *Chunked) evalRange(tr *ctree.Tree, corners []tech.Corner) ([]*analysis.Result, error) {
	if ce, ok := c.Eval.(analysis.CornerEvaluator); ok {
		return ce.EvaluateCorners(tr, corners)
	}
	out := make([]*analysis.Result, 0, len(corners))
	for _, corner := range corners {
		r, err := c.Eval.Evaluate(tr, corner)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
