// Package slack implements the paper's slow-down and speed-up slack notions
// (Section III): per-sink slacks derived from measured latencies, edge
// slacks aggregated over downstream sinks (Lemma 1), and the per-edge Δ
// budgets of Proposition 1 that drive the top-down wire optimizations.
//
// Slacks are computed separately for rising and falling transitions and for
// every supply corner; an edge's usable slack is the conservative minimum
// across all of them, exactly as the paper prescribes for the multicorner
// CLR objective.
package slack

import (
	"math"

	"contango/internal/analysis"
	"contango/internal/ctree"
)

// Slacks holds the slack state of a tree for one set of measurements.
// All maps are keyed by tree-node ID; edge quantities live on the edge's
// lower node (the edge from n.Parent to n is keyed by n.ID).
type Slacks struct {
	// SinkSlow[s] = Tmax − Ts, SinkFast[s] = Ts − Tmin (Definition 1),
	// minimized over transitions and corners.
	SinkSlow, SinkFast map[int]float64
	// EdgeSlow/EdgeFast are Definition 2 edge slacks via Lemma 1.
	EdgeSlow, EdgeFast map[int]float64
	// DeltaSlow/DeltaFast are Proposition 1 budgets:
	// Δe = Slack_e − Slack_parent(e) (parent slack taken as 0 for edges
	// whose parent is the root).
	DeltaSlow, DeltaFast map[int]float64
}

// Compute derives slacks from one or more evaluation results (one per
// corner). Each result contributes rising and falling latencies; the
// conservative minimum over all of them is kept per sink and per edge.
func Compute(tr *ctree.Tree, results []*analysis.Result) *Slacks {
	s := &Slacks{
		SinkSlow:  map[int]float64{},
		SinkFast:  map[int]float64{},
		EdgeSlow:  map[int]float64{},
		EdgeFast:  map[int]float64{},
		DeltaSlow: map[int]float64{},
		DeltaFast: map[int]float64{},
	}
	type view struct{ lat map[int]float64 }
	var views []view
	for _, r := range results {
		if len(r.Rise) > 0 {
			views = append(views, view{lat: r.Rise})
		}
		if len(r.Fall) > 0 {
			views = append(views, view{lat: r.Fall})
		}
	}
	sinks := tr.Sinks()
	for _, sk := range sinks {
		s.SinkSlow[sk.ID] = math.Inf(1)
		s.SinkFast[sk.ID] = math.Inf(1)
	}
	for _, v := range views {
		tmin, tmax := math.Inf(1), math.Inf(-1)
		for _, sk := range sinks {
			t := v.lat[sk.ID]
			tmin = math.Min(tmin, t)
			tmax = math.Max(tmax, t)
		}
		for _, sk := range sinks {
			t := v.lat[sk.ID]
			s.SinkSlow[sk.ID] = math.Min(s.SinkSlow[sk.ID], tmax-t)
			s.SinkFast[sk.ID] = math.Min(s.SinkFast[sk.ID], t-tmin)
		}
	}
	// Lemma 1: edge slack = min over downstream sinks, computable in O(n)
	// bottom-up.
	tr.PostOrder(func(n *ctree.Node) {
		if n.Kind == ctree.Sink {
			s.EdgeSlow[n.ID] = s.SinkSlow[n.ID]
			s.EdgeFast[n.ID] = s.SinkFast[n.ID]
			return
		}
		slow, fast := math.Inf(1), math.Inf(1)
		for _, c := range n.Children {
			slow = math.Min(slow, s.EdgeSlow[c.ID])
			fast = math.Min(fast, s.EdgeFast[c.ID])
		}
		s.EdgeSlow[n.ID] = slow
		s.EdgeFast[n.ID] = fast
	})
	// Proposition 1 budgets.
	tr.PreOrder(func(n *ctree.Node) {
		if n.Parent == nil {
			return
		}
		pSlow, pFast := 0.0, 0.0
		if n.Parent.Parent != nil {
			pSlow = s.EdgeSlow[n.Parent.ID]
			pFast = s.EdgeFast[n.Parent.ID]
		}
		s.DeltaSlow[n.ID] = s.EdgeSlow[n.ID] - pSlow
		s.DeltaFast[n.ID] = s.EdgeFast[n.ID] - pFast
	})
	return s
}

// Gradient returns a 0..1 visualization weight for the edge keyed by id:
// 0 = no slow-down slack (critical, drawn red), 1 = the largest slack in the
// tree (drawn green). Used to reproduce the paper's Figure 3 coloring.
func (s *Slacks) Gradient(id int) float64 {
	max := 0.0
	for _, v := range s.EdgeSlow {
		if !math.IsInf(v, 1) && v > max {
			max = v
		}
	}
	if max == 0 {
		return 0
	}
	v := s.EdgeSlow[id]
	if math.IsInf(v, 1) {
		return 1
	}
	return math.Max(0, math.Min(1, v/max))
}
