package slack

import (
	"math"
	"math/rand"
	"testing"

	"contango/internal/analysis"
	"contango/internal/ctree"
	"contango/internal/geom"
	"contango/internal/tech"
)

// buildTree makes a small fixed tree:
//
//	root -> a -> s1, s2
//	     -> b -> s3
func buildTree(tk *tech.Tech) (*ctree.Tree, []*ctree.Node) {
	tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
	a := tr.AddChild(tr.Root, ctree.Internal, geom.Pt(100, 0))
	b := tr.AddChild(tr.Root, ctree.Internal, geom.Pt(0, 100))
	s1 := tr.AddSink(a, geom.Pt(200, 0), 30, "s1")
	s2 := tr.AddSink(a, geom.Pt(100, 100), 30, "s2")
	s3 := tr.AddSink(b, geom.Pt(0, 200), 30, "s3")
	return tr, []*ctree.Node{a, b, s1, s2, s3}
}

func resultWith(lat map[int]float64) *analysis.Result {
	return &analysis.Result{Rise: lat, Fall: lat}
}

func TestSinkSlacksDefinition1(t *testing.T) {
	tk := tech.Default45()
	tr, ns := buildTree(tk)
	s1, s2, s3 := ns[2], ns[3], ns[4]
	lat := map[int]float64{s1.ID: 100, s2.ID: 130, s3.ID: 110}
	s := Compute(tr, []*analysis.Result{resultWith(lat)})
	// Tmax=130, Tmin=100.
	if s.SinkSlow[s1.ID] != 30 || s.SinkFast[s1.ID] != 0 {
		t.Errorf("s1 slacks (%v,%v) want (30,0)", s.SinkSlow[s1.ID], s.SinkFast[s1.ID])
	}
	if s.SinkSlow[s2.ID] != 0 || s.SinkFast[s2.ID] != 30 {
		t.Errorf("s2 slacks (%v,%v) want (0,30)", s.SinkSlow[s2.ID], s.SinkFast[s2.ID])
	}
	if s.SinkSlow[s3.ID] != 20 || s.SinkFast[s3.ID] != 10 {
		t.Errorf("s3 slacks (%v,%v) want (20,10)", s.SinkSlow[s3.ID], s.SinkFast[s3.ID])
	}
}

func TestEdgeSlacksLemma1(t *testing.T) {
	tk := tech.Default45()
	tr, ns := buildTree(tk)
	a, b, s1, s2, s3 := ns[0], ns[1], ns[2], ns[3], ns[4]
	lat := map[int]float64{s1.ID: 100, s2.ID: 130, s3.ID: 110}
	s := Compute(tr, []*analysis.Result{resultWith(lat)})
	// Edge a feeds s1 (slow 30) and s2 (slow 0) -> min 0.
	if s.EdgeSlow[a.ID] != 0 {
		t.Errorf("edge a slow=%v want 0", s.EdgeSlow[a.ID])
	}
	if s.EdgeFast[a.ID] != 0 {
		t.Errorf("edge a fast=%v want 0 (s1 is the fastest sink)", s.EdgeFast[a.ID])
	}
	if s.EdgeSlow[b.ID] != 20 || s.EdgeFast[b.ID] != 10 {
		t.Errorf("edge b slacks (%v,%v) want (20,10)", s.EdgeSlow[b.ID], s.EdgeFast[b.ID])
	}
}

func TestLemma2Monotonicity(t *testing.T) {
	// Child edge slacks dominate parent edge slacks on random trees with
	// random latencies.
	tk := tech.Default45()
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 40; iter++ {
		tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
		parents := []*ctree.Node{tr.Root}
		for i := 0; i < 30; i++ {
			p := parents[rng.Intn(len(parents))]
			loc := geom.Pt(float64(rng.Intn(1000)), float64(rng.Intn(1000)))
			if rng.Intn(3) == 0 {
				tr.AddSink(p, loc, 30, "")
			} else {
				parents = append(parents, tr.AddChild(p, ctree.Internal, loc))
			}
		}
		sinks := tr.Sinks()
		if len(sinks) == 0 {
			continue
		}
		lat := map[int]float64{}
		for _, s := range sinks {
			lat[s.ID] = 100 + rng.Float64()*50
		}
		s := Compute(tr, []*analysis.Result{resultWith(lat)})
		tr.PreOrder(func(n *ctree.Node) {
			if n.Parent == nil || n.Parent.Parent == nil {
				return
			}
			if s.EdgeSlow[n.ID] < s.EdgeSlow[n.Parent.ID]-1e-12 {
				t.Fatalf("Lemma 2 violated (slow): edge %d %v < parent %v",
					n.ID, s.EdgeSlow[n.ID], s.EdgeSlow[n.Parent.ID])
			}
			if s.EdgeFast[n.ID] < s.EdgeFast[n.Parent.ID]-1e-12 {
				t.Fatalf("Lemma 2 violated (fast): edge %d", n.ID)
			}
		})
	}
}

func TestProposition1(t *testing.T) {
	// Slowing every edge down by exactly Δslow (additively) must equalize
	// all sink latencies at Tmax, making skew zero.
	tk := tech.Default45()
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 40; iter++ {
		tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
		parents := []*ctree.Node{tr.Root}
		for i := 0; i < 25; i++ {
			p := parents[rng.Intn(len(parents))]
			loc := geom.Pt(float64(rng.Intn(1000)), float64(rng.Intn(1000)))
			if rng.Intn(3) == 0 {
				tr.AddSink(p, loc, 30, "")
			} else {
				parents = append(parents, tr.AddChild(p, ctree.Internal, loc))
			}
		}
		sinks := tr.Sinks()
		if len(sinks) < 2 {
			continue
		}
		lat := map[int]float64{}
		for _, s := range sinks {
			lat[s.ID] = 100 + rng.Float64()*60
		}
		s := Compute(tr, []*analysis.Result{resultWith(lat)})
		tmax := math.Inf(-1)
		for _, v := range lat {
			tmax = math.Max(tmax, v)
		}
		for _, sk := range sinks {
			adj := lat[sk.ID]
			for cur := sk; cur.Parent != nil; cur = cur.Parent {
				adj += s.DeltaSlow[cur.ID]
			}
			if math.Abs(adj-tmax) > 1e-9 {
				t.Fatalf("iter %d: sink %d adjusted latency %v != Tmax %v",
					iter, sk.ID, adj, tmax)
			}
		}
	}
}

func TestMultiViewConservativeMerge(t *testing.T) {
	tk := tech.Default45()
	tr, ns := buildTree(tk)
	s1, s2, s3 := ns[2], ns[3], ns[4]
	// Rising: s1 fast. Falling: s1 slow. The merged slow-down slack of s1
	// must be limited by the falling view.
	r := &analysis.Result{
		Rise: map[int]float64{s1.ID: 100, s2.ID: 120, s3.ID: 120},
		Fall: map[int]float64{s1.ID: 125, s2.ID: 120, s3.ID: 120},
	}
	s := Compute(tr, []*analysis.Result{r})
	if got := s.SinkSlow[s1.ID]; got != 0 {
		t.Errorf("s1 merged slow slack=%v want 0 (falling corner limits it)", got)
	}
	if got := s.SinkFast[s1.ID]; got != 0 {
		t.Errorf("s1 merged fast slack=%v want 0 (rising corner limits it)", got)
	}
	// Two corners: the second corner further restricts.
	r2 := &analysis.Result{
		Rise: map[int]float64{s1.ID: 110, s2.ID: 110, s3.ID: 112},
		Fall: map[int]float64{s1.ID: 110, s2.ID: 110, s3.ID: 112},
	}
	s2c := Compute(tr, []*analysis.Result{r, r2})
	if s2c.SinkSlow[s3.ID] > 0 {
		t.Errorf("corner 2 should zero s3's slow slack, got %v", s2c.SinkSlow[s3.ID])
	}
}

func TestRootEdgeSlackIsZero(t *testing.T) {
	// The trunk sees every sink, so its slacks are exactly Tmax−Tmax = 0
	// and Tmin−Tmin = 0 when one sink attains each extreme.
	tk := tech.Default45()
	tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
	trunk := tr.AddChild(tr.Root, ctree.Internal, geom.Pt(100, 100))
	tr.AddSink(trunk, geom.Pt(200, 100), 30, "a")
	tr.AddSink(trunk, geom.Pt(100, 200), 30, "b")
	sinks := tr.Sinks()
	lat := map[int]float64{sinks[0].ID: 90, sinks[1].ID: 140}
	s := Compute(tr, []*analysis.Result{resultWith(lat)})
	if s.EdgeSlow[trunk.ID] != 0 || s.EdgeFast[trunk.ID] != 0 {
		t.Errorf("trunk slacks (%v,%v) want (0,0)", s.EdgeSlow[trunk.ID], s.EdgeFast[trunk.ID])
	}
}

func TestGradient(t *testing.T) {
	tk := tech.Default45()
	tr, ns := buildTree(tk)
	s1, s2, s3 := ns[2], ns[3], ns[4]
	lat := map[int]float64{s1.ID: 100, s2.ID: 130, s3.ID: 110}
	s := Compute(tr, []*analysis.Result{resultWith(lat)})
	if g := s.Gradient(s2.ID); g != 0 {
		t.Errorf("critical sink gradient=%v want 0", g)
	}
	if g := s.Gradient(s1.ID); g != 1 {
		t.Errorf("max-slack sink gradient=%v want 1", g)
	}
	for _, n := range ns {
		g := s.Gradient(n.ID)
		if g < 0 || g > 1 {
			t.Errorf("gradient out of range: %v", g)
		}
	}
}
