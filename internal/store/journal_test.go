package store

import (
	"os"
	"path/filepath"
	"testing"
)

func openJ(t *testing.T, path string) (*Journal, []Record) {
	t.Helper()
	j, recs, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	return j, recs
}

func TestJournalAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.log")
	j, recs := openJ(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh journal has %d records", len(recs))
	}
	mustAppend(t, j, "submitted", "aaaa")
	mustAppend(t, j, "started", "aaaa")
	mustAppend(t, j, "submitted", "bbbb")
	mustAppend(t, j, "finished", "aaaa")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs := openJ(t, path)
	defer j2.Close()
	// aaaa reached a terminal state and compacts away entirely; bbbb's
	// latest transition survives.
	if len(recs) != 1 {
		t.Fatalf("compacted records = %d want 1 (terminal keys dropped): %+v", len(recs), recs)
	}
	if recs[0].Key != "bbbb" || recs[0].Kind != "submitted" {
		t.Errorf("recs[0] = %+v want bbbb/submitted", recs[0])
	}
	if recs[0].Terminal() {
		t.Error("Terminal misclassifies submitted")
	}
	if !(Record{Kind: "finished"}).Terminal() || (Record{Kind: "pending"}).Terminal() {
		t.Error("Terminal misclassifies finished/pending")
	}
}

func TestJournalTruncatedTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.log")
	j, _ := openJ(t, path)
	mustAppend(t, j, "submitted", "aaaa")
	mustAppend(t, j, "submitted", "bbbb")
	j.Close()

	// Simulate a torn write: append half a frame of garbage.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x20, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, recs := openJ(t, path)
	defer j2.Close()
	if len(recs) != 2 {
		t.Fatalf("records after torn tail = %d want 2", len(recs))
	}
	// The rewrite was clean: appending and reopening again keeps working,
	// and the finished key compacts away.
	mustAppend(t, j2, "finished", "aaaa")
	j2.Close()
	j3, recs := openJ(t, path)
	defer j3.Close()
	if len(recs) != 1 || recs[0].Key != "bbbb" {
		t.Fatalf("post-repair replay broken: %+v", recs)
	}
}

func TestJournalBitFlipDropsTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.log")
	j, _ := openJ(t, path)
	r1 := mustAppend(t, j, "submitted", "aaaa")
	mustAppend(t, j, "submitted", "bbbb")
	j.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte inside the second frame's payload.
	raw[len(raw)-2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, recs := openJ(t, path)
	defer j2.Close()
	if len(recs) != 1 || recs[0].Key != r1.Key {
		t.Fatalf("replay after bit flip = %+v, want just %q", recs, r1.Key)
	}
}

func TestJournalGarbageFileRecovers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.log")
	if err := os.WriteFile(path, []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs := openJ(t, path)
	defer j.Close()
	if len(recs) != 0 {
		t.Fatalf("garbage journal produced %d records", len(recs))
	}
	mustAppend(t, j, "submitted", "cccc")
}

func TestJournalClosedAppendFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.log")
	j, _ := openJ(t, path)
	j.Close()
	if _, err := j.Append("submitted", "aaaa"); err == nil {
		t.Fatal("append after close succeeded")
	}
}

func mustAppend(t *testing.T, j *Journal, kind, key string) Record {
	t.Helper()
	r, err := j.Append(kind, key)
	if err != nil {
		t.Fatal(err)
	}
	return r
}
