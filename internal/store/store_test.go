package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const k1 = "ab12cdef0000000000000000000000000000000000000000000000000000ffff.result"

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("hello, artifact")
	if err := s.Put(k1, data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(k1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q want %q", got, data)
	}
	// Sharded layout: objects/ab/<key>.
	if _, err := os.Stat(filepath.Join(s.Dir(), "objects", "ab", k1)); err != nil {
		t.Errorf("blob not in sharded location: %v", err)
	}
	if n, ok := s.Size(k1); !ok || n != int64(len(data)) {
		t.Errorf("Size = %d,%v want %d,true", n, ok, len(data))
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d want 1", s.Len())
	}
	// Overwrite is idempotent replacement.
	if err := s.Put(k1, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(k1); string(got) != "v2" {
		t.Errorf("overwrite not visible: %q", got)
	}
}

func TestGetMissing(t *testing.T) {
	s, _ := Open(t.TempDir(), false)
	if _, err := s.Get(k1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v want ErrNotFound", err)
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s, _ := Open(t.TempDir(), false)
	for _, key := range []string{"", "a", "../evil", "ab/cd", "AB12", "a b", ".hidden", strings.Repeat("x", 300)} {
		if err := s.Put(key, []byte("x")); err == nil {
			t.Errorf("Put accepted invalid key %q", key)
		}
		if _, err := s.Get(key); err == nil {
			t.Errorf("Get accepted invalid key %q", key)
		}
	}
}

func TestCorruptBlobQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, false)
	if err := s.Put(k1, []byte("precious result bytes")); err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit on disk.
	path := filepath.Join(dir, "objects", "ab", k1)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = s.Get(k1)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v want ErrCorrupt", err)
	}
	if !errors.Is(err, ErrNotFound) {
		t.Error("corruption should also read as not-found for cache callers")
	}
	if s.Quarantined() != 1 {
		t.Errorf("Quarantined = %d want 1", s.Quarantined())
	}
	// The bad blob moved aside: next read is a clean miss, bytes kept for
	// post-mortem.
	if _, err := s.Get(k1); !errors.Is(err, ErrNotFound) || errors.Is(err, ErrCorrupt) {
		t.Errorf("second read should be a clean miss, got %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", k1)); err != nil {
		t.Errorf("quarantined bytes missing: %v", err)
	}
}

func TestTruncatedBlobQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, false)
	if err := s.Put(k1, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "objects", "ab", k1)
	if err := os.Truncate(path, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(k1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v want ErrCorrupt", err)
	}
}

func TestDelete(t *testing.T) {
	s, _ := Open(t.TempDir(), false)
	if err := s.Put(k1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(k1); err != nil {
		t.Fatal(err)
	}
	if s.Has(k1) {
		t.Error("deleted blob still present")
	}
	if err := s.Delete(k1); err != nil {
		t.Errorf("double delete should be a no-op: %v", err)
	}
}

func TestOpenSweepsOnlyStaleTmp(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir, false); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, "tmp", "put-crashed")
	fresh := filepath.Join(dir, "tmp", "put-inflight")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("half-written"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Age the crashed writer's leftover past the sweep threshold.
	old := time.Now().Add(-2 * staleTmpAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, false); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale tmp file survived reopen")
	}
	// A fresh staging file may be another process's Put in flight (shared
	// cache-dir): it must survive.
	if _, err := os.Stat(fresh); err != nil {
		t.Error("in-flight tmp file swept by reopen")
	}
}

func TestSyncedPut(t *testing.T) {
	// Just exercise the fsync path; durability itself can't be unit-tested.
	s, err := Open(t.TempDir(), true)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k1, []byte("synced")); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Get(k1); err != nil || string(got) != "synced" {
		t.Fatalf("got %q, %v", got, err)
	}
}
