package store

import "contango/internal/obs"

// Metrics are the observability counters the store and journal update.
// All fields are optional (obs metrics are nil-safe), so an uninstrumented
// store — the contango CLI's -cache-dir, say — pays only dead no-op calls.
type Metrics struct {
	Reads       *obs.Counter // successful object reads
	ReadBytes   *obs.Counter // payload bytes read
	Writes      *obs.Counter // successful object writes
	WriteBytes  *obs.Counter // payload bytes written
	Quarantines *obs.Counter // blobs moved aside after integrity failure

	JournalAppends   *obs.Counter // lifecycle records appended
	JournalCompacted *obs.Counter // records dropped by open-time compaction
}

// SetMetrics attaches observability counters to the store. Call once,
// right after Open, before concurrent use.
func (s *Store) SetMetrics(m *Metrics) {
	if m == nil {
		m = &Metrics{}
	}
	s.metrics = m
}

// SetMetrics attaches observability counters to the journal and
// retroactively credits the open-time compaction (which ran inside
// OpenJournal, before any counters could exist). Call once, right after
// OpenJournal, before concurrent use.
func (j *Journal) SetMetrics(m *Metrics) {
	if m == nil {
		m = &Metrics{}
	}
	j.metrics = m
	m.JournalCompacted.Add(int64(j.compacted))
}

// CompactedRecords reports how many records the open-time compaction
// dropped (terminal keys plus superseded transitions).
func (j *Journal) CompactedRecords() int { return j.compacted }
