// Package store is the durable storage layer under the synthesis service:
// a content-addressed, on-disk artifact store plus an append-only job
// journal (journal.go). Synthesis runs are expensive — minutes of
// SPICE-driven cascade per job — so finished results, progress logs and
// rendered SVGs are persisted under their content address and survive
// process restarts.
//
// Layout of a store directory:
//
//	objects/ab/abcdef….result   framed blobs, sharded by key prefix
//	tmp/                        staging area for atomic writes
//	quarantine/                 blobs that failed their integrity check
//	journal.log                 append-only job journal (see Journal)
//
// Every blob is framed with a magic string, its payload length and a
// CRC-32C checksum, and written atomically (tmp file, fsync, rename, fsync
// of the shard directory). Reads verify the frame; a blob that fails
// verification is moved to quarantine/ and reported as missing, so a
// corrupted object degrades to a cache miss instead of poisoning callers
// or failing startup.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Blob frame: magic, payload CRC-32C, payload length, payload bytes.
var objMagic = [8]byte{'C', 'T', 'G', 'O', 'B', 'J', '0', '1'}

const objHeaderLen = 8 + 4 + 8

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Errors reported by the store.
var (
	// ErrNotFound: no blob under that key (possibly quarantined).
	ErrNotFound = errors.New("store: object not found")
	// ErrCorrupt wraps integrity failures; Get quarantines the blob and
	// returns an error matching both ErrCorrupt and ErrNotFound.
	ErrCorrupt = errors.New("store: object corrupt")
)

// corruptError matches both ErrCorrupt and ErrNotFound, so callers that
// only care about "is the object usable" can errors.Is(err, ErrNotFound)
// while diagnostics can still distinguish corruption.
type corruptError struct{ why string }

func (e *corruptError) Error() string { return "store: object corrupt: " + e.why }
func (e *corruptError) Is(target error) bool {
	return target == ErrCorrupt || target == ErrNotFound
}

// Store is a content-addressed blob store rooted at a directory. Keys are
// content addresses (hex hashes) with an optional dot-separated suffix
// naming the artifact kind, e.g. "ab12….result". Methods are safe for
// concurrent use.
type Store struct {
	dir     string
	sync    bool     // fsync files and directories on write
	metrics *Metrics // optional observability counters (SetMetrics)

	mu          sync.Mutex
	quarantined int
}

// Open creates (if needed) and opens a store directory. With sync true
// every write is fsynced — the durability the service relies on; tests and
// throwaway runs may pass false.
func Open(dir string, sync bool) (*Store, error) {
	for _, sub := range []string{"objects", "tmp", "quarantine"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	// Stale staging files from a crashed writer are garbage (their rename
	// never happened): sweep them on open. Only genuinely old files go — a
	// store directory may be shared between processes (contango -cache-dir
	// alongside a running contangod -data-dir), and a fresh tmp file may be
	// another process's Put in flight.
	if tmps, err := os.ReadDir(filepath.Join(dir, "tmp")); err == nil {
		for _, e := range tmps {
			if info, err := e.Info(); err == nil && time.Since(info.ModTime()) > staleTmpAge {
				_ = os.Remove(filepath.Join(dir, "tmp", e.Name()))
			}
		}
	}
	return &Store{dir: dir, sync: sync, metrics: &Metrics{}}, nil
}

// staleTmpAge is how old a tmp/ staging file must be before Open treats it
// as a crashed writer's leftover. Puts live for milliseconds; an hour is
// conservatively beyond any in-flight write.
const staleTmpAge = time.Hour

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// validKey reports whether key is safe as a file name under objects/:
// lower-case hex content addresses plus dot/dash suffixes, at least two
// leading shard characters, no path separators.
func validKey(key string) bool {
	if len(key) < 2 || len(key) > 255 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '.', c == '-', c == '_':
		default:
			return false
		}
	}
	return key[0] != '.' && key[1] != '.'
}

func (s *Store) objectPath(key string) string {
	return filepath.Join(s.dir, "objects", key[:2], key)
}

// Put writes a blob under key atomically: frame into a tmp file, fsync,
// rename into the sharded objects/ tree, fsync the shard directory. An
// existing blob under the same key is replaced (content addressing makes
// replacement idempotent).
func (s *Store) Put(key string, data []byte) error {
	if !validKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	shard := filepath.Dir(s.objectPath(key))
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	f, err := os.CreateTemp(filepath.Join(s.dir, "tmp"), "put-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	defer os.Remove(tmp) // no-op after a successful rename

	var hdr [objHeaderLen]byte
	copy(hdr[:8], objMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.Checksum(data, crcTable))
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(len(data)))
	if _, err := f.Write(hdr[:]); err == nil {
		_, err = f.Write(data)
	}
	if err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if s.sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("store: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, s.objectPath(key)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if s.sync {
		if err := syncDir(shard); err != nil {
			return err
		}
	}
	s.metrics.Writes.Inc()
	s.metrics.WriteBytes.Add(int64(len(data)))
	return nil
}

// Get reads the blob under key and verifies its frame. Corrupt blobs
// (bad magic, length mismatch, CRC failure) are moved to quarantine/ and
// reported with an error matching both ErrCorrupt and ErrNotFound.
func (s *Store) Get(key string) ([]byte, error) {
	if !validKey(key) {
		return nil, fmt.Errorf("store: invalid key %q", key)
	}
	raw, err := os.ReadFile(s.objectPath(key))
	if os.IsNotExist(err) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	data, why := verifyFrame(raw)
	if why != "" {
		s.quarantine(key)
		return nil, &corruptError{why: fmt.Sprintf("%s: %s", key, why)}
	}
	s.metrics.Reads.Inc()
	s.metrics.ReadBytes.Add(int64(len(data)))
	return data, nil
}

// verifyFrame checks a framed blob and returns its payload, or a non-empty
// reason string on failure.
func verifyFrame(raw []byte) ([]byte, string) {
	if len(raw) < objHeaderLen {
		return nil, "short header"
	}
	if [8]byte(raw[:8]) != objMagic {
		return nil, "bad magic"
	}
	n := binary.LittleEndian.Uint64(raw[12:20])
	if uint64(len(raw)-objHeaderLen) != n {
		return nil, "length mismatch"
	}
	payload := raw[objHeaderLen:]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(raw[8:12]) {
		return nil, "crc mismatch"
	}
	return payload, ""
}

// quarantine moves a bad blob aside so the next Get is a clean miss and
// the bytes stay available for post-mortem.
func (s *Store) quarantine(key string) {
	dst := filepath.Join(s.dir, "quarantine", key)
	if err := os.Rename(s.objectPath(key), dst); err != nil {
		// Last resort: a blob we can neither verify nor move must not keep
		// serving corrupt reads forever.
		_ = os.Remove(s.objectPath(key))
	}
	s.mu.Lock()
	s.quarantined++
	s.mu.Unlock()
	s.metrics.Quarantines.Inc()
}

// Quarantined returns how many blobs this Store instance moved to
// quarantine (since Open).
func (s *Store) Quarantined() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantined
}

// Has reports whether a blob exists under key (without verifying it).
func (s *Store) Has(key string) bool {
	if !validKey(key) {
		return false
	}
	_, err := os.Stat(s.objectPath(key))
	return err == nil
}

// Size returns the payload size of the blob under key, if present.
func (s *Store) Size(key string) (int64, bool) {
	if !validKey(key) {
		return 0, false
	}
	fi, err := os.Stat(s.objectPath(key))
	if err != nil || fi.Size() < objHeaderLen {
		return 0, false
	}
	return fi.Size() - objHeaderLen, true
}

// Delete removes the blob under key (missing blobs are not an error).
func (s *Store) Delete(key string) error {
	if !validKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	if err := os.Remove(s.objectPath(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Len counts the stored objects (a full scan; used by stats and tests, not
// hot paths).
func (s *Store) Len() int {
	n := 0
	shards, _ := os.ReadDir(filepath.Join(s.dir, "objects"))
	for _, sh := range shards {
		if !sh.IsDir() {
			continue
		}
		entries, _ := os.ReadDir(filepath.Join(s.dir, "objects", sh.Name()))
		n += len(entries)
	}
	return n
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, io.EOF) {
		return fmt.Errorf("store: sync %s: %w", dir, err)
	}
	return nil
}
