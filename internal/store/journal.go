package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Record is one job-journal entry: a lifecycle transition of the job with
// the given content-address key. The payload a record carries is just the
// transition — job specs and results live in the object store under the
// same key, so the journal stays tiny and compaction is trivial.
type Record struct {
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	Kind string    `json:"kind"` // submitted|started|pending|finished|failed|canceled
	Key  string    `json:"key"`
}

// Terminal reports whether the record's kind ends the job's lifecycle.
// Non-terminal records (submitted, started, pending) mean the job's work
// was lost in flight and must be re-queued on recovery.
func (r Record) Terminal() bool {
	switch r.Kind {
	case "finished", "failed", "canceled":
		return true
	}
	return false
}

// Journal is an append-only job journal with crc-checked framing. Each
// frame is [len uint32][crc32c uint32][JSON payload]; a torn tail (the
// frame a crash interrupted) is detected by the checksum, truncated away
// and the journal keeps working. OpenJournal compacts on open: only keys
// whose latest record is non-terminal survive — a terminal record means
// the job needs nothing from recovery (its result, if any, lives in the
// object store), so the journal stays proportional to the number of
// unfinished jobs, not the number of jobs ever processed.
type Journal struct {
	mu        sync.Mutex
	f         *os.File
	path      string
	sync      bool
	seq       uint64
	compacted int      // records dropped by the open-time compaction
	metrics   *Metrics // optional observability counters (SetMetrics)
}

// maxFrame bounds a journal frame; anything larger is treated as
// corruption rather than an allocation request.
const maxFrame = 1 << 20

// OpenJournal opens (creating if missing) the journal at path, replays and
// compacts it, and returns the surviving records in original order — one
// per key whose latest transition is non-terminal (terminal keys are
// compacted away entirely: nothing ever reads them back). A corrupt or
// torn frame ends the replay: everything before it is kept, the bad tail
// is dropped, and the rewritten file is clean. With sync true every append
// is fsynced.
func OpenJournal(path string, sync bool) (*Journal, []Record, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	recs := replayFile(path)

	// Compact: latest record per key, in first-submission order; keys that
	// reached a terminal state are dropped.
	var order []string
	seen := make(map[string]bool, len(recs))
	byKey := make(map[string]Record, len(recs))
	for _, r := range recs {
		if !seen[r.Key] {
			seen[r.Key] = true
			order = append(order, r.Key)
		}
		byKey[r.Key] = r // later records overwrite: last one wins
	}
	compacted := make([]Record, 0, len(order))
	for _, key := range order {
		r := byKey[key]
		if r.Terminal() {
			continue
		}
		r.Seq = uint64(len(compacted) + 1) // renumber densely
		compacted = append(compacted, r)
	}

	// Rewrite atomically, then reopen for append.
	tmp := path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	for _, r := range compacted {
		if _, err := f.Write(frame(r)); err != nil {
			f.Close()
			os.Remove(tmp)
			return nil, nil, fmt.Errorf("store: %w", err)
		}
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return nil, nil, fmt.Errorf("store: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	if sync {
		if err := syncDir(filepath.Dir(path)); err != nil {
			return nil, nil, err
		}
	}
	out, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	j := &Journal{f: out, path: path, sync: sync, seq: uint64(len(compacted)),
		compacted: len(recs) - len(compacted), metrics: &Metrics{}}
	return j, compacted, nil
}

// replayFile reads records until EOF or the first bad frame. The file not
// existing yet is an empty journal, and any framing damage simply ends the
// replay — recovery must tolerate whatever a crash left behind.
func replayFile(path string) []Record {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var recs []Record
	off := 0
	for off+8 <= len(raw) {
		n := int(binary.LittleEndian.Uint32(raw[off : off+4]))
		sum := binary.LittleEndian.Uint32(raw[off+4 : off+8])
		if n <= 0 || n > maxFrame || off+8+n > len(raw) {
			break // torn or nonsense tail
		}
		payload := raw[off+8 : off+8+n]
		if crc32.Checksum(payload, crcTable) != sum {
			break // bit rot from here on: drop the tail
		}
		var r Record
		if err := json.Unmarshal(payload, &r); err != nil {
			break
		}
		recs = append(recs, r)
		off += 8 + n
	}
	return recs
}

func frame(r Record) []byte {
	payload, _ := json.Marshal(r) // Record has no unmarshalable fields
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	copy(buf[8:], payload)
	return buf
}

// Append journals one lifecycle transition and returns the stamped record.
func (j *Journal) Append(kind, key string) (Record, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return Record{}, fmt.Errorf("store: journal closed")
	}
	j.seq++
	r := Record{Seq: j.seq, Time: time.Now().UTC(), Kind: kind, Key: key}
	if _, err := j.f.Write(frame(r)); err != nil {
		return Record{}, fmt.Errorf("store: journal append: %w", err)
	}
	if j.sync {
		if err := j.f.Sync(); err != nil {
			return Record{}, fmt.Errorf("store: journal sync: %w", err)
		}
	}
	j.metrics.JournalAppends.Inc()
	return r, nil
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
