package opt

import (
	"math/rand"
	"testing"

	"contango/internal/ctree"
	"contango/internal/dme"
	"contango/internal/geom"
	"contango/internal/tech"
)

func TestTrunkArenaMatchesPointer(t *testing.T) {
	tk := tech.Default45()
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 2, 17, 120} {
		var sinks []dme.Sink
		for len(sinks) < n {
			sinks = append(sinks, dme.Sink{
				Loc: geom.Pt(2000+rng.Float64()*3000, 2000+rng.Float64()*3000),
				Cap: 20 + rng.Float64()*20,
			})
		}
		// A far-away source gives the long boundary-to-center trunk the
		// helper exists for.
		tr := dme.BuildZST(tk, geom.Pt(0, 0), sinks, dme.Options{})
		a := ctree.FromTree(tr)
		want := Trunk(tr)
		got := TrunkArena(a)
		if len(want) != len(got) {
			t.Fatalf("n=%d: trunk lengths differ: pointer %d vs arena %d", n, len(want), len(got))
		}
		for i := range want {
			if int32(want[i].ID) != got[i] {
				t.Fatalf("n=%d: trunk[%d] = node %d vs slot %d", n, i, want[i].ID, got[i])
			}
		}
	}
}
