package opt

import (
	"sort"

	"contango/internal/analysis"
	"contango/internal/ctree"
	"contango/internal/slack"
)

// EstimateTws measures the ad hoc linear wiresizing model of Section IV-E:
// several independent mid-tree wire segments are downsized, one accurate
// evaluation observes the worst latency increase among their downstream
// sinks, and the per-µm impact parameter Tws is the conservative maximum.
// The probes are reverted before returning; exactly one extra CNE is spent.
func EstimateTws(cx *Context) (float64, error) {
	base, _, err := cx.Baseline()
	if err != nil {
		return 0, err
	}
	probes := pickProbes(cx.Tree, cx.wideIdx(), 4)
	if len(probes) == 0 {
		return 0, nil
	}
	narrow := cx.narrowIdx()
	for _, p := range probes {
		cx.Tree.SetWidth(p, narrow)
	}
	cx.invalidate()
	after, _, err := cx.CNE()
	if err != nil {
		return 0, err
	}
	twsUnit := 0.0
	for _, p := range probes {
		worst := 0.0
		for _, s := range sinksUnder(p) {
			for vi := range base {
				if d := after[vi].Rise[s.ID] - base[vi].Rise[s.ID]; d > worst {
					worst = d
				}
				if d := after[vi].Fall[s.ID] - base[vi].Fall[s.ID]; d > worst {
					worst = d
				}
			}
		}
		if u := worst / p.EdgeLen(); u > twsUnit {
			twsUnit = u
		}
	}
	// Revert probes and the CNE cache.
	wide := cx.wideIdx()
	for _, p := range probes {
		cx.Tree.SetWidth(p, wide)
	}
	cx.invalidate()
	return twsUnit, nil
}

// pickProbes selects up to k long, wide, subtree-disjoint edges from the
// middle of the tree (neither trunk nor sink edges).
func pickProbes(tr *ctree.Tree, wide, k int) []*ctree.Node {
	var cands []*ctree.Node
	tr.PreOrder(func(n *ctree.Node) {
		if n.Parent == nil || n.Parent.Parent == nil {
			return // root or trunk-top edges: affect all sinks
		}
		if n.Kind == ctree.Sink || n.WidthIdx != wide {
			return
		}
		if n.EdgeLen() < 100 {
			return
		}
		cands = append(cands, n)
	})
	sort.Slice(cands, func(i, j int) bool { return cands[i].EdgeLen() > cands[j].EdgeLen() })
	var out []*ctree.Node
	taken := map[int]bool{}
	for _, c := range cands {
		if len(out) == k {
			break
		}
		conflict := false
		for cur := c; cur != nil; cur = cur.Parent {
			if taken[cur.ID] {
				conflict = true
				break
			}
		}
		if conflict {
			continue
		}
		// Mark the whole subtree as taken so probes stay independent.
		var mark func(*ctree.Node)
		mark = func(n *ctree.Node) {
			taken[n.ID] = true
			for _, ch := range n.Children {
				mark(ch)
			}
		}
		mark(c)
		out = append(out, c)
	}
	return out
}

func sinksUnder(n *ctree.Node) []*ctree.Node {
	var out []*ctree.Node
	var rec func(*ctree.Node)
	rec = func(m *ctree.Node) {
		if m.Kind == ctree.Sink {
			out = append(out, m)
		}
		for _, c := range m.Children {
			rec(c)
		}
	}
	rec(n)
	return out
}

// TopDownWiresizing is Algorithm 1 of the paper: repeatedly compute wire
// slow-down slacks, walk the tree top-down with a running consumed-slack
// budget, downsize every wide edge whose remaining slack exceeds the
// estimated impact Tws·length, then accept or revert based on an accurate
// evaluation. Downsizing also *reduces* capacitance, so this pass frees
// power for later snaking.
func TopDownWiresizing(cx *Context) error {
	twsUnit, err := EstimateTws(cx)
	if err != nil {
		return err
	}
	if twsUnit <= 0 {
		cx.logf("twsz: no usable probes, skipping")
		return nil
	}
	cx.logf("twsz: Tws=%.4f ps/µm", twsUnit)
	wide, narrow := cx.wideIdx(), cx.narrowIdx()
	return cx.improveLoop("twsz", MinSkew, func(res []*analysis.Result) bool {
		slk := slack.Compute(cx.Tree, res)
		changed := 0
		type item struct {
			n      *ctree.Node
			rslack float64
		}
		queue := []item{}
		for _, c := range cx.Tree.Root.Children {
			queue = append(queue, item{c, 0})
		}
		for len(queue) > 0 {
			it := queue[0]
			queue = queue[1:]
			n, rs := it.n, it.rslack
			if n.Parent != nil && n.WidthIdx == wide {
				est := twsUnit * n.EdgeLen()
				if budget := slk.EdgeSlow[n.ID] - rs; budget > est && est > 0 {
					cx.Tree.SetWidth(n, narrow)
					rs += est
					changed++
				}
			}
			for _, c := range n.Children {
				queue = append(queue, item{c, rs})
			}
		}
		cx.logf("twsz: downsized %d edges", changed)
		return changed > 0
	})
}
