package opt

import (
	"math"

	"contango/internal/analysis"
	"contango/internal/ctree"
	"contango/internal/slack"
)

// DefaultLwn is the wiresnaking quantum (µm): snake lengths are multiples of
// it. Smaller values give finer control at the cost of more accurate-
// evaluation rounds (Section IV-F); the default follows the paper's
// empirically-set mid-range.
const DefaultLwn = 25.0

// EstimateTwn measures the worst-case effects of one snaking quantum: probe
// edges receive lwn µm of snake, one accurate evaluation measures the
// latency increase of their downstream sinks (Twn, ps/µm) and the slew
// degradation (TwnSlew, ps/µm), both conservative over probes. Probes are
// reverted. When sinkEdges is true the probes are sink wires, matching the
// bottom-level pass's operating region.
func EstimateTwn(cx *Context, lwn float64, sinkEdges bool) (twn, twnSlew float64, err error) {
	base, _, err := cx.Baseline()
	if err != nil {
		return 0, 0, err
	}
	var probes []*ctree.Node
	if sinkEdges {
		for _, s := range cx.Tree.Sinks() {
			if s.EdgeLen() > 50 {
				probes = append(probes, s)
			}
			if len(probes) == 4 {
				break
			}
		}
	} else {
		probes = pickProbes(cx.Tree, cx.wideIdx(), 3)
	}
	if len(probes) == 0 {
		// Degenerate trees: fall back to the wire model (r·c per µm against
		// a typical downstream cap is unknowable without probes; use a tiny
		// positive stand-in so callers can still budget).
		w := cx.Tree.Tech.Wires[cx.wideIdx()]
		return w.RPerUm * w.CPerUm * 100, 0.01, nil
	}
	for _, p := range probes {
		cx.Tree.AddSnake(p, lwn)
	}
	cx.invalidate()
	after, _, err := cx.CNE()
	if err != nil {
		return 0, 0, err
	}
	for _, p := range probes {
		worst, worstSlew := 0.0, 0.0
		for _, s := range sinksUnder(p) {
			for vi := range base {
				if d := after[vi].Rise[s.ID] - base[vi].Rise[s.ID]; d > worst {
					worst = d
				}
				if d := after[vi].Fall[s.ID] - base[vi].Fall[s.ID]; d > worst {
					worst = d
				}
				if d := after[vi].SinkSlew[s.ID] - base[vi].SinkSlew[s.ID]; d > worstSlew {
					worstSlew = d
				}
			}
		}
		if u := worst / lwn; u > twn {
			twn = u
		}
		if u := worstSlew / lwn; u > twnSlew {
			twnSlew = u
		}
	}
	for vi := range base {
		if d := (after[vi].MaxSlew - base[vi].MaxSlew) / lwn; d > twnSlew {
			twnSlew = d
		}
	}
	if twnSlew <= 0 {
		twnSlew = 1e-4
	}
	for _, p := range probes {
		cx.Tree.AddSnake(p, -lwn)
	}
	cx.invalidate()
	return twn, twnSlew, nil
}

// snakeBudgetPass walks the tree top-down assigning snake to edges with
// positive remaining slow-down slack. safety < 1 leaves margin for model
// error; onlySinkEdges restricts the pass to bottom-level wires; maxStep
// caps the snake added to one edge in one round — the linear Twn model only
// holds for small increments (the paper snakes "a small amount" per round).
func snakeBudgetPass(cx *Context, res []*analysis.Result, twn, twnSlew, lwn, safety float64, onlySinkEdges bool, maxStep, capShare float64) int {
	slk := slack.Compute(cx.Tree, res)
	tk := cx.Tree.Tech
	wireC := tk.Wires[cx.narrowIdx()].CPerUm
	headroom := cx.capHeadroom() * capShare
	limit := tk.SlewLimit
	// Per-stage measured slews (worst over corners): snake on an edge only
	// degrades the slews of its own stage, so each stage's remaining
	// headroom bounds how much snake its edges can absorb this round.
	stageSlew := map[int]float64{}
	for _, r := range res {
		for id, v := range r.StageSlew {
			if v > stageSlew[id] {
				stageSlew[id] = v
			}
		}
	}
	// Analytic slew impact of snaking edge n by x µm, at the slow corner:
	//   Δslew ≈ 2.2·[Rd·c·x + r·x·(c·x/2 + Cdown)]
	// — the stage driver charging the extra capacitance plus the snake's
	// own series resistance feeding everything below the edge. Inverting
	// the quadratic gives the largest snake the remaining stage headroom
	// allows; headroom is consumed as edges of the same stage are snaked.
	slowV := tk.Worst().Vdd
	driverR := func(driverID int) float64 {
		if driverID < 0 {
			return cx.Tree.SourceR * (tk.VddRef - tk.Vt) / (slowV - tk.Vt)
		}
		n := cx.Tree.Node(driverID)
		if n == nil || n.Buf == nil {
			return 1
		}
		return tk.RoutAt(*n.Buf, slowV)
	}
	slewCost := func(n *ctree.Node, driverID int, x float64) float64 {
		w := tk.Wires[n.WidthIdx]
		rd := driverR(driverID)
		cdown := cx.Tree.LoadCap(n)
		return 2.2 * (rd*w.CPerUm*x + w.RPerUm*x*(w.CPerUm*x/2+cdown))
	}
	slewRoomLen := func(n *ctree.Node, driverID int, room float64) float64 {
		if room <= 0 {
			return 0
		}
		w := tk.Wires[n.WidthIdx]
		rd := driverR(driverID)
		cdown := cx.Tree.LoadCap(n)
		a := w.RPerUm * w.CPerUm / 2
		bq := rd*w.CPerUm + w.RPerUm*cdown
		c0 := room / 2.2
		return (-bq + math.Sqrt(bq*bq+4*a*c0)) / (2 * a)
	}
	_ = twnSlew
	changed := 0
	// driverOf maps every tree node to its stage driver (-1 = source).
	driverOf := map[int]int{}
	var mark func(n *ctree.Node, drv int)
	mark = func(n *ctree.Node, drv int) {
		driverOf[n.ID] = drv
		next := drv
		if n.Kind == ctree.Buffer {
			next = n.ID
		}
		for _, c := range n.Children {
			mark(c, next)
		}
	}
	mark(cx.Tree.Root, -1)
	type item struct {
		n      *ctree.Node
		rslack float64
	}
	var queue []item
	for _, c := range cx.Tree.Root.Children {
		queue = append(queue, item{c, 0})
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		n, rs := it.n, it.rslack
		eligible := n.Parent != nil
		if onlySinkEdges {
			eligible = eligible && n.Kind == ctree.Sink
		}
		if eligible {
			budget := (slk.EdgeSlow[n.ID] - rs) * safety
			if budget > twn*lwn {
				addLen := math.Floor(budget/(twn*lwn)) * lwn
				if addLen > maxStep {
					addLen = math.Floor(maxStep/lwn) * lwn
				}
				// Brake against the owning stage's slew headroom.
				drv := driverOf[n.ID]
				room := 0.88*limit - stageSlew[drv]
				if lim := slewRoomLen(n, drv, room); addLen > lim {
					addLen = math.Floor(lim/lwn) * lwn
				}
				// Respect the capacitance limit.
				if addCap := addLen * wireC; addCap > headroom {
					addLen = math.Floor(headroom/wireC/lwn) * lwn
				}
				if addLen > 0 {
					cx.Tree.AddSnake(n, addLen)
					stageSlew[drv] += slewCost(n, drv, addLen)
					headroom -= addLen * wireC
					rs += addLen * twn
					changed++
				}
			}
		}
		for _, c := range n.Children {
			queue = append(queue, item{c, rs})
		}
	}
	return changed
}

// TopDownWiresnaking is the paper's Section IV-F pass: top-down snaking of
// high tree edges driven by slow-down slacks and the measured Twn linear
// model, with accurate-evaluation acceptance per round.
func TopDownWiresnaking(cx *Context) error {
	lwn := DefaultLwn
	twn, twnSlew, err := EstimateTwn(cx, lwn, false)
	if err != nil {
		return err
	}
	if twn <= 0 {
		cx.logf("twsn: degenerate Twn, skipping")
		return nil
	}
	cx.logf("twsn: Twn=%.5f ps/µm, TwnSlew=%.5f ps/µm (lwn=%.0f)", twn, twnSlew, lwn)
	// Re-run the improvement loop with progressively gentler steps: a round
	// that overshoots the accurate check at a coarse step often passes at a
	// finer one.
	for _, step := range []float64{400, 150, 50} {
		step := step
		if err := cx.improveLoop("twsn", MinSkew, func(res []*analysis.Result) bool {
			changed := snakeBudgetPass(cx, res, twn, twnSlew, lwn, 0.85, false, step, 1.0)
			cx.logf("twsn: snaked %d edges (step %.0f)", changed, step)
			return changed > 0
		}); err != nil {
			return err
		}
	}
	return nil
}

// BottomLevelTuning is the paper's Section IV-G fine-tuning: wiresizing and
// wiresnaking restricted to the wires directly connected to sinks, with a
// finer snaking quantum, run until the results stop improving. Gains are
// typically small (a couple of ps) but a large fraction of the remaining
// skew.
func BottomLevelTuning(cx *Context) error {
	lwn := DefaultLwn / 2.5 // finer quantum at the bottom level
	twn, twnSlew, err := EstimateTwn(cx, lwn, true)
	if err != nil {
		return err
	}
	if twn <= 0 {
		return nil
	}
	// Bottom-level wiresizing: downsize sink edges with slack to spare.
	twsUnit, err := EstimateTws(cx)
	if err != nil {
		return err
	}
	wide, narrow := cx.wideIdx(), cx.narrowIdx()
	if twsUnit > 0 {
		if err := cx.improveLoop("bwsz", MinBoth, func(res []*analysis.Result) bool {
			slk := slack.Compute(cx.Tree, res)
			changed := 0
			for _, s := range cx.Tree.Sinks() {
				if s.WidthIdx != wide {
					continue
				}
				if slk.EdgeSlow[s.ID] > twsUnit*s.EdgeLen()*1.2 {
					cx.Tree.SetWidth(s, narrow)
					changed++
				}
			}
			cx.logf("bwsz: downsized %d sink edges", changed)
			return changed > 0
		}); err != nil {
			return err
		}
	}
	// Bottom-level wiresnaking. The bottom pass may only spend a fraction
	// of the remaining capacitance budget: the top-down passes recover far
	// more skew per fF and must not be starved in later cycles.
	for _, step := range []float64{150, 50} {
		step := step
		if err := cx.improveLoop("bwsn", MinBoth, func(res []*analysis.Result) bool {
			changed := snakeBudgetPass(cx, res, twn, twnSlew, lwn, 0.7, true, step, 0.4)
			cx.logf("bwsn: snaked %d sink edges (step %.0f)", changed, step)
			return changed > 0
		}); err != nil {
			return err
		}
	}
	return nil
}
