package opt

import "contango/internal/ctree"

// TrunkArena is the slot-index form of Trunk: the chain of slots from the
// root's child down to (and excluding) the first slot with more than one
// child. Arena-native flows and the construction parity tests use it where
// pointer nodes have not been materialized yet; on mirrored trees it
// returns exactly the IDs of the nodes Trunk returns.
func TrunkArena(a *ctree.Arena) []int32 {
	var out []int32
	kids := a.Children(a.Root())
	if len(kids) != 1 {
		return out
	}
	cur := kids[0]
	for {
		kids = a.Children(cur)
		if len(kids) != 1 {
			return out
		}
		out = append(out, cur)
		cur = kids[0]
	}
}
