// Package opt implements Contango's SPICE-driven optimization passes (paper
// Sections IV-E through IV-I): iterative top-down wiresizing (Algorithm 1),
// top-down wiresnaking, bottom-level fine-tuning, and trunk/branch buffer
// sizing with sliding and interleaving.
//
// Every pass follows the paper's CNE/IVC discipline: mutate the tree, run a
// Clock-Network Evaluation with the accurate engine, and keep the change
// only if the objective improved without slew or capacitance violations
// (Improvement- & Violation-Checking); otherwise the saved solution is
// restored and the pass hands control to the next optimization.
//
// Passes mutate the tree exclusively through the ctree journaling setters
// (SetWidth, SetSnake/AddSnake, SetBufferSize) and structural operations,
// so an incremental evaluator installed as Context.Eng re-simulates only
// each round's dirty cone instead of the whole network.
package opt

import (
	"math"

	"contango/internal/analysis"
	"contango/internal/corners"
	"contango/internal/ctree"
	"contango/internal/eval"
	"contango/internal/geom"
)

// Objective selects what a pass is trying to reduce.
type Objective int

const (
	// MinSkew optimizes nominal skew at the reference corner.
	MinSkew Objective = iota
	// MinCLR optimizes the multicorner Clock Latency Range.
	MinCLR
	// MinBoth optimizes CLR but never lets skew regress by more than it
	// gains (used by the green "both objectives" box in the paper's Fig. 1).
	MinBoth
)

// value extracts the scalar being minimized.
func (o Objective) value(m eval.Metrics) float64 {
	switch o {
	case MinCLR:
		return m.CLR
	case MinBoth:
		return m.CLR + m.Skew
	default:
		return m.Skew
	}
}

// Context carries the state shared by all passes. Eng is any accurate
// evaluator: the transient engine for the paper's SPICE-driven passes, or
// the cheap Elmore model for the construction-time pre-correction phase
// ("use simple analytical models at the first steps of the proposed flow",
// Section III-A).
type Context struct {
	Tree     *ctree.Tree
	Eng      analysis.Evaluator
	Obs      *geom.ObstacleSet
	CapLimit float64 // hard capacitance limit, fF (0 = unlimited)
	// MaxRounds bounds the improvement loop of each pass (default 10).
	MaxRounds int
	// Parallelism is the stage-simulation worker budget for evaluation
	// (≤1 = serial, 0 = leave the evaluator's own setting). Before each
	// CNE the context pushes it onto Eng when the evaluator accepts a
	// budget (spice.Incremental does); plain evaluators ignore it.
	// Parallelism changes wall-clock time only, never results.
	Parallelism int
	// MinGain is the smallest objective improvement (ps) that counts
	// (default 0.05).
	MinGain float64
	// Check, when non-nil, is consulted before every improvement round; a
	// non-nil error aborts the pass immediately (context cancellation from
	// the service layer, so killed jobs stop burning simulator runs).
	Check func() error
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...interface{})

	// cached state from the most recent CNE
	lastResults []*analysis.Result
	lastMetrics eval.Metrics
	haveCNE     bool
}

// DefaultMaxRounds is the per-pass round budget used when MaxRounds is
// unset (core.Options.Resolve makes it explicit).
const DefaultMaxRounds = 16

func (cx *Context) rounds() int {
	if cx.MaxRounds <= 0 {
		return DefaultMaxRounds
	}
	return cx.MaxRounds
}

func (cx *Context) minGain() float64 {
	if cx.MinGain <= 0 {
		return 0.05
	}
	return cx.MinGain
}

func (cx *Context) logf(format string, args ...interface{}) {
	if cx.Log != nil {
		cx.Log(format, args...)
	}
}

// CNE runs the accurate evaluator at every corner and caches the results.
// Evaluators that implement analysis.CornerEvaluator (the incremental
// engines) get all corners in one call, so extraction is shared and the
// per-corner simulations can be scheduled over one worker pool.
func (cx *Context) CNE() ([]*analysis.Result, eval.Metrics, error) {
	if cx.Parallelism > 0 {
		if pe, ok := cx.Eng.(interface{ SetParallelism(int) }); ok {
			pe.SetParallelism(cx.Parallelism)
		}
	}
	var rs []*analysis.Result
	if ce, ok := cx.Eng.(analysis.CornerEvaluator); ok {
		var err error
		rs, err = ce.EvaluateCorners(cx.Tree, cx.Tree.Tech.Corners)
		if err != nil {
			return nil, eval.Metrics{}, err
		}
	} else {
		for _, c := range cx.Tree.Tech.Corners {
			r, err := cx.Eng.Evaluate(cx.Tree, c)
			if err != nil {
				return nil, eval.Metrics{}, err
			}
			rs = append(rs, r)
		}
	}
	m, err := eval.FromResults(cx.Tree, corners.FromTech(cx.Tree.Tech), rs, cx.CapLimit)
	if err != nil {
		return nil, eval.Metrics{}, err
	}
	cx.lastResults, cx.lastMetrics, cx.haveCNE = rs, m, true
	return rs, m, nil
}

// Baseline returns cached CNE results, evaluating if needed.
func (cx *Context) Baseline() ([]*analysis.Result, eval.Metrics, error) {
	if cx.haveCNE {
		return cx.lastResults, cx.lastMetrics, nil
	}
	return cx.CNE()
}

// invalidate drops the CNE cache after an uncommitted tree mutation.
func (cx *Context) invalidate() { cx.haveCNE = false }

// Invalidate drops the cached evaluation; callers must use it after
// recalibrating the evaluator or editing the tree outside a pass.
func (cx *Context) Invalidate() { cx.invalidate() }

// worse reports whether candidate metrics violate constraints more than the
// baseline did: more slew violations, or capacitance newly/further over the
// limit. Judging violations relatively lets the passes make progress on
// networks that start out violating (e.g., right after a lossy detour)
// without ever making them worse.
func (cx *Context) worse(base, cand eval.Metrics) bool {
	if cand.SlewViol > base.SlewViol {
		return true
	}
	if cx.CapLimit > 0 && cand.TotalCap > cx.CapLimit && cand.TotalCap > base.TotalCap+1e-9 {
		return true
	}
	return false
}

// LastMetrics returns the most recent cached CNE metrics; ok is false when
// no evaluation has run since the last invalidation.
func (cx *Context) LastMetrics() (m eval.Metrics, ok bool) {
	return cx.lastMetrics, cx.haveCNE
}

// LastResults returns the most recent cached per-corner results.
func (cx *Context) LastResults() ([]*analysis.Result, bool) {
	return cx.lastResults, cx.haveCNE
}

// improveLoop runs mutate-evaluate-check rounds until the objective stops
// improving, a violation appears, or the round budget is exhausted. Each
// round's mutate callback returns false when it has nothing left to try.
// The tree always ends in the best state seen.
func (cx *Context) improveLoop(name string, obj Objective, mutate func(res []*analysis.Result) bool) error {
	res, m, err := cx.Baseline()
	if err != nil {
		return err
	}
	best := obj.value(m)
	baseM := m
	for round := 0; round < cx.rounds(); round++ {
		if cx.Check != nil {
			if err := cx.Check(); err != nil {
				return err
			}
		}
		snap := cx.Tree.Clone()
		snapRes, snapM := cx.lastResults, cx.lastMetrics
		if !mutate(res) {
			break
		}
		cx.invalidate()
		var nm eval.Metrics
		res2, nm, err := cx.CNE()
		if err != nil {
			return err
		}
		if cx.worse(baseM, nm) || obj.value(nm) > best-cx.minGain() {
			// IVC fail: restore the saved solution and stop the pass.
			*cx.Tree = *snap
			cx.lastResults, cx.lastMetrics, cx.haveCNE = snapRes, snapM, true
			cx.logf("%s: round %d rejected (%.3f -> %.3f, worse=%v, viol %d->%d, maxslew %.1f->%.1f, cap %.0f->%.0f)",
				name, round, best, obj.value(nm), cx.worse(baseM, nm),
				baseM.SlewViol, nm.SlewViol, baseM.MaxSlew, nm.MaxSlew, baseM.TotalCap, nm.TotalCap)
			break
		}
		best = obj.value(nm)
		baseM = nm
		res = res2
		cx.logf("%s: round %d accepted, %s", name, round, nm)
	}
	return nil
}

// wideIdx/narrowIdx are cached per call sites for clarity.
func (cx *Context) wideIdx() int   { return cx.Tree.Tech.Wide() }
func (cx *Context) narrowIdx() int { return cx.Tree.Tech.Narrow() }

// capHeadroom returns how much capacitance (fF) may still be added before
// hitting the limit; +Inf when unlimited.
func (cx *Context) capHeadroom() float64 {
	if cx.CapLimit <= 0 {
		return math.Inf(1)
	}
	return cx.CapLimit - cx.Tree.TotalCap()
}
