package opt

import (
	"math"

	"contango/internal/analysis"
	"contango/internal/ctree"
	"contango/internal/slack"
	"contango/internal/tech"
)

// analysis.Result flows through the improve-loop callbacks below.

// EstimateTpair measures the delay of one repeater pair (two cascaded
// inverters, polarity preserving) inserted mid-tree: one accurate
// evaluation against the cached baseline, probes reverted. Pair delay is
// the quantum for the pair-insertion equalizer.
func EstimateTpair(cx *Context) (float64, error) {
	base, _, err := cx.Baseline()
	if err != nil {
		return 0, err
	}
	probes := pickProbes(cx.Tree, cx.wideIdx(), 1)
	if len(probes) == 0 {
		return 0, nil
	}
	p := probes[0]
	comp := nearestComposite(cx.Tree, p)
	if comp == nil {
		return 0, nil
	}
	mid := p.Route.Length() / 2
	b1 := cx.Tree.InsertOnEdge(p, mid, ctree.Buffer)
	c1 := *comp
	b1.Buf = &c1
	b2 := cx.Tree.InsertOnEdge(p, 10, ctree.Buffer)
	c2 := *comp
	b2.Buf = &c2
	cx.invalidate()
	after, _, err := cx.CNE()
	if err != nil {
		return 0, err
	}
	worst := 0.0
	for _, s := range sinksUnder(p) {
		for vi := range base {
			if d := after[vi].Rise[s.ID] - base[vi].Rise[s.ID]; d > worst {
				worst = d
			}
			if d := after[vi].Fall[s.ID] - base[vi].Fall[s.ID]; d > worst {
				worst = d
			}
		}
	}
	cx.Tree.RemoveDegree2(b2)
	cx.Tree.RemoveDegree2(b1)
	cx.invalidate()
	return worst, nil
}

// nearestComposite returns the composite of the closest buffer ancestor of
// n (the natural strength for repeaters in that region), or any buffer's
// composite as a fallback.
func nearestComposite(tr *ctree.Tree, n *ctree.Node) *tech.Composite {
	for cur := n; cur != nil; cur = cur.Parent {
		if cur.Buf != nil {
			c := *cur.Buf
			return &c
		}
	}
	for _, b := range tr.Buffers() {
		c := *b.Buf
		return &c
	}
	return nil
}

// PairInsertion slows fast subtrees down by inserting polarity-preserving
// inverter pairs high in the tree, budgeted by slow-down slack. Unlike
// snaking, a pair consumes almost no wiring capacitance and *restores* slew
// (the repeaters regenerate the edge), so it remains effective when both
// the capacitance budget and the slew headroom are exhausted. This
// stage-count equalizer is this library's extension of the paper's buffer
// interleaving (Section IV-H), aimed at skew rather than slew; it is what
// compensates detour-induced stage imbalance.
func PairInsertion(cx *Context) error {
	tpair, err := EstimateTpair(cx)
	if err != nil {
		return err
	}
	if tpair <= 0.5 {
		cx.logf("pair: degenerate pair delay %.2f, skipping", tpair)
		return nil
	}
	cx.logf("pair: Tpair=%.2f ps", tpair)
	return cx.improveLoop("pair", MinSkew, func(res []*analysis.Result) bool {
		slk := slack.Compute(cx.Tree, res)
		headroom := cx.capHeadroom()
		changed := 0
		type item struct {
			n  *ctree.Node
			rs float64
		}
		var queue []item
		for _, c := range cx.Tree.Root.Children {
			queue = append(queue, item{c, 0})
		}
		for len(queue) > 0 {
			it := queue[0]
			queue = queue[1:]
			n, rs := it.n, it.rs
			if n.Parent != nil && n.Route.Length() > 60 {
				budget := (slk.EdgeSlow[n.ID] - rs) * 0.8
				k := int(math.Floor(budget / tpair))
				if k > 2 {
					k = 2 // at most two pairs per edge per round
				}
				if k >= 1 {
					comp := nearestComposite(cx.Tree, n)
					if comp != nil {
						pairCap := 2 * comp.CapCost()
						for i := 0; i < k && pairCap <= headroom; i++ {
							d := n.Route.Length() * 0.5
							if cx.Obs != nil {
								for d > 0 && cx.Obs.BlocksPoint(n.Route.At(d)) {
									d -= 25
								}
								if d <= 10 {
									break
								}
							}
							b1 := cx.Tree.InsertOnEdge(n, d, ctree.Buffer)
							c1 := *comp
							b1.Buf = &c1
							b2 := cx.Tree.InsertOnEdge(n, 5, ctree.Buffer)
							c2 := *comp
							b2.Buf = &c2
							headroom -= pairCap
							rs += tpair
							changed++
						}
					}
				}
			}
			for _, c := range n.Children {
				queue = append(queue, item{c, rs})
			}
		}
		cx.logf("pair: inserted %d pairs", changed)
		return changed > 0
	})
}
