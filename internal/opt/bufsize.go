package opt

import (
	"math"

	"contango/internal/analysis"
	"contango/internal/ctree"
	"contango/internal/slack"
	"contango/internal/tech"
)

// Trunk returns the chain of nodes from the root's child down to (and
// excluding) the first node with more than one child — the long wire DME
// trees drive from the chip boundary to the center, which the paper notes
// carries 1/3 to 1/2 of the total insertion delay (Section IV-H).
func Trunk(tr *ctree.Tree) []*ctree.Node {
	var out []*ctree.Node
	if len(tr.Root.Children) != 1 {
		return out
	}
	cur := tr.Root.Children[0]
	for cur != nil && len(cur.Children) == 1 {
		out = append(out, cur)
		cur = cur.Children[0]
	}
	return out
}

// trunkBuffers filters the trunk chain to its buffer nodes.
func trunkBuffers(tr *ctree.Tree) []*ctree.Node {
	var out []*ctree.Node
	for _, n := range Trunk(tr) {
		if n.Kind == ctree.Buffer {
			out = append(out, n)
		}
	}
	return out
}

// branchBuffers returns buffers within `levels` branching levels below the
// trunk (the region the paper sizes up with capacitance borrowing), and the
// bottom-level buffers (those whose subtree contains no further buffers) the
// borrowing downsizes.
func branchBuffers(tr *ctree.Tree, levels int) (upper, bottom []*ctree.Node) {
	trunk := map[int]bool{}
	for _, n := range Trunk(tr) {
		trunk[n.ID] = true
	}
	var walk func(n *ctree.Node, depth int)
	walk = func(n *ctree.Node, depth int) {
		d := depth
		if n.Kind == ctree.Buffer && !trunk[n.ID] {
			var scan func(m *ctree.Node) bool
			scan = func(m *ctree.Node) bool {
				for _, c := range m.Children {
					if c.Kind == ctree.Buffer {
						return true
					}
					if scan(c) {
						return true
					}
				}
				return false
			}
			if !scan(n) {
				bottom = append(bottom, n)
			} else if depth <= levels {
				upper = append(upper, n)
			}
			d = depth + 1
		}
		for _, c := range n.Children {
			walk(c, d)
		}
	}
	walk(tr.Root, 0)
	return upper, bottom
}

// batchOf returns the sizing granularity for a composite: the paper sizes
// small-inverter groups in batches of 8 and large inverters singly.
func batchOf(c tech.Composite) int {
	if c.Type.Name == "Small" {
		return 8
	}
	return 1
}

// maxGapFor returns the largest buffer-to-buffer wire run (µm) a composite
// can drive without slew risk, used by interleaving.
func maxGapFor(t *tech.Tech, c tech.Composite, widthIdx int) float64 {
	safe := 0.8 * t.SlewLimit / (2.2 * c.Rout())
	perUm := t.Wires[widthIdx].CPerUm
	gap := (safe - c.Cin()) / perUm
	if gap < 100 {
		gap = 100
	}
	return gap
}

// BufferSizing is the paper's TBSZ step (Sections IV-H and IV-I): iterative
// sizing of the trunk inverter chain with the schedule p_i = 100/(i+3)%,
// buffer sliding and interleaving to avoid slew violations, then sizing of
// the first branch levels paid for by downsizing bottom-level buffers
// (capacitance borrowing). The objective is CLR; the paper accepts that
// nominal skew may rise slightly, to be recovered by the wire passes.
func BufferSizing(cx *Context) error {
	iter := 0
	if err := cx.improveLoop("tbsz-trunk", MinCLR, func(res []*analysis.Result) bool {
		iter++
		p := 1.0 / float64(iter+3) // p_i = 100/(i+3)%
		bufs := trunkBuffers(cx.Tree)
		if len(bufs) == 0 {
			return false
		}
		changed := 0
		head := cx.capHeadroom()
		for _, b := range bufs {
			batch := batchOf(*b.Buf)
			grow := int(math.Ceil(float64(b.Buf.N) * p / float64(batch)))
			if grow < 1 {
				grow = 1
			}
			newN := b.Buf.N + grow*batch
			if newN > cx.Tree.Tech.MaxParallel {
				continue
			}
			addCap := (tech.Composite{Type: b.Buf.Type, N: newN}).CapCost() - b.Buf.CapCost()
			if addCap > head {
				continue
			}
			head -= addCap
			cx.Tree.SetBufferSize(b, newN)
			changed++
		}
		if changed == 0 {
			return false
		}
		slideAndInterleave(cx)
		cx.logf("tbsz-trunk: sized up %d trunk buffers by %.1f%%", changed, 100*p)
		return true
	}); err != nil {
		return err
	}

	// Branch sizing with capacitance borrowing.
	return cx.improveLoop("tbsz-branch", MinCLR, func(res []*analysis.Result) bool {
		upper, bottom := branchBuffers(cx.Tree, 4)
		if len(upper) == 0 {
			return false
		}
		head := cx.capHeadroom()
		var borrowed float64
		// Borrow: shrink bottom-level buffers by one batch where possible.
		for _, b := range bottom {
			batch := batchOf(*b.Buf)
			if b.Buf.N <= batch {
				continue
			}
			before := b.Buf.CapCost()
			cx.Tree.SetBufferSize(b, b.Buf.N-batch)
			borrowed += before - b.Buf.CapCost()
		}
		changed := 0
		for _, b := range upper {
			batch := batchOf(*b.Buf)
			newN := b.Buf.N + batch
			if newN > cx.Tree.Tech.MaxParallel {
				continue
			}
			addCap := (tech.Composite{Type: b.Buf.Type, N: newN}).CapCost() - b.Buf.CapCost()
			if addCap > head+borrowed {
				continue
			}
			if addCap <= borrowed {
				borrowed -= addCap
			} else {
				head -= addCap - borrowed
				borrowed = 0
			}
			cx.Tree.SetBufferSize(b, newN)
			changed++
		}
		cx.logf("tbsz-branch: sized %d branch buffers (borrowed bottom cap)", changed)
		return changed > 0
	})
}

// SkewBufferSizing downsizes buffers on fast paths: a weaker composite both
// slows the path (reducing skew) and releases capacitance for the snaking
// passes — the skew-directed form of the paper's capacitance borrowing.
// Consumed slack is tracked along each root-to-sink path so stacked
// downsizings do not overshoot.
func SkewBufferSizing(cx *Context) error {
	tk := cx.Tree.Tech
	limit := tk.SlewLimit
	return cx.improveLoop("sbsz", MinSkew, func(res []*analysis.Result) bool {
		slk := slack.Compute(cx.Tree, res)
		stageSlew := map[int]float64{}
		for _, r := range res {
			for id, v := range r.StageSlew {
				if v > stageSlew[id] {
					stageSlew[id] = v
				}
			}
		}
		changed := 0
		type item struct {
			n  *ctree.Node
			rs float64
		}
		queue := []item{{cx.Tree.Root, 0}}
		for len(queue) > 0 {
			it := queue[0]
			queue = queue[1:]
			n, rs := it.n, it.rs
			if n.Kind == ctree.Buffer {
				batch := batchOf(*n.Buf)
				if n.Buf.N > batch {
					weaker := tech.Composite{Type: n.Buf.Type, N: n.Buf.N - batch}
					var load float64
					for _, c := range n.Children {
						load += cx.Tree.LoadCap(c)
					}
					load += n.Buf.Cout()
					est := (weaker.Rout() - n.Buf.Rout()) * load * 1.5
					budget := slk.EdgeSlow[n.ID] - rs
					newSlew := stageSlew[n.ID] * weaker.Rout() / n.Buf.Rout()
					if est > 0 && est < budget*0.7 && newSlew < 0.88*limit {
						cx.Tree.SetBufferSize(n, weaker.N)
						rs += est
						changed++
					}
				}
			}
			for _, c := range n.Children {
				queue = append(queue, item{c, rs})
			}
		}
		cx.logf("sbsz: downsized %d buffers", changed)
		return changed > 0
	})
}

// slideAndInterleave moves trunk buffers up their corridors when their
// upstream wire load risks slew (bigger inputs raise the upstream load), and
// inserts repeater pairs when two consecutive drivers drift too far apart.
// Pairs keep the inversion parity of every sink unchanged.
func slideAndInterleave(cx *Context) {
	tr := cx.Tree
	for _, b := range trunkBuffers(tr) {
		if len(b.Children) != 1 {
			continue
		}
		up := b.Route.Length()
		maxUp := maxGapFor(tr.Tech, *b.Buf, b.WidthIdx)
		if up > maxUp {
			newDist := maxUp * 0.9
			if cx.Obs != nil {
				// Keep the slid buffer off obstacles: walk further up in
				// small steps until the site is legal.
				for newDist > 0 && cx.Obs.BlocksPoint(b.Route.At(newDist)) {
					newDist -= 25
				}
				if newDist < 0 {
					newDist = 0
				}
			}
			tr.SlideDegree2(b, newDist)
		}
	}
	// Interleave: inspect trunk edges for over-long driver gaps.
	for _, n := range Trunk(tr) {
		if n.Kind != ctree.Buffer || len(n.Children) != 1 {
			continue
		}
		child := n.Children[0]
		gap := child.Route.Length()
		maxGap := maxGapFor(tr.Tech, *n.Buf, child.WidthIdx)
		if gap <= maxGap {
			continue
		}
		// Insert an inverter pair at thirds of the gap: parity preserved.
		comp1 := *n.Buf
		b1 := tr.InsertOnEdge(child, gap/3, ctree.Buffer)
		b1.Buf = &comp1
		comp2 := *n.Buf
		b2 := tr.InsertOnEdge(child, gap/3, ctree.Buffer) // now relative to the lower segment
		b2.Buf = &comp2
	}
}
