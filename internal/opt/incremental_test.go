package opt

import (
	"reflect"
	"testing"

	"contango/internal/spice"
)

// TestPassesWithIncrementalEngine runs real optimization passes with the
// incremental transient evaluator installed as Context.Eng — the production
// configuration — and checks they behave exactly like the full-evaluation
// passes: same metrics trajectory, no violations introduced.
func TestPassesWithIncrementalEngine(t *testing.T) {
	full, _ := smallNetwork(t)
	incr, _ := smallNetwork(t)
	incr.Eng = spice.NewIncremental(incr.Tree, spice.New(), 2)

	for _, cx := range []*Context{full, incr} {
		if err := TopDownWiresnaking(cx); err != nil {
			t.Fatal(err)
		}
		if err := TopDownWiresizing(cx); err != nil {
			t.Fatal(err)
		}
	}
	_, mf, err := full.CNE()
	if err != nil {
		t.Fatal(err)
	}
	_, mi, err := incr.CNE()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mf, mi) {
		t.Errorf("incremental cascade diverged from full: %v vs %v", mf, mi)
	}
	ie := incr.Eng.(*spice.Incremental)
	if ie.Stats.StagesHit == 0 {
		t.Error("incremental engine never reused a stage transient")
	}
}

// TestCNEUsesCornerEvaluator: Context.CNE must hand all corners to a
// CornerEvaluator in one call (one Runs increment per corner either way,
// shared extraction inside).
func TestCNEUsesCornerEvaluator(t *testing.T) {
	cx, tk := smallNetwork(t)
	eng := spice.New()
	ie := spice.NewIncremental(cx.Tree, eng, 1)
	cx.Eng = ie
	if _, _, err := cx.CNE(); err != nil {
		t.Fatal(err)
	}
	if eng.Runs != len(tk.Corners) {
		t.Errorf("Runs=%d want %d (one per corner)", eng.Runs, len(tk.Corners))
	}
	if ie.Stats.Evals != len(tk.Corners) {
		t.Errorf("Evals=%d want %d", ie.Stats.Evals, len(tk.Corners))
	}
}
