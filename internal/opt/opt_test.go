package opt

import (
	"math"
	"reflect"
	"testing"

	"contango/internal/analysis"
	"contango/internal/buffering"
	"contango/internal/ctree"
	"contango/internal/dme"
	"contango/internal/eval"
	"contango/internal/geom"
	"contango/internal/spice"
	"contango/internal/tech"
)

// smallNetwork builds a modest buffered tree with deliberate imbalance (one
// subtree detoured) so the passes have something to optimize.
func smallNetwork(t *testing.T) (*Context, *tech.Tech) {
	t.Helper()
	tk := tech.Default45()
	sinks := []dme.Sink{
		{Loc: geom.Pt(3000, 1000), Cap: 30, Name: "a"},
		{Loc: geom.Pt(3000, 3000), Cap: 30, Name: "b"},
		{Loc: geom.Pt(5000, 1500), Cap: 30, Name: "c"},
		{Loc: geom.Pt(5200, 2600), Cap: 30, Name: "d"},
		{Loc: geom.Pt(4100, 400), Cap: 30, Name: "e"},
		{Loc: geom.Pt(2500, 2000), Cap: 30, Name: "f"},
	}
	tr := dme.BuildZST(tk, geom.Pt(0, 2000), sinks, dme.Options{})
	tr.SourceR = 0.1
	comp := tech.Composite{Type: tk.Inverters[1], N: 8}
	if _, err := buffering.BalancedInsert(tr, comp, buffering.Options{}); err != nil {
		t.Fatal(err)
	}
	buffering.CorrectPolarity(tr, comp, nil)
	// Imbalance: snake one sink edge hard.
	tr.AddSnake(tr.Sinks()[0], 1500)
	cx := &Context{Tree: tr, Eng: spice.New(), CapLimit: 1e9, MaxRounds: 6}
	return cx, tk
}

func TestCNEAndBaselineCaching(t *testing.T) {
	cx, _ := smallNetwork(t)
	eng := cx.Eng.(*spice.Engine)
	_, m1, err := cx.CNE()
	if err != nil {
		t.Fatal(err)
	}
	runs := eng.Runs
	_, m2, err := cx.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	if eng.Runs != runs {
		t.Error("Baseline should reuse the cached CNE")
	}
	if !reflect.DeepEqual(m1, m2) {
		t.Error("cached metrics differ")
	}
	cx.Invalidate()
	if _, _, err := cx.Baseline(); err != nil {
		t.Fatal(err)
	}
	if eng.Runs == runs {
		t.Error("invalidate should force a re-evaluation")
	}
}

func TestImproveLoopRevertsOnWorse(t *testing.T) {
	cx, _ := smallNetwork(t)
	_, m0, _ := cx.CNE()
	wlBefore := cx.Tree.Wirelength()
	// A mutation that can only hurt: snake the slowest sink further.
	err := cx.improveLoop("test", MinSkew, func(res []*analysis.Result) bool {
		slowest := cx.Tree.Sinks()[0]
		worst := -1.0
		for _, s := range cx.Tree.Sinks() {
			if v := res[0].Rise[s.ID]; v > worst {
				worst, slowest = v, s
			}
		}
		cx.Tree.AddSnake(slowest, 2000)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if cx.Tree.Wirelength() != wlBefore {
		t.Error("harmful mutation was not reverted")
	}
	_, m1, _ := cx.Baseline()
	if m1.Skew > m0.Skew+1e-9 {
		t.Error("skew got worse despite IVC")
	}
}

func TestWorseRelativeViolations(t *testing.T) {
	cx := &Context{CapLimit: 100}
	base := eval.Metrics{SlewViol: 2, TotalCap: 120}
	if cx.worse(base, eval.Metrics{SlewViol: 2, TotalCap: 110}) {
		t.Error("equal violations with reduced cap must not be worse")
	}
	if !cx.worse(base, eval.Metrics{SlewViol: 3, TotalCap: 90}) {
		t.Error("more slew violations must be worse")
	}
	if !cx.worse(base, eval.Metrics{SlewViol: 2, TotalCap: 130}) {
		t.Error("cap further over the limit must be worse")
	}
	if cx.worse(base, eval.Metrics{SlewViol: 1, TotalCap: 95}) {
		t.Error("strictly better metrics flagged worse")
	}
}

func TestEstimateTwsPositive(t *testing.T) {
	cx, _ := smallNetwork(t)
	tws, err := EstimateTws(cx)
	if err != nil {
		t.Fatal(err)
	}
	if tws < 0 {
		t.Errorf("Tws=%v must be non-negative", tws)
	}
	// Probes must be reverted: everything back at the wide width.
	wide := cx.Tree.Tech.Wide()
	cx.Tree.PreOrder(func(n *ctree.Node) {
		if n.Parent != nil && n.WidthIdx != wide {
			t.Errorf("probe not reverted on node %d", n.ID)
		}
	})
}

func TestEstimateTwnAndPairRevert(t *testing.T) {
	cx, _ := smallNetwork(t)
	wl := cx.Tree.Wirelength()
	nodes := cx.Tree.NumNodes()
	twn, twnSlew, err := EstimateTwn(cx, 25, false)
	if err != nil {
		t.Fatal(err)
	}
	if twn <= 0 || twnSlew <= 0 {
		t.Errorf("twn=%v twnSlew=%v must be positive", twn, twnSlew)
	}
	if math.Abs(cx.Tree.Wirelength()-wl) > 1e-9 {
		t.Error("snake probes not reverted")
	}
	tpair, err := EstimateTpair(cx)
	if err != nil {
		t.Fatal(err)
	}
	if tpair <= 0 {
		t.Errorf("tpair=%v must be positive", tpair)
	}
	if cx.Tree.NumNodes() != nodes {
		t.Error("pair probe not removed")
	}
	if err := cx.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWiresnakingReducesSkew(t *testing.T) {
	cx, _ := smallNetwork(t)
	_, m0, _ := cx.CNE()
	if err := TopDownWiresnaking(cx); err != nil {
		t.Fatal(err)
	}
	_, m1, _ := cx.Baseline()
	if m1.Skew > m0.Skew {
		t.Errorf("skew rose: %v -> %v", m0.Skew, m1.Skew)
	}
	if m1.SlewViol > m0.SlewViol {
		t.Errorf("slew violations rose: %d -> %d", m0.SlewViol, m1.SlewViol)
	}
	if err := cx.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPairInsertionPreservesPolarity(t *testing.T) {
	cx, _ := smallNetwork(t)
	parity := map[int]int{}
	for _, s := range cx.Tree.Sinks() {
		parity[s.ID] = cx.Tree.InversionParity(s)
	}
	if err := PairInsertion(cx); err != nil {
		t.Fatal(err)
	}
	for _, s := range cx.Tree.Sinks() {
		if cx.Tree.InversionParity(s) != parity[s.ID] {
			t.Fatalf("pair insertion changed polarity of sink %d", s.ID)
		}
	}
	if err := cx.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBufferSizingImprovesCLR(t *testing.T) {
	cx, _ := smallNetwork(t)
	_, m0, _ := cx.CNE()
	if err := BufferSizing(cx); err != nil {
		t.Fatal(err)
	}
	_, m1, _ := cx.Baseline()
	if m1.CLR > m0.CLR+1e-9 {
		t.Errorf("CLR rose: %v -> %v", m0.CLR, m1.CLR)
	}
	if err := cx.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSkewBufferSizingNeverWorsens(t *testing.T) {
	cx, _ := smallNetwork(t)
	_, m0, _ := cx.CNE()
	if err := SkewBufferSizing(cx); err != nil {
		t.Fatal(err)
	}
	_, m1, _ := cx.Baseline()
	if m1.Skew > m0.Skew+1e-9 {
		t.Errorf("skew rose: %v -> %v", m0.Skew, m1.Skew)
	}
}

func TestBottomLevelTuning(t *testing.T) {
	cx, _ := smallNetwork(t)
	_, m0, _ := cx.CNE()
	if err := BottomLevelTuning(cx); err != nil {
		t.Fatal(err)
	}
	_, m1, _ := cx.Baseline()
	if m1.Skew+m1.CLR > m0.Skew+m0.CLR+1e-9 {
		t.Errorf("combined objective rose: %v -> %v", m0.Skew+m0.CLR, m1.Skew+m1.CLR)
	}
	if err := cx.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTrunkDetection(t *testing.T) {
	tk := tech.Default45()
	tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
	a := tr.AddChild(tr.Root, ctree.Internal, geom.Pt(1000, 0))
	b := tr.AddChild(a, ctree.Internal, geom.Pt(2000, 0))
	tr.AddSink(b, geom.Pt(3000, 100), 30, "x")
	tr.AddSink(b, geom.Pt(3000, -100), 30, "y")
	// b is the branching node (two children) and is excluded.
	trunk := Trunk(tr)
	if len(trunk) != 1 || trunk[0] != a {
		t.Errorf("trunk has %d nodes, want just the chain above the branch", len(trunk))
	}
	_ = b
}

func TestObjectiveValues(t *testing.T) {
	m := eval.Metrics{Skew: 5, CLR: 20}
	if MinSkew.value(m) != 5 || MinCLR.value(m) != 20 || MinBoth.value(m) != 25 {
		t.Error("objective extraction wrong")
	}
}
