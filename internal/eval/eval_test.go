package eval

import (
	"math"
	"strings"
	"testing"

	"contango/internal/analysis"
	"contango/internal/ctree"
	"contango/internal/geom"
	"contango/internal/tech"
)

func twoSinkTree(tk *tech.Tech) (*ctree.Tree, int, int) {
	tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
	a := tr.AddSink(tr.Root, geom.Pt(100, 0), 30, "a")
	b := tr.AddSink(tr.Root, geom.Pt(0, 100), 30, "b")
	return tr, a.ID, b.ID
}

func TestFromResults(t *testing.T) {
	tk := tech.Default45()
	tr, a, b := twoSinkTree(tk)
	fast := &analysis.Result{
		Rise:    map[int]float64{a: 100, b: 104},
		Fall:    map[int]float64{a: 101, b: 103},
		MaxSlew: 60,
	}
	slow := &analysis.Result{
		Rise:    map[int]float64{a: 130, b: 140},
		Fall:    map[int]float64{a: 131, b: 138},
		MaxSlew: 80,
	}
	m := FromResults(tr, []*analysis.Result{fast, slow}, 100000)
	// Skew at the fast corner: rise spread 4, fall spread 2 -> 4.
	if m.Skew != 4 {
		t.Errorf("skew=%v want 4", m.Skew)
	}
	// CLR: max slow (140) - min fast (100).
	if m.CLR != 40 {
		t.Errorf("CLR=%v want 40", m.CLR)
	}
	if m.MaxLatency != 104 {
		t.Errorf("MaxLatency=%v want 104", m.MaxLatency)
	}
	if m.MaxSlew != 80 {
		t.Errorf("MaxSlew=%v want 80", m.MaxSlew)
	}
	if m.TotalCap <= 0 || math.Abs(m.CapPct-100*m.TotalCap/100000) > 1e-9 {
		t.Errorf("cap accounting wrong: %+v", m)
	}
}

func TestViolated(t *testing.T) {
	if (Metrics{SlewViol: 1}).Violated(0) == false {
		t.Error("slew violation must trip")
	}
	if (Metrics{TotalCap: 200}).Violated(100) == false {
		t.Error("cap over limit must trip")
	}
	if (Metrics{TotalCap: 50}).Violated(100) {
		t.Error("clean metrics flagged")
	}
	if (Metrics{TotalCap: 200}).Violated(0) {
		t.Error("no limit: cap cannot violate")
	}
}

func TestEmptyResults(t *testing.T) {
	tk := tech.Default45()
	tr, _, _ := twoSinkTree(tk)
	m := FromResults(tr, nil, 0)
	if m.Skew != 0 || m.CLR != 0 {
		t.Errorf("empty results should zero the timing metrics: %+v", m)
	}
	if m.TotalCap <= 0 {
		t.Error("cap accounting should still run")
	}
}

func TestTableRendering(t *testing.T) {
	out := Table([]string{"name", "val"}, [][]string{{"a", "1"}, {"longer-name", "22"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines=%d want 4", len(lines))
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[3], "longer-name") {
		t.Errorf("table content wrong:\n%s", out)
	}
	// All rows align to the same width.
	if len(lines[1]) < len("longer-name") {
		t.Error("separator shorter than widest cell")
	}
}

func TestMetricsString(t *testing.T) {
	s := Metrics{Skew: 3.14159, CLR: 12.5, MaxLatency: 500, MaxSlew: 80, TotalCap: 12345, CapPct: 67.8}.String()
	for _, want := range []string{"3.142", "12.50", "500", "80", "12.3", "67.8"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}
