package eval

import (
	"math"
	"strings"
	"testing"

	"contango/internal/analysis"
	"contango/internal/corners"
	"contango/internal/ctree"
	"contango/internal/geom"
	"contango/internal/tech"
)

func twoSinkTree(tk *tech.Tech) (*ctree.Tree, int, int) {
	tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
	a := tr.AddSink(tr.Root, geom.Pt(100, 0), 30, "a")
	b := tr.AddSink(tr.Root, geom.Pt(0, 100), 30, "b")
	return tr, a.ID, b.ID
}

func TestFromResults(t *testing.T) {
	tk := tech.Default45()
	tr, a, b := twoSinkTree(tk)
	fast := &analysis.Result{
		Rise:    map[int]float64{a: 100, b: 104},
		Fall:    map[int]float64{a: 101, b: 103},
		MaxSlew: 60,
	}
	slow := &analysis.Result{
		Rise:    map[int]float64{a: 130, b: 140},
		Fall:    map[int]float64{a: 131, b: 138},
		MaxSlew: 80,
	}
	m, err := FromResults(tr, corners.FromTech(tk), []*analysis.Result{fast, slow}, 100000)
	if err != nil {
		t.Fatal(err)
	}
	// Skew at the fast corner: rise spread 4, fall spread 2 -> 4.
	if m.Skew != 4 {
		t.Errorf("skew=%v want 4", m.Skew)
	}
	// CLR: max slow (140) - min fast (100).
	if m.CLR != 40 {
		t.Errorf("CLR=%v want 40", m.CLR)
	}
	if m.MaxLatency != 104 {
		t.Errorf("MaxLatency=%v want 104", m.MaxLatency)
	}
	if m.MaxSlew != 80 {
		t.Errorf("MaxSlew=%v want 80", m.MaxSlew)
	}
	if m.TotalCap <= 0 || math.Abs(m.CapPct-100*m.TotalCap/100000) > 1e-9 {
		t.Errorf("cap accounting wrong: %+v", m)
	}
	// The two-corner contest set with extreme roles: the spread equals CLR
	// and the slow corner takes the attribution.
	if m.CLRSpread != m.CLR {
		t.Errorf("CLRSpread=%v want CLR=%v for the contest pair", m.CLRSpread, m.CLR)
	}
	if m.WorstCorner != tk.Worst().Name {
		t.Errorf("WorstCorner=%q want %q", m.WorstCorner, tk.Worst().Name)
	}
	if len(m.PerCorner) != 2 || m.PerCorner[0].MaxLat != 104 || m.PerCorner[1].MaxLat != 140 {
		t.Errorf("per-corner breakdown wrong: %+v", m.PerCorner)
	}
	// Not an MC set: no yield statistics.
	if m.Yield != 0 || m.LatP50 != 0 || m.LatP95 != 0 {
		t.Errorf("non-MC set must not report yield stats: %+v", m)
	}
}

// TestFromResultsSingleCorner: a one-corner set is legal — reference and
// worst coincide, CLR degenerates to that corner's own latency spread.
func TestFromResultsSingleCorner(t *testing.T) {
	tk := tech.Default45()
	tr, a, b := twoSinkTree(tk)
	only := &analysis.Result{
		Rise: map[int]float64{a: 100, b: 110},
		Fall: map[int]float64{a: 100, b: 110},
	}
	set := &corners.Set{Spec: "one", Corners: []tech.Corner{{Name: "tt@1.1V", Vdd: 1.1}}}
	m, err := FromResults(tr, set, []*analysis.Result{only}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.CLR != 10 || m.CLRSpread != 10 {
		t.Errorf("single-corner CLR=%v spread=%v want 10", m.CLR, m.CLRSpread)
	}
	if m.MaxLatency != 110 || m.WorstCorner != "tt@1.1V" {
		t.Errorf("single-corner attribution wrong: %+v", m)
	}
}

// TestFromResultsManyCorners: with >2 corners the roles — not the slice
// ends — pick the CLR legs, and the spread scans every corner.
func TestFromResultsManyCorners(t *testing.T) {
	tk := tech.Default45()
	tr, a, b := twoSinkTree(tk)
	mk := func(lo, hi float64) *analysis.Result {
		return &analysis.Result{
			Rise: map[int]float64{a: lo, b: hi},
			Fall: map[int]float64{a: lo, b: hi},
		}
	}
	// The fastest corner sits in the middle, the slowest first: positional
	// indexing would compute garbage here.
	set := &corners.Set{
		Spec: "custom3",
		Corners: []tech.Corner{
			{Name: "slow", Vdd: 0.95},
			{Name: "fast", Vdd: 1.25},
			{Name: "typ", Vdd: 1.10},
		},
		Ref:   1,
		Worst: 0,
	}
	rs := []*analysis.Result{mk(150, 170), mk(100, 104), mk(120, 130)}
	m, err := FromResults(tr, set, rs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.CLR != 170-100 {
		t.Errorf("CLR=%v want 70 (worst.max - ref.min via roles)", m.CLR)
	}
	if m.Skew != 4 {
		t.Errorf("Skew=%v want 4 (at the reference corner)", m.Skew)
	}
	if m.CLRSpread != 170-100 || m.WorstCorner != "slow" {
		t.Errorf("spread attribution wrong: spread=%v worst=%q", m.CLRSpread, m.WorstCorner)
	}
	if len(m.PerCorner) != 3 {
		t.Errorf("PerCorner rows=%d want 3", len(m.PerCorner))
	}
}

// TestFromResultsEmpty: empty or misaligned results are an error, not an
// index panic and not silently-zero timing metrics.
func TestFromResultsEmpty(t *testing.T) {
	tk := tech.Default45()
	tr, _, _ := twoSinkTree(tk)
	set := corners.FromTech(tk)
	if _, err := FromResults(tr, set, nil, 0); err == nil {
		t.Error("empty results must error")
	}
	if _, err := FromResults(tr, nil, nil, 0); err == nil {
		t.Error("nil set must error")
	}
	one := &analysis.Result{Rise: map[int]float64{1: 1}, Fall: map[int]float64{1: 1}}
	if _, err := FromResults(tr, set, []*analysis.Result{one}, 0); err == nil {
		t.Error("fewer results than corners must error")
	}
	if _, err := FromResults(tr, set, []*analysis.Result{one, nil}, 0); err == nil {
		t.Error("nil result entry must error")
	}
	// The capacitance accounting still runs on the error path, so callers
	// that only want cap numbers can keep them.
	m, _ := FromResults(tr, set, nil, 1000)
	if m.TotalCap <= 0 {
		t.Error("cap accounting should survive the error path")
	}
}

// TestFromResultsMCYield: Monte Carlo sets report weighted yield and
// latency quantiles over the samples.
func TestFromResultsMCYield(t *testing.T) {
	tk := tech.Default45()
	tr, a, b := twoSinkTree(tk)
	mk := func(hi float64, viol int) *analysis.Result {
		return &analysis.Result{
			Rise:     map[int]float64{a: hi - 5, b: hi},
			Fall:     map[int]float64{a: hi - 5, b: hi},
			SlewViol: viol,
		}
	}
	set := &corners.Set{
		Spec: "mc:4:1",
		Corners: []tech.Corner{
			{Name: "s0", Vdd: 1.1},
			{Name: "s1", Vdd: 1.1},
			{Name: "s2", Vdd: 1.1},
			{Name: "s3", Vdd: 1.1},
		},
		Ref: 0, Worst: 3, MC: true,
	}
	rs := []*analysis.Result{mk(100, 0), mk(110, 0), mk(120, 1), mk(130, 0)}
	m, err := FromResults(tr, set, rs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.MCSamples != 4 {
		t.Errorf("MCSamples=%d want 4 (marks yield stats as meaningful even at 0%% yield)", m.MCSamples)
	}
	if m.Yield != 0.75 {
		t.Errorf("yield=%v want 0.75 (one violating sample of four)", m.Yield)
	}
	if m.LatP50 != 110 {
		t.Errorf("LatP50=%v want 110", m.LatP50)
	}
	if m.LatP95 != 130 {
		t.Errorf("LatP95=%v want 130", m.LatP95)
	}
	// Weighted: doubling the weight of the slowest sample drags the median
	// up one rank.
	set.Corners[3].Weight = 4
	m, err = FromResults(tr, set, rs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.LatP50 != 130 {
		t.Errorf("weighted LatP50=%v want 130", m.LatP50)
	}
}

func TestViolated(t *testing.T) {
	if (Metrics{SlewViol: 1}).Violated(0) == false {
		t.Error("slew violation must trip")
	}
	if (Metrics{TotalCap: 200}).Violated(100) == false {
		t.Error("cap over limit must trip")
	}
	if (Metrics{TotalCap: 50}).Violated(100) {
		t.Error("clean metrics flagged")
	}
	if (Metrics{TotalCap: 200}).Violated(0) {
		t.Error("no limit: cap cannot violate")
	}
}

func TestTableRendering(t *testing.T) {
	out := Table([]string{"name", "val"}, [][]string{{"a", "1"}, {"longer-name", "22"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines=%d want 4", len(lines))
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[3], "longer-name") {
		t.Errorf("table content wrong:\n%s", out)
	}
	// All rows align to the same width.
	if len(lines[1]) < len("longer-name") {
		t.Error("separator shorter than widest cell")
	}
}

func TestMetricsString(t *testing.T) {
	s := Metrics{Skew: 3.14159, CLR: 12.5, MaxLatency: 500, MaxSlew: 80, TotalCap: 12345, CapPct: 67.8}.String()
	for _, want := range []string{"3.142", "12.50", "500", "80", "12.3", "67.8"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}
