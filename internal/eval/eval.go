// Package eval turns raw evaluation results into the paper's metrics —
// nominal skew, Clock Latency Range (CLR), latencies, slew and capacitance
// accounting — and renders ASCII tables for the experiment harnesses.
package eval

import (
	"fmt"
	"math"
	"slices"
	"strings"

	"contango/internal/analysis"
	"contango/internal/corners"
	"contango/internal/ctree"
)

// Metrics summarizes one clock network evaluated across a corner set.
type Metrics struct {
	// Skew is the nominal skew at the reference (fast) corner: the worse of
	// the rising and falling max−min arrival spreads, ps.
	Skew float64
	// CLR is the contest objective: greatest sink latency at the set's
	// worst-case corner minus least sink latency at its reference corner,
	// ps.
	CLR float64
	// MaxLatency is the greatest sink latency at the reference corner (the
	// quantity Table V reports), ps.
	MaxLatency float64
	// MaxSlew is the worst 10-90% slew anywhere, across corners, ps.
	MaxSlew float64
	// SlewViol counts slew-limit violations across corners.
	SlewViol int
	// TotalCap is wire + buffer capacitance, fF.
	TotalCap float64
	// CapPct is TotalCap as a percentage of the benchmark limit (0 when no
	// limit was given).
	CapPct float64

	// CLRSpread generalizes CLR to the whole set: the greatest sink
	// latency at ANY corner minus the least sink latency at ANY corner,
	// ps. For the two-corner contest set with extreme roles it equals CLR;
	// for PVT grids and Monte Carlo sets it is the honest envelope.
	CLRSpread float64 `json:",omitempty"`
	// WorstCorner names the corner that produced the greatest sink latency
	// (the CLRSpread attribution).
	WorstCorner string `json:",omitempty"`
	// PerCorner is the per-corner latency/slew breakdown, in set order.
	PerCorner []CornerStat `json:",omitempty"`

	// Yield statistics, populated only for Monte Carlo corner sets:
	// MCSamples counts the variation samples the statistics were computed
	// over (non-zero exactly when the set was MC, so a catastrophic 0%
	// yield is distinguishable from "no yield analysis ran"); Yield is the
	// weight fraction of samples with no slew violation (and, when a
	// capacitance limit applies, it is corner-independent so it gates
	// all-or-nothing); LatP50/LatP95 are weighted quantiles of the
	// per-sample greatest sink latency, ps.
	MCSamples int     `json:",omitempty"`
	Yield     float64 `json:",omitempty"`
	LatP50    float64 `json:",omitempty"`
	LatP95    float64 `json:",omitempty"`
}

// CornerStat is one corner's row of the per-corner breakdown.
type CornerStat struct {
	Name     string
	Vdd      float64
	MinLat   float64 // least sink latency at this corner, ps
	MaxLat   float64 // greatest sink latency at this corner, ps
	Skew     float64 // local skew at this corner, ps
	MaxSlew  float64 // worst slew at this corner, ps
	SlewViol int
	Weight   float64 `json:",omitempty"`
}

// minMax returns the least and greatest sink latency of one corner result
// over both launch edges.
func minMax(r *analysis.Result) (min, max float64) {
	minR, maxR := r.MinMaxRise()
	minF, maxF := r.MinMaxFall()
	return math.Min(minR, minF), math.Max(maxR, maxF)
}

// FromResults computes metrics from per-corner results aligned with the
// corner set (results[i] evaluated at set.Corners[i]). Corner roles come
// from the set — never from slice positions — so any number of corners
// with any role assignment reports correctly. capLimit may be zero. It
// returns an error when results and set disagree (missing or extra
// corners, nil entries) rather than mis-attributing a corner.
func FromResults(tr *ctree.Tree, set *corners.Set, results []*analysis.Result, capLimit float64) (Metrics, error) {
	m := Metrics{TotalCap: tr.TotalCap()}
	if capLimit > 0 {
		m.CapPct = 100 * m.TotalCap / capLimit
	}
	if set == nil {
		return m, fmt.Errorf("eval: nil corner set")
	}
	if len(results) == 0 {
		return m, fmt.Errorf("eval: no corner results (want %d)", len(set.Corners))
	}
	if len(results) != len(set.Corners) {
		return m, fmt.Errorf("eval: %d corner results for a %d-corner set", len(results), len(set.Corners))
	}
	for i, r := range results {
		if r == nil {
			return m, fmt.Errorf("eval: nil result for corner %q", set.Corners[i].Name)
		}
	}
	ref := results[set.Ref]
	worst := results[set.Worst]
	m.Skew = ref.Skew()
	refMin, refMax := minMax(ref)
	_, worstMax := minMax(worst)
	m.MaxLatency = refMax
	m.CLR = worstMax - refMin
	globalMin, globalMax := math.Inf(1), math.Inf(-1)
	m.PerCorner = make([]CornerStat, len(results))
	for i, r := range results {
		if r.MaxSlew > m.MaxSlew {
			m.MaxSlew = r.MaxSlew
		}
		m.SlewViol += r.SlewViol
		c := set.Corners[i]
		lo, hi := minMax(r)
		m.PerCorner[i] = CornerStat{
			Name: c.Name, Vdd: c.Vdd,
			MinLat: lo, MaxLat: hi, Skew: r.Skew(),
			MaxSlew: r.MaxSlew, SlewViol: r.SlewViol,
			Weight: c.Weight,
		}
		if lo < globalMin {
			globalMin = lo
		}
		if hi > globalMax {
			globalMax = hi
			m.WorstCorner = c.Name
		}
	}
	m.CLRSpread = globalMax - globalMin
	if set.MC {
		m.mcStats(set, results, capLimit)
	}
	return m, nil
}

// mcStats fills the Monte Carlo yield and quantile fields from the
// per-sample results, honoring per-corner weights.
func (m *Metrics) mcStats(set *corners.Set, results []*analysis.Result, capLimit float64) {
	type sample struct{ lat, w float64 }
	samples := make([]sample, 0, len(results))
	var totalW, passW float64
	capOK := capLimit <= 0 || m.TotalCap <= capLimit
	for i, r := range results {
		w := set.Corners[i].W()
		_, hi := minMax(r)
		samples = append(samples, sample{lat: hi, w: w})
		totalW += w
		if r.SlewViol == 0 && capOK {
			passW += w
		}
	}
	if totalW <= 0 {
		return
	}
	m.MCSamples = len(results)
	m.Yield = passW / totalW
	// Typed sort: the reflect-based sort.Slice costs an allocation and
	// interface dispatch per comparison on the mc hot path.
	slices.SortFunc(samples, func(a, b sample) int {
		switch {
		case a.lat < b.lat:
			return -1
		case a.lat > b.lat:
			return 1
		}
		return 0
	})
	quantile := func(q float64) float64 {
		target := q * totalW
		acc := 0.0
		for _, s := range samples {
			acc += s.w
			if acc >= target {
				return s.lat
			}
		}
		return samples[len(samples)-1].lat
	}
	m.LatP50 = quantile(0.50)
	m.LatP95 = quantile(0.95)
}

// Violated reports whether the network breaks a hard constraint (slew, or
// the capacitance limit when one is set).
func (m Metrics) Violated(capLimit float64) bool {
	if m.SlewViol > 0 {
		return true
	}
	if capLimit > 0 && m.TotalCap > capLimit {
		return true
	}
	return false
}

func (m Metrics) String() string {
	return fmt.Sprintf("skew=%.3fps clr=%.2fps lat=%.1fps slew=%.1fps cap=%.1fpF (%.1f%%)",
		m.Skew, m.CLR, m.MaxLatency, m.MaxSlew, m.TotalCap/1000, m.CapPct)
}

// Table renders rows as a fixed-width ASCII table. Every row must have
// len(headers) cells.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
