// Package eval turns raw evaluation results into the paper's metrics —
// nominal skew, Clock Latency Range (CLR), latencies, slew and capacitance
// accounting — and renders ASCII tables for the experiment harnesses.
package eval

import (
	"fmt"
	"math"
	"strings"

	"contango/internal/analysis"
	"contango/internal/ctree"
)

// Metrics summarizes one clock network evaluated across corners.
type Metrics struct {
	// Skew is the nominal skew at the reference (fast) corner: the worse of
	// the rising and falling max−min arrival spreads, ps.
	Skew float64
	// CLR is the contest objective: greatest sink latency at the slow
	// corner minus least sink latency at the fast corner, ps.
	CLR float64
	// MaxLatency is the greatest sink latency at the fast corner (the
	// quantity Table V reports), ps.
	MaxLatency float64
	// MaxSlew is the worst 10-90% slew anywhere, across corners, ps.
	MaxSlew float64
	// SlewViol counts slew-limit violations across corners.
	SlewViol int
	// TotalCap is wire + buffer capacitance, fF.
	TotalCap float64
	// CapPct is TotalCap as a percentage of the benchmark limit (0 when no
	// limit was given).
	CapPct float64
}

// FromResults computes metrics from per-corner results. results[0] must be
// the fast (reference) corner; the last entry is the slow corner. capLimit
// may be zero.
func FromResults(tr *ctree.Tree, results []*analysis.Result, capLimit float64) Metrics {
	m := Metrics{TotalCap: tr.TotalCap()}
	if capLimit > 0 {
		m.CapPct = 100 * m.TotalCap / capLimit
	}
	if len(results) == 0 {
		return m
	}
	fast := results[0]
	slow := results[len(results)-1]
	m.Skew = fast.Skew()
	fMinR, _ := fast.MinMaxRise()
	fMinF, _ := fast.MinMaxFall()
	_, sMaxR := slow.MinMaxRise()
	_, sMaxF := slow.MinMaxFall()
	_, fMaxR := fast.MinMaxRise()
	_, fMaxF := fast.MinMaxFall()
	m.MaxLatency = math.Max(fMaxR, fMaxF)
	m.CLR = math.Max(sMaxR, sMaxF) - math.Min(fMinR, fMinF)
	for _, r := range results {
		if r.MaxSlew > m.MaxSlew {
			m.MaxSlew = r.MaxSlew
		}
		m.SlewViol += r.SlewViol
	}
	return m
}

// Violated reports whether the network breaks a hard constraint (slew, or
// the capacitance limit when one is set).
func (m Metrics) Violated(capLimit float64) bool {
	if m.SlewViol > 0 {
		return true
	}
	if capLimit > 0 && m.TotalCap > capLimit {
		return true
	}
	return false
}

func (m Metrics) String() string {
	return fmt.Sprintf("skew=%.3fps clr=%.2fps lat=%.1fps slew=%.1fps cap=%.1fpF (%.1f%%)",
		m.Skew, m.CLR, m.MaxLatency, m.MaxSlew, m.TotalCap/1000, m.CapPct)
}

// Table renders rows as a fixed-width ASCII table. Every row must have
// len(headers) cells.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
