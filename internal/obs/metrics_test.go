package obs

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotonic
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %g, want 1.5", got)
	}
	// Idempotent re-registration returns the same handle.
	if r.Counter("test_ops_total", "ops") != c {
		t.Error("re-registering a counter returned a new handle")
	}
}

func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var cv *CounterVec
	var hv *HistogramVec
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	cv.With("x").Inc()
	hv.With("x").Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || cv.Total() != 0 || hv.Count() != 0 {
		t.Error("nil metrics should read zero")
	}
	var tr *Trace
	tr.Root().Child("x").End()
	tr.Finish()
	if tr.Top(5) != nil {
		t.Error("nil trace summary should be nil")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_dur_seconds", "durations", ExpBuckets(0.001, 10, 3)) // 1ms, 10ms, 100ms
	for _, v := range []float64{0.0005, 0.001, 0.05, 0.2, 3} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
	}
	// Cumulative buckets: <=1ms: 2 (0.0005 and the boundary 0.001), <=10ms: 2, <=100ms: 3, +Inf: 5.
	checks := map[string]float64{
		`test_dur_seconds_bucket{le="0.001"}`: 2,
		`test_dur_seconds_bucket{le="0.01"}`:  2,
		`test_dur_seconds_bucket{le="0.1"}`:   3,
		`test_dur_seconds_bucket{le="+Inf"}`:  5,
		`test_dur_seconds_count`:              5,
	}
	for k, want := range checks {
		if got := samples[k]; got != want {
			t.Errorf("%s = %g, want %g", k, got, want)
		}
	}
	if sum := samples["test_dur_seconds_sum"]; sum < 3.25 || sum > 3.26 {
		t.Errorf("sum = %g, want ~3.2515", sum)
	}
}

func TestVecLabelsAndEscaping(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("test_jobs_total", "jobs", "plan", "corners")
	cv.With("paper", "ispd09").Add(3)
	cv.With(`we"ird\plan`, "mc:64:1").Inc()
	if cv.Total() != 4 {
		t.Errorf("vec total = %d, want 4", cv.Total())
	}
	hv := r.HistogramVec("test_pass_seconds", "pass durations", ExpBuckets(0.01, 2, 2), "pass")
	hv.With("tbsz").Observe(0.02)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	samples, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}
	if got := samples[`test_jobs_total{corners="ispd09",plan="paper"}`]; got != 3 {
		t.Errorf("labeled counter = %g, want 3 in:\n%s", got, text)
	}
	if got := samples[`test_pass_seconds_count{pass="tbsz"}`]; got != 1 {
		t.Errorf("labeled histogram count = %g, want 1 in:\n%s", got, text)
	}
	if !strings.Contains(text, `plan="we\"ird\\plan"`) {
		t.Errorf("label value not escaped:\n%s", text)
	}
	// HELP/TYPE headers precede samples for every family.
	if !strings.Contains(text, "# HELP test_jobs_total jobs\n# TYPE test_jobs_total counter") {
		t.Errorf("missing HELP/TYPE headers:\n%s", text)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_x", "x")
	defer func() {
		if recover() == nil {
			t.Error("registering test_x as a gauge should panic")
		}
	}()
	r.Gauge("test_x", "x")
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_par_total", "par")
	h := r.Histogram("test_par_seconds", "par", ExpBuckets(0.001, 2, 4))
	cv := r.CounterVec("test_par_vec_total", "par", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.002)
				cv.With("a").Inc()
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 || cv.Total() != 8000 {
		t.Errorf("lost updates: counter=%d hist=%d vec=%d", c.Value(), h.Count(), cv.Total())
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_ok_total", "ok").Inc()
	RegisterRuntimeMetrics(r)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != TextContentType {
		t.Errorf("content-type = %q", ct)
	}
	samples, err := ParseText(resp.Body)
	if err != nil {
		t.Fatalf("handler output does not parse: %v", err)
	}
	if samples["test_ok_total"] != 1 {
		t.Error("counter missing from scrape")
	}
	if samples["go_goroutines"] <= 0 {
		t.Error("runtime gauges missing from scrape")
	}

	post, err := http.Post(srv.URL, "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST = %d, want 405", post.StatusCode)
	}
}

func TestParseTextRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_value_here\n",
		`unterminated{a="x} 1` + "\n",
		`bad-name 3` + "\n",
		`m{a=unquoted} 1` + "\n",
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText accepted %q", bad)
		}
	}
}
