package obs

import (
	"runtime"
	"sync"
	"time"
)

// memSnapshot caches runtime.ReadMemStats reads: ReadMemStats stops the
// world, and a registry with a dozen runtime gauges must not pay that once
// per gauge per scrape (or once per scrape under an aggressive scraper).
type memSnapshot struct {
	mu    sync.Mutex
	taken time.Time
	ms    runtime.MemStats
}

func (s *memSnapshot) read() runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if time.Since(s.taken) > time.Second {
		runtime.ReadMemStats(&s.ms)
		s.taken = time.Now()
	}
	return s.ms
}

// RegisterRuntimeMetrics adds process-level gauges (goroutines, heap and
// GC memstats) to the registry, the snapshot a /metrics scrape pairs with
// the -debug-addr pprof listener for deeper digs.
func RegisterRuntimeMetrics(r *Registry) {
	snap := &memSnapshot{}
	r.GaugeFunc("go_goroutines", "Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 { return float64(snap.read().HeapAlloc) })
	r.GaugeFunc("go_memstats_heap_objects", "Number of allocated heap objects.",
		func() float64 { return float64(snap.read().HeapObjects) })
	r.GaugeFunc("go_memstats_sys_bytes", "Bytes of memory obtained from the OS.",
		func() float64 { return float64(snap.read().Sys) })
	r.GaugeFunc("go_memstats_alloc_bytes_total", "Cumulative bytes allocated for heap objects.",
		func() float64 { return float64(snap.read().TotalAlloc) })
	r.GaugeFunc("go_memstats_gc_total", "Number of completed GC cycles.",
		func() float64 { return float64(snap.read().NumGC) })
	r.GaugeFunc("go_memstats_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.",
		func() float64 { return float64(snap.read().PauseTotalNs) / 1e9 })
}
