package obs

import (
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestTraceChromeJSON(t *testing.T) {
	start := time.Now().Add(-100 * time.Millisecond)
	tr := NewTrace("job-0001", start)
	root := tr.Root()
	root.SetArg("benchmark", "tiny")
	q := root.ChildSpan("queue_wait", start, start.Add(10*time.Millisecond))
	_ = q
	p1 := root.Child("pass:tbsz")
	time.Sleep(2 * time.Millisecond)
	p1.End()
	p2 := root.Child("pass:twsz")
	time.Sleep(time.Millisecond)
	p2.End()
	tr.Finish()

	raw, err := tr.ChromeJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  int               `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("not valid trace JSON: %v\n%s", err, raw)
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4:\n%s", len(doc.TraceEvents), raw)
	}
	rootEv := doc.TraceEvents[0]
	if rootEv.Name != "job-0001" || rootEv.Ph != "X" || rootEv.Ts != 0 || rootEv.Args["benchmark"] != "tiny" {
		t.Errorf("bad root event: %+v", rootEv)
	}
	// Children are nested inside the root interval with monotonic starts.
	prevTs := -1.0
	for _, ev := range doc.TraceEvents[1:] {
		if ev.Ts < prevTs {
			t.Errorf("span %s starts at %gus before its predecessor at %gus", ev.Name, ev.Ts, prevTs)
		}
		prevTs = ev.Ts
		if ev.Ts < rootEv.Ts || ev.Ts+ev.Dur > rootEv.Ts+rootEv.Dur+1 {
			t.Errorf("span %s [%g..%g] escapes root [%g..%g]",
				ev.Name, ev.Ts, ev.Ts+ev.Dur, rootEv.Ts, rootEv.Ts+rootEv.Dur)
		}
	}
}

func TestTraceTop(t *testing.T) {
	start := time.Now()
	tr := NewTrace("job", start)
	root := tr.Root()
	root.ChildSpan("short", start, start.Add(time.Millisecond))
	root.ChildSpan("long", start.Add(time.Millisecond), start.Add(51*time.Millisecond))
	root.ChildSpan("medium", start.Add(51*time.Millisecond), start.Add(61*time.Millisecond))
	tr.Finish()
	top := tr.Top(2)
	if len(top) != 2 || top[0].Name != "long" || top[1].Name != "medium" {
		t.Fatalf("top = %+v", top)
	}
	if top[0].DurMs < 49 || top[0].DurMs > 51 {
		t.Errorf("long duration = %gms", top[0].DurMs)
	}
}

func TestNewLogger(t *testing.T) {
	var sb strings.Builder
	lg, err := NewLogger(&sb, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hidden")
	lg.Info("job done", slog.String("job", "job-0001"), slog.String("plan", "paper"))
	out := sb.String()
	if strings.Contains(out, "hidden") {
		t.Error("debug record leaked past info level")
	}
	var rec map[string]interface{}
	if err := json.Unmarshal([]byte(strings.TrimSpace(out)), &rec); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, out)
	}
	if rec["msg"] != "job done" || rec["job"] != "job-0001" || rec["plan"] != "paper" {
		t.Errorf("bad record: %v", rec)
	}

	if _, err := NewLogger(&sb, "xml", "info"); err == nil {
		t.Error("bad format accepted")
	}
	if _, err := NewLogger(&sb, "text", "loud"); err == nil {
		t.Error("bad level accepted")
	}
}
