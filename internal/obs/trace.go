package obs

import (
	"encoding/json"
	"sort"
	"sync"
	"time"
)

// Trace is a lightweight span tree for one unit of work (a synthesis job):
// a root span covering the whole lifetime with nested child spans for its
// phases. It is safe for concurrent use, cheap enough to build
// unconditionally, and exports Chrome trace-event JSON loadable in
// about:tracing and Perfetto (ChromeJSON) plus a compact top-N summary for
// wire types (Top).
type Trace struct {
	mu   sync.Mutex
	root *Span
}

// Span is one timed phase inside a Trace. End a span with End (or let
// Trace.Finish close every open span when the work completes).
type Span struct {
	t        *Trace
	name     string
	start    time.Time
	end      time.Time // zero while open
	args     map[string]string
	children []*Span
}

// NewTrace starts a trace whose root span is named name and began at
// start (zero start means now).
func NewTrace(name string, start time.Time) *Trace {
	if start.IsZero() {
		start = time.Now()
	}
	t := &Trace{}
	t.root = &Span{t: t, name: name, start: start}
	return t
}

// Root returns the trace's root span.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Child starts a child span named name beginning now. Nil-safe: a nil
// span returns nil, and every Span method on nil is a no-op, so callers
// can thread optional traces without guards.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.ChildSpan(name, time.Now(), time.Time{})
}

// ChildSpan adds a child span with an explicit interval; a zero end leaves
// it open (End or Trace.Finish closes it). Used for phases measured before
// the trace existed, like a job's queue wait.
func (s *Span) ChildSpan(name string, start, end time.Time) *Span {
	if s == nil {
		return nil
	}
	c := &Span{t: s.t, name: name, start: start, end: end}
	s.t.mu.Lock()
	s.children = append(s.children, c)
	s.t.mu.Unlock()
	return c
}

// SetArg attaches one key=value annotation to the span.
func (s *Span) SetArg(k, v string) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	if s.args == nil {
		s.args = make(map[string]string)
	}
	s.args[k] = v
	s.t.mu.Unlock()
}

// End closes the span now (idempotent).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.t.mu.Unlock()
}

// Finish closes the root span and every still-open child at now, making
// the trace ready for export. Safe to call more than once.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	var close func(s *Span)
	close = func(s *Span) {
		if s.end.IsZero() {
			s.end = now
		}
		for _, c := range s.children {
			close(c)
		}
	}
	close(t.root)
}

// chromeEvent is one Chrome trace-event ("X" complete event). Timestamps
// and durations are microseconds relative to the root span's start.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the object form of the trace-event format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeJSON renders the trace in the Chrome trace-event format (object
// form, complete "X" events, microsecond timestamps relative to the root),
// loadable in about:tracing and Perfetto. Open spans are rendered as if
// they ended at their deepest child's end (call Finish first for exact
// boundaries).
func (t *Trace) ChromeJSON() ([]byte, error) {
	if t == nil {
		return nil, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	base := t.root.start
	var evs []chromeEvent
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		end := s.end
		if end.IsZero() {
			end = s.start
			for _, c := range s.children {
				if !c.end.IsZero() && c.end.After(end) {
					end = c.end
				}
			}
		}
		var args map[string]string
		if len(s.args) > 0 {
			args = make(map[string]string, len(s.args))
			for k, v := range s.args {
				args[k] = v
			}
		}
		evs = append(evs, chromeEvent{
			Name: s.name,
			Cat:  "contango",
			Ph:   "X",
			Ts:   float64(s.start.Sub(base)) / float64(time.Microsecond),
			Dur:  float64(end.Sub(s.start)) / float64(time.Microsecond),
			Pid:  1,
			Tid:  1,
			Args: args,
		})
		for _, c := range s.children {
			walk(c, depth+1)
		}
	}
	walk(t.root, 0)
	return json.MarshalIndent(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ms"}, "", " ")
}

// SpanInfo is one row of a trace summary.
type SpanInfo struct {
	Name    string  `json:"name"`
	StartMs float64 `json:"start_ms"` // relative to the root span's start
	DurMs   float64 `json:"dur_ms"`
}

// Top returns the n longest non-root spans (duration descending; ties by
// start time), the compact summary wire types embed.
func (t *Trace) Top(n int) []SpanInfo {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	base := t.root.start
	var all []SpanInfo
	var walk func(s *Span)
	walk = func(s *Span) {
		for _, c := range s.children {
			end := c.end
			if end.IsZero() {
				end = c.start
			}
			all = append(all, SpanInfo{
				Name:    c.name,
				StartMs: float64(c.start.Sub(base)) / float64(time.Millisecond),
				DurMs:   float64(end.Sub(c.start)) / float64(time.Millisecond),
			})
			walk(c)
		}
	}
	walk(t.root)
	sort.Slice(all, func(i, j int) bool {
		if all[i].DurMs != all[j].DurMs {
			return all[i].DurMs > all[j].DurMs
		}
		return all[i].StartMs < all[j].StartMs
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}
