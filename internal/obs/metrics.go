// Package obs is Contango's zero-dependency observability core: a typed
// metrics registry (counters, gauges, histograms with fixed exponential
// buckets) with Prometheus text-format exposition, a lightweight span-tree
// tracer that exports Chrome trace-event JSON (trace.go), structured
// logging construction for log/slog front ends (log.go), and runtime
// gauges (runtime.go). The service, store and flow layers hold typed
// metric handles and update them on hot paths with a single atomic op;
// exposition walks the registry only when /metrics is scraped.
//
// Every mutating method is nil-receiver safe, so optional instrumentation
// (a store opened by the CLI without a registry, say) costs a predictable
// no-op instead of a nil check at every call site.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n (n < 0 is ignored: counters are
// monotonic by contract).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into fixed buckets (cumulative on
// exposition, Prometheus-style) plus a running sum and count.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits
	n      atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: bounds}
	h.counts = make([]atomic.Int64, len(bounds)+1)
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start and multiplying by factor, for Histogram construction.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		panic("obs: ExpBuckets needs n > 0, start > 0, factor > 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// labelSep joins label values into a vec child key; it cannot appear in
// UTF-8 label values supplied as Go strings without being intentional.
const labelSep = "\x1f"

// CounterVec is a family of Counters distinguished by label values.
type CounterVec struct {
	labels []string
	mu     sync.Mutex
	kids   map[string]*Counter
}

// With returns (creating if needed) the child counter for the given label
// values, which must match the vec's label names in number and order.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: counter vec wants %d label values, got %d", len(v.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.kids[key]
	if !ok {
		c = &Counter{}
		v.kids[key] = c
	}
	return c
}

// Total sums every child counter.
func (v *CounterVec) Total() int64 {
	if v == nil {
		return 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	var t int64
	for _, c := range v.kids {
		t += c.Value()
	}
	return t
}

// HistogramVec is a family of Histograms distinguished by label values.
type HistogramVec struct {
	labels []string
	bounds []float64
	mu     sync.Mutex
	kids   map[string]*Histogram
}

// With returns (creating if needed) the child histogram for the given
// label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: histogram vec wants %d label values, got %d", len(v.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.kids[key]
	if !ok {
		h = newHistogram(v.bounds)
		v.kids[key] = h
	}
	return h
}

// Count sums the observation counts of every child histogram.
func (v *HistogramVec) Count() int64 {
	if v == nil {
		return 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	var t int64
	for _, h := range v.kids {
		t += h.Count()
	}
	return t
}

// Sum totals the observed values across every child histogram (for a
// duration histogram: the cumulative seconds observed by the family).
func (v *HistogramVec) Sum() float64 {
	if v == nil {
		return 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	var t float64
	for _, h := range v.kids {
		t += h.Sum()
	}
	return t
}

// family is one registered metric under its exposition name.
type family struct {
	name, help string
	kind       string // "counter", "gauge", "histogram"

	c  *Counter
	g  *Gauge
	gf func() float64
	h  *Histogram
	cv *CounterVec
	hv *HistogramVec
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Metric constructors are idempotent: asking for an
// already-registered name of the same kind returns the existing handle,
// while a kind or label mismatch panics (a programmer error, like
// registering two different metrics under one name).
type Registry struct {
	mu    sync.Mutex
	byNm  map[string]*family
	order []*family
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{byNm: make(map[string]*family)}
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	return validMetricName(s) && !strings.ContainsRune(s, ':')
}

// lookup returns the existing family for name after verifying the kind,
// or registers a new one built by mk.
func (r *Registry) lookup(name, help, kind string, mk func() *family) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byNm[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q already registered as %s, not %s", name, f.kind, kind))
		}
		return f
	}
	f := mk()
	f.name, f.help, f.kind = name, help, kind
	r.byNm[name] = f
	r.order = append(r.order, f)
	return f
}

// Counter registers (or returns) the counter named name.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, "counter", func() *family { return &family{c: &Counter{}} })
	if f.c == nil {
		panic(fmt.Sprintf("obs: metric %q is a counter vec, not a counter", name))
	}
	return f.c
}

// CounterVec registers (or returns) the labeled counter family named name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	for _, l := range labels {
		if !validLabelName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q", l))
		}
	}
	f := r.lookup(name, help, "counter", func() *family {
		return &family{cv: &CounterVec{labels: labels, kids: make(map[string]*Counter)}}
	})
	if f.cv == nil {
		panic(fmt.Sprintf("obs: metric %q is a plain counter, not a vec", name))
	}
	return f.cv
}

// Gauge registers (or returns) the gauge named name.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, "gauge", func() *family { return &family{g: &Gauge{}} })
	if f.g == nil {
		panic(fmt.Sprintf("obs: metric %q is a gauge func, not a settable gauge", name))
	}
	return f.g
}

// GaugeFunc registers a gauge whose value is computed by fn at exposition
// time (queue depths, map sizes — values that already live somewhere).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.lookup(name, help, "gauge", func() *family { return &family{gf: fn} })
}

// Histogram registers (or returns) the histogram named name with the given
// ascending bucket upper bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.lookup(name, help, "histogram", func() *family { return &family{h: newHistogram(bounds)} })
	if f.h == nil {
		panic(fmt.Sprintf("obs: metric %q is a histogram vec, not a histogram", name))
	}
	return f.h
}

// HistogramVec registers (or returns) the labeled histogram family named
// name with the given bucket upper bounds.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	for _, l := range labels {
		if !validLabelName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q", l))
		}
	}
	f := r.lookup(name, help, "histogram", func() *family {
		return &family{hv: &HistogramVec{labels: labels, bounds: bounds, kids: make(map[string]*Histogram)}}
	})
	if f.hv == nil {
		panic(fmt.Sprintf("obs: metric %q is a plain histogram, not a vec", name))
	}
	return f.hv
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelPairs renders {name="value",...} for one vec child key.
func labelPairs(names []string, key string, extra string) string {
	values := strings.Split(key, labelSep)
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(values[i]))
	}
	if extra != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

// sortedKeys returns map keys in stable order for deterministic exposition.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func writeHistogram(w io.Writer, name, labels string, h *Histogram) error {
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		le := fmt.Sprintf(`le="%s"`, formatFloat(b))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabels(labels, le), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabels(labels, `le="+Inf"`), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count())
	return err
}

// mergeLabels merges an existing rendered label set ("{a=\"b\"}" or "")
// with one extra pair.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// WriteText renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), in registration order with vec
// children sorted by label values.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.order))
	copy(fams, r.order)
	r.mu.Unlock()

	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
			return err
		}
		var err error
		switch {
		case f.c != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", f.name, f.c.Value())
		case f.g != nil:
			_, err = fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.g.Value()))
		case f.gf != nil:
			_, err = fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.gf()))
		case f.h != nil:
			err = writeHistogram(w, f.name, "", f.h)
		case f.cv != nil:
			f.cv.mu.Lock()
			keys := sortedKeys(f.cv.kids)
			for _, k := range keys {
				if _, err = fmt.Fprintf(w, "%s%s %d\n", f.name, labelPairs(f.cv.labels, k, ""), f.cv.kids[k].Value()); err != nil {
					break
				}
			}
			f.cv.mu.Unlock()
		case f.hv != nil:
			f.hv.mu.Lock()
			keys := sortedKeys(f.hv.kids)
			for _, k := range keys {
				if err = writeHistogram(w, f.name, labelPairs(f.hv.labels, k, ""), f.hv.kids[k]); err != nil {
					break
				}
			}
			f.hv.mu.Unlock()
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// TextContentType is the Content-Type of the exposition format.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an http.Handler serving the registry as a Prometheus
// scrape target (GET only).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", TextContentType)
		_ = r.WriteText(w)
	})
}
