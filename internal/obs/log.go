package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a *slog.Logger writing to w in the given format
// ("text" or "json") at the given minimum level ("debug", "info", "warn",
// "error"). It is the construction shared by the contango and contangod
// front ends, so the two CLIs parse the same -log-format/-log-level
// vocabulary and emit records the same way.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (text, json)", format)
	}
}
