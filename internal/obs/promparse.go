package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ParseText parses Prometheus text exposition (the format WriteText
// emits — and any other conforming exporter) into a map from sample key
// to value. A sample key is the metric name with its label set
// canonicalized to sorted `name{a="x",b="y"}` form (bare `name` without
// labels). Malformed lines are errors, which is what makes this the
// parse-check half of the exposition contract: tests feed /metrics output
// through it and a syntax regression fails loudly instead of scraping
// garbage.
func ParseText(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		out[key] = val
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseSample parses one `name{labels} value` line.
func parseSample(line string) (string, float64, error) {
	nameEnd := strings.IndexAny(line, "{ \t")
	if nameEnd <= 0 {
		return "", 0, fmt.Errorf("no metric name in %q", line)
	}
	name := line[:nameEnd]
	if !validMetricName(name) {
		return "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[nameEnd:]
	labels := ""
	if rest[0] == '{' {
		close := findLabelEnd(rest)
		if close < 0 {
			return "", 0, fmt.Errorf("unterminated label set in %q", line)
		}
		var err error
		labels, err = canonLabels(rest[1:close])
		if err != nil {
			return "", 0, fmt.Errorf("%v in %q", err, line)
		}
		rest = rest[close+1:]
	}
	valStr := strings.TrimSpace(rest)
	if i := strings.IndexAny(valStr, " \t"); i >= 0 {
		valStr = valStr[:i] // a timestamp may follow the value
	}
	val, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return "", 0, fmt.Errorf("bad sample value %q", valStr)
	}
	if labels != "" {
		name += "{" + labels + "}"
	}
	return name, val, nil
}

// findLabelEnd locates the closing brace of a label set, honoring quoted
// values with escapes.
func findLabelEnd(s string) int {
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch {
		case inQuote && s[i] == '\\':
			i++
		case s[i] == '"':
			inQuote = !inQuote
		case !inQuote && s[i] == '}':
			return i
		}
	}
	return -1
}

// canonLabels validates a raw label body and re-renders it with pairs
// sorted by label name.
func canonLabels(body string) (string, error) {
	body = strings.TrimSuffix(strings.TrimSpace(body), ",")
	if body == "" {
		return "", nil
	}
	var pairs []string
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq <= 0 {
			return "", fmt.Errorf("bad label pair %q", body)
		}
		lname := strings.TrimSpace(body[:eq])
		if !validLabelName(lname) {
			return "", fmt.Errorf("invalid label name %q", lname)
		}
		rest := strings.TrimSpace(body[eq+1:])
		if len(rest) == 0 || rest[0] != '"' {
			return "", fmt.Errorf("unquoted label value after %q", lname)
		}
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return "", fmt.Errorf("unterminated label value after %q", lname)
		}
		pairs = append(pairs, lname+`=`+rest[:end+1])
		body = strings.TrimPrefix(strings.TrimSpace(rest[end+1:]), ",")
		body = strings.TrimSpace(body)
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ","), nil
}
