package buffering

import (
	"fmt"
	"math"
	"sort"

	"contango/internal/analysis"
	"contango/internal/ctree"
	"contango/internal/geom"
	"contango/internal/tech"
)

// Arena-native buffering: the insertion and polarity passes below operate on
// ctree.Arena slot indices instead of pointer nodes. Every algorithm is a
// line-for-line mirror of its pointer twin in balanced.go / vanginneken.go /
// polarity.go / sweep.go — same traversal order, same sorts on the same
// input orders, same floating-point expressions — and the arena mutators
// they call are themselves bit-identical mirrors of the Tree mutators, so a
// tree built through this path round-trips ToTree equal to the pointer
// construction down to the last bit (pinned by the construction property
// tests and the top-level envelope-parity test).

// BalancedInsertArena is BalancedInsert on an arena.
func BalancedInsertArena(a *ctree.Arena, comp tech.Composite, opt Options) (int, error) {
	opt.defaults()
	maxCap := opt.MaxCap
	if maxCap == 0 {
		maxCap = SafeLoad(a.Tech, comp)
	}
	threshold := 0.35 * maxCap
	if threshold <= comp.Cin() {
		threshold = comp.Cin() * 2
	}
	added := 0

	type kid struct {
		n    int32
		load float64
	}
	var process func(n int32) (float64, int32)
	process = func(n int32) (float64, int32) {
		load := 0.0
		switch a.Kind[n] {
		case ctree.Sink:
			load = a.SinkCap[n]
		default:
			var kids []kid
			for _, c := range append([]int32(nil), a.Children(n)...) {
				kload, ktop := process(c)
				kids = append(kids, kid{ktop, kload})
				load += kload
			}
			// Repair 1: decouple heavy child edges with a buffer at the
			// merge point so the merge's own driver no longer sees them.
			sort.Slice(kids, func(i, j int) bool { return kids[i].load > kids[j].load })
			for i := range kids {
				if load <= threshold {
					break
				}
				k := kids[i]
				if k.load <= comp.Cin()*1.25 {
					break // decoupling replaces ~Cin with Cin: no benefit
				}
				pos := legalizePosArena(a, k.n, 0, opt)
				b := a.InsertOnEdge(k.n, pos, ctree.Buffer)
				a.SetBuf(b, comp)
				added++
				contrib := comp.Cin() + a.EdgeCap(b)
				kids[i] = kid{b, contrib}
				load += contrib - k.load
			}
			// Repair 2: sink clusters — many near-Cin children at one point.
			mergeLegal := opt.Obs == nil || !opt.Obs.BlocksPoint(a.Loc[n])
			for mergeLegal && load > threshold && len(kids) > 1 {
				b := a.AddChildL(n, ctree.Buffer, a.Loc[n])
				a.SetBuf(b, comp)
				added++
				group := 0.0
				for i := 0; i < len(kids); {
					if group == 0 || group+kids[i].load <= threshold {
						ch := kids[i].n
						if ch == b {
							i++
							continue
						}
						r := append(geom.Polyline(nil), a.Route(ch)...)
						a.Detach(ch)
						a.Attach(ch, b, r)
						group += kids[i].load
						kids = append(kids[:i], kids[i+1:]...)
					} else {
						i++
					}
				}
				load = load - group + comp.Cin()
				kids = append(kids, kid{b, comp.Cin()})
				if group == 0 {
					break // nothing movable: give up gracefully
				}
			}
		}
		w := a.Tech.Wires[a.WidthIdx[n]]
		length := a.EdgeLen(n)
		fromBottom := 0.0
		for {
			if load >= threshold {
				// Threshold already exceeded at the current point: buffer
				// right here.
			} else {
				room := (threshold - load) / w.CPerUm
				if fromBottom+room >= length {
					break // edge top reached without hitting the threshold
				}
				fromBottom += room
				load = threshold
			}
			d := length - fromBottom
			pos := legalizePosArena(a, n, d, opt)
			b := a.InsertOnEdge(n, pos, ctree.Buffer)
			a.SetBuf(b, comp)
			added++
			load = comp.Cin()
			length = a.EdgeLen(b)
			n = b
			fromBottom = 0
		}
		return load + (length-fromBottom)*w.CPerUm, n
	}

	srcSafe := 0.45 * a.Tech.SlewLimit / (2.2 * a.SourceR)
	for _, c := range append([]int32(nil), a.Children(a.Root())...) {
		top, topNode := process(c)
		if (top > srcSafe || top > maxCap) && a.EdgeLen(topNode) >= 0 {
			pos := legalizePosArena(a, topNode, 0, opt)
			b := a.InsertOnEdge(topNode, pos, ctree.Buffer)
			a.SetBuf(b, comp)
			added++
		}
	}
	return added, nil
}

// legalizePosArena mirrors legalizePos on a slot index.
func legalizePosArena(a *ctree.Arena, n int32, d float64, opt Options) float64 {
	route := a.Route(n)
	scale := 1.0
	if el := a.EdgeLen(n); el > 0 {
		scale = route.Length() / el
	}
	pos := d * scale
	if opt.Obs == nil {
		return pos
	}
	step := 25.0
	for try := pos; try >= 0; try -= step {
		if !opt.Obs.BlocksPoint(route.At(try)) {
			return try
		}
	}
	for try := pos + step; try <= route.Length(); try += step {
		if !opt.Obs.BlocksPoint(route.At(try)) {
			return try
		}
	}
	return pos
}

// --- van Ginneken DP on slots ---

// abufPos is bufPos with a slot-index edge.
type abufPos struct {
	edge int32
	dist float64
}

type aplist struct {
	pos         abufPos
	leaf        bool
	left, right *aplist
}

func aCons(pos abufPos, rest *aplist) *aplist {
	leaf := &aplist{pos: pos, leaf: true}
	if rest == nil {
		return leaf
	}
	return &aplist{left: leaf, right: rest}
}

func aJoin(a, b *aplist) *aplist {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &aplist{left: a, right: b}
}

func (p *aplist) collect(out *[]abufPos) {
	if p == nil {
		return
	}
	if p.leaf {
		*out = append(*out, p.pos)
		return
	}
	p.left.collect(out)
	p.right.collect(out)
}

type aOption struct {
	cap   float64
	delay float64
	bufs  *aplist
}

type arenaInserter struct {
	a    *ctree.Arena
	comp tech.Composite
	opt  Options

	maxCap float64
}

// InsertArena is Insert (van Ginneken DP) on an arena.
func InsertArena(a *ctree.Arena, comp tech.Composite, opt Options) (int, error) {
	opt.defaults()
	ins := &arenaInserter{a: a, comp: comp, opt: opt}
	ins.maxCap = opt.MaxCap
	if ins.maxCap == 0 {
		ins.maxCap = SafeLoad(a.Tech, comp)
	}
	if ins.maxCap <= comp.Cin() {
		return 0, fmt.Errorf("buffering: composite %v cannot even drive its own input cap", comp)
	}

	var rootOpts []aOption
	for i, c := range a.Children(a.Root()) {
		co := ins.edgeOptions(c)
		if i == 0 {
			rootOpts = co
		} else {
			rootOpts = ins.mergeOptions(rootOpts, co)
		}
	}
	if len(rootOpts) == 0 {
		return 0, nil // empty tree
	}
	best := -1
	bestScore := math.Inf(1)
	for i, o := range rootOpts {
		score := a.SourceR*o.cap + o.delay
		if o.cap > ins.maxCap {
			score += 1e12 // admissible only if nothing better exists
		}
		if score < bestScore {
			best, bestScore = i, score
		}
	}
	var poss []abufPos
	rootOpts[best].bufs.collect(&poss)
	return ins.realize(poss), nil
}

func (ins *arenaInserter) edgeOptions(n int32) []aOption {
	a := ins.a
	var opts []aOption
	switch a.Kind[n] {
	case ctree.Sink:
		opts = []aOption{{cap: a.SinkCap[n], delay: 0}}
	default:
		for i, c := range a.Children(n) {
			co := ins.edgeOptions(c)
			if i == 0 {
				opts = co
			} else {
				opts = ins.mergeOptions(opts, co)
			}
		}
		if len(opts) == 0 { // childless internal node: pure stub
			opts = []aOption{{cap: 0, delay: 0}}
		}
	}

	w := a.Tech.Wires[a.WidthIdx[n]]
	length := a.EdgeLen(n)
	cands := ins.candidates(length)
	prev := length
	for _, pos := range cands { // descending positions
		opts = ins.addWire(opts, w, prev-pos)
		if !ins.blocked(n, pos, length) {
			opts = ins.offerBuffer(opts, n, pos)
		}
		prev = pos
	}
	opts = ins.addWire(opts, w, prev-0)
	return ins.prune(opts)
}

func (ins *arenaInserter) candidates(length float64) []float64 {
	var out []float64
	for d := length - ins.opt.Step; d > 0; d -= ins.opt.Step {
		out = append(out, d)
	}
	out = append(out, 0)
	return out
}

func (ins *arenaInserter) blocked(n int32, dist, length float64) bool {
	if ins.opt.Obs == nil {
		return false
	}
	route := ins.a.Route(n)
	geo := route.Length()
	if geo <= 0 {
		return ins.opt.Obs.BlocksPoint(ins.a.Loc[n])
	}
	frac := dist / length
	return ins.opt.Obs.BlocksPoint(route.At(frac * geo))
}

func (ins *arenaInserter) addWire(opts []aOption, w tech.WireType, dl float64) []aOption {
	if dl <= 0 {
		return opts
	}
	r, c := w.RPerUm*dl, w.CPerUm*dl
	out := make([]aOption, len(opts))
	for i, o := range opts {
		out[i] = aOption{
			cap:   o.cap + c,
			delay: o.delay + r*(c/2+o.cap),
			bufs:  o.bufs,
		}
	}
	return ins.prune(out)
}

func (ins *arenaInserter) offerBuffer(opts []aOption, n int32, dist float64) []aOption {
	comp := ins.comp
	bestScore := math.Inf(1)
	bi := -1
	for i, o := range opts {
		if o.cap > ins.maxCap {
			continue // the buffer would violate slew driving this load
		}
		if score := comp.Rout()*(comp.Cout()+o.cap) + o.delay; score < bestScore {
			bestScore, bi = score, i
		}
	}
	if bi < 0 {
		return opts
	}
	buffered := aOption{
		cap:   comp.Cin(),
		delay: bestScore,
		bufs:  aCons(abufPos{edge: n, dist: dist}, opts[bi].bufs),
	}
	return ins.prune(append(opts, buffered))
}

func (ins *arenaInserter) mergeOptions(a, b []aOption) []aOption {
	out := make([]aOption, 0, len(a)+len(b))
	for _, x := range a {
		for _, y := range b {
			out = append(out, aOption{
				cap:   x.cap + y.cap,
				delay: math.Max(x.delay, y.delay),
				bufs:  aJoin(x.bufs, y.bufs),
			})
		}
	}
	return ins.prune(out)
}

func (ins *arenaInserter) prune(opts []aOption) []aOption {
	if len(opts) <= 1 {
		return opts
	}
	sort.Slice(opts, func(i, j int) bool {
		if opts[i].cap != opts[j].cap {
			return opts[i].cap < opts[j].cap
		}
		return opts[i].delay < opts[j].delay
	})
	out := opts[:0]
	bestDelay := math.Inf(1)
	for _, o := range opts {
		if o.delay < bestDelay-1e-15 {
			out = append(out, o)
			bestDelay = o.delay
		}
	}
	if out[0].cap <= ins.maxCap {
		cut := len(out)
		for i, o := range out {
			if o.cap > ins.maxCap {
				cut = i
				break
			}
		}
		out = out[:cut]
	} else {
		out = out[:1] // keep the least-bad option; flagged later by CNE
	}
	if len(out) > ins.opt.MaxOptions {
		kept := make([]aOption, 0, ins.opt.MaxOptions)
		stridef := float64(len(out)-1) / float64(ins.opt.MaxOptions-1)
		for i := 0; i < ins.opt.MaxOptions; i++ {
			kept = append(kept, out[int(float64(i)*stridef+0.5)])
		}
		out = kept
	}
	return append([]aOption(nil), out...)
}

// realize mirrors Inserter.realize, grouping positions per edge in
// first-seen order so node-ID assignment matches the pointer path exactly.
func (ins *arenaInserter) realize(poss []abufPos) int {
	byEdge := map[int32][]float64{}
	var edges []int32
	for _, p := range poss {
		if _, ok := byEdge[p.edge]; !ok {
			edges = append(edges, p.edge)
		}
		byEdge[p.edge] = append(byEdge[p.edge], p.dist)
	}
	added := 0
	for _, edge := range edges {
		dists := byEdge[edge]
		sort.Float64s(dists)
		scale := 1.0
		if el := ins.a.EdgeLen(edge); el > 0 {
			scale = ins.a.Route(edge).Length() / el
		}
		consumed := 0.0
		target := edge
		for _, d := range dists {
			rd := d * scale
			b := ins.a.InsertOnEdge(target, rd-consumed, ctree.Buffer)
			ins.a.SetBuf(b, ins.comp)
			consumed = rd
			// After the split the lower half is still `target`'s edge.
			added++
		}
	}
	return added
}

// CorrectPolarityArena is CorrectPolarity on an arena: same bottom-up
// uniform-polarity marking, same minimal antichain, same insertion sites.
func CorrectPolarityArena(a *ctree.Arena, inv tech.Composite, obs *geom.ObstacleSet) int {
	n := a.Len()
	// parity[i]: #inverters on the root path, mod 2 (sinks want 0).
	parity := make([]int8, n)
	var walk func(i int32, p int8)
	walk = func(i int32, p int8) {
		if a.Kind[i] == ctree.Buffer {
			p ^= 1
		}
		parity[i] = p
		for _, c := range a.Children(i) {
			walk(c, p)
		}
	}
	walk(a.Root(), 0)

	// uniform[i]: 0 or 1 when all downstream sinks share that parity,
	// -1 when mixed, -2 when the subtree has no sinks.
	uniform := make([]int8, n)
	a.PostOrder(func(i int32) {
		if a.Kind[i] == ctree.Sink {
			uniform[i] = parity[i]
			return
		}
		u := int8(-2)
		for _, c := range a.Children(i) {
			cu := uniform[c]
			if cu == -2 {
				continue
			}
			if u == -2 {
				u = cu
			} else if u != cu {
				u = -1
			}
		}
		uniform[i] = u
	})

	var marked []int32
	a.PreOrder(func(i int32) {
		if u := uniform[i]; u == 0 || u == 1 {
			if a.Parent[i] < 0 || uniform[a.Parent[i]] == -1 {
				marked = append(marked, i)
			}
		}
	})

	added := 0
	for _, site := range marked {
		if uniform[site] != 1 {
			continue // already correct polarity
		}
		if a.Parent[site] < 0 {
			// Whole tree inverted: one inverter at the top of the tree (at
			// the source output, ahead of every trunk edge).
			b := a.AddChildL(site, ctree.Buffer, a.Loc[site])
			a.SetBuf(b, inv)
			for _, c := range append([]int32(nil), a.Children(site)...) {
				if c == b {
					continue
				}
				route := append(geom.Polyline(nil), a.Route(c)...)
				a.Detach(c)
				a.Attach(c, b, route)
			}
			added++
			continue
		}
		insertInverterAboveArena(a, site, a.Route(site).Length(), inv, obs)
		added++
	}
	return added
}

// CorrectSinkPolarityArena repairs one sink's inversion parity in place:
// when the root path crosses an odd number of inverting stages, one
// inverter lands at the sink end of its edge — the site the antichain pass
// picks for an isolated wrong-parity sink. Returns the inverters added (0
// or 1). This is the scoped form ECO repair uses: on a polarity-correct
// base only the re-attached sinks can be wrong, so fixing them one by one
// replaces the whole-tree parity scan.
func CorrectSinkPolarityArena(a *ctree.Arena, sink int32, inv tech.Composite, obs *geom.ObstacleSet) int {
	p := 0
	for i := sink; i >= 0; i = a.Parent[i] {
		if a.Kind[i] == ctree.Buffer {
			p ^= 1
		}
	}
	if p == 0 {
		return 0
	}
	insertInverterAboveArena(a, sink, a.Route(sink).Length(), inv, obs)
	return 1
}

// insertInverterAboveArena mirrors insertInverterAbove on a slot index.
func insertInverterAboveArena(a *ctree.Arena, n int32, d float64, inv tech.Composite, obs *geom.ObstacleSet) int32 {
	if obs != nil {
		step := 25.0
		route := a.Route(n)
		for d > 0 && obs.BlocksPoint(route.At(d)) {
			d -= step
			if d < 0 {
				d = 0
			}
		}
	}
	b := a.InsertOnEdge(n, d, ctree.Buffer)
	a.SetBuf(b, inv)
	return b
}

// InvertedSinksArena returns the sinks whose current polarity differs from
// the source (parity 1), in pre-order — InvertedSinks on slots.
func InvertedSinksArena(a *ctree.Arena) []int32 {
	var out []int32
	var walk func(i int32, p int)
	walk = func(i int32, p int) {
		if a.Kind[i] == ctree.Buffer {
			p ^= 1
		}
		if a.Kind[i] == ctree.Sink && p == 1 {
			out = append(out, i)
		}
		for _, c := range a.Children(i) {
			walk(c, p)
		}
	}
	walk(a.Root(), 0)
	return out
}

// InsertBestCompositeArena is InsertBestComposite on an arena: candidate
// insertions fan out over flat-copy arena clones, and only the Elmore
// judging of each candidate materializes a pointer tree (the decision
// sequence — budget test, slew test, fallback ranking — is identical to the
// pointer sweep because the materialized tree is bit-identical to the
// pointer path's clone).
func InsertBestCompositeArena(a *ctree.Arena, ladder []tech.Composite, capLimit, gamma float64, opt Options) (*SweepResult, error) {
	if len(ladder) == 0 {
		return nil, fmt.Errorf("buffering: empty composite ladder")
	}
	budget := (1 - gamma) * capLimit
	corner := a.Tech.Reference()

	insert := InsertArena
	if opt.Mode != "vg" {
		insert = BalancedInsertArena
	}
	var best *SweepResult
	var bestArena *ctree.Arena
	bestViol := int(^uint(0) >> 1)
	for i := len(ladder) - 1; i >= 0; i-- { // strongest first
		comp := ladder[i]
		work := a.Clone()
		added, err := insert(work, comp, opt)
		if err != nil {
			continue
		}
		workTree, err := work.ToTree()
		if err != nil {
			continue
		}
		res, err := (&analysis.Elmore{}).Evaluate(workTree, corner)
		if err != nil {
			continue
		}
		_, worst := res.MinMaxRise()
		cand := &SweepResult{Composite: comp, Added: added, TotalCap: work.TotalCap(), WorstLat: worst}
		if cand.TotalCap <= budget && res.SlewViol == 0 {
			best, bestArena = cand, work
			break
		}
		if best == nil || res.SlewViol < bestViol ||
			(res.SlewViol == bestViol && cand.WorstLat < best.WorstLat) {
			best, bestArena, bestViol = cand, work, res.SlewViol
		}
	}
	if bestArena == nil {
		return nil, fmt.Errorf("buffering: no composite produced a solution")
	}
	*a = *bestArena
	return best, nil
}

// StageLoadArena returns the capacitive load the driver at n sees: its
// children's wire capacitance plus sink loads, with downstream buffered
// nodes contributing their input capacitance instead of their subtrees
// (the stage boundary of the composite-buffered tree). The ECO repair path
// uses it to decide whether a re-attached sink overloads its stage.
func StageLoadArena(a *ctree.Arena, n int32) float64 {
	load := 0.0
	var walk func(int32)
	walk = func(c int32) {
		load += a.EdgeCap(c)
		if a.BufN[c] > 0 {
			load += (tech.Composite{Type: a.BufType[c], N: int(a.BufN[c])}).Cin()
			return
		}
		if a.Kind[c] == ctree.Sink {
			load += a.SinkCap[c]
			return
		}
		for _, k := range a.Children(c) {
			walk(k)
		}
	}
	for _, c := range a.Children(n) {
		walk(c)
	}
	return load
}

// RebufferSinkArena restores the stage-load invariant around one
// re-attached sink: when the nearest buffered ancestor's stage load
// exceeds the composite's safe load, the van Ginneken DP runs over just
// the sink's own edge and realizes its best buffered option, decoupling
// the new load from the existing stage. The rest of the tree's buffering
// is never touched — this is the locality-scoped repair ECO applications
// rely on. Returns the number of buffers added (0 when the stage still
// has headroom or the sink is detached).
func RebufferSinkArena(a *ctree.Arena, sink int32, comp tech.Composite, opt Options) int {
	if a.Parent[sink] < 0 || a.Kind[sink] != ctree.Sink {
		return 0
	}
	opt.defaults()
	ins := &arenaInserter{a: a, comp: comp, opt: opt}
	ins.maxCap = opt.MaxCap
	if ins.maxCap == 0 {
		ins.maxCap = SafeLoad(a.Tech, comp)
	}
	if ins.maxCap <= comp.Cin() {
		return 0
	}
	anc := a.Parent[sink]
	for a.Parent[anc] >= 0 && a.BufN[anc] == 0 {
		anc = a.Parent[anc]
	}
	if StageLoadArena(a, anc) <= ins.maxCap {
		return 0
	}
	// The same option scoring InsertArena uses at the root, with the
	// decoupling composite itself as the driver model; unbuffered options
	// cannot reduce the overloaded stage, so only buffered ones compete.
	opts := ins.edgeOptions(sink)
	best, bestScore := -1, math.Inf(1)
	for i, o := range opts {
		if o.bufs == nil {
			continue
		}
		score := comp.Rout()*(comp.Cout()+o.cap) + o.delay
		if o.cap > ins.maxCap {
			score += 1e12 // admissible only if nothing better exists
		}
		if score < bestScore {
			best, bestScore = i, score
		}
	}
	if best < 0 {
		return 0
	}
	var poss []abufPos
	opts[best].bufs.collect(&poss)
	return ins.realize(poss)
}
