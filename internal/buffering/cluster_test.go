package buffering

import (
	"testing"

	"contango/internal/analysis"
	"contango/internal/ctree"
	"contango/internal/geom"
	"contango/internal/tech"
)

func TestSinkClusterSplit(t *testing.T) {
	tk := tech.Default45()
	tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
	hub := tr.AddChild(tr.Root, ctree.Internal, geom.Pt(3000, 0))
	for i := 0; i < 20; i++ {
		tr.AddSink(hub, geom.Pt(3000+float64(i), 0), 35, "")
	}
	comp := tech.Composite{Type: tk.Inverters[1], N: 8}
	added, err := BalancedInsert(tr, comp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("added %d buffers", added)
	safe := SafeLoad(tk, comp)
	net := analysis.Extract(tr, 0)
	for _, s := range net.Stages {
		drv := "source"
		if s.Driver != nil {
			drv = "buf"
		}
		driven := s.TotalCap()
		if s.Driver != nil {
			driven -= s.Driver.Buf.Cout()
		}
		t.Logf("stage %d driver=%s driven=%.1f", s.Index, drv, driven)
		if s.Driver != nil && driven > safe {
			t.Errorf("stage %d overloaded: %.1f > %.1f", s.Index, driven, safe)
		}
	}
}
