package buffering

import (
	"fmt"
	"math/rand"
	"testing"

	"contango/internal/ctree"
	"contango/internal/dme"
	"contango/internal/geom"
	"contango/internal/tech"
)

// buildBoth constructs the same ZST through both paths.
func buildBoth(t *testing.T, seed int64, n int) (*ctree.Tree, *ctree.Arena) {
	t.Helper()
	tk := tech.Default45()
	rng := rand.New(rand.NewSource(seed))
	sinks := make([]dme.Sink, n)
	for i := range sinks {
		sinks[i] = dme.Sink{
			Loc:  geom.Pt(rng.Float64()*5000, rng.Float64()*4000),
			Cap:  20 + rng.Float64()*30,
			Name: fmt.Sprintf("s%d", i),
		}
	}
	tr := dme.BuildZST(tk, geom.Pt(0, 2000), sinks, dme.Options{})
	a := dme.BuildZSTArena(tk, geom.Pt(0, 2000), sinks, dme.Options{})
	return tr, a
}

func expectEqual(t *testing.T, label string, tr *ctree.Tree, a *ctree.Arena) {
	t.Helper()
	if err := a.Validate(); err != nil {
		t.Fatalf("%s: arena invalid: %v", label, err)
	}
	got, err := a.ToTree()
	if err != nil {
		t.Fatalf("%s: ToTree: %v", label, err)
	}
	if err := ctree.Equal(tr, got); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
}

func TestBalancedInsertArenaMatchesPointer(t *testing.T) {
	tk := tech.Default45()
	comp := tech.Composite{Type: tk.Inverters[1], N: 4}
	for _, n := range []int{1, 9, 60, 300, 900} {
		tr, a := buildBoth(t, int64(n), n)
		wantAdded, err := BalancedInsert(tr, comp, Options{})
		if err != nil {
			t.Fatal(err)
		}
		gotAdded, err := BalancedInsertArena(a, comp, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if wantAdded != gotAdded {
			t.Fatalf("n=%d: added %d buffers via arena, %d via pointer", n, gotAdded, wantAdded)
		}
		expectEqual(t, fmt.Sprintf("balanced n=%d", n), tr, a)
	}
}

func TestInsertArenaMatchesPointer(t *testing.T) {
	tk := tech.Default45()
	comp := tech.Composite{Type: tk.Inverters[1], N: 4}
	for _, n := range []int{5, 40, 150} {
		tr, a := buildBoth(t, int64(100+n), n)
		wantAdded, err := Insert(tr, comp, Options{Mode: "vg"})
		if err != nil {
			t.Fatal(err)
		}
		gotAdded, err := InsertArena(a, comp, Options{Mode: "vg"})
		if err != nil {
			t.Fatal(err)
		}
		if wantAdded != gotAdded {
			t.Fatalf("n=%d: added %d buffers via arena, %d via pointer", n, gotAdded, wantAdded)
		}
		expectEqual(t, fmt.Sprintf("vg n=%d", n), tr, a)
	}
}

func TestCorrectPolarityArenaMatchesPointer(t *testing.T) {
	tk := tech.Default45()
	comp := tech.Composite{Type: tk.Inverters[1], N: 2}
	for _, n := range []int{8, 70, 400} {
		tr, a := buildBoth(t, int64(200+n), n)
		if _, err := BalancedInsert(tr, comp, Options{}); err != nil {
			t.Fatal(err)
		}
		if _, err := BalancedInsertArena(a, comp, Options{}); err != nil {
			t.Fatal(err)
		}
		want := CorrectPolarity(tr, comp, nil)
		got := CorrectPolarityArena(a, comp, nil)
		if want != got {
			t.Fatalf("n=%d: arena added %d inverters, pointer %d", n, got, want)
		}
		if len(InvertedSinks(tr)) != 0 {
			t.Fatalf("n=%d: pointer path left inverted sinks", n)
		}
		expectEqual(t, fmt.Sprintf("polarity n=%d", n), tr, a)
	}
}

func TestSweepArenaMatchesPointer(t *testing.T) {
	tk := tech.Default45()
	ladder := tk.CompositeLadder()
	for _, n := range []int{30, 250} {
		tr, a := buildBoth(t, int64(300+n), n)
		capLimit := tr.WireCap() * 3
		want, err := InsertBestComposite(tr, ladder, capLimit, 0.1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := InsertBestCompositeArena(a, ladder, capLimit, 0.1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if want.Composite != got.Composite || want.Added != got.Added ||
			want.TotalCap != got.TotalCap || want.WorstLat != got.WorstLat {
			t.Fatalf("n=%d: sweep result %+v != %+v", n, got, want)
		}
		expectEqual(t, fmt.Sprintf("sweep n=%d", n), tr, a)
	}
}
