package buffering

import (
	"math"
	"math/rand"
	"testing"

	"contango/internal/analysis"
	"contango/internal/ctree"
	"contango/internal/dme"
	"contango/internal/geom"
	"contango/internal/tech"
)

func comp8(tk *tech.Tech) tech.Composite {
	return tech.Composite{Type: tk.Inverters[1], N: 8}
}

func TestInsertFixesSlewOnLongLine(t *testing.T) {
	tk := tech.Default45()
	tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
	tr.AddSink(tr.Root, geom.Pt(12000, 0), 35, "far")
	res0, _ := (&analysis.Elmore{}).Evaluate(tr, tk.Reference())
	if res0.SlewViol == 0 {
		t.Fatal("test needs an initial slew violation")
	}
	added, err := Insert(tr, comp8(tk), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if added == 0 {
		t.Fatal("no buffers inserted on a 12 mm line")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	res1, _ := (&analysis.Elmore{}).Evaluate(tr, tk.Reference())
	if res1.SlewViol != 0 {
		t.Errorf("slew violations remain: %d (max %v)", res1.SlewViol, res1.MaxSlew)
	}
	// Buffering a long resistive line must also cut the latency (the
	// classic quadratic-to-linear improvement).
	if res1.Rise[tr.Sinks()[0].ID] >= res0.Rise[tr.Sinks()[0].ID] {
		t.Errorf("latency did not improve: %v -> %v",
			res0.Rise[tr.Sinks()[0].ID], res1.Rise[tr.Sinks()[0].ID])
	}
}

func TestEveryStageWithinSafeLoad(t *testing.T) {
	tk := tech.Default45()
	rng := rand.New(rand.NewSource(21))
	var sinks []dme.Sink
	for i := 0; i < 80; i++ {
		sinks = append(sinks, dme.Sink{
			Loc: geom.Pt(rng.Float64()*9000, rng.Float64()*9000),
			Cap: 20 + rng.Float64()*30,
		})
	}
	tr := dme.BuildZST(tk, geom.Pt(0, 4500), sinks, dme.Options{})
	comp := comp8(tk)
	if _, err := Insert(tr, comp, Options{}); err != nil {
		t.Fatal(err)
	}
	safe := SafeLoad(tk, comp)
	net := analysis.Extract(tr, 0)
	for _, s := range net.Stages {
		if s.Driver == nil {
			continue
		}
		if got := s.TotalCap() - s.Driver.Buf.Cout(); got > safe*1.001 {
			t.Errorf("stage driven by buffer %d carries %v fF > safe %v", s.Driver.ID, got, safe)
		}
	}
}

func TestBuffersAvoidObstacles(t *testing.T) {
	tk := tech.Default45()
	obs := geom.NewObstacleSet([]geom.Obstacle{{Rect: geom.NewRect(2000, -500, 9000, 500)}})
	tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
	tr.AddSink(tr.Root, geom.Pt(11000, 0), 35, "far") // wire runs straight over the macro
	added, err := Insert(tr, comp8(tk), Options{Obs: obs})
	if err != nil {
		t.Fatal(err)
	}
	if added == 0 {
		t.Fatal("expected buffers")
	}
	for _, b := range tr.Buffers() {
		if obs.BlocksPoint(b.Loc) {
			t.Errorf("buffer %d placed inside obstacle at %v", b.ID, b.Loc)
		}
	}
}

func TestMultipleBuffersOneEdgeOrdered(t *testing.T) {
	tk := tech.Default45()
	tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
	s := tr.AddSink(tr.Root, geom.Pt(20000, 0), 35, "far")
	if _, err := Insert(tr, comp8(tk), Options{}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Walking from the sink upward must reach the root, visiting each
	// buffer once, with strictly increasing distance-to-sink.
	n := 0
	for cur := s; cur.Parent != nil; cur = cur.Parent {
		n++
		if n > 1000 {
			t.Fatal("cycle")
		}
	}
	if len(tr.Buffers()) < 3 {
		t.Errorf("20 mm line should need several buffers, got %d", len(tr.Buffers()))
	}
}

func TestInsertPreservesSinksProperty(t *testing.T) {
	tk := tech.Default45()
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 10; iter++ {
		var sinks []dme.Sink
		n := 5 + rng.Intn(60)
		for i := 0; i < n; i++ {
			sinks = append(sinks, dme.Sink{
				Loc: geom.Pt(rng.Float64()*8000, rng.Float64()*8000),
				Cap: 15 + rng.Float64()*40,
			})
		}
		tr := dme.BuildZST(tk, geom.Pt(0, 0), sinks, dme.Options{})
		if _, err := Insert(tr, comp8(tk), Options{}); err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if got := len(tr.Sinks()); got != n {
			t.Fatalf("iter %d: sinks %d -> %d", iter, n, got)
		}
		for _, b := range tr.Buffers() {
			if b.Buf == nil {
				t.Fatal("buffer without composite")
			}
		}
	}
}

func TestInsertBestCompositePicksStrongestFitting(t *testing.T) {
	tk := tech.Default45()
	rng := rand.New(rand.NewSource(41))
	var sinks []dme.Sink
	for i := 0; i < 60; i++ {
		sinks = append(sinks, dme.Sink{
			Loc: geom.Pt(rng.Float64()*6000, rng.Float64()*6000),
			Cap: 20 + rng.Float64()*30,
		})
	}
	tr := dme.BuildZST(tk, geom.Pt(0, 3000), sinks, dme.Options{})
	ladder := tk.BatchLadder("Small", 8)
	capLimit := tr.TotalCap() * 4
	res, err := InsertBestComposite(tr, ladder, capLimit, 0.10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCap > 0.9*capLimit {
		t.Errorf("cap %v exceeds 90%% budget of %v", res.TotalCap, capLimit)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Buffers()) != res.Added {
		t.Errorf("added=%d but tree has %d buffers", res.Added, len(tr.Buffers()))
	}
	// A tighter budget must pick a weaker (or equal) composite.
	tr2 := dme.BuildZST(tk, geom.Pt(0, 3000), sinks, dme.Options{})
	res2, err := InsertBestComposite(tr2, ladder, capLimit/3, 0.10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Composite.N > res.Composite.N {
		t.Errorf("tighter budget chose stronger composite: %v vs %v", res2.Composite, res.Composite)
	}
}

func TestPolarityCorrection(t *testing.T) {
	tk := tech.Default45()
	rng := rand.New(rand.NewSource(51))
	var sinks []dme.Sink
	for i := 0; i < 70; i++ {
		sinks = append(sinks, dme.Sink{
			Loc: geom.Pt(rng.Float64()*9000, rng.Float64()*9000),
			Cap: 20 + rng.Float64()*30,
		})
	}
	tr := dme.BuildZST(tk, geom.Pt(0, 0), sinks, dme.Options{})
	if _, err := Insert(tr, comp8(tk), Options{}); err != nil {
		t.Fatal(err)
	}
	inverted := len(InvertedSinks(tr))
	buffersBefore := map[int]bool{}
	for _, b := range tr.Buffers() {
		buffersBefore[b.ID] = true
	}
	added := CorrectPolarity(tr, tech.Composite{Type: tk.Inverters[1], N: 2}, nil)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(InvertedSinks(tr)); got != 0 {
		t.Fatalf("%d sinks still inverted after correction", got)
	}
	if inverted > 0 && added == 0 {
		t.Fatal("inverted sinks existed but nothing was added")
	}
	if added > inverted && inverted > 0 {
		t.Errorf("added %d inverters for %d inverted sinks (worse than naive)", added, inverted)
	}
	// At most one ADDED inverter on any root-to-sink path.
	for _, s := range tr.Sinks() {
		cnt := 0
		for cur := s; cur != nil; cur = cur.Parent {
			if cur.Kind == ctree.Buffer && !buffersBefore[cur.ID] {
				cnt++
			}
		}
		if cnt > 1 {
			t.Errorf("sink %d has %d added inverters on its path", s.ID, cnt)
		}
	}
}

// TestPolarityMinimalityVsBruteForce checks Proposition 2's optimality claim
// on random small trees against exhaustive search over antichains.
func TestPolarityMinimalityVsBruteForce(t *testing.T) {
	tk := tech.Default45()
	rng := rand.New(rand.NewSource(61))
	inv := tech.Composite{Type: tk.Inverters[1], N: 1}
	for iter := 0; iter < 60; iter++ {
		// Random tree with random buffers (possibly creating odd parities).
		tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
		nodes := []*ctree.Node{tr.Root}
		nSinks := 0
		for len(nodes) < 10 {
			p := nodes[rng.Intn(len(nodes))]
			if p.Kind == ctree.Sink {
				continue
			}
			loc := geom.Pt(float64(rng.Intn(2000)), float64(rng.Intn(2000)))
			var n *ctree.Node
			switch rng.Intn(3) {
			case 0:
				n = tr.AddSink(p, loc, 30, "")
				nSinks++
			case 1:
				n = tr.AddChild(p, ctree.Internal, loc)
			default:
				n = tr.AddChild(p, ctree.Buffer, loc)
				c := inv
				n.Buf = &c
			}
			nodes = append(nodes, n)
		}
		if nSinks == 0 {
			continue
		}
		want := bruteForceMinInverters(tr)
		got := CorrectPolarity(tr, inv, nil)
		if got != want {
			t.Fatalf("iter %d: algorithm added %d, brute force needs %d", iter, got, want)
		}
		if len(InvertedSinks(tr)) != 0 {
			t.Fatalf("iter %d: sinks remain inverted", iter)
		}
	}
}

// bruteForceMinInverters finds the minimum number of insert-above-node
// actions that flips exactly the inverted sinks, with at most one action per
// root-to-sink path.
func bruteForceMinInverters(tr *ctree.Tree) int {
	var all []*ctree.Node
	tr.PreOrder(func(n *ctree.Node) { all = append(all, n) })
	sinks := tr.Sinks()
	wrong := map[int]bool{}
	for _, s := range InvertedSinks(tr) {
		wrong[s.ID] = true
	}
	inSubtree := func(root, n *ctree.Node) bool {
		for cur := n; cur != nil; cur = cur.Parent {
			if cur == root {
				return true
			}
		}
		return false
	}
	best := math.MaxInt32
	m := len(all)
	for mask := 0; mask < 1<<m; mask++ {
		cnt := popcount(mask)
		if cnt >= best {
			continue
		}
		ok := true
		for _, s := range sinks {
			flips := 0
			for i := 0; i < m; i++ {
				if mask&(1<<i) != 0 && inSubtree(all[i], s) {
					flips++
				}
			}
			if flips > 1 || (flips == 1) != wrong[s.ID] {
				ok = false
				break
			}
		}
		if ok {
			best = cnt
		}
	}
	return best
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func TestInvertedSinksCounts(t *testing.T) {
	tk := tech.Default45()
	tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
	a := tr.AddSink(tr.Root, geom.Pt(100, 0), 30, "a")
	b := tr.AddSink(tr.Root, geom.Pt(0, 100), 30, "b")
	inv := tech.Composite{Type: tk.Inverters[1], N: 1}
	bb := tr.InsertOnEdge(a, 50, ctree.Buffer)
	bb.Buf = &inv
	got := InvertedSinks(tr)
	if len(got) != 1 || got[0] != a {
		t.Errorf("InvertedSinks=%v want [a]", got)
	}
	_ = b
}

func TestSafeLoadScalesWithStrength(t *testing.T) {
	tk := tech.Default45()
	weak := SafeLoad(tk, tech.Composite{Type: tk.Inverters[1], N: 1})
	strong := SafeLoad(tk, tech.Composite{Type: tk.Inverters[1], N: 8})
	if strong != 8*weak {
		t.Errorf("safe load should scale linearly: %v vs %v", strong, weak)
	}
}
