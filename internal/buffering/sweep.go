package buffering

import (
	"fmt"
	"math"

	"contango/internal/analysis"
	"contango/internal/ctree"
	"contango/internal/tech"
)

// SweepResult reports the outcome of the composite-configuration sweep.
type SweepResult struct {
	Composite tech.Composite
	Added     int
	TotalCap  float64
	WorstLat  float64 // Elmore worst source-to-sink latency, ps
}

// InsertBestComposite implements the paper's Section IV-C strategy: run fast
// buffer insertion with each composite configuration from the ladder and
// keep the solution with the strongest composite whose total capacitance
// stays within (1−gamma) of the capacitance limit — the gamma reserve (10%
// in the paper) is left for the downstream SPICE-driven optimizations.
//
// The tree is mutated to the winning solution. Candidates are tried from
// strongest to weakest so the first admissible one wins; ties in strength
// never occur because the ladder is strictly ordered.
func InsertBestComposite(tr *ctree.Tree, ladder []tech.Composite, capLimit, gamma float64, opt Options) (*SweepResult, error) {
	if len(ladder) == 0 {
		return nil, fmt.Errorf("buffering: empty composite ladder")
	}
	budget := (1 - gamma) * capLimit
	// The sweep judges candidates at the set's reference corner; going
	// through the role accessor (not index 0) keeps custom corner sets —
	// where the fast corner may sit anywhere — evaluating the right one.
	corner := tr.Tech.Reference()

	insert := Insert
	if opt.Mode != "vg" {
		insert = BalancedInsert
	}
	var best *SweepResult
	var bestTree *ctree.Tree
	bestViol := int(^uint(0) >> 1)
	for i := len(ladder) - 1; i >= 0; i-- { // strongest first
		comp := ladder[i]
		work := tr.Clone()
		added, err := insert(work, comp, opt)
		if err != nil {
			continue
		}
		res, err := (&analysis.Elmore{}).Evaluate(work, corner)
		if err != nil {
			continue
		}
		_, worst := res.MinMaxRise()
		cand := &SweepResult{Composite: comp, Added: added, TotalCap: work.TotalCap(), WorstLat: worst}
		if cand.TotalCap <= budget && res.SlewViol == 0 {
			best, bestTree = cand, work
			break
		}
		// Remember the least-bad fallback in case nothing fits: fewest
		// slew violations first, then lowest worst latency.
		if best == nil || res.SlewViol < bestViol ||
			(res.SlewViol == bestViol && cand.WorstLat < best.WorstLat) {
			best, bestTree, bestViol = cand, work, res.SlewViol
		}
	}
	if bestTree == nil {
		return nil, fmt.Errorf("buffering: no composite produced a solution")
	}
	adoptFrom(tr, bestTree)
	return best, nil
}

// adoptFrom replaces tr's contents with those of donor (which must share the
// same Tech). This keeps the caller's pointer stable while the sweep works
// on clones.
func adoptFrom(tr, donor *ctree.Tree) {
	*tr = *donor
}

// WorstLatency returns the worst Elmore sink latency at the reference
// corner, as a cheap quality indicator used by the sweep and by tests.
func WorstLatency(tr *ctree.Tree) float64 {
	res, err := (&analysis.Elmore{}).Evaluate(tr, tr.Tech.Reference())
	if err != nil {
		return math.Inf(1)
	}
	_, worst := res.MinMaxRise()
	return worst
}
