package buffering

import (
	"contango/internal/ctree"
	"contango/internal/geom"
	"contango/internal/tech"
)

// CorrectPolarity fixes inverted sinks after inverter-based buffer insertion
// (paper Section IV-D, Proposition 2). It traverses the tree bottom-up and
// marks each node (i) whose downstream sinks all share one polarity while
// (ii) its parent's do not; an inverter is inserted just above every marked
// node whose sinks are inverted. The algorithm runs in O(n), corrects every
// inverted sink, and adds the minimum possible number of inverters subject
// to at most one added inverter on any root-to-sink path (the added set must
// be an antichain whose subtrees exactly cover the inverted sinks, and the
// maximal uniformly-inverted subtree roots are that minimum antichain).
//
// Inserted inverters use the given composite. Sites inside obstacles are
// slid up the edge to the nearest legal spot.
func CorrectPolarity(tr *ctree.Tree, inv tech.Composite, obs *geom.ObstacleSet) int {
	// parity[id]: #inverters on the root path, mod 2 (sinks want 0).
	parity := make(map[int]int, tr.MaxID())
	var walk func(n *ctree.Node, p int)
	walk = func(n *ctree.Node, p int) {
		if n.Kind == ctree.Buffer {
			p ^= 1
		}
		parity[n.ID] = p
		for _, c := range n.Children {
			walk(c, p)
		}
	}
	walk(tr.Root, 0)

	// uniform[id]: 0 or 1 when all downstream sinks share that parity,
	// -1 when mixed, -2 when the subtree has no sinks.
	uniform := make(map[int]int, tr.MaxID())
	tr.PostOrder(func(n *ctree.Node) {
		if n.Kind == ctree.Sink {
			uniform[n.ID] = parity[n.ID]
			return
		}
		u := -2
		for _, c := range n.Children {
			cu := uniform[c.ID]
			if cu == -2 {
				continue
			}
			if u == -2 {
				u = cu
			} else if u != cu {
				u = -1
			}
		}
		uniform[n.ID] = u
	})

	// Marked nodes: uniform subtrees whose parent is not uniform. The root
	// counts as marked when the whole tree is uniform.
	var marked []*ctree.Node
	tr.PreOrder(func(n *ctree.Node) {
		if u := uniform[n.ID]; u == 0 || u == 1 {
			if n.Parent == nil || uniform[n.Parent.ID] == -1 {
				marked = append(marked, n)
			}
		}
	})

	added := 0
	for _, n := range marked {
		if uniform[n.ID] != 1 {
			continue // already correct polarity
		}
		site := n
		if site.Parent == nil {
			// Whole tree inverted: one inverter at the top of the tree (at
			// the source output, ahead of every trunk edge).
			b := tr.AddChild(site, ctree.Buffer, site.Loc)
			comp := inv
			b.Buf = &comp
			for _, c := range append([]*ctree.Node(nil), site.Children...) {
				if c == b {
					continue
				}
				route := c.Route
				tr.Detach(c)
				tr.Attach(c, b, route)
			}
			added++
			continue
		}
		insertInverterAbove(tr, site, site.Route.Length(), inv, obs)
		added++
	}
	return added
}

// insertInverterAbove splits node n's parent edge at route distance d from
// the parent and places an inverter there, sliding up toward the parent when
// the spot is inside an obstacle.
func insertInverterAbove(tr *ctree.Tree, n *ctree.Node, d float64, inv tech.Composite, obs *geom.ObstacleSet) *ctree.Node {
	if obs != nil {
		step := 25.0
		for d > 0 && obs.BlocksPoint(n.Route.At(d)) {
			d -= step
			if d < 0 {
				d = 0
			}
		}
	}
	b := tr.InsertOnEdge(n, d, ctree.Buffer)
	comp := inv
	b.Buf = &comp
	return b
}

// InvertedSinks returns the sinks whose current polarity differs from the
// source (parity 1), in pre-order. Used for Table II and by tests.
func InvertedSinks(tr *ctree.Tree) []*ctree.Node {
	var out []*ctree.Node
	var walk func(n *ctree.Node, p int)
	walk = func(n *ctree.Node, p int) {
		if n.Kind == ctree.Buffer {
			p ^= 1
		}
		if n.Kind == ctree.Sink && p == 1 {
			out = append(out, n)
		}
		for _, c := range n.Children {
			walk(c, p)
		}
	}
	walk(tr.Root, 0)
	return out
}
