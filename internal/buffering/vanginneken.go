// Package buffering inserts clock buffers into obstacle-legal trees and
// corrects sink polarity.
//
// The inserter is a van Ginneken-style bottom-up dynamic program: candidate
// option lists (downstream capacitance, worst downstream delay) propagate
// from the sinks toward the root, buffers may be placed at evenly spaced
// legal candidate sites along edges, and dominated options are pruned. With
// pruning plus an option-count cap the behavior matches the fast
// O(n log n)-flavoured variant of [Shi & Li 2005] that the paper adopts: it
// minimizes worst source-to-sink delay and naturally spares buffers on fast
// paths, which keeps skew low when the initial tree is Elmore-balanced.
//
// Because clock inverters flip polarity, insertion is followed by the
// paper's provably-minimal sink-polarity correction (Proposition 2),
// implemented in polarity.go.
package buffering

import (
	"fmt"
	"math"
	"sort"

	"contango/internal/ctree"
	"contango/internal/geom"
	"contango/internal/tech"
)

// Options configures buffer insertion.
type Options struct {
	// Mode selects the inserter: "balanced" (default, bottom-up load
	// threshold, stage-count balanced) or "vg" (van Ginneken DP, minimum
	// worst delay).
	Mode string
	// Step is the candidate spacing along edges in µm (default 200).
	Step float64
	// Obs blocks candidate sites inside obstacles (may be nil).
	Obs *geom.ObstacleSet
	// MaxOptions caps the option list per point (default 24); smaller is
	// faster and slightly less optimal — this is the fast-variant knob.
	MaxOptions int
	// MaxCap overrides the slew-safe load per driver (fF). 0 derives it
	// from the technology slew limit and the composite strength.
	MaxCap float64
}

func (o *Options) defaults() {
	if o.Step == 0 {
		o.Step = 200
	}
	if o.MaxOptions == 0 {
		o.MaxOptions = 24
	}
}

// bufPos identifies a chosen buffer site: on the parent edge of tree node
// Edge, at Manhattan distance Dist from the parent along the route.
type bufPos struct {
	edge *ctree.Node
	dist float64
}

// plist is a persistent list of buffer placements with O(1) concatenation.
type plist struct {
	pos         bufPos
	leaf        bool
	left, right *plist
}

func cons(pos bufPos, rest *plist) *plist {
	leaf := &plist{pos: pos, leaf: true}
	if rest == nil {
		return leaf
	}
	return &plist{left: leaf, right: rest}
}

func join(a, b *plist) *plist {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &plist{left: a, right: b}
}

func (p *plist) collect(out *[]bufPos) {
	if p == nil {
		return
	}
	if p.leaf {
		*out = append(*out, p.pos)
		return
	}
	p.left.collect(out)
	p.right.collect(out)
}

// option is one Pareto point of the DP: downstream cap seen from here and
// the worst delay from here to any downstream sink, with the placements
// that realize it.
type option struct {
	cap   float64
	delay float64
	bufs  *plist
}

// Inserter runs van Ginneken insertion for one composite buffer.
type Inserter struct {
	tr   *ctree.Tree
	comp tech.Composite
	opt  Options

	maxCap float64
	rw, cw float64 // wire unit R (kΩ/µm), C (fF/µm) — per edge width below
}

// SafeLoad returns the slew-safe load (fF) for a composite at the tree's
// slew limit: 2.2·R·C = limit with a 55% margin. The margin is deliberately
// generous: measured transient slews run well above the single-pole estimate
// because input slews degrade through deep chains, and the snaking passes
// need headroom to add capacitance without tripping the limit.
func SafeLoad(t *tech.Tech, comp tech.Composite) float64 {
	return 0.45 * t.SlewLimit / (2.2 * comp.Rout())
}

// Insert places buffers of the given composite throughout the tree,
// minimizing worst Elmore source-to-sink delay subject to the slew-safe load
// cap. It returns the number of buffers added.
func Insert(tr *ctree.Tree, comp tech.Composite, opt Options) (int, error) {
	opt.defaults()
	ins := &Inserter{tr: tr, comp: comp, opt: opt}
	ins.maxCap = opt.MaxCap
	if ins.maxCap == 0 {
		ins.maxCap = SafeLoad(tr.Tech, comp)
	}
	if ins.maxCap <= comp.Cin() {
		return 0, fmt.Errorf("buffering: composite %v cannot even drive its own input cap", comp)
	}

	// Bottom-up DP from each root child.
	var rootOpts []option
	for i, c := range tr.Root.Children {
		co := ins.edgeOptions(c)
		if i == 0 {
			rootOpts = co
		} else {
			rootOpts = ins.mergeOptions(rootOpts, co)
		}
	}
	if len(rootOpts) == 0 {
		return 0, nil // empty tree
	}
	// Pick the option minimizing source delay; the source must also be able
	// to drive it safely.
	best := -1
	bestScore := math.Inf(1)
	for i, o := range rootOpts {
		score := tr.SourceR*o.cap + o.delay
		if o.cap > ins.maxCap {
			score += 1e12 // admissible only if nothing better exists
		}
		if score < bestScore {
			best, bestScore = i, score
		}
	}
	var poss []bufPos
	rootOpts[best].bufs.collect(&poss)
	return ins.realize(poss), nil
}

// edgeOptions computes the option list looking down node n's parent edge
// from the parent end.
func (ins *Inserter) edgeOptions(n *ctree.Node) []option {
	// Options at the node itself.
	var opts []option
	switch n.Kind {
	case ctree.Sink:
		opts = []option{{cap: n.SinkCap, delay: 0}}
	default:
		for i, c := range n.Children {
			co := ins.edgeOptions(c)
			if i == 0 {
				opts = co
			} else {
				opts = ins.mergeOptions(opts, co)
			}
		}
		if len(opts) == 0 { // childless internal node: pure stub
			opts = []option{{cap: 0, delay: 0}}
		}
	}

	// Walk up the edge, adding wire and offering buffer sites.
	w := ins.tr.Tech.Wires[n.WidthIdx]
	length := n.EdgeLen()
	cands := ins.candidates(n, length)
	prev := length
	for _, pos := range cands { // descending positions
		opts = ins.addWire(opts, w, prev-pos)
		if !ins.blocked(n, pos, length) {
			opts = ins.offerBuffer(opts, n, pos)
		}
		prev = pos
	}
	opts = ins.addWire(opts, w, prev-0)
	return ins.prune(opts)
}

// candidates returns buffer positions (distance from parent) in descending
// order: spaced Step apart measured from the child end, plus the edge top.
func (ins *Inserter) candidates(n *ctree.Node, length float64) []float64 {
	var out []float64
	for d := length - ins.opt.Step; d > 0; d -= ins.opt.Step {
		out = append(out, d)
	}
	out = append(out, 0)
	return out
}

// blocked reports whether the candidate site sits strictly inside an
// obstacle. The geometric position ignores snaking (snake length is assumed
// to be realized near the site's neighborhood).
func (ins *Inserter) blocked(n *ctree.Node, dist, length float64) bool {
	if ins.opt.Obs == nil {
		return false
	}
	geo := n.Route.Length()
	if geo <= 0 {
		return ins.opt.Obs.BlocksPoint(n.Loc)
	}
	frac := dist / length
	return ins.opt.Obs.BlocksPoint(n.Route.At(frac * geo))
}

// addWire extends every option upward through dl µm of wire.
func (ins *Inserter) addWire(opts []option, w tech.WireType, dl float64) []option {
	if dl <= 0 {
		return opts
	}
	r, c := w.RPerUm*dl, w.CPerUm*dl
	out := make([]option, len(opts))
	for i, o := range opts {
		out[i] = option{
			cap:   o.cap + c,
			delay: o.delay + r*(c/2+o.cap),
			bufs:  o.bufs,
		}
	}
	return ins.prune(out)
}

// offerBuffer adds the buffered alternative at the site (n, dist): a buffer
// driving the best downstream option.
func (ins *Inserter) offerBuffer(opts []option, n *ctree.Node, dist float64) []option {
	comp := ins.comp
	bestScore := math.Inf(1)
	bi := -1
	for i, o := range opts {
		if o.cap > ins.maxCap {
			continue // the buffer would violate slew driving this load
		}
		if score := comp.Rout()*(comp.Cout()+o.cap) + o.delay; score < bestScore {
			bestScore, bi = score, i
		}
	}
	if bi < 0 {
		return opts
	}
	buffered := option{
		cap:   comp.Cin(),
		delay: bestScore,
		bufs:  cons(bufPos{edge: n, dist: dist}, opts[bi].bufs),
	}
	return ins.prune(append(opts, buffered))
}

// mergeOptions combines option lists of sibling subtrees at their common
// parent node: caps add, delays take the max.
func (ins *Inserter) mergeOptions(a, b []option) []option {
	out := make([]option, 0, len(a)+len(b))
	for _, x := range a {
		for _, y := range b {
			out = append(out, option{
				cap:   x.cap + y.cap,
				delay: math.Max(x.delay, y.delay),
				bufs:  join(x.bufs, y.bufs),
			})
		}
	}
	return ins.prune(out)
}

// prune removes dominated options (another option with <= cap and <= delay),
// drops slew-hopeless options when safe ones exist, and caps the list.
func (ins *Inserter) prune(opts []option) []option {
	if len(opts) <= 1 {
		return opts
	}
	sort.Slice(opts, func(i, j int) bool {
		if opts[i].cap != opts[j].cap {
			return opts[i].cap < opts[j].cap
		}
		return opts[i].delay < opts[j].delay
	})
	out := opts[:0]
	bestDelay := math.Inf(1)
	for _, o := range opts {
		if o.delay < bestDelay-1e-15 {
			out = append(out, o)
			bestDelay = o.delay
		}
	}
	// Enforce the slew-safe cap when any option satisfies it.
	if out[0].cap <= ins.maxCap {
		cut := len(out)
		for i, o := range out {
			if o.cap > ins.maxCap {
				cut = i
				break
			}
		}
		out = out[:cut]
	} else {
		out = out[:1] // keep the least-bad option; flagged later by CNE
	}
	if len(out) > ins.opt.MaxOptions {
		// Keep the extremes and evenly thin the middle.
		kept := make([]option, 0, ins.opt.MaxOptions)
		stridef := float64(len(out)-1) / float64(ins.opt.MaxOptions-1)
		for i := 0; i < ins.opt.MaxOptions; i++ {
			kept = append(kept, out[int(float64(i)*stridef+0.5)])
		}
		out = kept
	}
	return append([]option(nil), out...)
}

// realize inserts buffer nodes at the chosen positions. DP distances are
// electrical (they include snaking); they are scaled onto the geometric
// route before splitting. Positions on the same edge are applied top-down so
// later distances stay valid.
func (ins *Inserter) realize(poss []bufPos) int {
	// Group by edge in first-seen order: iterating a map here would make
	// node-ID assignment (and hence encoded artifacts) vary run to run.
	byEdge := map[*ctree.Node][]float64{}
	var edges []*ctree.Node
	for _, p := range poss {
		if _, ok := byEdge[p.edge]; !ok {
			edges = append(edges, p.edge)
		}
		byEdge[p.edge] = append(byEdge[p.edge], p.dist)
	}
	added := 0
	for _, edge := range edges {
		dists := byEdge[edge]
		sort.Float64s(dists)
		scale := 1.0
		if el := edge.EdgeLen(); el > 0 {
			scale = edge.Route.Length() / el
		}
		consumed := 0.0
		target := edge
		for _, d := range dists {
			rd := d * scale
			b := ins.tr.InsertOnEdge(target, rd-consumed, ctree.Buffer)
			comp := ins.comp
			b.Buf = &comp
			consumed = rd
			// After the split the lower half is still `target`'s edge.
			added++
		}
	}
	return added
}
