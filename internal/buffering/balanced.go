package buffering

import (
	"sort"

	"contango/internal/ctree"
	"contango/internal/tech"
)

// BalancedInsert places buffers bottom-up by load threshold: walking from
// the sinks toward the root, a buffer is inserted whenever the unbuffered
// load a driver would have to carry reaches a fraction of the slew-safe
// capacitance. On an Elmore-balanced ZST this yields nearly identical
// buffer counts on every source-to-sink path — the property the paper
// relies on for low post-insertion skew ("source-to-sink paths contain
// practically the same numbers of buffers", Section IV-C) — and it is the
// flow's default insertion mode. The van Ginneken DP (Insert) minimizes
// worst delay more aggressively and is kept for comparison and ablation.
//
// Fill controls how much of the safe load a stage may carry (default 0.35).
// The deliberately deep margin leaves slew headroom that the snaking and
// sizing passes spend later; the slow corner and slew compounding through
// chains consume their share as well.
func BalancedInsert(tr *ctree.Tree, comp tech.Composite, opt Options) (int, error) {
	opt.defaults()
	maxCap := opt.MaxCap
	if maxCap == 0 {
		maxCap = SafeLoad(tr.Tech, comp)
	}
	threshold := 0.35 * maxCap
	if threshold <= comp.Cin() {
		threshold = comp.Cin() * 2
	}
	added := 0

	// process returns the unbuffered load at the TOP of n's parent edge
	// after placing any buffers this subtree needs, together with the node
	// that now sits directly under the edge top (the last inserted buffer,
	// or n itself) so that callers can decouple the corridor at the merge.
	// The returned load never exceeds the threshold except at unrepairable
	// merges (inside obstacles).
	var process func(n *ctree.Node) (float64, *ctree.Node)
	process = func(n *ctree.Node) (float64, *ctree.Node) {
		load := 0.0
		switch n.Kind {
		case ctree.Sink:
			load = n.SinkCap
		default:
			type kid struct {
				n    *ctree.Node
				load float64
			}
			var kids []kid
			for _, c := range append([]*ctree.Node(nil), n.Children...) {
				kload, ktop := process(c)
				kids = append(kids, kid{ktop, kload})
				load += kload
			}
			// Repair 1: decouple heavy child edges with a buffer at the
			// merge point so the merge's own driver no longer sees them.
			sort.Slice(kids, func(i, j int) bool { return kids[i].load > kids[j].load })
			for i := range kids {
				if load <= threshold {
					break
				}
				k := kids[i]
				if k.load <= comp.Cin()*1.25 {
					break // decoupling replaces ~Cin with Cin: no benefit
				}
				pos := legalizePos(tr, k.n, 0, opt)
				b := tr.InsertOnEdge(k.n, pos, ctree.Buffer)
				c := comp
				b.Buf = &c
				added++
				// If the site was nudged down the edge by an obstacle, the
				// wire above the new buffer still loads this merge.
				contrib := comp.Cin() + tr.EdgeCap(b)
				kids[i] = kid{b, contrib}
				load += contrib - k.load
			}
			// Repair 2: sink clusters — many near-Cin children at one
			// point. Partition the children into slew-safe groups, each
			// driven by its own buffer at the merge location. Skipped when
			// the merge sits inside an obstacle (no legal site there); such
			// regions were bounded by the legalizer's slew-free test.
			mergeLegal := opt.Obs == nil || !opt.Obs.BlocksPoint(n.Loc)
			for mergeLegal && load > threshold && len(kids) > 1 {
				b := tr.AddChild(n, ctree.Buffer, n.Loc)
				c := comp
				b.Buf = &c
				added++
				group := 0.0
				for i := 0; i < len(kids); {
					if group == 0 || group+kids[i].load <= threshold {
						ch := kids[i].n
						if ch == b {
							i++
							continue
						}
						r := ch.Route
						tr.Detach(ch)
						tr.Attach(ch, b, r)
						group += kids[i].load
						kids = append(kids[:i], kids[i+1:]...)
					} else {
						i++
					}
				}
				load = load - group + comp.Cin()
				kids = append(kids, kid{b, comp.Cin()})
				if group == 0 {
					break // nothing movable: give up gracefully
				}
			}
		}
		w := tr.Tech.Wires[n.WidthIdx]
		length := n.EdgeLen()
		// Walk the edge bottom-up; insert a buffer each time the running
		// load hits the threshold. Positions are electrical distances from
		// the child end.
		fromBottom := 0.0
		for {
			if load >= threshold {
				// Threshold already exceeded at the current point (fat
				// merge inside an obstacle): buffer right here.
			} else {
				room := (threshold - load) / w.CPerUm
				if fromBottom+room >= length {
					break // edge top reached without hitting the threshold
				}
				fromBottom += room
				load = threshold
			}
			d := length - fromBottom // electrical distance from parent
			pos := legalizePos(tr, n, d, opt)
			b := tr.InsertOnEdge(n, pos, ctree.Buffer)
			c := comp
			b.Buf = &c
			added++
			// Continue up the (new, shorter) parent edge of b.
			load = comp.Cin()
			length = b.EdgeLen()
			n = b
			fromBottom = 0
		}
		return load + (length-fromBottom)*w.CPerUm, n
	}

	// The clock source is a plain resistive driver with no regenerative
	// gain, so it gets its own (usually much smaller) slew-safe load bound.
	srcSafe := 0.45 * tr.Tech.SlewLimit / (2.2 * tr.SourceR)
	for _, c := range append([]*ctree.Node(nil), tr.Root.Children...) {
		top, topNode := process(c)
		if (top > srcSafe || top > maxCap) && topNode.EdgeLen() >= 0 {
			pos := legalizePos(tr, topNode, 0, opt)
			b := tr.InsertOnEdge(topNode, pos, ctree.Buffer)
			cc := comp
			b.Buf = &cc
			added++
		}
	}
	return added, nil
}

// legalizePos converts an electrical distance-from-parent into a geometric
// route position and nudges it off obstacles (preferring upward, toward the
// parent).
func legalizePos(tr *ctree.Tree, n *ctree.Node, d float64, opt Options) float64 {
	scale := 1.0
	if el := n.EdgeLen(); el > 0 {
		scale = n.Route.Length() / el
	}
	pos := d * scale
	if opt.Obs == nil {
		return pos
	}
	step := 25.0
	for try := pos; try >= 0; try -= step {
		if !opt.Obs.BlocksPoint(n.Route.At(try)) {
			return try
		}
	}
	for try := pos + step; try <= n.Route.Length(); try += step {
		if !opt.Obs.BlocksPoint(n.Route.At(try)) {
			return try
		}
	}
	return pos
}

// StageCountHistogram returns the distribution of buffers per
// root-to-sink path; used by tests and diagnostics to verify balance.
func StageCountHistogram(tr *ctree.Tree) map[int]int {
	h := map[int]int{}
	for _, s := range tr.Sinks() {
		n := 0
		for cur := s; cur != nil; cur = cur.Parent {
			if cur.Kind == ctree.Buffer {
				n++
			}
		}
		h[n]++
	}
	return h
}

// SpreadOfHistogram returns max-min key of a non-empty histogram.
func SpreadOfHistogram(h map[int]int) int {
	keys := make([]int, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	if len(keys) == 0 {
		return 0
	}
	return keys[len(keys)-1] - keys[0]
}
