package flow

import (
	"fmt"

	"contango/internal/eval"
	"contango/internal/opt"
	"context"
	"strings"
	"testing"
)

// The flow package's own tests run without core, so the registry holds
// only these stand-ins. "zst"/"legalize"/"buffer"/"polarity" mirror the
// construction prelude; the rest model the cascade.
func init() {
	names := []struct {
		name string
		reg  Registration
	}{
		{"zst", Registration{}},
		{"legalize", Registration{}},
		{"buffer", Registration{}},
		{"polarity", Registration{}},
		{"tune", Registration{Optional: true, Record: true, NeedsEval: true}},
		{"wire", Registration{Optional: true, Record: true, NeedsEval: true}},
		{"snake", Registration{Optional: true, Record: true, NeedsEval: true}},
	}
	for _, n := range names {
		r := n.reg
		name := n.name
		r.Pass = NewPass(name, func(ctx context.Context, s *State) error {
			s.Logf("ran %s rounds=%d", name, contextRounds(s))
			return nil
		})
		Register(r)
	}
}

func contextRounds(s *State) int {
	if s.Opt == nil {
		return 0
	}
	return s.Opt.MaxRounds
}

func TestCanon(t *testing.T) {
	for in, want := range map[string]string{
		" TBSZ ": "tbsz", "TwSz": "twsz", "bwsn": "bwsn", "Cycle-1_a": "cycle-1_a",
	} {
		if got := Canon(in); got != want {
			t.Errorf("Canon(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParsePlanRoundTrip(t *testing.T) {
	cases := []struct {
		spec string
		want string // canonical rendering; "" means same as spec
	}{
		{"zst,legalize,buffer,polarity,tune,wire", ""},
		{"zst,legalize,buffer,polarity,tune:4,cycle(wire,snake)x2", ""},
		{"zst,legalize,buffer,polarity,wire?skew>10.5,snake?cap<2000", ""},
		{"zst, Legalize , BUFFER,polarity, tune : 4", "zst,legalize,buffer,polarity,tune:4"},
		{"cycle(wire,snake) X3,tune", "zst,legalize,buffer,polarity,cycle(wire,snake)x3,tune"},
		// Construction prelude implied for pure-cascade specs.
		{"tune:2,wire", "zst,legalize,buffer,polarity,tune:2,wire"},
	}
	for _, c := range cases {
		p, err := ParsePlan(c.spec)
		if err != nil {
			t.Errorf("ParsePlan(%q): %v", c.spec, err)
			continue
		}
		want := c.want
		if want == "" {
			want = c.spec
		}
		if p.String() != want {
			t.Errorf("ParsePlan(%q).String() = %q, want %q", c.spec, p.String(), want)
			continue
		}
		// Canonical rendering must be a parse fixpoint.
		again, err := ParsePlan(p.String())
		if err != nil {
			t.Errorf("reparse %q: %v", p.String(), err)
		} else if again.String() != p.String() {
			t.Errorf("not a fixpoint: %q -> %q", p.String(), again.String())
		}
	}
}

func TestParsePlanInvalid(t *testing.T) {
	for _, spec := range []string{
		"",                       // empty
		" , ,",                   // only separators
		"nosuchpass",             // unregistered
		"tune:0",                 // round budget must be positive
		"tune:x",                 // non-numeric rounds
		"tune?bogus>1",           // unknown gate metric
		"tune?skew=1",            // bad gate operator
		"tune?skew>abc",          // bad gate value
		"cycle(wire",             // unclosed group
		"cycle(wire))",           // unbalanced
		"cycle()x2",              // empty group
		"cycle(wire)y3",          // bad suffix
		"cycle(wire)x0",          // cycle count must be positive
		"cycle(cycle(wire)x2)x2", // nested groups
		"tu ne",                  // whitespace inside a name
	} {
		if p, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted: %v", spec, p)
		}
	}
}

func TestResolvePlanBuiltinsAndDefault(t *testing.T) {
	p, err := ResolvePlan("")
	if err != nil {
		// Built-in specs reference core's passes, which aren't registered
		// in this package's test binary — the lookup failure is expected
		// to mention the unknown pass, not crash.
		if !strings.Contains(err.Error(), "unknown pass") {
			t.Fatalf("unexpected error: %v", err)
		}
		return
	}
	if p.Name != DefaultPlanName {
		t.Errorf("default plan = %s", p.Name)
	}
}

// newTestState builds a State with stubbed evaluation hooks: ArmEval
// installs a metrics script, Calibrate/Record walk it.
func newTestState(t *testing.T, skews []float64) (*State, *[]string) {
	t.Helper()
	var lines []string
	s := &State{}
	s.Opts.Log = func(format string, args ...interface{}) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	s.Opts = s.Opts.Resolve()
	next := 0
	calibrate := func(st *State) (m eval.Metrics, err error) {
		m.Skew = skews[minInt(next, len(skews)-1)]
		next++
		return m, nil
	}
	s.ArmEval = func(ctx context.Context, st *State) error {
		lines = append(lines, "armed")
		st.CalibrateHook = func(st *State) (eval.Metrics, error) { return calibrate(st) }
		st.RecordHook = func(st *State, name string) error {
			m, err := calibrate(st)
			if err != nil {
				return err
			}
			st.Stages = append(st.Stages, StageRecord{Name: name, Metrics: m})
			return nil
		}
		return st.Record("INITIAL")
	}
	return s, &lines
}

func TestRunOrderSkipAndLazyArm(t *testing.T) {
	s, lines := newTestState(t, []float64{10})
	s.Opts.SkipStages = map[string]bool{"wire": true}
	plan := Plan{Steps: []Step{
		{Pass: "zst"}, {Pass: "tune"}, {Pass: "wire"}, {Pass: "snake", Rounds: 4},
	}}
	if err := Run(context.Background(), s, plan); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(*lines, "\n")
	// zst runs before arming; arming happens once, at the first eval pass.
	wantOrder := []string{"ran zst", "armed", "ran tune", "skipped", "ran snake"}
	pos := -1
	for _, w := range wantOrder {
		p := strings.Index(joined, w)
		if p < 0 || p < pos {
			t.Fatalf("event %q missing or out of order in:\n%s", w, joined)
		}
		pos = p
	}
	if strings.Contains(joined, "ran wire") {
		t.Error("skipped pass ran")
	}
	if got := stageList(s); got != "INITIAL,TUNE,SNAKE" {
		t.Errorf("stages = %s", got)
	}
}

func TestRunRoundsOverrideRestored(t *testing.T) {
	s, lines := newTestState(t, []float64{10})
	armOld := s.ArmEval
	s.ArmEval = func(ctx context.Context, st *State) error {
		if err := armOld(ctx, st); err != nil {
			return err
		}
		st.Opt = &opt.Context{MaxRounds: 16}
		return nil
	}
	plan := Plan{Steps: []Step{{Pass: "tune", Rounds: 4}, {Pass: "wire"}}}
	if err := Run(context.Background(), s, plan); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(*lines, "\n")
	if !strings.Contains(joined, "ran tune rounds=4") {
		t.Errorf("per-step round budget not applied:\n%s", joined)
	}
	if !strings.Contains(joined, "ran wire rounds=16") {
		t.Errorf("round budget not restored after the step:\n%s", joined)
	}
}

func TestRunGate(t *testing.T) {
	// INITIAL records skew 10; the gate consults calibrate (also 10).
	s, lines := newTestState(t, []float64{10})
	g1 := &Gate{Metric: "skew", Value: 50}            // 10 > 50 false -> gated off
	g2 := &Gate{Metric: "skew", Value: 5}             // 10 > 5 true -> runs
	g3 := &Gate{Metric: "skew", Less: true, Value: 5} // 10 < 5 false -> gated off
	plan := Plan{Steps: []Step{
		{Pass: "tune", Gate: g1}, {Pass: "wire", Gate: g2}, {Pass: "snake", Gate: g3},
	}}
	if err := Run(context.Background(), s, plan); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(*lines, "\n")
	if strings.Contains(joined, "ran tune") || strings.Contains(joined, "ran snake") {
		t.Errorf("gated-off pass ran:\n%s", joined)
	}
	if !strings.Contains(joined, "ran wire") {
		t.Errorf("admitted pass skipped:\n%s", joined)
	}
}

func TestRunCycleConvergence(t *testing.T) {
	// Metrics script: INITIAL 10, then cycle records 8 (improved),
	// 7.99 (not improved by >= 0.05) -> stop after CYCLE2 despite budget 5.
	s, _ := newTestState(t, []float64{10, 8, 7.99, 5, 4})
	plan := Plan{Steps: []Step{{Cycle: []Step{{Pass: "wire"}, {Pass: "snake"}}, Repeat: 5}}}
	if err := Run(context.Background(), s, plan); err != nil {
		t.Fatal(err)
	}
	if got := stageList(s); got != "INITIAL,CYCLE1,CYCLE2" {
		t.Errorf("stages = %s, want INITIAL,CYCLE1,CYCLE2", got)
	}
}

func TestRunCycleBudgetFromOptions(t *testing.T) {
	// Unpinned cycle group takes its budget from resolved Options.Cycles;
	// a disabled budget runs zero cycles.
	s, _ := newTestState(t, []float64{10, 1, 1})
	s.Opts.Cycles = -1
	plan := Plan{Steps: []Step{{Pass: "tune"}, {Cycle: []Step{{Pass: "wire"}}}}}
	if err := Run(context.Background(), s, plan); err != nil {
		t.Fatal(err)
	}
	if got := stageList(s); got != "INITIAL,TUNE" {
		t.Errorf("stages = %s, want INITIAL,TUNE (cycles disabled)", got)
	}
}

func TestRunCanceledContext(t *testing.T) {
	s, _ := newTestState(t, []float64{10})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Run(ctx, s, Plan{Steps: []Step{{Pass: "tune"}}})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func stageList(s *State) string {
	names := make([]string, len(s.Stages))
	for i, st := range s.Stages {
		names[i] = st.Name
	}
	return strings.Join(names, ",")
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
