package flow

import (
	"context"
	"errors"
	"strings"

	"contango/internal/bench"
	"contango/internal/ctree"
	"contango/internal/eval"
	"contango/internal/geom"
	"contango/internal/opt"
	"contango/internal/route"
	"contango/internal/tech"
)

// StageRecord captures metrics after one flow stage (a Table III row
// entry). Convergence cycles record as their own CYCLE<n> stages, so the
// metric history in -json output and the contangod API is complete.
type StageRecord struct {
	Name    string
	Metrics eval.Metrics
	Runs    int // cumulative accurate-evaluation count
}

// State is the synthesis state shared by every pass in a pipeline: the
// benchmark, the evolving clock tree with its obstacle set, the armed
// optimization context (accurate evaluator), the stage-metric history, and
// the construction counters the flow reports.
type State struct {
	Opts  Options // resolved options (Options.Resolve)
	Bench *bench.Benchmark

	// Tree is the pointer-form clock tree. During arena-native construction
	// (the default) it stays nil while the construction passes build Arena;
	// MaterializeTree converts exactly once, right before the first consumer
	// that needs pointer nodes (arming the evaluator, or finishing a
	// construction-only run).
	Tree *ctree.Tree
	// Arena is the SoA form the construction passes build into. Once Tree
	// has been materialized, Tree is authoritative and construction passes
	// fall back to it.
	Arena *ctree.Arena
	Obs   *geom.ObstacleSet
	// Opt is the optimization-pass context around the accurate evaluator.
	// It is nil until the pipeline arms it (lazily, before the first pass
	// registered with NeedsEval).
	Opt *opt.Context

	Stages []StageRecord

	// Construction outputs reported on the Result.
	Legalization   route.Report
	Composite      tech.Composite
	InvertedSinks  int // before polarity correction (Table II)
	AddedInverters int // polarity-correcting inverters (Table II)

	// ArmEval builds the accurate evaluator and the opt.Context for the
	// cascade passes, then records the INITIAL stage. The orchestrator
	// (core.SynthesizeContext) installs it; the runner invokes it at most
	// once, right before the first pass that needs evaluation.
	ArmEval func(ctx context.Context, s *State) error

	// RecordHook and CalibrateHook override the default Table III
	// bookkeeping (a cached-CNE read against the armed evaluator). They
	// exist for pipeline tests and callers with custom metric plumbing.
	RecordHook    func(s *State, name string) error
	CalibrateHook func(s *State) (eval.Metrics, error)

	armed bool
}

// Logf forwards to the options' Log hook when set.
func (s *State) Logf(format string, args ...interface{}) {
	if s.Opts.Log != nil {
		s.Opts.Log(format, args...)
	}
}

// ProgressPrefix marks per-pass pipeline progress lines emitted through
// the Log hook, so transports can route them to a dedicated event type —
// contangod's SSE stream forwards them as "pass" events instead of "log".
const ProgressPrefix = "pass "

// Progressf emits a per-pass pipeline progress line (ProgressPrefix-tagged)
// through the Log hook.
func (s *State) Progressf(format string, args ...interface{}) {
	s.Logf(ProgressPrefix+format, args...)
}

// IsProgressLine reports whether a log line is a per-pass pipeline
// progress event (emitted by Progressf).
func IsProgressLine(line string) bool { return strings.HasPrefix(line, ProgressPrefix) }

// BuildInArena reports whether construction passes should build into the
// SoA arena: the arena path is on (default), and the pointer tree has not
// been materialized yet (a custom plan that interleaves cascade and
// construction passes keeps mutating the authoritative representation).
func (s *State) BuildInArena() bool {
	return !s.Opts.PointerBuild && s.Tree == nil
}

// MaterializeTree converts the arena-built tree to pointer form exactly
// once: the arena's span arrays are compacted (dropping construction
// garbage) and ToTree rebuilds the node graph. A no-op when the tree
// already exists or construction ran on the pointer path.
func (s *State) MaterializeTree() error {
	if s.Tree != nil || s.Arena == nil {
		return nil
	}
	s.Arena.Compact()
	tr, err := s.Arena.ToTree()
	if err != nil {
		return err
	}
	s.Tree = tr
	return nil
}

// EnsureEval arms the accurate evaluator exactly once (via the ArmEval
// hook). Passes registered with NeedsEval, cycle groups and gate
// predicates all trigger it.
func (s *State) EnsureEval(ctx context.Context) error {
	if s.armed {
		return nil
	}
	if s.ArmEval == nil {
		return errors.New("flow: no ArmEval hook installed")
	}
	// Arming runs the first full multi-corner evaluation (the INITIAL
	// record), which is where a job's corner-evaluation time concentrates —
	// bracket it so flow traces show it as its own phase.
	var endSpan func()
	if s.Opts.SpanHook != nil {
		endSpan = s.Opts.SpanHook("eval", "corner_eval")
	}
	err := s.ArmEval(ctx, s)
	if endSpan != nil {
		endSpan()
	}
	if err != nil {
		return err
	}
	s.armed = true
	return nil
}

// Record appends a stage record named name: a cached-CNE read (free when
// the last pass left a valid evaluation) plus the cumulative simulator run
// count — one Table III row. RecordHook overrides the default.
func (s *State) Record(name string) error {
	if s.RecordHook != nil {
		return s.RecordHook(s, name)
	}
	if s.Opt == nil {
		return errors.New("flow: Record before the evaluator was armed")
	}
	_, m, err := s.Opt.Baseline()
	if err != nil {
		return err
	}
	rec := StageRecord{Name: name, Metrics: m}
	if s.Opts.Engine != nil {
		rec.Runs = s.Opts.Engine.Runs
	}
	s.Stages = append(s.Stages, rec)
	s.Logf("%s: [%s] %s", s.Bench.Name, name, m)
	return nil
}

// Calibrate returns current metrics from the armed evaluator (a cached-CNE
// read). CalibrateHook overrides the default.
func (s *State) Calibrate() (eval.Metrics, error) {
	if s.CalibrateHook != nil {
		return s.CalibrateHook(s)
	}
	if s.Opt == nil {
		return eval.Metrics{}, errors.New("flow: Calibrate before the evaluator was armed")
	}
	_, m, err := s.Opt.Baseline()
	return m, err
}

// LastMetrics returns the most recently recorded stage metrics.
func (s *State) LastMetrics() (eval.Metrics, bool) {
	if len(s.Stages) == 0 {
		return eval.Metrics{}, false
	}
	return s.Stages[len(s.Stages)-1].Metrics, true
}
