// Package flow is the declarative pass-pipeline engine behind the Contango
// synthesizer. The paper's methodology (Fig. 1) is an ordered cascade —
// ZST/DME construction, obstacle legalization, composite buffering,
// polarity correction, then the SPICE-checked sizing passes with
// convergence feedback — and this package turns that hard-coded sequence
// into data: passes register themselves in a process-wide registry, a Plan
// is an ordered list of pass specs (with per-pass round budgets, gate
// predicates, and convergence cycle groups), and Run executes a plan over
// a shared State. Named built-in plans ("paper", "fast", "wire-only",
// "tune-only", "no-cycles") plus a compact plan-spec grammar let callers
// express ablations and alternative cascades without touching the flow
// code; core registers the concrete passes and re-exports Options.
package flow

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Pass is one named step of a synthesis pipeline. Name is the canonical
// identifier used in plan specs; Run mutates the shared State.
type Pass interface {
	Name() string
	Run(ctx context.Context, s *State) error
}

// RunFunc is the signature of a pass body.
type RunFunc func(ctx context.Context, s *State) error

type funcPass struct {
	name string
	run  RunFunc
}

func (p funcPass) Name() string                            { return p.name }
func (p funcPass) Run(ctx context.Context, s *State) error { return p.run(ctx, s) }

// NewPass adapts a named function to the Pass interface. The name is
// canonicalized with Canon.
func NewPass(name string, run RunFunc) Pass { return funcPass{Canon(name), run} }

// Registration couples a Pass with its pipeline scheduling attributes.
type Registration struct {
	Pass Pass
	// Optional passes honor Options.SkipStages (the ablation switch).
	Optional bool
	// Record emits a StageRecord (a Table III row) after the pass runs.
	Record bool
	// NeedsEval arms the accurate evaluator (State.ArmEval) before the
	// pass runs; arming records the INITIAL stage.
	NeedsEval bool
}

var (
	regMu    sync.RWMutex
	registry = map[string]Registration{}
)

// Register adds a pass to the process-wide registry. It panics on an empty
// name or a duplicate registration — both are programming errors.
func Register(r Registration) {
	if r.Pass == nil {
		panic("flow: Register called with nil pass")
	}
	name := Canon(r.Pass.Name())
	if name == "" {
		panic("flow: Register called with empty pass name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("flow: pass %q registered twice", name))
	}
	registry[name] = r
}

// Lookup returns the registration for a canonical pass name.
func Lookup(name string) (Registration, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	r, ok := registry[Canon(name)]
	return r, ok
}

// PassNames returns the registered pass names, sorted.
func PassNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Canon returns the canonical form of a pass or stage name: trimmed and
// ASCII-lowercased. It is the one normalization used everywhere a stage
// name is compared — plan parsing, SkipStages lookups, cache-key
// fingerprints, and the service wire layer.
func Canon(s string) string {
	s = strings.TrimSpace(s)
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
