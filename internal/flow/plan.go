package flow

import (
	"fmt"
	"strconv"
	"strings"

	"contango/internal/eval"
)

// Plan is an ordered synthesis pipeline: a named list of pass steps.
type Plan struct {
	Name  string // display name: a built-in name or "custom"
	Steps []Step
}

// Step is one plan entry: either a single pass (with an optional per-step
// round budget and gate predicate) or a convergence cycle group.
type Step struct {
	Pass   string // canonical pass name (empty for cycle groups)
	Rounds int    // per-step round budget; 0 = Options.MaxRounds
	Gate   *Gate  // run the pass only while the predicate holds

	Cycle  []Step // non-nil: convergence group run until no improvement
	Repeat int    // cycle budget; 0 = Options.Cycles
}

// Gate is a metric predicate: the gated pass runs only when the selected
// metric is above (or, with Less, below) Value.
type Gate struct {
	Metric string // skew | clr | lat | slew | viol | cap
	Less   bool
	Value  float64
}

// gateMetrics maps gate metric names to their Metrics accessors.
var gateMetrics = map[string]func(eval.Metrics) float64{
	"skew": func(m eval.Metrics) float64 { return m.Skew },
	"clr":  func(m eval.Metrics) float64 { return m.CLR },
	"lat":  func(m eval.Metrics) float64 { return m.MaxLatency },
	"slew": func(m eval.Metrics) float64 { return m.MaxSlew },
	"viol": func(m eval.Metrics) float64 { return float64(m.SlewViol) },
	"cap":  func(m eval.Metrics) float64 { return m.TotalCap },
}

// Admit reports whether the predicate holds for m.
func (g Gate) Admit(m eval.Metrics) bool {
	get, ok := gateMetrics[g.Metric]
	if !ok {
		return true
	}
	if g.Less {
		return get(m) < g.Value
	}
	return get(m) > g.Value
}

func (g Gate) String() string {
	op := ">"
	if g.Less {
		op = "<"
	}
	return g.Metric + op + strconv.FormatFloat(g.Value, 'g', -1, 64)
}

// String renders the step in the plan-spec grammar.
func (st Step) String() string {
	if st.Cycle != nil {
		inner := make([]string, len(st.Cycle))
		for i, c := range st.Cycle {
			inner[i] = c.String()
		}
		s := "cycle(" + strings.Join(inner, ",") + ")"
		if st.Repeat > 0 {
			s += "x" + strconv.Itoa(st.Repeat)
		}
		return s
	}
	s := st.Pass
	if st.Rounds > 0 {
		s += ":" + strconv.Itoa(st.Rounds)
	}
	if st.Gate != nil {
		s += "?" + st.Gate.String()
	}
	return s
}

// String renders the plan as its canonical spec: ParsePlan(p.String())
// yields an equal plan, and Options.Resolve uses this rendering as the
// canonical form the service fingerprints for its result cache.
func (p Plan) String() string {
	parts := make([]string, len(p.Steps))
	for i, st := range p.Steps {
		parts[i] = st.String()
	}
	return strings.Join(parts, ",")
}

// DefaultPlanName is the plan used when Options.Plan is empty: the paper's
// exact flow.
const DefaultPlanName = "paper"

// builtinOrder lists the built-in plan names in documentation order.
var builtinOrder = []string{"paper", "fast", "wire-only", "tune-only", "no-cycles", "eco"}

// builtinSpecs maps built-in plan names to their full specs. The unpinned
// cycle group ("cycle(...)" without an xN suffix) takes its budget from
// Options.Cycles, so -cycles / "cycles" remains honored under named plans.
var builtinSpecs = map[string]string{
	// The paper's Fig. 1 cascade, bit-identical to the pre-pipeline flow.
	"paper": "zst,legalize,buffer,polarity,tbsz,twsz,twsn,bwsn,cycle(twsz,twsn,bwsn)",
	// Reduced round budgets, no convergence cycles: a quick preview run.
	"fast": "zst,legalize,buffer,polarity,tbsz:4,twsz:4,twsn:4,bwsn:4",
	// Wire passes only — equivalent to SkipStages{"tbsz"} under "paper".
	"wire-only": "zst,legalize,buffer,polarity,twsz,twsn,bwsn,cycle(twsz,twsn,bwsn)",
	// Buffer sizing and bottom-level fine-tuning only.
	"tune-only": "zst,legalize,buffer,polarity,tbsz,bwsn",
	// The full cascade without the convergence feedback loop.
	"no-cycles": "zst,legalize,buffer,polarity,tbsz,twsz,twsn,bwsn",
	// Incremental re-synthesis: restore a finished base tree, replay an
	// ECO delta with locality-scoped repair, then run a short tuning
	// cascade (construction — the cost of a full run — is skipped).
	"eco": "eco,twsz:2,twsn:2,bwsn:2",
}

// PlanNames lists the built-in plan names in documentation order.
func PlanNames() []string {
	out := make([]string, len(builtinOrder))
	copy(out, builtinOrder)
	return out
}

// BuiltinSpec returns the full plan spec behind a built-in plan name.
func BuiltinSpec(name string) (string, bool) {
	spec, ok := builtinSpecs[Canon(name)]
	return spec, ok
}

// constructionPasses are the tree-building prelude every plan needs; a
// custom spec that names none of them gets the prelude prepended, so users
// can type just the optimization cascade ("tbsz:2,cycle(twsz,twsn)x2").
var constructionPasses = map[string]bool{
	"zst": true, "legalize": true, "buffer": true, "polarity": true,
	// "eco" replaces the whole construction prelude: it restores an
	// already-built tree, so prepending zst before it would be wrong.
	"eco": true,
}

func preludeSteps() []Step {
	return []Step{{Pass: "zst"}, {Pass: "legalize"}, {Pass: "buffer"}, {Pass: "polarity"}}
}

func hasConstruction(steps []Step) bool {
	for _, st := range steps {
		if constructionPasses[st.Pass] || hasConstruction(st.Cycle) {
			return true
		}
	}
	return false
}

// ResolvePlan turns a plan name or spec string into a Plan: built-in names
// resolve to their full specs, anything else parses as a spec. An empty
// string resolves to the default ("paper") plan.
func ResolvePlan(nameOrSpec string) (Plan, error) {
	s := strings.TrimSpace(nameOrSpec)
	if s == "" {
		s = DefaultPlanName
	}
	if spec, ok := builtinSpecs[Canon(s)]; ok {
		p, err := ParsePlan(spec)
		if err != nil {
			return Plan{}, fmt.Errorf("built-in plan %s: %w", Canon(s), err)
		}
		p.Name = Canon(s)
		return p, nil
	}
	return ParsePlan(s)
}

// ParsePlan parses a plan spec. The grammar (case-insensitive, whitespace
// ignored):
//
//	plan  := step ("," step)*
//	step  := pass | cycle
//	pass  := name [":" rounds] ["?" gate]
//	cycle := "cycle(" plan ")" ["x" count]
//	gate  := metric (">" | "<") number     metric := skew|clr|lat|slew|viol|cap
//
// Pass names must be registered; rounds and count are positive integers;
// cycle groups cannot nest. A spec naming no construction pass
// (zst/legalize/buffer/polarity) gets the construction prelude prepended.
func ParsePlan(spec string) (Plan, error) {
	steps, err := parseSteps(spec)
	if err != nil {
		return Plan{}, err
	}
	if len(steps) == 0 {
		return Plan{}, fmt.Errorf("flow: empty plan spec")
	}
	if !hasConstruction(steps) {
		steps = append(preludeSteps(), steps...)
	}
	return Plan{Name: "custom", Steps: steps}, nil
}

func parseSteps(spec string) ([]Step, error) {
	parts, err := splitTop(spec)
	if err != nil {
		return nil, err
	}
	var steps []Step
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		st, err := parseStep(part)
		if err != nil {
			return nil, err
		}
		steps = append(steps, st)
	}
	return steps, nil
}

// splitTop splits a spec on commas outside parentheses.
func splitTop(s string) ([]string, error) {
	var parts []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("flow: unbalanced ')' in plan spec %q", s)
			}
		case ',':
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("flow: unclosed '(' in plan spec %q", s)
	}
	return append(parts, s[start:]), nil
}

func parseStep(tok string) (Step, error) {
	if strings.HasPrefix(Canon(tok), "cycle(") {
		return parseCycle(tok)
	}
	rest := tok
	var gate *Gate
	if q := strings.IndexByte(rest, '?'); q >= 0 {
		g, err := parseGate(rest[q+1:])
		if err != nil {
			return Step{}, err
		}
		gate = &g
		rest = rest[:q]
	}
	rounds := 0
	if c := strings.IndexByte(rest, ':'); c >= 0 {
		n, err := strconv.Atoi(strings.TrimSpace(rest[c+1:]))
		if err != nil || n < 1 {
			return Step{}, fmt.Errorf("flow: bad round budget in step %q (want a positive integer)", tok)
		}
		rounds = n
		rest = rest[:c]
	}
	name := Canon(rest)
	if name == "" {
		return Step{}, fmt.Errorf("flow: empty pass name in step %q", tok)
	}
	for _, r := range name {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '-' && r != '_' {
			return Step{}, fmt.Errorf("flow: invalid pass name %q", name)
		}
	}
	if _, ok := Lookup(name); !ok {
		return Step{}, fmt.Errorf("flow: unknown pass %q (registered: %s)", name, strings.Join(PassNames(), ", "))
	}
	return Step{Pass: name, Rounds: rounds, Gate: gate}, nil
}

func parseCycle(tok string) (Step, error) {
	open := strings.IndexByte(tok, '(')
	closing := strings.LastIndexByte(tok, ')')
	if closing < open {
		return Step{}, fmt.Errorf("flow: unclosed cycle group in %q", tok)
	}
	inner, err := parseSteps(tok[open+1 : closing])
	if err != nil {
		return Step{}, err
	}
	if len(inner) == 0 {
		return Step{}, fmt.Errorf("flow: empty cycle group in %q", tok)
	}
	for _, st := range inner {
		if st.Cycle != nil {
			return Step{}, fmt.Errorf("flow: nested cycle groups are not supported (%q)", tok)
		}
	}
	repeat := 0
	if suffix := strings.TrimSpace(tok[closing+1:]); suffix != "" {
		low := Canon(suffix)
		if !strings.HasPrefix(low, "x") {
			return Step{}, fmt.Errorf("flow: bad cycle suffix %q (want xN)", suffix)
		}
		n, err := strconv.Atoi(low[1:])
		if err != nil || n < 1 {
			return Step{}, fmt.Errorf("flow: bad cycle count %q (want a positive integer)", suffix)
		}
		repeat = n
	}
	return Step{Cycle: inner, Repeat: repeat}, nil
}

func parseGate(s string) (Gate, error) {
	i := strings.IndexAny(s, "<>")
	if i < 0 {
		return Gate{}, fmt.Errorf("flow: bad gate %q (want metric>value or metric<value)", s)
	}
	metric := Canon(s[:i])
	if _, ok := gateMetrics[metric]; !ok {
		return Gate{}, fmt.Errorf("flow: unknown gate metric %q (want skew, clr, lat, slew, viol or cap)", metric)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s[i+1:]), 64)
	if err != nil {
		return Gate{}, fmt.Errorf("flow: bad gate value in %q: %v", s, err)
	}
	return Gate{Metric: metric, Less: s[i] == '<', Value: v}, nil
}
