package flow

import (
	"context"
	"fmt"
	"strings"
	"time"
)

// cycleMinGain is the skew/CLR improvement (ps) a convergence cycle must
// deliver to earn another cycle — the paper's feedback-arrow stop rule.
const cycleMinGain = 0.05

// Run executes a plan over the shared state: passes run in order, optional
// passes honor Options.SkipStages, gated passes consult their predicate,
// and cycle groups repeat until the improvement check fails or the budget
// runs out. Cancellation is checked between steps (and by the armed
// evaluator before every improvement round); the context's error is
// returned verbatim so callers can test against it.
func Run(ctx context.Context, s *State, p Plan) error {
	total := len(p.Steps)
	for i, st := range p.Steps {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := runStep(ctx, s, st, i+1, total, true); err != nil {
			return err
		}
	}
	return nil
}

// runStep executes one plan step. record=false suppresses the per-pass
// StageRecord (used inside cycle groups, which record one CYCLE<n> row per
// cycle instead).
func runStep(ctx context.Context, s *State, st Step, idx, total int, record bool) error {
	if st.Cycle != nil {
		return runCycle(ctx, s, st, idx, total)
	}
	reg, ok := Lookup(st.Pass)
	if !ok {
		return fmt.Errorf("flow: unknown pass %q", st.Pass)
	}
	if reg.Optional && s.Opts.SkipStages[st.Pass] {
		s.Progressf("%d/%d %s: skipped", idx, total, st.Pass)
		return nil
	}
	if reg.NeedsEval || st.Gate != nil {
		if err := s.EnsureEval(ctx); err != nil {
			return err
		}
	}
	if st.Gate != nil {
		m, err := s.Calibrate()
		if err != nil {
			return err
		}
		if !st.Gate.Admit(m) {
			s.Progressf("%d/%d %s: gated off (%s)", idx, total, st.Pass, st.Gate)
			return nil
		}
	}
	if st.Rounds > 0 && s.Opt != nil {
		saved := s.Opt.MaxRounds
		s.Opt.MaxRounds = st.Rounds
		defer func() { s.Opt.MaxRounds = saved }()
	}
	s.Progressf("%d/%d %s: start", idx, total, st.Pass)
	t0 := time.Now()
	// The span brackets only the pass body: skipped and gated-off passes
	// never reach here, and a failing pass still closes its span before
	// the error propagates.
	var endSpan func()
	if s.Opts.SpanHook != nil {
		endSpan = s.Opts.SpanHook("pass", st.Pass)
	}
	err := reg.Pass.Run(ctx, s)
	if endSpan != nil {
		endSpan()
	}
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("%s: %w", st.Pass, err)
	}
	if record && reg.Record {
		if err := s.Record(strings.ToUpper(st.Pass)); err != nil {
			return err
		}
	}
	s.Progressf("%d/%d %s: done in %s", idx, total, st.Pass, time.Since(t0).Round(time.Millisecond))
	return nil
}

// runCycle executes a convergence group: run the member passes, then
// recalibrate (each recalibration re-anchors the hybrid, so the residual
// model error shrinks geometrically), record the cycle as its own
// CYCLE<n> stage, and stop once neither skew nor CLR improved.
func runCycle(ctx context.Context, s *State, st Step, idx, total int) error {
	if err := s.EnsureEval(ctx); err != nil {
		return err
	}
	budget := st.Repeat
	if budget == 0 {
		budget = s.Opts.extraCycles()
	}
	label := st.String()
	for cycle := 0; cycle < budget; cycle++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		before, ok := s.LastMetrics()
		if !ok {
			m, err := s.Calibrate()
			if err != nil {
				return err
			}
			before = m
		}
		s.Progressf("%d/%d %s: cycle %d/%d", idx, total, label, cycle+1, budget)
		for _, inner := range st.Cycle {
			if err := runStep(ctx, s, inner, idx, total, false); err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return fmt.Errorf("cycle %d: %w", cycle, err)
			}
		}
		if err := s.Record(fmt.Sprintf("CYCLE%d", cycle+1)); err != nil {
			return err
		}
		m := s.Stages[len(s.Stages)-1].Metrics
		if !(m.Skew < before.Skew-cycleMinGain || m.CLR < before.CLR-cycleMinGain) {
			break
		}
	}
	return nil
}
