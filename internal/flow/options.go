package flow

import (
	"runtime"

	"contango/internal/analysis"
	"contango/internal/corners"
	"contango/internal/eco"
	"contango/internal/opt"
	"contango/internal/spice"
	"contango/internal/tech"
)

// Options configures a synthesis run. core re-exports this type, so the
// zero value keeps meaning the paper's contest setup.
type Options struct {
	// Tech defaults to tech.Default45().
	Tech *tech.Tech
	// Engine defaults to spice.New(). FastSim overrides it with coarser
	// settings suitable for very large instances (the paper's TI runs trade
	// accuracy knobs for runtime the same way).
	Engine  *spice.Engine
	FastSim bool
	// Gamma is the capacitance reserve for post-insertion optimization
	// (default 0.10, the paper's 10%).
	Gamma float64
	// Ladder overrides the composite buffer ladder (default: batches of 8
	// small inverters, the paper's contest configuration).
	Ladder []tech.Composite
	// LargeInverters switches the ladder to groups of large inverters (the
	// paper's TI scalability configuration: ~8x faster, slightly worse CLR
	// and capacitance).
	LargeInverters bool
	// MaxRounds bounds each optimization pass (default 10). A plan step's
	// own round budget ("twsz:4") overrides it for that step.
	MaxRounds int
	// Plan selects the synthesis pipeline: a built-in plan name ("paper",
	// "fast", "wire-only", "tune-only", "no-cycles") or a plan-spec string
	// (see ParsePlan). Empty means "paper" — the exact pre-pipeline flow.
	Plan string
	// Corners selects the PVT corner set the run is evaluated and
	// optimized across: "ispd09" (the technology's native pair — the
	// default and the exact legacy behavior), "pvt5" (five-corner PVT
	// envelope), or "mc:<n>:<seed>[:vsigma[:rsigma[:csigma]]]" (n
	// deterministic Monte Carlo variation samples). Non-default sets are
	// installed on a clone of Tech during Resolve, so a shared technology
	// model is never mutated.
	Corners string
	// ECO, when non-nil, supplies the base tree and delta the "eco"
	// construction pass replays instead of building from scratch: the pass
	// restores the base run's synthesized tree into an arena, applies the
	// delta with locality-scoped repair, and hands the result to the
	// tuning cascade. The benchmark submitted alongside must be the
	// delta-perturbed one (eco.Delta.Perturb), so sink sets agree. ECO
	// shapes results, and the service keys it by base key + delta
	// fingerprint — appended to the fingerprint only when set, so default
	// keys stay byte-identical.
	ECO *eco.Spec
	// SkipStages disables individual optional stages by canonical name
	// ("tbsz", "twsz", "twsn", "bwsn") for ablations, whatever plan runs.
	SkipStages map[string]bool
	// BufferStep is the candidate spacing for buffer insertion (µm);
	// 0 = default.
	BufferStep float64
	// Cycles is the number of extra wire-pass convergence cycles after the
	// named cascade (0 = default 3; each costs one recalibration). A
	// negative value disables convergence cycles entirely — unlike the
	// zero value, which keeps the paper's default.
	Cycles int
	// Parallelism is the worker budget for concurrent stage simulations in
	// the optimization cascade's incremental evaluator (0 = GOMAXPROCS,
	// 1 = serial). It changes wall-clock time only, never results.
	Parallelism int
	// FullEval forces whole-tree re-evaluation for every CNE instead of
	// the incremental per-stage cache — the reference path the incremental
	// engine is validated against. Identical results, much slower.
	FullEval bool
	// PointerBuild forces the construction passes (zst, legalize, buffer,
	// polarity) onto the original pointer-tree path instead of the default
	// arena-native construction. The two paths produce bit-identical trees
	// (pinned by the construction property tests), so this is a debug and
	// ablation knob only; like Parallelism it never participates in
	// result-cache keys.
	PointerBuild bool
	// Log receives progress lines when non-nil.
	Log func(format string, args ...interface{})
	// SpanHook, when non-nil, brackets instrumented flow phases: it is
	// called with the phase kind ("pass" for an executed pipeline pass,
	// "eval" for arming the accurate evaluator) and the phase name when the
	// phase starts, and the func it returns is called when the phase ends.
	// The service layer uses it to build per-job flow traces and per-pass
	// duration histograms. Like Log it is a hook, so it never participates
	// in result-cache keys.
	SpanHook func(kind, name string) func()
	// WrapEval, when non-nil, wraps the accurate evaluator (the incremental
	// engine, or Engine itself under FullEval) right before the optimization
	// context is armed. The service's packing scheduler uses it to install a
	// corner-chunking shim that yields the worker slot between chunks of a
	// large sweep. Wrappers must preserve evaluation semantics exactly —
	// same results for the same calls — which is why, like Log and SpanHook,
	// WrapEval never participates in result-cache keys.
	WrapEval func(analysis.Evaluator) analysis.Evaluator
}

// defaultCycles is the extra wire-pass convergence budget when unset.
const defaultCycles = 3

// noCycles is the canonical resolved value for "convergence cycles
// disabled". Resolve maps every negative Cycles to it so resolution is
// idempotent: 0 means "defaulted" only on unresolved options.
const noCycles = -1

// extraCycles returns the effective convergence-cycle budget: the default
// when unset, zero when explicitly disabled.
func (o *Options) extraCycles() int {
	switch {
	case o.Cycles < 0:
		return 0
	case o.Cycles == 0:
		return defaultCycles
	default:
		return o.Cycles
	}
}

// Resolve returns a copy of the options with every defaulted knob made
// explicit: technology model, engine, capacitance reserve, ladder, round
// and cycle budgets, and the plan canonicalized to its expanded spec
// string. The flow itself runs on resolved options and the service layer
// fingerprints them for its result cache, so the two can never disagree
// about what a zero value means. Resolution is idempotent; note that a
// resolved Cycles is either the positive budget or -1 for "disabled".
func (o Options) Resolve() Options {
	o.fill()
	if o.MaxRounds <= 0 {
		o.MaxRounds = opt.DefaultMaxRounds
	}
	if o.Cycles == 0 {
		o.Cycles = defaultCycles
	} else if o.Cycles < 0 {
		o.Cycles = noCycles
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.Plan == "" {
		o.Plan = DefaultPlanName
	}
	// Canonicalize the skip set (on a copy — the caller's map is shared)
	// so the runtime skip lookup and the service's cache-key fingerprint
	// can never disagree about e.g. {"TBSZ": true} vs {"tbsz": true}.
	if len(o.SkipStages) > 0 {
		canon := make(map[string]bool, len(o.SkipStages))
		for name, on := range o.SkipStages {
			if on {
				canon[Canon(name)] = true
			}
		}
		o.SkipStages = canon
	}
	// Canonicalize the plan to its expanded spec, so a named plan and its
	// spelled-out equivalent fingerprint identically. Invalid specs are
	// left verbatim; the run (or the service's submit validation) reports
	// the parse error.
	if p, err := ResolvePlan(o.Plan); err == nil {
		o.Plan = p.String()
	}
	// Canonicalize the corner-set spec and install non-default sets on a
	// clone of the technology model. The default set ("ispd09") leaves
	// Tech untouched — bit-for-bit the legacy two-corner behavior, which
	// is what keeps default result-cache keys and the benchci baseline
	// stable. Invalid specs are left verbatim for the run (or the
	// service's submit validation) to report.
	o.Corners = corners.Canon(o.Corners)
	if o.Corners != corners.DefaultName && o.Tech.CornerSpec != o.Corners {
		// Generated sets derive from the native corner envelope; a Tech
		// that already carries an applied set is never re-derived (the
		// CornerSpec match above is what makes Resolve idempotent).
		if set, err := corners.Build(o.Corners, o.Tech); err == nil && o.Tech.CornerSpec == "" {
			o.Tech = set.Apply(o.Tech)
		}
	}
	return o
}

func (o *Options) fill() {
	if o.Tech == nil {
		o.Tech = tech.Default45()
	}
	if o.Engine == nil {
		o.Engine = spice.New()
		if o.FastSim {
			o.Engine.MaxSeg = 250
			o.Engine.Dt = 2
		}
	}
	if o.Gamma == 0 {
		o.Gamma = 0.10
	}
	if len(o.Ladder) == 0 {
		if o.LargeInverters {
			o.Ladder = o.Tech.BatchLadder("Large", 1)
		} else {
			o.Ladder = o.Tech.BatchLadder("Small", 8)
		}
	}
}
