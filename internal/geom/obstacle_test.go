package geom

import (
	"testing"
)

func TestCompoundGrouping(t *testing.T) {
	obs := []Obstacle{
		{Rect: NewRect(0, 0, 10, 10), Name: "a"},
		{Rect: NewRect(10, 0, 20, 10), Name: "b"},  // abuts a
		{Rect: NewRect(50, 50, 60, 60), Name: "c"}, // isolated
		{Rect: NewRect(5, 5, 15, 15), Name: "d"},   // overlaps a and b
	}
	s := NewObstacleSet(obs)
	if len(s.Compounds) != 2 {
		t.Fatalf("compounds=%d want 2", len(s.Compounds))
	}
	// a, b, d together; c alone.
	var big, small Compound
	for _, c := range s.Compounds {
		if len(c.Members) == 3 {
			big = c
		} else {
			small = c
		}
	}
	if len(big.Members) != 3 || len(small.Members) != 1 {
		t.Fatalf("member split wrong: %v / %v", big.Members, small.Members)
	}
	if big.BBox != (Rect{0, 0, 20, 15}) {
		t.Errorf("big bbox=%v", big.BBox)
	}
	if small.BBox != (Rect{50, 50, 60, 60}) {
		t.Errorf("small bbox=%v", small.BBox)
	}
}

func TestCompoundChainTransitivity(t *testing.T) {
	// A chain of abutting rects must merge into one compound even though the
	// ends do not touch each other.
	var obs []Obstacle
	for i := 0; i < 5; i++ {
		x := float64(i * 10)
		obs = append(obs, Obstacle{Rect: NewRect(x, 0, x+10, 10)})
	}
	s := NewObstacleSet(obs)
	if len(s.Compounds) != 1 {
		t.Fatalf("chain should form one compound, got %d", len(s.Compounds))
	}
	if s.Compounds[0].BBox != (Rect{0, 0, 50, 10}) {
		t.Errorf("bbox=%v", s.Compounds[0].BBox)
	}
}

func TestBlocksPointAndCompoundAt(t *testing.T) {
	s := NewObstacleSet([]Obstacle{{Rect: NewRect(0, 0, 10, 10)}})
	if !s.BlocksPoint(Pt(5, 5)) {
		t.Error("interior should block")
	}
	if s.BlocksPoint(Pt(0, 5)) {
		t.Error("boundary should not block (buffers may sit on edges)")
	}
	if s.BlocksPoint(Pt(50, 50)) {
		t.Error("outside should not block")
	}
	if got := s.CompoundAt(Pt(5, 5)); got != 0 {
		t.Errorf("CompoundAt=%d want 0", got)
	}
	if got := s.CompoundAt(Pt(50, 50)); got != -1 {
		t.Errorf("CompoundAt outside=%d want -1", got)
	}
}

func TestCompoundsCrossedBy(t *testing.T) {
	s := NewObstacleSet([]Obstacle{
		{Rect: NewRect(10, 10, 20, 20)},
		{Rect: NewRect(40, 10, 50, 20)},
	})
	pl := Polyline{Pt(0, 15), Pt(60, 15)}
	got := s.CompoundsCrossedBy(pl)
	if len(got) != 2 {
		t.Fatalf("crossed=%v want both", got)
	}
	pl2 := Polyline{Pt(0, 5), Pt(60, 5)}
	if got := s.CompoundsCrossedBy(pl2); len(got) != 0 {
		t.Errorf("crossed=%v want none", got)
	}
}

func TestContourRing(t *testing.T) {
	s := NewObstacleSet([]Obstacle{{Rect: NewRect(100, 100, 200, 200)}})
	ring := s.Contour(0)
	if len(ring) != 5 {
		t.Fatalf("ring len=%d want 5 (closed)", len(ring))
	}
	if !ring[0].Eq(ring[len(ring)-1], 0) {
		t.Error("ring not closed")
	}
	want := 4 * (100 + 2*ContourMargin)
	if got := ring.Length(); got != want {
		t.Errorf("ring length=%v want %v", got, want)
	}
	// Every ring point must be a legal buffer site.
	for _, p := range ring {
		if s.BlocksPoint(p) {
			t.Errorf("ring point %v is blocked", p)
		}
	}
}

func TestClipRing(t *testing.T) {
	die := NewRect(0, 0, 100, 100)
	ring := Polyline{Pt(-10, -10), Pt(110, -10), Pt(110, 110), Pt(-10, 110), Pt(-10, -10)}
	clipped := ClipRing(ring, die)
	for _, p := range clipped {
		if !die.Contains(p) {
			t.Errorf("clipped point %v outside die", p)
		}
	}
}

func TestEmptyObstacleSet(t *testing.T) {
	s := NewObstacleSet(nil)
	if s.Len() != 0 || len(s.Compounds) != 0 {
		t.Error("empty set should have no obstacles or compounds")
	}
	if s.BlocksPoint(Pt(1, 1)) {
		t.Error("nothing should block")
	}
	if s.SegmentCrossesAny(Pt(0, 0), Pt(100, 0)) {
		t.Error("no segment crossing expected")
	}
}
