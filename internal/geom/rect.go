package geom

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned rectangle, MinX <= MaxX and MinY <= MaxY.
// Rectangles are closed: boundary points are contained.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect builds a normalized rectangle from two corner points.
func NewRect(x0, y0, x1, y1 float64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{x0, y0, x1, y1}
}

// W returns the width of r.
func (r Rect) W() float64 { return r.MaxX - r.MinX }

// H returns the height of r.
func (r Rect) H() float64 { return r.MaxY - r.MinY }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.W() * r.H() }

// Center returns the center point of r.
func (r Rect) Center() Point { return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2} }

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsStrict reports whether p lies strictly inside r (boundary exclusive).
func (r Rect) ContainsStrict(p Point) bool {
	return p.X > r.MinX && p.X < r.MaxX && p.Y > r.MinY && p.Y < r.MaxY
}

// Intersects reports whether r and s overlap (sharing only a boundary counts).
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// IntersectsStrict reports whether r and s overlap with positive area.
func (r Rect) IntersectsStrict(s Rect) bool {
	return r.MinX < s.MaxX && s.MinX < r.MaxX && r.MinY < s.MaxY && s.MinY < r.MaxY
}

// Union returns the bounding box of r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		math.Min(r.MinX, s.MinX), math.Min(r.MinY, s.MinY),
		math.Max(r.MaxX, s.MaxX), math.Max(r.MaxY, s.MaxY),
	}
}

// Inflate returns r grown by d on every side (shrunk if d < 0).
func (r Rect) Inflate(d float64) Rect {
	return Rect{r.MinX - d, r.MinY - d, r.MaxX + d, r.MaxY + d}
}

// Empty reports whether r has non-positive extent in either axis.
func (r Rect) Empty() bool { return r.MaxX <= r.MinX || r.MaxY <= r.MinY }

func (r Rect) String() string {
	return fmt.Sprintf("[%.1f,%.1f %.1fx%.1f]", r.MinX, r.MinY, r.W(), r.H())
}

// SegmentIntersects reports whether the axis-parallel segment a-b crosses the
// interior of r. A segment that only touches the boundary does not count:
// wires may legally run along obstacle edges.
func (r Rect) SegmentIntersects(a, b Point) bool {
	if a.X == b.X { // vertical
		if a.X <= r.MinX || a.X >= r.MaxX {
			return false
		}
		lo, hi := math.Min(a.Y, b.Y), math.Max(a.Y, b.Y)
		return lo < r.MaxY && hi > r.MinY
	}
	if a.Y == b.Y { // horizontal
		if a.Y <= r.MinY || a.Y >= r.MaxY {
			return false
		}
		lo, hi := math.Min(a.X, b.X), math.Max(a.X, b.X)
		return lo < r.MaxX && hi > r.MinX
	}
	// Non-axis-parallel segments are treated by their bounding box; the
	// router only ever produces axis-parallel wires, so this path is a
	// conservative fallback.
	return r.IntersectsStrict(NewRect(a.X, a.Y, b.X, b.Y))
}

// ClosestBoundaryPoint returns the point on the boundary of r nearest to p in
// the Manhattan metric.
func (r Rect) ClosestBoundaryPoint(p Point) Point {
	q := p.Clamp(r)
	if !r.ContainsStrict(q) {
		return q
	}
	// p is inside: project to the nearest edge.
	dl := q.X - r.MinX
	dr := r.MaxX - q.X
	db := q.Y - r.MinY
	dt := r.MaxY - q.Y
	m := math.Min(math.Min(dl, dr), math.Min(db, dt))
	switch m {
	case dl:
		return Point{r.MinX, q.Y}
	case dr:
		return Point{r.MaxX, q.Y}
	case db:
		return Point{q.X, r.MinY}
	default:
		return Point{q.X, r.MaxY}
	}
}

// Corners returns the four corner points of r in counter-clockwise order
// starting from (MinX, MinY).
func (r Rect) Corners() [4]Point {
	return [4]Point{
		{r.MinX, r.MinY}, {r.MaxX, r.MinY}, {r.MaxX, r.MaxY}, {r.MinX, r.MaxY},
	}
}
