// Package geom provides the planar geometry substrate used by the clock-tree
// synthesizer: points and rectangles in the Manhattan (L1) metric, polyline
// wire routes, compound placement obstacles, and an obstacle-aware grid maze
// router.
//
// Units are micrometers (µm) throughout, matching the rest of the library.
package geom

import (
	"fmt"
	"math"
)

// Point is a location on the die, in µm.
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Manhattan returns the L1 (rectilinear wiring) distance between p and q.
func (p Point) Manhattan(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// Euclid returns the L2 distance between p and q. It is used only for
// diagnostics; wiring distances are always Manhattan.
func (p Point) Euclid(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p translated by -q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p with both coordinates multiplied by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Mid returns the midpoint of p and q.
func (p Point) Mid(q Point) Point { return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2} }

// Eq reports whether p and q coincide within tolerance eps.
func (p Point) Eq(q Point, eps float64) bool {
	return math.Abs(p.X-q.X) <= eps && math.Abs(p.Y-q.Y) <= eps
}

func (p Point) String() string { return fmt.Sprintf("(%.1f,%.1f)", p.X, p.Y) }

// Lerp returns the point a fraction t of the way from p to q (t in [0,1]).
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Clamp returns p with both coordinates clamped into r.
func (p Point) Clamp(r Rect) Point {
	x := math.Min(math.Max(p.X, r.MinX), r.MaxX)
	y := math.Min(math.Max(p.Y, r.MinY), r.MaxY)
	return Point{x, y}
}
