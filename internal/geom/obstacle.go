package geom

import "sort"

// Obstacle is a rectangular placement blockage (a pre-designed block such as
// a CPU, RAM or DSP macro). Wires may route over an obstacle, but buffers may
// not be placed on it.
type Obstacle struct {
	Rect Rect
	Name string
}

// Compound is a maximal group of mutually abutting or overlapping obstacles.
// Abutting obstacles leave no room for a buffer between them, so the paper
// (Section IV-A) treats them as a single compound obstacle. BBox is the
// bounding box of all members.
type Compound struct {
	Members []int // indices into the owning ObstacleSet
	BBox    Rect
}

// ObstacleSet holds all obstacles of a benchmark and their compound grouping.
type ObstacleSet struct {
	Obstacles  []Obstacle
	Compounds  []Compound
	compoundOf []int // obstacle index -> compound index
}

// NewObstacleSet groups the given obstacles into compounds (union-find over
// the "intersects or abuts" relation) and returns the resulting set.
func NewObstacleSet(obs []Obstacle) *ObstacleSet {
	s := &ObstacleSet{Obstacles: append([]Obstacle(nil), obs...)}
	n := len(s.Obstacles)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			// Intersects is boundary-inclusive, so abutting rectangles
			// (sharing an edge) are merged, per the paper.
			if s.Obstacles[i].Rect.Intersects(s.Obstacles[j].Rect) {
				union(i, j)
			}
		}
	}
	s.compoundOf = make([]int, n)
	groups := map[int][]int{}
	for i := 0; i < n; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	for ci, r := range roots {
		members := groups[r]
		sort.Ints(members)
		bbox := s.Obstacles[members[0]].Rect
		for _, m := range members[1:] {
			bbox = bbox.Union(s.Obstacles[m].Rect)
		}
		s.Compounds = append(s.Compounds, Compound{Members: members, BBox: bbox})
		for _, m := range members {
			s.compoundOf[m] = ci
		}
	}
	return s
}

// Len returns the number of individual obstacles.
func (s *ObstacleSet) Len() int { return len(s.Obstacles) }

// BlocksPoint reports whether a buffer placed at p would sit strictly inside
// some obstacle. Points on obstacle boundaries are legal buffer sites.
func (s *ObstacleSet) BlocksPoint(p Point) bool {
	for i := range s.Obstacles {
		if s.Obstacles[i].Rect.ContainsStrict(p) {
			return true
		}
	}
	return false
}

// CompoundAt returns the index of the compound whose member contains p
// strictly, or -1 when p is not inside any obstacle.
func (s *ObstacleSet) CompoundAt(p Point) int {
	for i := range s.Obstacles {
		if s.Obstacles[i].Rect.ContainsStrict(p) {
			return s.compoundOf[i]
		}
	}
	return -1
}

// CompoundsCrossedBy returns the (sorted, de-duplicated) indices of compounds
// whose members' interiors are crossed by the polyline.
func (s *ObstacleSet) CompoundsCrossedBy(pl Polyline) []int {
	seen := map[int]bool{}
	for i := range s.Obstacles {
		if pl.CrossesRect(s.Obstacles[i].Rect) {
			seen[s.compoundOf[i]] = true
		}
	}
	out := make([]int, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// SegmentCrossesAny reports whether the axis-parallel segment a-b crosses the
// interior of any obstacle.
func (s *ObstacleSet) SegmentCrossesAny(a, b Point) bool {
	for i := range s.Obstacles {
		if s.Obstacles[i].Rect.SegmentIntersects(a, b) {
			return true
		}
	}
	return false
}

// ContourMargin is how far outside a compound's bounding box its detour
// contour runs, so that buffers on the contour are strictly off the
// obstacle (µm).
const ContourMargin = 10.0

// Contour returns the detour ring for compound ci: the bounding box of the
// compound inflated by ContourMargin, as a closed counter-clockwise polyline
// (first point repeated at the end).
//
// The paper detours along the obstacle contour; for compounds of abutting
// rectangles the exact rectilinear union contour and its bounding box are
// interchangeable for the algorithm (both are closed rings strictly outside
// the blockage), and the bounding box keeps the ring convex so that distances
// along it are easy to reason about. The slight wirelength overestimate is
// compensated by the downstream electrical correction, exactly as the paper
// compensates for detour-induced skew.
func (s *ObstacleSet) Contour(ci int) Polyline {
	r := s.Compounds[ci].BBox.Inflate(ContourMargin)
	c := r.Corners()
	return Polyline{c[0], c[1], c[2], c[3], c[0]}
}

// Clip constrains every contour to the die area; contours sticking out of the
// die are clamped to its boundary (obstacles abutting the die periphery).
func ClipRing(ring Polyline, die Rect) Polyline {
	out := make(Polyline, len(ring))
	for i, p := range ring {
		out[i] = p.Clamp(die)
	}
	return out.Simplify()
}
