package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestPolylineLength(t *testing.T) {
	pl := Polyline{Pt(0, 0), Pt(10, 0), Pt(10, 5)}
	if got := pl.Length(); got != 15 {
		t.Errorf("Length=%v want 15", got)
	}
	if got := (Polyline{}).Length(); got != 0 {
		t.Errorf("empty Length=%v", got)
	}
	if got := (Polyline{Pt(1, 1)}).Length(); got != 0 {
		t.Errorf("single-point Length=%v", got)
	}
}

func TestRectify(t *testing.T) {
	pl := Polyline{Pt(0, 0), Pt(5, 5)}
	r := pl.Rectify()
	if len(r) != 3 {
		t.Fatalf("Rectify len=%d want 3: %v", len(r), r)
	}
	if !r[1].Eq(Pt(5, 0), 0) {
		t.Errorf("bend at %v want (5,0)", r[1])
	}
	if r.Length() != pl[0].Manhattan(pl[1]) {
		t.Errorf("rectified length %v != manhattan %v", r.Length(), pl[0].Manhattan(pl[1]))
	}
	for i := 1; i < len(r); i++ {
		if r[i-1].X != r[i].X && r[i-1].Y != r[i].Y {
			t.Errorf("segment %d not axis-parallel", i)
		}
	}
}

func TestSimplify(t *testing.T) {
	pl := Polyline{Pt(0, 0), Pt(5, 0), Pt(10, 0), Pt(10, 0), Pt(10, 5)}
	s := pl.Simplify()
	if len(s) != 3 {
		t.Fatalf("Simplify len=%d want 3: %v", len(s), s)
	}
	if s.Length() != pl.Length() {
		t.Errorf("Simplify changed length: %v vs %v", s.Length(), pl.Length())
	}
}

func TestAtAndSplit(t *testing.T) {
	pl := Polyline{Pt(0, 0), Pt(10, 0), Pt(10, 10)}
	if got := pl.At(0); !got.Eq(Pt(0, 0), 0) {
		t.Errorf("At(0)=%v", got)
	}
	if got := pl.At(5); !got.Eq(Pt(5, 0), 0) {
		t.Errorf("At(5)=%v", got)
	}
	if got := pl.At(15); !got.Eq(Pt(10, 5), 0) {
		t.Errorf("At(15)=%v", got)
	}
	if got := pl.At(999); !got.Eq(Pt(10, 10), 0) {
		t.Errorf("At(999)=%v", got)
	}
	a, b := pl.Split(12)
	if math.Abs(a.Length()-12) > 1e-9 || math.Abs(b.Length()-8) > 1e-9 {
		t.Errorf("Split lengths %v,%v want 12,8", a.Length(), b.Length())
	}
	if !a[len(a)-1].Eq(b[0], 0) {
		t.Errorf("Split halves disagree at cut: %v vs %v", a[len(a)-1], b[0])
	}
}

func TestSplitProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(5)
		pl := Polyline{Pt(0, 0)}
		for i := 1; i < n; i++ {
			last := pl[len(pl)-1]
			if rng.Intn(2) == 0 {
				pl = append(pl, Pt(last.X+float64(1+rng.Intn(20)), last.Y))
			} else {
				pl = append(pl, Pt(last.X, last.Y+float64(1+rng.Intn(20))))
			}
		}
		total := pl.Length()
		d := rng.Float64() * total
		a, b := pl.Split(d)
		if math.Abs(a.Length()+b.Length()-total) > 1e-6 {
			t.Fatalf("split lengths %v+%v != %v", a.Length(), b.Length(), total)
		}
		if math.Abs(a.Length()-d) > 1e-6 {
			t.Fatalf("first half length %v want %v", a.Length(), d)
		}
	}
}

func TestLShape(t *testing.T) {
	ls := LShape(Pt(0, 0), Pt(10, 20))
	for i, pl := range ls {
		if got := pl.Length(); got != 30 {
			t.Errorf("LShape[%d] length=%v want 30", i, got)
		}
	}
	if ls[0][1] != Pt(10, 0) {
		t.Errorf("horizontal-first bend %v", ls[0][1])
	}
	if ls[1][1] != Pt(0, 20) {
		t.Errorf("vertical-first bend %v", ls[1][1])
	}
	aligned := LShape(Pt(0, 0), Pt(0, 9))
	if len(aligned[0]) != 2 || aligned[0].Length() != 9 {
		t.Errorf("aligned LShape %v", aligned[0])
	}
}

func TestOverlapWithRect(t *testing.T) {
	r := NewRect(10, 10, 20, 20)
	cases := []struct {
		pl   Polyline
		want float64
	}{
		{Polyline{Pt(0, 15), Pt(30, 15)}, 10},
		{Polyline{Pt(0, 5), Pt(30, 5)}, 0},
		{Polyline{Pt(12, 12), Pt(18, 12)}, 6},
		{Polyline{Pt(0, 15), Pt(15, 15), Pt(15, 30)}, 10}, // 5 horiz + 5 vert
		{Polyline{Pt(0, 10), Pt(30, 10)}, 0},              // on edge
	}
	for _, c := range cases {
		if got := c.pl.OverlapWithRect(r); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Overlap(%v)=%v want %v", c.pl, got, c.want)
		}
	}
}

func TestReverse(t *testing.T) {
	pl := Polyline{Pt(0, 0), Pt(1, 0), Pt(1, 5)}
	r := pl.Reverse()
	if !r[0].Eq(Pt(1, 5), 0) || !r[2].Eq(Pt(0, 0), 0) {
		t.Errorf("Reverse=%v", r)
	}
	if r.Length() != pl.Length() {
		t.Error("Reverse changed length")
	}
}
