package geom

// Polyline is an ordered list of points describing a rectilinear wire route.
// Consecutive points are expected to differ in at most one coordinate; the
// helper Rectify inserts bend points when they do not.
type Polyline []Point

// Length returns the total Manhattan length of the polyline.
func (pl Polyline) Length() float64 {
	var l float64
	for i := 1; i < len(pl); i++ {
		l += pl[i-1].Manhattan(pl[i])
	}
	return l
}

// Rectify returns a copy of pl where every diagonal hop has been replaced by
// an L-shape (horizontal then vertical). Existing axis-parallel segments are
// kept as-is and zero-length hops are dropped.
func (pl Polyline) Rectify() Polyline {
	if len(pl) == 0 {
		return nil
	}
	// Worst case inserts one bend per hop: allocate once.
	out := make(Polyline, 1, 2*len(pl)-1)
	out[0] = pl[0]
	for i := 1; i < len(pl); i++ {
		prev := out[len(out)-1]
		cur := pl[i]
		if prev.X != cur.X && prev.Y != cur.Y {
			out = append(out, Point{cur.X, prev.Y})
		}
		if !cur.Eq(out[len(out)-1], 0) {
			out = append(out, cur)
		}
	}
	return out
}

// Simplify removes collinear interior points and zero-length segments.
func (pl Polyline) Simplify() Polyline {
	if len(pl) < 3 {
		return pl
	}
	// Never grows past the input: allocate once.
	out := make(Polyline, 1, len(pl))
	out[0] = pl[0]
	for i := 1; i < len(pl); i++ {
		p := pl[i]
		last := out[len(out)-1]
		if p.Eq(last, 0) {
			continue
		}
		if len(out) >= 2 {
			prev := out[len(out)-2]
			if (prev.X == last.X && last.X == p.X) || (prev.Y == last.Y && last.Y == p.Y) {
				out[len(out)-1] = p
				continue
			}
		}
		out = append(out, p)
	}
	return out
}

// Reverse returns the polyline traversed in the opposite direction.
func (pl Polyline) Reverse() Polyline {
	out := make(Polyline, len(pl))
	for i, p := range pl {
		out[len(pl)-1-i] = p
	}
	return out
}

// At returns the point a Manhattan distance d along the polyline from its
// first point. d is clamped to [0, Length].
func (pl Polyline) At(d float64) Point {
	if len(pl) == 0 {
		return Point{}
	}
	if d <= 0 {
		return pl[0]
	}
	for i := 1; i < len(pl); i++ {
		seg := pl[i-1].Manhattan(pl[i])
		if d <= seg && seg > 0 {
			return pl[i-1].Lerp(pl[i], d/seg)
		}
		d -= seg
	}
	return pl[len(pl)-1]
}

// Split cuts the polyline at Manhattan distance d from its start and returns
// the two halves; the cut point is duplicated as the last point of the first
// half and the first point of the second.
func (pl Polyline) Split(d float64) (Polyline, Polyline) {
	if len(pl) < 2 {
		return pl, nil
	}
	if d <= 0 {
		return Polyline{pl[0], pl[0]}, append(Polyline(nil), pl...)
	}
	acc := 0.0
	for i := 1; i < len(pl); i++ {
		seg := pl[i-1].Manhattan(pl[i])
		if acc+seg >= d && seg > 0 {
			cut := pl[i-1].Lerp(pl[i], (d-acc)/seg)
			first := append(append(Polyline(nil), pl[:i]...), cut)
			second := append(Polyline{cut}, pl[i:]...)
			return first.Simplify(), second.Simplify()
		}
		acc += seg
	}
	end := pl[len(pl)-1]
	return append(Polyline(nil), pl...), Polyline{end, end}
}

// CrossesRect reports whether any segment of pl crosses the interior of r.
func (pl Polyline) CrossesRect(r Rect) bool {
	for i := 1; i < len(pl); i++ {
		if r.SegmentIntersects(pl[i-1], pl[i]) {
			return true
		}
	}
	return false
}

// LShape returns the two candidate single-bend routes between a and b:
// horizontal-first and vertical-first. When a and b are axis-aligned the two
// candidates coincide and contain no bend.
func LShape(a, b Point) [2]Polyline {
	if a.X == b.X || a.Y == b.Y {
		seg := Polyline{a, b}
		return [2]Polyline{seg, seg}
	}
	return [2]Polyline{
		{a, Point{b.X, a.Y}, b}, // horizontal first
		{a, Point{a.X, b.Y}, b}, // vertical first
	}
}

// OverlapWithRect returns the total length of pl running strictly inside r.
func (pl Polyline) OverlapWithRect(r Rect) float64 {
	var total float64
	for i := 1; i < len(pl); i++ {
		a, b := pl[i-1], pl[i]
		if a.X == b.X { // vertical
			if a.X <= r.MinX || a.X >= r.MaxX {
				continue
			}
			lo := maxf(minf(a.Y, b.Y), r.MinY)
			hi := minf(maxf(a.Y, b.Y), r.MaxY)
			if hi > lo {
				total += hi - lo
			}
		} else if a.Y == b.Y { // horizontal
			if a.Y <= r.MinY || a.Y >= r.MaxY {
				continue
			}
			lo := maxf(minf(a.X, b.X), r.MinX)
			hi := minf(maxf(a.X, b.X), r.MaxX)
			if hi > lo {
				total += hi - lo
			}
		}
	}
	return total
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
