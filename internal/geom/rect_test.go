package geom

import (
	"testing"
	"testing/quick"
)

func TestRectNormalization(t *testing.T) {
	r := NewRect(10, 20, 0, 5)
	if r.MinX != 0 || r.MinY != 5 || r.MaxX != 10 || r.MaxY != 20 {
		t.Errorf("NewRect not normalized: %v", r)
	}
	if r.W() != 10 || r.H() != 15 {
		t.Errorf("W/H wrong: %v %v", r.W(), r.H())
	}
	if r.Area() != 150 {
		t.Errorf("Area=%v", r.Area())
	}
}

func TestContains(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	if !r.Contains(Pt(0, 0)) || !r.Contains(Pt(10, 10)) || !r.Contains(Pt(5, 5)) {
		t.Error("boundary/interior should be contained")
	}
	if r.ContainsStrict(Pt(0, 5)) {
		t.Error("boundary should not be strictly contained")
	}
	if r.Contains(Pt(11, 5)) {
		t.Error("outside point contained")
	}
}

func TestIntersects(t *testing.T) {
	a := NewRect(0, 0, 10, 10)
	cases := []struct {
		b              Rect
		touch, overlap bool
	}{
		{NewRect(5, 5, 15, 15), true, true},
		{NewRect(10, 0, 20, 10), true, false}, // abutting edge
		{NewRect(11, 0, 20, 10), false, false},
		{NewRect(2, 2, 8, 8), true, true}, // contained
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.touch {
			t.Errorf("Intersects(%v)=%v want %v", c.b, got, c.touch)
		}
		if got := a.IntersectsStrict(c.b); got != c.overlap {
			t.Errorf("IntersectsStrict(%v)=%v want %v", c.b, got, c.overlap)
		}
	}
}

func TestSegmentIntersects(t *testing.T) {
	r := NewRect(10, 10, 20, 20)
	cases := []struct {
		a, b Point
		want bool
	}{
		{Pt(0, 15), Pt(30, 15), true},   // horizontal through
		{Pt(15, 0), Pt(15, 30), true},   // vertical through
		{Pt(0, 10), Pt(30, 10), false},  // along bottom edge
		{Pt(10, 0), Pt(10, 30), false},  // along left edge
		{Pt(0, 5), Pt(30, 5), false},    // below
		{Pt(12, 12), Pt(18, 12), true},  // fully inside
		{Pt(0, 15), Pt(12, 15), true},   // enters interior
		{Pt(0, 15), Pt(10, 15), false},  // stops at boundary
		{Pt(25, 15), Pt(30, 15), false}, // outside to the right
	}
	for _, c := range cases {
		if got := r.SegmentIntersects(c.a, c.b); got != c.want {
			t.Errorf("SegmentIntersects(%v,%v)=%v want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestUnionInflate(t *testing.T) {
	a := NewRect(0, 0, 5, 5)
	b := NewRect(3, 3, 10, 12)
	u := a.Union(b)
	if u != (Rect{0, 0, 10, 12}) {
		t.Errorf("Union=%v", u)
	}
	in := a.Inflate(2)
	if in != (Rect{-2, -2, 7, 7}) {
		t.Errorf("Inflate=%v", in)
	}
	if !a.Inflate(-3).Empty() {
		t.Error("over-shrunk rect should be empty")
	}
}

func TestClosestBoundaryPoint(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	cases := []struct{ p, want Point }{
		{Pt(-5, 5), Pt(0, 5)},
		{Pt(5, 12), Pt(5, 10)},
		{Pt(1, 5), Pt(0, 5)},  // inside, near left edge
		{Pt(5, 9), Pt(5, 10)}, // inside, near top edge
		{Pt(0, 0), Pt(0, 0)},  // on corner
	}
	for _, c := range cases {
		if got := r.ClosestBoundaryPoint(c.p); !got.Eq(c.want, 1e-9) {
			t.Errorf("ClosestBoundaryPoint(%v)=%v want %v", c.p, got, c.want)
		}
	}
}

func TestClosestBoundaryPointProperty(t *testing.T) {
	r := NewRect(0, 0, 100, 50)
	prop := func(x, y float64) bool {
		p := Pt(mod(x, 200)-50, mod(y, 150)-50)
		q := r.ClosestBoundaryPoint(p)
		onBoundary := (q.X == r.MinX || q.X == r.MaxX) && q.Y >= r.MinY && q.Y <= r.MaxY ||
			(q.Y == r.MinY || q.Y == r.MaxY) && q.X >= r.MinX && q.X <= r.MaxX
		return onBoundary
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func mod(x, m float64) float64 {
	v := x - float64(int(x/m))*m
	if v < 0 {
		v += m
	}
	return v
}
