package geom

import (
	"errors"
	"math"
)

// Maze is a uniform-grid maze router used to find obstacle-avoiding
// rectilinear paths for point-to-point wires (paper Section IV-A, Step 1).
// Grid cells whose center lies strictly inside an obstacle are blocked.
// Route reuses per-grid scratch held on the Maze, so a Maze must not be
// shared by concurrent Route calls.
type Maze struct {
	die     Rect
	step    float64
	nx, ny  int
	blocked []bool

	// Search scratch, reused across Route calls.
	dist  []float64
	prev  []int32
	pq    mazePQ
	cells []int32
	path  Polyline
}

// NewMaze rasterizes the obstacle set onto a grid with the given cell size
// (µm) over the die area. A nil obstacle set yields an empty maze.
func NewMaze(die Rect, step float64, obs *ObstacleSet) *Maze {
	if step <= 0 {
		step = 1
	}
	nx := int(math.Ceil(die.W()/step)) + 1
	ny := int(math.Ceil(die.H()/step)) + 1
	if nx < 2 {
		nx = 2
	}
	if ny < 2 {
		ny = 2
	}
	m := &Maze{die: die, step: step, nx: nx, ny: ny, blocked: make([]bool, nx*ny)}
	if obs != nil {
		for i := range obs.Obstacles {
			r := obs.Obstacles[i].Rect
			i0, j0 := m.cellOf(Point{r.MinX, r.MinY})
			i1, j1 := m.cellOf(Point{r.MaxX, r.MaxY})
			for j := j0; j <= j1; j++ {
				for i := i0; i <= i1; i++ {
					if r.ContainsStrict(m.center(i, j)) {
						m.blocked[j*m.nx+i] = true
					}
				}
			}
		}
	}
	return m
}

// Step returns the grid cell size in µm.
func (m *Maze) Step() float64 { return m.step }

func (m *Maze) cellOf(p Point) (int, int) {
	i := int(math.Round((p.X - m.die.MinX) / m.step))
	j := int(math.Round((p.Y - m.die.MinY) / m.step))
	if i < 0 {
		i = 0
	}
	if i >= m.nx {
		i = m.nx - 1
	}
	if j < 0 {
		j = 0
	}
	if j >= m.ny {
		j = m.ny - 1
	}
	return i, j
}

func (m *Maze) center(i, j int) Point {
	return Point{m.die.MinX + float64(i)*m.step, m.die.MinY + float64(j)*m.step}
}

// Blocked reports whether the cell containing p is blocked.
func (m *Maze) Blocked(p Point) bool {
	i, j := m.cellOf(p)
	return m.blocked[j*m.nx+i]
}

// ErrNoRoute is returned when the maze holds no path between the endpoints.
var ErrNoRoute = errors.New("geom: no obstacle-avoiding route exists")

type mazeItem struct {
	cell int
	dir  int8 // arrival direction 0..3, -1 at start
	cost float64
}

// mazePQ is a typed binary min-heap on cost. push and pop replicate
// container/heap's sift algorithms (same element comparisons in the same
// order), so the frontier pops in exactly the order the boxed
// heap.Push/heap.Pop implementation produced — routes are unchanged — while
// avoiding the interface{} allocation both of those made per item.
type mazePQ []mazeItem

func (q mazePQ) less(i, j int) bool { return q[i].cost < q[j].cost }

func (q *mazePQ) push(it mazeItem) {
	*q = append(*q, it)
	h := *q
	// Sift up, as container/heap.up.
	j := len(h) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (q *mazePQ) pop() mazeItem {
	h := *q
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	// Sift down over h[:n], as container/heap.down.
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h.less(j2, j1) {
			j = j2
		}
		if !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	it := h[n]
	*q = h[:n]
	return it
}

// bendPenalty biases the search toward straight runs so that routes have few
// jogs; it is small enough never to trade extra length for fewer bends.
const bendPenalty = 1e-3

// Route finds a shortest obstacle-avoiding rectilinear path from a to b.
// Endpoints that fall in blocked cells are allowed to escape through blocked
// cells until free space is reached (needed when a sink abuts an obstacle
// edge). The returned polyline starts exactly at a and ends exactly at b.
func (m *Maze) Route(a, b Point) (Polyline, error) {
	si, sj := m.cellOf(a)
	ti, tj := m.cellOf(b)
	start := sj*m.nx + si
	target := tj*m.nx + ti
	if start == target {
		return Polyline{a, b}.Rectify().Simplify(), nil
	}
	if len(m.dist) != m.nx*m.ny {
		m.dist = make([]float64, m.nx*m.ny)
		m.prev = make([]int32, m.nx*m.ny)
	}
	dist := m.dist
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	prev := m.prev
	for i := range prev {
		prev[i] = -1
	}
	dx := [4]int{1, -1, 0, 0}
	dy := [4]int{0, 0, 1, -1}
	pq := &m.pq
	*pq = append((*pq)[:0], mazeItem{cell: start, dir: -1, cost: 0})
	dist[start] = 0
	for len(*pq) > 0 {
		it := pq.pop()
		if it.cell == target {
			break
		}
		if it.cost > dist[it.cell]+2*bendPenalty {
			continue
		}
		ci := it.cell % m.nx
		cj := it.cell / m.nx
		for d := 0; d < 4; d++ {
			ni, nj := ci+dx[d], cj+dy[d]
			if ni < 0 || ni >= m.nx || nj < 0 || nj >= m.ny {
				continue
			}
			nc := nj*m.nx + ni
			// Blocked cells are passable only while escaping from (or
			// approaching) a blocked endpoint region.
			if m.blocked[nc] && nc != target && !m.blocked[it.cell] {
				continue
			}
			cost := it.cost + 1
			if it.dir >= 0 && it.dir != int8(d) {
				cost += bendPenalty
			}
			if cost < dist[nc] {
				dist[nc] = cost
				prev[nc] = int32(it.cell)
				pq.push(mazeItem{cell: nc, dir: int8(d), cost: cost})
			}
		}
	}
	if math.IsInf(dist[target], 1) {
		return nil, ErrNoRoute
	}
	// Backtrack and build the raw path in scratch reused across calls; the
	// returned polyline is the fresh copy Rectify makes, so it never aliases
	// the scratch.
	cells := m.cells[:0]
	for c := target; c != -1; c = int(prev[c]) {
		cells = append(cells, int32(c))
		if c == start {
			break
		}
	}
	m.cells = cells
	pl := append(m.path[:0], a)
	for i := len(cells) - 1; i >= 0; i-- {
		c := int(cells[i])
		pl = append(pl, m.center(c%m.nx, c/m.nx))
	}
	pl = append(pl, b)
	m.path = pl
	return pl.Rectify().Simplify(), nil
}
