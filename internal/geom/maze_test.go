package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestMazeRouteEmptyGrid(t *testing.T) {
	die := NewRect(0, 0, 1000, 1000)
	m := NewMaze(die, 10, nil)
	a, b := Pt(100, 100), Pt(900, 700)
	pl, err := m.Route(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !pl[0].Eq(a, 0) || !pl[len(pl)-1].Eq(b, 0) {
		t.Fatalf("route endpoints wrong: %v", pl)
	}
	// On an empty grid the route must be (near) the Manhattan distance;
	// grid snapping can add at most a couple of cells.
	if pl.Length() > a.Manhattan(b)+4*m.Step() {
		t.Errorf("route length %v >> manhattan %v", pl.Length(), a.Manhattan(b))
	}
}

func TestMazeRouteAvoidsObstacle(t *testing.T) {
	die := NewRect(0, 0, 1000, 1000)
	obs := NewObstacleSet([]Obstacle{{Rect: NewRect(400, 0, 600, 900)}})
	m := NewMaze(die, 10, obs)
	a, b := Pt(100, 450), Pt(900, 450)
	pl, err := m.Route(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if pl.CrossesRect(NewRect(400+10, 0+10, 600-10, 900-10)) {
		t.Errorf("route crosses obstacle interior: %v", pl)
	}
	// Detour must go over the top (y>900): length >= direct + 2*(900-450) - slack
	want := a.Manhattan(b) + 2*(900-450)
	if pl.Length() < want-50 {
		t.Errorf("route length %v suspiciously short, want >= %v", pl.Length(), want)
	}
}

func TestMazeRouteNoPath(t *testing.T) {
	die := NewRect(0, 0, 100, 100)
	// Wall fully dividing the die.
	obs := NewObstacleSet([]Obstacle{{Rect: NewRect(45, -10, 55, 110)}})
	m := NewMaze(die, 5, obs)
	_, err := m.Route(Pt(10, 50), Pt(90, 50))
	if err != ErrNoRoute {
		t.Fatalf("want ErrNoRoute, got %v", err)
	}
}

func TestMazeRouteSamePoint(t *testing.T) {
	m := NewMaze(NewRect(0, 0, 100, 100), 5, nil)
	pl, err := m.Route(Pt(50, 50), Pt(50, 50))
	if err != nil {
		t.Fatal(err)
	}
	if pl.Length() != 0 {
		t.Errorf("zero route has length %v", pl.Length())
	}
}

func TestMazeRouteMatchesManhattanOnEmptyGrid(t *testing.T) {
	// Property: on an obstacle-free grid, maze routes are shortest paths.
	die := NewRect(0, 0, 500, 500)
	m := NewMaze(die, 10, nil)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		a := Pt(float64(rng.Intn(50))*10, float64(rng.Intn(50))*10)
		b := Pt(float64(rng.Intn(50))*10, float64(rng.Intn(50))*10)
		pl, err := m.Route(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pl.Length()-a.Manhattan(b)) > 1e-6 {
			t.Fatalf("route %v->%v length %v want %v", a, b, pl.Length(), a.Manhattan(b))
		}
		for j := 1; j < len(pl); j++ {
			if pl[j-1].X != pl[j].X && pl[j-1].Y != pl[j].Y {
				t.Fatalf("non-rectilinear segment in %v", pl)
			}
		}
	}
}

func TestMazeRouteScratchReuse(t *testing.T) {
	// Repeated Route calls on one Maze must not grow scratch per call: after
	// a warm-up, the only allocations left are the returned polyline (the
	// Rectify copy and, when it drops points, the Simplify copy).
	die := NewRect(0, 0, 1000, 1000)
	obs := NewObstacleSet([]Obstacle{{Rect: NewRect(400, 0, 600, 900)}})
	m := NewMaze(die, 10, obs)
	a, b := Pt(100, 450), Pt(900, 450)
	if _, err := m.Route(a, b); err != nil { // warm up scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := m.Route(a, b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Errorf("Route allocates %.0f objects per call, want <= 2 (result only)", allocs)
	}
}

func TestMazeRouteScratchDoesNotAliasResult(t *testing.T) {
	// The returned polyline must survive later Route calls reusing scratch.
	m := NewMaze(NewRect(0, 0, 500, 500), 10, nil)
	first, err := m.Route(Pt(10, 10), Pt(490, 480))
	if err != nil {
		t.Fatal(err)
	}
	saved := append(Polyline(nil), first...)
	for i := 0; i < 5; i++ {
		if _, err := m.Route(Pt(float64(20*i), 490), Pt(480, float64(30*i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := range saved {
		if !first[i].Eq(saved[i], 0) {
			t.Fatalf("result polyline mutated by later Route calls at %d: %v != %v", i, first[i], saved[i])
		}
	}
}

func TestMazeEscapeFromBlockedEndpoint(t *testing.T) {
	// A sink sitting inside an obstacle footprint (cell-wise) must still be
	// reachable: escape through blocked cells is allowed at the endpoints.
	die := NewRect(0, 0, 200, 200)
	obs := NewObstacleSet([]Obstacle{{Rect: NewRect(90, 90, 110, 110)}})
	m := NewMaze(die, 5, obs)
	pl, err := m.Route(Pt(100, 100), Pt(10, 10))
	if err != nil {
		t.Fatalf("blocked endpoint should be escapable: %v", err)
	}
	if !pl[0].Eq(Pt(100, 100), 0) {
		t.Errorf("route must start at requested point")
	}
}
