package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestManhattanBasics(t *testing.T) {
	cases := []struct {
		a, b Point
		want float64
	}{
		{Pt(0, 0), Pt(0, 0), 0},
		{Pt(0, 0), Pt(3, 4), 7},
		{Pt(-1, -1), Pt(1, 1), 4},
		{Pt(5, 0), Pt(0, 0), 5},
		{Pt(2.5, 2.5), Pt(2.5, 7.5), 5},
	}
	for _, c := range cases {
		if got := c.a.Manhattan(c.b); got != c.want {
			t.Errorf("Manhattan(%v,%v)=%v want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestManhattanMetricAxioms(t *testing.T) {
	symmetric := func(ax, ay, bx, by float64) bool {
		a, b := Pt(ax, ay), Pt(bx, by)
		return a.Manhattan(b) == b.Manhattan(a)
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Errorf("symmetry: %v", err)
	}
	triangle := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Pt(ax, ay), Pt(bx, by), Pt(cx, cy)
		lhs := a.Manhattan(c)
		rhs := a.Manhattan(b) + b.Manhattan(c)
		if math.IsNaN(lhs) || math.IsNaN(rhs) || math.IsInf(rhs, 1) {
			return true // degenerate random floats
		}
		return lhs <= rhs*(1+1e-12)+1e-9
	}
	if err := quick.Check(triangle, nil); err != nil {
		t.Errorf("triangle inequality: %v", err)
	}
	nonneg := func(ax, ay, bx, by float64) bool {
		d := Pt(ax, ay).Manhattan(Pt(bx, by))
		return d >= 0 || math.IsNaN(d)
	}
	if err := quick.Check(nonneg, nil); err != nil {
		t.Errorf("non-negativity: %v", err)
	}
}

func TestLerpEndpointsAndMid(t *testing.T) {
	a, b := Pt(1, 2), Pt(5, 10)
	if got := a.Lerp(b, 0); !got.Eq(a, 0) {
		t.Errorf("Lerp(0)=%v want %v", got, a)
	}
	if got := a.Lerp(b, 1); !got.Eq(b, 0) {
		t.Errorf("Lerp(1)=%v want %v", got, b)
	}
	if got := a.Mid(b); !got.Eq(Pt(3, 6), 0) {
		t.Errorf("Mid=%v want (3,6)", got)
	}
}

func TestClamp(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	cases := []struct{ in, want Point }{
		{Pt(-5, 5), Pt(0, 5)},
		{Pt(15, 15), Pt(10, 10)},
		{Pt(3, 4), Pt(3, 4)},
	}
	for _, c := range cases {
		if got := c.in.Clamp(r); !got.Eq(c.want, 0) {
			t.Errorf("Clamp(%v)=%v want %v", c.in, got, c.want)
		}
	}
}

func TestAddSubScale(t *testing.T) {
	p := Pt(1, 2)
	if got := p.Add(Pt(3, 4)); !got.Eq(Pt(4, 6), 0) {
		t.Errorf("Add=%v", got)
	}
	if got := p.Sub(Pt(3, 4)); !got.Eq(Pt(-2, -2), 0) {
		t.Errorf("Sub=%v", got)
	}
	if got := p.Scale(2); !got.Eq(Pt(2, 4), 0) {
		t.Errorf("Scale=%v", got)
	}
}
