// Package corners models PVT corner sets: named collections of evaluation
// scenarios (supply voltage plus interconnect derates), with explicit
// reference and worst-case roles and per-corner statistical weights.
//
// The reproduction historically hard-coded exactly two corners — "fast" at
// index 0, "slow" at the end — across tech, analysis, eval, buffering and
// opt. This package turns that into a first-class, pluggable layer:
//
//	ispd09                      the contest pair carried by the technology
//	                            model itself (fast 1.2 V / slow 1.0 V on
//	                            tech.Default45) — the default, and exactly
//	                            the legacy behavior
//	pvt5                        a five-corner PVT envelope derived from the
//	                            technology's native fast/slow pair: an
//	                            overdrive FF corner, the native pair, a
//	                            typical midpoint and an undervolt SS corner,
//	                            with interconnect derates on the process
//	                            extremes
//	mc:<n>:<seed>[:vσ[:rσ[:cσ]]] n deterministic Monte Carlo samples of
//	                            (Vdd, RDerate, CDerate) drawn around the
//	                            native corner envelope with the given
//	                            relative sigmas (defaults 0.05 each). Same
//	                            seed, same samples — runs are reproducible
//	                            and content-addressable.
//
// A Set is applied to a technology model with Apply, which installs the
// corners and their roles on a clone; every downstream consumer (the
// evaluators, the optimization passes, the eval metrics layer) then reads
// roles through tech.Tech's Reference/Worst accessors instead of indexing
// positionally.
package corners

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"contango/internal/tech"
)

// DefaultName is the default corner-set spec: the technology model's own
// corner list with the legacy roles (first = reference, last = worst).
const DefaultName = "ispd09"

// Set is a corner set: the scenarios plus their roles. Ref and Worst index
// into Corners; MC marks Monte Carlo sample sets (yield and quantile
// statistics apply).
type Set struct {
	Spec    string // canonical spec string ("ispd09", "pvt5", "mc:8:1", …)
	Corners []tech.Corner
	Ref     int  // reference (fast) corner index
	Worst   int  // worst-case (slow) corner index
	MC      bool // Monte Carlo sample set
}

// Reference returns the set's fast (reference) corner.
func (s *Set) Reference() tech.Corner { return s.Corners[s.Ref] }

// WorstCase returns the set's worst-case (slow) corner.
func (s *Set) WorstCase() tech.Corner { return s.Corners[s.Worst] }

// FromTech views a technology model's installed corners as a Set, reading
// the roles from the Tech accessors. It is how layers that only hold a
// tree (the optimization passes, CNE-only evaluation) recover the active
// set.
func FromTech(t *tech.Tech) *Set {
	spec := t.CornerSpec
	if spec == "" {
		spec = DefaultName
	}
	return &Set{
		Spec:    spec,
		Corners: t.Corners,
		Ref:     t.ReferenceIndex(),
		Worst:   t.WorstIndex(),
		MC:      t.MCSet,
	}
}

// Apply returns a clone of t with the set's corners and roles installed.
// The original Tech is never mutated — callers that share technology
// models across runs rely on that.
func (s *Set) Apply(t *tech.Tech) *tech.Tech {
	cp := t.Clone()
	cp.Corners = append([]tech.Corner(nil), s.Corners...)
	cp.RefIdx = s.Ref
	cp.WorstIdx = s.Worst
	cp.MCSet = s.MC
	cp.CornerSpec = s.Spec
	return cp
}

// spec is a parsed corner-set spec.
type spec struct {
	kind                   string // "ispd09", "pvt5", "mc"
	n                      int
	seed                   int64
	vSigma, rSigma, cSigma float64
}

// defaultSigma is the relative sigma applied to Vdd, wire resistance and
// capacitance when an mc spec does not override them.
const defaultSigma = 0.05

// parseSpec validates the corner-set grammar without needing a technology
// model.
func parseSpec(raw string) (spec, error) {
	sp := strings.TrimSpace(raw)
	switch sp {
	case "", DefaultName:
		return spec{kind: DefaultName}, nil
	case "pvt5":
		return spec{kind: "pvt5"}, nil
	}
	if !strings.HasPrefix(sp, "mc:") {
		return spec{}, fmt.Errorf("corners: unknown corner set %q (want %s, or mc:<n>:<seed>[:vsigma[:rsigma[:csigma]]])",
			raw, strings.Join(Names(), ", "))
	}
	parts := strings.Split(sp, ":")
	if len(parts) < 3 || len(parts) > 6 {
		return spec{}, fmt.Errorf("corners: bad mc spec %q (want mc:<n>:<seed>[:vsigma[:rsigma[:csigma]]])", raw)
	}
	out := spec{kind: "mc", vSigma: defaultSigma, rSigma: defaultSigma, cSigma: defaultSigma}
	n, err := strconv.Atoi(parts[1])
	if err != nil || n < 1 || n > 4096 {
		return spec{}, fmt.Errorf("corners: bad mc sample count %q (want 1..4096)", parts[1])
	}
	out.n = n
	seed, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil {
		return spec{}, fmt.Errorf("corners: bad mc seed %q: %v", parts[2], err)
	}
	out.seed = seed
	sigmas := []*float64{&out.vSigma, &out.rSigma, &out.cSigma}
	for i, p := range parts[3:] {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil || v < 0 || v > 0.5 {
			return spec{}, fmt.Errorf("corners: bad mc sigma %q (want 0..0.5)", p)
		}
		*sigmas[i] = v
	}
	return out, nil
}

// Validate reports whether raw parses as a corner-set spec. An empty spec
// is valid (it means the default set).
func Validate(raw string) error {
	_, err := parseSpec(raw)
	return err
}

// Canon returns the canonical rendering of a valid spec (the empty spec
// canonicalizes to DefaultName; mc specs spell out every sigma). Invalid
// specs are returned verbatim — the caller's Build reports the error.
func Canon(raw string) string {
	sp, err := parseSpec(raw)
	if err != nil {
		return raw
	}
	return sp.String()
}

func (sp spec) String() string {
	switch sp.kind {
	case "mc":
		return fmt.Sprintf("mc:%d:%d:%g:%g:%g", sp.n, sp.seed, sp.vSigma, sp.rSigma, sp.cSigma)
	default:
		return sp.kind
	}
}

// Names lists the built-in corner-set names (the mc family is a generator,
// listed by its grammar elsewhere).
func Names() []string { return []string{DefaultName, "pvt5"} }

// Cardinality returns how many corners a spec evaluates per CNE without
// building the set: the native-pair count for the default set (on the
// standard technology), five for pvt5, and the sample count for mc specs.
// Invalid specs report the default pair — callers needing validation use
// Validate; Cardinality only feeds coarse features such as the scheduler's
// cost estimator.
func Cardinality(raw string) int {
	sp, err := parseSpec(raw)
	if err != nil {
		return 2
	}
	switch sp.kind {
	case DefaultName:
		return 2
	case "pvt5":
		return 5
	default:
		return sp.n
	}
}

// Build constructs the corner set described by raw for technology t.
// Generated sets (pvt5, mc) are derived from t's native fast/slow corner
// pair, so they adapt to custom technology models.
func Build(raw string, t *tech.Tech) (*Set, error) {
	sp, err := parseSpec(raw)
	if err != nil {
		return nil, err
	}
	if len(t.Corners) == 0 {
		return nil, fmt.Errorf("corners: technology model has no corners")
	}
	switch sp.kind {
	case DefaultName:
		s := FromTech(t)
		s.Spec = DefaultName
		return s, nil
	case "pvt5":
		return pvt5(t), nil
	default:
		return monteCarlo(sp, t), nil
	}
}

// pvt5 builds the five-corner PVT envelope around the native pair:
// FF overdrive (+10% Vdd, fast interconnect), the native fast and slow
// corners, the typical midpoint, and an SS undervolt corner (-5% below the
// slow Vdd, slow interconnect). Roles: the native fast corner stays the
// reference; SS is the worst case.
func pvt5(t *tech.Tech) *Set {
	ref, worst := t.Reference(), t.Worst()
	vHi, vLo := ref.Vdd, worst.Vdd
	cs := []tech.Corner{
		{Name: fmt.Sprintf("ff@%.2fV", vHi*1.10), Vdd: vHi * 1.10, RDerate: 0.90, CDerate: 0.95},
		{Name: ref.Name, Vdd: vHi, RDerate: ref.RDerate, CDerate: ref.CDerate},
		{Name: fmt.Sprintf("tt@%.2fV", (vHi+vLo)/2), Vdd: (vHi + vLo) / 2},
		{Name: worst.Name, Vdd: vLo, RDerate: worst.RDerate, CDerate: worst.CDerate},
		{Name: fmt.Sprintf("ss@%.2fV", vLo*0.95), Vdd: vLo * 0.95, RDerate: 1.10, CDerate: 1.05},
	}
	return &Set{Spec: "pvt5", Corners: cs, Ref: 1, Worst: 4}
}

// monteCarlo draws sp.n deterministic (Vdd, RDerate, CDerate) samples.
// Vdd is sampled around the midpoint of the native fast/slow envelope with
// relative sigma vSigma of that midpoint; derates around 1.0 with rSigma
// and cSigma. Draws are clamped to ±3σ, and Vdd additionally to stay a
// diode drop above threshold, so a degenerate sample can never produce an
// unevaluable corner. The draw order is fixed (vdd, r, c per sample on a
// rand.NewSource PRNG), which makes the set — and therefore every metric
// computed under it — a pure function of the spec string.
func monteCarlo(sp spec, t *tech.Tech) *Set {
	ref, worst := t.Reference(), t.Worst()
	vNom := (ref.Vdd + worst.Vdd) / 2
	rng := rand.New(rand.NewSource(sp.seed))
	// scaleFloor bounds how far a derate can fall: with sigma up to 0.5 a
	// -3σ draw would otherwise reach 1-1.5 = -0.5, and a non-positive R or
	// C scale produces negative conductances in the evaluators — the run
	// would complete and silently report unphysical metrics.
	const scaleFloor = 0.1
	draw := func(sigma float64) float64 {
		if sigma == 0 {
			return 1
		}
		g := rng.NormFloat64()
		if g > 3 {
			g = 3
		} else if g < -3 {
			g = -3
		}
		s := 1 + sigma*g
		if s < scaleFloor {
			s = scaleFloor
		}
		return s
	}
	vMin := t.Vt + 0.1
	cs := make([]tech.Corner, sp.n)
	refIdx, worstIdx := 0, 0
	bestSpeed, worstSpeed := math.Inf(1), math.Inf(-1)
	for i := range cs {
		vdd := vNom * draw(sp.vSigma)
		if vdd < vMin {
			vdd = vMin
		}
		rd := draw(sp.rSigma)
		cd := draw(sp.cSigma)
		cs[i] = tech.Corner{
			Name:    fmt.Sprintf("mc%03d@%.3fV", i, vdd),
			Vdd:     vdd,
			RDerate: rd,
			CDerate: cd,
		}
		// Slowness score: weaker drive (low overdrive) and slower
		// interconnect (high RC) both push a sample toward the worst role.
		slowness := rd * cd / (vdd - t.Vt)
		if slowness < bestSpeed {
			bestSpeed, refIdx = slowness, i
		}
		if slowness > worstSpeed {
			worstSpeed, worstIdx = slowness, i
		}
	}
	return &Set{Spec: sp.String(), Corners: cs, Ref: refIdx, Worst: worstIdx, MC: true}
}

// Info describes one built-in corner set for listings (the contangod
// GET /api/v1/corners endpoint and the CLI help).
type Info struct {
	Name        string        `json:"name"`
	Description string        `json:"description"`
	Corners     []tech.Corner `json:"corners,omitempty"`
	Ref         int           `json:"ref"`
	Worst       int           `json:"worst"`
	MC          bool          `json:"mc,omitempty"`
}

// List describes every built-in set as instantiated for t, plus the mc
// generator's grammar (with a small example instantiation).
func List(t *tech.Tech) []Info {
	infos := []Info{
		{Name: DefaultName, Description: "the technology model's native corner pair (contest default; legacy behavior)"},
		{Name: "pvt5", Description: "five-corner PVT envelope: ff/fast/tt/slow/ss with interconnect derates on the extremes"},
		{Name: "mc:<n>:<seed>[:vsigma[:rsigma[:csigma]]]", Description: "deterministic Monte Carlo samples of (Vdd, R, C) around the native envelope; shown instantiated as mc:4:1"},
	}
	for i := range infos {
		name := infos[i].Name
		if strings.HasPrefix(name, "mc:") {
			name = "mc:4:1"
		}
		if s, err := Build(name, t); err == nil {
			infos[i].Corners = s.Corners
			infos[i].Ref = s.Ref
			infos[i].Worst = s.Worst
			infos[i].MC = s.MC
		}
	}
	return infos
}
