package corners

import (
	"reflect"
	"strings"
	"testing"

	"contango/internal/tech"
)

func TestValidate(t *testing.T) {
	for _, ok := range []string{"", "ispd09", "pvt5", "mc:1:0", "mc:8:1", "mc:64:7:0.1", "mc:16:3:0.05:0.02:0.03"} {
		if err := Validate(ok); err != nil {
			t.Errorf("Validate(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"nope", "mc", "mc:", "mc:0:1", "mc:8", "mc:x:1", "mc:8:y",
		"mc:8:1:2", "mc:8:1:-0.1", "mc:8:1:0.05:0.05:0.05:0.05", "mc:99999:1"} {
		if err := Validate(bad); err == nil {
			t.Errorf("Validate(%q) accepted", bad)
		}
	}
}

func TestCanon(t *testing.T) {
	cases := map[string]string{
		"":                       DefaultName,
		"ispd09":                 DefaultName,
		"pvt5":                   "pvt5",
		"mc:8:1":                 "mc:8:1:0.05:0.05:0.05",
		"mc:8:1:0.05":            "mc:8:1:0.05:0.05:0.05",
		"mc:8:1:0.05:0.05:0.05":  "mc:8:1:0.05:0.05:0.05",
		"mc:4:2:0.1:0.02:0.03":   "mc:4:2:0.1:0.02:0.03",
		" pvt5 ":                 "pvt5",
		"bogus-set":              "bogus-set", // invalid: returned verbatim
		"mc:8:1:0.05:0.05:0.9":   "mc:8:1:0.05:0.05:0.9",
		"mc:8:1:0.05:0.05:0.5:1": "mc:8:1:0.05:0.05:0.5:1",
	}
	// Invalid sigma 0.9 stays verbatim too.
	cases["mc:8:1:0.05:0.05:0.9"] = "mc:8:1:0.05:0.05:0.9"
	for in, want := range cases {
		if got := Canon(in); got != want {
			t.Errorf("Canon(%q)=%q want %q", in, got, want)
		}
	}
}

func TestDefaultSetIsIdentity(t *testing.T) {
	tk := tech.Default45()
	s, err := Build("ispd09", tk)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Corners, tk.Corners) {
		t.Errorf("default set rebuilt corners: %+v", s.Corners)
	}
	if s.Ref != 0 || s.Worst != len(tk.Corners)-1 || s.MC {
		t.Errorf("default roles wrong: %+v", s)
	}
}

func TestPVT5(t *testing.T) {
	tk := tech.Default45()
	s, err := Build("pvt5", tk)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Corners) != 5 {
		t.Fatalf("pvt5 corners=%d want 5", len(s.Corners))
	}
	ref, worst := s.Reference(), s.WorstCase()
	if ref.Vdd != tk.Reference().Vdd {
		t.Errorf("pvt5 reference Vdd=%v want the native fast corner's %v", ref.Vdd, tk.Reference().Vdd)
	}
	if worst.Vdd >= tk.Worst().Vdd {
		t.Errorf("pvt5 worst Vdd=%v must undervolt below the native slow %v", worst.Vdd, tk.Worst().Vdd)
	}
	if worst.RScale() <= 1 || worst.CScale() <= 1 {
		t.Errorf("pvt5 SS corner should derate interconnect slow: r=%v c=%v", worst.RScale(), worst.CScale())
	}
	// Every corner must stay evaluable (above threshold).
	for _, c := range s.Corners {
		if c.Vdd <= tk.Vt {
			t.Errorf("corner %s Vdd=%v below threshold", c.Name, c.Vdd)
		}
	}
}

func TestMonteCarloDeterminism(t *testing.T) {
	tk := tech.Default45()
	a, err := Build("mc:16:42", tk)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build("mc:16:42", tk)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same spec, same tech: sets must be identical")
	}
	c, err := Build("mc:16:43", tk)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Corners, c.Corners) {
		t.Error("different seeds drew identical samples")
	}
	// Canonical and shorthand specs build the same set.
	d, err := Build("mc:16:42:0.05:0.05:0.05", tk)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Corners, d.Corners) {
		t.Error("canonicalized spec diverged from shorthand")
	}
}

func TestMonteCarloShape(t *testing.T) {
	tk := tech.Default45()
	s, err := Build("mc:32:7", tk)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Corners) != 32 || !s.MC {
		t.Fatalf("mc set shape wrong: n=%d mc=%v", len(s.Corners), s.MC)
	}
	names := map[string]bool{}
	for _, c := range s.Corners {
		if names[c.Name] {
			t.Errorf("duplicate corner name %q (breaks per-corner calibration keyed by name)", c.Name)
		}
		names[c.Name] = true
		if c.Vdd <= tk.Vt {
			t.Errorf("sample %s Vdd=%v not evaluable", c.Name, c.Vdd)
		}
		if c.RScale() <= 0 || c.CScale() <= 0 {
			t.Errorf("sample %s has non-positive derates", c.Name)
		}
	}
	// Role assignment: the reference must be the fastest scored sample and
	// worst the slowest; they must differ for any non-trivial draw.
	if s.Ref == s.Worst {
		t.Error("mc ref and worst coincide")
	}
	slowness := func(c tech.Corner) float64 { return c.RScale() * c.CScale() / (c.Vdd - tk.Vt) }
	for _, c := range s.Corners {
		if slowness(c) < slowness(s.Reference()) {
			t.Errorf("sample %s faster than the reference", c.Name)
		}
		if slowness(c) > slowness(s.WorstCase()) {
			t.Errorf("sample %s slower than the worst", c.Name)
		}
	}
}

func TestApplyClones(t *testing.T) {
	tk := tech.Default45()
	before := append([]tech.Corner(nil), tk.Corners...)
	s, err := Build("pvt5", tk)
	if err != nil {
		t.Fatal(err)
	}
	applied := s.Apply(tk)
	if !reflect.DeepEqual(tk.Corners, before) || tk.CornerSpec != "" {
		t.Error("Apply mutated the original technology model")
	}
	if applied.CornerSpec != "pvt5" || len(applied.Corners) != 5 {
		t.Errorf("applied tech wrong: spec=%q corners=%d", applied.CornerSpec, len(applied.Corners))
	}
	if applied.Reference().Name != s.Reference().Name || applied.Worst().Name != s.WorstCase().Name {
		t.Error("roles lost in application")
	}
	if applied.MCSet != s.MC {
		t.Errorf("MC flag wrong: applied=%v set=%v", applied.MCSet, s.MC)
	}
	// FromTech round-trips the installed roles.
	back := FromTech(applied)
	if back.Ref != s.Ref || back.Worst != s.Worst || back.MC != s.MC {
		t.Errorf("FromTech lost roles: %+v vs %+v", back, s)
	}
}

func TestList(t *testing.T) {
	infos := List(tech.Default45())
	if len(infos) != 3 {
		t.Fatalf("List entries=%d want 3", len(infos))
	}
	for _, in := range infos {
		if len(in.Corners) == 0 {
			t.Errorf("listing %q carries no instantiated corners", in.Name)
		}
		if in.Description == "" {
			t.Errorf("listing %q has no description", in.Name)
		}
	}
	if !strings.HasPrefix(infos[2].Name, "mc:") || !infos[2].MC {
		t.Errorf("mc grammar row wrong: %+v", infos[2])
	}
}

// TestMonteCarloDerateFloor: extreme sigmas must never draw a zero or
// negative interconnect scale — that would flow negative conductances into
// the evaluators and silently corrupt every metric.
func TestMonteCarloDerateFloor(t *testing.T) {
	tk := tech.Default45()
	s, err := Build("mc:200:1:0.05:0.5:0.5", tk)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range s.Corners {
		if c.RScale() <= 0 || c.CScale() <= 0 {
			t.Fatalf("sample %s drew non-positive scales: r=%v c=%v", c.Name, c.RScale(), c.CScale())
		}
		if c.Vdd <= tk.Vt {
			t.Fatalf("sample %s not evaluable: vdd=%v", c.Name, c.Vdd)
		}
	}
}
