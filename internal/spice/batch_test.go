package spice

import (
	"math/rand"
	"reflect"
	"testing"

	"contango/internal/corners"
	"contango/internal/tech"
)

// TestEngineEvaluateCornersBitIdentical: the shared-extraction corner loop
// must reproduce per-corner Evaluate calls bit for bit, and the pooled
// stage scratch must not perturb repeated evaluations.
func TestEngineEvaluateCornersBitIdentical(t *testing.T) {
	tk := tech.Default45()
	tr := randomStagedTree(rand.New(rand.NewSource(11)), tk)
	cs, err := corners.Build("pvt5", tk)
	if err != nil {
		t.Fatal(err)
	}
	e := New()
	serial := make([]interface{}, 0, len(cs.Corners))
	for _, c := range cs.Corners {
		r, err := e.Evaluate(tr, c)
		if err != nil {
			t.Fatal(err)
		}
		serial = append(serial, r)
	}
	for pass := 0; pass < 2; pass++ {
		got, err := e.EvaluateCorners(tr, cs.Corners)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], serial[i]) {
				t.Errorf("pass %d corner %q: EvaluateCorners differs from Evaluate", pass, cs.Corners[i].Name)
			}
		}
	}
}

// TestIncrementalCornersMatchEngine: the cached, pooled incremental
// evaluator agrees exactly with the plain engine across a corner set, both
// on a cold cache and after a warm re-evaluation.
func TestIncrementalCornersMatchEngine(t *testing.T) {
	tk := tech.Default45()
	rng := rand.New(rand.NewSource(23))
	tr := randomStagedTree(rng, tk)
	cs, err := corners.Build("mc:4:1", tk)
	if err != nil {
		t.Fatal(err)
	}
	eng := New()
	ie := NewIncremental(tr, New(), 4)
	want, err := eng.EvaluateCorners(tr, cs.Corners)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		got, err := ie.EvaluateCorners(tr, cs.Corners)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("pass %d corner %q: incremental differs from engine", pass, cs.Corners[i].Name)
			}
		}
	}
	// A mutation round then a revert must still match the engine exactly.
	randomMove(rng, tr)
	want2, err := eng.EvaluateCorners(tr, cs.Corners)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := ie.EvaluateCorners(tr, cs.Corners)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got2 {
		if !reflect.DeepEqual(got2[i], want2[i]) {
			t.Errorf("post-move corner %q: incremental differs from engine", cs.Corners[i].Name)
		}
	}
}
