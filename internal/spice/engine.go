package spice

import (
	"math"

	"contango/internal/analysis"
	"contango/internal/ctree"
	"contango/internal/tech"
)

// Engine is the transient clock-network evaluator (the flow's CNE step).
// It implements analysis.Evaluator. Runs counts Evaluate invocations, which
// is how the paper counts SPICE runs in its scalability study.
type Engine struct {
	// MaxSeg is the RC subdivision length in µm (0 = analysis default).
	MaxSeg float64
	// Dt is the integration timestep in ps.
	Dt float64
	// SourceSlew is the transition time of the ideal clock input ramp, ps.
	SourceSlew float64
	// SettleTol is the fraction of Vdd within which a node counts as
	// settled at its final rail.
	SettleTol float64

	// Runs is the number of transient analyses performed so far.
	Runs int

	// LastWorstSlewDriver records, after each Evaluate, the tree-node ID of
	// the driver whose stage contained the worst slew (-1 for the source
	// stage). Diagnostic aid.
	LastWorstSlewDriver int
}

// New returns an engine with production defaults: 100 µm RC segments, 1 ps
// timestep, 20 ps input slew.
func New() *Engine {
	return &Engine{MaxSeg: 100, Dt: 1, SourceSlew: 20, SettleTol: 0.005}
}

// Name implements analysis.Evaluator.
func (e *Engine) Name() string { return "transient" }

// launchResult aggregates one full-network transient for a single source
// transition.
type launchResult struct {
	sinkT50     map[int]float64
	sinkSlew    map[int]float64
	stageSlew   map[int]float64
	maxSlew     float64
	viol        int
	worstDriver int // tree-node ID of the worst-slew stage's driver, -1 = source
}

// Evaluate implements analysis.Evaluator: it runs two transients (rising and
// falling source edges) at the given corner and reports 50% arrival times
// and worst 10-90% slews at every sink.
func (e *Engine) Evaluate(tr *ctree.Tree, corner tech.Corner) (*analysis.Result, error) {
	net := analysis.Extract(tr, e.MaxSeg)
	return e.evaluateOnNet(net, corner), nil
}

// EvaluateCorners implements analysis.CornerEvaluator: the tree is extracted
// once and the transients of every corner run over the shared netlist.
func (e *Engine) EvaluateCorners(tr *ctree.Tree, corners []tech.Corner) ([]*analysis.Result, error) {
	net := analysis.Extract(tr, e.MaxSeg)
	out := make([]*analysis.Result, len(corners))
	for i, c := range corners {
		out[i] = e.evaluateOnNet(net, c)
	}
	return out, nil
}

// evaluateOnNet runs both launch edges of one corner over an extracted
// netlist.
func (e *Engine) evaluateOnNet(net *analysis.Net, corner tech.Corner) *analysis.Result {
	res := &analysis.Result{
		Corner:    corner,
		Rise:      make(map[int]float64),
		Fall:      make(map[int]float64),
		SinkSlew:  make(map[int]float64),
		StageSlew: make(map[int]float64),
	}
	worstSlew := -1.0
	for _, rising := range []bool{true, false} {
		lr := e.simulateLaunch(net, corner, rising)
		if lr.maxSlew > worstSlew {
			worstSlew = lr.maxSlew
			e.LastWorstSlewDriver = lr.worstDriver
		}
		for id, t := range lr.sinkT50 {
			if rising {
				res.Rise[id] = t
			} else {
				res.Fall[id] = t
			}
		}
		for id, s := range lr.sinkSlew {
			if old, ok := res.SinkSlew[id]; !ok || s > old {
				res.SinkSlew[id] = s
			}
		}
		for id, s := range lr.stageSlew {
			if old, ok := res.StageSlew[id]; !ok || s > old {
				res.StageSlew[id] = s
			}
		}
		if lr.maxSlew > res.MaxSlew {
			res.MaxSlew = lr.maxSlew
		}
		res.SlewViol += lr.viol
	}
	e.Runs++
	return res
}

// simulateLaunch propagates one source edge through every stage in
// topological order.
func (e *Engine) simulateLaunch(net *analysis.Net, corner tech.Corner, rising bool) launchResult {
	vdd := corner.Vdd
	dt := e.Dt
	out := launchResult{
		sinkT50:     make(map[int]float64),
		sinkSlew:    make(map[int]float64),
		stageSlew:   make(map[int]float64),
		worstDriver: -1,
	}
	inputs := make([]*Waveform, len(net.Stages))
	// dirs[i] is true when stage i's OUTPUT transition is rising.
	dirs := make([]bool, len(net.Stages))
	if rising {
		inputs[0] = Ramp(0, vdd, e.SourceSlew, dt)
	} else {
		inputs[0] = Ramp(vdd, 0, e.SourceSlew, dt)
	}
	dirs[0] = rising // the source stage driver is non-inverting
	srcT50 := e.SourceSlew / 2

	tk := net.Tree.Tech
	for _, s := range net.Stages {
		vin := inputs[s.Index]
		if vin == nil {
			continue // upstream stage failed to produce a transition
		}
		var drv driver
		if s.Driver == nil {
			drv = resistorDriver{r: net.DriverR(s, corner)}
		} else {
			drv = inverterDriver{k: tk.KDrive(*s.Driver.Buf), vdd: vdd, vt: tk.Vt}
		}
		st := e.simStage(s, drv, vin, dirs[s.Index], corner, net.DriverR(s, corner))
		for _, m := range s.Sinks {
			out.sinkT50[m.Sink.ID] = st.t50[m.Node] - srcT50
			out.sinkSlew[m.Sink.ID] = st.slew[m.Node]
		}
		key := -1
		if s.Driver != nil {
			key = s.Driver.ID
		}
		for i := range st.slew {
			if st.slew[i] > out.maxSlew {
				out.maxSlew = st.slew[i]
				out.worstDriver = key
			}
			if st.slew[i] > out.stageSlew[key] {
				out.stageSlew[key] = st.slew[i]
			}
			if st.slew[i] > tk.SlewLimit {
				out.viol++
			}
		}
		// Hand each downstream stage the waveform recorded at its driver's
		// input pin.
		for _, ci := range s.Children {
			child := net.Stages[ci]
			if w, ok := st.loadWaves[child.InputNode]; ok {
				inputs[ci] = w.Trim(0.002 * vdd)
				dirs[ci] = !dirs[s.Index]
			}
		}
	}
	return out
}

// stageResult holds per-RC-node measurements of one stage transient.
type stageResult struct {
	t50       []float64 // absolute 50% crossing, ps (+Inf if never)
	slew      []float64 // 10-90% transition time, ps (+Inf if never)
	loadWaves map[int]*Waveform
}

// simStage integrates one stage with Backward Euler. The RC tree is reduced
// bottom-up to a Thevenin equivalent at the driver output each step; the
// driver equation is solved by Newton; voltages back-substitute top-down.
// The corner supplies the supply rail and the interconnect derates; for an
// underated corner the conductance setup reduces to the exact legacy
// arithmetic (scaling by 1.0 is exact in IEEE 754), keeping default-set
// results bit-identical.
func (e *Engine) simStage(s *analysis.Stage, drv driver, vin *Waveform, outRising bool, corner tech.Corner, rd float64) stageResult {
	n := len(s.R)
	dt := e.Dt
	vdd := corner.Vdd
	rScale, cScale := corner.RScale(), corner.CScale()
	rail0, railF := vdd, 0.0
	if outRising {
		rail0, railF = 0.0, vdd
	}

	ss := stagePool.Get().(*stageScratch)
	ss.grow(n)
	g, gC := ss.g, ss.gC
	g[0] = 0 // never read, but keep the vector deterministic across reuse
	for i := 0; i < n; i++ {
		gC[i] = s.C[i] * cScale / dt
		if i > 0 {
			g[i] = 1 / (s.R[i] * rScale)
		}
	}
	// Constant elimination factors (caps and resistances are fixed). The
	// pooled elim replaces make's zero-init explicitly: the += accumulation
	// below must start from exact zeros to stay bit-identical.
	d, elim := ss.d, ss.elim
	for i := range elim {
		elim[i] = 0
	}
	for i := n - 1; i >= 1; i-- {
		d[i] = gC[i] + g[i] + elim[i]
		elim[s.Par[i]] += g[i] - g[i]*g[i]/d[i]
	}
	d[0] = gC[0] + elim[0]
	if d[0] <= 0 {
		d[0] = 1e-12
	}

	V := ss.V
	for i := range V {
		V[i] = rail0
	}
	b, acc := ss.b, ss.acc

	// Crossing trackers per node: 10%, 50%, 90% of vdd in the output
	// direction. For falling outputs the 90% threshold is crossed first.
	lo, mid, hi := ss.lo, ss.mid, ss.hi
	for i := 0; i < n; i++ {
		lo[i] = crossing{th: 0.1 * vdd, rising: outRising}
		mid[i] = crossing{th: 0.5 * vdd, rising: outRising}
		hi[i] = crossing{th: 0.9 * vdd, rising: outRising}
	}

	// Window: input transition plus several stage time constants, with a
	// hard cap to stay live under degenerate drivers.
	tauMax := 1.0
	if m := analysis.StageElmoreMaxAt(s, rd, corner); m > tauMax {
		tauMax = m
	}
	tEndMin := vin.End() + 5*tauMax + 50
	tMax := tEndMin + 30*tauMax + 2000
	tol := e.SettleTol * vdd

	// Load waveforms escape into the stage result (and from there into the
	// incremental cache), so they are real allocations; presizing them to the
	// expected step count avoids the append regrowth churn.
	steps := int((tEndMin-vin.T0)/dt) + 64
	if steps > 1<<20 {
		steps = 1 << 20
	}
	loadWaves := make(map[int]*Waveform, len(s.Loads))
	for _, ld := range s.Loads {
		v := make([]float64, 1, steps)
		v[0] = rail0
		loadWaves[ld.Node] = &Waveform{T0: vin.T0, Dt: dt, V: v, V0: rail0}
	}

	t := vin.T0
	for {
		t += dt
		// Bottom-up: reduce to the root.
		for i := 0; i < n; i++ {
			b[i] = gC[i] * V[i]
			acc[i] = 0
		}
		for i := n - 1; i >= 1; i-- {
			b[i] += acc[i]
			acc[s.Par[i]] += g[i] * b[i] / d[i]
		}
		b[0] += acc[0]
		vPrev0 := V[0]
		v0 := solveRoot(drv, vin.At(t), d[0], b[0], vPrev0, vdd)
		// Top-down back-substitution, updating trackers inline.
		lo[0].observe(t, dt, vPrev0, v0)
		mid[0].observe(t, dt, vPrev0, v0)
		hi[0].observe(t, dt, vPrev0, v0)
		V[0] = v0
		settled := abs(v0-railF) <= tol
		for i := 1; i < n; i++ {
			vPrev := V[i]
			v := (b[i] + g[i]*V[s.Par[i]]) / d[i]
			lo[i].observe(t, dt, vPrev, v)
			mid[i].observe(t, dt, vPrev, v)
			hi[i].observe(t, dt, vPrev, v)
			V[i] = v
			if abs(v-railF) > tol {
				settled = false
			}
		}
		for node, w := range loadWaves {
			w.V = append(w.V, V[node])
		}
		if (t >= tEndMin && settled) || t >= tMax {
			break
		}
	}

	res := stageResult{
		t50:       make([]float64, n),
		slew:      make([]float64, n),
		loadWaves: loadWaves,
	}
	for i := 0; i < n; i++ {
		if mid[i].done {
			res.t50[i] = mid[i].t
		} else {
			res.t50[i] = math.Inf(1)
		}
		if lo[i].done && hi[i].done {
			res.slew[i] = abs(hi[i].t - lo[i].t)
		} else {
			res.slew[i] = math.Inf(1)
		}
	}
	stagePool.Put(ss)
	return res
}

var _ analysis.Evaluator = (*Engine)(nil)

// EvaluateAll runs the engine at every corner of the tree's technology and
// returns the results in corner order.
func (e *Engine) EvaluateAll(tr *ctree.Tree) ([]*analysis.Result, error) {
	return e.EvaluateCorners(tr, tr.Tech.Corners)
}

var _ analysis.CornerEvaluator = (*Engine)(nil)
