package spice

// driver models the nonlinear (or linear) element injecting current into a
// stage's root RC node. eval returns the current into the node (mA) and its
// derivative with respect to the node voltage (mA/V = 1/kΩ); the derivative
// must be non-positive so the Newton iteration stays monotone.
type driver interface {
	eval(vin, vout float64) (i, didv float64)
}

// resistorDriver is the clock source: a resistor from the ideal input ramp
// to the network root.
type resistorDriver struct {
	r float64 // kΩ
}

func (d resistorDriver) eval(vin, vout float64) (float64, float64) {
	g := 1 / d.r
	return (vin - vout) * g, -g
}

// inverterDriver is a balanced square-law CMOS inverter: an nMOS pulling the
// output to ground and a pMOS pulling it to vdd, both with transconductance
// k (mA/V²) and threshold vt. Short-circuit current during the input
// transition is modeled naturally because both devices conduct while the
// input is mid-swing.
type inverterDriver struct {
	k, vdd, vt float64
}

// mosfet returns the square-law drain current and its derivative with
// respect to vds, for gate overdrive vov = vgs - vt. The triode expression
// is used for vds < vov (including vds < 0, where the channel conducts
// backwards), the saturation expression beyond.
func mosfet(k, vov, vds float64) (i, didvds float64) {
	if vov <= 0 {
		return 0, 0
	}
	if vds < vov {
		return k * (2*vov*vds - vds*vds), 2 * k * (vov - vds)
	}
	return k * vov * vov, 0
}

func (d inverterDriver) eval(vin, vout float64) (float64, float64) {
	// nMOS: gate at vin, source at ground, drain at vout. Discharges node.
	in, gn := mosfet(d.k, vin-d.vt, vout)
	// pMOS: gate at vin, source at vdd, drain at vout. Charges node. In its
	// own frame vgs = vdd-vin and vds = vdd-vout.
	ip, gp := mosfet(d.k, d.vdd-vin-d.vt, d.vdd-vout)
	// dip/dvout = -gp (chain rule through vds_p = vdd - vout).
	return ip - in, -gp - gn
}

// solveRoot solves d0·v - b0 = I(vin, v) for v with a safeguarded Newton
// iteration. The equation is monotone in v (d0 > 0, dI/dv <= 0), so Newton
// from the previous solution converges in a handful of iterations; a
// bisection fallback guards pathological starts.
func solveRoot(drv driver, vin, d0, b0, vPrev, vdd float64) float64 {
	v := vPrev
	lo, hi := -0.5, vdd+0.5
	for iter := 0; iter < 60; iter++ {
		i, didv := drv.eval(vin, v)
		f := d0*v - b0 - i
		if abs(f) < 1e-10 {
			return v
		}
		// f is monotone increasing in v, so the sign tells us which side
		// of the root we are on.
		if f > 0 {
			hi = v
		} else {
			lo = v
		}
		fp := d0 - didv
		nv := v - f/fp
		if nv <= lo || nv >= hi {
			nv = (lo + hi) / 2 // Newton left the bracket: bisect
		}
		if abs(nv-v) < 1e-9 {
			return nv
		}
		v = nv
	}
	return v
}
