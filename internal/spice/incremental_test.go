package spice

import (
	"math"
	"math/rand"
	"testing"

	"contango/internal/analysis"
	"contango/internal/ctree"
	"contango/internal/geom"
	"contango/internal/tech"
)

// randomStagedTree builds a small random buffered tree: a trunk buffer
// chain with branch buffers and sinks hanging off it, enough stages for the
// incremental cone logic to matter while keeping transients fast.
func randomStagedTree(rng *rand.Rand, tk *tech.Tech) *ctree.Tree {
	tr := ctree.New(tk, geom.Pt(0, 0), 0.1)
	comp := tech.Composite{Type: tk.Inverters[1], N: 8}
	cur := tr.Root
	for i := 0; i < 2+rng.Intn(2); i++ {
		b := tr.AddChild(cur, ctree.Buffer, geom.Pt(float64(i+1)*400, rng.Float64()*200))
		c := comp
		b.Buf = &c
		cur = b
	}
	hubs := []*ctree.Node{cur}
	for i := 0; i < 2+rng.Intn(3); i++ {
		p := hubs[rng.Intn(len(hubs))]
		loc := geom.Pt(p.Loc.X+200+rng.Float64()*600, p.Loc.Y+rng.Float64()*600-300)
		if rng.Intn(2) == 0 {
			b := tr.AddChild(p, ctree.Buffer, loc)
			c := comp
			b.Buf = &c
			hubs = append(hubs, b)
		} else {
			hubs = append(hubs, tr.AddChild(p, ctree.Internal, loc))
		}
	}
	for i := 0; i < 4+rng.Intn(4); i++ {
		p := hubs[rng.Intn(len(hubs))]
		tr.AddSink(p, geom.Pt(p.Loc.X+100+rng.Float64()*300, p.Loc.Y+rng.Float64()*300), 20+rng.Float64()*30, "")
	}
	return tr
}

// randomMove mutates the tree the way optimization rounds do, through the
// journaling setters.
func randomMove(rng *rand.Rand, tr *ctree.Tree) {
	var edges, bufs []*ctree.Node
	tr.PreOrder(func(n *ctree.Node) {
		if n.Parent != nil {
			edges = append(edges, n)
		}
		if n.Kind == ctree.Buffer {
			bufs = append(bufs, n)
		}
	})
	switch rng.Intn(4) {
	case 0:
		tr.SetWidth(edges[rng.Intn(len(edges))], rng.Intn(len(tr.Tech.Wires)))
	case 1:
		tr.AddSnake(edges[rng.Intn(len(edges))], float64(1+rng.Intn(6))*25)
	case 2:
		if len(bufs) > 0 {
			tr.SetBufferSize(bufs[rng.Intn(len(bufs))], 2+rng.Intn(14))
		}
	case 3:
		n := edges[rng.Intn(len(edges))]
		if n.Route.Length() > 150 {
			comp := tech.Composite{Type: tr.Tech.Inverters[1], N: 8}
			b1 := tr.InsertOnEdge(n, n.Route.Length()/2, ctree.Buffer)
			c1 := comp
			b1.Buf = &c1
			b2 := tr.InsertOnEdge(n, 10, ctree.Buffer)
			c2 := comp
			b2.Buf = &c2
		}
	}
}

func transientResultsClose(t *testing.T, a, b *analysis.Result, tol float64) {
	t.Helper()
	check := func(what string, ma, mb map[int]float64) {
		if len(ma) != len(mb) {
			t.Fatalf("%s size %d vs %d", what, len(ma), len(mb))
		}
		for id, v := range ma {
			w, ok := mb[id]
			if !ok || math.Abs(v-w) > tol {
				t.Fatalf("%s[%d] = %v vs %v", what, id, v, w)
			}
		}
	}
	check("rise", a.Rise, b.Rise)
	check("fall", a.Fall, b.Fall)
	check("sinkSlew", a.SinkSlew, b.SinkSlew)
	check("stageSlew", a.StageSlew, b.StageSlew)
	if math.Abs(a.MaxSlew-b.MaxSlew) > tol || a.SlewViol != b.SlewViol {
		t.Fatalf("maxSlew %v/%v viol %d/%d", a.MaxSlew, b.MaxSlew, a.SlewViol, b.SlewViol)
	}
}

// TestIncrementalTransientParity: the acceptance property — random
// sizing/snaking/buffer moves, incremental evaluation vs a fresh full
// transient, every corner, within 1e-9 ps.
func TestIncrementalTransientParity(t *testing.T) {
	tk := tech.Default45()
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 3; iter++ {
		tr := randomStagedTree(rng, tk)
		ie := NewIncremental(tr, New(), 1)
		for move := 0; move < 6; move++ {
			rs, err := ie.EvaluateCorners(tr, tk.Corners)
			if err != nil {
				t.Fatal(err)
			}
			for ci, c := range tk.Corners {
				want, err := New().Evaluate(tr, c)
				if err != nil {
					t.Fatal(err)
				}
				transientResultsClose(t, want, rs[ci], 1e-9)
			}
			randomMove(rng, tr)
		}
	}
}

// TestIncrementalReusesCleanStages: a second evaluation of an unchanged
// tree must integrate nothing; a reverted probe must be served from the
// two-generation cache rather than re-integrating the cone.
func TestIncrementalReusesCleanStages(t *testing.T) {
	tk := tech.Default45()
	rng := rand.New(rand.NewSource(12))
	tr := randomStagedTree(rng, tk)
	ie := NewIncremental(tr, New(), 1)
	if _, err := ie.EvaluateCorners(tr, tk.Corners); err != nil {
		t.Fatal(err)
	}
	base := ie.Stats
	if _, err := ie.EvaluateCorners(tr, tk.Corners); err != nil {
		t.Fatal(err)
	}
	if sims := ie.Stats.StagesSim - base.StagesSim; sims != 0 {
		t.Fatalf("unchanged tree re-integrated %d stages", sims)
	}

	// Probe: snake one sink edge, evaluate, revert, evaluate. The revert
	// evaluation must find the pre-probe generation in the cache.
	var probe *ctree.Node
	tr.PreOrder(func(n *ctree.Node) {
		if probe == nil && n.Kind == ctree.Sink {
			probe = n
		}
	})
	tr.AddSnake(probe, 100)
	if _, err := ie.EvaluateCorners(tr, tk.Corners); err != nil {
		t.Fatal(err)
	}
	tr.AddSnake(probe, -100)
	base = ie.Stats
	if _, err := ie.EvaluateCorners(tr, tk.Corners); err != nil {
		t.Fatal(err)
	}
	if sims := ie.Stats.StagesSim - base.StagesSim; sims != 0 {
		t.Fatalf("probe revert re-integrated %d stages, want 0 (two-generation cache)", sims)
	}
}

// TestIncrementalParallelMatchesSerial: the parallel stage scheduler must
// be bit-identical to serial evaluation at any worker count. Run with
// -race, this is also the data-race exercise for the worker pool.
func TestIncrementalParallelMatchesSerial(t *testing.T) {
	tk := tech.Default45()
	rng := rand.New(rand.NewSource(23))
	tr := randomStagedTree(rng, tk)
	parallel := NewIncremental(tr, New(), 8)
	for move := 0; move < 4; move++ {
		ps, err := parallel.EvaluateCorners(tr, tk.Corners)
		if err != nil {
			t.Fatal(err)
		}
		// A fresh serial evaluator on a clone sees the same network with
		// cold caches; results must be exactly equal, not just close.
		serial := NewIncremental(tr.Clone(), New(), 1)
		ss, err := serial.EvaluateCorners(serial.tree, tk.Corners)
		if err != nil {
			t.Fatal(err)
		}
		for ci := range tk.Corners {
			transientResultsClose(t, ss[ci], ps[ci], 0) // exactly equal
		}
		randomMove(rng, tr)
	}
}

// TestIncrementalSurvivesRestore: snapshot restore via struct assignment
// (the IVC reject path) must invalidate correctly and stay at parity.
func TestIncrementalSurvivesRestore(t *testing.T) {
	tk := tech.Default45()
	rng := rand.New(rand.NewSource(31))
	tr := randomStagedTree(rng, tk)
	ie := NewIncremental(tr, New(), 1)
	if _, err := ie.EvaluateCorners(tr, tk.Corners); err != nil {
		t.Fatal(err)
	}
	snap := tr.Clone()
	for i := 0; i < 3; i++ {
		randomMove(rng, tr)
	}
	if _, err := ie.EvaluateCorners(tr, tk.Corners); err != nil {
		t.Fatal(err)
	}
	*tr = *snap
	base := ie.Stats
	rs, err := ie.EvaluateCorners(tr, tk.Corners)
	if err != nil {
		t.Fatal(err)
	}
	if sims := ie.Stats.StagesSim - base.StagesSim; sims != 0 {
		t.Fatalf("restore re-integrated %d stages, want 0 (signature-matched generation)", sims)
	}
	for ci, c := range tk.Corners {
		want, err := New().Evaluate(tr, c)
		if err != nil {
			t.Fatal(err)
		}
		transientResultsClose(t, want, rs[ci], 1e-9)
	}
}
