// Package spice is the library's SPICE substitute: a transient simulator for
// buffered clock networks. It reproduces the effects the paper needs SPICE
// for — resistive shielding in long wires, slew propagation between stages,
// the impact of slew on delay, and supply-voltage corners — while remaining
// fast enough to sit inside the optimization loop, exactly the role ngSPICE
// and HSPICE play in the paper's flow.
//
// The network is decomposed at inverter boundaries into stages (package
// analysis). Each stage is a linear RC tree driven by one nonlinear element:
// a square-law CMOS push-pull inverter (or, for the source stage, a resistor
// to the input ramp). Backward-Euler integration turns every timestep into a
// tree-structured linear solve done in O(n) with a bottom-up Thevenin
// reduction; the single nonlinear node (the driver output) is resolved by a
// safeguarded 1-D Newton iteration. Full node waveforms propagate from stage
// to stage, so downstream delays see realistic input slews.
package spice

// Waveform is a sampled voltage trace on a uniform time grid. Before T0 the
// value is V0 (the pre-transition rail); past the last sample it is the last
// sample's value.
type Waveform struct {
	T0 float64   // time of V[0], ps
	Dt float64   // sample spacing, ps
	V  []float64 // samples, V
	V0 float64   // value for t < T0
}

// At returns the linearly interpolated voltage at time t.
func (w *Waveform) At(t float64) float64 {
	if len(w.V) == 0 {
		return w.V0
	}
	if t <= w.T0 {
		return w.V0
	}
	x := (t - w.T0) / w.Dt
	i := int(x)
	if i >= len(w.V)-1 {
		return w.V[len(w.V)-1]
	}
	f := x - float64(i)
	return w.V[i]*(1-f) + w.V[i+1]*f
}

// End returns the time of the last sample.
func (w *Waveform) End() float64 {
	if len(w.V) == 0 {
		return w.T0
	}
	return w.T0 + float64(len(w.V)-1)*w.Dt
}

// Last returns the final sampled value (or V0 when empty).
func (w *Waveform) Last() float64 {
	if len(w.V) == 0 {
		return w.V0
	}
	return w.V[len(w.V)-1]
}

// Trim drops leading samples that stay within tol of V0, keeping one sample
// of margin, and returns the trimmed waveform. Trimming lets downstream
// stages start their windows when their input actually begins to move.
func (w *Waveform) Trim(tol float64) *Waveform {
	return w.TrimInto(tol, new(Waveform))
}

// TrimInto is Trim writing its header into dst instead of allocating one;
// it returns w itself when nothing is trimmed and dst otherwise (the
// samples are shared with w either way). The incremental evaluator's hot
// path trims into per-stage scratch so cache hits allocate nothing.
func (w *Waveform) TrimInto(tol float64, dst *Waveform) *Waveform {
	first := len(w.V)
	for i, v := range w.V {
		if abs(v-w.V0) > tol {
			first = i
			break
		}
	}
	if first == 0 {
		return w
	}
	if first > 0 {
		first-- // keep one quiet sample for interpolation
	}
	*dst = Waveform{
		T0: w.T0 + float64(first)*w.Dt,
		Dt: w.Dt,
		V:  w.V[first:],
		V0: w.V0,
	}
	return dst
}

// Ramp builds a linear transition from v0 to v1 starting at t=0 with the
// given transition time (ps) and sample spacing dt.
func Ramp(v0, v1, trans, dt float64) *Waveform {
	n := int(trans/dt) + 1
	if n < 2 {
		n = 2
	}
	w := &Waveform{T0: 0, Dt: dt, V: make([]float64, n), V0: v0}
	for i := 0; i < n; i++ {
		f := float64(i) * dt / trans
		if f > 1 {
			f = 1
		}
		w.V[i] = v0 + (v1-v0)*f
	}
	return w
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// crossing tracks the interpolated time at which a signal first crosses a
// threshold in the given direction.
type crossing struct {
	th     float64
	rising bool
	t      float64
	done   bool
}

// observe feeds one integration step (vPrev at t-dt, v at t) to the tracker.
func (c *crossing) observe(t, dt, vPrev, v float64) {
	if c.done {
		return
	}
	if c.rising {
		if vPrev < c.th && v >= c.th {
			c.t = t - dt + dt*(c.th-vPrev)/(v-vPrev)
			c.done = true
		}
	} else {
		if vPrev > c.th && v <= c.th {
			c.t = t - dt + dt*(vPrev-c.th)/(vPrev-v)
			c.done = true
		}
	}
}
