package spice

import "sync"

// runLimited executes fn(0..n-1) concurrently, with at most the semaphore's
// capacity running at once. It is the same fixed-budget worker discipline as
// the synthesis service's job pool, scaled down to stage granularity: the
// semaphore is shared across every scheduling site of one evaluation (all
// corners, both launch edges, every dependency level), so the total number
// of in-flight stage simulations never exceeds the configured parallelism
// no matter how the work is nested.
func runLimited(sem chan struct{}, n int, fn func(int)) {
	if n == 0 {
		return
	}
	if cap(sem) <= 1 {
		// Serial budget: the evaluator also runs its launches serially in
		// this configuration, so no other goroutine contends for the slot.
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if n == 1 {
		// Run inline, but still hold a slot: concurrent launches each hit
		// this path on sparse dependency levels, and the budget bounds the
		// total across all of them.
		sem <- struct{}{}
		defer func() { <-sem }()
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			fn(i)
		}(i)
	}
	wg.Wait()
}
